// Command planck-sim runs a single workload scenario on the simulated
// testbed and prints per-flow statistics.
//
// Usage:
//
//	planck-sim -workload stride -scheme planckte -size 100MiB -seed 7
//	planck-sim -workload shuffle -metrics :9090 -stats-every 2s
//	planck-sim -workload stride -fault "loss:0.5@1s-2s,crash@3s" -fault-seed 9
//
// With -metrics, the testbed's registry — engine vitals, controller
// actuation delays, per-collector pipeline timings, and per-switch
// sample-latency histograms — is served over HTTP (/metrics,
// /debug/vars, /debug/pprof) while the simulation runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"planck/internal/experiments"
	"planck/internal/faults"
	"planck/internal/lab"
	"planck/internal/obs"
	"planck/internal/obs/trace"
	"planck/internal/units"
)

func main() {
	wl := flag.String("workload", "stride", "stride | shuffle | bijection | random | staggered")
	scheme := flag.String("scheme", "planckte", "static | poll1s | poll01s | planckte | optimal")
	sizeStr := flag.String("size", "100MiB", "per-flow transfer size")
	seed := flag.Int64("seed", 1, "deterministic seed")
	timeoutS := flag.Int("timeout-s", 120, "virtual-time timeout in seconds")
	metricsAddr := flag.String("metrics", "", "HTTP address serving /metrics, /debug/vars, /debug/pprof (empty = off)")
	statsEvery := flag.Duration("stats-every", 0, "period between one-line stats reports on stderr (0 = off)")
	faultSpec := flag.String("fault", "", `fault-injection spec for every monitored collector feed, e.g. "loss:0.5@1s-2s,crash@3s" (empty = off)`)
	faultSeed := flag.Int64("fault-seed", 0, "seed for the fault injectors (0 = derive from -seed)")
	traceFlag := flag.Bool("trace", false, "record control-loop spans and print the per-stage latency breakdown (Fig. 10)")
	traceMin := flag.Int("trace-min", 0, "exit nonzero unless at least this many traces converged (implies -trace)")
	governFlag := flag.Bool("govern", false, "run a sampling-rate governor per monitored switch and print its episode summary")
	governMin := flag.Int("govern-min", 0, "exit nonzero unless governors committed at least this many shed/tune episodes and closed as many loops (implies -govern)")
	flag.Parse()
	if *traceMin > 0 {
		*traceFlag = true
	}
	if *governMin > 0 {
		*governFlag = true
	}

	kinds := map[string]experiments.WorkloadKind{
		"stride":    experiments.WorkloadStride,
		"shuffle":   experiments.WorkloadShuffle,
		"bijection": experiments.WorkloadRandomBijection,
		"random":    experiments.WorkloadRandom,
		"staggered": experiments.WorkloadStaggeredProb,
	}
	schemes := map[string]experiments.Scheme{
		"static":   experiments.SchemeStatic,
		"poll1s":   experiments.SchemePoll1s,
		"poll01s":  experiments.SchemePoll01s,
		"planckte": experiments.SchemePlanckTE,
		"optimal":  experiments.SchemeOptimal,
	}
	kind, ok := kinds[strings.ToLower(*wl)]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *wl)
		os.Exit(2)
	}
	sch, ok := schemes[strings.ToLower(*scheme)]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown scheme %q\n", *scheme)
		os.Exit(2)
	}
	size, err := parseSize(*sizeStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var tracer *trace.Tracer
	if *traceFlag {
		tracer = trace.New(256)
	}
	l, cleanup, err := experiments.SchemeLabWith(sch, *seed, func(opts *lab.Options) {
		opts.Tracer = tracer
		if tracer != nil {
			opts.TraceDump = os.Stderr
		}
		if *governFlag {
			opts.Govern = true
			opts.GovernorConfig = experiments.GovernorProfile()
		}
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer cleanup()
	if *faultSpec != "" {
		sched, err := faults.ParseSpec(*faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fs := *faultSeed
		if fs == 0 {
			fs = *seed
		}
		l.ApplyFaults(sched, fs)
		fmt.Fprintf(os.Stderr, "fault injection active: %s (seed %d)\n", sched, fs)
	}
	if *metricsAddr != "" {
		srv, err := obs.Serve(*metricsAddr, l.Metrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "metrics on http://%s/metrics (also /debug/vars, /debug/pprof)\n", srv.Addr())
	}
	if *statsEvery > 0 {
		stop := l.Metrics.LogPeriodically(os.Stderr, *statsEvery)
		defer stop()
	}

	res := experiments.RunWorkloadOn(l, kind, size, *seed,
		units.Duration(*timeoutS)*units.Duration(units.Second))

	fmt.Printf("workload=%s scheme=%s size=%s seed=%d\n", kind, sch, units.BytesString(size), *seed)
	fmt.Printf("flows completed: %d/%d (finished at %v)\n", res.Completed, res.Total, res.FinishedAt)
	fmt.Printf("avg flow throughput: %.2f Gbps\n", res.AvgGoodput().Gigabits())
	fmt.Printf("flow throughput p10/p50/p90: %.2f / %.2f / %.2f Gbps\n",
		units.Rate(res.Goodputs.Quantile(0.1)).Gigabits(),
		units.Rate(res.Goodputs.Median()).Gigabits(),
		units.Rate(res.Goodputs.Quantile(0.9)).Gigabits())
	if res.HostCompletion.N() > 0 {
		fmt.Printf("host completion p50: %.2fs\n", res.HostCompletion.Median())
	}
	if c := l.Ctrl; c != nil {
		fmt.Printf("routing plane: epoch %d committed, %d ARP reroutes, %d OpenFlow reroutes\n",
			c.RoutingStore().Epoch(), c.ARPReroutes, c.OFReroutes)
	}
	if tracer != nil {
		tracer.FlushOpen() // spans still awaiting convergence → orphaned
		fmt.Println()
		tracer.WriteBreakdown(os.Stdout)
		if n := int(tracer.Converged.Value()); n < *traceMin {
			fmt.Fprintf(os.Stderr, "trace-min: %d converged traces, need %d\n", n, *traceMin)
			os.Exit(1)
		}
	}
	if *governFlag {
		var commits, converged int
		fmt.Println()
		for s, gov := range l.Governors {
			if gov == nil {
				continue
			}
			eff, conf := gov.LastEstimate()
			fmt.Printf("governor %s: commits=%d sheds=%d tunes=%d restores=%d converged=%d skipped(dark/cooldown/lowconf)=%d/%d/%d effective=%.2f conf=%.2f\n",
				l.Net.SwitchNames[s], gov.Commits.Value(), gov.Sheds.Value(), gov.Tunes.Value(),
				gov.Restores.Value(), gov.ConvergedEpisodes(),
				gov.SkippedDark.Value(), gov.SkippedCooldown.Value(), gov.SkippedLowConf.Value(),
				eff, conf)
			commits += int(gov.Commits.Value())
			converged += gov.ConvergedEpisodes()
		}
		if commits < *governMin || converged < *governMin {
			fmt.Fprintf(os.Stderr, "govern-min: %d commits / %d converged loops, need %d of each\n",
				commits, converged, *governMin)
			os.Exit(1)
		}
	}
}

func parseSize(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "GiB"):
		mult = 1 << 30
		s = strings.TrimSuffix(s, "GiB")
	case strings.HasSuffix(s, "MiB"):
		mult = 1 << 20
		s = strings.TrimSuffix(s, "MiB")
	case strings.HasSuffix(s, "KiB"):
		mult = 1 << 10
		s = strings.TrimSuffix(s, "KiB")
	}
	v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return v * mult, nil
}
