package main

import "testing"

func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want int64
	}{
		{"100MiB", 100 << 20},
		{"1GiB", 1 << 30},
		{"512KiB", 512 << 10},
		{"12345", 12345},
	}
	for _, c := range cases {
		got, err := parseSize(c.in)
		if err != nil || got != c.want {
			t.Errorf("parseSize(%q) = %d, %v; want %d", c.in, got, err, c.want)
		}
	}
	if _, err := parseSize("zzz"); err == nil {
		t.Error("garbage accepted")
	}
}
