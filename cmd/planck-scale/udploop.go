package main

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"planck/internal/agg"
	"planck/internal/core"
	"planck/internal/faults"
	"planck/internal/packet"
	"planck/internal/units"
	"planck/internal/vantagelink"
)

// udpRun exercises the vantage report transport over real sockets: n
// sender goroutines, each with its own skewed wall clock and a lossy
// fault gate in front of a connected UDP socket, stream over-threshold
// flow reports to one loopback receiver feeding an aggregation plane.
// It gates on the transport's end-to-end promises — every record
// delivered exactly once, every sender clock-synced, and zero
// congestion events violating the per-link cooldown — and exits 1 if
// any of them breaks.
func udpRun(n int, loss float64, seed int64) int {
	const (
		numPorts   = 4
		reports    = 400 // per vantage
		reportGap  = 50 * time.Microsecond
		settleWait = 10 * time.Second
	)

	plane := agg.New(agg.Config{
		ReorderWindow:        units.Millisecond,
		ExternalMergeAdvance: true,
	})
	spacing := newEventSpacing(core.Config{}.WithDefaults().EventCooldown)
	perSwitch := make(map[string]int)
	plane.Subscribe(func(ev core.CongestionEvent) {
		spacing.observe(ev)
		perSwitch[ev.SwitchName]++
	})

	// A generous hold timeout: real-goroutine senders pause on
	// scheduler whims, and a silence exclusion here would let the
	// watermark run past records still queued in a sender.
	rx, err := vantagelink.ListenUDPReceiver("127.0.0.1:0", vantagelink.ReceiverConfig{
		HoldTimeout: 500 * units.Millisecond,
	}, nil, units.Millisecond)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	// Exactly-once ledger, written by the receiver goroutine under its
	// lock (delivery sinks run inside HandleDatagram) and read only
	// after the receiver is closed.
	delivered := make([]int, n)
	seen := make(map[packet.FlowKey]int)
	dups := 0

	ids := make([]uint16, n)
	for v := 0; v < n; v++ {
		pv := plane.Join(v, fmt.Sprintf("sw%d", v), numPorts, units.Rate10G)
		pv.BindTransport()
		ids[v] = uint16(pv.ID())
		id := v
		rx.Join(ids[v], countingSink{v: pv, n: func(rep *core.FlowReport) {
			delivered[id]++
			seen[rep.Key]++
			if seen[rep.Key] > 1 {
				dups++
			}
		}})
	}
	rx.Locked(func() {
		rx.Receiver().OnAdvance = plane.AdvanceMerge
	})

	var sched *faults.Schedule
	if loss > 0 {
		sched = faults.NewSchedule(faults.Rule{Kind: faults.KindLoss, From: 0, To: faults.Forever, Prob: loss})
	}

	senders := make([]*vantagelink.UDPSender, n)
	gates := make([]*vantagelink.FaultGate, n)
	clocks := make([]*vantagelink.WallClock, n)
	for v := 0; v < n; v++ {
		// Deterministic per-vantage skew, spread a few hundred µs
		// either side of the receiver's clock so the sync exchange has
		// real offsets to cancel.
		skew := units.Duration(v-n/2) * 237 * units.Microsecond
		clocks[v] = vantagelink.NewSkewedWallClock(skew)
		var gate *vantagelink.FaultGate
		wrap := func(ch vantagelink.Channel) vantagelink.Channel {
			gate = vantagelink.NewFaultGate(ch, sched, seed+int64(v)*6151)
			return gate
		}
		tx, err := vantagelink.DialUDPSender(rx.Addr(), vantagelink.SenderConfig{
			Vantage:    ids[v],
			SwitchName: fmt.Sprintf("sw%d", v),
		}, clocks[v], units.Millisecond, wrap)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		senders[v] = tx
		gates[v] = gate
	}

	var wg sync.WaitGroup
	for v := 0; v < n; v++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(v)))
			tx := senders[v]
			for i := 0; i < reports; i++ {
				now := clocks[v].Now()
				rep := core.FlowReport{
					Time: now,
					Key: packet.FlowKey{
						SrcIP:   packet.IPv4{10, 0, byte(v), 1},
						DstIP:   packet.IPv4{10, 8, byte(i >> 8), byte(i)},
						SrcPort: uint16(i),
						DstPort: 5001,
						Proto:   packet.IPProtocolTCP,
					},
					DstMAC:      packet.MAC{2, 0, 0, 0, byte(v), byte(i)},
					OutPort:     i % numPorts,
					Epoch:       1,
					Rate:        units.Rate(9_500_000_000 + rng.Int63n(1_000_000)),
					RateOK:      true,
					RateUpdated: true,
				}
				tx.Report(&rep)
				tx.BatchEnd(now)
				time.Sleep(reportGap)
			}
		}(v)
	}
	wg.Wait()

	// Senders keep heartbeating (NACK recovery and watermark advance
	// need them alive); wait for the receiver to finish resequencing.
	complete := false
	deadline := time.Now().Add(settleWait)
	for time.Now().Before(deadline) {
		var total int64
		rx.Locked(func() {
			total = rx.Receiver().RecordsReceived()
			complete = rx.Receiver().Complete()
		})
		if complete && total >= int64(n*reports) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	syncedAll := true
	var frames, records, resends, sheds, lost int64
	for v, tx := range senders {
		if !tx.Synced() {
			fmt.Fprintf(os.Stderr, "udp fleet: sender %d never completed clock sync\n", v)
			syncedAll = false
		}
		frames += tx.Sender().FramesSent()
		records += tx.Sender().RecordsSent()
		resends += tx.Sender().Resends()
		sheds += tx.Sender().Sheds()
		tx.Close()
	}
	for _, g := range gates {
		if g != nil {
			lost += g.Met.Lost.Value()
		}
	}
	rx.Close()
	plane.Flush()

	m := plane.Merger()
	fmt.Printf("udp fleet: %d vantages over %s, loss %.0f%%: %d frames / %d records sent, %d lost on the wire, %d resent, %d shed\n",
		n, rx.Addr(), loss*100, frames, records, lost, resends, sheds)
	fmt.Printf("udp fleet rx: %d records released, %d gaps, %d abandoned, %d dup frames, %d excluded\n",
		rx.Receiver().RecordsReleased(), rx.Receiver().GapsDetected(),
		rx.Receiver().Abandoned(), rx.Receiver().DupFrames(), rx.Receiver().Exclusions())
	fmt.Printf("udp fleet plane: %d events emitted (%d switches), %d deduped, %d late\n",
		spacing.events, len(perSwitch), m.Deduped, m.Late)

	code := 0
	if !complete {
		fmt.Fprintln(os.Stderr, "udp fleet: receiver never drained (outstanding gaps or buffered frames)")
		code = 1
	}
	for v := 0; v < n; v++ {
		if delivered[v] != reports {
			fmt.Fprintf(os.Stderr, "udp fleet: vantage %d delivered %d/%d records\n", v, delivered[v], reports)
			code = 1
		}
	}
	if dups > 0 {
		fmt.Fprintf(os.Stderr, "udp fleet: %d records delivered more than once\n", dups)
		code = 1
	}
	if !syncedAll {
		code = 1
	}
	if spacing.bad > 0 {
		fmt.Fprintf(os.Stderr, "udp fleet: %d/%d congestion events violated the per-link cooldown\n", spacing.bad, spacing.events)
		code = 1
	}
	if len(perSwitch) < n {
		fmt.Fprintf(os.Stderr, "udp fleet: events covered %d/%d switches\n", len(perSwitch), n)
		code = 1
	}
	return code
}

// countingSink forwards resequenced records into a plane vantage and
// runs the smoke's exactly-once ledger on the side.
type countingSink struct {
	v *agg.Vantage
	n func(rep *core.FlowReport)
}

func (s countingSink) Report(rep *core.FlowReport) {
	s.n(rep)
	s.v.Report(rep)
}
func (s countingSink) Live(now units.Time) { s.v.NoteLive(now) }
func (s countingSink) Rejoin(uint32)       { s.v.Rejoin() }
