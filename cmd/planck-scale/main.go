// Command planck-scale prints the §9.1 deployment-cost table and lets
// operators explore other switch radixes. With -run it also executes a
// fleet-scale end-to-end pass: a k-ary fat tree (default k=8, 128
// hosts) monitored by a fleet of per-mirror-port vantage collectors
// feeding the federated aggregation plane, PlanckTE consuming the
// plane's merged network view, a colliding stride workload, and
// control-loop tracing. It exits nonzero unless every flow completes
// AND every pod records at least one complete detection→convergence
// trace — the scale-pipeline smoke artifact CI gates on.
//
// Usage:
//
//	planck-scale
//	planck-scale -ports 32 -monitor 2
//	planck-scale -run -k 8 -collectors 0 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"

	"planck/internal/experiments"
	"planck/internal/lab"
	"planck/internal/obs/trace"
	"planck/internal/scale"
	"planck/internal/te"
	"planck/internal/topo"
	"planck/internal/units"
)

func main() {
	ports := flag.Int("ports", 0, "explore a custom switch radix (0 = just the paper table)")
	monitor := flag.Int("monitor", 1, "monitor ports per switch for -ports mode")
	run := flag.Bool("run", false, "run a fleet end-to-end traced pass and print its trace summary")
	k := flag.Int("k", 8, "fat-tree arity for -run (even, >= 4)")
	collectors := flag.Int("collectors", 0, "vantage collectors for -run, spread round-robin across pods (0 = every switch)")
	size := flag.Int64("size", 6<<20, "per-flow bytes for -run's stride workload")
	seed := flag.Int64("seed", 7, "seed for -run")
	flag.Parse()

	fmt.Print(experiments.Scalability().Render())

	if *ports > 0 {
		d := scale.PlanFatTree(*ports, *monitor)
		fmt.Printf("\ncustom fat-tree (%d-port, %d monitor): %s\n", *ports, *monitor, d)
		j := scale.PlanJellyfish(*ports, *monitor, d.Hosts)
		fmt.Printf("custom Jellyfish (same hosts):        %s\n", j)
	}

	if *run {
		os.Exit(fleetRun(*k, *collectors, *size, *seed))
	}
}

// pickCollectors chooses n monitored switches round-robin across pods
// (cores last), so a partial fleet still gives every pod local
// coverage. n <= 0 selects every switch (nil = no restriction).
func pickCollectors(net *topo.Network, n int) []int {
	if n <= 0 {
		return nil
	}
	byPod := make([][]int, net.Pods+1)
	for s := 0; s < net.NumSwitches(); s++ {
		p := net.PodOfSwitch(s)
		if p < 0 {
			p = net.Pods
		}
		byPod[p] = append(byPod[p], s)
	}
	var out []int
	for i := 0; len(out) < n; i++ {
		took := false
		for p := 0; p < len(byPod) && len(out) < n; p++ {
			if i < len(byPod[p]) {
				out = append(out, byPod[p][i])
				took = true
			}
		}
		if !took {
			break
		}
	}
	return out
}

// fleetRun is the end-to-end pass: build the k-ary fat tree as a
// collector fleet with the aggregation plane, point PlanckTE's network
// view at the plane, drive the colliding stride workload, and gate on
// completed flows plus one complete detection→convergence trace per
// pod. Returns the process exit code.
func fleetRun(k, collectors int, size, seed int64) int {
	net := topo.FatTree(k, units.Rate10G)
	tracer := trace.New(4096)
	opts := lab.Options{
		Net:             net,
		Mirror:          true,
		Aggregate:       true,
		MonitorSwitches: pickCollectors(net, collectors),
		Tracer:          tracer,
		Seed:            seed,
	}
	l, err := lab.New(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	tec := te.DefaultPlanckTEConfig()
	tec.Source = l.Agg
	te.NewPlanckTE(l.Ctrl, tec)

	res := experiments.RunWorkloadOn(l, experiments.WorkloadStride, size, seed,
		60*units.Duration(units.Second))

	fmt.Printf("\nk=%d fleet pass: %d vantages, %d/%d flows completed at %v, epoch %d, %d reroutes\n",
		k, l.Agg.Vantages(), res.Completed, res.Total, res.FinishedAt,
		l.Ctrl.RoutingStore().Epoch(), l.Ctrl.ARPReroutes+l.Ctrl.OFReroutes)
	m := l.Agg.Merger()
	fmt.Printf("aggregation plane: %d flows merged, %d events emitted, %d deduped, %d late, %d dup reports, %d stale vantages\n",
		l.Agg.FlowCount(), m.Emitted, m.Deduped, m.Late, l.Agg.DupReports(), len(l.Agg.StaleVantages()))
	tracer.FlushOpen()
	tracer.WriteBreakdown(os.Stdout)

	if res.Completed < res.Total {
		fmt.Fprintf(os.Stderr, "fleet: only %d/%d flows completed\n", res.Completed, res.Total)
		return 1
	}

	// Per-pod convergence gate: every pod must have closed at least one
	// full detection→convergence loop through the fleet.
	swIdx := make(map[string]int, net.NumSwitches())
	for s, name := range net.SwitchNames {
		swIdx[name] = s
	}
	podDone := make([]int, net.Pods)
	for _, s := range tracer.ConvergedSpans() {
		if !s.Complete() {
			continue
		}
		if p := net.PodOfSwitch(swIdx[s.Switch]); p >= 0 {
			podDone[p]++
		}
	}
	ok := true
	for p, nDone := range podDone {
		fmt.Printf("pod %d: %d complete control loops\n", p, nDone)
		if nDone == 0 {
			ok = false
		}
	}
	if !ok {
		fmt.Fprintln(os.Stderr, "fleet: some pod closed no complete detection→convergence trace")
		return 1
	}
	return 0
}
