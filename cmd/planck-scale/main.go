// Command planck-scale prints the §9.1 deployment-cost table and lets
// operators explore other switch radixes.
//
// Usage:
//
//	planck-scale
//	planck-scale -ports 32 -monitor 2
package main

import (
	"flag"
	"fmt"

	"planck/internal/experiments"
	"planck/internal/scale"
)

func main() {
	ports := flag.Int("ports", 0, "explore a custom switch radix (0 = just the paper table)")
	monitor := flag.Int("monitor", 1, "monitor ports per switch for -ports mode")
	flag.Parse()

	fmt.Print(experiments.Scalability().Render())

	if *ports > 0 {
		d := scale.PlanFatTree(*ports, *monitor)
		fmt.Printf("\ncustom fat-tree (%d-port, %d monitor): %s\n", *ports, *monitor, d)
		j := scale.PlanJellyfish(*ports, *monitor, d.Hosts)
		fmt.Printf("custom Jellyfish (same hosts):        %s\n", j)
	}
}
