// Command planck-scale prints the §9.1 deployment-cost table and lets
// operators explore other switch radixes. With -run it also executes a
// fleet-scale end-to-end pass: a k-ary fat tree (default k=8, 128
// hosts) monitored by a fleet of per-mirror-port vantage collectors
// feeding the federated aggregation plane, PlanckTE consuming the
// plane's merged network view, a colliding stride workload, and
// control-loop tracing. It exits nonzero unless every flow completes
// AND every pod records at least one complete detection→convergence
// trace — the scale-pipeline smoke artifact CI gates on.
//
// Usage:
//
//	planck-scale
//	planck-scale -ports 32 -monitor 2
//	planck-scale -run -k 8 -collectors 0 -seed 7
//	planck-scale -run -k 8 -transport link -link-loss 0.05
//	planck-scale -run -k 4 -transport udp -link-loss 0.05
//
// -transport selects how vantage reports reach the aggregation plane:
// in-process calls (inproc, the default), the vantagelink wire
// protocol over simulated lossy channels (link), or real UDP loopback
// sockets with one goroutine pair per vantage (udp). link and udp
// honour -link-loss, and both gate on zero duplicate congestion
// events: per-link event spacing must respect the merger's cooldown
// even while the transport is recovering lost report frames.
package main

import (
	"flag"
	"fmt"
	"os"

	"planck/internal/core"
	"planck/internal/experiments"
	"planck/internal/lab"
	"planck/internal/obs/trace"
	"planck/internal/scale"
	"planck/internal/te"
	"planck/internal/topo"
	"planck/internal/units"
)

func main() {
	ports := flag.Int("ports", 0, "explore a custom switch radix (0 = just the paper table)")
	monitor := flag.Int("monitor", 1, "monitor ports per switch for -ports mode")
	run := flag.Bool("run", false, "run a fleet end-to-end traced pass and print its trace summary")
	k := flag.Int("k", 8, "fat-tree arity for -run (even, >= 4)")
	collectors := flag.Int("collectors", 0, "vantage collectors for -run, spread round-robin across pods (0 = every switch)")
	size := flag.Int64("size", 6<<20, "per-flow bytes for -run's stride workload")
	seed := flag.Int64("seed", 7, "seed for -run")
	transport := flag.String("transport", "inproc", "report transport for -run: inproc, link, or udp")
	linkLoss := flag.Float64("link-loss", 0, "report-channel loss probability for -transport link/udp")
	linkSeed := flag.Int64("link-seed", 0, "report-channel fault seed for -transport link/udp (0 = -seed)")
	flag.Parse()

	fmt.Print(experiments.Scalability().Render())

	if *ports > 0 {
		d := scale.PlanFatTree(*ports, *monitor)
		fmt.Printf("\ncustom fat-tree (%d-port, %d monitor): %s\n", *ports, *monitor, d)
		j := scale.PlanJellyfish(*ports, *monitor, d.Hosts)
		fmt.Printf("custom Jellyfish (same hosts):        %s\n", j)
	}

	if *run {
		ls := *linkSeed
		if ls == 0 {
			ls = *seed
		}
		switch *transport {
		case "inproc":
			os.Exit(fleetRun(*k, *collectors, *size, *seed, lab.TransportInProcess, 0, 0))
		case "link":
			os.Exit(fleetRun(*k, *collectors, *size, *seed, lab.TransportLink, *linkLoss, ls))
		case "udp":
			os.Exit(udpRun(*k, *linkLoss, ls))
		default:
			fmt.Fprintf(os.Stderr, "unknown -transport %q (want inproc, link, or udp)\n", *transport)
			os.Exit(2)
		}
	}
}

// eventSpacing watches emitted congestion events and counts per-link
// cooldown violations — two events on one link closer than the merger's
// cooldown means a duplicate slipped through the fleet's dedup.
type eventSpacing struct {
	cooldown units.Duration
	last     map[string]units.Time
	events   int
	bad      int
}

func newEventSpacing(cooldown units.Duration) *eventSpacing {
	return &eventSpacing{cooldown: cooldown, last: make(map[string]units.Time)}
}

func (c *eventSpacing) observe(ev core.CongestionEvent) {
	c.events++
	key := fmt.Sprintf("%s/%d", ev.SwitchName, ev.Port)
	if prev, ok := c.last[key]; ok && ev.Time.Sub(prev) < c.cooldown {
		c.bad++
	}
	c.last[key] = ev.Time
}

// pickCollectors chooses n monitored switches round-robin across pods
// (cores last), so a partial fleet still gives every pod local
// coverage. n <= 0 selects every switch (nil = no restriction).
func pickCollectors(net *topo.Network, n int) []int {
	if n <= 0 {
		return nil
	}
	byPod := make([][]int, net.Pods+1)
	for s := 0; s < net.NumSwitches(); s++ {
		p := net.PodOfSwitch(s)
		if p < 0 {
			p = net.Pods
		}
		byPod[p] = append(byPod[p], s)
	}
	var out []int
	for i := 0; len(out) < n; i++ {
		took := false
		for p := 0; p < len(byPod) && len(out) < n; p++ {
			if i < len(byPod[p]) {
				out = append(out, byPod[p][i])
				took = true
			}
		}
		if !took {
			break
		}
	}
	return out
}

// fleetRun is the end-to-end pass: build the k-ary fat tree as a
// collector fleet with the aggregation plane, point PlanckTE's network
// view at the plane, drive the colliding stride workload, and gate on
// completed flows plus one complete detection→convergence trace per
// pod. Returns the process exit code.
func fleetRun(k, collectors int, size, seed int64, mode lab.TransportMode, linkLoss float64, linkSeed int64) int {
	net := topo.FatTree(k, units.Rate10G)
	tracer := trace.New(4096)
	opts := lab.Options{
		Net:             net,
		Mirror:          true,
		Aggregate:       true,
		MonitorSwitches: pickCollectors(net, collectors),
		Tracer:          tracer,
		Seed:            seed,
		Transport:       mode,
		LinkFaultSeed:   linkSeed,
	}
	if linkLoss > 0 {
		opts.LinkFaultSpec = fmt.Sprintf("loss:%g", linkLoss)
	}
	l, err := lab.New(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	spacing := newEventSpacing(core.Config{}.WithDefaults().EventCooldown)
	l.Agg.Subscribe(spacing.observe)
	tec := te.DefaultPlanckTEConfig()
	tec.Source = l.Agg
	te.NewPlanckTE(l.Ctrl, tec)

	res := experiments.RunWorkloadOn(l, experiments.WorkloadStride, size, seed,
		60*units.Duration(units.Second))

	fmt.Printf("\nk=%d fleet pass: %d vantages, %d/%d flows completed at %v, epoch %d, %d reroutes\n",
		k, l.Agg.Vantages(), res.Completed, res.Total, res.FinishedAt,
		l.Ctrl.RoutingStore().Epoch(), l.Ctrl.ARPReroutes+l.Ctrl.OFReroutes)
	m := l.Agg.Merger()
	fmt.Printf("aggregation plane: %d flows merged, %d events emitted, %d deduped, %d late, %d dup reports, %d stale vantages\n",
		l.Agg.FlowCount(), m.Emitted, m.Deduped, m.Late, l.Agg.DupReports(), len(l.Agg.StaleVantages()))
	if mode == lab.TransportLink {
		if code := gateLinkTransport(l, net); code != 0 {
			return code
		}
	}
	tracer.FlushOpen()
	tracer.WriteBreakdown(os.Stdout)

	if res.Completed < res.Total {
		fmt.Fprintf(os.Stderr, "fleet: only %d/%d flows completed\n", res.Completed, res.Total)
		return 1
	}
	if spacing.bad > 0 {
		fmt.Fprintf(os.Stderr, "fleet: %d/%d congestion events violated the per-link cooldown (duplicates)\n", spacing.bad, spacing.events)
		return 1
	}

	// Per-pod convergence gate: every pod must have closed at least one
	// full detection→convergence loop through the fleet.
	swIdx := make(map[string]int, net.NumSwitches())
	for s, name := range net.SwitchNames {
		swIdx[name] = s
	}
	podDone := make([]int, net.Pods)
	for _, s := range tracer.ConvergedSpans() {
		if !s.Complete() {
			continue
		}
		if p := net.PodOfSwitch(swIdx[s.Switch]); p >= 0 {
			podDone[p]++
		}
	}
	ok := true
	for p, nDone := range podDone {
		fmt.Printf("pod %d: %d complete control loops\n", p, nDone)
		if nDone == 0 {
			ok = false
		}
	}
	if !ok {
		fmt.Fprintln(os.Stderr, "fleet: some pod closed no complete detection→convergence trace")
		return 1
	}
	return 0
}

// gateLinkTransport prints the wire-transport totals for a TransportLink
// run and fails it when the link did not actually deliver: every active
// sender must have completed the clock-sync exchange, and the receiver
// must have released records to the plane.
func gateLinkTransport(l *lab.Lab, net *topo.Network) int {
	var frames, records, resends, sheds, lost int64
	active, synced := 0, 0
	for s := 0; s < net.NumSwitches(); s++ {
		snd := l.LinkSender(s)
		if snd == nil || snd.FramesSent() == 0 {
			continue
		}
		active++
		if _, ok := snd.Offset(); ok {
			synced++
		}
		frames += snd.FramesSent()
		records += snd.RecordsSent()
		resends += snd.Resends()
		sheds += snd.Sheds()
		if g := l.LinkGate(s); g != nil {
			lost += g.Met.Lost.Value()
		}
	}
	rx := l.LinkReceiver()
	fmt.Printf("vantage link: %d senders (%d synced), %d frames / %d records sent, %d lost on the wire, %d resent, %d shed\n",
		active, synced, frames, records, lost, resends, sheds)
	fmt.Printf("vantage link rx: %d records released, %d gaps detected, %d abandoned, %d late, %d dup frames\n",
		rx.RecordsReleased(), rx.GapsDetected(), rx.Abandoned(), rx.LateRecords(), rx.DupFrames())
	if synced < active {
		fmt.Fprintf(os.Stderr, "fleet link: only %d/%d active senders completed clock sync\n", synced, active)
		return 1
	}
	if rx.RecordsReleased() == 0 {
		fmt.Fprintln(os.Stderr, "fleet link: receiver released no records to the plane")
		return 1
	}
	return 0
}
