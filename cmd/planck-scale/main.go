// Command planck-scale prints the §9.1 deployment-cost table and lets
// operators explore other switch radixes. With -run it also executes a
// minimal k=4 fat-tree pass end to end — colliding workload, PlanckTE,
// control-loop tracing — and prints the trace summary, exiting nonzero
// unless at least one complete detection→convergence trace was
// recorded; CI uses this as the scale-pipeline smoke artifact.
//
// Usage:
//
//	planck-scale
//	planck-scale -ports 32 -monitor 2
//	planck-scale -run -seed 7
package main

import (
	"flag"
	"fmt"
	"os"

	"planck/internal/experiments"
	"planck/internal/lab"
	"planck/internal/obs/trace"
	"planck/internal/scale"
	"planck/internal/units"
)

func main() {
	ports := flag.Int("ports", 0, "explore a custom switch radix (0 = just the paper table)")
	monitor := flag.Int("monitor", 1, "monitor ports per switch for -ports mode")
	run := flag.Bool("run", false, "run a minimal k=4 end-to-end traced pass and print its trace summary")
	seed := flag.Int64("seed", 7, "seed for -run")
	flag.Parse()

	fmt.Print(experiments.Scalability().Render())

	if *ports > 0 {
		d := scale.PlanFatTree(*ports, *monitor)
		fmt.Printf("\ncustom fat-tree (%d-port, %d monitor): %s\n", *ports, *monitor, d)
		j := scale.PlanJellyfish(*ports, *monitor, d.Hosts)
		fmt.Printf("custom Jellyfish (same hosts):        %s\n", j)
	}

	if *run {
		os.Exit(smoke(*seed))
	}
}

// smoke runs the minimal end-to-end pass: the k=4 (16-host) fat tree
// under PlanckTE with a stride workload whose base-tree collisions
// force reroutes, tracing every control loop. Returns the process exit
// code.
func smoke(seed int64) int {
	tracer := trace.New(256)
	l, cleanup, err := experiments.SchemeLabWith(experiments.SchemePlanckTE, seed,
		func(opts *lab.Options) { opts.Tracer = tracer })
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer cleanup()

	res := experiments.RunWorkloadOn(l, experiments.WorkloadStride, 20<<20, seed,
		60*units.Duration(units.Second))

	fmt.Printf("\nk=4 smoke pass: %d/%d flows completed at %v, epoch %d, %d reroutes\n",
		res.Completed, res.Total, res.FinishedAt,
		l.Ctrl.RoutingStore().Epoch(), l.Ctrl.ARPReroutes+l.Ctrl.OFReroutes)
	tracer.FlushOpen()
	tracer.WriteBreakdown(os.Stdout)

	if res.Completed < res.Total {
		fmt.Fprintf(os.Stderr, "smoke: only %d/%d flows completed\n", res.Completed, res.Total)
		return 1
	}
	for _, s := range tracer.ConvergedSpans() {
		if s.Complete() {
			return 0
		}
	}
	fmt.Fprintln(os.Stderr, "smoke: no complete detection→convergence trace recorded")
	return 1
}
