package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"planck/internal/core"
	"planck/internal/packet"
	"planck/internal/routing"
	"planck/internal/topo"
	"planck/internal/units"
)

// routeBenchReport is BENCH_route.json: the routing-state plane's cost
// model. route_commit_pair is the single-writer Commit (clone + publish,
// off the hot path); route_view_resolve and route_view_refresh are the
// per-sample and per-batch reader costs and must stay allocation-free;
// ingest_serial vs ingest_view bounds what the epoch-aware resolver adds
// to the end-to-end ingest path.
type routeBenchReport struct {
	GoMaxProcs int           `json:"gomaxprocs"`
	NumCPU     int           `json:"num_cpu"`
	Rows       []obsBenchRow `json:"rows"`
}

// viewOverheadTolerance caps ingest_view against ingest_serial measured
// in the same run: attaching an epoch-versioned View may cost at most 5%
// over the mapper-less hot path.
const viewOverheadTolerance = 1.05

// runRouteBench measures the routing plane and writes the rows as JSON
// to path ("-" for stdout). It self-gates: the view rows must be
// 0 allocs/op (the reader side is lock-free and allocation-free by
// contract) and ingest_view must hold viewOverheadTolerance.
func runRouteBench(path string) error {
	rep := routeBenchReport{GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU()}
	rows := map[string]obsBenchRow{}
	add := func(name string, r testing.BenchmarkResult) {
		row := obsBenchRow{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		}
		rep.Rows = append(rep.Rows, row)
		rows[name] = row
		fmt.Fprintf(os.Stderr, "%-32s %10.1f ns/op %6d allocs/op\n",
			name, row.NsPerOp, row.AllocsPerOp)
	}

	add("route_commit_pair", testing.Benchmark(benchRouteCommitPair))
	add("route_view_resolve", testing.Benchmark(benchRouteViewResolve))
	add("route_view_refresh", testing.Benchmark(benchRouteViewRefresh))
	add("ingest_serial", testing.Benchmark(func(b *testing.B) {
		benchIngestMix(b, 0)
	}))
	add("ingest_view", testing.Benchmark(benchIngestView))

	if path != "" {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		out = append(out, '\n')
		if path == "-" {
			if _, err := os.Stdout.Write(out); err != nil {
				return err
			}
		} else if err := os.WriteFile(path, out, 0o644); err != nil {
			return err
		}
	}

	for _, name := range []string{"route_view_resolve", "route_view_refresh"} {
		if r := rows[name]; r.AllocsPerOp != 0 {
			return fmt.Errorf("route bench: %s allocates (%d allocs/op); the view hot path must be allocation-free", name, r.AllocsPerOp)
		}
	}
	// Judge the overhead on a same-run pair so machine speed cancels
	// out; shared-machine noise can still split one pair by more than
	// the tolerance, so a failing comparison re-measures the pair up to
	// twice — a real regression fails every pairing.
	ns := func(r testing.BenchmarkResult) float64 {
		return float64(r.T.Nanoseconds()) / float64(r.N)
	}
	serialNs, viewNs := rows["ingest_serial"].NsPerOp, rows["ingest_view"].NsPerOp
	for attempt := 1; viewNs > serialNs*viewOverheadTolerance && attempt <= 2; attempt++ {
		fmt.Fprintf(os.Stderr, "route bench: ingest_view %.1f vs ingest_serial %.1f ns/op over tolerance; re-measuring pair (retry %d/2)\n",
			viewNs, serialNs, attempt)
		serialNs = ns(testing.Benchmark(func(b *testing.B) { benchIngestMix(b, 0) }))
		viewNs = ns(testing.Benchmark(benchIngestView))
	}
	limit := serialNs * viewOverheadTolerance
	if viewNs > limit {
		return fmt.Errorf("route bench: ingest_view %.1f ns/op exceeds ingest_serial %.1f ns/op +5%% (%.1f)",
			viewNs, serialNs, limit)
	}
	fmt.Fprintf(os.Stderr, "route bench: ingest_view %.1f ns/op within ingest_serial %.1f ns/op +5%% (%.1f)\n",
		viewNs, serialNs, limit)
	return nil
}

// benchRouteCommitPair measures the writer side: one pair-override
// commit per op, i.e. snapshot clone + map COW + atomic publish. This
// runs on the controller's reroute path, not the sample path, so it is
// reported but not alloc-gated.
func benchRouteCommitPair(b *testing.B) {
	net := topo.FatTree16(units.Rate10G)
	st := routing.NewStore(net)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree := i % net.NumTrees
		st.Commit(units.Time(i), func(tx *routing.Tx) {
			tx.SetPairTree(0, 8, tree)
		})
	}
}

// benchRouteViewResolve measures the per-sample reader: ResolveOutput
// through a pinned history with a flow override installed, alternating
// an overridden and a plain flow so both branches stay hot.
func benchRouteViewResolve(b *testing.B) {
	net := topo.FatTree16(units.Rate10G)
	st := routing.NewStore(net)
	key := packet.FlowKey{
		SrcIP: topo.HostIP(0), DstIP: topo.HostIP(8),
		SrcPort: 1000, DstPort: 5001, Proto: packet.IPProtocolTCP,
	}
	st.Commit(0, func(tx *routing.Tx) {
		tx.SetFlowTree(key, 0, 8, 2)
	})
	v := routing.NewView(st, net.Hosts[0].Switch)
	v.Refresh()
	other := key
	other.DstPort = 9999
	label := topo.ShadowMAC(8, 0)
	var t units.Time
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := key
		if i&1 == 1 {
			k = other
		}
		if _, _, ok := v.ResolveOutput(t, k, label); !ok {
			b.Fatal("unresolvable label")
		}
		t = t.Add(units.Duration(123))
	}
}

// benchRouteViewRefresh measures the per-batch reader: re-pinning the
// history (one atomic load) plus the epoch read.
func benchRouteViewRefresh(b *testing.B) {
	net := topo.FatTree16(units.Rate10G)
	st := routing.NewStore(net)
	st.Commit(0, nil)
	v := routing.NewView(st, net.Hosts[0].Switch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if e := v.Refresh(); e != 1 {
			b.Fatal("unexpected epoch")
		}
	}
}

// benchIngestView is benchIngestMix's serial 64-flow workload with an
// epoch-versioned routing View attached as the collector's port mapper:
// every Ingest re-pins the view (epoch check) and resident flows carry a
// resolved output port. The delta against ingest_serial is the routing
// plane's whole hot-path cost.
func benchIngestView(b *testing.B) {
	benchIngestViewWith(b, core.Config{SwitchName: "bench", NumPorts: 8, LinkRate: units.Rate10G})
}

// benchIngestViewWith runs the view-attached ingest workload over a
// caller-tuned collector config — the seam tracebench uses to attach an
// idle control-loop tracer to the otherwise identical hot path.
func benchIngestViewWith(b *testing.B, cfg core.Config) {
	const nFlows = 64
	net := topo.FatTree16(units.Rate10G)
	st := routing.NewStore(net)
	st.Commit(0, nil)
	// The shared bench frames label dst host 1 tree 0; resolve at host
	// 1's edge switch so every sample maps.
	col := core.New(cfg)
	col.SetPortMapper(routing.NewView(st, net.Hosts[1].Switch))

	frames := benchFrames(nFlows)
	seqs := make([]uint32, nFlows)
	seqOff := packet.EthernetHeaderLen + packet.IPv4MinHeaderLen + 4
	var t0 units.Time
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := i % nFlows
		frame := frames[f]
		seq := seqs[f]
		frame[seqOff] = byte(seq >> 24)
		frame[seqOff+1] = byte(seq >> 16)
		frame[seqOff+2] = byte(seq >> 8)
		frame[seqOff+3] = byte(seq)
		if err := col.Ingest(t0, frame); err != nil {
			b.Fatal(err)
		}
		seqs[f] = seq + 1460
		t0 = t0.Add(units.Duration(123))
	}
	b.StopTimer()
	if s := col.Stats(); s.UnmappedOutput != 0 {
		b.Fatalf("%d unmapped samples; the bench labels must resolve", s.UnmappedOutput)
	}
}
