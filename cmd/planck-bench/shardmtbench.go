package main

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
)

// shardMTBenchReport is BENCH_shard_mt.json: the sharded pipeline
// measured with GOMAXPROCS raised to mt-cpu, so the shard workers can
// actually run in parallel — the multicore counterpart to
// BENCH_shard.json's same-budget comparison. gomaxprocs and num_cpu
// record what the host really offered: a speedup row is only meaningful
// when num_cpu backs the parallelism up with real cores.
type shardMTBenchReport struct {
	RunID      string        `json:"run_id,omitempty"`
	GoMaxProcs int           `json:"gomaxprocs"`
	NumCPU     int           `json:"num_cpu"`
	Rows       []obsBenchRow `json:"rows"`
}

// runShardMTBench measures serial ingest against the sharded pipeline
// at 1, 2, 4, and 8 shards under GOMAXPROCS=mtCPU (restored after), and
// writes the rows as JSON to path. Two self-gates ride along:
//
//   - allocation: every sharded row must be 0 allocs/op — the
//     dispatcher/shard/merger hand-off recycles every batch, and any
//     steady-state allocation is a leak regression;
//   - speedup: when the host has ≥2 real cores, ingest_sharded_4 must
//     beat ingest_serial. On a single-core host the ratio measures
//     scheduler overhead, not scaling, so the gate prints an honest
//     skip notice instead of a vacuous pass.
func runShardMTBench(path string, mtCPU, count int, runID string) error {
	prev := runtime.GOMAXPROCS(0)
	if mtCPU > 0 {
		runtime.GOMAXPROCS(mtCPU)
		defer runtime.GOMAXPROCS(prev)
	}
	rep := shardMTBenchReport{RunID: runID, GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU()}

	rep.Rows = append(rep.Rows, measureMin("ingest_serial", count, func(b *testing.B) {
		benchIngestMix(b, 0)
	}))
	for _, shards := range []int{1, 2, 4, 8} {
		shards := shards
		rep.Rows = append(rep.Rows, measureMin(fmt.Sprintf("ingest_sharded_%d", shards), count, func(b *testing.B) {
			benchIngestMix(b, shards)
		}))
	}

	if err := writeReport(rep, path); err != nil {
		return err
	}

	for _, r := range rep.Rows {
		if strings.HasPrefix(r.Name, "ingest_sharded_") && r.AllocsPerOp > 0 {
			return fmt.Errorf("shard-mt gate: %s allocates %d B/op (%d allocs/op); the hand-off must recycle every batch",
				r.Name, r.BytesPerOp, r.AllocsPerOp)
		}
	}

	find := func(name string) (obsBenchRow, bool) {
		for _, r := range rep.Rows {
			if r.Name == name {
				return r, true
			}
		}
		return obsBenchRow{}, false
	}
	serial, ok1 := find("ingest_serial")
	sh4, ok2 := find("ingest_sharded_4")
	if !ok1 || !ok2 {
		return fmt.Errorf("shard-mt gate: report missing ingest_serial or ingest_sharded_4")
	}
	if rep.NumCPU < 2 || rep.GoMaxProcs < 2 {
		fmt.Fprintf(os.Stderr,
			"shard-mt gate: speedup check skipped: host offers %d CPU (GOMAXPROCS %d); shards cannot run in parallel, so sharded/serial = %.2f measures scheduler overhead, not scaling\n",
			rep.NumCPU, rep.GoMaxProcs, sh4.NsPerOp/serial.NsPerOp)
		return nil
	}
	if sh4.NsPerOp >= serial.NsPerOp {
		return fmt.Errorf("shard-mt gate: ingest_sharded_4 %.1f ns/op does not beat ingest_serial %.1f ns/op on %d CPUs (ratio %.2f)",
			sh4.NsPerOp, serial.NsPerOp, rep.NumCPU, sh4.NsPerOp/serial.NsPerOp)
	}
	fmt.Fprintf(os.Stderr, "shard-mt gate: ingest_sharded_4 %.1f ns/op beats ingest_serial %.1f ns/op (speedup %.2fx on %d CPUs)\n",
		sh4.NsPerOp, serial.NsPerOp, serial.NsPerOp/sh4.NsPerOp, rep.NumCPU)
	return nil
}
