package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"planck/internal/core"
	"planck/internal/packet"
	"planck/internal/units"
)

// ingestBenchReport is BENCH_ingest.json: the serial ingest hot path
// measured bare and batched, plus the flow-table microbenchmarks that
// isolate the open-addressed table against the built-in map it
// replaced. ingest_serial is the gated row — the collector's per-sample
// budget — so the report also records the parallelism context.
type ingestBenchReport struct {
	RunID      string        `json:"run_id,omitempty"`
	GoMaxProcs int           `json:"gomaxprocs"`
	NumCPU     int           `json:"num_cpu"`
	Rows       []obsBenchRow `json:"rows"`
}

// runIngestBench measures the ingest hot path (each row the minimum of
// count runs) and writes the rows as JSON to path ("-" for stdout, ""
// to skip writing). gateAgainst, when non-empty, is a committed
// baseline report; the run fails if the fresh ingest_serial ns/op
// regressed more than 5% against it.
func runIngestBench(path, gateAgainst string, count int, runID string) error {
	rep := ingestBenchReport{RunID: runID, GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU()}

	rep.Rows = append(rep.Rows, measureMin("ingest_serial", count, func(b *testing.B) {
		benchIngestMix(b, 0)
	}))
	rep.Rows = append(rep.Rows, measureMin("ingest_batched", count, benchIngestBatched))
	rep.Rows = append(rep.Rows, measureMin("table_lookup", count, benchTableLookup))
	rep.Rows = append(rep.Rows, measureMin("map_lookup", count, benchMapLookup))

	if err := writeReport(rep, path); err != nil {
		return err
	}

	if gateAgainst != "" {
		return gateIngestSerial(rep, gateAgainst, func() float64 {
			r := testing.Benchmark(func(b *testing.B) { benchIngestMix(b, 0) })
			return float64(r.T.Nanoseconds()) / float64(r.N)
		})
	}
	return nil
}

// gateIngestSerial compares the fresh ingest_serial measurement against
// the committed baseline and fails on a >5% ns/op regression — the
// hot-path perf contract enforced by `make bench-gate`. The baseline is
// regenerated (make bench-ingest) whenever a PR deliberately changes the
// hot path. Shared-machine scheduling noise can exceed the tolerance on
// a single sample, so an over-limit measurement is retried up to twice
// (via remeasure) and the gate judges the best observation: the minimum
// is the least-noise estimate of the true per-sample cost, and a real
// regression stays over the limit on every retry.
func gateIngestSerial(rep ingestBenchReport, baselinePath string, remeasure func() float64) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("bench gate: %w", err)
	}
	var base ingestBenchReport
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("bench gate: parse %s: %w", baselinePath, err)
	}
	find := func(rows []obsBenchRow) (obsBenchRow, bool) {
		for _, r := range rows {
			if r.Name == "ingest_serial" {
				return r, true
			}
		}
		return obsBenchRow{}, false
	}
	baseRow, ok := find(base.Rows)
	if !ok {
		return fmt.Errorf("bench gate: %s has no ingest_serial row", baselinePath)
	}
	newRow, _ := find(rep.Rows)
	const tolerance = 1.05
	limit := baseRow.NsPerOp * tolerance
	best := newRow.NsPerOp
	for attempt := 1; best > limit && attempt <= 2; attempt++ {
		fmt.Fprintf(os.Stderr, "bench gate: ingest_serial %.1f ns/op over limit %.1f; re-measuring (retry %d/2)\n",
			best, limit, attempt)
		if ns := remeasure(); ns < best {
			best = ns
		}
	}
	if best > limit {
		return fmt.Errorf("bench gate: ingest_serial %.1f ns/op exceeds baseline %.1f ns/op +5%% (%.1f)",
			best, baseRow.NsPerOp, limit)
	}
	fmt.Fprintf(os.Stderr, "bench gate: ingest_serial %.1f ns/op within baseline %.1f ns/op +5%% (%.1f)\n",
		best, baseRow.NsPerOp, limit)
	return nil
}

// benchFrames builds the 64-flow frame templates the ingest benchmarks
// share with benchIngestMix's workload.
func benchFrames(nFlows int) [][]byte {
	frames := make([][]byte, nFlows)
	for i := range frames {
		frames[i] = packet.BuildTCP(nil, packet.TCPSpec{
			SrcMAC: packet.MAC{2, 0, 0, 0, 0, 1}, DstMAC: packet.MAC{2, 0, 0, 0, 0, 2},
			SrcIP: packet.IPv4{10, 0, 0, 1}, DstIP: packet.IPv4{10, 0, 1, byte(i)},
			SrcPort: uint16(1000 + i), DstPort: 2000,
			Flags: packet.TCPAck, PayloadLen: 1460,
		})
	}
	return frames
}

// benchIngestBatched is benchIngestMix's 64-flow workload delivered
// through IngestBatch in chunks of 64 — the end-to-end batched sample
// path (monotone fast path, one sample-counter write per chunk).
func benchIngestBatched(b *testing.B) {
	const nFlows = 64
	col := core.New(core.Config{SwitchName: "bench", NumPorts: 8, LinkRate: units.Rate10G})
	frames := benchFrames(nFlows)
	seqs := make([]uint32, nFlows)
	seqOff := packet.EthernetHeaderLen + packet.IPv4MinHeaderLen + 4

	bts := make([]units.Time, 0, nFlows)
	bframes := make([][]byte, 0, nFlows)
	var t0 units.Time
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := i % nFlows
		frame := frames[f]
		seq := seqs[f]
		frame[seqOff] = byte(seq >> 24)
		frame[seqOff+1] = byte(seq >> 16)
		frame[seqOff+2] = byte(seq >> 8)
		frame[seqOff+3] = byte(seq)
		bts = append(bts, t0)
		bframes = append(bframes, frame)
		if len(bts) == nFlows {
			if err := col.IngestBatch(bts, bframes); err != nil {
				b.Fatal(err)
			}
			bts = bts[:0]
			bframes = bframes[:0]
		}
		seqs[f] = seq + 1460
		t0 = t0.Add(units.Duration(123))
	}
	if len(bts) > 0 {
		if err := col.IngestBatch(bts, bframes); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
}

// benchTableLookup isolates the open-addressed FlowTable: hash + probe
// for a resident 64-flow population, the per-sample table cost inside
// the ingest path.
func benchTableLookup(b *testing.B) {
	const nFlows = 64
	var tab core.FlowTable
	keys := make([]packet.FlowKey, nFlows)
	for i := range keys {
		keys[i] = packet.FlowKey{
			SrcIP: packet.IPv4{10, 0, 0, 1}, DstIP: packet.IPv4{10, 0, 1, byte(i)},
			SrcPort: uint16(1000 + i), DstPort: 2000, Proto: packet.IPProtocolTCP,
		}
		tab.GetOrInsert(core.HashFlowKey(keys[i]), keys[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i%nFlows]
		if tab.Lookup(core.HashFlowKey(k), k) == nil {
			b.Fatal("lost key")
		}
	}
}

// benchMapLookup is benchTableLookup against the built-in
// map[FlowKey]*FlowState the table replaced — the before/after pair
// quoted in EXPERIMENTS.md.
func benchMapLookup(b *testing.B) {
	const nFlows = 64
	m := make(map[packet.FlowKey]*core.FlowState)
	keys := make([]packet.FlowKey, nFlows)
	for i := range keys {
		keys[i] = packet.FlowKey{
			SrcIP: packet.IPv4{10, 0, 0, 1}, DstIP: packet.IPv4{10, 0, 1, byte(i)},
			SrcPort: uint16(1000 + i), DstPort: 2000, Proto: packet.IPProtocolTCP,
		}
		m[keys[i]] = &core.FlowState{Key: keys[i]}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m[keys[i%nFlows]] == nil {
			b.Fatal("lost key")
		}
	}
}
