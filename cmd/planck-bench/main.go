// Command planck-bench regenerates the paper's tables and figures. Each
// experiment prints the same rows/series the paper reports; absolute
// numbers come from the simulated substrate, the shapes from the system
// under test.
//
// Usage:
//
//	planck-bench                         # run everything at default scale
//	planck-bench -experiment table1      # one experiment
//	planck-bench -experiment fig14 -sizes 100MiB,1GiB -runs 3
//	planck-bench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"planck/internal/experiments"
	"planck/internal/units"
)

type runner func(seed int64, cfg benchCfg)

type benchCfg struct {
	sizes    []int64
	runs     int
	episodes int
	duration units.Duration
}

var all = map[string]runner{
	"table1": func(seed int64, _ benchCfg) {
		fmt.Print(experiments.Table1(seed).Table().Render())
	},
	"fig2-4": func(seed int64, cfg benchCfg) {
		pts := experiments.MirrorImpact(experiments.MirrorImpactParams{
			Runs: cfg.runs, Seed: seed, Duration: cfg.duration,
		})
		fmt.Print(experiments.MirrorImpactTable(pts).Render())
	},
	"samplelatency": func(seed int64, _ benchCfg) {
		for _, kind := range []experiments.SwitchKind{experiments.SwitchG8264, experiments.SwitchPronto3290} {
			r := experiments.SampleLatency(experiments.SampleLatencyParams{Kind: kind, Seed: seed})
			fmt.Printf("§5.2 %s: sample latency p1=%.0fµs median=%.0fµs p99=%.0fµs (paper: 75-150µs @10G, 80-450µs @1G)\n",
				kind, r.Samples.Quantile(0.01), r.Samples.Median(), r.Samples.Quantile(0.99))
		}
	},
	"fig5-7": func(seed int64, cfg benchCfg) {
		r := experiments.SampleStream(experiments.SampleStreamParams{Flows: 13, Seed: seed, Duration: cfg.duration})
		fmt.Print(experiments.Fig5Table(r).Render())
		fmt.Print(experiments.Fig7Table(r).Render())
		sweep := experiments.Fig6Sweep(nil, cfg.duration, seed)
		fmt.Print(experiments.Fig6Table(sweep).Render())
	},
	"fig8": func(seed int64, cfg benchCfg) {
		fmt.Print(experiments.Fig8(experiments.Fig8Params{Seed: seed, Duration: cfg.duration}).Table().Render())
	},
	"fig9": func(seed int64, cfg benchCfg) {
		pts := experiments.Fig9(experiments.Fig9Params{Seed: seed, Duration: cfg.duration})
		fmt.Print(experiments.Fig9Table(pts).Render())
	},
	"fig10": func(seed int64, _ benchCfg) {
		series := experiments.Fig10(experiments.Fig10Params{Seed: seed})
		fmt.Print(experiments.Fig10Table(series).Render())
		fmt.Println("time series (ms, rolling Gbps, planck Gbps):")
		for i, pt := range series {
			if i%4 == 0 {
				fmt.Printf("  %6.2f  %6.2f  %6.2f\n",
					units.Duration(pt.Time).Milliseconds(), pt.Rolling.Gigabits(), pt.Planck.Gigabits())
			}
		}
	},
	"fig11": func(seed int64, cfg benchCfg) {
		pts := experiments.Fig11(experiments.Fig11Params{Seed: seed, Duration: cfg.duration})
		fmt.Print(experiments.Fig11Table(pts).Render())
	},
	"fig12": func(seed int64, _ benchCfg) {
		fmt.Print(experiments.Fig12(seed).Table().Render())
	},
	"fig14": func(seed int64, cfg benchCfg) {
		cells := experiments.Fig14(experiments.Fig14Params{
			Sizes: cfg.sizes, Runs: cfg.runs, Seed: seed,
		})
		fmt.Print(experiments.Fig14Table(cells).Render())
	},
	"fig15": func(seed int64, _ benchCfg) {
		r := experiments.Fig15(seed)
		fmt.Print(r.Table().Render())
		fmt.Println("throughput series (ms, flow1 Gbps, flow2 Gbps):")
		for i, pt := range r.Series {
			if i%4 == 0 {
				fmt.Printf("  %6.2f  %6.2f  %6.2f\n",
					units.Duration(pt.Time).Milliseconds(), pt.Flow1.Gigabits(), pt.Flow2.Gigabits())
			}
		}
	},
	"fig16": func(seed int64, cfg benchCfg) {
		r := experiments.Fig16(experiments.Fig16Params{Episodes: cfg.episodes, Seed: seed})
		fmt.Print(r.Table().Render())
	},
	"fig17": func(seed int64, cfg benchCfg) {
		cells := experiments.Fig17(experiments.Fig17Params{Sizes: cfg.sizes, Seed: seed})
		fmt.Print(experiments.Fig17Table(cells).Render())
	},
	"fig18": func(seed int64, cfg benchCfg) {
		size := int64(100 << 20)
		if len(cfg.sizes) > 0 {
			size = cfg.sizes[0]
		}
		r := experiments.Fig18(experiments.Fig18Params{Size: size, Seed: seed})
		fmt.Print(r.Table(nil).Render())
	},
	"scalability": func(int64, benchCfg) {
		fmt.Print(experiments.Scalability().Render())
	},
	"extensions": func(seed int64, _ benchCfg) {
		fmt.Print(experiments.PrioritySamplingTable(experiments.PrioritySampling(seed)).Render())
		fmt.Print(experiments.TargetRateTable(experiments.TargetRateMirroring(seed)).Render())
	},
	"governor": func(seed int64, cfg benchCfg) {
		pts := experiments.GovernorAccuracy(experiments.GovAccuracyParams{Seed: seed, Duration: cfg.duration})
		fmt.Print(experiments.GovernorAccuracyTable(pts).Render())
		fmt.Print(experiments.GovernorEpisodeTable(experiments.GovernorEpisode(seed)).Render())
	},
}

// order fixes the presentation sequence for -experiment all.
var order = []string{
	"table1", "fig2-4", "samplelatency", "fig5-7", "fig8", "fig9",
	"fig10", "fig11", "fig12", "fig15", "fig16", "fig17", "fig14",
	"fig18", "scalability", "extensions", "governor",
}

func parseSizes(s string) ([]int64, error) {
	if s == "" {
		return nil, nil
	}
	var out []int64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		mult := int64(1)
		switch {
		case strings.HasSuffix(part, "GiB"):
			mult = 1 << 30
			part = strings.TrimSuffix(part, "GiB")
		case strings.HasSuffix(part, "MiB"):
			mult = 1 << 20
			part = strings.TrimSuffix(part, "MiB")
		case strings.HasSuffix(part, "KiB"):
			mult = 1 << 10
			part = strings.TrimSuffix(part, "KiB")
		}
		v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad size %q", part)
		}
		out = append(out, v*mult)
	}
	return out, nil
}

func main() {
	exp := flag.String("experiment", "all", "experiment id (see -list)")
	seed := flag.Int64("seed", 1, "deterministic seed")
	runs := flag.Int("runs", 0, "repetitions where applicable (0 = default)")
	episodes := flag.Int("episodes", 0, "fig16 episodes (0 = default)")
	sizesFlag := flag.String("sizes", "", "comma-separated flow sizes, e.g. 100MiB,1GiB")
	durMs := flag.Int("duration-ms", 0, "per-run duration override in ms (0 = default)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	obsJSON := flag.String("obs-json", "", "run the observability microbenchmarks, write JSON here (\"-\" = stdout), and exit")
	shardJSON := flag.String("shard-json", "", "run the sharded-vs-serial ingest benchmarks, write JSON here (\"-\" = stdout), and exit")
	shardMTJSON := flag.String("shard-mt-json", "", "run the multicore sharded ingest benchmarks under GOMAXPROCS=-mt-cpu (self-gated: sharded rows 0 allocs/op; shards=4 beats serial when the host has ≥2 CPUs), write JSON here (\"-\" = stdout), and exit")
	mtCPU := flag.Int("mt-cpu", 4, "GOMAXPROCS for the -shard-mt-json run (restored after; the report records the effective value)")
	ingestJSON := flag.String("ingest-json", "", "run the ingest hot-path benchmarks, write JSON here (\"-\" = stdout), and exit")
	governorJSON := flag.String("governor-json", "", "run the sampling-rate governor benchmarks (self-gated: estimator update rows 0 allocs/op), write JSON here (\"-\" = stdout), and exit")
	count := flag.Int("count", 1, "repeat each ingest/shard/shard-mt benchmark N times and report the minimum ns/op (allocs: maximum)")
	verifyRuns := flag.String("verify-run-ids", "", "comma-separated BENCH_*.json paths: verify they share one run_id (regenerated together) and exit")
	routeJSON := flag.String("route-json", "", "run the routing-plane benchmarks (commit/view/ingest-with-view), write JSON here (\"-\" = stdout), and exit")
	traceJSON := flag.String("trace-json", "", "run the idle-tracing overhead benchmarks (self-gated: ≤2% over bare ingest, 0 allocs/op), write JSON here (\"-\" = stdout), and exit")
	fleetJSON := flag.String("fleet-json", "", "run the aggregation-plane benchmarks (self-gated: per-sample merge rows 0 allocs/op), write JSON here (\"-\" = stdout), and exit")
	linkJSON := flag.String("link-json", "", "run the vantage-link transport benchmarks (self-gated: per-sample codec rows 0 allocs/op), write JSON here (\"-\" = stdout), and exit")
	gateAgainst := flag.String("gate-against", "", "with -ingest-json: fail if ingest_serial regressed >5% vs this baseline report")
	cpu := flag.Int("cpu", 0, "set GOMAXPROCS for this run (0 = runtime default); reports record the effective value")
	flag.Parse()

	if *cpu > 0 {
		runtime.GOMAXPROCS(*cpu)
	}

	if *verifyRuns != "" {
		if err := verifyRunIDs(*verifyRuns); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *obsJSON != "" {
		if err := runObsBench(*obsJSON); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *routeJSON != "" {
		if err := runRouteBench(*routeJSON); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *traceJSON != "" {
		if err := runTraceBench(*traceJSON); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *fleetJSON != "" {
		if err := runFleetBench(*fleetJSON); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *linkJSON != "" {
		if err := runLinkBench(*linkJSON); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	// The ingest, shard, shard-mt, and governor reports combine into one
	// process run: they share a freshly minted run_id, so the committed
	// baselines are provably from the same host and build (see
	// -verify-run-ids).
	if *ingestJSON != "" || *gateAgainst != "" || *shardJSON != "" || *shardMTJSON != "" || *governorJSON != "" {
		runID := newRunID()
		fail := func(err error) {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *ingestJSON != "" || *gateAgainst != "" {
			if err := runIngestBench(*ingestJSON, *gateAgainst, *count, runID); err != nil {
				fail(err)
			}
		}
		if *shardJSON != "" {
			if err := runShardBench(*shardJSON, *count, runID); err != nil {
				fail(err)
			}
		}
		if *shardMTJSON != "" {
			if err := runShardMTBench(*shardMTJSON, *mtCPU, *count, runID); err != nil {
				fail(err)
			}
		}
		if *governorJSON != "" {
			if err := runGovernorBench(*governorJSON, *count, runID); err != nil {
				fail(err)
			}
		}
		return
	}

	if *list {
		ids := make([]string, 0, len(all))
		for id := range all {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		fmt.Println(strings.Join(ids, "\n"))
		return
	}

	sizes, err := parseSizes(*sizesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg := benchCfg{
		sizes:    sizes,
		runs:     *runs,
		episodes: *episodes,
		duration: units.Duration(*durMs) * units.Millisecond,
	}

	if *exp == "all" {
		for _, id := range order {
			fmt.Printf("\n### %s\n", id)
			all[id](*seed, cfg)
		}
		return
	}
	run, ok := all[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
		os.Exit(2)
	}
	run(*seed, cfg)
}
