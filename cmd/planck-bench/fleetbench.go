package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"planck/internal/agg"
	"planck/internal/core"
	"planck/internal/packet"
	"planck/internal/topo"
	"planck/internal/units"
)

// fleetBenchReport is BENCH_fleet.json: the aggregation plane's cost
// model. agg_merge_update is the plane's per-sample price — one vantage
// report folded into the merged flow view — and agg_merge_detect_suppressed
// adds the congestion check on a link inside cooldown; both run once per
// mirrored sample at fleet scale, so both must stay allocation-free.
// agg_event_offer_emit is the merger's ordered emit path, which runs
// only per congestion event and is reported without an alloc gate.
type fleetBenchReport struct {
	GoMaxProcs int           `json:"gomaxprocs"`
	NumCPU     int           `json:"num_cpu"`
	Rows       []obsBenchRow `json:"rows"`
}

// runFleetBench measures the aggregation plane and writes the rows as
// JSON to path ("-" for stdout). Self-gates: the two per-sample rows
// must be 0 allocs/op.
func runFleetBench(path string) error {
	rep := fleetBenchReport{GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU()}
	rows := map[string]obsBenchRow{}
	add := func(name string, r testing.BenchmarkResult) {
		row := obsBenchRow{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		}
		rep.Rows = append(rep.Rows, row)
		rows[name] = row
		fmt.Fprintf(os.Stderr, "%-32s %10.1f ns/op %6d allocs/op\n",
			name, row.NsPerOp, row.AllocsPerOp)
	}

	add("agg_merge_update", testing.Benchmark(benchAggMergeUpdate))
	add("agg_merge_detect_suppressed", testing.Benchmark(benchAggMergeDetectSuppressed))
	add("agg_event_offer_emit", testing.Benchmark(benchAggEventOfferEmit))

	if path != "" {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		out = append(out, '\n')
		if path == "-" {
			if _, err := os.Stdout.Write(out); err != nil {
				return err
			}
		} else if err := os.WriteFile(path, out, 0o644); err != nil {
			return err
		}
	}

	for _, name := range []string{"agg_merge_update", "agg_merge_detect_suppressed"} {
		if r := rows[name]; r.AllocsPerOp != 0 {
			return fmt.Errorf("fleet bench: %s allocates (%d allocs/op); the per-sample merge path must be allocation-free", name, r.AllocsPerOp)
		}
	}
	fmt.Fprintln(os.Stderr, "fleet bench: per-sample merge rows allocation-free")
	return nil
}

// fleetBenchFlows builds nFlows resident FlowState records with a real
// rate estimate of about perFlow each, primes them into the vantage at
// t0, and returns them. All land on egress port 0 — one hot link.
func fleetBenchFlows(v *agg.Vantage, nFlows int, perFlow int64, t0 units.Time) []*core.FlowState {
	flows := make([]*core.FlowState, nFlows)
	for i := range flows {
		f := &core.FlowState{Key: packet.FlowKey{
			SrcIP: topo.HostIP(0), DstIP: topo.HostIP(8),
			SrcPort: uint16(1000 + i), DstPort: 5001,
			Proto: packet.IPProtocolTCP,
		}}
		f.Est = *core.NewRateEstimator()
		// Two samples one 300 µs window apart yield rate = perFlow bytes
		// per 300 µs, giving the bench full control of the link's load.
		f.Est.Observe(0, 0)
		f.Est.Observe(units.Time(300*units.Microsecond), uint32(perFlow))
		flows[i] = f
		rep := core.MakeFlowReport(t0, f, false)
		v.Report(&rep)
	}
	return flows
}

// fleetBenchReports snapshots flows into reusable FlowReports so the
// timed loops measure the plane's merge path, not report construction.
func fleetBenchReports(flows []*core.FlowState, t units.Time, rateUpdated bool) []core.FlowReport {
	reps := make([]core.FlowReport, len(flows))
	for i, f := range flows {
		reps[i] = core.MakeFlowReport(t, f, rateUpdated)
	}
	return reps
}

// benchAggMergeUpdate measures the plane's steady state: one vantage
// report for a resident flow — map hit, freshness/rate/provenance
// update, no port move, no detection (the sample did not close a rate
// window). This is the price every mirrored sample pays at fleet scale.
func benchAggMergeUpdate(b *testing.B) {
	const nFlows = 64
	p := agg.New(agg.Config{})
	v := p.Join(0, "bench", 8, units.Rate10G)
	t := units.Time(units.Millisecond)
	flows := fleetBenchFlows(v, nFlows, 1500, t)
	reps := fleetBenchReports(flows, t, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := &reps[i%nFlows]
		rep.Time = t
		v.Report(rep)
		t = t.Add(units.Duration(123))
	}
	b.StopTimer()
	if p.FlowCount() != nFlows {
		b.Fatalf("flow count %d, want %d", p.FlowCount(), nFlows)
	}
}

// benchAggMergeDetectSuppressed adds plane-side congestion detection on
// a link held inside cooldown: the utilization sum over the port's 64
// fresh flows plus the merger's allocation-free Suppressed pre-check.
// This is the worst-case per-sample path on a persistently hot link —
// the first candidate emits one real event, every later one is
// suppressed without building a flow snapshot.
func benchAggMergeDetectSuppressed(b *testing.B) {
	const nFlows = 64
	p := agg.New(agg.Config{})
	v := p.Join(0, "bench", 8, units.Rate10G)
	events := 0
	p.Subscribe(func(core.CongestionEvent) { events++ })
	// 375 kB per 300 µs window ≈ 10 Gbps per flow: the port is far over
	// threshold, so every rate-updating sample is a congestion candidate.
	t := units.Time(units.Millisecond)
	flows := fleetBenchFlows(v, nFlows, 375_000, t)
	reps := fleetBenchReports(flows, t, true)
	// Prime the cooldown: the first candidate emits a real event and
	// anchors the link, so the timed loop measures the suppressed path.
	v.Report(&reps[0])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := &reps[i%nFlows]
		rep.Time = t
		v.Report(rep)
		// Advance 1 ns per op: candidates stay inside the 250 µs cooldown
		// and the Suppressed pre-check handles (nearly) every iteration.
		t = t.Add(units.Duration(1))
	}
	b.StopTimer()
	if events == 0 {
		b.Fatal("no event emitted; the detect path never fired and the bench is vacuous")
	}
	if p.SuppressedCandidates() == 0 {
		b.Fatal("no candidate suppressed; the bench is not measuring the cooldown pre-check")
	}
}

// benchAggEventOfferEmit measures the merger's ordered emit path: Offer
// plus a synchronous AdvanceTo, alternating two links spaced past the
// cooldown so every candidate is emitted in stream order. Runs once per
// congestion event, not per sample, so it is reported but not
// alloc-gated (events carry a flow snapshot in real use anyway).
func benchAggEventOfferEmit(b *testing.B) {
	cooldown := 250 * units.Microsecond
	emitted := 0
	m := agg.NewEventMerger(cooldown, func(core.CongestionEvent) { emitted++ })
	links := [2]agg.LinkKey{{Switch: 1, Port: 2}, {Switch: 3, Port: 4}}
	var t units.Time
	var seq uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq++
		m.Offer(links[i&1], agg.VantageID(1+i&1), seq, core.CongestionEvent{
			Time: t, SwitchName: "bench", Port: int(links[i&1].Port),
			Util: units.Rate10G, Capacity: units.Rate10G,
		})
		m.AdvanceTo(t)
		t = t.Add(units.Duration(cooldown))
	}
	b.StopTimer()
	if emitted != b.N {
		b.Fatalf("emitted %d of %d offers; expected the spaced stream to emit every candidate", emitted, b.N)
	}
}
