package main

import "testing"

func TestParseSizes(t *testing.T) {
	got, err := parseSizes("50MiB, 1GiB,2048KiB,77")
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{50 << 20, 1 << 30, 2048 << 10, 77}
	if len(got) != len(want) {
		t.Fatalf("%v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("size %d: %d != %d", i, got[i], want[i])
		}
	}
}

func TestParseSizesEmpty(t *testing.T) {
	got, err := parseSizes("")
	if err != nil || got != nil {
		t.Fatalf("%v %v", got, err)
	}
}

func TestParseSizesBad(t *testing.T) {
	if _, err := parseSizes("12XB"); err == nil {
		t.Fatal("accepted garbage")
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	// Every ordered id must exist in the registry and vice versa.
	seen := map[string]bool{}
	for _, id := range order {
		if _, ok := all[id]; !ok {
			t.Fatalf("ordered id %q missing from registry", id)
		}
		seen[id] = true
	}
	for id := range all {
		if !seen[id] {
			t.Fatalf("registry id %q missing from order", id)
		}
	}
}
