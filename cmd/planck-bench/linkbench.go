package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"planck/internal/core"
	"planck/internal/packet"
	"planck/internal/units"
	"planck/internal/vantagelink"
)

// linkBenchReport is BENCH_link.json: the vantage report transport's
// cost model. link_encode_record and link_decode_record are the
// per-sample wire prices — every mirrored sample a fleet collector
// forwards pays them once each — so both must stay allocation-free.
// link_frame_roundtrip prices a full 24-record frame (header, records,
// checksum, parse, decode). The latency rows measure end-to-end report
// delivery over real loopback sockets: collector Report call to
// resequenced release at the plane sink, including frame batching,
// kernel UDP, and the receiver's ordered-merge watermark.
type linkBenchReport struct {
	GoMaxProcs int           `json:"gomaxprocs"`
	NumCPU     int           `json:"num_cpu"`
	Rows       []obsBenchRow `json:"rows"`
}

// runLinkBench measures the wire codec and the loopback transport and
// writes the rows as JSON to path ("-" for stdout). Self-gates: the two
// per-sample codec rows must be 0 allocs/op.
func runLinkBench(path string) error {
	rep := linkBenchReport{GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU()}
	rows := map[string]obsBenchRow{}
	add := func(name string, row obsBenchRow) {
		row.Name = name
		rep.Rows = append(rep.Rows, row)
		rows[name] = row
		fmt.Fprintf(os.Stderr, "%-32s %10.1f ns/op %6d allocs/op\n",
			name, row.NsPerOp, row.AllocsPerOp)
	}
	addBench := func(name string, r testing.BenchmarkResult) {
		add(name, obsBenchRow{
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		})
	}

	addBench("link_encode_record", testing.Benchmark(benchLinkEncodeRecord))
	addBench("link_decode_record", testing.Benchmark(benchLinkDecodeRecord))
	addBench("link_frame_roundtrip", testing.Benchmark(benchLinkFrameRoundTrip))

	lat, err := linkLoopbackLatency()
	if err != nil {
		return fmt.Errorf("link bench: loopback latency: %w", err)
	}
	sort.Float64s(lat)
	quantile := func(q float64) float64 {
		if len(lat) == 0 {
			return 0
		}
		i := int(q * float64(len(lat)-1))
		return lat[i]
	}
	add("link_report_latency_p50", obsBenchRow{NsPerOp: quantile(0.50), Iterations: len(lat)})
	add("link_report_latency_p99", obsBenchRow{NsPerOp: quantile(0.99), Iterations: len(lat)})

	if path != "" {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		out = append(out, '\n')
		if path == "-" {
			if _, err := os.Stdout.Write(out); err != nil {
				return err
			}
		} else if err := os.WriteFile(path, out, 0o644); err != nil {
			return err
		}
	}

	for _, name := range []string{"link_encode_record", "link_decode_record"} {
		if r := rows[name]; r.AllocsPerOp != 0 {
			return fmt.Errorf("link bench: %s allocates (%d allocs/op); the per-sample codec path must be allocation-free", name, r.AllocsPerOp)
		}
	}
	fmt.Fprintln(os.Stderr, "link bench: per-sample codec rows allocation-free")
	return nil
}

func linkBenchRecord(i int) core.FlowReport {
	return core.FlowReport{
		Time: units.Time(units.Millisecond) + units.Time(i*137),
		Key: packet.FlowKey{
			SrcIP: packet.IPv4{10, 0, byte(i >> 8), byte(i)}, DstIP: packet.IPv4{10, 0, 8, 1},
			SrcPort: uint16(i), DstPort: 5001,
			Proto: packet.IPProtocolTCP,
		},
		DstMAC:      packet.MAC{2, 0, 0, 0, 0, byte(i)},
		OutPort:     i % 8,
		Epoch:       uint64(3 + i),
		Rate:        units.Rate(1_000_000 * (i + 1)),
		RateOK:      true,
		RateUpdated: i%3 == 0,
	}
}

// benchLinkEncodeRecord measures AppendRecord into a reused buffer —
// the price each forwarded sample pays on the collector side.
func benchLinkEncodeRecord(b *testing.B) {
	rec := linkBenchRecord(1)
	buf := make([]byte, 0, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = vantagelink.AppendRecord(buf[:0], &rec)
	}
}

// benchLinkDecodeRecord measures DecodeRecord — the per-sample price on
// the plane side.
func benchLinkDecodeRecord(b *testing.B) {
	rec := linkBenchRecord(1)
	buf := vantagelink.AppendRecord(nil, &rec)
	var out core.FlowReport
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vantagelink.DecodeRecord(buf, &out)
	}
}

// benchLinkFrameRoundTrip prices a full data frame: header, 24 records,
// checksum seal, parse with checksum verification, and decode of every
// record — both ends of one maximally packed datagram.
func benchLinkFrameRoundTrip(b *testing.B) {
	const nRecs = 24
	recs := make([]core.FlowReport, nRecs)
	for i := range recs {
		recs[i] = linkBenchRecord(i)
	}
	buf := make([]byte, 0, vantagelink.HeaderLen+nRecs*vantagelink.RecordLen)
	var out core.FlowReport
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = vantagelink.AppendHeader(buf[:0], vantagelink.Header{
			Type: vantagelink.FrameData, Vantage: 1, Seq: uint64(i + 1),
			Time: units.Time(i),
		})
		for j := range recs {
			buf = vantagelink.AppendRecord(buf, &recs[j])
		}
		vantagelink.FinishFrame(buf)
		h, payload, err := vantagelink.ParseFrame(buf)
		if err != nil || h.Type != vantagelink.FrameData {
			b.Fatalf("parse: %v %+v", err, h)
		}
		for off := 0; off+vantagelink.RecordLen <= len(payload); off += vantagelink.RecordLen {
			vantagelink.DecodeRecord(payload[off:], &out)
		}
	}
}

// linkLoopbackLatency runs one sender and one receiver over real UDP
// loopback sockets and measures per-report delivery latency: the wall
// time from the collector's Report call to the resequenced release at
// the plane sink. Each record smuggles its send time in the Rate field
// so the measurement needs no shared state between the two goroutines.
func linkLoopbackLatency() ([]float64, error) {
	const (
		reports   = 2000
		reportGap = 100 * time.Microsecond
	)
	var lat []float64
	rx, err := vantagelink.ListenUDPReceiver("127.0.0.1:0", vantagelink.ReceiverConfig{
		HoldTimeout: 500 * units.Millisecond,
	}, nil, 250*units.Microsecond)
	if err != nil {
		return nil, err
	}
	defer rx.Close()
	rx.Join(1, latencySink{lat: &lat})

	tx, err := vantagelink.DialUDPSender(rx.Addr(), vantagelink.SenderConfig{
		Vantage:   1,
		Heartbeat: 250 * units.Microsecond,
	}, vantagelink.NewEpochWallClock(), 250*units.Microsecond, nil)
	if err != nil {
		return nil, err
	}
	defer tx.Close()

	clock := vantagelink.NewEpochWallClock()
	for i := 0; i < reports; i++ {
		now := clock.Now()
		rec := linkBenchRecord(i)
		rec.Time = now
		rec.Rate = units.Rate(time.Now().UnixNano())
		tx.Report(&rec)
		tx.BatchEnd(now)
		time.Sleep(reportGap)
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		var n int
		rx.Locked(func() { n = len(lat) })
		if n >= reports {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	var got int
	rx.Locked(func() { got = len(lat) })
	if got < reports {
		return nil, fmt.Errorf("delivered %d/%d reports before deadline", got, reports)
	}
	return lat, nil
}

// latencySink appends one delivery latency per released record; it runs
// under the receiver's lock.
type latencySink struct {
	lat *[]float64
}

func (s latencySink) Report(rep *core.FlowReport) {
	*s.lat = append(*s.lat, float64(time.Now().UnixNano()-int64(rep.Rate)))
}
func (latencySink) Live(units.Time) {}
func (latencySink) Rejoin(uint32)   {}
