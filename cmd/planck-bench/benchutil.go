package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"
)

// newRunID mints the identifier stamped into every report a single
// planck-bench invocation writes. Committed BENCH_*.json artifacts that
// share a run_id were measured by one process on one host back-to-back —
// the property that makes cross-report comparisons (serial row here vs
// serial row there) meaningful. verifyRunIDs enforces it in bench-gate.
func newRunID() string {
	return fmt.Sprintf("%s.%d", time.Now().UTC().Format("20060102T150405Z"), os.Getpid())
}

// measureMin runs fn as a benchmark count times and keeps the minimum
// ns/op — the least-scheduling-noise estimate of the true per-op cost —
// while taking the *maximum* allocs/op and bytes/op across runs, so an
// allocation that appears in any run cannot hide behind a clean one.
// count < 1 is treated as 1.
func measureMin(name string, count int, fn func(b *testing.B)) obsBenchRow {
	if count < 1 {
		count = 1
	}
	row := obsBenchRow{Name: name}
	for i := 0; i < count; i++ {
		r := testing.Benchmark(fn)
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		if i == 0 || ns < row.NsPerOp {
			row.NsPerOp = ns
			row.Iterations = r.N
		}
		if a := r.AllocsPerOp(); i == 0 || a > row.AllocsPerOp {
			row.AllocsPerOp = a
		}
		if bb := r.AllocedBytesPerOp(); i == 0 || bb > row.BytesPerOp {
			row.BytesPerOp = bb
		}
	}
	fmt.Fprintf(os.Stderr, "%-32s %10.1f ns/op %6d allocs/op (min of %d)\n",
		name, row.NsPerOp, row.AllocsPerOp, count)
	return row
}

// writeReport marshals rep to path ("-" for stdout, "" to skip).
func writeReport(rep any, path string) error {
	if path == "" {
		return nil
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(path, out, 0o644)
}

// verifyRunIDs checks that every report in the comma-separated path list
// carries the same non-empty run_id — i.e. the committed baselines were
// regenerated together by one planck-bench run, not patched piecemeal.
func verifyRunIDs(paths string) error {
	var want string
	var checked []string
	for _, p := range strings.Split(paths, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		raw, err := os.ReadFile(p)
		if err != nil {
			return fmt.Errorf("verify-run-ids: %w", err)
		}
		var rep struct {
			RunID string `json:"run_id"`
		}
		if err := json.Unmarshal(raw, &rep); err != nil {
			return fmt.Errorf("verify-run-ids: parse %s: %w", p, err)
		}
		if rep.RunID == "" {
			return fmt.Errorf("verify-run-ids: %s has no run_id (regenerate with make bench-baselines)", p)
		}
		if want == "" {
			want = rep.RunID
		} else if rep.RunID != want {
			return fmt.Errorf("verify-run-ids: %s run_id %q != %s run_id %q (regenerate together with make bench-baselines)",
				p, rep.RunID, checked[0], want)
		}
		checked = append(checked, p)
	}
	if len(checked) < 2 {
		return fmt.Errorf("verify-run-ids: need at least 2 reports, got %d", len(checked))
	}
	fmt.Fprintf(os.Stderr, "verify-run-ids: %d reports share run_id %s\n", len(checked), want)
	return nil
}
