package main

import "testing"

func BenchmarkIngestSerial(b *testing.B)  { benchIngestMix(b, 0) }
func BenchmarkIngestBatched(b *testing.B) { benchIngestBatched(b) }
func BenchmarkTableLookup(b *testing.B)   { benchTableLookup(b) }
