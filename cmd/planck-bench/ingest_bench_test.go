package main

import "testing"

func BenchmarkIngestSerial(b *testing.B)  { benchIngestMix(b, 0) }
func BenchmarkIngestBatched(b *testing.B) { benchIngestBatched(b) }
func BenchmarkTableLookup(b *testing.B)   { benchTableLookup(b) }

func BenchmarkIngestSharded2(b *testing.B) { benchIngestMix(b, 2) }
func BenchmarkIngestSharded4(b *testing.B) { benchIngestMix(b, 4) }

func BenchmarkIngestView(b *testing.B) { benchIngestView(b) }
