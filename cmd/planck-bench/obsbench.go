package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"planck/internal/core"
	"planck/internal/obs"
	"planck/internal/packet"
	"planck/internal/units"
)

// obsBenchRow is one microbenchmark measurement in BENCH_obs.json.
type obsBenchRow struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// obsBenchReport is BENCH_obs.json: the rows plus the parallelism the
// host actually offered, like every other BENCH_*.json report.
type obsBenchReport struct {
	GoMaxProcs int           `json:"gomaxprocs"`
	NumCPU     int           `json:"num_cpu"`
	Rows       []obsBenchRow `json:"rows"`
}

// runObsBench measures the observability layer's overhead budget — the
// ISSUE's acceptance numbers: counter increments in the tens of
// nanoseconds, and a disabled registry adding zero allocations to the
// collector hot path — and writes the rows as JSON to path ("-" for
// stdout).
func runObsBench(path string) error {
	rep := obsBenchReport{GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU()}
	add := func(name string, r testing.BenchmarkResult) {
		rep.Rows = append(rep.Rows, obsBenchRow{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		})
		fmt.Fprintf(os.Stderr, "%-32s %10.1f ns/op %6d allocs/op\n",
			name, float64(r.T.Nanoseconds())/float64(r.N), r.AllocsPerOp())
	}

	add("obs_counter_inc", testing.Benchmark(func(b *testing.B) {
		var c obs.Counter
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
		if c.Value() != int64(b.N) {
			b.Fatal("lost increments")
		}
	}))

	add("obs_histogram_observe", testing.Benchmark(func(b *testing.B) {
		h := obs.NewHistogram()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(int64(i) & 0xfffff)
		}
	}))

	add("obs_histogram_quantile", testing.Benchmark(func(b *testing.B) {
		h := obs.NewHistogram()
		for i := int64(0); i < 100000; i++ {
			h.Observe(i * 37 % 1000000)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = h.Quantile(0.99)
		}
	}))

	add("collector_ingest_bare", testing.Benchmark(func(b *testing.B) {
		benchIngest(b, nil, false)
	}))
	add("collector_ingest_instrumented", testing.Benchmark(func(b *testing.B) {
		benchIngest(b, obs.NewRegistry(), true)
	}))

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(path, out, 0o644)
}

// benchIngest drives the collector's full parse-estimate-check pipeline
// with a steady 10 Gbps TCP flow, reusing one frame buffer and patching
// the sequence number in place so the loop itself allocates nothing.
func benchIngest(b *testing.B, reg *obs.Registry, timing bool) {
	col := core.New(core.Config{
		SwitchName:  "bench",
		NumPorts:    4,
		LinkRate:    units.Rate10G,
		Metrics:     reg,
		StageTiming: timing,
	})
	spec := packet.TCPSpec{
		SrcMAC: packet.MAC{2, 0, 0, 0, 0, 1}, DstMAC: packet.MAC{2, 0, 0, 0, 0, 2},
		SrcIP: packet.IPv4{10, 0, 0, 1}, DstIP: packet.IPv4{10, 0, 0, 2},
		SrcPort: 1000, DstPort: 2000,
		Flags: packet.TCPAck, PayloadLen: 1460,
	}
	frame := packet.BuildTCP(nil, spec)
	seqOff := packet.EthernetHeaderLen + packet.IPv4MinHeaderLen + 4
	var t0 units.Time
	var seq uint32
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frame[seqOff] = byte(seq >> 24)
		frame[seqOff+1] = byte(seq >> 16)
		frame[seqOff+2] = byte(seq >> 8)
		frame[seqOff+3] = byte(seq)
		if err := col.Ingest(t0, frame); err != nil {
			b.Fatal(err)
		}
		seq += 1460
		t0 = t0.Add(units.Duration(1230))
	}
}
