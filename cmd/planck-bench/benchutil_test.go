package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBenchJSON(t *testing.T, dir, name, runID string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	body := `{"gomaxprocs":1,"num_cpu":1,"rows":[]}`
	if runID != "" {
		body = `{"run_id":"` + runID + `","gomaxprocs":1,"num_cpu":1,"rows":[]}`
	}
	if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestVerifyRunIDsMatch(t *testing.T) {
	dir := t.TempDir()
	a := writeBenchJSON(t, dir, "a.json", "r1")
	b := writeBenchJSON(t, dir, "b.json", "r1")
	c := writeBenchJSON(t, dir, "c.json", "r1")
	if err := verifyRunIDs(a + "," + b + ", " + c); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyRunIDsMismatch(t *testing.T) {
	dir := t.TempDir()
	a := writeBenchJSON(t, dir, "a.json", "r1")
	b := writeBenchJSON(t, dir, "b.json", "r2")
	err := verifyRunIDs(a + "," + b)
	if err == nil || !strings.Contains(err.Error(), "run_id") {
		t.Fatalf("mismatched run ids accepted: %v", err)
	}
}

func TestVerifyRunIDsMissing(t *testing.T) {
	dir := t.TempDir()
	a := writeBenchJSON(t, dir, "a.json", "r1")
	b := writeBenchJSON(t, dir, "b.json", "") // no run_id: stale pre-run-id report
	if err := verifyRunIDs(a + "," + b); err == nil {
		t.Fatal("report without run_id accepted")
	}
	if err := verifyRunIDs(a); err == nil {
		t.Fatal("single report accepted; the check needs a pair to mean anything")
	}
}

// allocSink forces the test allocation to escape to the heap.
var allocSink []byte

func TestMeasureMinKeepsWorstAllocs(t *testing.T) {
	// testing.Benchmark invokes fn repeatedly while ramping b.N, but
	// starts each measurement at b.N == 1 exactly once — that marks the
	// run boundary. Run 2 of 3 allocates; the row must not hide it.
	runs := 0
	row := measureMin("probe", 3, func(b *testing.B) {
		if b.N == 1 {
			runs++
		}
		if runs == 2 {
			for i := 0; i < b.N; i++ {
				allocSink = make([]byte, 64)
			}
		}
	})
	if row.Name != "probe" || row.AllocsPerOp < 1 {
		t.Fatalf("allocating run hidden by min: %+v", row)
	}
}
