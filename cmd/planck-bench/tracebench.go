package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"planck/internal/core"
	"planck/internal/obs/trace"
	"planck/internal/units"
)

// traceBenchReport is BENCH_trace.json: the control-loop tracer's
// idle-overhead contract on the ingest hot path. ingest_view is the
// view-attached serial ingest path bare; ingest_view_traced is the
// identical workload with a tracer attached and no event active — the
// steady state of a healthy network, where the tracer's entire
// footprint must be the nil-guarded convergence probe.
type traceBenchReport struct {
	GoMaxProcs int           `json:"gomaxprocs"`
	NumCPU     int           `json:"num_cpu"`
	Rows       []obsBenchRow `json:"rows"`
}

// traceOverheadTolerance caps ingest_view_traced against ingest_view
// measured in the same run: idle tracing may add at most 2% to the
// per-sample ingest cost.
const traceOverheadTolerance = 1.02

// runTraceBench measures the idle-tracing overhead and writes the rows
// as JSON to path ("-" for stdout, "" to skip writing). It self-gates:
// ingest_view_traced must be 0 allocs/op and within
// traceOverheadTolerance of same-run ingest_view. Shared-machine noise
// can split one pair past the tolerance, so a failing comparison
// re-measures the pair up to twice; a real regression fails every
// pairing.
func runTraceBench(path string) error {
	rep := traceBenchReport{GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU()}
	rows := map[string]obsBenchRow{}
	add := func(name string, r testing.BenchmarkResult) {
		row := obsBenchRow{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		}
		rep.Rows = append(rep.Rows, row)
		rows[name] = row
		fmt.Fprintf(os.Stderr, "%-32s %10.1f ns/op %6d allocs/op\n",
			name, row.NsPerOp, row.AllocsPerOp)
	}

	add("ingest_view", testing.Benchmark(benchIngestView))
	add("ingest_view_traced", testing.Benchmark(benchIngestViewTraced))

	if path != "" {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		out = append(out, '\n')
		if path == "-" {
			if _, err := os.Stdout.Write(out); err != nil {
				return err
			}
		} else if err := os.WriteFile(path, out, 0o644); err != nil {
			return err
		}
	}

	if r := rows["ingest_view_traced"]; r.AllocsPerOp != 0 {
		return fmt.Errorf("trace bench: ingest_view_traced allocates (%d allocs/op); idle tracing must be allocation-free", r.AllocsPerOp)
	}
	ns := func(r testing.BenchmarkResult) float64 {
		return float64(r.T.Nanoseconds()) / float64(r.N)
	}
	bareNs, tracedNs := rows["ingest_view"].NsPerOp, rows["ingest_view_traced"].NsPerOp
	for attempt := 1; tracedNs > bareNs*traceOverheadTolerance && attempt <= 2; attempt++ {
		fmt.Fprintf(os.Stderr, "trace bench: ingest_view_traced %.1f vs ingest_view %.1f ns/op over tolerance; re-measuring pair (retry %d/2)\n",
			tracedNs, bareNs, attempt)
		bareNs = ns(testing.Benchmark(benchIngestView))
		tracedNs = ns(testing.Benchmark(benchIngestViewTraced))
	}
	limit := bareNs * traceOverheadTolerance
	if tracedNs > limit {
		return fmt.Errorf("trace bench: ingest_view_traced %.1f ns/op exceeds ingest_view %.1f ns/op +2%% (%.1f)",
			tracedNs, bareNs, limit)
	}
	fmt.Fprintf(os.Stderr, "trace bench: ingest_view_traced %.1f ns/op within ingest_view %.1f ns/op +2%% (%.1f)\n",
		tracedNs, bareNs, limit)
	return nil
}

// benchIngestViewTraced is benchIngestView with a control-loop tracer
// attached and no event active: every sample pays the tracer nil-check
// plus NoteResolve's single atomic watch-count load when a flow
// remaps, and nothing else.
func benchIngestViewTraced(b *testing.B) {
	benchIngestViewWith(b, core.Config{
		SwitchName: "bench", NumPorts: 8, LinkRate: units.Rate10G,
		Tracer: trace.New(64),
	})
}
