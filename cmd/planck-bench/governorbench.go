package main

import (
	"fmt"
	"os"
	"runtime"
	"testing"

	"planck/internal/governor"
	"planck/internal/packet"
	"planck/internal/routing"
	"planck/internal/sflow"
	"planck/internal/stats"
	"planck/internal/topo"
	"planck/internal/units"
)

// govBenchReport is BENCH_governor.json: the sampling-rate governor's
// cost model. governor_estimator_observe is the per-packet price of the
// sFlow offer path (every switched packet on a supervised or governed
// switch pays it) and governor_estimator_record is the per-port counter
// fold (once per port per tick, and per supervisor heartbeat); both
// must stay allocation-free. governor_tick prices one full healthy
// control round — counter poll, window aggregation, saturation check —
// which runs once per millisecond per governed switch and is reported
// alongside an aggregate-read row.
type govBenchReport struct {
	RunID      string        `json:"run_id,omitempty"`
	GoMaxProcs int           `json:"gomaxprocs"`
	NumCPU     int           `json:"num_cpu"`
	Rows       []obsBenchRow `json:"rows"`
}

// runGovernorBench measures the governor's hot paths and writes the
// rows as JSON to path ("-" for stdout). Self-gates: both estimator
// update rows must be 0 allocs/op.
func runGovernorBench(path string, count int, runID string) error {
	rep := govBenchReport{RunID: runID, GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU()}
	rows := map[string]obsBenchRow{}
	add := func(name string, fn func(b *testing.B)) {
		row := measureMin(name, count, fn)
		rep.Rows = append(rep.Rows, row)
		rows[name] = row
	}

	add("governor_estimator_observe", benchGovEstimatorObserve)
	add("governor_estimator_record", benchGovEstimatorRecord)
	add("governor_estimator_aggregate", benchGovEstimatorAggregate)
	add("governor_tick", benchGovTick)

	if err := writeReport(rep, path); err != nil {
		return err
	}

	for _, name := range []string{"governor_estimator_observe", "governor_estimator_record"} {
		if r := rows[name]; r.AllocsPerOp != 0 {
			return fmt.Errorf("governor bench: %s allocates (%d allocs/op); the estimator update path must be allocation-free", name, r.AllocsPerOp)
		}
	}
	fmt.Fprintln(os.Stderr, "governor bench: estimator update rows allocation-free")
	return nil
}

// govBenchEstimator builds the estimator at the smoke profile's shape:
// a 32-port switch with a 1-in-64 software sampler.
func govBenchEstimator() *governor.RateEstimator {
	return governor.NewRateEstimator(governor.EstimatorConfig{
		SFlow: sflow.Config{SampleRate: 64, ControlPlaneCap: 200000},
		Seed:  1,
	}, 32)
}

// benchGovEstimatorObserve measures the sFlow offer path: one switched
// packet offered to the sampler, which selects ~1/64 of them into a
// window bucket. This is the estimator's per-packet price on every
// governed or supervised switch.
func benchGovEstimatorObserve(b *testing.B) {
	est := govBenchEstimator()
	key := packet.FlowKey{
		SrcIP: topo.HostIP(0), DstIP: topo.HostIP(1),
		SrcPort: 1000, DstPort: 5001, Proto: packet.IPProtocolTCP,
	}
	var t units.Time
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est.Observe(t, i&15, key, 1500)
		t = t.Add(units.Duration(1200)) // ≈10 Gbps of 1500B frames
	}
}

// benchGovEstimatorRecord measures the counter fold: one port's
// cumulative mirror counters landed in the window as deltas. Runs once
// per port per governor tick (and per supervisor heartbeat), with the
// counters always advancing — the delta path, not the baseline path.
func benchGovEstimatorRecord(b *testing.B) {
	est := govBenchEstimator()
	var queued, dropped stats.Counter
	var t units.Time
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		queued.Add(1500)
		if i&3 == 0 {
			dropped.Add(1500)
		}
		est.RecordMirrorCounters(t, i&15, queued, dropped)
		t = t.Add(units.Duration(1200))
	}
}

// benchGovEstimatorAggregate measures the switch-wide estimate read:
// every port's window summed into one Estimate. The governor pays this
// once per tick; the supervisor's dark-feed check reads single ports.
func benchGovEstimatorAggregate(b *testing.B) {
	est := govBenchEstimator()
	var queued, dropped stats.Counter
	t := units.Time(units.Millisecond)
	for p := 0; p < est.NumPorts(); p++ {
		est.RecordMirrorCounters(0, p, stats.Counter{}, stats.Counter{})
		queued.Add(1500 * 100)
		dropped.Add(1500 * 50)
		est.RecordMirrorCounters(t, p, queued, dropped)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if est.Aggregate(t).Samples == 0 {
			b.Fatal("empty window; the bench is reading dead buckets")
		}
	}
}

// govBenchVantage is a counter-backed Vantage: 32 ports, monitor on the
// last, every other port mirrored and advancing its admitted counter
// drop-free — the governor's healthy steady state.
type govBenchVantage struct {
	queued []stats.Counter
	mon    int
}

func (v *govBenchVantage) NumPorts() int    { return len(v.queued) }
func (v *govBenchVantage) MonitorPort() int { return v.mon }
func (v *govBenchVantage) PortMirrored(p int) bool {
	return p != v.mon
}
func (v *govBenchVantage) MirrorPortCounters(p int) (stats.Counter, stats.Counter) {
	return v.queued[p], stats.Counter{}
}

// govBenchActuator must never fire in the healthy steady state.
type govBenchActuator struct{ commits int }

func (a *govBenchActuator) CommitMirror(units.Time, uint64, func(*routing.Tx), func(units.Time)) int {
	a.commits++
	return 0
}

// benchGovTick measures one full governor round in the healthy steady
// state: poll all 31 mirrored ports' counters into the window,
// aggregate, and conclude nothing needs actuating. This is the
// governor's fixed per-millisecond price per switch.
func benchGovTick(b *testing.B) {
	v := &govBenchVantage{queued: make([]stats.Counter, 32), mon: 31}
	act := &govBenchActuator{}
	gov := governor.New(governor.Config{
		Estimator: governor.EstimatorConfig{SFlow: sflow.Config{SampleRate: 64, ControlPlaneCap: 200000}},
	}, "bench", 0, v, act, govBenchEstimator(), units.Rate10G)
	t := units.Time(units.Millisecond)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for p := range v.queued {
			if p != v.mon {
				v.queued[p].Add(1250 * 1000) // 10 Gbps per port per tick
			}
		}
		gov.Tick(t)
		t = t.Add(gov.Config().Tick)
	}
	b.StopTimer()
	if act.commits != 0 {
		b.Fatalf("governor actuated %d times in the healthy steady state; the bench is not measuring the quiescent tick", act.commits)
	}
	if eff, _ := gov.LastEstimate(); eff != 1 {
		b.Fatalf("effective %.2f in a drop-free rig, want 1", eff)
	}
}
