package main

import (
	"fmt"
	"runtime"
	"testing"

	"planck/internal/core"
	"planck/internal/packet"
	"planck/internal/units"
)

// shardBenchReport is BENCH_shard.json: the sharded-vs-serial ingest
// comparison plus the parallelism the host actually offered, so the
// numbers can be read honestly (speedup is bounded by GOMAXPROCS).
type shardBenchReport struct {
	RunID      string        `json:"run_id,omitempty"`
	GoMaxProcs int           `json:"gomaxprocs"`
	NumCPU     int           `json:"num_cpu"`
	Rows       []obsBenchRow `json:"rows"`
}

// runShardBench measures the full ingest pipeline — serial versus the
// sharded concurrent pipeline at 1, 2, and 4 shards — over a 64-flow
// TCP mix (each row the minimum of count runs), and writes the rows as
// JSON to path ("-" for stdout).
func runShardBench(path string, count int, runID string) error {
	rep := shardBenchReport{RunID: runID, GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU()}

	rep.Rows = append(rep.Rows, measureMin("ingest_serial", count, func(b *testing.B) {
		benchIngestMix(b, 0)
	}))
	for _, shards := range []int{1, 2, 4} {
		shards := shards
		rep.Rows = append(rep.Rows, measureMin(fmt.Sprintf("ingest_sharded_%d", shards), count, func(b *testing.B) {
			benchIngestMix(b, shards)
		}))
	}

	return writeReport(rep, path)
}

// benchIngestMix drives 64 interleaved TCP flows through either the
// serial collector (shards == 0) or the sharded pipeline, patching each
// flow's sequence number in place so the driving loop allocates nothing.
func benchIngestMix(b *testing.B, shards int) {
	const nFlows = 64
	cfg := core.Config{SwitchName: "bench", NumPorts: 8, LinkRate: units.Rate10G}
	var ing interface {
		Ingest(units.Time, []byte) error
	}
	var sc *core.ShardedCollector
	if shards > 0 {
		sc = core.NewSharded(core.ShardedConfig{Config: cfg, Shards: shards})
		defer sc.Close()
		ing = sc
	} else {
		ing = core.New(cfg)
	}

	frames := make([][]byte, nFlows)
	seqs := make([]uint32, nFlows)
	for i := range frames {
		frames[i] = packet.BuildTCP(nil, packet.TCPSpec{
			SrcMAC: packet.MAC{2, 0, 0, 0, 0, 1}, DstMAC: packet.MAC{2, 0, 0, 0, 0, 2},
			SrcIP: packet.IPv4{10, 0, 0, 1}, DstIP: packet.IPv4{10, 0, 1, byte(i)},
			SrcPort: uint16(1000 + i), DstPort: 2000,
			Flags: packet.TCPAck, PayloadLen: 1460,
		})
	}
	seqOff := packet.EthernetHeaderLen + packet.IPv4MinHeaderLen + 4
	var t0 units.Time
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := i % nFlows
		frame := frames[f]
		seq := seqs[f]
		frame[seqOff] = byte(seq >> 24)
		frame[seqOff+1] = byte(seq >> 16)
		frame[seqOff+2] = byte(seq >> 8)
		frame[seqOff+3] = byte(seq)
		if err := ing.Ingest(t0, frame); err != nil {
			b.Fatal(err)
		}
		seqs[f] = seq + 1460
		t0 = t0.Add(units.Duration(123))
	}
	// Drain in-flight batches inside the timed region: the comparison is
	// end-to-end completed work, not dispatch throughput.
	if sc != nil {
		sc.Flush()
	}
	b.StopTimer()
}
