// Command planck-collector runs the Planck collector outside the
// simulator: it replays a pcap capture (e.g., a vantage-point dump, or
// any tcpdump of a mirror port) through the real collector pipeline, or
// listens for a live UDP-encapsulated sample stream, and reports flow
// rates, link utilization, and congestion events.
//
// Usage:
//
//	planck-collector -pcap capture.pcap
//	planck-collector -pcap capture.pcap -threshold 0.8 -rate 10
//	planck-collector -pcap capture.pcap -shards 4
//	planck-collector -pcap capture.pcap -fault "loss:0.05,skew:200us" -fault-seed 7
//	planck-collector -listen :5601 -max-samples 100000
//	planck-collector -listen :5601 -metrics :9090 -stats-every 5s
//	planck-collector -listen :5601 -batch 64
//	planck-collector -listen :5601 -report plane-host:5700 -vantage 3
//
// -report turns the collector into one vantage of a distributed fleet:
// every ingested sample is forwarded to an aggregation plane at the
// given address over the vantagelink wire protocol (sequenced frames,
// NACK/retransmit recovery, heartbeat liveness, clock sync). Requires
// -listen (a live stream shares the plane's epoch time axis; a pcap
// replay does not) and -shards 1 (the report sink is a serial-collector
// seam). -vantage sets this collector's fleet id.
//
// The live listener drains the socket in batched read cycles (-batch
// datagrams per cycle, default 32) and hands each cycle to the
// collector in one IngestBatch call; -batch 0 falls back to one
// Ingest per datagram.
//
// -shards > 1 runs the concurrent hash-partitioned pipeline (default is
// one shard per GOMAXPROCS); results are identical to the serial
// collector by the serial-equivalence oracle.
//
// With -metrics, an HTTP endpoint serves /metrics (Prometheus text),
// /debug/vars (JSON), and /debug/pprof/* for the full pipeline: samples,
// decode errors, malformed datagrams, flow-table size, and per-stage
// wall-clock timing histograms (decode, flow table, rate estimation,
// utilization, event dispatch).
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"sort"

	"planck"
	"planck/internal/core"
	"planck/internal/obs"
	"planck/internal/units"
	"planck/internal/vantagelink"
)

func main() {
	pcapPath := flag.String("pcap", "", "pcap file to replay")
	listen := flag.String("listen", "", "UDP address for a live sample stream (8B ns timestamp + frame per datagram)")
	maxSamples := flag.Int("max-samples", 0, "stop the live listener after N samples (0 = run forever)")
	rateG := flag.Float64("rate", 10, "link rate in Gbps for utilization math")
	threshold := flag.Float64("threshold", 0.9, "congestion threshold fraction")
	topFlows := flag.Int("top", 10, "flows to print")
	metricsAddr := flag.String("metrics", "", "HTTP address serving /metrics, /debug/vars, /debug/pprof (empty = off)")
	statsEvery := flag.Duration("stats-every", 0, "period between one-line stats reports on stderr (0 = off)")
	shards := flag.Int("shards", runtime.GOMAXPROCS(0), "collector shards; >1 runs the concurrent hash-partitioned pipeline")
	batch := flag.Int("batch", planck.DefaultUDPBatch, "live-listener drain batch: datagrams ingested per batched read cycle (0 = one Ingest per datagram)")
	faultSpec := flag.String("fault", "", `fault-injection spec applied to the ingest stream, e.g. "loss:0.05" or "loss@20ms-40ms,skew:200us" (empty = off)`)
	faultSeed := flag.Int64("fault-seed", 1, "seed for the fault injector's PRNG")
	reportAddr := flag.String("report", "", "UDP address of an aggregation-plane receiver; forwards every sample over the vantagelink transport (empty = off)")
	vantage := flag.Int("vantage", 1, "fleet vantage id stamped on forwarded reports (with -report)")
	flag.Parse()

	if (*pcapPath == "") == (*listen == "") {
		fmt.Fprintln(os.Stderr, "exactly one of -pcap or -listen is required")
		flag.Usage()
		os.Exit(2)
	}
	if *reportAddr != "" && *listen == "" {
		fmt.Fprintln(os.Stderr, "-report requires -listen: a live stream shares the plane's time axis, a pcap replay does not")
		os.Exit(2)
	}
	if *reportAddr != "" && *shards > 1 {
		fmt.Fprintln(os.Stderr, "-report requires -shards 1: the report sink is a serial-collector seam")
		os.Exit(2)
	}
	if *vantage < 1 || *vantage > 65535 {
		fmt.Fprintln(os.Stderr, "-vantage must be in [1, 65535]")
		os.Exit(2)
	}

	reg := obs.NewRegistry()
	ccfg := core.Config{
		SwitchName:    "collector",
		LinkRate:      units.Rate(*rateG * float64(units.Gbps)),
		UtilThreshold: *threshold,
		Metrics:       reg,
		Vantage:       *vantage,
	}

	// With -report, every ingested sample is forwarded to the
	// aggregation plane over the wire transport. The epoch wall clock
	// matches the live stream's nanosecond timestamps, so heartbeats
	// and records share one time axis and the sync exchange measures a
	// meaningful offset.
	var reporter *vantagelink.UDPSender
	if *reportAddr != "" {
		tx, err := vantagelink.DialUDPSender(*reportAddr, vantagelink.SenderConfig{
			Vantage:    uint16(*vantage),
			SwitchName: ccfg.SwitchName,
			Metrics:    reg,
		}, vantagelink.NewEpochWallClock(), units.Millisecond, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		reporter = tx
		ccfg.Sink = tx
		fmt.Fprintf(os.Stderr, "reporting to aggregation plane at %s as vantage %d\n", *reportAddr, *vantage)
	}
	// Either pipeline satisfies the ingest and reporting surfaces the
	// command needs; -shards>1 selects the concurrent one.
	var col planck.Ingester
	var serial *core.Collector
	var sharded *core.ShardedCollector
	events := 0
	onEvent := func(ev core.CongestionEvent) { events++ }
	if *shards > 1 {
		sharded = core.NewSharded(core.ShardedConfig{Config: ccfg, Shards: *shards})
		sharded.Subscribe(onEvent)
		col = sharded
		fmt.Fprintf(os.Stderr, "sharded pipeline: %d shards\n", sharded.NumShards())
	} else {
		serial = core.New(ccfg)
		serial.Subscribe(onEvent)
		col = serial
	}

	// An optional fault layer interposes between the stream source and
	// the collector: the same pipeline runs, but the spec's mirror-path
	// faults (loss, corruption, duplication, reordering, skew) hit every
	// frame first — for resilience testing against recorded captures.
	var faulty *planck.FaultyIngester
	if *faultSpec != "" {
		sched, err := planck.ParseFaultSpec(*faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		faulty = planck.WrapFaults(col, sched, *faultSeed)
		faulty.Injector().Metrics().Register(reg)
		col = faulty
		fmt.Fprintf(os.Stderr, "fault injection active: %s (seed %d)\n", sched, *faultSeed)
	}

	var udpStats planck.UDPServeStats
	reg.GaugeFunc("planck_udp_samples_total", func() float64 { return float64(udpStats.Samples.Load()) })
	reg.GaugeFunc("planck_udp_short_datagrams_total", func() float64 { return float64(udpStats.ShortDatagrams.Load()) })
	reg.GaugeFunc("planck_udp_timestamp_regressions_total", func() float64 { return float64(udpStats.TimestampRegressions.Load()) })
	reg.GaugeFunc("planck_udp_ingest_errors_total", func() float64 { return float64(udpStats.IngestErrors.Load()) })

	if *metricsAddr != "" {
		srv, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "metrics on http://%s/metrics (also /debug/vars, /debug/pprof)\n", srv.Addr())
	}
	if *statsEvery > 0 {
		stop := reg.LogPeriodically(os.Stderr, *statsEvery)
		defer stop()
	}

	frames := 0
	if *listen != "" {
		conn, err := net.ListenPacket("udp", *listen)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("listening on %s\n", conn.LocalAddr())
		var n int
		if *batch > 0 {
			n, err = planck.ServeUDPBatched(conn, col, *maxSamples, *batch, &udpStats)
		} else {
			n, err = planck.ServeUDPObserved(conn, col, *maxSamples, &udpStats)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		frames = n
		if bad := udpStats.ShortDatagrams.Load() + udpStats.TimestampRegressions.Load() + udpStats.IngestErrors.Load(); bad > 0 {
			fmt.Fprintf(os.Stderr, "malformed input: %d short datagrams, %d timestamp regressions, %d unparseable frames\n",
				udpStats.ShortDatagrams.Load(), udpStats.TimestampRegressions.Load(), udpStats.IngestErrors.Load())
		}
	} else {
		f, err := os.Open(*pcapPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		n, err := planck.ReplayPcap(f, col)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		frames = n
	}

	// Quiesce the concurrent pipeline before the final report so Stats
	// and the flow table reflect every accepted sample.
	var st core.Stats
	var flows func(fn func(*core.FlowState))
	if sharded != nil {
		sharded.Flush()
		st = sharded.Stats()
		flows = sharded.Flows
		if d := sharded.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr, "shard queues shed %d samples\n", d)
		}
		defer sharded.Close()
	} else {
		st = serial.Stats()
		flows = serial.Flows
	}
	if reporter != nil {
		reporter.Close()
		snd := reporter.Sender()
		synced := "no"
		if _, ok := snd.Offset(); ok {
			synced = "yes"
		}
		fmt.Printf("vantage link: %d frames / %d records sent, %d resent, %d shed, clock synced: %s\n",
			snd.FramesSent(), snd.RecordsSent(), snd.Resends(), snd.Sheds(), synced)
	}
	fmt.Printf("replayed %d frames: %d flows, %d rate updates, %d decode errors, %d non-TCP\n",
		frames, st.Flows, st.RateUpdates, st.DecodeErrors, st.NonTCP)
	if st.UnmappedOutput > 0 {
		fmt.Printf("route inference: %d samples carried labels no routing view could map\n", st.UnmappedOutput)
	}
	if faulty != nil {
		fm := faulty.Injector().Metrics()
		fmt.Printf("faults injected: %d lost, %d corrupted, %d duplicated, %d reordered, %d skewed\n",
			fm.Lost.Value(), fm.Corrupted.Value(), fm.Duplicated.Value(), fm.Reordered.Value(), fm.Skewed.Value())
	}
	if serial != nil {
		if tm := serial.IngestTimings(); tm != nil && tm.N() > 0 {
			fmt.Printf("ingest wall time: p50=%.0fns p99=%.0fns over %d samples\n",
				tm.Median(), tm.Quantile(0.99), tm.N())
		}
	}

	type row struct {
		key  string
		rate units.Rate
		pkts int64
	}
	var rows []row
	flows(func(fs *core.FlowState) {
		r, _ := fs.Rate()
		rows = append(rows, row{key: fs.Key.String(), rate: r, pkts: fs.SampledPackets})
	})
	sort.Slice(rows, func(i, j int) bool { return rows[i].rate > rows[j].rate })
	if len(rows) > *topFlows {
		rows = rows[:*topFlows]
	}
	fmt.Println("top flows by last estimated rate:")
	for _, r := range rows {
		fmt.Printf("  %-45s %10v  (%d samples)\n", r.key, r.rate, r.pkts)
	}
}
