// Command planck-collector runs the Planck collector outside the
// simulator: it replays a pcap capture (e.g., a vantage-point dump, or
// any tcpdump of a mirror port) through the real collector pipeline, or
// listens for a live UDP-encapsulated sample stream, and reports flow
// rates, link utilization, and congestion events.
//
// Usage:
//
//	planck-collector -pcap capture.pcap
//	planck-collector -pcap capture.pcap -threshold 0.8 -rate 10
//	planck-collector -listen :5601 -max-samples 100000
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"sort"

	"planck"
	"planck/internal/core"
	"planck/internal/pcap"
	"planck/internal/units"
)

func main() {
	pcapPath := flag.String("pcap", "", "pcap file to replay")
	listen := flag.String("listen", "", "UDP address for a live sample stream (8B ns timestamp + frame per datagram)")
	maxSamples := flag.Int("max-samples", 0, "stop the live listener after N samples (0 = run forever)")
	rateG := flag.Float64("rate", 10, "link rate in Gbps for utilization math")
	threshold := flag.Float64("threshold", 0.9, "congestion threshold fraction")
	topFlows := flag.Int("top", 10, "flows to print")
	flag.Parse()

	if (*pcapPath == "") == (*listen == "") {
		fmt.Fprintln(os.Stderr, "exactly one of -pcap or -listen is required")
		flag.Usage()
		os.Exit(2)
	}

	col := core.New(core.Config{
		SwitchName:    "collector",
		LinkRate:      units.Rate(*rateG * float64(units.Gbps)),
		UtilThreshold: *threshold,
	})
	events := 0
	col.Subscribe(func(ev core.CongestionEvent) { events++ })

	frames := 0
	if *listen != "" {
		conn, err := net.ListenPacket("udp", *listen)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("listening on %s\n", conn.LocalAddr())
		n, err := planck.ServeUDP(conn, col, *maxSamples)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		frames = n
	} else {
		f, err := os.Open(*pcapPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		r, err := pcap.NewReader(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for {
			rec, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			_ = col.Ingest(rec.Time, rec.Data)
			frames++
		}
	}

	st := col.Stats()
	fmt.Printf("replayed %d frames: %d flows, %d rate updates, %d decode errors, %d non-TCP\n",
		frames, st.Flows, st.RateUpdates, st.DecodeErrors, st.NonTCP)

	type row struct {
		key  string
		rate units.Rate
		pkts int64
	}
	var rows []row
	col.Flows(func(fs *core.FlowState) {
		r, _ := fs.Rate()
		rows = append(rows, row{key: fs.Key.String(), rate: r, pkts: fs.SampledPackets})
	})
	sort.Slice(rows, func(i, j int) bool { return rows[i].rate > rows[j].rate })
	if len(rows) > *topFlows {
		rows = rows[:*topFlows]
	}
	fmt.Println("top flows by last estimated rate:")
	for _, r := range rows {
		fmt.Printf("  %-45s %10v  (%d samples)\n", r.key, r.rate, r.pkts)
	}
}
