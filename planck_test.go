package planck

import (
	"bytes"
	"context"
	"errors"
	"net"
	"testing"
	"time"

	packetpkg "planck/internal/packet"
	"planck/internal/units"
)

func TestFacadeSingleSwitch(t *testing.T) {
	tb, err := NewSingleSwitchTestbed(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := tb.Hosts[0].StartFlow(0, HostIP(1), 5001, 4<<20, 1)
	if err != nil {
		t.Fatal(err)
	}
	tb.Run(200 * units.Millisecond)
	if !conn.Completed {
		t.Fatal("flow incomplete")
	}
	if _, ok := tb.Collector(0).FlowRate(conn.FlowKey()); !ok {
		t.Fatal("flow not observed")
	}
}

func TestFacadeFatTreeWithTE(t *testing.T) {
	tb, err := NewFatTreeTestbed(5)
	if err != nil {
		t.Fatal(err)
	}
	te := AttachPlanckTE(tb)
	if te == nil {
		t.Fatal("nil TE")
	}
	if _, err := tb.Hosts[0].StartFlow(0, HostIP(8), 5001, 2<<20, 1); err != nil {
		t.Fatal(err)
	}
	tb.Run(100 * units.Millisecond)
}

func TestFacadePcapRoundTrip(t *testing.T) {
	tb, err := NewTestbedWithRing(4, 5, 256)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Hosts[0].StartFlow(0, HostIP(1), 5001, 1<<20, 1); err != nil {
		t.Fatal(err)
	}
	tb.Run(100 * units.Millisecond)

	var buf bytes.Buffer
	if err := tb.Collector(0).DumpPcap(&buf); err != nil {
		t.Fatal(err)
	}
	col := NewCollector(CollectorConfig{SwitchName: "replay", LinkRate: 10 * Gbps})
	n, err := ReplayPcap(&buf, col)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("nothing replayed")
	}
	st := col.Stats()
	if st.Flows == 0 || st.Samples != int64(n) {
		t.Fatalf("stats %+v after %d frames", st, n)
	}
}

func TestFacadeEstimator(t *testing.T) {
	e := NewRateEstimator()
	var tm Time
	var seq uint32
	for i := 0; i < 2000; i++ {
		e.Observe(tm, seq)
		seq += 1460
		tm = tm.Add(Duration(1230))
	}
	r, _, ok := e.Rate()
	if !ok || r.Gigabits() < 9 {
		t.Fatalf("rate %v ok=%v", r, ok)
	}
}

func TestServeUDPLoopback(t *testing.T) {
	// A live sample stream over real loopback UDP: sender encapsulates
	// frames with the 8-byte nanosecond header, the collector ingests
	// them and reconstructs the flow.
	lc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	col := NewCollector(CollectorConfig{SwitchName: "live", LinkRate: 10 * Gbps})
	done := make(chan int, 1)
	const total = 500
	// The kernel may drop datagrams under burst; bound the wait.
	lc.SetDeadline(time.Now().Add(2 * time.Second))
	go func() {
		n, _ := ServeUDP(lc, col, total)
		done <- n
	}()

	sender, err := net.Dial("udp", lc.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()
	var tm Time
	var seq uint32
	var scratch, frame []byte
	for i := 0; i < total; i++ {
		frame = packetpkg.BuildTCP(frame, packetpkg.TCPSpec{
			SrcMAC: packetpkg.MAC{2, 0, 0, 0, 0, 1}, DstMAC: packetpkg.MAC{2, 0, 0, 0, 0, 2},
			SrcIP: packetpkg.IPv4{10, 0, 0, 1}, DstIP: packetpkg.IPv4{10, 0, 0, 2},
			SrcPort: 1000, DstPort: 2000, Seq: seq, Flags: packetpkg.TCPAck, PayloadLen: 100,
		})
		scratch = EncodeSample(scratch, tm, frame)
		if _, err := sender.Write(scratch); err != nil {
			t.Fatal(err)
		}
		seq += 1460
		// 5 µs sample spacing: 500 samples span 2.5 ms, several
		// estimation windows.
		tm = tm.Add(Duration(5000))
	}
	got := <-done
	// UDP over loopback is lossy-in-principle; accept most arriving.
	if got < total/2 {
		t.Fatalf("ingested %d of %d samples", got, total)
	}
	st := col.Stats()
	if st.Flows != 1 {
		t.Fatalf("flows %d", st.Flows)
	}
	key := packetpkg.FlowKey{
		SrcIP: packetpkg.IPv4{10, 0, 0, 1}, DstIP: packetpkg.IPv4{10, 0, 0, 2},
		SrcPort: 1000, DstPort: 2000, Proto: packetpkg.IPProtocolTCP,
	}
	if _, ok := col.FlowRate(key); !ok {
		t.Fatal("live flow not estimated")
	}
}

// TestServeUDPObservedMalformedAccounting sends a mix of good samples,
// short datagrams, backwards timestamps, and unparseable frames, and
// checks each lands in the right UDPServeStats counter.
func TestServeUDPObservedMalformedAccounting(t *testing.T) {
	lc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	col := NewCollector(CollectorConfig{SwitchName: "live", LinkRate: 10 * Gbps})
	var st UDPServeStats
	const total = 8
	lc.SetDeadline(time.Now().Add(5 * time.Second))
	done := make(chan int, 1)
	go func() {
		n, _ := ServeUDPObserved(lc, col, total, &st)
		done <- n
	}()

	sender, err := net.Dial("udp", lc.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()

	frameAt := func(tm Time, seq uint32) []byte {
		frame := packetpkg.BuildTCP(nil, packetpkg.TCPSpec{
			SrcMAC: packetpkg.MAC{2, 0, 0, 0, 0, 1}, DstMAC: packetpkg.MAC{2, 0, 0, 0, 0, 2},
			SrcIP: packetpkg.IPv4{10, 0, 0, 1}, DstIP: packetpkg.IPv4{10, 0, 0, 2},
			SrcPort: 1000, DstPort: 2000, Seq: seq, Flags: packetpkg.TCPAck, PayloadLen: 100,
		})
		return EncodeSample(nil, tm, frame)
	}
	send := func(b []byte) {
		if _, err := sender.Write(b); err != nil {
			t.Fatal(err)
		}
		// Serialize sends so the loop's lastT tracking sees our order.
		time.Sleep(10 * time.Millisecond)
	}

	send(frameAt(Time(1000000), 0))    // good
	send(frameAt(Time(2000000), 1460)) // good
	send([]byte{1, 2, 3})              // short datagram (header truncated)
	send(frameAt(Time(500000), 2920))  // timestamp regression
	// Unparseable frame at a fresh timestamp: too short for Ethernet.
	send(EncodeSample(nil, Time(3000000), []byte{0xde, 0xad}))
	send(frameAt(Time(4000000), 2920)) // good
	send(frameAt(Time(5000000), 4380)) // good
	send(frameAt(Time(6000000), 5840)) // good

	// The short datagram never counts toward maxSamples, so 8 sends
	// yield 7 loop iterations; close the socket to end the serve loop.
	time.Sleep(50 * time.Millisecond)
	lc.Close()
	<-done

	if got := st.Samples.Load(); got != 5 {
		t.Fatalf("Samples = %d, want 5", got)
	}
	if got := st.ShortDatagrams.Load(); got != 1 {
		t.Fatalf("ShortDatagrams = %d, want 1", got)
	}
	if got := st.TimestampRegressions.Load(); got != 1 {
		t.Fatalf("TimestampRegressions = %d, want 1", got)
	}
	if got := st.IngestErrors.Load(); got != 1 {
		t.Fatalf("IngestErrors = %d, want 1", got)
	}
}

// TestServeUDPContextCancel: cancelling the context stops an unbounded
// serve loop promptly and reports the teardown as a typed error instead
// of the legacy (n, nil).
func TestServeUDPContextCancel(t *testing.T) {
	lc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	col := NewCollector(CollectorConfig{SwitchName: "live", LinkRate: 10 * Gbps})
	ctx, cancel := context.WithCancel(context.Background())
	type result struct {
		n   int
		err error
	}
	done := make(chan result, 1)
	go func() {
		n, err := ServeUDPContext(ctx, lc, col, 0, nil)
		done <- result{n, err}
	}()

	sender, err := net.Dial("udp", lc.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()
	frame := packetpkg.BuildTCP(nil, packetpkg.TCPSpec{
		SrcMAC: packetpkg.MAC{2, 0, 0, 0, 0, 1}, DstMAC: packetpkg.MAC{2, 0, 0, 0, 0, 2},
		SrcIP: packetpkg.IPv4{10, 0, 0, 1}, DstIP: packetpkg.IPv4{10, 0, 0, 2},
		SrcPort: 1000, DstPort: 2000, Seq: 0, Flags: packetpkg.TCPAck, PayloadLen: 100,
	})
	// Send until the loop has visibly consumed at least one sample, then
	// cancel mid-stream.
	deadline := time.Now().Add(2 * time.Second)
	for col.Stats().Samples == 0 {
		if time.Now().After(deadline) {
			t.Fatal("loop never consumed a sample")
		}
		if _, err := sender.Write(EncodeSample(nil, Time(1000000), frame)); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	cancel()

	select {
	case res := <-done:
		if res.n == 0 {
			t.Error("no samples before cancellation")
		}
		if !errors.Is(res.err, ErrUDPServeClosed) {
			t.Fatalf("err = %v, want ErrUDPServeClosed", res.err)
		}
		var ce *UDPCloseError
		if !errors.As(res.err, &ce) {
			t.Fatalf("err = %T, want *UDPCloseError", res.err)
		}
		if ce.Samples != res.n {
			t.Errorf("UDPCloseError.Samples = %d, want %d", ce.Samples, res.n)
		}
		if !errors.Is(res.err, context.Canceled) {
			t.Errorf("cause = %v, want context.Canceled", ce.Cause)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve loop did not stop after cancellation")
	}
}

// TestFacadeFaultWrap: the fault layer is reachable from the facade —
// a spec parses, wraps any Ingester, and deterministically injects.
func TestFacadeFaultWrap(t *testing.T) {
	sched, err := ParseFaultSpec("loss")
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector(CollectorConfig{SwitchName: "faulty", LinkRate: 10 * Gbps})
	fi := WrapFaults(col, sched, 1)
	frame := packetpkg.BuildTCP(nil, packetpkg.TCPSpec{
		SrcMAC: packetpkg.MAC{2, 0, 0, 0, 0, 1}, DstMAC: packetpkg.MAC{2, 0, 0, 0, 0, 2},
		SrcIP: packetpkg.IPv4{10, 0, 0, 1}, DstIP: packetpkg.IPv4{10, 0, 0, 2},
		SrcPort: 1000, DstPort: 2000, Seq: 0, Flags: packetpkg.TCPAck, PayloadLen: 100,
	})
	for i := 0; i < 50; i++ {
		if err := fi.Ingest(Time(i)*1000, frame); err != nil {
			t.Fatal(err)
		}
	}
	if got := col.Stats().Samples; got != 0 {
		t.Fatalf("total loss let %d samples through", got)
	}
	if got := fi.Injector().Metrics().Lost.Value(); got != 50 {
		t.Fatalf("Lost = %d, want 50", got)
	}

	if _, err := ParseFaultSpec("crash"); err == nil {
		t.Fatal("crash without @time accepted")
	}
}

func TestSampleEncoding(t *testing.T) {
	frame := []byte{1, 2, 3, 4, 5}
	d := EncodeSample(nil, Time(123456789), frame)
	tm, got, err := DecodeSample(d)
	if err != nil || tm != 123456789 || !bytes.Equal(got, frame) {
		t.Fatalf("roundtrip: %v %v %v", tm, got, err)
	}
	if _, _, err := DecodeSample([]byte{1, 2}); err == nil {
		t.Fatal("short datagram accepted")
	}
}
