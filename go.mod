module planck

go 1.22
