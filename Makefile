GO ?= go

.PHONY: all build vet test race check bench bench-obs clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race-fast covers the packages with genuine concurrency (the obs
# registry under concurrent observe/serve, the UDP transport) plus the
# hot-path packages, in a few seconds.
race-fast:
	$(GO) test -race ./internal/obs/ ./internal/core/ ./internal/counters/ ./internal/sim/ ./internal/packet/ .

# The experiments suite runs ~7 min uninstrumented; give the race
# build room beyond go test's 10-minute default.
race:
	$(GO) test -race -timeout 60m ./...

# check is the tier-1 gate: everything must compile, vet clean, and pass.
check: vet build test race-fast

# bench runs the per-figure testing.B targets once each.
bench:
	$(GO) test -bench . -benchtime 1x -run xxx .

# bench-obs measures the observability layer's overhead budget (counter
# increment ns/op, histogram observe, collector ingest bare vs
# instrumented with allocs/op) into BENCH_obs.json.
bench-obs:
	$(GO) run ./cmd/planck-bench -obs-json BENCH_obs.json

clean:
	rm -f BENCH_obs.json
	$(GO) clean ./...
