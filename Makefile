GO ?= go

.PHONY: all build vet test race race-fast fuzz-smoke check bench bench-obs bench-shard clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race-fast covers the packages with genuine concurrency (the sharded
# collector pipeline and its serial-equivalence oracles, the obs
# registry under concurrent observe/serve, the UDP transport) plus the
# hot-path packages, in under a minute.
race-fast:
	$(GO) test -race ./internal/obs/ ./internal/core/ ./internal/counters/ ./internal/sim/ ./internal/packet/ ./internal/lab/ .

# The experiments suite runs ~7 min uninstrumented; give the race
# build room beyond go test's 10-minute default.
race:
	$(GO) build ./...
	$(GO) test -race -count=1 -timeout 60m ./...

# fuzz-smoke gives each native fuzz target a short budget — enough to
# replay the corpus and shake the mutator — without tying up CI.
fuzz-smoke:
	$(GO) test -run xxx -fuzz FuzzDecode -fuzztime 10s ./internal/packet/
	$(GO) test -run xxx -fuzz FuzzIngest -fuzztime 10s ./internal/core/

# check is the tier-1 gate: everything must compile, vet clean, and pass.
check: vet build test race-fast

# bench runs the per-figure testing.B targets once each.
bench:
	$(GO) test -bench . -benchtime 1x -run xxx .

# bench-obs measures the observability layer's overhead budget (counter
# increment ns/op, histogram observe, collector ingest bare vs
# instrumented with allocs/op) into BENCH_obs.json.
bench-obs:
	$(GO) run ./cmd/planck-bench -obs-json BENCH_obs.json

# bench-shard compares serial vs sharded end-to-end ingest over a
# 64-flow mix into BENCH_shard.json (speedup is bounded by GOMAXPROCS;
# the report records the host's value).
bench-shard:
	$(GO) run ./cmd/planck-bench -shard-json BENCH_shard.json

clean:
	rm -f BENCH_obs.json BENCH_shard.json
	$(GO) clean ./...
