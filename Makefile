GO ?= go

.PHONY: all build vet test race race-fast fuzz-smoke chaos-smoke check bench bench-obs bench-shard bench-ingest bench-gate clean

all: check

# Every target that compiles or runs code goes through vet first — a
# vet finding should stop the build the same way a compile error does.
build: vet
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

# race-fast covers the packages with genuine concurrency (the sharded
# collector pipeline and its serial-equivalence oracles, the obs
# registry under concurrent observe/serve, the UDP transport) plus the
# hot-path packages, in under a minute.
race-fast: vet
	$(GO) test -race ./internal/obs/ ./internal/core/ ./internal/counters/ ./internal/sim/ ./internal/packet/ ./internal/lab/ .

# The experiments suite runs ~7 min uninstrumented; give the race
# build room beyond go test's 10-minute default.
race: vet
	$(GO) build ./...
	$(GO) test -race -count=1 -timeout 60m ./...

# fuzz-smoke gives each native fuzz target a short budget — enough to
# replay the corpus and shake the mutator — without tying up CI.
fuzz-smoke: vet
	$(GO) test -run xxx -fuzz FuzzDecode -fuzztime 10s ./internal/packet/
	$(GO) test -run xxx -fuzz FuzzIngest -fuzztime 10s ./internal/core/
	$(GO) test -run xxx -fuzz FuzzParseSpec -fuzztime 10s ./internal/faults/

# chaos-smoke runs the fault-injection suite and the supervised
# control-loop chaos scenario (loss blackout + crash + partition)
# under the race detector, plus a short fuzz of the fault-spec parser.
chaos-smoke: vet
	$(GO) test -race ./internal/faults/ ./internal/controller/
	$(GO) test -race -run 'TestChaos|TestHeartbeat' -timeout 15m ./internal/lab/ ./internal/core/
	$(GO) test -run xxx -fuzz FuzzParseSpec -fuzztime 5s ./internal/faults/

# check is the tier-1 gate: everything must compile, vet clean, pass,
# and hold the committed ingest hot-path budget.
check: vet build test race-fast bench-gate

# bench runs the per-figure testing.B targets once each.
bench: vet
	$(GO) test -bench . -benchtime 1x -run xxx .

# bench-obs measures the observability layer's overhead budget (counter
# increment ns/op, histogram observe, collector ingest bare vs
# instrumented with allocs/op) into BENCH_obs.json.
bench-obs: vet
	$(GO) run ./cmd/planck-bench -obs-json BENCH_obs.json

# bench-shard compares serial vs sharded end-to-end ingest over a
# 64-flow mix into BENCH_shard.json (speedup is bounded by GOMAXPROCS;
# the report records the host's value).
bench-shard: vet
	$(GO) run ./cmd/planck-bench -shard-json BENCH_shard.json

# bench-ingest measures the ingest hot path (serial and batched, plus
# the flow-table vs builtin-map microbenchmark pair) into
# BENCH_ingest.json — the committed baseline bench-gate compares against.
# Regenerate pinned to one CPU so the gated row is the per-sample serial
# budget, not a scheduling artifact.
bench-ingest: vet
	GOMAXPROCS=1 $(GO) run ./cmd/planck-bench -ingest-json BENCH_ingest.json

# bench-gate re-measures ingest_serial and fails if it regressed more
# than 15% against the committed BENCH_ingest.json baseline.
bench-gate: vet
	GOMAXPROCS=1 $(GO) run ./cmd/planck-bench -ingest-json - -gate-against BENCH_ingest.json

clean:
	rm -f BENCH_obs.json BENCH_shard.json
	$(GO) clean ./...
