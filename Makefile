GO ?= go

# Pinned staticcheck release; the staticcheck target resolves it from
# the local module cache (or an installed binary) and skips cleanly on
# offline machines with a cold cache.
STATICCHECK_VERSION ?= 2025.1

.PHONY: all build vet test race race-fast fuzz-smoke chaos-smoke trace-smoke fleet-smoke link-smoke governor-smoke soak-reorder staticcheck check bench bench-obs bench-baselines bench-shard bench-shard-mt bench-ingest bench-route bench-trace bench-fleet bench-link bench-governor bench-gate clean

all: check

# Every target that compiles or runs code goes through vet first — a
# vet finding should stop the build the same way a compile error does.
build: vet
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

# race-fast covers the packages with genuine concurrency (the sharded
# collector pipeline and its serial-equivalence oracles, the obs
# registry under concurrent observe/serve, the UDP transport, the
# vantagelink wire endpoints) plus the hot-path packages. The lab
# package's fleet-over-transport suites push it past go test's default
# 10-minute ceiling on small machines, hence the explicit timeout.
race-fast: vet
	$(GO) test -race -timeout 25m ./internal/obs/ ./internal/core/ ./internal/counters/ ./internal/sim/ ./internal/packet/ ./internal/lab/ ./internal/routing/ ./internal/governor/ ./internal/agg/ ./internal/vantagelink/ .

# The experiments suite runs ~7 min uninstrumented; give the race
# build room beyond go test's 10-minute default.
race: vet
	$(GO) build ./...
	$(GO) test -race -count=1 -timeout 60m ./...

# fuzz-smoke gives each native fuzz target a short budget — enough to
# replay the corpus and shake the mutator — without tying up CI.
fuzz-smoke: vet
	$(GO) test -run xxx -fuzz FuzzDecode -fuzztime 10s ./internal/packet/
	$(GO) test -run xxx -fuzz FuzzIngest -fuzztime 10s ./internal/core/
	$(GO) test -run xxx -fuzz FuzzParseSpec -fuzztime 10s ./internal/faults/
	$(GO) test -run xxx -fuzz FuzzTreeOfMAC -fuzztime 10s ./internal/topo/
	$(GO) test -run xxx -fuzz FuzzAggregateMerge -fuzztime 10s ./internal/agg/
	$(GO) test -run xxx -fuzz FuzzDecodeFrame -fuzztime 10s ./internal/vantagelink/

# chaos-smoke runs the fault-injection suite and the supervised
# control-loop chaos scenario (loss blackout + crash + partition)
# under the race detector, plus a short fuzz of the fault-spec parser.
chaos-smoke: vet
	$(GO) test -race ./internal/faults/ ./internal/controller/
	$(GO) test -race -run 'TestChaos|TestHeartbeat' -timeout 15m ./internal/lab/ ./internal/core/
	$(GO) test -run xxx -fuzz FuzzParseSpec -fuzztime 5s ./internal/faults/

# trace-smoke runs the TE workload with control-loop tracing on and
# fails unless at least one trace converged — a converged span has every
# stage populated (detection, queue, delivery, decision, actuation,
# convergence) and its stage durations sum to its wall time.
trace-smoke: vet
	$(GO) run ./cmd/planck-sim -size 20MiB -seed 1 -trace-min 1 > /dev/null

# fleet-smoke runs the k=8 fat tree (128 hosts, 80 switches) as a
# collector fleet behind the federated aggregation plane — vantage
# reports crossing the vantagelink wire protocol over channels dropping
# 5% of frames — with PlanckTE consuming the plane's merged view. It
# fails unless every flow completes, every pod closes at least one full
# detection→convergence control loop, every sender clock-syncs, and no
# two emitted events violate a link's cooldown (duplicate suppression
# holds under loss and retransmit).
fleet-smoke: vet
	$(GO) run ./cmd/planck-scale -run -k 8 -seed 7 -transport link -link-loss 0.05 > /dev/null

# link-smoke runs a 4-vantage fleet over real UDP loopback sockets —
# one sender goroutine per vantage with a skewed wall clock and 5%
# injected loss — and fails unless every record is delivered exactly
# once, every sender clock-syncs, and event cooldown spacing holds.
link-smoke: vet
	$(GO) run ./cmd/planck-scale -run -k 4 -seed 7 -transport udp -link-loss 0.05 > /dev/null

# governor-smoke runs the TE workload with a sampling-rate governor on
# every monitored switch — the mirror taps oversubscribe their monitor
# ports, so each governor must detect saturation from its estimator,
# commit at least one shed/tune episode through the snapshot plane, and
# close at least one loop (estimator-confirmed recovery past the
# threshold); planck-sim exits nonzero otherwise.
governor-smoke: vet
	$(GO) run ./cmd/planck-sim -size 20MiB -seed 1 -govern-min 1 > /dev/null

# soak-reorder replays the fleet capture through the transport with
# per-vantage clock skew across ReorderWindow settings {1ms, 5ms, 20ms}
# and checks the merged stream stays bit-identical to the unskewed
# ReorderWindow=0 oracle (plus a negative control with sync disabled).
soak-reorder: vet
	$(GO) test -run 'TestSoakReorderWindow|TestFleetMatchesGlobalOracleOverTransport' -count=1 ./internal/agg/

# staticcheck runs the pinned honnef.co/go/tools linter. Preference
# order: an installed binary, then `go run` against the local module
# cache. On an offline machine with neither it prints a skip notice and
# succeeds, so `make check` never fails for lack of network.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "staticcheck ./... (installed binary)"; \
		staticcheck ./...; \
	elif [ -d "$$($(GO) env GOMODCACHE)/honnef.co" ]; then \
		echo "go run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./..."; \
		GOFLAGS=-mod=mod $(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...; \
	else \
		echo "staticcheck: skipped (no binary on PATH, module cache cold; pin honnef.co/go/tools@$(STATICCHECK_VERSION))"; \
	fi

# check is the tier-1 gate: everything must compile, vet clean, lint
# clean (where staticcheck is available), pass, and hold the committed
# ingest hot-path budget.
check: vet build test race-fast staticcheck trace-smoke fleet-smoke link-smoke governor-smoke soak-reorder bench-gate

# bench runs the per-figure testing.B targets once each.
bench: vet
	$(GO) test -bench . -benchtime 1x -run xxx .

# bench-obs measures the observability layer's overhead budget (counter
# increment ns/op, histogram observe, collector ingest bare vs
# instrumented with allocs/op) into BENCH_obs.json.
bench-obs: vet
	$(GO) run ./cmd/planck-bench -obs-json BENCH_obs.json

# bench-baselines regenerates every committed ingest baseline —
# BENCH_ingest.json (serial hot path, the bench-gate budget),
# BENCH_shard.json (sharded vs serial at the same CPU budget),
# BENCH_shard_mt.json (sharded under GOMAXPROCS=4), and
# BENCH_governor.json (the sampling-rate governor's estimator and tick
# costs) — in ONE planck-bench process, so all four carry the same
# run_id and were measured on the same host and build (bench-gate
# verifies this).
# Pinned to one CPU so the gated serial row is the per-sample budget,
# not a scheduling artifact; the shard-mt pass raises its own
# GOMAXPROCS via -mt-cpu and restores it. -count 3 keeps the minimum
# per row, damping shared-machine scheduling noise.
bench-baselines: vet
	GOMAXPROCS=1 $(GO) run ./cmd/planck-bench -count 3 \
		-ingest-json BENCH_ingest.json \
		-shard-json BENCH_shard.json \
		-shard-mt-json BENCH_shard_mt.json \
		-governor-json BENCH_governor.json

# The per-report names delegate to bench-baselines: regenerating one
# report alone would break the shared-run_id invariant bench-gate
# checks.
bench-shard: bench-baselines
bench-shard-mt: bench-baselines
bench-ingest: bench-baselines
bench-governor: bench-baselines

# bench-route measures the routing-state plane into BENCH_route.json:
# snapshot commit cost, view resolve/refresh (self-gated to 0 allocs/op
# — the reader side is lock-free), and serial ingest with vs without an
# epoch-versioned View attached (self-gated to +5%).
bench-route: vet
	GOMAXPROCS=1 $(GO) run ./cmd/planck-bench -route-json BENCH_route.json

# bench-trace measures the control-loop tracer's idle overhead on the
# view-attached ingest path into BENCH_trace.json (self-gated: traced
# ingest 0 allocs/op and within +2% of the same-run bare pair).
bench-trace: vet
	GOMAXPROCS=1 $(GO) run ./cmd/planck-bench -trace-json BENCH_trace.json

# bench-fleet measures the aggregation plane into BENCH_fleet.json:
# per-sample merge and detect-under-cooldown (both self-gated to
# 0 allocs/op — they run once per mirrored sample at fleet scale) and
# the merger's ordered event emit path.
bench-fleet: vet
	GOMAXPROCS=1 $(GO) run ./cmd/planck-bench -fleet-json BENCH_fleet.json

# bench-link measures the vantage report transport into BENCH_link.json:
# the per-record wire codec (encode/decode, both self-gated to
# 0 allocs/op — they run once per forwarded sample), a full 24-record
# frame round trip, and end-to-end report delivery latency p50/p99 over
# real UDP loopback sockets.
bench-link: vet
	GOMAXPROCS=1 $(GO) run ./cmd/planck-bench -link-json BENCH_link.json

# bench-gate protects the ingest perf contract end to end: the four
# committed baselines must share one run_id (regenerated together via
# bench-baselines); fresh ingest_serial must hold the committed budget
# within 5%; the multicore sharded pipeline must stay allocation-free
# and, on hosts with ≥2 real cores, shards=4 must beat serial
# (single-core hosts get an honest skip notice, not a vacuous pass).
# Then the routing-plane self-gates (view rows 0 allocs/op, ingest_view
# within +5% of same-run ingest_serial), the tracer's idle-overhead
# self-gate (traced ingest 0 allocs/op, within +2% of bare), the
# aggregation plane's per-sample 0 allocs/op self-gate, the wire
# codec's per-record 0 allocs/op self-gate, and the governor's
# estimator-update 0 allocs/op self-gate.
bench-gate: vet
	GOMAXPROCS=1 $(GO) run ./cmd/planck-bench -verify-run-ids BENCH_ingest.json,BENCH_shard.json,BENCH_shard_mt.json,BENCH_governor.json
	GOMAXPROCS=1 $(GO) run ./cmd/planck-bench -count 3 -ingest-json - -gate-against BENCH_ingest.json
	GOMAXPROCS=1 $(GO) run ./cmd/planck-bench -count 3 -shard-mt-json -
	GOMAXPROCS=1 $(GO) run ./cmd/planck-bench -route-json -
	GOMAXPROCS=1 $(GO) run ./cmd/planck-bench -trace-json -
	GOMAXPROCS=1 $(GO) run ./cmd/planck-bench -fleet-json -
	GOMAXPROCS=1 $(GO) run ./cmd/planck-bench -link-json -
	GOMAXPROCS=1 $(GO) run ./cmd/planck-bench -governor-json -

clean:
	rm -f BENCH_obs.json BENCH_shard.json BENCH_shard_mt.json BENCH_route.json BENCH_trace.json BENCH_fleet.json BENCH_link.json
	$(GO) clean ./...
