// Package-level benchmarks: one testing.B target per table and figure in
// the paper's evaluation, plus ablations of the design choices DESIGN.md
// calls out. Benchmarks report experiment outcomes through b.ReportMetric
// so `go test -bench` output doubles as a results table; heavier grids
// live in cmd/planck-bench.
package planck

import (
	"testing"

	"planck/internal/core"
	"planck/internal/experiments"
	"planck/internal/lab"
	"planck/internal/obs"
	packetpkg "planck/internal/packet"
	"planck/internal/stats"
	"planck/internal/te"
	"planck/internal/topo"
	"planck/internal/units"
	"planck/internal/workload"
)

// BenchmarkTable1 regenerates the measurement-speed comparison.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table1(int64(i) + 1)
		for _, row := range r.Rows {
			if row.System == "Planck 10Gbps" {
				b.ReportMetric(row.Max.Milliseconds(), "planck10G-worst-ms")
			}
		}
	}
}

// BenchmarkSampleLatency covers §5.2 (and the minbuffer rows of Table 1).
func BenchmarkSampleLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.SampleLatency(experiments.SampleLatencyParams{
			Kind: experiments.SwitchG8264, Seed: int64(i) + 1,
		})
		b.ReportMetric(r.Samples.Median(), "median-µs")
	}
}

// BenchmarkFig2 .. BenchmarkFig4 share the congested-ports rig.
func BenchmarkFig2(b *testing.B) {
	benchMirrorImpact(b, func(p experiments.MirrorImpactPoint) (float64, string) { return p.LossPct, "loss-pct" })
}
func BenchmarkFig3(b *testing.B) {
	benchMirrorImpact(b, func(p experiments.MirrorImpactPoint) (float64, string) { return p.LatMedian, "lat-p50-µs" })
}
func BenchmarkFig4(b *testing.B) {
	benchMirrorImpact(b, func(p experiments.MirrorImpactPoint) (float64, string) { return p.TputMedian, "tput-p50-gbps" })
}

func benchMirrorImpact(b *testing.B, metric func(experiments.MirrorImpactPoint) (float64, string)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		pts := experiments.MirrorImpact(experiments.MirrorImpactParams{
			Ports: []int{3}, Runs: 1, Seed: int64(i) + 1,
			Warmup: 100 * units.Millisecond, Duration: 200 * units.Millisecond,
		})
		for _, p := range pts {
			if p.Mirror {
				v, name := metric(p)
				b.ReportMetric(v, name)
			}
		}
	}
}

// BenchmarkFig5 / 6 / 7: sample-stream characteristics.
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.SampleStream(experiments.SampleStreamParams{
			Flows: 13, Duration: 60 * units.Millisecond, Seed: int64(i) + 1,
		})
		b.ReportMetric(r.BurstMTUs.FractionAtOrBelow(1.0), "burst<=1mtu-frac")
	}
}

func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs := experiments.Fig6Sweep([]int{4, 8, 12}, 40*units.Millisecond, int64(i)+1)
		b.ReportMetric(rs[len(rs)-1].InterarrivalMTUs.Mean(), "interarrival-12flows-mtus")
	}
}

func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.SampleStream(experiments.SampleStreamParams{
			Flows: 13, Duration: 60 * units.Millisecond, Seed: int64(i) + 1,
		})
		b.ReportMetric(r.InterarrivalMTUs.FractionAtOrBelow(13), "interarrival<=13mtu-frac")
	}
}

// BenchmarkFig8: congested sample-latency CDF medians.
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig8(experiments.Fig8Params{Seed: int64(i) + 1, Duration: 200 * units.Millisecond})
		b.ReportMetric(r.Latency[experiments.SwitchG8264].Median()/1000, "median-10G-ms")
		b.ReportMetric(r.Latency[experiments.SwitchPronto3290].Median()/1000, "median-1G-ms")
	}
}

// BenchmarkFig9: flat latency across oversubscription factors.
func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := experiments.Fig9(experiments.Fig9Params{
			Factors: []int{2, 8}, Duration: 100 * units.Millisecond, Seed: int64(i) + 1,
		})
		b.ReportMetric(pts[len(pts)-1].MeanLatency.Milliseconds(), "mean-at-8x-ms")
	}
}

// BenchmarkFig10: estimator smoothness contrast.
func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series := experiments.Fig10(experiments.Fig10Params{Seed: int64(i) + 1})
		var rollMax float64
		for _, pt := range series {
			if g := pt.Rolling.Gigabits(); g > rollMax {
				rollMax = g
			}
		}
		b.ReportMetric(rollMax, "rolling-max-gbps")
	}
}

// BenchmarkFig11: estimation error.
func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := experiments.Fig11(experiments.Fig11Params{
			Factors: []int{8}, Duration: 60 * units.Millisecond, Seed: int64(i) + 1,
		})
		b.ReportMetric(pts[0].MeanError*100, "error-pct")
	}
}

// BenchmarkFig12: latency breakdown totals.
func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig12(int64(i) + 1)
		b.ReportMetric((r.SampleMax + r.EstimateMax).Microseconds(), "total-worst-µs")
	}
}

// BenchmarkFig14 runs a reduced workload grid (stride + bijection at
// 50 MiB); the full grid is cmd/planck-bench -experiment fig14.
func BenchmarkFig14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells := experiments.Fig14(experiments.Fig14Params{
			Workloads: []experiments.WorkloadKind{experiments.WorkloadStride},
			Sizes:     []int64{50 << 20},
			Schemes:   []experiments.Scheme{experiments.SchemeStatic, experiments.SchemePlanckTE, experiments.SchemeOptimal},
			Runs:      1,
			Seed:      int64(i) + 1,
		})
		for _, c := range cells {
			if c.Scheme == experiments.SchemePlanckTE {
				b.ReportMetric(c.AvgGbps, "planckte-gbps")
			}
		}
	}
}

// BenchmarkFig15: control-loop latencies.
func BenchmarkFig15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig15(int64(i) + 1)
		b.ReportMetric(r.Detection.Milliseconds(), "detection-ms")
		b.ReportMetric(r.Response.Milliseconds(), "response-ms")
	}
}

// BenchmarkFig16: response-latency medians per actuator.
func BenchmarkFig16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig16(experiments.Fig16Params{Episodes: 3, Seed: int64(i) + 1})
		b.ReportMetric(r.ARP.Median(), "arp-median-ms")
		b.ReportMetric(r.OpenFlow.Median(), "of-median-ms")
	}
}

// BenchmarkFig17: the small-flow headline point (50 MiB stride).
func BenchmarkFig17(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells := experiments.Fig17(experiments.Fig17Params{
			Sizes:   []int64{50 << 20},
			Schemes: []experiments.Scheme{experiments.SchemePlanckTE, experiments.SchemeOptimal},
			Seed:    int64(i) + 1,
		})
		ratio := cells[0].AvgGbps / cells[1].AvgGbps
		b.ReportMetric(ratio, "planckte/optimal")
	}
}

// BenchmarkFig18: 100 MiB CDF medians, one scheme pair.
func BenchmarkFig18(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig18(experiments.Fig18Params{
			Size:    20 << 20, // scaled shuffle to bound bench runtime
			Schemes: []experiments.Scheme{experiments.SchemePlanckTE},
			Seed:    int64(i) + 1,
		})
		b.ReportMetric(r.ShuffleCompletion[experiments.SchemePlanckTE].Median(), "shuffle-p50-s")
	}
}

// BenchmarkScalability: §9.1 arithmetic.
func BenchmarkScalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := experiments.Scalability()
		if len(tab.Rows) != 3 {
			b.Fatal("bad table")
		}
	}
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblationEstimator compares the burst estimator's stability
// against the rolling average it replaces (Fig. 10's design point): the
// standard deviation of each estimator's readings over the slow-start
// window, where the naive window oscillates between catching zero and
// two bursts.
func BenchmarkAblationEstimator(b *testing.B) {
	lo := units.Time(200 * units.Microsecond)
	hi := units.Time(1500 * units.Microsecond)
	for i := 0; i < b.N; i++ {
		series := experiments.Fig10(experiments.Fig10Params{Seed: int64(i) + 1})
		var roll, planck stats.Sample
		for _, pt := range series {
			if pt.Time < lo || pt.Time > hi {
				continue
			}
			roll.Add(pt.Rolling.Gigabits())
			planck.Add(pt.Planck.Gigabits())
		}
		b.ReportMetric(roll.Stddev(), "rolling-stddev-gbps")
		b.ReportMetric(planck.Stddev(), "planck-stddev-gbps")
	}
}

// BenchmarkAblationMirrorBuffer contrasts default and minimal monitor
// buffering (Table 1's minbuffer rows).
func BenchmarkAblationMirrorBuffer(b *testing.B) {
	for _, min := range []bool{false, true} {
		name := "default"
		if min {
			name = "minbuffer"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := experiments.SampleLatency(experiments.SampleLatencyParams{
					Kind: experiments.SwitchG8264, MinBuffer: min, Seed: int64(i) + 1,
				})
				b.ReportMetric(r.Samples.Median(), "median-µs")
			}
		})
	}
}

// BenchmarkAblationAltPaths varies how many shadow-MAC alternate trees
// PlanckTE may use (the paper installs four).
func BenchmarkAblationAltPaths(b *testing.B) {
	for _, trees := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "1tree", 2: "2trees", 4: "4trees"}[trees], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.ReportMetric(ablationAltPaths(trees, int64(i)+1), "avg-gbps")
			}
		})
	}
}

func ablationAltPaths(trees int, seed int64) float64 {
	net := topo.FatTree16(units.Rate10G)
	// Constrain the initial assignment to the first `trees` trees and let
	// TE choose among the same subset by overriding NumTrees.
	initial := make([]int, 16)
	rngSeed := seed
	for i := range initial {
		initial[i] = int(rngSeed+int64(i)) % trees
	}
	restricted := *net
	restricted.NumTrees = trees
	l, err := lab.New(lab.Options{Net: &restricted, Mirror: true, Seed: seed, InitialTrees: initial})
	if err != nil {
		panic(err)
	}
	te.NewPlanckTE(l.Ctrl, te.DefaultPlanckTEConfig())
	res, err := workload.Run(l, workload.Stride(16, 8, 20<<20), workload.RunConfig{
		Timeout: 10 * units.Duration(units.Second),
	})
	if err != nil {
		panic(err)
	}
	return res.AvgGoodput().Gigabits()
}

// BenchmarkAblationFlowTimeout varies PlanckTE's flow timeout (§6.2 uses
// 3 ms).
func BenchmarkAblationFlowTimeout(b *testing.B) {
	for _, ms := range []int{1, 3, 10} {
		b.Run(map[int]string{1: "1ms", 3: "3ms", 10: "10ms"}[ms], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := te.DefaultPlanckTEConfig()
				cfg.FlowTimeout = units.Duration(ms) * units.Millisecond
				b.ReportMetric(ablationTECfg(cfg, int64(i)+1), "avg-gbps")
			}
		})
	}
}

// BenchmarkAblationActuator compares ARP and OpenFlow actuation on the
// stride workload (Fig. 16's design point applied to Fig. 14's metric).
func BenchmarkAblationActuator(b *testing.B) {
	for _, act := range []te.Actuator{te.ActuateARP, te.ActuateOpenFlow} {
		name := "arp"
		if act == te.ActuateOpenFlow {
			name = "openflow"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := te.DefaultPlanckTEConfig()
				cfg.Actuate = act
				b.ReportMetric(ablationTECfg(cfg, int64(i)+1), "avg-gbps")
			}
		})
	}
}

func ablationTECfg(cfg te.PlanckTEConfig, seed int64) float64 {
	net := topo.FatTree16(units.Rate10G)
	l, err := lab.New(lab.Options{Net: net, Mirror: true, Seed: seed})
	if err != nil {
		panic(err)
	}
	te.NewPlanckTE(l.Ctrl, cfg)
	res, err := workload.Run(l, workload.Stride(16, 8, 20<<20), workload.RunConfig{
		Timeout: 10 * units.Duration(units.Second),
	})
	if err != nil {
		panic(err)
	}
	return res.AvgGoodput().Gigabits()
}

// BenchmarkAblationThreshold varies the collector's congestion threshold.
func BenchmarkAblationThreshold(b *testing.B) {
	for _, th := range []float64{0.5, 0.9} {
		name := "50pct"
		if th == 0.9 {
			name = "90pct"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.ReportMetric(ablationThreshold(th, int64(i)+1), "avg-gbps")
			}
		})
	}
}

func ablationThreshold(th float64, seed int64) float64 {
	net := topo.FatTree16(units.Rate10G)
	l, err := lab.New(lab.Options{
		Net: net, Mirror: true, Seed: seed,
		CollectorConfig: coreConfigWithThreshold(th),
	})
	if err != nil {
		panic(err)
	}
	te.NewPlanckTE(l.Ctrl, te.DefaultPlanckTEConfig())
	res, err := workload.Run(l, workload.Stride(16, 8, 20<<20), workload.RunConfig{
		Timeout: 10 * units.Duration(units.Second),
	})
	if err != nil {
		panic(err)
	}
	return res.AvgGoodput().Gigabits()
}

func coreConfigWithThreshold(th float64) CollectorConfig {
	return CollectorConfig{UtilThreshold: th}
}

// BenchmarkExtensionPrioritySampling measures the §9.2 preferential
// sampling win: SYN sample latency with the priority class on.
func BenchmarkExtensionPrioritySampling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs := experiments.PrioritySampling(int64(i) + 1)
		b.ReportMetric(rs[0].SYNLatencyMedian, "baseline-syn-µs")
		b.ReportMetric(rs[1].SYNLatencyMedian, "priority-syn-µs")
	}
}

// BenchmarkExtensionTargetRate measures the §9.2 target-rate proposal:
// sample latency without the mirror backlog, at unchanged accuracy.
func BenchmarkExtensionTargetRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs := experiments.TargetRateMirroring(int64(i) + 1)
		b.ReportMetric(rs[0].LatencyMedian, "oversub-µs")
		b.ReportMetric(rs[1].LatencyMedian, "target-rate-µs")
		b.ReportMetric(rs[1].EstimateError*100, "target-rate-err-pct")
	}
}

// BenchmarkObsCounterInc is the acceptance floor for the telemetry
// layer: a counter increment must stay within a handful of nanoseconds
// (the ISSUE budget is 25 ns/op) so always-on pipeline counters are
// free at sample rate.
func BenchmarkObsCounterInc(b *testing.B) {
	var c obs.Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
	if c.Value() != int64(b.N) {
		b.Fatal("lost increments")
	}
}

// benchCollectorIngest drives the real parse-estimate pipeline with a
// steady in-order TCP stream, patching the sequence number in place so
// the loop itself allocates nothing — any allocation reported comes
// from the collector (and must be zero).
func benchCollectorIngest(b *testing.B, reg *obs.Registry) {
	b.Helper()
	col := core.New(core.Config{
		SwitchName: "bench",
		NumPorts:   4,
		LinkRate:   units.Rate10G,
		Metrics:    reg,
	})
	frame := packetpkg.BuildTCP(nil, packetpkg.TCPSpec{
		SrcMAC: packetpkg.MAC{2, 0, 0, 0, 0, 1}, DstMAC: packetpkg.MAC{2, 0, 0, 0, 0, 2},
		SrcIP: packetpkg.IPv4{10, 0, 0, 1}, DstIP: packetpkg.IPv4{10, 0, 0, 2},
		SrcPort: 1000, DstPort: 2000, Flags: packetpkg.TCPAck, PayloadLen: 1460,
	})
	seqOff := packetpkg.EthernetHeaderLen + packetpkg.IPv4MinHeaderLen + 4
	var t0 units.Time
	var seq uint32
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frame[seqOff] = byte(seq >> 24)
		frame[seqOff+1] = byte(seq >> 16)
		frame[seqOff+2] = byte(seq >> 8)
		frame[seqOff+3] = byte(seq)
		if err := col.Ingest(t0, frame); err != nil {
			b.Fatal(err)
		}
		seq += 1460
		t0 = t0.Add(units.Duration(1230))
	}
}

// BenchmarkCollectorIngestBare is the hot path with telemetry disabled:
// zero allocations, counters only.
func BenchmarkCollectorIngestBare(b *testing.B) {
	benchCollectorIngest(b, nil)
}

// BenchmarkCollectorIngestInstrumented attaches a registry, which turns
// on per-stage wall-clock timing; still zero allocations per sample.
func BenchmarkCollectorIngestInstrumented(b *testing.B) {
	benchCollectorIngest(b, obs.NewRegistry())
}
