package planck

import (
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"planck/internal/obs"
	"planck/internal/obs/trace"
	"planck/internal/packet"
	"planck/internal/routing"
	"planck/internal/topo"
)

// TestTraceEndpointsDuringBatchedIngest hammers the observability HTTP
// surface — Prometheus /metrics, /debug/vars, and the flight recorder's
// /debug/traces and /debug/traces/summary — while ServeUDPBatched drives
// a congested 9.5 Gbps stream through a traced collector whose
// subscriber walks spans through the full control loop, including epoch
// commits that converge armed watches. Run under -race this proves the
// tracer and registry read paths are safe against the ingest hot path.
func TestTraceEndpointsDuringBatchedIngest(t *testing.T) {
	const (
		total      = 40000
		payload    = 256
		spacing    = 215 // ns between samples ≈ 9.5 Gbps at 256B payload
		commitEach = 3   // every 3rd event commits a new epoch
	)

	net := topo.FatTree16(10 * Gbps)
	st := routing.NewStore(net)
	st.Commit(0, nil)

	reg := obs.NewRegistry()
	tracer := trace.New(256)
	tracer.RegisterMetrics(reg)

	col := NewCollector(CollectorConfig{
		SwitchName:    "race",
		NumPorts:      8,
		LinkRate:      10 * Gbps,
		UtilThreshold: 0.01,
		Metrics:       reg,
		Tracer:        tracer,
	})
	col.SetPortMapper(routing.NewView(st, net.Hosts[1].Switch))

	// The subscriber plays controller: deliver every event, and commit a
	// new routing epoch on every commitEach'th so the collector's next
	// sync re-resolves the flow and NoteResolve converges the watch.
	key := packet.FlowKey{
		SrcIP: topo.HostIP(0), DstIP: topo.HostIP(1),
		SrcPort: 1000, DstPort: 5001, Proto: packet.IPProtocolTCP,
	}
	label := topo.ShadowMAC(1, 0)
	events := 0
	col.Subscribe(func(ev CongestionEvent) {
		events++
		tracer.MarkQueued(ev.ID, ev.Time)
		tracer.MarkDelivered(ev.ID, ev.Time)
		if events%commitEach != 0 {
			tracer.FinishCause(ev.ID)
			return
		}
		snap := st.Commit(ev.Time, nil)
		if tracer.MarkDecided(ev.ID, ev.Time, trace.Decision{
			EpochNew: snap.Epoch(), Flow: key, NewMAC: label, Changes: 1,
		}) {
			tracer.MarkActuated(ev.ID, ev.Time)
		}
	})

	dgrams := make([][]byte, total)
	var tm Time
	var seq uint32
	for i := range dgrams {
		frame := packet.BuildTCP(nil, packet.TCPSpec{
			SrcMAC: packet.MAC{2, 0, 0, 0, 0, 1}, DstMAC: label,
			SrcIP: key.SrcIP, DstIP: key.DstIP,
			SrcPort: key.SrcPort, DstPort: key.DstPort,
			Seq: seq, Flags: packet.TCPAck, PayloadLen: payload,
		})
		dgrams[i] = EncodeSample(nil, tm, frame)
		tm = tm.Add(Duration(spacing))
		seq += payload
	}

	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	done := make(chan struct{})
	var wg sync.WaitGroup
	endpoints := []string{"/metrics", "/debug/vars", "/debug/traces", "/debug/traces/summary"}
	for _, ep := range endpoints {
		wg.Add(1)
		go func(url string) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Get(url)
				if err != nil {
					t.Errorf("GET %s: %v", url, err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || len(body) == 0 {
					t.Errorf("GET %s: status %d, %d bytes", url, resp.StatusCode, len(body))
					return
				}
			}
		}(srv.URL + ep)
	}

	var udpStats UDPServeStats
	n, err := ServeUDPBatched(&memPacketConn{dgrams: dgrams}, col, total, 32, &udpStats)
	close(done)
	wg.Wait()
	if err != nil || n != total {
		t.Fatalf("ServeUDPBatched = (%d, %v), want (%d, nil)", n, err, total)
	}
	if s := col.Stats(); s.UnmappedOutput != 0 {
		t.Fatalf("%d unmapped samples; the shadow-MAC label must resolve", s.UnmappedOutput)
	}
	if events == 0 {
		t.Fatal("no congestion events fired; the stream must cross the threshold")
	}
	if got := tracer.Completed.Value(); got == 0 {
		t.Fatal("no spans completed")
	}
	if got := tracer.Converged.Value(); got == 0 {
		t.Fatal("no spans converged; epoch commits must re-resolve the flow")
	}
	for _, s := range append(tracer.Recorder().Snapshot(), tracer.ConvergedSpans()...) {
		if s.Outcome == trace.OutcomeConverged {
			if !s.Complete() {
				t.Fatalf("converged span missing stages: %+v", s)
			}
			if s.EpochNew <= s.EpochOld {
				t.Fatalf("converged span epochs %d→%d not advancing", s.EpochOld, s.EpochNew)
			}
		}
	}
	if tm := tracer.ActiveCount(); tm > 1 {
		t.Errorf("%d spans left open (at most the last in-flight event may remain)", tm)
	}
}
