package planck_test

import (
	"fmt"

	"planck"
)

// ExampleRateEstimator shows the paper's core trick: even a sparse,
// irregular sample of a TCP stream yields an exact rate estimate,
// because sequence numbers carry the byte count.
func ExampleNewRateEstimator() {
	e := planck.NewRateEstimator()

	// A 9.5 Gbps stream sampled roughly 1-in-10: 14600 bytes every
	// 12.3 µs.
	var t planck.Time
	var seq uint32
	for i := 0; i < 200; i++ {
		e.Observe(t, seq)
		seq += 14600
		t = t.Add(planck.Duration(12300))
	}
	rate, _, _ := e.Rate()
	fmt.Printf("estimated %.1f Gbps from 1-in-10 samples\n", rate.Gigabits())
	// Output: estimated 9.5 Gbps from 1-in-10 samples
}

// ExampleNewSingleSwitchTestbed runs the smallest end-to-end pipeline:
// a saturated flow, an oversubscribed mirror, and a collector estimate.
func ExampleNewSingleSwitchTestbed() {
	tb, err := planck.NewSingleSwitchTestbed(4, 42)
	if err != nil {
		panic(err)
	}
	conn, err := tb.Hosts[0].StartFlow(0, planck.HostIP(1), 5001, 8<<20, 1)
	if err != nil {
		panic(err)
	}
	tb.Run(50_000_000) // 50 ms of virtual time

	if rate, ok := tb.Collector(0).FlowRate(conn.FlowKey()); ok && rate > 5*planck.Gbps {
		fmt.Println("collector tracked the flow at multi-Gbps rate")
	}
	// Output: collector tracked the flow at multi-Gbps rate
}
