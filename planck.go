// Package planck is the public facade of this repository: a faithful Go
// reproduction of "Planck: Millisecond-scale Monitoring and Control for
// Commodity Networks" (SIGCOMM 2014).
//
// The package re-exports the pieces a downstream user composes:
//
//   - the collector (the paper's core contribution): feed it timestamped
//     Ethernet frames from any source — a pcap file, a live stream, or
//     the bundled simulator — and query flow rates, link utilization,
//     and congestion events (NewCollector, ReplayPcap);
//   - the rate estimator on its own, for embedding in other pipelines
//     (NewRateEstimator);
//   - the simulated testbed: switches with oversubscribed mirroring,
//     TCP hosts, fat-tree topologies, an SDN controller, and the
//     traffic-engineering application (NewFatTreeTestbed,
//     NewSingleSwitchTestbed, AttachPlanckTE);
//   - the experiment harnesses regenerating every table and figure in
//     the paper's evaluation (package internal/experiments, surfaced
//     through cmd/planck-bench).
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record.
package planck

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync/atomic"
	"time"

	"planck/internal/core"
	"planck/internal/faults"
	"planck/internal/lab"
	"planck/internal/pcap"
	"planck/internal/te"
	"planck/internal/topo"
	"planck/internal/units"
)

// Re-exported core types.
type (
	// Collector consumes sampled frames and produces flow rates, link
	// utilization, and congestion events.
	Collector = core.Collector
	// CollectorConfig tunes a Collector.
	CollectorConfig = core.Config
	// CongestionEvent is a threshold-crossing notification.
	CongestionEvent = core.CongestionEvent
	// FlowInfo annotates a flow inside an event.
	FlowInfo = core.FlowInfo
	// RateEstimator is the burst-clustered sequence-number estimator.
	RateEstimator = core.RateEstimator

	// ShardedCollector is the concurrent collector pipeline: samples are
	// hash-partitioned by flow across per-shard collectors and merged
	// into one coherent view.
	ShardedCollector = core.ShardedCollector
	// ShardedCollectorConfig tunes a ShardedCollector.
	ShardedCollectorConfig = core.ShardedConfig

	// Testbed is an assembled simulated network.
	Testbed = lab.Lab
	// TestbedOptions configures a Testbed.
	TestbedOptions = lab.Options

	// TrafficEngineer is the PlanckTE application.
	TrafficEngineer = te.PlanckTE

	// Time and Duration are virtual-clock quantities (int64 nanoseconds).
	Time = units.Time
	// Duration is a span of virtual time.
	Duration = units.Duration
	// Rate is a data rate in bits per second.
	Rate = units.Rate

	// FaultSchedule describes which faults are active when; build one
	// with ParseFaultSpec or faults.NewSchedule.
	FaultSchedule = faults.Schedule
	// FaultRule is one activation window inside a FaultSchedule.
	FaultRule = faults.Rule
	// FaultKind enumerates the injectable fault classes.
	FaultKind = faults.Kind
	// FaultInjector actuates a schedule's mirror-path faults on a frame
	// stream.
	FaultInjector = faults.Injector
	// FaultMetrics counts injected faults.
	FaultMetrics = faults.Metrics
	// FaultyIngester interposes a FaultInjector in front of any Ingester.
	FaultyIngester = faults.FaultyIngester

	// BatchError reports partial failure inside an IngestBatch call:
	// how many frames failed, the index of the first failure, and its
	// error. The rest of the batch was still processed.
	BatchError = core.BatchError
)

// Common rate constants.
const (
	Gbps = units.Gbps
	Mbps = units.Mbps
)

// NewCollector builds a standalone collector. Feed it with
// Collector.Ingest(timestamp, frame).
func NewCollector(cfg CollectorConfig) *Collector { return core.New(cfg) }

// NewShardedCollector builds and starts a concurrent collector pipeline
// (zero Shards = one per GOMAXPROCS). Close it when done.
func NewShardedCollector(cfg ShardedCollectorConfig) *ShardedCollector { return core.NewSharded(cfg) }

// Ingester consumes timestamped Ethernet frames. Both *Collector and
// *ShardedCollector satisfy it; every stream entry point in this package
// accepts either.
//
// IngestBatch processes len(ts) samples in one call; it is semantically
// an Ingest loop (same per-frame accounting, same end state,
// order-sensitive effects included), but amortizes per-call overhead
// when the batch's timestamps are non-decreasing. Per-frame failures do
// not stop the batch; they are aggregated into a *BatchError.
//
// Ingester is an alias of core.Ingester, the seam the lab's capture
// stack, the fault injector, and the UDP/pcap transports all share.
type Ingester = core.Ingester

// NewRateEstimator returns an estimator with the paper's constants
// (200 µs minimum burst gap, 700 µs maximum window).
func NewRateEstimator() *RateEstimator { return core.NewRateEstimator() }

// ParseFaultSpec parses the compact fault-spec grammar shared by tests,
// planck-sim, and planck-collector, e.g.
// "loss:0.05,skew:200us@10ms-,crash@61ms". See faults.ParseSpec for the
// full grammar.
func ParseFaultSpec(spec string) (*FaultSchedule, error) { return faults.ParseSpec(spec) }

// WrapFaults interposes a seeded fault injector in front of any
// ingester: frames pass through sched's mirror-path faults
// (loss/corruption/duplication/reordering/skew) before next sees them.
// Identical (spec, seed, stream) triples inject identical faults.
func WrapFaults(next Ingester, sched *FaultSchedule, seed int64) *FaultyIngester {
	return faults.Wrap(next, faults.NewInjector(sched, seed, nil))
}

// replayPcapBatch is how many frames ReplayPcap accumulates before
// handing them to the collector in one IngestBatch call.
const replayPcapBatch = 64

// ReplayPcap streams a pcap file through a collector (serial or
// sharded), returning the number of frames ingested. Decode errors on
// individual frames are counted by the collector and do not abort the
// replay.
//
// Frames are delivered in IngestBatch calls of up to replayPcapBatch.
// The pcap reader reuses one scratch buffer per record, so each batch's
// frames are staged in a reusable arena; steady-state replay performs
// no per-frame allocation.
func ReplayPcap(r io.Reader, c Ingester) (int, error) {
	pr, err := pcap.NewReader(r)
	if err != nil {
		return 0, err
	}
	var (
		ts     []units.Time
		offs   []int // frame i is arena[offs[i]:offs[i+1]]
		arena  []byte
		frames [][]byte
	)
	n := 0
	flush := func() {
		if len(ts) == 0 {
			return
		}
		frames = frames[:0]
		for i := 0; i+1 < len(offs); i++ {
			frames = append(frames, arena[offs[i]:offs[i+1]])
		}
		_ = c.IngestBatch(ts, frames) // per-frame errors are counted in Stats
		n += len(ts)
		ts, offs, arena = ts[:0], offs[:0], arena[:0]
	}
	for {
		rec, err := pr.Next()
		if err == io.EOF {
			flush()
			return n, nil
		}
		if err != nil {
			flush()
			return n, err
		}
		if len(offs) == 0 {
			offs = append(offs, 0)
		}
		ts = append(ts, rec.Time)
		arena = append(arena, rec.Data...)
		offs = append(offs, len(arena))
		if len(ts) == replayPcapBatch {
			flush()
		}
	}
}

// Live sample transport: one UDP datagram per sampled frame, prefixed by
// an 8-byte big-endian nanosecond timestamp. This is the encapsulation a
// capture shim (netmap, AF_PACKET, a switch CPU) uses to feed a remote
// collector, mirroring the paper's collector-per-monitor-port deployment
// without requiring raw-socket privileges.
const sampleHeaderLen = 8

// EncodeSample prepends the transport header to a frame.
func EncodeSample(buf []byte, t Time, frame []byte) []byte {
	need := sampleHeaderLen + len(frame)
	if cap(buf) < need {
		buf = make([]byte, need)
	}
	buf = buf[:need]
	binary.BigEndian.PutUint64(buf[:8], uint64(t))
	copy(buf[8:], frame)
	return buf
}

// DecodeSample splits a datagram into timestamp and frame.
func DecodeSample(dgram []byte) (Time, []byte, error) {
	if len(dgram) < sampleHeaderLen {
		return 0, nil, fmt.Errorf("planck: sample datagram %d bytes", len(dgram))
	}
	return Time(binary.BigEndian.Uint64(dgram[:8])), dgram[8:], nil
}

// UDPServeStats counts what a live UDP ingest loop saw. All fields are
// atomic so a monitoring goroutine (e.g. a metrics endpoint) can read
// them while the serve loop runs.
type UDPServeStats struct {
	// Samples counts well-formed datagrams handed to the collector.
	Samples atomic.Int64
	// ShortDatagrams counts datagrams too short to carry the transport
	// header (malformed sender or truncation in flight).
	ShortDatagrams atomic.Int64
	// TimestampRegressions counts datagrams whose frame the collector
	// rejected and whose timestamp ran backwards relative to the last
	// accepted sample — the signature of a confused or unsynchronized
	// capture shim.
	TimestampRegressions atomic.Int64
	// IngestErrors counts the remaining collector rejections (frames
	// that failed to parse as Ethernet/IPv4/TCP-UDP).
	IngestErrors atomic.Int64
}

// ErrUDPServeClosed marks an ingest loop that ended because its
// transport was torn down — the connection closed under it or its
// context was cancelled — rather than by reaching its sample budget.
// Match it with errors.Is.
var ErrUDPServeClosed = errors.New("planck: udp serve loop closed")

// UDPCloseError is the typed teardown error of ServeUDPContext: the
// loop stopped before its budget and this records why and how far it
// got. It matches ErrUDPServeClosed and unwraps to the transport or
// context error that ended the loop.
type UDPCloseError struct {
	// Samples is how many datagrams had been processed when the loop
	// stopped.
	Samples int
	// Cause is the read or context error that ended the loop.
	Cause error
}

// Error implements error.
func (e *UDPCloseError) Error() string {
	return fmt.Sprintf("planck: udp serve loop closed after %d samples: %v", e.Samples, e.Cause)
}

// Unwrap exposes the underlying transport/context error.
func (e *UDPCloseError) Unwrap() error { return e.Cause }

// Is reports true for ErrUDPServeClosed so callers can classify the
// shutdown without naming this type.
func (e *UDPCloseError) Is(target error) bool { return target == ErrUDPServeClosed }

// serveUDP is the shared ingest loop. It returns the raw read error
// that ended the loop (nil when the sample budget was reached); the
// exported wrappers decide how teardown surfaces.
func serveUDP(conn net.PacketConn, c Ingester, maxSamples int, st *UDPServeStats) (int, error) {
	buf := make([]byte, 65536)
	n := 0
	var lastT Time
	for maxSamples == 0 || n < maxSamples {
		ln, _, err := conn.ReadFrom(buf)
		if err != nil {
			return n, err
		}
		t, frame, err := DecodeSample(buf[:ln])
		if err != nil {
			if st != nil {
				st.ShortDatagrams.Add(1)
			}
			continue
		}
		if ierr := c.Ingest(t, frame); ierr != nil {
			if st != nil {
				if t < lastT {
					st.TimestampRegressions.Add(1)
				} else {
					st.IngestErrors.Add(1)
				}
			}
		} else {
			lastT = t
			if st != nil {
				st.Samples.Add(1)
			}
		}
		n++
	}
	return n, nil
}

// ServeUDP ingests encapsulated samples from conn into the collector
// until the connection is closed or maxSamples arrive (0 = unbounded).
// It returns the number of samples ingested. Malformed datagrams and
// per-frame decode errors are counted by the collector, not fatal.
// Teardown after useful work returns (n, nil); use ServeUDPContext for
// cancellation and a typed teardown error.
func ServeUDP(conn net.PacketConn, c Ingester, maxSamples int) (int, error) {
	return ServeUDPObserved(conn, c, maxSamples, nil)
}

// ServeUDPObserved is ServeUDP with malformed-input accounting: when st
// is non-nil, every datagram is classified into one of its counters as
// it is processed, so a live deployment can watch its ingest health.
func ServeUDPObserved(conn net.PacketConn, c Ingester, maxSamples int, st *UDPServeStats) (int, error) {
	n, err := serveUDP(conn, c, maxSamples, st)
	if err != nil && n > 0 {
		return n, nil // closed after useful work
	}
	return n, err
}

// DefaultUDPBatch is the drain-cycle batch size ServeUDPBatched uses
// when batch <= 0: large enough to amortize the collector's per-call
// overhead under load, small enough that one cycle's buffers stay
// cache-resident.
const DefaultUDPBatch = 32

// ServeUDPBatched is ServeUDPObserved restructured for load: instead of
// one Ingest per datagram it blocks for the first datagram of a cycle,
// then drains whatever else the kernel already has queued — up to batch
// datagrams, bounded by a short read deadline — and hands the whole
// cycle to the collector in one IngestBatch call. Under a sparse stream
// every cycle holds one sample and behavior matches ServeUDPObserved;
// under a dense stream the per-sample syscall remains but every other
// per-sample cost (timestamp-monotonicity bookkeeping, collector call
// overhead, sample counting) is amortized across the cycle. Datagram
// buffers come from one preallocated ring reused every cycle, so the
// steady-state loop performs no per-datagram allocation.
//
// Accounting differences from the serial loop, both harmless to the
// collector's end state (its own monotonicity check would reject the
// same samples): a datagram whose timestamp regresses is counted as a
// TimestampRegression and filtered before the collector sees it, so
// batches stay monotone; and the regression watermark advances on
// enqueue rather than on collector acceptance, so a decode-error frame
// followed by an older-timestamped one classifies the latter as a
// regression where the serial loop would count an IngestError.
//
// Teardown follows ServeUDPObserved: a transport error after useful
// work returns (n, nil), with the pending cycle flushed first. There is
// no context variant — cancel by closing conn, exactly how
// ServeUDPContext's AfterFunc interrupts the serial loop.
func ServeUDPBatched(conn net.PacketConn, c Ingester, maxSamples, batch int, st *UDPServeStats) (int, error) {
	if batch <= 0 {
		batch = DefaultUDPBatch
	}
	// *net.UDPConn gets the ReadFromUDPAddrPort fast path: the generic
	// ReadFrom allocates a net.Addr per datagram.
	udp, _ := conn.(*net.UDPConn)
	readOne := func(buf []byte) (int, error) {
		if udp != nil {
			ln, _, err := udp.ReadFromUDPAddrPort(buf)
			return ln, err
		}
		ln, _, err := conn.ReadFrom(buf)
		return ln, err
	}

	const bufSize = 65536
	backing := make([]byte, batch*bufSize)
	bufs := make([][]byte, batch)
	for i := range bufs {
		bufs[i] = backing[i*bufSize : (i+1)*bufSize : (i+1)*bufSize]
	}
	ts := make([]Time, 0, batch)
	frames := make([][]byte, 0, batch)

	n := 0
	var lastT Time
	// enqueue reports whether the datagram counts toward maxSamples:
	// header-carrying datagrams do (even when later rejected), short
	// ones do not — matching the serial loop's accounting.
	enqueue := func(dgram []byte) bool {
		t, frame, err := DecodeSample(dgram)
		if err != nil {
			if st != nil {
				st.ShortDatagrams.Add(1)
			}
			return false
		}
		if t < lastT {
			if st != nil {
				st.TimestampRegressions.Add(1)
			}
			return true
		}
		lastT = t
		ts = append(ts, t)
		frames = append(frames, frame)
		return true
	}
	flush := func() {
		if len(ts) == 0 {
			return
		}
		failed := 0
		if err := c.IngestBatch(ts, frames); err != nil {
			var be *BatchError
			if errors.As(err, &be) {
				failed = be.Failed
			} else {
				failed = len(ts)
			}
			if st != nil {
				st.IngestErrors.Add(int64(failed))
			}
		}
		if st != nil {
			st.Samples.Add(int64(len(ts) - failed))
		}
		ts, frames = ts[:0], frames[:0]
	}

	for maxSamples == 0 || n < maxSamples {
		// Block for the cycle's first datagram.
		ln, err := readOne(bufs[0])
		if err != nil {
			flush()
			if n > 0 {
				return n, nil // closed after useful work
			}
			return n, err
		}
		if enqueue(bufs[0][:ln]) {
			n++
		}
		if batch > 1 && (maxSamples == 0 || n < maxSamples) {
			// Drain the kernel's backlog without blocking the cycle. An
			// already-expired deadline makes Read fail without attempting
			// the syscall at all, so this must be a short *future*
			// deadline — set once per cycle, not per read — and a timeout
			// means "drained".
			conn.SetReadDeadline(time.Now().Add(200 * time.Microsecond))
			for k := 1; k < batch && (maxSamples == 0 || n < maxSamples); k++ {
				ln, err := readOne(bufs[k])
				if err != nil {
					var ne net.Error
					if errors.As(err, &ne) && ne.Timeout() {
						break // drained
					}
					conn.SetReadDeadline(time.Time{})
					flush()
					if n > 0 {
						return n, nil
					}
					return n, err
				}
				if enqueue(bufs[k][:ln]) {
					n++
				}
			}
			conn.SetReadDeadline(time.Time{})
		}
		flush()
	}
	flush()
	return n, nil
}

// ServeUDPContext is the supervised form of ServeUDPObserved: ctx
// cancellation stops the loop promptly (the in-flight read is
// interrupted via a read deadline), and any early stop — cancellation
// or a closed connection — is reported as a *UDPCloseError matching
// ErrUDPServeClosed, never silently swallowed. Reaching the sample
// budget returns (n, nil).
func ServeUDPContext(ctx context.Context, conn net.PacketConn, c Ingester, maxSamples int, st *UDPServeStats) (int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	stop := context.AfterFunc(ctx, func() {
		// Interrupt the blocked ReadFrom; the loop exits with a timeout
		// error and the context error takes precedence below.
		conn.SetReadDeadline(time.Now())
	})
	defer stop()
	n, err := serveUDP(conn, c, maxSamples, st)
	if err == nil {
		return n, nil
	}
	if ctxErr := ctx.Err(); ctxErr != nil {
		err = ctxErr
	}
	return n, &UDPCloseError{Samples: n, Cause: err}
}

// NewFatTreeTestbed assembles the paper's 16-host, 20-switch fat-tree
// with oversubscribed mirroring, one collector per switch, and the SDN
// controller, all driven by a deterministic seed.
func NewFatTreeTestbed(seed int64) (*Testbed, error) {
	return lab.New(lab.Options{
		Net:    topo.FatTree16(units.Rate10G),
		Mirror: true,
		Seed:   seed,
	})
}

// NewSingleSwitchTestbed assembles an n-host single switch with a
// monitor port — the configuration of every §5 microbenchmark.
func NewSingleSwitchTestbed(hosts int, seed int64) (*Testbed, error) {
	return lab.New(lab.Options{
		Net:    topo.SingleSwitch("sw0", hosts, units.Rate10G, true),
		Mirror: true,
		Seed:   seed,
	})
}

// NewTestbedWithRing is NewSingleSwitchTestbed with vantage-point sample
// rings of ringPackets frames enabled on every collector (§6.1).
func NewTestbedWithRing(hosts int, seed int64, ringPackets int) (*Testbed, error) {
	return lab.New(lab.Options{
		Net:             topo.SingleSwitch("sw0", hosts, units.Rate10G, true),
		Mirror:          true,
		Seed:            seed,
		CollectorConfig: core.Config{RingPackets: ringPackets},
	})
}

// AttachPlanckTE starts the traffic-engineering application (§6.2) on a
// testbed: greedy rerouting over shadow-MAC alternate paths, actuated by
// spoofed ARP, driven by collector congestion events.
func AttachPlanckTE(t *Testbed) *TrafficEngineer {
	return te.NewPlanckTE(t.Ctrl, te.DefaultPlanckTEConfig())
}

// HostIP returns the address of testbed host h (hosts are numbered from
// zero, contiguous within fat-tree pods).
func HostIP(h int) [4]byte { return topo.HostIP(h) }
