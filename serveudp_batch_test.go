package planck

import (
	"net"
	"runtime"
	"testing"
	"time"

	packetpkg "planck/internal/packet"
)

// memPacketConn is an in-memory PacketConn serving pre-built datagrams
// in order, with a zero-allocation read path — the harness for proving
// the batched serve loop's steady state allocates nothing per datagram.
type memPacketConn struct {
	dgrams   [][]byte
	next     int
	deadline time.Time
}

type memTimeoutError struct{}

func (memTimeoutError) Error() string   { return "mem conn: timeout" }
func (memTimeoutError) Timeout() bool   { return true }
func (memTimeoutError) Temporary() bool { return true }

var errMemTimeout net.Error = memTimeoutError{}

func (c *memPacketConn) ReadFrom(p []byte) (int, net.Addr, error) {
	if c.next >= len(c.dgrams) {
		return 0, nil, errMemTimeout
	}
	n := copy(p, c.dgrams[c.next])
	c.next++
	return n, nil, nil
}

func (c *memPacketConn) WriteTo(p []byte, addr net.Addr) (int, error) { return len(p), nil }
func (c *memPacketConn) Close() error                                 { return nil }
func (c *memPacketConn) LocalAddr() net.Addr                          { return nil }
func (c *memPacketConn) SetDeadline(t time.Time) error                { c.deadline = t; return nil }
func (c *memPacketConn) SetReadDeadline(t time.Time) error            { c.deadline = t; return nil }
func (c *memPacketConn) SetWriteDeadline(t time.Time) error           { return nil }

func sampleDgram(tm Time, seq uint32) []byte {
	frame := packetpkg.BuildTCP(nil, packetpkg.TCPSpec{
		SrcMAC: packetpkg.MAC{2, 0, 0, 0, 0, 1}, DstMAC: packetpkg.MAC{2, 0, 0, 0, 0, 2},
		SrcIP: packetpkg.IPv4{10, 0, 0, 1}, DstIP: packetpkg.IPv4{10, 0, 0, 2},
		SrcPort: 1000, DstPort: 2000, Seq: seq, Flags: packetpkg.TCPAck, PayloadLen: 100,
	})
	return EncodeSample(nil, tm, frame)
}

// TestServeUDPBatchedSteadyStateAllocs runs 4096 datagrams through the
// batched serve loop over the in-memory conn and demands the total
// allocation count stays at setup scale: the buffer ring, the batch
// slices, and the collector's first flow record — nothing per datagram.
func TestServeUDPBatchedSteadyStateAllocs(t *testing.T) {
	const total = 4096
	dgrams := make([][]byte, total)
	var tm Time
	var seq uint32
	for i := range dgrams {
		dgrams[i] = sampleDgram(tm, seq)
		tm = tm.Add(Duration(5000))
		seq += 1460
	}
	conn := &memPacketConn{dgrams: dgrams}
	col := NewCollector(CollectorConfig{SwitchName: "mem", LinkRate: 10 * Gbps})
	var st UDPServeStats

	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	n, err := ServeUDPBatched(conn, col, total, 32, &st)
	runtime.ReadMemStats(&m1)
	if err != nil || n != total {
		t.Fatalf("ServeUDPBatched = (%d, %v), want (%d, nil)", n, err, total)
	}
	if got := st.Samples.Load(); got != total {
		t.Fatalf("Samples = %d, want %d", got, total)
	}
	mallocs := m1.Mallocs - m0.Mallocs
	if mallocs > 64 {
		t.Fatalf("%d allocations over %d datagrams (%.3f/datagram); batched loop must not allocate per datagram",
			mallocs, total, float64(mallocs)/total)
	}
	if st.ShortDatagrams.Load()+st.TimestampRegressions.Load()+st.IngestErrors.Load() != 0 {
		t.Fatalf("clean stream misclassified: %+v", &st)
	}
	if cs := col.Stats(); cs.Flows != 1 || cs.Samples != total {
		t.Fatalf("collector stats %+v", cs)
	}
}

// TestServeUDPBatchedAccounting feeds the batched loop the malformed
// mix the serial accounting test uses and checks each datagram lands in
// the right counter, and that the collector's end state matches a
// serial collector fed the same stream.
func TestServeUDPBatchedAccounting(t *testing.T) {
	dgrams := [][]byte{
		sampleDgram(Time(1000000), 0),                        // good
		sampleDgram(Time(2000000), 1460),                     // good
		{1, 2, 3},                                            // short datagram
		sampleDgram(Time(500000), 2920),                      // timestamp regression
		EncodeSample(nil, Time(3000000), []byte{0xde, 0xad}), // unparseable frame
		sampleDgram(Time(4000000), 2920),                     // good
		sampleDgram(Time(5000000), 4380),                     // good
		sampleDgram(Time(6000000), 5840),                     // good
	}
	// The short datagram does not count toward the budget: 8 datagrams
	// are 7 countable reads, exactly like the serial loop.
	conn := &memPacketConn{dgrams: dgrams}
	col := NewCollector(CollectorConfig{SwitchName: "batched", LinkRate: 10 * Gbps})
	var st UDPServeStats
	n, err := ServeUDPBatched(conn, col, 7, 4, &st)
	if err != nil || n != 7 {
		t.Fatalf("ServeUDPBatched = (%d, %v), want (7, nil)", n, err)
	}
	if got := st.Samples.Load(); got != 5 {
		t.Fatalf("Samples = %d, want 5", got)
	}
	if got := st.ShortDatagrams.Load(); got != 1 {
		t.Fatalf("ShortDatagrams = %d, want 1", got)
	}
	if got := st.TimestampRegressions.Load(); got != 1 {
		t.Fatalf("TimestampRegressions = %d, want 1", got)
	}
	if got := st.IngestErrors.Load(); got != 1 {
		t.Fatalf("IngestErrors = %d, want 1", got)
	}

	serial := NewCollector(CollectorConfig{SwitchName: "serial", LinkRate: 10 * Gbps})
	for _, d := range dgrams {
		if tm, frame, derr := DecodeSample(d); derr == nil {
			_ = serial.Ingest(tm, frame)
		}
	}
	if bs, ss := col.Stats(), serial.Stats(); bs.Flows != ss.Flows ||
		bs.RateUpdates != ss.RateUpdates || bs.DecodeErrors != ss.DecodeErrors {
		t.Fatalf("collector end state diverged\n batched: %+v\n serial:  %+v", bs, ss)
	}
}

// TestServeUDPBatchedLoopback runs the batched loop against real
// loopback UDP — kernel-queue drain cycles, genuine read deadlines —
// and checks the flow reconstructs.
func TestServeUDPBatchedLoopback(t *testing.T) {
	lc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	col := NewCollector(CollectorConfig{SwitchName: "live", LinkRate: 10 * Gbps})
	done := make(chan int, 1)
	const total = 500
	// No standing deadline: the batched loop manages the read deadline
	// itself (and clears it each cycle); the timeout below closes the
	// conn if kernel drops leave the loop short of its budget.
	go func() {
		n, _ := ServeUDPBatched(lc, col, total, 0, nil) // 0 = DefaultUDPBatch
		done <- n
	}()

	sender, err := net.Dial("udp", lc.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()
	var tm Time
	var seq uint32
	for i := 0; i < total; i++ {
		if _, err := sender.Write(sampleDgram(tm, seq)); err != nil {
			t.Fatal(err)
		}
		seq += 1460
		tm = tm.Add(Duration(5000))
	}
	var got int
	select {
	case got = <-done:
	case <-time.After(2 * time.Second):
		lc.Close() // unblock the loop; it flushes and returns (n, nil)
		got = <-done
	}
	if got < total/2 { // UDP over loopback is lossy-in-principle
		t.Fatalf("ingested %d of %d samples", got, total)
	}
	st := col.Stats()
	if st.Flows != 1 {
		t.Fatalf("flows %d", st.Flows)
	}
	key := packetpkg.FlowKey{
		SrcIP: packetpkg.IPv4{10, 0, 0, 1}, DstIP: packetpkg.IPv4{10, 0, 0, 2},
		SrcPort: 1000, DstPort: 2000, Proto: packetpkg.IPProtocolTCP,
	}
	if _, ok := col.FlowRate(key); !ok {
		t.Fatal("live flow not estimated")
	}
}
