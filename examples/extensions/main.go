// Extensions: the paper's future-work items, live — retransmission-rate
// inference from duplicate sequence numbers (§3.2.2), throughput
// estimation for UDP streams carrying application packet counters
// (§3.2.2), and missing-packet inference over a sampled vantage-point
// trace (§6.1).
package main

import (
	"fmt"
	"log"

	"planck"
	"planck/internal/core"
	"planck/internal/lab"
	"planck/internal/tcpsim"
	"planck/internal/topo"
	"planck/internal/units"
)

func main() {
	// A single-switch testbed with retransmission tracking, UDP sequence
	// parsing, and a vantage ring enabled on the collector.
	net := topo.SingleSwitch("sw0", 6, 10*planck.Gbps, true)
	tb, err := lab.New(lab.Options{
		Net:    net,
		Mirror: true,
		Seed:   7,
		CollectorConfig: core.Config{
			TrackRetransmits: true,
			UDPSeqEnabled:    true,
			RingPackets:      8192,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Two TCP flows to the SAME destination: the shared port drops
	// packets, so both flows retransmit.
	c1, _ := tb.Hosts[0].StartFlow(0, planck.HostIP(2), 5001, 1<<30, 1)
	c2, _ := tb.Hosts[1].StartFlow(0, planck.HostIP(2), 5002, 1<<30, 2)

	// One UDP stream with an application-level packet counter.
	if _, err := tb.Hosts[3].StartCBR(0, planck.HostIP(4), 7000, 1000, 2*planck.Gbps, 3); err != nil {
		log.Fatal(err)
	}

	tb.Run(150 * units.Millisecond)
	col := tb.Collector(0)

	fmt.Println("== retransmission-rate inference (§3.2.2) ==")
	for _, c := range []*tcpsim.Conn{c1, c2} {
		fs := col.Flow(c.FlowKey())
		if fs == nil {
			continue
		}
		rr, ok := fs.RetransmitRate()
		fmt.Printf("  %-45s inferred rtx rate %v (ok=%v); sender actually retransmitted %d segments\n",
			c.FlowKey(), rr, ok, c.Retransmits)
	}

	fmt.Println("\n== UDP packet-counter estimation (§3.2.2) ==")
	col.Flows(func(fs *core.FlowState) {
		if fs.Pkt != nil {
			r, _ := fs.Rate()
			fmt.Printf("  %-45s estimated %v (true offered: 2 Gbps of payload)\n", fs.Key, r)
		}
	})

	fmt.Println("\n== vantage-point gap inference (§6.1) ==")
	reports, err := core.AnalyzeRing(col.RingBuffer())
	if err != nil {
		log.Fatal(err)
	}
	if len(reports) > 4 {
		reports = reports[:4]
	}
	fmt.Print(core.FormatReports(reports))
}
