// Traffic engineering: run the paper's stride(8) workload on the 16-host
// fat-tree with and without PlanckTE, and compare average flow
// throughput (the Figure 14/17 methodology in miniature).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"planck"
	"planck/internal/units"
	"planck/internal/workload"
)

func run(withTE bool, seed int64) {
	tb, err := planck.NewFatTreeTestbed(seed)
	if err != nil {
		log.Fatal(err)
	}
	label := "Static (PAST only)"
	var te *planck.TrafficEngineer
	if withTE {
		te = planck.AttachPlanckTE(tb)
		label = "PlanckTE"
	}

	flows := workload.Stride(16, 8, 50<<20) // 16 x 50 MiB, all cross-core
	res, err := workload.Run(tb, flows, workload.RunConfig{
		Timeout: 10 * units.Duration(units.Second),
	})
	if err != nil {
		log.Fatal(err)
	}
	_ = rand.Int
	fmt.Printf("%-20s completed %d/%d  avg %.2f Gbps  p50 %.2f Gbps",
		label, res.Completed, res.Total,
		res.AvgGoodput().Gigabits(),
		units.Rate(res.Goodputs.Median()).Gigabits())
	if te != nil {
		fmt.Printf("  (%d reroutes from %d congestion events)", te.Reroutes, te.EventsHandled)
	}
	fmt.Println()
}

func main() {
	fmt.Println("stride(8), 50 MiB flows, 16-host fat-tree:")
	run(false, 7)
	run(true, 7)
	fmt.Println("\nPlanckTE detects the PAST collisions from mirror samples and")
	fmt.Println("repoints flows at shadow-MAC alternate paths within milliseconds.")
}
