// Congestion control loop (the Figure 15 scenario): a steady flow is
// joined by a colliding one; Planck detects the congestion from mirror
// samples and the controller reroutes via a spoofed ARP within
// milliseconds. The example prints the throughput timeline around the
// event.
package main

import (
	"fmt"
	"log"

	"planck"
	"planck/internal/core"
	"planck/internal/sim"
	"planck/internal/units"
)

func main() {
	tb, err := planck.NewFatTreeTestbed(17)
	if err != nil {
		log.Fatal(err)
	}
	// Pin both destinations to the same PAST tree so the flows are
	// guaranteed to collide (the random assignment usually separates
	// them on its own).
	tb.Ctrl.InstallRoutes(make([]int, 16), true)
	planck.AttachPlanckTE(tb)

	var events int
	tb.Ctrl.Subscribe(func(ev core.CongestionEvent) { events++ })

	c1, err := tb.Hosts[0].StartFlow(0, planck.HostIP(8), 5001, 1<<40, 1)
	if err != nil {
		log.Fatal(err)
	}
	tb.Run(30 * units.Millisecond) // flow 1 reaches steady state

	start2 := tb.Eng.Now()
	c2, err := tb.Hosts[4].StartFlow(start2, planck.HostIP(9), 5002, 1<<40, 2)
	if err != nil {
		log.Fatal(err)
	}

	var last1, last2 int64 = c1.BytesAcked(), c2.BytesAcked()
	bucket := units.Duration(1 * units.Millisecond)
	fmt.Println("  t(ms)  flow1(Gbps)  flow2(Gbps)")
	sim.NewTicker(tb.Eng, bucket, func(now units.Time) {
		d1, d2 := c1.BytesAcked()-last1, c2.BytesAcked()-last2
		last1, last2 = c1.BytesAcked(), c2.BytesAcked()
		fmt.Printf("  %5.1f  %11.2f  %11.2f\n",
			now.Sub(start2).Milliseconds(),
			units.RateOf(d1, bucket).Gigabits(),
			units.RateOf(d2, bucket).Gigabits())
	})
	tb.Eng.RunUntil(start2.Add(units.Duration(15 * units.Millisecond)))

	fmt.Printf("\n%d congestion notifications; %d ARP reroutes issued\n",
		events, tb.Ctrl.ARPReroutes)
	fmt.Printf("flow 1 timeouts: %d (the loop closed before the buffer overflowed)\n", c1.Timeouts)
}
