// Vantage-point monitoring (§6.1): capture the sample stream of a switch
// into the collector's ring, dump it as a tcpdump-compatible pcap file,
// then replay that file through a fresh standalone collector — the same
// pipeline a hardware deployment would run on a real capture.
package main

import (
	"fmt"
	"log"
	"os"

	"planck"
	"planck/internal/units"
)

func main() {
	// The ring retains the last N sampled frames per collector.
	tb, err := planck.NewTestbedWithRing(4, 99, 4096)
	if err != nil {
		log.Fatal(err)
	}

	if _, err := tb.Hosts[0].StartFlow(0, planck.HostIP(1), 5001, 8<<20, 1); err != nil {
		log.Fatal(err)
	}
	if _, err := tb.Hosts[2].StartFlow(0, planck.HostIP(3), 5002, 8<<20, 2); err != nil {
		log.Fatal(err)
	}
	tb.Run(50 * units.Millisecond)

	const path = "vantage.pcap"
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := tb.Collector(0).DumpPcap(f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	info, _ := os.Stat(path)
	fmt.Printf("dumped %d retained samples to %s (%d bytes)\n",
		tb.Collector(0).RingBuffer().Len(), path, info.Size())

	// Replay through a standalone collector, as planck-collector does.
	in, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer in.Close()
	col := planck.NewCollector(planck.CollectorConfig{
		SwitchName: "replay",
		LinkRate:   10 * planck.Gbps,
	})
	n, err := planck.ReplayPcap(in, col)
	if err != nil {
		log.Fatal(err)
	}
	st := col.Stats()
	fmt.Printf("replayed %d frames: %d flows reconstructed, %d rate updates\n",
		n, st.Flows, st.RateUpdates)
	_ = os.Remove(path)
}
