// Quickstart: build a 4-host single-switch testbed with an
// oversubscribed monitor port, saturate three TCP flows through it, and
// watch the collector estimate their rates from the mirror samples.
package main

import (
	"fmt"
	"log"

	"planck"
	"planck/internal/sim"
	"planck/internal/units"
)

func main() {
	tb, err := planck.NewSingleSwitchTestbed(6, 42)
	if err != nil {
		log.Fatal(err)
	}

	// Three saturated flows to unique destinations: 3x10G of traffic
	// mirrored into one 10G monitor port, so the collector sees a
	// ~1-in-3 sample of every flow — and still estimates their rates
	// exactly, thanks to TCP sequence numbers.
	var keys []struct {
		name string
		key  interface{ String() string }
	}
	for i := 0; i < 3; i++ {
		conn, err := tb.Hosts[i].StartFlow(0, planck.HostIP(i+3), 5001, 1<<30, int32(i))
		if err != nil {
			log.Fatal(err)
		}
		k := conn.FlowKey()
		keys = append(keys, struct {
			name string
			key  interface{ String() string }
		}{fmt.Sprintf("h%d->h%d", i, i+3), k})

		// Print the collector's estimate of this flow every 20 ms.
		sim.NewTicker(tb.Eng, units.Duration(20*units.Millisecond), func(now units.Time) {
			if rate, ok := tb.Collector(0).FlowRate(k); ok {
				fmt.Printf("t=%-8v %s  estimated %v\n", now, k, rate)
			}
		})
	}

	tb.Run(100 * units.Millisecond)

	st := tb.Collector(0).Stats()
	fmt.Printf("\ncollector saw %d samples across %d flows (%d rate updates)\n",
		st.Samples, st.Flows, st.RateUpdates)
	sw := tb.Switches[0]
	total := sw.MirrorQueued.Packets + sw.MirrorDropped.Packets
	fmt.Printf("mirror sampled %d of %d packets (%.0f%%): the drops ARE the sampling\n",
		sw.MirrorQueued.Packets, total,
		100*float64(sw.MirrorQueued.Packets)/float64(total))
}
