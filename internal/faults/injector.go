package faults

import (
	"math/rand"

	"planck/internal/core"
	"planck/internal/obs"
	"planck/internal/units"
)

// Metrics counts the faults an Injector actually injected, so a chaos
// run can assert the schedule fired and dashboards can correlate
// estimate excursions with injected faults.
type Metrics struct {
	Lost       obs.Counter // frames dropped by a loss rule
	Corrupted  obs.Counter // frames with a flipped byte
	Duplicated obs.Counter // frames delivered twice
	Reordered  obs.Counter // frames held and released out of order
	Skewed     obs.Counter // frames delivered with a shifted timestamp
}

// Register exposes the injector counters on reg under a shared label
// set (e.g. obs.Label("switch", name)).
func (m *Metrics) Register(reg *obs.Registry, labels ...string) {
	reg.MustRegister("planck_fault_lost_total", &m.Lost, labels...)
	reg.MustRegister("planck_fault_corrupted_total", &m.Corrupted, labels...)
	reg.MustRegister("planck_fault_duplicated_total", &m.Duplicated, labels...)
	reg.MustRegister("planck_fault_reordered_total", &m.Reordered, labels...)
	reg.MustRegister("planck_fault_skewed_total", &m.Skewed, labels...)
}

// Injector actuates the mirror-path faults of a Schedule on a frame
// stream. It is deterministic for a fixed (schedule, seed, stream)
// triple and is not safe for concurrent use — each collector feed gets
// its own Injector, matching the one-goroutine-per-feed ingest model.
type Injector struct {
	sched   *Schedule
	rng     *rand.Rand
	metrics *Metrics

	// One-deep reorder hold: a held frame is released immediately after
	// its successor, carrying its original (earlier) timestamp, so the
	// collector sees a genuine timestamp regression.
	heldFrame []byte
	heldAt    units.Time
	holding   bool
}

// NewInjector builds an injector over sched with its own seeded PRNG.
// Metrics may be shared across injectors; pass nil for no counting.
func NewInjector(sched *Schedule, seed int64, metrics *Metrics) *Injector {
	if metrics == nil {
		metrics = &Metrics{}
	}
	return &Injector{sched: sched, rng: rand.New(rand.NewSource(seed)), metrics: metrics}
}

// Metrics returns the injector's fault counters.
func (in *Injector) Metrics() *Metrics { return in.metrics }

// Schedule returns the fault schedule the injector actuates, so the
// component hosting the injector can also consult the control-plane
// rules (stall, crash, partition, chandelay) the injector itself does
// not act on.
func (in *Injector) Schedule() *Schedule { return in.sched }

// Apply runs one mirrored frame through the fault schedule and invokes
// deliver zero or more times with the frames that survive. current is
// true only for the caller's own frame at its (possibly skewed)
// timestamp; duplicates and released held frames pass current=false so
// the caller can skip per-packet latency accounting for them. Frames
// passed to deliver with current=false are injector-owned copies and
// remain valid after Apply returns; the current frame aliases the
// caller's buffer as usual.
func (in *Injector) Apply(t units.Time, frame []byte, deliver func(t units.Time, frame []byte, current bool)) {
	if skew := in.sched.Skew(t); skew != 0 {
		t = t.Add(skew)
		in.metrics.Skewed.Inc()
	}

	if in.roll(KindLoss, t) {
		in.metrics.Lost.Inc()
		in.releaseHeld(deliver)
		return
	}

	if in.roll(KindCorrupt, t) && len(frame) > 0 {
		// Flip one random byte of a copy — the caller's buffer may be a
		// live wire buffer it still owns.
		cp := append([]byte(nil), frame...)
		cp[in.rng.Intn(len(cp))] ^= 1 << uint(in.rng.Intn(8))
		frame = cp
		in.metrics.Corrupted.Inc()
	}

	if !in.holding && in.roll(KindReorder, t) {
		in.heldFrame = append(in.heldFrame[:0], frame...)
		in.heldAt = t
		in.holding = true
		in.metrics.Reordered.Inc()
		return
	}

	deliver(t, frame, true)
	if in.roll(KindDup, t) {
		in.metrics.Duplicated.Inc()
		deliver(t, append([]byte(nil), frame...), false)
	}
	in.releaseHeld(deliver)
}

// Flush releases a held reordered frame, if any. Callers invoke it at
// stream end (or batch boundaries) so a reorder on the last frame does
// not swallow it.
func (in *Injector) Flush(deliver func(t units.Time, frame []byte, current bool)) {
	in.releaseHeld(deliver)
}

func (in *Injector) releaseHeld(deliver func(t units.Time, frame []byte, current bool)) {
	if !in.holding {
		return
	}
	in.holding = false
	deliver(in.heldAt, append([]byte(nil), in.heldFrame...), false)
}

func (in *Injector) roll(k Kind, t units.Time) bool {
	p := in.sched.Prob(k, t)
	if p <= 0 {
		return false
	}
	// Draw even for p==1 so toggling a rule between 0.999 and 1 does
	// not shift the PRNG sequence for later frames.
	return in.rng.Float64() < p
}

// Ingester matches planck.Ingester structurally so the wrapper can sit
// in front of either pipeline without importing the facade.
type Ingester interface {
	Ingest(t units.Time, frame []byte) error
	IngestBatch(ts []units.Time, frames [][]byte) error
}

// FaultyIngester interposes an Injector in front of any Ingester —
// the seam used by planck-collector and live deployments, where the
// frame stream arrives via ServeUDP rather than the lab's OnFrame tap.
type FaultyIngester struct {
	next Ingester
	in   *Injector
}

// Wrap interposes inj in front of next.
func Wrap(next Ingester, inj *Injector) *FaultyIngester {
	return &FaultyIngester{next: next, in: inj}
}

// Injector returns the wrapped injector (for metrics access).
func (f *FaultyIngester) Injector() *Injector { return f.in }

// Ingest applies the fault schedule and forwards surviving frames. It
// returns the first ingest error from the underlying pipeline.
func (f *FaultyIngester) Ingest(t units.Time, frame []byte) error {
	var first error
	f.in.Apply(t, frame, func(at units.Time, fr []byte, _ bool) {
		if err := f.next.Ingest(at, fr); err != nil && first == nil {
			first = err
		}
	})
	return first
}

// IngestBatch applies the fault schedule frame by frame — injected
// skew, reordering, and duplication change each frame's delivery, so a
// faulted batch cannot be forwarded wholesale. Per-frame failures are
// aggregated into a *core.BatchError, matching the underlying
// pipelines' batch contract.
func (f *FaultyIngester) IngestBatch(ts []units.Time, frames [][]byte) error {
	n := len(ts)
	if len(frames) < n {
		n = len(frames)
	}
	var be *core.BatchError
	for i := 0; i < n; i++ {
		if err := f.Ingest(ts[i], frames[i]); err != nil {
			if be == nil {
				be = &core.BatchError{Index: i, Err: err}
			}
			be.Failed++
		}
	}
	if be != nil {
		return be
	}
	return nil
}
