package faults

import (
	"reflect"
	"strings"
	"testing"

	"planck/internal/units"
)

func ms(n int64) units.Time { return units.Time(n) * units.Time(units.Millisecond) }

func TestParseSpec(t *testing.T) {
	s, err := ParseSpec("loss:0.5@20ms-40ms,crash@61ms,partition@80ms-95ms,skew:200us@10ms-,chandelay:5ms,dup")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Prob(KindLoss, ms(19)); got != 0 {
		t.Errorf("loss prob before window = %v, want 0", got)
	}
	if got := s.Prob(KindLoss, ms(20)); got != 0.5 {
		t.Errorf("loss prob at window start = %v, want 0.5", got)
	}
	if got := s.Prob(KindLoss, ms(40)); got != 0 {
		t.Errorf("loss prob at exclusive end = %v, want 0", got)
	}
	if got := s.CrashTimes(); len(got) != 1 || got[0] != ms(61) {
		t.Errorf("crash times = %v, want [61ms]", got)
	}
	if s.PartitionActive(ms(79)) || !s.PartitionActive(ms(80)) || s.PartitionActive(ms(95)) {
		t.Error("partition window boundaries wrong")
	}
	if got := s.Skew(ms(9)); got != 0 {
		t.Errorf("skew before window = %v, want 0", got)
	}
	if got := s.Skew(ms(1000)); got != 200*units.Microsecond {
		t.Errorf("open-ended skew = %v, want 200µs", got)
	}
	if got := s.ChannelDelay(0); got != 5*units.Millisecond {
		t.Errorf("always-on chandelay = %v, want 5ms", got)
	}
	if got := s.Prob(KindDup, ms(500)); got != 1 {
		t.Errorf("bare dup prob = %v, want 1", got)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"bogus",          // unknown kind
		"loss:1.5",       // probability out of range
		"loss:nope",      // unparseable probability
		"skew",           // duration kind without parameter
		"skew:zzz",       // unparseable duration
		"crash",          // crash without @time
		"stall:3",        // parameter on a parameterless kind
		"loss@40ms-20ms", // empty window
		"loss@-5ms-10ms", // negative start
		"loss@x-10ms",    // bad start
		"loss@10ms-x",    // bad end
		"loss,,dup",      // empty clause
		"loss:NaN",       // NaN probability
	} {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) = nil error, want failure", spec)
		}
	}
	if s, err := ParseSpec("  "); err != nil || !s.Empty() {
		t.Errorf("blank spec: got (%v, %v), want empty schedule", s, err)
	}
}

func TestScheduleStringRoundTrip(t *testing.T) {
	for _, spec := range []string{
		"",
		"loss:1@20ms-40ms",
		"loss:0.05,skew:200µs@10ms-",
		"crash@61ms,partition@80ms-95ms,chandelay:5ms@80ms-95ms",
		"corrupt:0.25,dup:0.1@1ms-2ms,reorder:0.5,stall@30ms-35ms",
		"skew:-200µs@5ms-",
	} {
		s1, err := ParseSpec(spec)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", spec, err)
		}
		s2, err := ParseSpec(s1.String())
		if err != nil {
			t.Fatalf("reparse of %q → %q: %v", spec, s1.String(), err)
		}
		if !reflect.DeepEqual(s1.Rules(), s2.Rules()) {
			t.Errorf("round trip %q → %q changed rules:\n%+v\n%+v", spec, s1.String(), s1.Rules(), s2.Rules())
		}
	}
}

func TestInjectorDeterminism(t *testing.T) {
	sched, err := ParseSpec("loss:0.3,corrupt:0.2,dup:0.2,reorder:0.2,skew:100µs@5ms-")
	if err != nil {
		t.Fatal(err)
	}
	run := func(seed int64) (out []string) {
		in := NewInjector(sched, seed, nil)
		for i := 0; i < 500; i++ {
			frame := []byte{byte(i), byte(i >> 8), 0xAA, 0xBB}
			in.Apply(ms(int64(i)), frame, func(at units.Time, fr []byte, cur bool) {
				out = append(out, at.String()+"/"+string(fr)+"/"+map[bool]string{true: "c", false: "x"}[cur])
			})
		}
		in.Flush(func(at units.Time, fr []byte, cur bool) {
			out = append(out, "flush:"+string(fr))
		})
		return out
	}
	a, b := run(42), run(42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different fault streams")
	}
	c := run(43)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical fault streams (suspicious for p≈0.3 faults over 500 frames)")
	}
}

func TestInjectorLossDropsEverything(t *testing.T) {
	sched, _ := ParseSpec("loss:1@10ms-20ms")
	in := NewInjector(sched, 1, nil)
	delivered := 0
	for i := int64(0); i < 30; i++ {
		in.Apply(ms(i), []byte{1}, func(units.Time, []byte, bool) { delivered++ })
	}
	if delivered != 20 { // 0–9ms and 20–29ms survive
		t.Fatalf("delivered %d frames, want 20", delivered)
	}
	if got := in.Metrics().Lost.Value(); got != 10 {
		t.Fatalf("lost counter = %d, want 10", got)
	}
}

func TestInjectorReorderSwapsAndRegresses(t *testing.T) {
	sched := NewSchedule(Rule{Kind: KindReorder, From: 0, To: Forever, Prob: 1})
	in := NewInjector(sched, 7, nil)
	type d struct {
		at  units.Time
		b   byte
		cur bool
	}
	var got []d
	feed := func(i int64) {
		in.Apply(ms(i), []byte{byte(i)}, func(at units.Time, fr []byte, cur bool) {
			got = append(got, d{at, fr[0], cur})
		})
	}
	feed(1) // held
	feed(2) // held frame 1 already in hold → frame 2 delivered, then 1 released
	if len(got) != 2 {
		t.Fatalf("got %d deliveries, want 2 (current then held)", len(got))
	}
	if got[0].b != 2 || !got[0].cur {
		t.Errorf("first delivery = %+v, want current frame 2", got[0])
	}
	if got[1].b != 1 || got[1].cur || got[1].at != ms(1) {
		t.Errorf("second delivery = %+v, want held frame 1 at its original 1ms", got[1])
	}
	if got[1].at.After(got[0].at) {
		t.Error("held frame should carry an earlier timestamp (regression)")
	}
	// Only frame 1 was held: the hold slot was occupied when 2 arrived.
	if n := in.Metrics().Reordered.Value(); n != 1 {
		t.Errorf("reordered counter = %d, want 1", n)
	}
}

func TestInjectorDupDeliversCopy(t *testing.T) {
	sched := NewSchedule(Rule{Kind: KindDup, From: 0, To: Forever, Prob: 1})
	in := NewInjector(sched, 3, nil)
	buf := []byte{0x11, 0x22}
	var frames [][]byte
	var currents []bool
	in.Apply(ms(1), buf, func(_ units.Time, fr []byte, cur bool) {
		frames = append(frames, fr)
		currents = append(currents, cur)
	})
	if len(frames) != 2 {
		t.Fatalf("dup delivered %d frames, want 2", len(frames))
	}
	if !currents[0] || currents[1] {
		t.Fatalf("current flags = %v, want [true false]", currents)
	}
	buf[0] = 0xFF // caller reuses its buffer
	if frames[1][0] != 0x11 {
		t.Fatal("duplicate frame aliases the caller's buffer; must be a copy")
	}
}

func TestInjectorCorruptFlipsOneBit(t *testing.T) {
	sched := NewSchedule(Rule{Kind: KindCorrupt, From: 0, To: Forever, Prob: 1})
	in := NewInjector(sched, 9, nil)
	orig := []byte{0, 0, 0, 0}
	in.Apply(ms(1), orig, func(_ units.Time, fr []byte, _ bool) {
		diff := 0
		for i := range fr {
			for b := uint(0); b < 8; b++ {
				if (fr[i]^orig[i])>>b&1 == 1 {
					diff++
				}
			}
		}
		if diff != 1 {
			t.Fatalf("corrupt flipped %d bits, want exactly 1", diff)
		}
	})
	for i, v := range orig {
		if v != 0 {
			t.Fatalf("corrupt mutated the caller's buffer at byte %d", i)
		}
	}
	if got := in.Metrics().Corrupted.Value(); got != 1 {
		t.Fatalf("corrupted counter = %d, want 1", got)
	}
}

func FuzzParseSpec(f *testing.F) {
	for _, seed := range []string{
		"loss:1@20ms-40ms,crash@61ms,partition@80ms-95ms",
		"skew:-200us@5ms-,chandelay:5ms",
		"corrupt:0.25,dup,reorder:0.5,stall@30ms-35ms",
		"loss", "crash@0s", "@", ":", "loss:", "loss@", "loss@1ms-",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		s, err := ParseSpec(spec)
		if err != nil {
			return
		}
		// Any accepted spec must round-trip through String.
		rendered := s.String()
		s2, err := ParseSpec(rendered)
		if err != nil {
			t.Fatalf("ParseSpec(%q) ok but reparse of String() %q failed: %v", spec, rendered, err)
		}
		if !reflect.DeepEqual(s.Rules(), s2.Rules()) {
			t.Fatalf("round trip changed rules for %q → %q", spec, rendered)
		}
		// Query helpers must not panic anywhere in time.
		for _, at := range []units.Time{0, ms(1), ms(1000), Forever - 1} {
			for k := Kind(0); k < numKinds; k++ {
				_ = s.Prob(k, at)
			}
			_ = s.Skew(at)
			_ = s.ChannelDelay(at)
			_ = s.StallActive(at)
			_ = s.PartitionActive(at)
		}
		_ = s.CrashTimes()
		// An injector over any accepted schedule must terminate and never
		// deliver more than 2 frames per input (current + one of dup/held).
		in := NewInjector(s, 1, nil)
		for i := int64(0); i < 64; i++ {
			n := 0
			in.Apply(ms(i), []byte(strings.Repeat("x", int(i%7))), func(units.Time, []byte, bool) { n++ })
			if n > 3 {
				t.Fatalf("Apply delivered %d frames for one input", n)
			}
		}
	})
}
