// Package faults is a seeded, deterministic fault-injection layer for
// the Planck reproduction. It models the failures a production
// deployment of the paper's architecture (§3, §6) actually meets:
// mirror-path packet loss, corruption, duplication and reordering;
// collector stalls and crashes; controller↔collector channel
// partitions and delays; and clock skew between the switch and the
// collector host.
//
// A fault run is described by a Schedule — an ordered set of Rules,
// each naming a fault Kind, an activation window in virtual time, and
// a parameter (probability or duration). Schedules are built either
// programmatically or from a compact spec string (ParseSpec) so that
// tests, planck-sim, and planck-collector can all share one grammar:
//
//	loss:0.5@20ms-40ms,crash@61ms,partition@80ms-95ms
//
// The Schedule is pure bookkeeping: it answers "is fault K active at
// time t, and how hard?". The mirror-path faults are actuated by
// Injector (injector.go); the control-plane faults (stall, crash,
// partition, chandelay) are actuated by whoever owns the affected
// component — the lab's CollectorNode and Supervisor, or a live
// deployment's supervision loop.
//
// Determinism: all randomness comes from a caller-seeded PRNG inside
// the Injector; the Schedule itself is deterministic. Two runs with
// the same seed, spec, and input stream inject byte-identical faults.
package faults

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"planck/internal/units"
)

// Kind enumerates the fault classes.
type Kind uint8

const (
	// KindLoss drops mirrored frames with probability Prob.
	KindLoss Kind = iota
	// KindCorrupt flips one byte of a mirrored frame with probability Prob.
	KindCorrupt
	// KindDup delivers a mirrored frame twice with probability Prob.
	KindDup
	// KindReorder holds a frame and releases it after its successor with
	// probability Prob, producing a timestamp regression at the collector.
	KindReorder
	// KindSkew offsets mirrored sample timestamps by Dur (may be negative).
	KindSkew
	// KindStall freezes the collector: samples queue but are not
	// processed while the window is active.
	KindStall
	// KindCrash kills the collector at time From; it stays dead until a
	// supervisor restarts it.
	KindCrash
	// KindPartition severs the collector→controller event channel while
	// the window is active: deliveries fail and must be retried.
	KindPartition
	// KindChanDelay adds Dur of latency to collector→controller event
	// delivery while the window is active.
	KindChanDelay

	numKinds
)

var kindNames = [numKinds]string{
	KindLoss:      "loss",
	KindCorrupt:   "corrupt",
	KindDup:       "dup",
	KindReorder:   "reorder",
	KindSkew:      "skew",
	KindStall:     "stall",
	KindCrash:     "crash",
	KindPartition: "partition",
	KindChanDelay: "chandelay",
}

// String returns the spec-grammar name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// probKind reports whether the kind's parameter is a probability.
func probKind(k Kind) bool {
	switch k {
	case KindLoss, KindCorrupt, KindDup, KindReorder:
		return true
	}
	return false
}

// durKind reports whether the kind's parameter is a duration.
func durKind(k Kind) bool { return k == KindSkew || k == KindChanDelay }

// Forever marks an open-ended rule window.
const Forever units.Time = math.MaxInt64

// Rule is one fault activation: Kind is active on [From, To) — To is
// exclusive so abutting windows do not overlap; To == Forever means
// open-ended. Prob is used by probability kinds, Dur by duration kinds.
// KindCrash ignores To: the crash fires once at From.
type Rule struct {
	Kind Kind
	From units.Time
	To   units.Time
	Prob float64
	Dur  units.Duration
}

// active reports whether the rule covers t.
func (r Rule) active(t units.Time) bool {
	return !t.Before(r.From) && (r.To == Forever || t.Before(r.To))
}

// Schedule is an immutable set of fault rules queried by virtual time.
// The zero value is an empty schedule (no faults).
type Schedule struct {
	rules []Rule
}

// NewSchedule builds a schedule from rules. Rules are kept in the
// given order; overlapping rules of the same kind combine (max
// probability, summed skew, max channel delay).
func NewSchedule(rules ...Rule) *Schedule {
	cp := make([]Rule, len(rules))
	copy(cp, rules)
	return &Schedule{rules: cp}
}

// Empty reports whether the schedule contains no rules.
func (s *Schedule) Empty() bool { return s == nil || len(s.rules) == 0 }

// Rules returns a copy of the rule set.
func (s *Schedule) Rules() []Rule {
	if s == nil {
		return nil
	}
	cp := make([]Rule, len(s.rules))
	copy(cp, s.rules)
	return cp
}

// Prob returns the activation probability of a probability kind at t:
// the maximum over active rules of that kind (0 when none is active).
func (s *Schedule) Prob(k Kind, t units.Time) float64 {
	if s == nil {
		return 0
	}
	p := 0.0
	for _, r := range s.rules {
		if r.Kind == k && r.active(t) && r.Prob > p {
			p = r.Prob
		}
	}
	return p
}

// Skew returns the total timestamp offset active at t (sum of active
// skew rules, so stacked skews compose).
func (s *Schedule) Skew(t units.Time) units.Duration {
	if s == nil {
		return 0
	}
	var d units.Duration
	for _, r := range s.rules {
		if r.Kind == KindSkew && r.active(t) {
			d += r.Dur
		}
	}
	return d
}

// ChannelDelay returns the extra event-delivery latency active at t
// (maximum over active chandelay rules).
func (s *Schedule) ChannelDelay(t units.Time) units.Duration {
	if s == nil {
		return 0
	}
	var d units.Duration
	for _, r := range s.rules {
		if r.Kind == KindChanDelay && r.active(t) && r.Dur > d {
			d = r.Dur
		}
	}
	return d
}

// StallActive reports whether a collector stall window covers t.
func (s *Schedule) StallActive(t units.Time) bool { return s.anyActive(KindStall, t) }

// PartitionActive reports whether a controller partition covers t.
func (s *Schedule) PartitionActive(t units.Time) bool { return s.anyActive(KindPartition, t) }

func (s *Schedule) anyActive(k Kind, t units.Time) bool {
	if s == nil {
		return false
	}
	for _, r := range s.rules {
		if r.Kind == k && r.active(t) {
			return true
		}
	}
	return false
}

// CrashTimes returns the sorted times at which crash rules fire.
func (s *Schedule) CrashTimes() []units.Time {
	if s == nil {
		return nil
	}
	var ts []units.Time
	for _, r := range s.rules {
		if r.Kind == KindCrash {
			ts = append(ts, r.From)
		}
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	return ts
}

// String renders the schedule back into the spec grammar. The result
// re-parses to an equal schedule (ParseSpec(s.String()) round-trips).
func (s *Schedule) String() string {
	if s.Empty() {
		return ""
	}
	var b strings.Builder
	for i, r := range s.rules {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(r.Kind.String())
		switch {
		case probKind(r.Kind):
			b.WriteByte(':')
			b.WriteString(strconv.FormatFloat(r.Prob, 'g', -1, 64))
		case durKind(r.Kind):
			b.WriteByte(':')
			b.WriteString(time.Duration(r.Dur).String())
		}
		switch {
		case r.Kind == KindCrash:
			b.WriteByte('@')
			b.WriteString(time.Duration(r.From).String())
		case r.From == 0 && r.To == Forever:
			// always-on: no window clause
		case r.To == Forever:
			b.WriteByte('@')
			b.WriteString(time.Duration(r.From).String())
			b.WriteByte('-')
		default:
			b.WriteByte('@')
			b.WriteString(time.Duration(r.From).String())
			b.WriteByte('-')
			b.WriteString(time.Duration(r.To).String())
		}
	}
	return b.String()
}

// ParseSpec parses the compact fault-spec grammar:
//
//	spec    = clause *("," clause)
//	clause  = kind [":" param] ["@" window]
//	kind    = "loss" | "corrupt" | "dup" | "reorder" | "skew" |
//	          "stall" | "crash" | "partition" | "chandelay"
//	param   = probability (loss/corrupt/dup/reorder; default 1) |
//	          duration    (skew/chandelay; required)
//	window  = start "-" end   (active on [start, end))
//	        | start "-"       (active from start, open-ended)
//	        | start           (crash: fire at start; others: open-ended)
//	                          (omitted: active for the whole run)
//
// Times and durations use Go duration syntax ("20ms", "1.5ms", "500us").
// Examples:
//
//	loss:1@20ms-40ms                  total mirror loss for 20ms
//	loss:0.05,skew:200us@10ms-        5% steady loss; skew from 10ms on
//	crash@61ms,partition@80ms-95ms    crash once; partition a window
func ParseSpec(spec string) (*Schedule, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return &Schedule{}, nil
	}
	var rules []Rule
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			return nil, fmt.Errorf("faults: empty clause in spec %q", spec)
		}
		r, err := parseClause(clause)
		if err != nil {
			return nil, err
		}
		rules = append(rules, r)
	}
	return &Schedule{rules: rules}, nil
}

func parseClause(clause string) (Rule, error) {
	body, window := clause, ""
	if i := strings.IndexByte(clause, '@'); i >= 0 {
		body, window = clause[:i], clause[i+1:]
	}
	name, param := body, ""
	if i := strings.IndexByte(body, ':'); i >= 0 {
		name, param = body[:i], body[i+1:]
	}

	var r Rule
	found := false
	for k, kn := range kindNames {
		if kn == name {
			r.Kind = Kind(k)
			found = true
			break
		}
	}
	if !found {
		return Rule{}, fmt.Errorf("faults: unknown fault kind %q", name)
	}

	switch {
	case probKind(r.Kind):
		r.Prob = 1
		if param != "" {
			p, err := strconv.ParseFloat(param, 64)
			if err != nil || p < 0 || p > 1 || math.IsNaN(p) {
				return Rule{}, fmt.Errorf("faults: %s probability %q must be in [0,1]", r.Kind, param)
			}
			r.Prob = p
		}
	case durKind(r.Kind):
		if param == "" {
			return Rule{}, fmt.Errorf("faults: %s requires a duration parameter", r.Kind)
		}
		d, err := time.ParseDuration(param)
		if err != nil {
			return Rule{}, fmt.Errorf("faults: bad %s duration %q: %v", r.Kind, param, err)
		}
		r.Dur = units.Duration(d)
	default:
		if param != "" {
			return Rule{}, fmt.Errorf("faults: %s takes no parameter (got %q)", r.Kind, param)
		}
	}

	r.From, r.To = 0, Forever
	if window != "" {
		from, to, err := parseWindow(window)
		if err != nil {
			return Rule{}, fmt.Errorf("faults: %s: %v", r.Kind, err)
		}
		r.From, r.To = from, to
	} else if r.Kind == KindCrash {
		return Rule{}, fmt.Errorf("faults: crash requires an @time")
	}
	if r.Kind == KindCrash {
		r.To = r.From
	}
	return r, nil
}

func parseWindow(w string) (from, to units.Time, err error) {
	// Split on the first '-' past position 0 so a leading sign (never
	// valid for a window, but harmless to tolerate in the split) does
	// not produce an empty start.
	start, end, open := w, "", false
	if i := strings.IndexByte(w[1:], '-'); i >= 0 {
		start, end = w[:i+1], w[i+2:]
		open = end == ""
	}
	fd, err := time.ParseDuration(start)
	if err != nil {
		return 0, 0, fmt.Errorf("bad window start %q: %v", start, err)
	}
	if fd < 0 {
		return 0, 0, fmt.Errorf("window start %q is negative", start)
	}
	from = units.Time(fd)
	to = Forever
	if end != "" {
		td, err := time.ParseDuration(end)
		if err != nil {
			return 0, 0, fmt.Errorf("bad window end %q: %v", end, err)
		}
		to = units.Time(td)
		if !from.Before(to) {
			return 0, 0, fmt.Errorf("window %q is empty (end <= start)", w)
		}
	} else if !open && start == w {
		// bare "@start": point for crash, open-ended for everything else
		to = Forever
	}
	return from, to, nil
}
