package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"planck/internal/packet"
	"planck/internal/units"
)

// Property tests for the ExpireFlows / FlowFreshness interaction. The
// two mechanisms overlap — freshness silently excludes a stale flow
// from utilization, expiry removes its record — and the collector must
// stay consistent whichever fires first.

// TestExpiredFlowsNeverContributeToUtilization: for arbitrary flow
// populations with arbitrary last-activity times, after ExpireFlows(now,
// idle) the utilization of every port equals the sum over surviving,
// fresh flows — an expired flow can never leak rate into a link sum.
func TestExpiredFlowsNeverContributeToUtilization(t *testing.T) {
	prop := func(seed int64, nFlows uint8, idleUS uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{
			SwitchName: "sw0", NumPorts: 4, LinkRate: units.Rate10G,
			FlowFreshness: 5 * units.Millisecond, // explicit: the recomputation below reads it
		}
		c := New(cfg)
		c.SetPortMapper(staticMapper{macB.U64(): 2})
		n := 1 + int(nFlows)%24
		var t0 units.Time
		// Each flow streams long enough to have a rate, then goes quiet at
		// its own time; flows interleave so LastSeen values spread out.
		type lane struct {
			src  uint16
			seq  uint32
			last units.Time
		}
		lanes := make([]*lane, n)
		for i := range lanes {
			lanes[i] = &lane{src: uint16(1000 + i)}
		}
		for step := 0; step < 4000; step++ {
			ln := lanes[rng.Intn(n)]
			frame := packet.BuildTCP(nil, packet.TCPSpec{
				SrcMAC: macA, DstMAC: macB, SrcIP: ipA, DstIP: ipB,
				SrcPort: ln.src, DstPort: 2000, Seq: ln.seq,
				Flags: packet.TCPAck, PayloadLen: 1460,
			})
			ln.seq += 1460
			if err := c.Ingest(t0, frame); err != nil {
				return false
			}
			ln.last = t0
			t0 = t0.Add(units.Duration(rng.Int63n(int64(5 * units.Microsecond))))
		}
		now := t0.Add(units.Duration(rng.Int63n(int64(10 * units.Millisecond))))
		idle := units.Duration(idleUS) * units.Microsecond

		c.ExpireFlows(now, idle)

		// Survivors are exactly the flows with now-LastSeen <= idle.
		for _, ln := range lanes {
			key := packet.FlowKey{SrcIP: ipA, DstIP: ipB, SrcPort: ln.src, DstPort: 2000, Proto: packet.IPProtocolTCP}
			tracked := c.Flow(key) != nil
			if ln.seq == 0 {
				continue // lane never sampled
			}
			shouldLive := now.Sub(ln.last) <= idle
			if tracked != shouldLive {
				return false
			}
		}
		// Utilization equals the from-scratch sum over surviving fresh
		// flows: expired flows contribute nothing.
		var want units.Rate
		c.Flows(func(f *FlowState) {
			if f.OutPort() != 2 {
				return
			}
			if c.now.Sub(f.LastSeen) > cfg.FlowFreshness {
				return
			}
			if r, ok := f.Rate(); ok {
				want += r
			}
		})
		return c.LinkUtilization(2) == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestExpiryRefiresFlowBoundary: a flow that is expired and then
// re-arrives is a new flow as far as the collector's lifecycle is
// concerned — its SYN re-fires FlowStart, and FirstSeen resets.
func TestExpiryRefiresFlowBoundary(t *testing.T) {
	prop := func(seed int64, rounds uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c := newTestCollector()
		var starts, ends int
		c.SubscribeFlowBoundaries(func(_ units.Time, _ packet.FlowKey, kind BoundaryKind) {
			if kind == FlowStart {
				starts++
			} else {
				ends++
			}
		})
		key := packet.FlowKey{SrcIP: ipA, DstIP: ipB, SrcPort: 1000, DstPort: 2000, Proto: packet.IPProtocolTCP}
		n := 1 + int(rounds)%6
		var t0 units.Time
		var seq uint32
		for round := 0; round < n; round++ {
			// SYN opens the flow...
			syn := packet.BuildTCP(nil, packet.TCPSpec{
				SrcMAC: macA, DstMAC: macB, SrcIP: ipA, DstIP: ipB,
				SrcPort: 1000, DstPort: 2000, Seq: seq, Flags: packet.TCPSyn,
			})
			if c.Ingest(t0, syn) != nil {
				return false
			}
			if starts != round+1 {
				return false
			}
			f := c.Flow(key)
			if f == nil || f.FirstSeen != t0 {
				return false // FirstSeen must reset after each expiry
			}
			// ...data flows...
			for i := 0; i < 1+rng.Intn(40); i++ {
				t0 = t0.Add(units.Duration(1230))
				seq += 1460
				if c.Ingest(t0, tcpFrame(seq, 1460)) != nil {
					return false
				}
			}
			// ...then the flow goes idle past the expiry horizon.
			t0 = t0.Add(20 * units.Millisecond)
			if c.ExpireFlows(t0, 10*units.Millisecond) != 1 {
				return false
			}
			if _, tracked := c.FlowRate(key); tracked {
				return false
			}
		}
		return starts == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestFreshnessExcludesStaleBeforeExpiry: between going quiet and being
// expired, a flow's stale estimate is already excluded from utilization
// by FlowFreshness — expiry then removes the record without changing
// the (already-zero) contribution.
func TestFreshnessExcludesStaleBeforeExpiry(t *testing.T) {
	c := newTestCollector()
	var t0 units.Time
	var seq uint32
	for i := 0; i < 2000; i++ {
		c.Ingest(t0, tcpFrame(seq, 1460))
		seq += 1460
		t0 = t0.Add(units.Duration(1230))
	}
	if c.LinkUtilization(2) == 0 {
		t.Fatal("no utilization while streaming")
	}
	// Advance the clock past FlowFreshness (5ms default) with an ARP so
	// c.now moves but the flow stays untouched and unexpired.
	arp := packet.BuildARP(nil, packet.ARPSpec{
		SrcMAC: macA, DstMAC: macB, Op: packet.ARPRequest,
		SenderMAC: macA, SenderIP: ipA, TargetIP: ipB,
	})
	c.Ingest(t0.Add(6*units.Millisecond), arp)
	if got := c.LinkUtilization(2); got != 0 {
		t.Fatalf("stale flow still contributes %v", got)
	}
	if c.Stats().Flows != 1 {
		t.Fatal("flow expired prematurely")
	}
	// Expiry afterwards removes the record; utilization stays zero.
	if n := c.ExpireFlows(t0.Add(20*units.Millisecond), 10*units.Millisecond); n != 1 {
		t.Fatalf("expired %d", n)
	}
	if got := c.LinkUtilization(2); got != 0 {
		t.Fatalf("post-expiry utilization %v", got)
	}
}
