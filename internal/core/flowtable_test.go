package core

import (
	"math/rand"
	"sort"
	"testing"

	"planck/internal/packet"
)

// ftKey draws from a deliberately small key space (~2k distinct keys)
// so a long random op sequence revisits keys constantly: re-finds,
// remove-then-reinsert, and enough live flows to force several table
// growths past the initial 64 slots.
func ftKey(rng *rand.Rand) packet.FlowKey {
	return packet.FlowKey{
		SrcIP:   packet.IPv4{10, 0, 0, byte(rng.Intn(8))},
		DstIP:   packet.IPv4{10, 0, 1, byte(rng.Intn(4))},
		SrcPort: uint16(rng.Intn(64)),
		DstPort: uint16(2000 + rng.Intn(2)),
		Proto:   packet.IPProtocolTCP,
	}
}

// checkCtrlInvariants asserts the Swiss-table control array's standing
// invariants against the slot array it summarizes: every empty slot's
// byte is ctrlEmpty and every occupied slot's byte is exactly
// ctrlTag(hash) (occupancy bit + top-7 tag); the live count matches;
// and the wrap-mirror tail equals the first groupWidth-1 head bytes, so
// unaligned windows read wrapped slots correctly.
func checkCtrlInvariants(t *testing.T, tab *FlowTable) {
	t.Helper()
	if tab.slots == nil {
		if tab.count != 0 {
			t.Fatalf("ctrl invariant: no slots but count %d", tab.count)
		}
		return
	}
	n := uint64(len(tab.slots))
	if uint64(len(tab.ctrl)) != n+groupWidth-1 {
		t.Fatalf("ctrl invariant: len(ctrl) %d, want %d slots + %d mirror", len(tab.ctrl), n, groupWidth-1)
	}
	live := 0
	for i := range tab.slots {
		s := &tab.slots[i]
		c := tab.ctrl[i]
		if s.f == nil {
			if c != ctrlEmpty {
				t.Fatalf("ctrl invariant: slot %d empty but ctrl %#02x", i, c)
			}
			continue
		}
		live++
		if want := ctrlTag(s.hash); c != want {
			t.Fatalf("ctrl invariant: slot %d ctrl %#02x, want tag %#02x of hash %#x", i, c, want, s.hash)
		}
	}
	if live != tab.count {
		t.Fatalf("ctrl invariant: %d occupied slots, count %d", live, tab.count)
	}
	for j := uint64(0); j < groupWidth-1; j++ {
		if tab.ctrl[n+j] != tab.ctrl[j] {
			t.Fatalf("ctrl invariant: mirror byte %d is %#02x, head byte is %#02x", j, tab.ctrl[n+j], tab.ctrl[j])
		}
	}
}

// TestFlowTableDifferential drives FlowTable and a plain
// map[FlowKey]*FlowState oracle through the same randomized op stream —
// insert, lookup (hit and miss), remove, full iteration — and demands
// they agree after every step: same membership, same record pointers
// (slab records must never move), same length.
func TestFlowTableDifferential(t *testing.T) {
	for _, seed := range []int64{1, 7, 99} {
		rng := rand.New(rand.NewSource(seed))
		var tab FlowTable
		oracle := map[packet.FlowKey]*FlowState{}
		var live []packet.FlowKey
		for op := 0; op < 20000; op++ {
			switch r := rng.Intn(100); {
			case r < 50: // insert, or re-find when live
				k := ftKey(rng)
				h := HashFlowKey(k)
				f, inserted := tab.GetOrInsert(h, k)
				if f == nil || f.Key != k {
					t.Fatalf("seed %d op %d: GetOrInsert(%v) returned record for %v", seed, op, k, f.Key)
				}
				if of, ok := oracle[k]; ok {
					if inserted {
						t.Fatalf("seed %d op %d: re-inserted live key %v", seed, op, k)
					}
					if of != f {
						t.Fatalf("seed %d op %d: record for %v moved: %p != %p", seed, op, k, f, of)
					}
				} else {
					if !inserted {
						t.Fatalf("seed %d op %d: GetOrInsert(%v) found a record the oracle lacks", seed, op, k)
					}
					f.SampledPackets = int64(op) // payload marker, checked at iteration
					oracle[k] = f
					live = append(live, k)
				}
			case r < 75: // lookup, often a miss
				k := ftKey(rng)
				f := tab.Lookup(HashFlowKey(k), k)
				if of := oracle[k]; f != of {
					t.Fatalf("seed %d op %d: Lookup(%v) = %p, oracle %p", seed, op, k, f, of)
				}
			case r < 95: // remove a random live record
				if len(live) == 0 {
					continue
				}
				i := rng.Intn(len(live))
				k := live[i]
				tab.Remove(oracle[k])
				delete(oracle, k)
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
				if tab.Lookup(HashFlowKey(k), k) != nil {
					t.Fatalf("seed %d op %d: %v still found after Remove", seed, op, k)
				}
			default: // full iteration agrees with the oracle
				seen := make(map[packet.FlowKey]bool, len(oracle))
				tab.Iterate(func(f *FlowState) {
					if seen[f.Key] {
						t.Fatalf("seed %d op %d: Iterate visited %v twice", seed, op, f.Key)
					}
					seen[f.Key] = true
					if oracle[f.Key] != f {
						t.Fatalf("seed %d op %d: Iterate record for %v is not the oracle's", seed, op, f.Key)
					}
				})
				if len(seen) != len(oracle) || tab.Len() != len(oracle) {
					t.Fatalf("seed %d op %d: iterate saw %d, Len %d, oracle %d",
						seed, op, len(seen), tab.Len(), len(oracle))
				}
				checkCtrlInvariants(t, &tab)
			}
		}
		checkCtrlInvariants(t, &tab)
		for k, of := range oracle {
			if tab.Lookup(HashFlowKey(k), k) != of {
				t.Fatalf("seed %d: final sweep lost %v", seed, k)
			}
		}
		if mean, max := tab.ProbeStats(); tab.Len() > 0 && (mean < 0 || max >= len(tab.slots)) {
			t.Fatalf("seed %d: degenerate probe stats mean=%v max=%d", seed, mean, max)
		}
	}
}

// TestFlowTableBackwardShiftWrapAround pins the deletion edge cases the
// differential test only hits probabilistically: probe clusters built
// with hand-picked hashes that collide on low bits and wrap around the
// end of the 64-slot probe array. After every removal, every surviving
// record must remain reachable from its home slot — the invariant
// backward-shift deletion exists to maintain.
func TestFlowTableBackwardShiftWrapAround(t *testing.T) {
	for trial, lows := range [][]uint64{
		{63, 63, 63, 63, 63},      // one cluster wrapping 63 → 0 → …
		{60, 61, 62, 63, 0, 1, 2}, // distinct home slots straddling the wrap
		{62, 62, 0, 0, 62, 1, 63}, // interleaved homes, shifts across the seam
		{0, 0, 0, 63, 63, 63},     // two clusters meeting at the seam
	} {
		var tab FlowTable
		type ent struct {
			h uint64
			k packet.FlowKey
		}
		var ents []ent
		for i, lo := range lows {
			k := packet.FlowKey{
				SrcIP: ipA, DstIP: ipB,
				SrcPort: uint16(100*trial + i), DstPort: 7,
				Proto: packet.IPProtocolTCP,
			}
			// Same low bits under any power-of-two mask ≥ 64 slots; high
			// bits keep the hashes distinct.
			h := lo | uint64(i+1)<<32
			if f, inserted := tab.GetOrInsert(h, k); !inserted || f.Key != k {
				t.Fatalf("trial %d: insert %d: inserted=%v key=%v", trial, i, inserted, f.Key)
			}
			ents = append(ents, ent{h, k})
		}
		for n := 0; len(ents) > 0; n++ {
			i := (n * 3) % len(ents) // rotate removal position through the cluster
			e := ents[i]
			f := tab.Lookup(e.h, e.k)
			if f == nil {
				t.Fatalf("trial %d: %v unreachable before its removal", trial, e.k)
			}
			tab.Remove(f)
			ents = append(ents[:i], ents[i+1:]...)
			if tab.Len() != len(ents) {
				t.Fatalf("trial %d: Len %d after removal, want %d", trial, tab.Len(), len(ents))
			}
			for _, o := range ents {
				if tab.Lookup(o.h, o.k) == nil {
					t.Fatalf("trial %d: removing %v orphaned %v", trial, e.k, o.k)
				}
			}
			checkCtrlInvariants(t, &tab)
		}
	}
}

// TestFlowTableLookupBatchEquivalence pins the batch probe's contract:
// LookupBatch over any slice of (hash, key) pairs — hits, misses,
// duplicates, chunks that are not a multiple of the group width — is
// element-wise identical to calling Lookup, across table states from
// empty through grown and churned.
func TestFlowTableLookupBatchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var tab FlowTable
	oracle := map[packet.FlowKey]*FlowState{}
	var live []packet.FlowKey

	checkBatch := func(stage string) {
		for _, n := range []int{0, 1, 3, 8, 13, 64, 200} {
			keys := make([]packet.FlowKey, n)
			hs := make([]uint64, n)
			out := make([]*FlowState, n)
			for i := range keys {
				keys[i] = ftKey(rng) // small key space: mixes hits and misses
				hs[i] = HashFlowKey(keys[i])
			}
			if got := tab.LookupBatch(hs, keys, out); got != n {
				t.Fatalf("%s n=%d: LookupBatch resolved %d", stage, n, got)
			}
			for i := range keys {
				if want := tab.Lookup(hs[i], keys[i]); out[i] != want {
					t.Fatalf("%s n=%d i=%d: LookupBatch(%v) = %p, Lookup = %p",
						stage, n, i, keys[i], out[i], want)
				}
				if out[i] != oracle[keys[i]] {
					t.Fatalf("%s n=%d i=%d: batch result for %v disagrees with oracle", stage, n, i, keys[i])
				}
			}
		}
	}

	checkBatch("empty")
	for i := 0; i < 1200; i++ {
		k := ftKey(rng)
		if _, ok := oracle[k]; !ok {
			f, _ := tab.GetOrInsert(HashFlowKey(k), k)
			oracle[k] = f
			live = append(live, k)
		}
	}
	checkBatch("grown")
	for i := 0; i < 600 && len(live) > 0; i++ { // churn: backward-shift deletions
		j := rng.Intn(len(live))
		k := live[j]
		tab.Remove(oracle[k])
		delete(oracle, k)
		live[j] = live[len(live)-1]
		live = live[:len(live)-1]
	}
	checkBatch("churned")
	checkCtrlInvariants(t, &tab)
}

// TestFlowTableProbeP99UnderChurn holds the probe-length distribution
// to a bound after sustained insert/remove churn at the table's
// steady-state load. Backward-shift deletion leaves no tombstones, so
// chains must stay as tight after 30k churn operations as after a
// fresh bulk load: p99 within one probe group, max within a handful.
func TestFlowTableProbeP99UnderChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var tab FlowTable
	type rec struct {
		k packet.FlowKey
		f *FlowState
	}
	byKey := map[packet.FlowKey]*FlowState{}
	var live []rec
	mk := func() packet.FlowKey {
		return packet.FlowKey{
			SrcIP:   packet.IPv4{10, byte(rng.Intn(64)), 0, byte(rng.Intn(256))},
			DstIP:   packet.IPv4{10, 0, 1, byte(rng.Intn(64))},
			SrcPort: uint16(rng.Intn(1 << 14)), DstPort: 443,
			Proto: packet.IPProtocolTCP,
		}
	}
	for i := 0; i < 4096; i++ {
		k := mk()
		if _, ok := byKey[k]; ok {
			continue
		}
		f, _ := tab.GetOrInsert(HashFlowKey(k), k)
		byKey[k] = f
		live = append(live, rec{k, f})
	}
	for op := 0; op < 30000; op++ { // remove one, insert one: load stays put
		j := rng.Intn(len(live))
		tab.Remove(live[j].f)
		delete(byKey, live[j].k)
		live[j] = live[len(live)-1]
		live = live[:len(live)-1]
		for {
			k := mk()
			if _, ok := byKey[k]; ok {
				continue
			}
			f, _ := tab.GetOrInsert(HashFlowKey(k), k)
			byKey[k] = f
			live = append(live, rec{k, f})
			break
		}
	}

	var lens []int
	for j := range tab.slots {
		s := &tab.slots[j]
		if s.f != nil {
			lens = append(lens, int((uint64(j)-s.hash)&tab.mask))
		}
	}
	sort.Ints(lens)
	p99 := lens[len(lens)*99/100]
	max := lens[len(lens)-1]
	if p99 >= groupWidth {
		t.Fatalf("probe p99 %d after churn; an un-decayed table keeps p99 within one group (< %d)", p99, groupWidth)
	}
	if max >= 4*groupWidth {
		t.Fatalf("probe max %d after churn; backward-shift deletion must keep chains short", max)
	}
	checkCtrlInvariants(t, &tab)
}

// TestFlowHashMatchesKeyHash checks the contract that lets one hash
// serve both the dispatcher and the table: for any frame the decoder
// extracts a flow from, flowHash over the raw bytes equals HashFlowKey
// over the decoded key.
func TestFlowHashMatchesKeyHash(t *testing.T) {
	frames := [][]byte{
		packet.BuildTCP(nil, packet.TCPSpec{
			SrcMAC: macA, DstMAC: macB, SrcIP: ipA, DstIP: ipB,
			SrcPort: 1234, DstPort: 80, Seq: 99, Flags: packet.TCPAck, PayloadLen: 1460,
		}),
		packet.BuildTCP(nil, packet.TCPSpec{
			SrcMAC: macA, DstMAC: macB, SrcIP: packet.IPv4{192, 168, 255, 1}, DstIP: packet.IPv4{10, 255, 0, 9},
			SrcPort: 65535, DstPort: 1, Seq: 0, Flags: packet.TCPSyn,
		}),
		packet.BuildUDP(nil, packet.UDPSpec{
			SrcMAC: macA, DstMAC: macB, SrcIP: ipA, DstIP: ipB,
			SrcPort: 4000, DstPort: 4001, PayloadLen: 400, Seq: 7, HasSeq: true,
		}),
	}
	for i, fr := range frames {
		h, ok := flowHash(fr)
		if !ok {
			t.Fatalf("frame %d: flowHash rejected a transport frame", i)
		}
		var dec packet.Decoded
		if err := dec.Decode(fr); err != nil {
			t.Fatalf("frame %d: decode: %v", i, err)
		}
		key, okK := dec.Flow()
		if !okK {
			t.Fatalf("frame %d: decoder extracted no flow", i)
		}
		if kh := HashFlowKey(key); kh != h {
			t.Fatalf("frame %d: flowHash %#x != HashFlowKey %#x for %v", i, h, kh, key)
		}
	}

	arp := packet.BuildARP(nil, packet.ARPSpec{
		SrcMAC: macA, DstMAC: macB, Op: packet.ARPRequest,
		SenderMAC: macA, SenderIP: ipA, TargetIP: ipB,
	})
	if _, ok := flowHash(arp); ok {
		t.Fatal("flowHash accepted an ARP frame")
	}
	if _, ok := flowHash(frames[0][:20]); ok {
		t.Fatal("flowHash accepted a truncated frame")
	}
}

// FuzzFlowTable interprets the fuzz input as an op stream over a tiny
// key space and cross-checks FlowTable against the map oracle, the same
// way the differential test does but with coverage-guided inputs.
func FuzzFlowTable(f *testing.F) {
	f.Add([]byte{0, 1, 2, 1, 1, 2, 2, 1, 2, 3, 0, 0})
	f.Add([]byte{0, 5, 0, 0, 5, 1, 0, 5, 2, 2, 5, 0, 2, 5, 1, 3, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		var tab FlowTable
		oracle := map[packet.FlowKey]*FlowState{}
		for i := 0; i+2 < len(data); i += 3 {
			op, a, b := data[i], data[i+1], data[i+2]
			k := packet.FlowKey{
				SrcIP: ipA, DstIP: ipB,
				SrcPort: uint16(a), DstPort: uint16(b % 8),
				Proto: packet.IPProtocolTCP,
			}
			h := HashFlowKey(k)
			switch op % 4 {
			case 0:
				f, inserted := tab.GetOrInsert(h, k)
				_, had := oracle[k]
				if inserted == had {
					t.Fatalf("op %d: inserted=%v but oracle had=%v for %v", i, inserted, had, k)
				}
				if had && oracle[k] != f {
					t.Fatalf("op %d: record moved for %v", i, k)
				}
				oracle[k] = f
			case 1:
				if got := tab.Lookup(h, k); got != oracle[k] {
					t.Fatalf("op %d: Lookup(%v) = %p, oracle %p", i, k, got, oracle[k])
				}
			case 2:
				if of, ok := oracle[k]; ok {
					tab.Remove(of)
					delete(oracle, k)
				}
			default:
				n := 0
				tab.Iterate(func(f *FlowState) {
					n++
					if oracle[f.Key] != f {
						t.Fatalf("op %d: Iterate found unknown record %v", i, f.Key)
					}
				})
				if n != len(oracle) || tab.Len() != len(oracle) {
					t.Fatalf("op %d: iterate %d, Len %d, oracle %d", i, n, tab.Len(), len(oracle))
				}
			}
		}
		for k, of := range oracle {
			if tab.Lookup(HashFlowKey(k), k) != of {
				t.Fatalf("final sweep lost %v", k)
			}
		}
		checkCtrlInvariants(t, &tab)
	})
}
