package core

import (
	"io"

	"planck/internal/pcap"
	"planck/internal/units"
)

// Ring is the vantage-point monitor's sample buffer (§6.1): it retains
// the most recent N sampled frames from a switch and writes them out as a
// tcpdump-compatible pcap file on demand. Storage is a single flat byte
// arena reused across wraps, so steady-state capture does not allocate.
type Ring struct {
	cap     int
	slots   []ringSlot
	arena   []byte
	slotLen int
	next    int64 // monotone push counter
}

type ringSlot struct {
	t       units.Time
	wireLen int
	dataLen int
}

// MaxSnap is the per-packet capture limit of the ring.
const MaxSnap = 2048

// NewRing returns a ring holding up to n packets.
func NewRing(n int) *Ring {
	if n <= 0 {
		n = 1
	}
	return &Ring{
		cap:     n,
		slots:   make([]ringSlot, n),
		arena:   make([]byte, n*MaxSnap),
		slotLen: MaxSnap,
	}
}

// Push stores a sample, truncating to MaxSnap bytes.
func (r *Ring) Push(t units.Time, frame []byte) {
	i := int(r.next % int64(r.cap))
	dst := r.arena[i*r.slotLen : (i+1)*r.slotLen]
	n := copy(dst, frame)
	r.slots[i] = ringSlot{t: t, wireLen: len(frame), dataLen: n}
	r.next++
}

// Len returns the number of retained samples.
func (r *Ring) Len() int {
	if r.next < int64(r.cap) {
		return int(r.next)
	}
	return r.cap
}

// Each visits retained samples oldest-first. The frame slice is only
// valid during the callback.
func (r *Ring) Each(fn func(t units.Time, wireLen int, frame []byte) error) error {
	n := r.Len()
	start := r.next - int64(n)
	for k := int64(0); k < int64(n); k++ {
		i := int((start + k) % int64(r.cap))
		s := r.slots[i]
		frame := r.arena[i*r.slotLen : i*r.slotLen+s.dataLen]
		if err := fn(s.t, s.wireLen, frame); err != nil {
			return err
		}
	}
	return nil
}

// WritePcap dumps the ring oldest-first as a nanosecond-resolution pcap.
func (r *Ring) WritePcap(w io.Writer) error {
	pw, err := pcap.NewWriter(w, pcap.WithNanosecondResolution(), pcap.WithSnapLen(MaxSnap))
	if err != nil {
		return err
	}
	err = r.Each(func(t units.Time, wireLen int, frame []byte) error {
		return pw.WriteRecord(pcap.Record{Time: t, WireLen: wireLen, Data: frame})
	})
	if err != nil {
		return err
	}
	return pw.Flush()
}
