package core

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync/atomic"

	"planck/internal/obs"
	"planck/internal/obs/trace"
	"planck/internal/packet"
	"planck/internal/units"
)

// PortMapper resolves sampled packets to the monitored switch's ports.
// Mirrored frames carry no metadata (§3.2.1), so the collector infers
// ports from routing state the controller shares with it.
type PortMapper interface {
	// OutputPort returns the switch egress port for a destination MAC.
	OutputPort(dst packet.MAC) (int, bool)
	// InputPort returns the ingress port for a (src, dst) MAC pair.
	InputPort(src, dst packet.MAC) (int, bool)
}

// Config tunes a Collector. Zero values take paper defaults.
type Config struct {
	// SwitchName labels the monitored switch in events and dumps.
	SwitchName string
	// NumPorts is the monitored switch's port count.
	NumPorts int
	// LinkRate is the capacity of each egress link.
	LinkRate units.Rate
	// MinGap and MaxBurst configure the rate estimator (§3.2.2).
	MinGap   units.Duration
	MaxBurst units.Duration
	// UtilThreshold is the fraction of LinkRate at which a link counts as
	// congested and an event fires.
	UtilThreshold float64
	// FlowFreshness bounds how stale a flow's estimate may be and still
	// contribute to link utilization.
	FlowFreshness units.Duration
	// EventCooldown rate-limits congestion events per link.
	EventCooldown units.Duration
	// RingPackets sizes the vantage-point sample ring (0 disables).
	RingPackets int
	// TrackRetransmits enables the §3.2.2 extension inferring per-flow
	// retransmission rates from duplicate sequence numbers.
	TrackRetransmits bool
	// UDPSeqEnabled gates §3.2.2's generalization to UDP: when true, the
	// collector treats four payload bytes of each UDP datagram as a
	// big-endian application packet counter and estimates UDP flow
	// throughput from it. UDPSeqOffset is the byte offset of that
	// counter within the UDP payload (0 means the first payload byte);
	// it is ignored while UDPSeqEnabled is false.
	UDPSeqEnabled bool
	UDPSeqOffset  int
	// Metrics, when non-nil, registers the collector's self-monitoring
	// instruments (counters, flow-table gauge, per-stage pipeline
	// histograms) into the registry, labelled with SwitchName, and
	// enables stage timing. With a nil registry the counters still run
	// (readable through Stats) but cost only a few uncontended atomic
	// adds per sample and zero allocations.
	Metrics *obs.Registry
	// StageTiming enables wall-clock per-stage pipeline timing without
	// (or in addition to) a registry. Timing reads the monotonic clock
	// ~6 times per sample; it never affects simulation determinism,
	// only telemetry.
	StageTiming bool
	// Tracer, when non-nil, assigns control-loop trace IDs to emitted
	// congestion events and opens causal spans for them
	// (internal/obs/trace). The sample hot path never touches it; the
	// only ingest-reachable probe is one branch plus one atomic load in
	// remapFlowAt, which runs on label/epoch changes only.
	Tracer *trace.Tracer
	// Sink, when non-nil, receives one Report callback per ingested
	// sequence-carrying sample — the seam a vantage collector uses to
	// feed a federated aggregation plane (internal/agg), in-process or
	// across a wire transport (internal/vantagelink). The sink is
	// called synchronously on the ingest goroutine after the sample's
	// flow record is fully updated; detection then typically lives at
	// the plane, with no local Subscribe, so events fire exactly once
	// network-wide. Serial collectors only: NewSharded rejects a config
	// with a Sink (shard workers would invoke it concurrently).
	Sink AggregationSink
	// Vantage identifies this collector within a fleet; it stamps the
	// Vantage field of locally emitted congestion events. Zero for a
	// single-collector deployment.
	Vantage int
}

// FlowReport is the sink-visible snapshot of one ingested sample: the
// exact fields the aggregation plane folds into its merged view, as a
// flat value that can cross a process boundary. RateUpdated reports
// whether the sample closed an estimation window, i.e. exactly the
// condition under which the collector itself would run congestion
// detection.
type FlowReport struct {
	Time   units.Time
	Key    packet.FlowKey
	DstMAC packet.MAC
	// OutPort is the flow's egress port at the vantage's switch
	// (-1 unknown).
	OutPort int
	// Epoch is the routing epoch OutPort was resolved under.
	Epoch uint64
	Rate  units.Rate
	// RateOK reports whether Rate carries a usable estimate.
	RateOK      bool
	RateUpdated bool
}

// MakeFlowReport snapshots the sink-visible fields of f at time t —
// what the collector itself passes to its Sink after updating f.
func MakeFlowReport(t units.Time, f *FlowState, rateUpdated bool) FlowReport {
	rep := FlowReport{
		Time:        t,
		Key:         f.Key,
		DstMAC:      f.DstMAC,
		OutPort:     f.outPort,
		Epoch:       f.routeEpoch,
		RateUpdated: rateUpdated,
	}
	rep.Rate, rep.RateOK = f.Rate()
	return rep
}

// AggregationSink observes every ingested sample of a vantage-scoped
// collector. rep points at a per-collector scratch reused by the next
// sample — copy it to retain it past the call.
type AggregationSink interface {
	Report(rep *FlowReport)
}

// BatchEndSink is an optional AggregationSink extension. When the
// configured Sink implements it, the collector calls BatchEnd after
// every Ingest or IngestBatch call — the natural flush point for sinks
// that batch reports into wire frames (internal/vantagelink) instead
// of folding them in synchronously.
type BatchEndSink interface {
	BatchEnd(now units.Time)
}

// WithDefaults returns a copy of c with every zero tuning field
// replaced by its paper default — the exact thresholds a collector
// built from c will run with. An aggregation plane federating several
// such collectors derives its own thresholds from this so detection at
// the plane is cooldown- and threshold-coherent with the fleet.
func (c Config) WithDefaults() Config {
	c.fillDefaults()
	return c
}

func (c *Config) fillDefaults() {
	if c.MinGap == 0 {
		c.MinGap = DefaultMinGap
	}
	if c.MaxBurst == 0 {
		c.MaxBurst = DefaultMaxBurst
	}
	if c.UtilThreshold == 0 {
		c.UtilThreshold = 0.90
	}
	if c.FlowFreshness == 0 {
		c.FlowFreshness = 5 * units.Millisecond
	}
	if c.EventCooldown == 0 {
		c.EventCooldown = 250 * units.Microsecond
	}
}

// FlowInfo is a point-in-time flow snapshot included in events and query
// responses.
type FlowInfo struct {
	Key    packet.FlowKey
	DstMAC packet.MAC
	Rate   units.Rate
	// OutPort is the flow's egress port at this switch.
	OutPort int
}

// BoundaryKind classifies flow-boundary observations.
type BoundaryKind uint8

// Flow boundaries (§9.2: SYN/FIN/RST packets "mark the beginning and end
// of flows" and sampling them quickly gives "faster knowledge of these
// network events").
const (
	FlowStart BoundaryKind = iota // SYN without ACK
	FlowEnd                       // FIN or RST
)

// String implements fmt.Stringer.
func (k BoundaryKind) String() string {
	if k == FlowEnd {
		return "end"
	}
	return "start"
}

// CongestionEvent reports a link whose estimated utilization crossed the
// configured threshold. Flows carries the context annotations §3.3
// describes: the flows using the link and their current rates.
type CongestionEvent struct {
	Time       units.Time
	SwitchName string
	Port       int
	Util       units.Rate
	Capacity   units.Rate
	Flows      []FlowInfo
	// ID is the control-loop trace ID, monotonically assigned by the
	// configured Tracer at emit time (serial path) or by the merger's
	// in-order replay (sharded path). Zero when tracing is off.
	ID uint64
	// Epoch is the routing epoch the triggering flow's egress port was
	// resolved under — event provenance for cross-collector merging
	// (zero without a RouteResolver).
	Epoch uint64
	// Vantage identifies the emitting collector within a fleet
	// (Config.Vantage, or the aggregation plane's vantage id for
	// plane-emitted events). Zero for a single-collector deployment.
	Vantage int
}

// Stats aggregates collector counters. It is a snapshot view over the
// collector's obs instruments, kept for embedders that want a plain
// struct instead of a metrics registry.
type Stats struct {
	Samples        int64 // frames ingested
	DecodeErrors   int64
	NonTCP         int64 // frames without a usable sequence stream
	Flows          int   // live flow-table entries
	RateUpdates    int64
	EventsEmitted  int64
	OutOfOrder     int64 // sequence regressions ignored by estimators
	UnmappedOutput int64 // samples whose egress port could not be inferred
}

// Collector is one monitor port's processing pipeline.
type Collector struct {
	cfg    Config
	mapper PortMapper

	// resolver is the epoch-aware face of mapper, set when the mapper
	// is a RouteResolver (routing.View). routeEpoch is the epoch the
	// collector is synced to; flows stamped with a different epoch
	// re-resolve on their next sample. epochRef, when the resolver is
	// also an EpochSource, is the publisher's epoch counter: syncRoutes
	// polls it with one inlined atomic load and skips the virtual
	// Refresh call entirely while no reroute has been committed.
	resolver   RouteResolver
	epochRef   *atomic.Uint64
	routeEpoch uint64

	dec   packet.Decoded
	flows FlowTable

	// portFlows[p] holds flows currently mapped to egress port p.
	portFlows [][]*FlowState

	lastEvent []units.Time

	subs     []func(ev CongestionEvent)
	boundary []func(t units.Time, key packet.FlowKey, kind BoundaryKind)

	ring *Ring

	now units.Time

	// sinkRep is the scratch FlowReport handed to cfg.Sink; sinkBatch
	// is cfg.Sink's optional batch-end face, asserted once at New.
	sinkRep   FlowReport
	sinkBatch BatchEndSink

	met collectorMetrics

	// cooldownScratch backs CooldownSnapshot so periodic supervisor
	// snapshots reuse one map instead of allocating per call.
	cooldownScratch map[int]units.Time
}

// New creates a collector.
func New(cfg Config) *Collector {
	cfg.fillDefaults()
	c := &Collector{cfg: cfg}
	if cfg.Sink != nil {
		c.sinkBatch, _ = cfg.Sink.(BatchEndSink)
	}
	c.met.init(cfg.StageTiming || cfg.Metrics != nil)
	c.flows.probe = c.met.probeLen
	if cfg.Metrics != nil {
		c.register(cfg.Metrics)
	}
	if cfg.NumPorts > 0 {
		c.portFlows = make([][]*FlowState, cfg.NumPorts)
		c.lastEvent = make([]units.Time, cfg.NumPorts)
		for i := range c.lastEvent {
			c.lastEvent[i] = -1 << 62
		}
	}
	if cfg.RingPackets > 0 {
		c.ring = NewRing(cfg.RingPackets)
	}
	return c
}

// SetPortMapper installs (or replaces, after a route change) the routing
// state used for port inference. Live flows are re-resolved immediately:
// when PlanckTE reroutes a flow (§4) the controller's new routing state
// must move the flow's contribution to its new egress link even if no
// further sample arrives before the next utilization query.
func (c *Collector) SetPortMapper(m PortMapper) {
	c.mapper = m
	c.resolver, _ = m.(RouteResolver)
	c.epochRef = nil
	if c.resolver != nil {
		c.routeEpoch = c.resolver.Refresh()
		if es, ok := m.(EpochSource); ok {
			c.epochRef = es.EpochRef()
		}
	}
	c.flows.Iterate(func(f *FlowState) { c.remapFlowAt(f.LastSeen, f) })
}

// syncRoutes pins the current routing epoch (one atomic load) and, on
// an epoch change, re-resolves every live flow as of its last sample
// time. Resolving at LastSeen — never at c.now — is what keeps sharded
// ingest equivalent to serial: LastSeen is a per-flow property of the
// stream, while "now" is a property of whichever shard saw the flow
// last. Called once per Ingest/IngestBatch, never per sample.
func (c *Collector) syncRoutes() {
	if c.resolver == nil {
		return
	}
	// No-reroute fast path: the publisher's bare epoch counter, read
	// inline. The slow path (a virtual Refresh re-pinning the history)
	// only runs when the counter has actually moved — the counter is
	// stored after the history it names, so a changed read here
	// guarantees Refresh sees that commit. Keeping the slow path in its
	// own function keeps this check within the inlining budget, so the
	// per-Ingest cost is one atomic load with no call.
	if p := c.epochRef; p != nil && p.Load() == c.routeEpoch {
		return
	}
	c.syncRoutesSlow()
}

func (c *Collector) syncRoutesSlow() {
	if e := c.resolver.Refresh(); e != c.routeEpoch {
		c.routeEpoch = e
		c.flows.Iterate(func(f *FlowState) { c.remapFlowAt(f.LastSeen, f) })
	}
}

// Subscribe registers fn for congestion events.
func (c *Collector) Subscribe(fn func(ev CongestionEvent)) { c.subs = append(c.subs, fn) }

// SubscribeFlowBoundaries registers fn for flow start/end observations —
// a sampled SYN (without ACK) or FIN/RST. How quickly these arrive under
// load depends on the switch's sampling policy; §9.2's preferential
// sampling exists precisely to protect them.
func (c *Collector) SubscribeFlowBoundaries(fn func(t units.Time, key packet.FlowKey, kind BoundaryKind)) {
	c.boundary = append(c.boundary, fn)
}

// Stats returns a snapshot of the collector's counters. OutOfOrder is
// the same monotonic count the registry's out_of_order_total counter
// exposes: it never shrinks, even when idle flows are expired. (It
// formerly re-aggregated live estimators on every call — an
// O(live-flows) scan whose result also dipped on expiry.)
func (c *Collector) Stats() Stats {
	return Stats{
		Samples:      c.met.samples.Value(),
		DecodeErrors: c.met.decodeErrors.Value(),
		NonTCP:       c.met.nonTCP.Value(),
		// The flow count reads the gauge, not the table: every insert and
		// expiry updates it, and unlike FlowTable.Len it is safe against a
		// concurrent snapshot while the owning goroutine ingests.
		Flows:          int(c.met.flowTableSize.Value()),
		RateUpdates:    c.met.rateUpdates.Value(),
		EventsEmitted:  c.met.events.Value(),
		OutOfOrder:     c.met.outOfOrder.Value(),
		UnmappedOutput: c.met.unmapped.Value(),
	}
}

// BatchError reports per-frame failures inside an IngestBatch call.
// Processing does not stop at a failed frame — the remaining frames are
// ingested, exactly as a caller looping over Ingest would continue —
// so the error carries the failure count plus the first failure for
// diagnosis.
type BatchError struct {
	// Failed is how many frames of the batch returned an error.
	Failed int
	// Index is the batch index of the first failing frame.
	Index int
	// Err is the first failure.
	Err error
}

// Error implements error.
func (e *BatchError) Error() string {
	return fmt.Sprintf("core: %d of batch failed (first at %d): %v", e.Failed, e.Index, e.Err)
}

// Unwrap exposes the first per-frame failure.
func (e *BatchError) Unwrap() error { return e.Err }

// Ingest processes one sampled frame captured at time t. Timestamps must
// be non-decreasing. The frame buffer is only borrowed for the call.
func (c *Collector) Ingest(t units.Time, frame []byte) error {
	if t < c.now {
		return fmt.Errorf("core: timestamp went backwards: %v after %v", t, c.now)
	}
	if c.resolver != nil {
		c.syncRoutes()
	}
	c.met.samples.IncRelaxed()
	err := c.ingest(t, frame, 0, nil, 0)
	if c.sinkBatch != nil {
		c.sinkBatch.BatchEnd(t)
	}
	return err
}

// ingestHashed is Ingest with a flow hash precomputed by the caller
// (the sharded dispatcher shares its partition hash this way); 0 means
// unknown.
func (c *Collector) ingestHashed(t units.Time, frame []byte, h uint64) error {
	if t < c.now {
		return fmt.Errorf("core: timestamp went backwards: %v after %v", t, c.now)
	}
	if c.resolver != nil {
		c.syncRoutes()
	}
	c.met.samples.IncRelaxed()
	return c.ingest(t, frame, h, nil, 0)
}

// IngestBatch processes a batch of sampled frames, ts[i] stamping
// frames[i]. It computes exactly what the equivalent Ingest loop
// computes, amortizing the per-sample accounting over the batch when
// the batch's timestamps are non-decreasing (per-frame failures do not
// stop the batch; they are summarized in a *BatchError). len(ts) must
// equal len(frames); the frame buffers are only borrowed for the call.
// batchProbeMinFlows gates IngestBatch's chunk-of-8 probe pipeline:
// below this population the table's control and record lines all sit in
// L1/L2 and the prefetch pass costs more than the misses it overlaps,
// so small tables take the plain loop. At production populations the
// pipeline turns a chain of dependent cache misses into ~3 overlapped
// ones per chunk.
const batchProbeMinFlows = 4096

func (c *Collector) IngestBatch(ts []units.Time, frames [][]byte) error {
	n := len(ts)
	if len(frames) < n {
		n = len(frames)
	}
	if n == 0 {
		return nil
	}
	if c.resolver != nil {
		c.syncRoutes()
	}
	if h := c.met.batchSamples; h != nil {
		h.Observe(int64(n))
	}
	mono := ts[0] >= c.now
	for i := 1; mono && i < n; i++ {
		mono = ts[i] >= ts[i-1]
	}
	var be *BatchError
	if mono {
		// No frame can hit the timestamp check, so the whole batch counts
		// as samples up front with one counter write.
		c.met.samples.AddRelaxed(int64(n))
		if c.flows.Len() >= batchProbeMinFlows {
			// Chunk-of-8 probe pipeline: pass 1 hashes each frame and
			// probes its home control window plus first candidate record,
			// so the chunk's cache misses overlap instead of serializing
			// behind one another; pass 2 ingests with the hash and
			// candidate as hints. Hints stay sound within the batch:
			// records never move and expiry never runs mid-batch, and
			// every hint is re-verified against the frame's 5-tuple
			// before use.
			var (
				hs    [8]uint64
				hint  [8]*FlowState
				hHash [8]uint64
			)
			for base := 0; base < n; base += len(hs) {
				m := min(len(hs), n-base)
				for j := range m {
					h, ok := flowHash(frames[base+j])
					if !ok {
						h = 0
					}
					hs[j] = h
					hint[j], hHash[j] = nil, 0
					if h != 0 {
						hint[j], hHash[j], _ = c.flows.probeFirst(h)
					}
				}
				for j := range m {
					i := base + j
					if err := c.ingest(ts[i], frames[i], hs[j], hint[j], hHash[j]); err != nil {
						if be == nil {
							be = &BatchError{Index: i, Err: err}
						}
						be.Failed++
					}
				}
			}
		} else {
			for i := 0; i < n; i++ {
				if err := c.ingest(ts[i], frames[i], 0, nil, 0); err != nil {
					if be == nil {
						be = &BatchError{Index: i, Err: err}
					}
					be.Failed++
				}
			}
		}
	} else {
		// The slow path goes through Ingest, which fires BatchEnd itself.
		for i := 0; i < n; i++ {
			if err := c.Ingest(ts[i], frames[i]); err != nil {
				if be == nil {
					be = &BatchError{Index: i, Err: err}
				}
				be.Failed++
			}
		}
	}
	if mono && c.sinkBatch != nil {
		c.sinkBatch.BatchEnd(c.now)
	}
	if be != nil {
		return be
	}
	return nil
}

// ingest is the hot path shared by Ingest and IngestBatch: the
// timestamp has been validated and the sample counted by the caller.
// h is the precomputed flow hash (0 = compute here). hint, when
// non-nil, is a candidate record from a batch prefetch pass (with
// hintHash its cached slot hash); it is fully re-verified before use,
// so a wrong or stale hint costs only the comparison. Hints are only
// sound while the record cannot be removed — IngestBatch's chunk-local
// prefetch satisfies this because expiry never runs mid-batch and
// records never move.
func (c *Collector) ingest(t units.Time, frame []byte, h uint64, hint *FlowState, hintHash uint64) error {
	c.now = t
	if c.ring != nil {
		c.ring.Push(t, frame)
	}
	timed := c.met.timed
	var start, t0 int64
	if timed {
		start = obs.Nanos()
		t0 = start
	}
	// The fast lane handles the dominant frame shape in one flat pass;
	// everything else (ARP, UDP, options, truncation, errors) takes the
	// full per-layer decoder, which produces identical results.
	if !c.dec.DecodeTCPFast(frame) {
		if err := c.dec.Decode(frame); err != nil {
			if timed {
				now := obs.Nanos()
				c.met.stageDecode.Observe(now - t0)
				c.met.ingest.Observe(now - start)
			}
			// ARP and other non-IP traffic still lands in the ring; it just
			// carries no sequence stream to estimate from.
			if c.dec.Has(packet.LayerARP) {
				c.met.nonTCP.IncRelaxed()
				return nil
			}
			c.met.decodeErrors.IncRelaxed()
			return err
		}
	}
	if timed {
		now := obs.Nanos()
		c.met.stageDecode.Observe(now - t0)
		t0 = now
	}
	if !c.dec.Has(packet.LayerTCP) {
		c.met.nonTCP.IncRelaxed()
		if c.cfg.UDPSeqEnabled && c.dec.Has(packet.LayerUDP) {
			c.ingestUDP(t, frame, h)
		}
		if timed {
			c.met.ingest.Observe(obs.Nanos() - start)
		}
		return nil
	}
	// Probe scalars. The src‖dst word loads from the frame, not a key
	// copy: the frame bytes are read-only and cache-hot after Decode, so
	// the load never stalls on store forwarding (a freshly assembled
	// FlowKey read back word-wide does — see packet.FlowKey).
	// NativeEndian to match keyFirstWord's in-memory read of the same
	// bytes in the resident record.
	a := binary.NativeEndian.Uint64(frame[packet.EthernetHeaderLen+12 : packet.EthernetHeaderLen+20])
	sp, dp := c.dec.TCP.SrcPort, c.dec.TCP.DstPort
	if h == 0 {
		// Equivalent to HashFlowKey of the 5-tuple, spelled out because
		// that call exceeds the inlining budget while mixFlowHash fits.
		h = mixFlowHash(a, uint64(sp)<<24|uint64(dp)<<8|uint64(c.dec.IP.Protocol))
	}
	// A batch hint that survives the same verification LookupScalar
	// performs is the record — the probe is already paid for. Otherwise
	// LookupScalar probes without materialising a FlowKey; GetOrInsert
	// (the rare insert) builds one and does not inline.
	var f *FlowState
	inserted := false
	if hint != nil && hintHash == h && keyFirstWord(&hint.Key) == a &&
		hint.Key.SrcPort == sp && hint.Key.DstPort == dp && hint.Key.Proto == c.dec.IP.Protocol {
		f = hint
	} else {
		f = c.flows.LookupScalar(h, a, sp, dp, c.dec.IP.Protocol)
	}
	if f == nil {
		f, inserted = c.flows.GetOrInsert(h, packet.FlowKey{
			SrcIP: c.dec.IP.Src, DstIP: c.dec.IP.Dst,
			SrcPort: sp, DstPort: dp,
			Proto: c.dec.IP.Protocol,
		})
	}
	if inserted {
		f.FirstSeen = t
		f.outPort = -1
		f.routeEpoch = 0
		f.Est.MinGap = c.cfg.MinGap
		f.Est.MaxBurst = c.cfg.MaxBurst
		if c.cfg.TrackRetransmits {
			f.Rtx = &RetransmitEstimator{}
		}
		c.met.flowTableSize.Set(int64(c.flows.Len()))
	}
	f.LastSeen = t
	f.SampledPackets++
	f.SampledBytes += int64(c.dec.WireLen)

	if f.DstMAC != c.dec.Eth.Dst || f.outPort < 0 || f.routeEpoch != c.routeEpoch {
		f.DstMAC = c.dec.Eth.Dst
		// Without routing state remapFlowAt is a no-op (the flow stays
		// unmapped at outPort -1), so routeless collectors — including
		// every per-shard sub-collector, which defers routing to the
		// merger — skip the call.
		if c.mapper != nil {
			c.remapFlowAt(t, f)
		}
	}
	if timed {
		now := obs.Nanos()
		c.met.stageFlowTable.Observe(now - t0)
		t0 = now
	}

	if len(c.boundary) > 0 {
		flags := c.dec.TCP.Flags
		if flags&packet.TCPSyn != 0 && flags&packet.TCPAck == 0 {
			for _, fn := range c.boundary {
				fn(t, f.Key, FlowStart)
			}
		} else if flags&(packet.TCPFin|packet.TCPRst) != 0 {
			for _, fn := range c.boundary {
				fn(t, f.Key, FlowEnd)
			}
		}
	}

	// Sequence-based estimation uses the left edge of the segment's
	// payload; pure ACKs advance nothing and naturally estimate ~0.
	oooBefore := f.Est.OOO
	updated := f.Est.Observe(t, c.dec.TCP.Seq)
	if f.Rtx != nil {
		f.Rtx.Observe(t, c.dec.PayloadLen, f.Est.OOO > oooBefore, f.Est.StreamBytes())
	}
	if f.Est.OOO > oooBefore {
		c.met.outOfOrder.IncRelaxed()
	}
	if timed {
		c.met.stageEstimate.Observe(obs.Nanos() - t0)
	}
	if updated {
		c.met.rateUpdates.IncRelaxed()
		c.checkCongestion(t, f)
	}
	if c.cfg.Sink != nil {
		c.sinkReport(t, f, updated)
	}
	if timed {
		c.met.ingest.Observe(obs.Nanos() - start)
	}
	return nil
}

// sinkReport fills the scratch FlowReport from f and hands it to the
// configured sink. Kept out of ingest so the sink-less hot path pays
// only the nil check.
func (c *Collector) sinkReport(t units.Time, f *FlowState, rateUpdated bool) {
	rep := &c.sinkRep
	rep.Time = t
	rep.Key = f.Key
	rep.DstMAC = f.DstMAC
	rep.OutPort = f.outPort
	rep.Epoch = f.routeEpoch
	rep.Rate, rep.RateOK = f.Rate()
	rep.RateUpdated = rateUpdated
	c.cfg.Sink.Report(rep)
}

// ingestUDP estimates UDP flow throughput from an application-level
// packet counter embedded in the payload (§3.2.2's generalization).
// h is the precomputed flow hash (0 = compute here).
func (c *Collector) ingestUDP(t units.Time, frame []byte, h uint64) {
	off := packet.EthernetHeaderLen + c.dec.IP.HeaderLen() + packet.UDPHeaderLen + c.cfg.UDPSeqOffset
	if off < 0 || off+4 > len(frame) {
		// A negative offset can only come from a mis-set UDPSeqOffset, but
		// it must degrade to "no counter", not an out-of-range panic.
		return
	}
	seq := uint32(frame[off])<<24 | uint32(frame[off+1])<<16 |
		uint32(frame[off+2])<<8 | uint32(frame[off+3])
	key, ok := c.dec.Flow()
	if !ok {
		return
	}
	if h == 0 {
		h = HashFlowKey(key)
	}
	f, inserted := c.flows.GetOrInsert(h, key)
	if inserted {
		f.FirstSeen = t
		f.outPort = -1
		f.routeEpoch = 0
		f.Pkt = NewPacketSeqEstimator()
		f.Pkt.Est.MinGap = c.cfg.MinGap
		f.Pkt.Est.MaxBurst = c.cfg.MaxBurst
		c.met.flowTableSize.Set(int64(c.flows.Len()))
	}
	if f.Pkt == nil {
		f.Pkt = NewPacketSeqEstimator()
	}
	f.LastSeen = t
	f.SampledPackets++
	f.SampledBytes += int64(c.dec.WireLen)
	if f.DstMAC != c.dec.Eth.Dst || f.outPort < 0 || f.routeEpoch != c.routeEpoch {
		f.DstMAC = c.dec.Eth.Dst
		// Without routing state remapFlowAt is a no-op (the flow stays
		// unmapped at outPort -1), so routeless collectors — including
		// every per-shard sub-collector, which defers routing to the
		// merger — skip the call.
		if c.mapper != nil {
			c.remapFlowAt(t, f)
		}
	}
	updated := f.Pkt.Observe(t, seq, c.dec.WireLen)
	if updated {
		c.met.rateUpdates.IncRelaxed()
		c.checkCongestion(t, f)
	}
	if c.cfg.Sink != nil {
		c.sinkReport(t, f, updated)
	}
}

// remapFlowAt re-resolves the flow's egress port after a label change,
// an unknown port, or a routing-epoch change, attributing the flow to
// the routing state live at time t. A sample timestamped before the
// current epoch's activation resolves through the resolver's history to
// the older epoch and is stamped with it, so a straddling flow keeps
// charging the pre-reroute link until its samples cross the activation
// time — regardless of where batch boundaries fall.
func (c *Collector) remapFlowAt(t units.Time, f *FlowState) {
	newPort := -1
	if r := c.resolver; r != nil {
		p, epoch, ok := r.ResolveOutput(t, f.Key, f.DstMAC)
		f.routeEpoch = epoch
		if c.cfg.Tracer != nil {
			// Convergence probe: one atomic load inside unless a
			// control-loop span is watching for its re-converged route.
			c.cfg.Tracer.NoteResolve(t, f.Key, f.DstMAC, epoch)
		}
		if ok {
			newPort = p
		} else {
			c.met.unmapped.IncRelaxed()
		}
	} else if c.mapper != nil {
		f.routeEpoch = c.routeEpoch
		if p, ok := c.mapper.OutputPort(f.DstMAC); ok {
			newPort = p
		} else {
			c.met.unmapped.IncRelaxed()
		}
	}
	if newPort == f.outPort {
		return
	}
	if f.outPort >= 0 && f.outPort < len(c.portFlows) {
		c.portFlows[f.outPort] = removeFlow(c.portFlows[f.outPort], f)
	}
	f.outPort = newPort
	if newPort >= 0 && newPort < len(c.portFlows) {
		c.portFlows[newPort] = append(c.portFlows[newPort], f)
	}
}

func removeFlow(s []*FlowState, f *FlowState) []*FlowState {
	for i, x := range s {
		if x == f {
			s[i] = s[len(s)-1]
			return s[:len(s)-1]
		}
	}
	return s
}

// checkCongestion recomputes the utilization of f's egress link and emits
// an event if it crossed the threshold and the link is out of cooldown.
func (c *Collector) checkCongestion(t units.Time, f *FlowState) {
	p := f.outPort
	if p < 0 || p >= len(c.portFlows) || len(c.subs) == 0 {
		return
	}
	timed := c.met.timed
	var t0 int64
	if timed {
		t0 = obs.Nanos()
	}
	util := c.LinkUtilization(p)
	if timed {
		now := obs.Nanos()
		c.met.stageUtil.Observe(now - t0)
		t0 = now
	}
	if float64(util) < c.cfg.UtilThreshold*float64(c.cfg.LinkRate) {
		return
	}
	if t.Sub(c.lastEvent[p]) < c.cfg.EventCooldown {
		return
	}
	c.lastEvent[p] = t
	ev := CongestionEvent{
		Time:       t,
		SwitchName: c.cfg.SwitchName,
		Port:       p,
		Util:       util,
		Capacity:   c.cfg.LinkRate,
		Flows:      c.FlowsOnPort(p),
		Epoch:      f.routeEpoch,
		Vantage:    c.cfg.Vantage,
	}
	if tr := c.cfg.Tracer; tr != nil {
		// The trace is born here: stamped with the triggering flow's
		// resolving epoch; the capture timestamp is back-dated by the
		// capture stack's StampCapture after the batch.
		ev.ID = tr.NextID()
		tr.Begin(ev.ID, t, c.cfg.SwitchName, p, f.routeEpoch, util, c.cfg.LinkRate)
	}
	c.met.events.IncRelaxed()
	for _, fn := range c.subs {
		fn(ev)
	}
	if timed {
		c.met.stageDispatch.Observe(obs.Nanos() - t0)
	}
}

// CooldownSnapshot returns the last congestion-event time per port,
// omitting ports that never fired. A supervisor captures this after
// every delivered event so that a replacement collector can be seeded
// with RestoreCooldowns and not re-fire events the controller has
// already acted on.
//
// The returned map is an internal scratch reused by the next
// CooldownSnapshot call on this collector — copy it (or use
// CooldownSnapshotInto with your own map) to retain it across calls.
func (c *Collector) CooldownSnapshot() map[int]units.Time {
	c.cooldownScratch = c.CooldownSnapshotInto(c.cooldownScratch)
	return c.cooldownScratch
}

// CooldownSnapshotInto is CooldownSnapshot writing into dst (cleared
// first), so periodic snapshotters stop allocating a map per call. A
// nil dst allocates one. Returns dst.
func (c *Collector) CooldownSnapshotInto(dst map[int]units.Time) map[int]units.Time {
	if dst == nil {
		dst = make(map[int]units.Time, len(c.lastEvent))
	} else {
		clear(dst)
	}
	for p, t := range c.lastEvent {
		if t > -1<<62 {
			dst[p] = t
		}
	}
	return dst
}

// RestoreCooldowns seeds per-port event cooldowns from a snapshot taken
// on a previous incarnation of this collector. For each port the later
// of the current and restored time wins, so restoring is idempotent and
// never un-fires a cooldown. Call it before the first Ingest of a
// restarted collector: replayed or re-synced samples that would re-fire
// an event inside EventCooldown of the snapshot are then suppressed.
func (c *Collector) RestoreCooldowns(snap map[int]units.Time) {
	for p, t := range snap {
		if p >= 0 && p < len(c.lastEvent) && t > c.lastEvent[p] {
			c.lastEvent[p] = t
		}
	}
}

// LinkUtilization sums the fresh flow-rate estimates mapped to egress
// port p (§3.2.2: "the controller sums the throughput of all flows
// traversing a given link").
func (c *Collector) LinkUtilization(p int) units.Rate {
	if p < 0 || p >= len(c.portFlows) {
		return 0
	}
	var util units.Rate
	for _, f := range c.portFlows[p] {
		if c.now.Sub(f.LastSeen) > c.cfg.FlowFreshness {
			continue
		}
		if r, ok := f.Rate(); ok {
			util += r
		}
	}
	return util
}

// FlowsOnPort snapshots the fresh flows mapped to egress port p.
func (c *Collector) FlowsOnPort(p int) []FlowInfo {
	if p < 0 || p >= len(c.portFlows) {
		return nil
	}
	out := make([]FlowInfo, 0, len(c.portFlows[p]))
	for _, f := range c.portFlows[p] {
		if c.now.Sub(f.LastSeen) > c.cfg.FlowFreshness {
			continue
		}
		r, _ := f.Rate()
		out = append(out, FlowInfo{Key: f.Key, DstMAC: f.DstMAC, Rate: r, OutPort: p})
	}
	return out
}

// FlowRate answers the per-flow query API.
func (c *Collector) FlowRate(k packet.FlowKey) (units.Rate, bool) {
	f := c.flows.Lookup(HashFlowKey(k), k)
	if f == nil {
		return 0, false
	}
	return f.Rate()
}

// Flow returns the full flow record for k, or nil. The record is owned
// by the flow table: it is recycled when the flow expires, so do not
// retain the pointer across ExpireFlows.
func (c *Collector) Flow(k packet.FlowKey) *FlowState {
	return c.flows.Lookup(HashFlowKey(k), k)
}

// Flows iterates over all flow records.
func (c *Collector) Flows(fn func(f *FlowState)) { c.flows.Iterate(fn) }

// FlowTableProbeStats reports the flow table's current mean and
// maximum lookup probe length — an on-demand health check.
func (c *Collector) FlowTableProbeStats() (mean float64, max int) {
	return c.flows.ProbeStats()
}

// ExpireFlows drops flow records idle longer than idle, returning how
// many were removed. Expired records are recycled — pointers obtained
// from Flow/Flows before the call are invalid after it. Call
// periodically from the hosting process.
func (c *Collector) ExpireFlows(now units.Time, idle units.Duration) int {
	n := 0
	c.flows.Iterate(func(f *FlowState) {
		if now.Sub(f.LastSeen) > idle {
			if f.outPort >= 0 && f.outPort < len(c.portFlows) {
				c.portFlows[f.outPort] = removeFlow(c.portFlows[f.outPort], f)
			}
			c.flows.Remove(f)
			n++
		}
	})
	if n > 0 {
		c.met.flowTableSize.Set(int64(c.flows.Len()))
	}
	return n
}

// DumpPcap writes the vantage-point ring to w as a pcap file (§6.1).
func (c *Collector) DumpPcap(w io.Writer) error {
	if c.ring == nil {
		return fmt.Errorf("core: collector %q has no sample ring", c.cfg.SwitchName)
	}
	return c.ring.WritePcap(w)
}

// Ring exposes the vantage-point buffer (nil when disabled).
func (c *Collector) RingBuffer() *Ring { return c.ring }
