package core

import (
	"fmt"
	"sort"
	"strings"

	"planck/internal/packet"
	"planck/internal/units"
)

// Vantage-point trace analysis — the §6.1 future-work item: "provide
// options to infer missed packets for TCP to provide more complete
// traces". A sampled trace has holes wherever the oversubscribed mirror
// dropped copies; for TCP the sequence numbers say exactly how many bytes
// each hole hides, so the analysis reconstructs per-flow completeness
// without any knowledge of the sampling rate.

// FlowTraceReport summarizes one flow's coverage in a sampled trace.
type FlowTraceReport struct {
	Key packet.FlowKey

	First, Last units.Time

	// SampledPackets and SampledPayload are what the trace contains.
	SampledPackets int64
	SampledPayload int64

	// StreamPayload is the payload span the sequence numbers prove the
	// flow transferred between the first and last sample.
	StreamPayload int64

	// MissedPayload = StreamPayload - SampledPayload: bytes the mirror
	// dropped between samples.
	MissedPayload int64

	// Gaps counts maximal runs of missing payload (adjacent-sample holes).
	Gaps int64
	// LargestGap is the biggest single hole in bytes.
	LargestGap int64
}

// Completeness returns the fraction of stream payload present in the
// trace (1 for a full capture).
func (r *FlowTraceReport) Completeness() float64 {
	if r.StreamPayload <= 0 {
		return 1
	}
	c := float64(r.SampledPayload) / float64(r.StreamPayload)
	if c > 1 {
		return 1
	}
	return c
}

// traceScan is the per-flow state of an AnalyzeTrace pass.
type traceScan struct {
	rep     FlowTraceReport
	started bool
	lastOff int64 // stream offset past the last sampled payload byte
	baseSeq uint32
}

// TraceAnalyzer reconstructs per-flow coverage from a sampled frame
// stream (typically a vantage ring or a replayed pcap).
type TraceAnalyzer struct {
	dec   packet.Decoded
	flows map[packet.FlowKey]*traceScan
}

// NewTraceAnalyzer creates an analyzer.
func NewTraceAnalyzer() *TraceAnalyzer {
	return &TraceAnalyzer{flows: make(map[packet.FlowKey]*traceScan)}
}

// Observe folds in one captured frame.
func (a *TraceAnalyzer) Observe(t units.Time, frame []byte) {
	if err := a.dec.Decode(frame); err != nil || !a.dec.Has(packet.LayerTCP) {
		return
	}
	if a.dec.PayloadLen == 0 {
		return // pure ACKs carry no stream bytes
	}
	key, _ := a.dec.Flow()
	s := a.flows[key]
	if s == nil {
		s = &traceScan{}
		s.rep.Key = key
		a.flows[key] = s
	}
	r := &s.rep
	r.SampledPackets++
	r.SampledPayload += int64(a.dec.PayloadLen)
	r.Last = t

	seq := a.dec.TCP.Seq
	if !s.started {
		s.started = true
		s.baseSeq = seq
		s.lastOff = int64(a.dec.PayloadLen)
		r.First = t
		r.StreamPayload = int64(a.dec.PayloadLen)
		return
	}
	off := s.lastOff + int64(int32(seq-(s.baseSeq+uint32(uint64(s.lastOff)))))
	if off < s.lastOff {
		// Regression: retransmission or reordering; its payload was
		// already accounted (or is a duplicate) — don't extend the stream.
		return
	}
	if gap := off - s.lastOff; gap > 0 {
		r.Gaps++
		r.MissedPayload += gap
		if gap > r.LargestGap {
			r.LargestGap = gap
		}
	}
	s.lastOff = off + int64(a.dec.PayloadLen)
	r.StreamPayload = s.lastOff
}

// Reports returns the per-flow reports sorted by missed payload,
// largest first.
func (a *TraceAnalyzer) Reports() []FlowTraceReport {
	out := make([]FlowTraceReport, 0, len(a.flows))
	for _, s := range a.flows {
		out = append(out, s.rep)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].MissedPayload != out[j].MissedPayload {
			return out[i].MissedPayload > out[j].MissedPayload
		}
		return out[i].Key.String() < out[j].Key.String()
	})
	return out
}

// AnalyzeRing runs gap inference over a collector's vantage ring.
func AnalyzeRing(r *Ring) ([]FlowTraceReport, error) {
	if r == nil {
		return nil, fmt.Errorf("core: no ring to analyze")
	}
	a := NewTraceAnalyzer()
	err := r.Each(func(t units.Time, _ int, frame []byte) error {
		a.Observe(t, frame)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return a.Reports(), nil
}

// FormatReports renders the analysis for humans.
func FormatReports(reports []FlowTraceReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-45s %9s %12s %12s %6s %9s\n",
		"flow", "samples", "sampled", "inferred", "gaps", "complete")
	for _, r := range reports {
		fmt.Fprintf(&b, "%-45s %9d %12s %12s %6d %8.1f%%\n",
			r.Key.String(), r.SampledPackets,
			units.BytesString(r.SampledPayload), units.BytesString(r.StreamPayload),
			r.Gaps, r.Completeness()*100)
	}
	return b.String()
}
