package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"planck/internal/packet"
	"planck/internal/units"
)

// --- serial-equivalence harness ---
//
// The sharded pipeline's contract is that it computes exactly what the
// serial Collector computes. This file checks the contract at the unit
// level over an adversarial synthetic stream (flow skew, reroutes,
// boundaries, UDP counters, decode garbage, mid-stream expiry and
// mapper swaps); the lab-level oracle (internal/lab) re-checks it over
// tcpsim/switchsim-generated traffic.

type timedFrame struct {
	t units.Time
	b []byte
}

// mixedStream generates a deterministic adversarial sample stream:
// TCP flows of very different intensities across several egress ports
// (including an unmappable destination), reroute label changes,
// SYN/FIN boundary packets, occasional sequence regressions, UDP flows
// with and without the §3.2.2 payload counter, ARP, and truncated
// garbage.
func mixedStream(seed int64, n int) []timedFrame {
	rng := rand.New(rand.NewSource(seed))
	macC := packet.MAC{0x02, 0, 0, 0, 0, 3}
	macUnmapped := packet.MAC{0x02, 0, 0, 0, 0, 9}
	shadow := packet.MAC{0x02, 1, 0, 0, 0, 2}

	type flow struct {
		src, dst uint16
		mac      packet.MAC
		seq      uint32
		bytesPer uint32
		weight   int
	}
	flows := make([]*flow, 0, 10)
	macs := []packet.MAC{macB, macC, shadow, macUnmapped}
	for i := 0; i < 10; i++ {
		flows = append(flows, &flow{
			src: uint16(1000 + i), dst: 2000,
			mac:      macs[i%len(macs)],
			seq:      rng.Uint32(),
			bytesPer: 1460,
			weight:   1 + rng.Intn(8), // skewed sampling intensity
		})
	}

	var udpSeq uint32
	var t units.Time
	out := make([]timedFrame, 0, n)
	emit := func(b []byte) {
		cp := append([]byte(nil), b...)
		out = append(out, timedFrame{t: t, b: cp})
		t = t.Add(units.Duration(rng.Int63n(int64(3 * units.Microsecond))))
	}

	// Open every flow with a SYN so FlowStart boundaries exist.
	for _, f := range flows {
		emit(packet.BuildTCP(nil, packet.TCPSpec{
			SrcMAC: macA, DstMAC: f.mac, SrcIP: ipA, DstIP: ipB,
			SrcPort: f.src, DstPort: f.dst, Seq: f.seq, Flags: packet.TCPSyn,
		}))
	}

	for len(out) < n {
		switch r := rng.Intn(100); {
		case r < 72: // weighted TCP data sample
			f := flows[rng.Intn(len(flows))]
			for w := 0; w < f.weight && len(out) < n; w++ {
				seq := f.seq
				if rng.Intn(50) == 0 {
					seq -= 3 * f.bytesPer // retransmission: sequence regression
				} else {
					f.seq += f.bytesPer
				}
				emit(packet.BuildTCP(nil, packet.TCPSpec{
					SrcMAC: macA, DstMAC: f.mac, SrcIP: ipA, DstIP: ipB,
					SrcPort: f.src, DstPort: f.dst, Seq: seq,
					Flags: packet.TCPAck, PayloadLen: int(f.bytesPer),
				}))
			}
		case r < 78: // reroute: same 5-tuple, new routing label
			f := flows[rng.Intn(len(flows))]
			f.mac = macs[rng.Intn(len(macs))]
		case r < 82: // FIN, then reopen with a SYN later
			f := flows[rng.Intn(len(flows))]
			emit(packet.BuildTCP(nil, packet.TCPSpec{
				SrcMAC: macA, DstMAC: f.mac, SrcIP: ipA, DstIP: ipB,
				SrcPort: f.src, DstPort: f.dst, Seq: f.seq,
				Flags: packet.TCPFin | packet.TCPAck,
			}))
		case r < 88: // UDP with the §3.2.2 payload counter
			udpSeq++
			emit(packet.BuildUDP(nil, packet.UDPSpec{
				SrcMAC: macA, DstMAC: macC, SrcIP: ipA, DstIP: ipB,
				SrcPort: 4000, DstPort: 4001, PayloadLen: 400,
				Seq: udpSeq, HasSeq: true,
			}))
		case r < 92: // UDP too short to carry the counter
			emit(packet.BuildUDP(nil, packet.UDPSpec{
				SrcMAC: macA, DstMAC: macC, SrcIP: ipA, DstIP: ipB,
				SrcPort: 4000, DstPort: 4002, PayloadLen: 2,
			}))
		case r < 96: // ARP
			emit(packet.BuildARP(nil, packet.ARPSpec{
				SrcMAC: macA, DstMAC: macB, Op: packet.ARPRequest,
				SenderMAC: macA, SenderIP: ipA, TargetIP: ipB,
			}))
		default: // truncated garbage: decode must fail, never panic
			full := packet.BuildTCP(nil, packet.TCPSpec{
				SrcMAC: macA, DstMAC: macB, SrcIP: ipA, DstIP: ipB,
				SrcPort: 9, DstPort: 9, PayloadLen: 64,
			})
			emit(full[:rng.Intn(len(full))])
		}
	}
	return out[:n]
}

type boundaryRec struct {
	t    units.Time
	key  packet.FlowKey
	kind BoundaryKind
}

// runResult captures everything observable from one collector run.
type runResult struct {
	stats  Stats
	utils  []units.Rate
	rates  map[packet.FlowKey]units.Rate
	events []CongestionEvent
	bounds []boundaryRec
}

func keyString(k packet.FlowKey) string { return fmt.Sprintf("%+v", k) }

func normalizeEvents(evs []CongestionEvent) {
	for i := range evs {
		fl := evs[i].Flows
		sort.Slice(fl, func(a, b int) bool { return keyString(fl[a].Key) < keyString(fl[b].Key) })
	}
}

// equivCollector abstracts the serial and sharded pipelines behind the
// operations the equivalence stream performs.
type equivCollector interface {
	Ingest(t units.Time, frame []byte) error
	IngestBatch(ts []units.Time, frames [][]byte) error
	Subscribe(fn func(ev CongestionEvent))
	SubscribeFlowBoundaries(fn func(t units.Time, key packet.FlowKey, kind BoundaryKind))
	SetPortMapper(m PortMapper)
	ExpireFlows(now units.Time, idle units.Duration) int
	LinkUtilization(p int) units.Rate
	FlowRate(k packet.FlowKey) (units.Rate, bool)
	Stats() Stats
}

func equivConfig() Config {
	return Config{
		SwitchName: "sw0",
		NumPorts:   4,
		// 1 Gbps links so the skewed TCP flows cross the 90% threshold
		// regularly and the event/cooldown path is exercised hard.
		LinkRate: units.Rate(1_000_000_000),
	}
}

// runEquiv replays stream through col with a mid-stream expiry and a
// mid-stream PortMapper swap, then snapshots all observable state.
// flush is called at quiescence points (no-op for the serial path).
func runEquiv(t *testing.T, col equivCollector, stream []timedFrame, flush func()) runResult {
	t.Helper()
	res := runResult{rates: make(map[packet.FlowKey]units.Rate)}
	col.Subscribe(func(ev CongestionEvent) { res.events = append(res.events, ev) })
	col.SubscribeFlowBoundaries(func(bt units.Time, key packet.FlowKey, kind BoundaryKind) {
		res.bounds = append(res.bounds, boundaryRec{t: bt, key: key, kind: kind})
	})
	mapper1 := staticMapper{
		macB.U64():                            2,
		packet.MAC{0x02, 0, 0, 0, 0, 3}.U64(): 1,
		packet.MAC{0x02, 1, 0, 0, 0, 2}.U64(): 3,
	}
	mapper2 := staticMapper{ // reroute wave: ports shuffle, shadow goes dark
		macB.U64():                            0,
		packet.MAC{0x02, 0, 0, 0, 0, 3}.U64(): 2,
	}
	col.SetPortMapper(mapper1)
	for i, tf := range stream {
		if err := col.Ingest(tf.t, tf.b); err != nil {
			// Decode errors are counted, not returned, by both pipelines;
			// the serial path returns them. Either way the stream goes on.
			_ = err
		}
		if i == len(stream)/2 {
			col.ExpireFlows(tf.t, 500*units.Microsecond)
		}
		if i == len(stream)*3/4 {
			flush()
			col.SetPortMapper(mapper2)
		}
	}
	flush()
	res.stats = col.Stats()
	for p := 0; p < 4; p++ {
		res.utils = append(res.utils, col.LinkUtilization(p))
	}
	var dec packet.Decoded
	for _, tf := range stream {
		if dec.Decode(tf.b) == nil {
			if key, ok := dec.Flow(); ok {
				if r, ok := col.FlowRate(key); ok {
					res.rates[key] = r
				}
			}
		}
	}
	normalizeEvents(res.events)
	return res
}

func compareRuns(t *testing.T, label string, serial, sharded runResult) {
	t.Helper()
	if serial.stats != sharded.stats {
		t.Errorf("%s: stats differ\n serial:  %+v\n sharded: %+v", label, serial.stats, sharded.stats)
	}
	for p := range serial.utils {
		if serial.utils[p] != sharded.utils[p] {
			t.Errorf("%s: port %d utilization %v != %v", label, p, serial.utils[p], sharded.utils[p])
		}
	}
	if len(serial.rates) != len(sharded.rates) {
		t.Errorf("%s: tracked flows %d != %d", label, len(serial.rates), len(sharded.rates))
	}
	for k, r := range serial.rates {
		if sr, ok := sharded.rates[k]; !ok || sr != r {
			t.Errorf("%s: flow %v rate %v != %v (ok=%v)", label, k, r, sr, ok)
		}
	}
	if len(serial.bounds) != len(sharded.bounds) {
		t.Fatalf("%s: boundary count %d != %d", label, len(serial.bounds), len(sharded.bounds))
	}
	for i := range serial.bounds {
		if serial.bounds[i] != sharded.bounds[i] {
			t.Errorf("%s: boundary %d: %+v != %+v", label, i, serial.bounds[i], sharded.bounds[i])
		}
	}
	if len(serial.events) != len(sharded.events) {
		t.Fatalf("%s: event count %d != %d", label, len(serial.events), len(sharded.events))
	}
	for i := range serial.events {
		a, b := serial.events[i], sharded.events[i]
		if a.Time != b.Time || a.Port != b.Port || a.Util != b.Util ||
			a.Capacity != b.Capacity || a.SwitchName != b.SwitchName {
			t.Errorf("%s: event %d differs\n serial:  %+v\n sharded: %+v", label, i, a, b)
			continue
		}
		if len(a.Flows) != len(b.Flows) {
			t.Errorf("%s: event %d flow count %d != %d", label, i, len(a.Flows), len(b.Flows))
			continue
		}
		for j := range a.Flows {
			if a.Flows[j] != b.Flows[j] {
				t.Errorf("%s: event %d flow %d: %+v != %+v", label, i, j, a.Flows[j], b.Flows[j])
			}
		}
	}
}

func TestShardedSerialEquivalence(t *testing.T) {
	const samples = 12000
	for _, seed := range []int64{1, 42} {
		stream := mixedStream(seed, samples)
		cfg := equivConfig()
		cfg.UDPSeqEnabled = true
		serialCol := New(cfg)
		serial := runEquiv(t, serialCol, stream, func() {})
		for _, shards := range []int{1, 2, 4, 8} {
			sc := NewSharded(ShardedConfig{Config: cfg, Shards: shards, Batch: 16, Queue: 4})
			got := runEquiv(t, sc, stream, sc.Flush)
			sc.Close()
			compareRuns(t, fmt.Sprintf("seed=%d shards=%d", seed, shards), serial, got)
		}
	}
}

// The dispatcher's hash partition must be stable (a flow's samples may
// never migrate between shards) and in range.
func TestFlowShardStableAndInRange(t *testing.T) {
	sc := NewSharded(ShardedConfig{Config: equivConfig(), Shards: 4})
	defer sc.Close()
	seen := make(map[string]int)
	for i := 0; i < 200; i++ {
		f := packet.BuildTCP(nil, packet.TCPSpec{
			SrcMAC: macA, DstMAC: macB, SrcIP: ipA, DstIP: ipB,
			SrcPort: uint16(1000 + i%10), DstPort: 2000,
			Seq: uint32(i * 1460), Flags: packet.TCPAck, PayloadLen: 1460,
		})
		sh, h := sc.flowShard(f)
		if sh < 0 || sh >= 4 {
			t.Fatalf("shard %d out of range", sh)
		}
		if h == 0 {
			t.Fatal("transport frame got no dispatch hash")
		}
		k := fmt.Sprintf("p%d", 1000+i%10)
		if prev, ok := seen[k]; ok && prev != sh {
			t.Fatalf("flow %s migrated shard %d -> %d", k, prev, sh)
		}
		seen[k] = sh
	}
	// Frames without a transport flow all go to one stable shard, with
	// no hash (nothing downstream may probe with it).
	arp := packet.BuildARP(nil, packet.ARPSpec{SrcMAC: macA, DstMAC: macB, Op: packet.ARPRequest})
	if sh, h := sc.flowShard(arp); sh != 0 || h != 0 {
		t.Fatal("non-flow frames not pinned to shard 0")
	}
	if sh, h := sc.flowShard(arp[:3]); sh != 0 || h != 0 {
		t.Fatal("truncated frames not pinned to shard 0")
	}
}

// TestFlowShardDispersesCorrelatedFlows pins the avalanche finalizer:
// flow populations whose 5-tuples differ only in correlated low bytes
// (sequential source ports AND sequential destination addresses — the
// shape a scan, a load balancer, or a bench harness produces) must
// spread across shards. Raw FNV-1a mod 4 sends every such flow to ONE
// shard: each xor-then-odd-multiply step leaves the hash's low k bits a
// function of the inputs' low k bits, and the two correlated byte
// injections cancel mod 4.
func TestFlowShardDispersesCorrelatedFlows(t *testing.T) {
	sc := NewSharded(ShardedConfig{Config: equivConfig(), Shards: 4})
	defer sc.Close()
	counts := make([]int, 4)
	const flows = 64
	for i := 0; i < flows; i++ {
		f := packet.BuildTCP(nil, packet.TCPSpec{
			SrcMAC: macA, DstMAC: macB, SrcIP: ipA,
			DstIP:   packet.IPv4{10, 0, 1, byte(i)},
			SrcPort: uint16(1000 + i), DstPort: 2000,
			Flags: packet.TCPAck, PayloadLen: 1460,
		})
		sh, _ := sc.flowShard(f)
		counts[sh]++
	}
	busiest, used := 0, 0
	for _, c := range counts {
		if c > 0 {
			used++
		}
		if c > busiest {
			busiest = c
		}
	}
	if used < 3 || busiest > flows/2 {
		t.Fatalf("correlated flows collapse: per-shard counts %v", counts)
	}
}

func TestShardedDropOnFull(t *testing.T) {
	sc := NewSharded(ShardedConfig{
		Config: equivConfig(), Shards: 2, Batch: 4, Queue: 1, DropOnFull: true,
	})
	var t0 units.Time
	var seq uint32
	const total = 50000
	for i := 0; i < total; i++ {
		f := packet.BuildTCP(nil, packet.TCPSpec{
			SrcMAC: macA, DstMAC: macB, SrcIP: ipA, DstIP: ipB,
			SrcPort: uint16(1000 + i%8), DstPort: 2000,
			Seq: seq, Flags: packet.TCPAck, PayloadLen: 1460,
		})
		seq += 1460
		if err := sc.Ingest(t0, f); err != nil {
			t.Fatal(err)
		}
		t0 = t0.Add(units.Duration(100))
	}
	sc.Flush()
	st := sc.Stats()
	if st.Samples+sc.Dropped() != total {
		t.Fatalf("processed %d + dropped %d != %d", st.Samples, sc.Dropped(), total)
	}
	sc.Close()
}

func TestShardedFlushCloseIdempotent(t *testing.T) {
	sc := NewSharded(ShardedConfig{Config: equivConfig(), Shards: 2})
	sc.Ingest(0, tcpFrame(0, 1460))
	sc.Flush()
	sc.Flush()
	if st := sc.Stats(); st.Samples != 1 {
		t.Fatalf("samples %d", st.Samples)
	}
	sc.Close()
	sc.Close() // second Close must be a no-op, not a panic
}

func TestShardedTimestampRegressionRejected(t *testing.T) {
	sc := NewSharded(ShardedConfig{Config: equivConfig(), Shards: 2})
	defer sc.Close()
	sc.Ingest(1000, tcpFrame(0, 100))
	if err := sc.Ingest(500, tcpFrame(1460, 100)); err == nil {
		t.Fatal("backwards timestamp accepted")
	}
}

// The reorder ring is the merger's ordering backbone; exercise its
// wrap-around and growth paths directly with a permuted insert order.
func TestReorderRing(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var o reorder
	const total = 5000
	perm := rng.Perm(total)
	var applied []uint64
	var r outRec
	window := 0
	for i := 0; i < total; {
		// Insert a random-size window out of order, then drain.
		window = 1 + rng.Intn(96)
		end := i + window
		if end > total {
			end = total
		}
		chunk := perm[i:end]
		sort.Slice(chunk, func(a, b int) bool { return chunk[a] < chunk[b] })
		for _, s := range chunk {
			o.insert(&outRec{seq: uint64(s), t: units.Time(s)})
		}
		for o.pop(&r) {
			applied = append(applied, r.seq)
		}
		i = end
	}
	// A permutation window scheme can leave a tail; everything inserted
	// in window order must eventually drain in global order.
	for o.pop(&r) {
		applied = append(applied, r.seq)
	}
	if len(applied) != total {
		t.Fatalf("applied %d of %d", len(applied), total)
	}
	for i, s := range applied {
		if s != uint64(i) {
			t.Fatalf("out of order at %d: %d", i, s)
		}
	}
}

func TestShardedIngestNoAllocSteadyState(t *testing.T) {
	sc := NewSharded(ShardedConfig{Config: equivConfig(), Shards: 2})
	defer sc.Close()
	frame := tcpFrame(0, 1460)
	var t0 units.Time
	var seq uint32
	sc.Ingest(t0, frame)
	sc.Flush()
	allocs := testing.AllocsPerRun(5000, func() {
		t0 = t0.Add(units.Duration(1230))
		seq += 1460
		frame = packet.BuildTCP(frame, packet.TCPSpec{
			SrcMAC: macA, DstMAC: macB, SrcIP: ipA, DstIP: ipB,
			SrcPort: 1000, DstPort: 2000, Seq: seq, Flags: packet.TCPAck, PayloadLen: 1460,
		})
		if err := sc.Ingest(t0, frame); err != nil {
			t.Fatal(err)
		}
	})
	// The dispatcher's hot path (hash, batch append) must not allocate
	// once the batch free-lists are warm. Allow a small budget for the
	// occasional batch-arena regrowth while the pipeline reaches steady
	// state.
	if allocs > 0.2 {
		t.Fatalf("sharded Ingest allocates %.2f per sample", allocs)
	}
}
