package core

import (
	"math"
	"math/rand"
	"testing"

	"planck/internal/packet"
	"planck/internal/units"
)

// TestRetransmitEstimatorRecoversRate: a 9.5 Gbps stream with 2% of
// segments retransmitted, sampled 1-in-8 — the estimator must recover
// the ~190 Mbps retransmission rate despite the unknown sampling.
func TestRetransmitEstimatorRecoversRate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	re := &RetransmitEstimator{}
	base := NewRateEstimator()

	interval := units.Duration(1230) // 9.5 Gbps of 1460B payloads
	var tm units.Time
	var seq uint32
	var sentRtxBytes, totalTime int64
	const n = 400000
	for i := 0; i < n; i++ {
		isRtx := rng.Float64() < 0.02
		s := seq
		if isRtx {
			// Resend an earlier segment.
			s = seq - 1460*uint32(1+rng.Intn(16))
			sentRtxBytes += 1460
		} else {
			seq += 1460
		}
		// 1-in-8 sampling.
		if rng.Intn(8) == 0 {
			before := base.OOO
			base.Observe(tm, s)
			re.Observe(tm, 1460, base.OOO > before, base.StreamBytes())
		}
		tm = tm.Add(interval)
	}
	totalTime = int64(tm)

	p, ok := re.SamplingProbability()
	if !ok {
		t.Fatal("no sampling estimate")
	}
	if p < 0.10 || p > 0.15 {
		t.Fatalf("sampling probability %.3f, want ≈0.125", p)
	}
	got, ok := re.Rate()
	if !ok {
		t.Fatal("no rtx rate")
	}
	want := units.Rate(float64(sentRtxBytes) * 8 / (float64(totalTime) / 1e9))
	ratio := float64(got) / float64(want)
	// The estimate is a lower bound: at 1-in-8 sampling, retransmissions
	// closer to the head than the ~8-packet sampling lag are invisible
	// (see the RetransmitEstimator doc). With rtx distances of 1–16
	// packets roughly half are detectable.
	if ratio < 0.35 || ratio > 1.2 {
		t.Fatalf("rtx rate %v vs true %v (ratio %.2f)", got, want, ratio)
	}
}

func TestRetransmitEstimatorZeroWhenClean(t *testing.T) {
	re := &RetransmitEstimator{}
	base := NewRateEstimator()
	var tm units.Time
	var seq uint32
	for i := 0; i < 10000; i++ {
		before := base.OOO
		base.Observe(tm, seq)
		re.Observe(tm, 1460, base.OOO > before, base.StreamBytes())
		seq += 1460
		tm = tm.Add(units.Duration(1230))
	}
	got, ok := re.Rate()
	if !ok {
		t.Fatal("no estimate")
	}
	if got != 0 {
		t.Fatalf("clean stream rtx rate %v", got)
	}
}

// TestPacketSeqEstimator: packet-counter sequence numbers scaled by mean
// size recover the byte rate (§3.2.2's non-TCP generalization).
func TestPacketSeqEstimator(t *testing.T) {
	e := NewPacketSeqEstimator()
	// 1 Gbps of 1000-byte payload datagrams (1042B wire), one counter
	// increment per packet.
	interval := units.Rate(1 * units.Gbps).Serialize(1042)
	var tm units.Time
	for i := uint32(0); i < 20000; i++ {
		e.Observe(tm, i, 1042)
		tm = tm.Add(interval)
	}
	r, _, ok := e.Rate()
	if !ok {
		t.Fatal("no estimate")
	}
	// True wire rate: 1042B per interval.
	want := units.RateOf(1042, interval)
	if math.Abs(float64(r-want))/float64(want) > 0.05 {
		t.Fatalf("rate %v want %v", r, want)
	}
	if ms := e.MeanPacketSize(); ms != 1042 {
		t.Fatalf("mean size %v", ms)
	}
}

// TestCollectorUDPSeqFlow runs the UDP path end to end through Ingest.
func TestCollectorUDPSeqFlow(t *testing.T) {
	c := New(Config{
		SwitchName:    "sw0",
		NumPorts:      4,
		LinkRate:      units.Rate10G,
		UDPSeqEnabled: true,
	})
	c.SetPortMapper(staticMapper{macB.U64(): 2})
	interval := units.Rate(2 * units.Gbps).Serialize(1042)
	var tm units.Time
	for i := uint32(0); i < 8000; i++ {
		frame := packet.BuildUDP(nil, packet.UDPSpec{
			SrcMAC: macA, DstMAC: macB, SrcIP: ipA, DstIP: ipB,
			SrcPort: 9000, DstPort: 9001, PayloadLen: 1000,
			Seq: i, HasSeq: true,
		})
		if err := c.Ingest(tm, frame); err != nil {
			t.Fatal(err)
		}
		tm = tm.Add(interval)
	}
	key := packet.FlowKey{SrcIP: ipA, DstIP: ipB, SrcPort: 9000, DstPort: 9001, Proto: packet.IPProtocolUDP}
	r, ok := c.FlowRate(key)
	if !ok {
		t.Fatal("UDP flow not estimated")
	}
	if g := r.Gigabits(); g < 1.7 || g > 2.3 {
		t.Fatalf("UDP rate %.2f Gbps, want ≈2", g)
	}
	// The flow participates in utilization like any other.
	if c.LinkUtilization(2) != r {
		t.Fatalf("util %v != %v", c.LinkUtilization(2), r)
	}
}

// TestCollectorRetransmitTracking exercises TrackRetransmits through
// Ingest with synthetic duplicates.
func TestCollectorRetransmitTracking(t *testing.T) {
	c := New(Config{
		SwitchName: "sw0", NumPorts: 4, LinkRate: units.Rate10G,
		TrackRetransmits: true,
	})
	c.SetPortMapper(staticMapper{macB.U64(): 2})
	var tm units.Time
	var seq uint32
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50000; i++ {
		s := seq
		if rng.Float64() < 0.05 {
			s = seq - 1460*4
		} else {
			seq += 1460
		}
		c.Ingest(tm, tcpFrame(s, 1460))
		tm = tm.Add(units.Duration(1230))
	}
	key := packet.FlowKey{SrcIP: ipA, DstIP: ipB, SrcPort: 1000, DstPort: 2000, Proto: packet.IPProtocolTCP}
	f := c.Flow(key)
	if f == nil {
		t.Fatal("flow missing")
	}
	rr, ok := f.RetransmitRate()
	if !ok {
		t.Fatal("no rtx estimate")
	}
	// ~5% of a 9.5 Gbps stream ≈ 0.45 Gbps.
	if g := rr.Gigabits(); g < 0.2 || g > 0.9 {
		t.Fatalf("rtx rate %.2f Gbps", g)
	}
}

// TestFlowBoundaryEvents: SYN and FIN samples surface as start/end
// events with the right keys (§9.2's flow-boundary visibility).
func TestFlowBoundaryEvents(t *testing.T) {
	c := newTestCollector()
	type ev struct {
		kind BoundaryKind
		at   units.Time
	}
	var events []ev
	c.SubscribeFlowBoundaries(func(at units.Time, key packet.FlowKey, kind BoundaryKind) {
		if key.SrcPort != 1000 {
			t.Fatalf("key %v", key)
		}
		events = append(events, ev{kind, at})
	})

	mk := func(seq uint32, flags uint8, payload int) []byte {
		return packet.BuildTCP(nil, packet.TCPSpec{
			SrcMAC: macA, DstMAC: macB, SrcIP: ipA, DstIP: ipB,
			SrcPort: 1000, DstPort: 2000, Seq: seq, Flags: flags, PayloadLen: payload,
		})
	}
	c.Ingest(0, mk(100, packet.TCPSyn, 0))                       // start
	c.Ingest(1000, mk(101, packet.TCPAck, 1460))                 // data
	c.Ingest(2000, mk(101+1460, packet.TCPAck, 1460))            // data
	c.Ingest(3000, mk(101+2920, packet.TCPFin|packet.TCPAck, 0)) // end
	c.Ingest(4000, mk(101+2921, packet.TCPRst|packet.TCPAck, 0)) // end (RST)

	if len(events) != 3 {
		t.Fatalf("%d boundary events", len(events))
	}
	if events[0].kind != FlowStart || events[0].at != 0 {
		t.Fatalf("first %+v", events[0])
	}
	if events[1].kind != FlowEnd || events[2].kind != FlowEnd {
		t.Fatalf("ends %+v", events[1:])
	}
	// SYN-ACKs are not starts.
	var extra int
	c.SubscribeFlowBoundaries(func(units.Time, packet.FlowKey, BoundaryKind) { extra++ })
	c.Ingest(5000, mk(200, packet.TCPSyn|packet.TCPAck, 0))
	if extra != 0 {
		t.Fatal("SYN-ACK counted as a boundary")
	}
}
