package core

import (
	"errors"
	"testing"

	"planck/internal/packet"
	"planck/internal/units"
)

// batchingEquiv adapts any collector to the equivalence harness so the
// harness's per-sample Ingest stream reaches the collector through
// IngestBatch calls of up to 64 samples. Every harness operation that
// observes or mutates collector state (expiry, mapper swaps, stats,
// queries) flushes the pending batch first, so the batched run sees the
// exact sample/operation interleaving the serial run does — which is
// precisely the claim under test: IngestBatch ≡ an Ingest loop.
type batchingEquiv struct {
	inner  equivCollector
	ts     []units.Time
	frames [][]byte
}

func (b *batchingEquiv) flush() {
	if len(b.ts) == 0 {
		return
	}
	_ = b.inner.IngestBatch(b.ts, b.frames) // per-frame errors are counted by the collector
	b.ts = b.ts[:0]
	b.frames = b.frames[:0]
}

func (b *batchingEquiv) Ingest(t units.Time, frame []byte) error {
	b.ts = append(b.ts, t)
	b.frames = append(b.frames, frame)
	if len(b.ts) >= 64 {
		b.flush()
	}
	return nil
}

func (b *batchingEquiv) IngestBatch(ts []units.Time, frames [][]byte) error {
	b.flush()
	return b.inner.IngestBatch(ts, frames)
}

func (b *batchingEquiv) Subscribe(fn func(ev CongestionEvent)) { b.inner.Subscribe(fn) }
func (b *batchingEquiv) SubscribeFlowBoundaries(fn func(t units.Time, key packet.FlowKey, kind BoundaryKind)) {
	b.inner.SubscribeFlowBoundaries(fn)
}
func (b *batchingEquiv) SetPortMapper(m PortMapper) {
	b.flush()
	b.inner.SetPortMapper(m)
}
func (b *batchingEquiv) ExpireFlows(now units.Time, idle units.Duration) int {
	b.flush()
	return b.inner.ExpireFlows(now, idle)
}
func (b *batchingEquiv) LinkUtilization(p int) units.Rate {
	b.flush()
	return b.inner.LinkUtilization(p)
}
func (b *batchingEquiv) FlowRate(k packet.FlowKey) (units.Rate, bool) {
	b.flush()
	return b.inner.FlowRate(k)
}
func (b *batchingEquiv) Stats() Stats {
	b.flush()
	return b.inner.Stats()
}

// TestIngestBatchSerialEquivalence replays the adversarial stream
// through a per-sample serial collector and a batched serial collector
// and demands bit-for-bit identical observable state — the batched
// sample path must be a pure amortization, never a semantic change.
func TestIngestBatchSerialEquivalence(t *testing.T) {
	const samples = 12000
	for _, seed := range []int64{1, 42} {
		stream := mixedStream(seed, samples)
		serial := runEquiv(t, New(equivConfig()), stream, func() {})
		bc := &batchingEquiv{inner: New(equivConfig())}
		batched := runEquiv(t, bc, stream, bc.flush)
		compareRuns(t, "serial-batched", serial, batched)
	}
}

// TestShardedIngestBatchEquivalence extends the serial-equivalence
// oracle to the batched sharded pipeline across shard counts: batches
// fan out through the dispatcher (sharing one flow hash between the
// partition decision and the shard's table probe) and must still
// reproduce the serial collector exactly.
func TestShardedIngestBatchEquivalence(t *testing.T) {
	const samples = 12000
	for _, seed := range []int64{1, 42} {
		stream := mixedStream(seed, samples)
		serial := runEquiv(t, New(equivConfig()), stream, func() {})
		for _, shards := range []int{1, 2, 4, 8} {
			sc := NewSharded(ShardedConfig{Config: equivConfig(), Shards: shards})
			bc := &batchingEquiv{inner: sc}
			sharded := runEquiv(t, bc, stream, func() {
				bc.flush()
				sc.Flush()
			})
			sc.Close()
			compareRuns(t, "sharded-batched", serial, sharded)
		}
	}
}

// TestIngestBatchNonMonotoneFallback checks the slow path: a batch
// whose timestamps regress must behave exactly like the Ingest loop —
// the regressing frames are rejected and summarized in a *BatchError,
// the rest of the batch still lands.
func TestIngestBatchNonMonotoneFallback(t *testing.T) {
	mk := func(seq uint32) []byte {
		return packet.BuildTCP(nil, packet.TCPSpec{
			SrcMAC: macA, DstMAC: macB, SrcIP: ipA, DstIP: ipB,
			SrcPort: 1000, DstPort: 2000, Seq: seq, Flags: packet.TCPAck, PayloadLen: 1460,
		})
	}
	us := func(n int64) units.Time { return units.Time(n * int64(units.Microsecond)) }
	ts := []units.Time{us(10), us(20), us(5), us(30), us(25), us(40)}
	var frames [][]byte
	for i := range ts {
		frames = append(frames, mk(uint32(i)*1460))
	}

	loop := New(equivConfig())
	loopErrs, firstIdx := 0, -1
	for i := range ts {
		if err := loop.Ingest(ts[i], frames[i]); err != nil {
			loopErrs++
			if firstIdx < 0 {
				firstIdx = i
			}
		}
	}

	batched := New(equivConfig())
	err := batched.IngestBatch(ts, frames)
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("IngestBatch returned %v, want *BatchError", err)
	}
	if be.Failed != loopErrs || be.Index != firstIdx {
		t.Fatalf("BatchError{Failed:%d Index:%d}, loop saw %d errors first at %d",
			be.Failed, be.Index, loopErrs, firstIdx)
	}
	if ls, bs := loop.Stats(), batched.Stats(); ls != bs {
		t.Fatalf("stats diverged\n loop:    %+v\n batched: %+v", ls, bs)
	}
}

// TestCooldownSnapshotInto checks both snapshot forms: the caller-map
// form clears and refills dst without allocating, and the no-arg form
// reuses one internal scratch map across calls.
func TestCooldownSnapshotInto(t *testing.T) {
	c := New(equivConfig())
	c.RestoreCooldowns(map[int]units.Time{1: units.Time(100), 3: units.Time(900)})

	dst := map[int]units.Time{7: units.Time(5)} // stale entry must be cleared
	got := c.CooldownSnapshotInto(dst)
	if len(got) != 2 || got[1] != units.Time(100) || got[3] != units.Time(900) {
		t.Fatalf("CooldownSnapshotInto = %v", got)
	}
	if allocs := testing.AllocsPerRun(100, func() { c.CooldownSnapshotInto(dst) }); allocs > 0 {
		t.Fatalf("CooldownSnapshotInto allocated %.1f per call with a caller map", allocs)
	}

	first := c.CooldownSnapshot()
	if allocs := testing.AllocsPerRun(100, func() { c.CooldownSnapshot() }); allocs > 0 {
		t.Fatalf("CooldownSnapshot allocated %.1f per call after warm-up", allocs)
	}
	if len(first) != 2 {
		t.Fatalf("CooldownSnapshot = %v", first)
	}
}
