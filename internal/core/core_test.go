package core

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"planck/internal/packet"
	"planck/internal/pcap"
	"planck/internal/units"
)

var (
	macA = packet.MAC{0x02, 0, 0, 0, 0, 1}
	macB = packet.MAC{0x02, 0, 0, 0, 0, 2}
	ipA  = packet.IPv4{10, 0, 0, 1}
	ipB  = packet.IPv4{10, 0, 0, 2}
)

const us = units.Microsecond

// --- RateEstimator ---

// steadyStream feeds a constant-rate sequence stream: one sample every
// interval carrying seq advancing by bytesPer.
func steadyStream(e *RateEstimator, start units.Time, n int, interval units.Duration, bytesPer uint32) units.Time {
	t := start
	var seq uint32
	for i := 0; i < n; i++ {
		e.Observe(t, seq)
		seq += bytesPer
		t = t.Add(interval)
	}
	return t
}

func TestEstimatorSteadyState(t *testing.T) {
	e := NewRateEstimator()
	// 1460B per 1.23µs ≈ 9.5 Gbps, sampled every packet.
	steadyStream(e, 0, 3000, units.Duration(1230), 1460)
	r, _, ok := e.Rate()
	if !ok {
		t.Fatal("no estimate")
	}
	g := r.Gigabits()
	if g < 9.0 || g < 0 || g > 10.0 {
		t.Fatalf("rate %.2f Gbps", g)
	}
}

func TestEstimatorSubsampledStreamIsExact(t *testing.T) {
	// The paper's key insight: the estimate is independent of the
	// sampling rate because sequence numbers carry the byte count. Feed
	// 1-in-16 samples of the same stream.
	e := NewRateEstimator()
	t0 := units.Time(0)
	var seq uint32
	for i := 0; i < 3000; i++ {
		if i%16 == 0 {
			e.Observe(t0, seq)
		}
		seq += 1460
		t0 = t0.Add(units.Duration(1230))
	}
	r, _, ok := e.Rate()
	if !ok {
		t.Fatal("no estimate")
	}
	if g := r.Gigabits(); g < 9.0 || g > 10.0 {
		t.Fatalf("subsampled rate %.2f Gbps", g)
	}
}

func TestEstimatorBurstGapAveragesOverCycle(t *testing.T) {
	// Slow-start-like pattern: bursts of 10 packets at line rate, then
	// ~200µs idle. The per-cycle average (not the in-burst line rate) is
	// what the estimator should report: 10*1460B per ~212µs ≈ 550 Mbps.
	e := NewRateEstimator()
	var seq uint32
	t0 := units.Time(0)
	var got []float64
	for cycle := 0; cycle < 50; cycle++ {
		for i := 0; i < 10; i++ {
			if e.Observe(t0, seq) {
				r, _, _ := e.Rate()
				got = append(got, r.Gigabits())
			}
			seq += 1460
			t0 = t0.Add(units.Duration(1230))
		}
		t0 = t0.Add(200 * us)
	}
	if len(got) < 10 {
		t.Fatalf("only %d estimates", len(got))
	}
	for _, g := range got[2:] {
		if g < 0.3 || g > 0.8 {
			t.Fatalf("burst-cycle estimate %.3f Gbps, want ≈0.55", g)
		}
	}
}

func TestEstimatorIgnoresOutOfOrder(t *testing.T) {
	e := NewRateEstimator()
	e.Observe(0, 10000)
	e.Observe(100, 20000)
	e.Observe(200, 15000) // regression: retransmit or reorder
	if e.OOO != 1 {
		t.Fatalf("OOO = %d", e.OOO)
	}
	if e.StreamBytes() != 10000 {
		t.Fatalf("stream bytes %d", e.StreamBytes())
	}
}

func TestEstimatorSeqWrap(t *testing.T) {
	e := NewRateEstimator()
	start := uint32(0xffff_fc00)
	var t0 units.Time
	for i := 0; i < 2000; i++ {
		e.Observe(t0, start+uint32(i*1460))
		t0 = t0.Add(units.Duration(1230))
	}
	if e.OOO != 0 {
		t.Fatalf("wrap misread as reordering: OOO=%d", e.OOO)
	}
	r, _, _ := e.Rate()
	if g := r.Gigabits(); g < 9.0 || g > 10.0 {
		t.Fatalf("rate across wrap %.2f", g)
	}
}

// Property: estimates are never negative and StreamBytes is monotone.
func TestEstimatorInvariants(t *testing.T) {
	f := func(seed int64, steps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewRateEstimator()
		var t0 units.Time
		var prevStream int64
		for i := 0; i < int(steps); i++ {
			t0 = t0.Add(units.Duration(rng.Int63n(int64(400 * us))))
			e.Observe(t0, rng.Uint32())
			if e.StreamBytes() < prevStream {
				return false
			}
			prevStream = e.StreamBytes()
			if r, _, ok := e.Rate(); ok && r < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// --- Collector ---

type staticMapper map[uint64]int

func (m staticMapper) OutputPort(dst packet.MAC) (int, bool) {
	p, ok := m[dst.U64()]
	return p, ok
}
func (m staticMapper) InputPort(src, dst packet.MAC) (int, bool) { return 0, false }

func tcpFrame(seq uint32, payload int) []byte {
	return packet.BuildTCP(nil, packet.TCPSpec{
		SrcMAC: macA, DstMAC: macB,
		SrcIP: ipA, DstIP: ipB,
		SrcPort: 1000, DstPort: 2000,
		Seq: seq, Flags: packet.TCPAck, PayloadLen: payload,
	})
}

func newTestCollector() *Collector {
	c := New(Config{
		SwitchName: "sw0",
		NumPorts:   4,
		LinkRate:   units.Rate10G,
	})
	c.SetPortMapper(staticMapper{macB.U64(): 2})
	return c
}

func TestCollectorFlowTracking(t *testing.T) {
	c := newTestCollector()
	var t0 units.Time
	var seq uint32
	for i := 0; i < 2000; i++ {
		if err := c.Ingest(t0, tcpFrame(seq, 1460)); err != nil {
			t.Fatal(err)
		}
		seq += 1460
		t0 = t0.Add(units.Duration(1230))
	}
	key := packet.FlowKey{SrcIP: ipA, DstIP: ipB, SrcPort: 1000, DstPort: 2000, Proto: packet.IPProtocolTCP}
	r, ok := c.FlowRate(key)
	if !ok {
		t.Fatal("flow not tracked")
	}
	if g := r.Gigabits(); g < 9.0 || g > 10.0 {
		t.Fatalf("flow rate %.2f", g)
	}
	f := c.Flow(key)
	if f == nil || f.OutPort() != 2 {
		t.Fatalf("flow port %v", f)
	}
	if util := c.LinkUtilization(2); util != r {
		t.Fatalf("util %v != flow rate %v", util, r)
	}
	if got := c.FlowsOnPort(2); len(got) != 1 || got[0].Key != key {
		t.Fatalf("flows on port: %+v", got)
	}
	st := c.Stats()
	if st.Samples != 2000 || st.Flows != 1 || st.RateUpdates == 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestCollectorCongestionEvent(t *testing.T) {
	c := newTestCollector()
	var events []CongestionEvent
	c.Subscribe(func(ev CongestionEvent) { events = append(events, ev) })
	var t0 units.Time
	var seq uint32
	for i := 0; i < 3000; i++ {
		c.Ingest(t0, tcpFrame(seq, 1460))
		seq += 1460
		t0 = t0.Add(units.Duration(1230)) // 9.5 Gbps > 90% of 10G
	}
	if len(events) == 0 {
		t.Fatal("no congestion events for a 9.5 Gbps link")
	}
	ev := events[0]
	if ev.Port != 2 || ev.SwitchName != "sw0" {
		t.Fatalf("event %+v", ev)
	}
	if len(ev.Flows) != 1 || ev.Flows[0].Rate.Gigabits() < 8.5 {
		t.Fatalf("event flows %+v", ev.Flows)
	}
	// Cooldown: events must be spaced >= EventCooldown (250 µs default).
	for i := 1; i < len(events); i++ {
		if d := events[i].Time.Sub(events[i-1].Time); d < 250*units.Microsecond {
			t.Fatalf("events %d apart", d)
		}
	}
}

func TestCollectorNoEventBelowThreshold(t *testing.T) {
	c := newTestCollector()
	fired := false
	c.Subscribe(func(ev CongestionEvent) { fired = true })
	var t0 units.Time
	var seq uint32
	for i := 0; i < 3000; i++ {
		c.Ingest(t0, tcpFrame(seq, 1460))
		seq += 1460
		t0 = t0.Add(units.Duration(4000)) // ≈2.9 Gbps
	}
	if fired {
		t.Fatal("event fired below threshold")
	}
}

func TestCollectorRerouteRemapsFlow(t *testing.T) {
	c := New(Config{SwitchName: "sw0", NumPorts: 4, LinkRate: units.Rate10G})
	shadow := packet.MAC{0x02, 1, 0, 0, 0, 2}
	c.SetPortMapper(staticMapper{macB.U64(): 2, shadow.U64(): 3})
	var t0 units.Time
	var seq uint32
	mk := func(dst packet.MAC) []byte {
		return packet.BuildTCP(nil, packet.TCPSpec{
			SrcMAC: macA, DstMAC: dst, SrcIP: ipA, DstIP: ipB,
			SrcPort: 1000, DstPort: 2000, Seq: seq, Flags: packet.TCPAck, PayloadLen: 1460,
		})
	}
	for i := 0; i < 1000; i++ {
		c.Ingest(t0, mk(macB))
		seq += 1460
		t0 = t0.Add(units.Duration(1230))
	}
	key := packet.FlowKey{SrcIP: ipA, DstIP: ipB, SrcPort: 1000, DstPort: 2000, Proto: packet.IPProtocolTCP}
	if f := c.Flow(key); f.OutPort() != 2 {
		t.Fatalf("pre-reroute port %d", f.OutPort())
	}
	// Reroute: same 5-tuple, new dst MAC label.
	for i := 0; i < 1000; i++ {
		c.Ingest(t0, mk(shadow))
		seq += 1460
		t0 = t0.Add(units.Duration(1230))
	}
	f := c.Flow(key)
	if f.OutPort() != 3 {
		t.Fatalf("post-reroute port %d", f.OutPort())
	}
	if f.DstMAC != shadow {
		t.Fatalf("dst mac %v", f.DstMAC)
	}
	// Rate estimation must survive the label change (sequence stream is
	// continuous).
	if r, ok := f.Rate(); !ok || r.Gigabits() < 9.0 {
		t.Fatalf("rate lost across reroute: %v %v", r, ok)
	}
	if c.LinkUtilization(2) != 0 {
		// Old port may still show the flow if it was not remapped.
		t.Fatalf("old port still has utilization %v", c.LinkUtilization(2))
	}
}

func TestCollectorExpireFlows(t *testing.T) {
	c := newTestCollector()
	c.Ingest(0, tcpFrame(0, 1460))
	if n := c.ExpireFlows(units.Time(100*units.Millisecond), 10*units.Millisecond); n != 1 {
		t.Fatalf("expired %d", n)
	}
	if c.Stats().Flows != 0 {
		t.Fatal("flow table not empty")
	}
}

func TestCollectorTimestampRegressionRejected(t *testing.T) {
	c := newTestCollector()
	c.Ingest(1000, tcpFrame(0, 100))
	if err := c.Ingest(500, tcpFrame(1460, 100)); err == nil {
		t.Fatal("backwards timestamp accepted")
	}
}

func TestCollectorNonTCPCounted(t *testing.T) {
	c := newTestCollector()
	arp := packet.BuildARP(nil, packet.ARPSpec{
		SrcMAC: macA, DstMAC: macB, Op: packet.ARPRequest,
		SenderMAC: macA, SenderIP: ipA, TargetIP: ipB,
	})
	udp := packet.BuildUDP(nil, packet.UDPSpec{
		SrcMAC: macA, DstMAC: macB, SrcIP: ipA, DstIP: ipB,
		SrcPort: 1, DstPort: 2, PayloadLen: 64,
	})
	c.Ingest(0, arp)
	c.Ingest(1, udp)
	st := c.Stats()
	if st.NonTCP != 2 || st.DecodeErrors != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestVantageRingPcapRoundTrip(t *testing.T) {
	c := New(Config{SwitchName: "sw0", NumPorts: 4, LinkRate: units.Rate10G, RingPackets: 128})
	c.SetPortMapper(staticMapper{macB.U64(): 2})
	var t0 units.Time
	var seq uint32
	const total = 300 // more than the ring, to force wrap
	for i := 0; i < total; i++ {
		c.Ingest(t0, tcpFrame(seq, 100))
		seq += 100
		t0 = t0.Add(10 * us)
	}
	var buf bytes.Buffer
	if err := c.DumpPcap(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := pcap.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var count int
	var firstSeq uint32
	var dec packet.Decoded
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := dec.Decode(rec.Data); err != nil {
			t.Fatal(err)
		}
		if count == 0 {
			firstSeq = dec.TCP.Seq
		}
		count++
	}
	if count != 128 {
		t.Fatalf("dumped %d records", count)
	}
	// Ring keeps the newest 128: the first dumped sample is #172.
	if firstSeq != uint32((total-128)*100) {
		t.Fatalf("first seq %d", firstSeq)
	}
}

func TestRingNoAllocSteadyState(t *testing.T) {
	r := NewRing(64)
	frame := make([]byte, 1500)
	allocs := testing.AllocsPerRun(1000, func() {
		r.Push(0, frame)
	})
	if allocs > 0 {
		t.Fatalf("ring Push allocates %.1f per op", allocs)
	}
}

func TestIngestNoAllocSteadyState(t *testing.T) {
	c := newTestCollector()
	frame := tcpFrame(0, 1460)
	var t0 units.Time
	var seq uint32
	// Warm up the flow table.
	c.Ingest(t0, frame)
	dec := packet.Decoded{}
	_ = dec
	allocs := testing.AllocsPerRun(5000, func() {
		t0 = t0.Add(units.Duration(1230))
		seq += 1460
		// Rebuild in place: BuildTCP reuses the buffer.
		frame = packet.BuildTCP(frame, packet.TCPSpec{
			SrcMAC: macA, DstMAC: macB, SrcIP: ipA, DstIP: ipB,
			SrcPort: 1000, DstPort: 2000, Seq: seq, Flags: packet.TCPAck, PayloadLen: 1460,
		})
		if err := c.Ingest(t0, frame); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0.1 {
		t.Fatalf("Ingest allocates %.2f per sample", allocs)
	}
}
