package core

import (
	"math/rand"
	"strings"
	"testing"

	"planck/internal/units"
)

// TestTraceAnalyzerFullCapture: a complete capture shows no gaps and
// 100% completeness.
func TestTraceAnalyzerFullCapture(t *testing.T) {
	a := NewTraceAnalyzer()
	var tm units.Time
	var seq uint32 = 5000
	for i := 0; i < 1000; i++ {
		a.Observe(tm, tcpFrame(seq, 1460))
		seq += 1460
		tm = tm.Add(units.Duration(1230))
	}
	reps := a.Reports()
	if len(reps) != 1 {
		t.Fatalf("%d reports", len(reps))
	}
	r := reps[0]
	if r.Gaps != 0 || r.MissedPayload != 0 {
		t.Fatalf("gaps %d missed %d on a full capture", r.Gaps, r.MissedPayload)
	}
	if r.Completeness() != 1 {
		t.Fatalf("completeness %.3f", r.Completeness())
	}
	if r.StreamPayload != 1000*1460 {
		t.Fatalf("stream %d", r.StreamPayload)
	}
}

// TestTraceAnalyzerInfersDrops: sample 1-in-4 — the analyzer must infer
// the other three quarters from the sequence numbers.
func TestTraceAnalyzerInfersDrops(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := NewTraceAnalyzer()
	var tm units.Time
	var seq uint32
	const n = 8000
	var sampled int64
	for i := 0; i < n; i++ {
		if rng.Intn(4) == 0 {
			a.Observe(tm, tcpFrame(seq, 1460))
			sampled++
		}
		seq += 1460
		tm = tm.Add(units.Duration(1230))
	}
	reps := a.Reports()
	if len(reps) != 1 {
		t.Fatalf("%d reports", len(reps))
	}
	r := reps[0]
	if r.SampledPackets != sampled {
		t.Fatalf("sampled %d want %d", r.SampledPackets, sampled)
	}
	// Completeness ≈ 25%.
	if c := r.Completeness(); c < 0.20 || c > 0.30 {
		t.Fatalf("completeness %.3f, want ≈0.25", c)
	}
	if r.Gaps == 0 || r.MissedPayload == 0 {
		t.Fatal("no gaps inferred")
	}
	// Missed + sampled = stream.
	if r.MissedPayload+r.SampledPayload != r.StreamPayload {
		t.Fatalf("accounting: %d + %d != %d", r.MissedPayload, r.SampledPayload, r.StreamPayload)
	}
	if r.LargestGap < 1460 {
		t.Fatalf("largest gap %d", r.LargestGap)
	}
}

// TestTraceAnalyzerIgnoresRetransmits: regressions must not inflate the
// inferred stream.
func TestTraceAnalyzerIgnoresRetransmits(t *testing.T) {
	a := NewTraceAnalyzer()
	var tm units.Time
	seqs := []uint32{0, 1460, 2920, 1460 /*rtx*/, 4380}
	for _, s := range seqs {
		a.Observe(tm, tcpFrame(s, 1460))
		tm = tm.Add(units.Duration(1230))
	}
	r := a.Reports()[0]
	if r.StreamPayload != 4380+1460 { // last new segment's end
		t.Fatalf("stream %d", r.StreamPayload)
	}
	if r.Gaps != 0 {
		t.Fatalf("phantom gaps %d", r.Gaps)
	}
}

// TestAnalyzeRingEndToEnd runs gap inference over a collector ring fed
// through Ingest.
func TestAnalyzeRingEndToEnd(t *testing.T) {
	c := New(Config{SwitchName: "sw0", NumPorts: 4, LinkRate: units.Rate10G, RingPackets: 4096})
	c.SetPortMapper(staticMapper{macB.U64(): 2})
	rng := rand.New(rand.NewSource(12))
	var tm units.Time
	var seq uint32
	for i := 0; i < 3000; i++ {
		if rng.Intn(3) == 0 { // 1-in-3 "mirror" sampling
			c.Ingest(tm, tcpFrame(seq, 1460))
		}
		seq += 1460
		tm = tm.Add(units.Duration(1230))
	}
	reps, err := AnalyzeRing(c.RingBuffer())
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 1 {
		t.Fatalf("%d reports", len(reps))
	}
	if cpl := reps[0].Completeness(); cpl < 0.25 || cpl > 0.45 {
		t.Fatalf("completeness %.3f, want ≈0.33", cpl)
	}
	out := FormatReports(reps)
	if !strings.Contains(out, "complete") || !strings.Contains(out, "tcp ") {
		t.Fatalf("report rendering:\n%s", out)
	}
}

func TestAnalyzeRingNil(t *testing.T) {
	if _, err := AnalyzeRing(nil); err == nil {
		t.Fatal("nil ring accepted")
	}
}
