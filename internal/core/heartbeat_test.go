package core

import (
	"testing"

	"planck/internal/units"
)

func hbms(n int64) units.Time { return units.Time(n) * units.Time(units.Millisecond) }

func TestHeartbeatDarkAndRecover(t *testing.T) {
	m := NewHeartbeatMonitor(HeartbeatConfig{
		Interval:      2 * units.Millisecond,
		StaleAfter:    4 * units.Millisecond,
		MissThreshold: 2,
	})
	last := hbms(10)

	// Fresh ticks: no transition, no streak.
	if tr := m.Beat(hbms(12), last); tr != HeartbeatNone || m.Dark() {
		t.Fatalf("fresh beat: %v dark=%v", tr, m.Dark())
	}
	// First stale tick: miss, but below threshold.
	if tr := m.Beat(hbms(16), last); tr != HeartbeatNone || m.Dark() || m.MissStreak() != 1 {
		t.Fatalf("first miss: %v dark=%v streak=%d", tr, m.Dark(), m.MissStreak())
	}
	// Second stale tick crosses the threshold exactly once.
	if tr := m.Beat(hbms(18), last); tr != HeartbeatWentDark || !m.Dark() {
		t.Fatalf("second miss: %v dark=%v", tr, m.Dark())
	}
	if tr := m.Beat(hbms(20), last); tr != HeartbeatNone || !m.Dark() {
		t.Fatalf("went-dark must fire once: %v", tr)
	}
	// Delivery resumes: one recovery transition, then quiet.
	if tr := m.Beat(hbms(22), hbms(21)); tr != HeartbeatRecovered || m.Dark() || m.MissStreak() != 0 {
		t.Fatalf("recovery: %v dark=%v streak=%d", tr, m.Dark(), m.MissStreak())
	}
	if tr := m.Beat(hbms(24), hbms(23)); tr != HeartbeatNone {
		t.Fatalf("recovered must fire once: %v", tr)
	}
}

func TestHeartbeatNeverDelivered(t *testing.T) {
	m := NewHeartbeatMonitor(HeartbeatConfig{Interval: units.Millisecond, MissThreshold: 3})
	var tr HeartbeatTransition
	for i := int64(0); i < 3; i++ {
		tr = m.Beat(hbms(i), -1)
	}
	if tr != HeartbeatWentDark {
		t.Fatalf("a feed that never delivered must go dark after MissThreshold ticks, got %v", tr)
	}
}

func TestHeartbeatDefaults(t *testing.T) {
	m := NewHeartbeatMonitor(HeartbeatConfig{Interval: 3 * units.Millisecond})
	cfg := m.Config()
	if cfg.StaleAfter != 6*units.Millisecond {
		t.Errorf("StaleAfter default = %v, want 2×Interval", cfg.StaleAfter)
	}
	if cfg.MissThreshold != 2 {
		t.Errorf("MissThreshold default = %d, want 2", cfg.MissThreshold)
	}
}

func TestCooldownSnapshotRestore(t *testing.T) {
	cfg := Config{SwitchName: "sw", NumPorts: 4, LinkRate: units.Rate1G}
	c1 := New(cfg)
	c1.lastEvent[2] = hbms(50)
	snap := c1.CooldownSnapshot()
	if len(snap) != 1 || snap[2] != hbms(50) {
		t.Fatalf("snapshot = %v, want {2: 50ms}", snap)
	}

	c2 := New(cfg)
	c2.lastEvent[1] = hbms(60)
	c2.lastEvent[2] = hbms(10) // earlier than snapshot: restore must win
	c2.RestoreCooldowns(snap)
	if c2.lastEvent[2] != hbms(50) {
		t.Errorf("restore should take the later time: got %v", c2.lastEvent[2])
	}
	if c2.lastEvent[1] != hbms(60) {
		t.Errorf("restore must not regress unrelated ports: got %v", c2.lastEvent[1])
	}
	// Out-of-range ports are ignored, not a panic.
	c2.RestoreCooldowns(map[int]units.Time{-1: hbms(1), 99: hbms(1)})
}

func TestShardedCooldownSnapshotRestore(t *testing.T) {
	cfg := ShardedConfig{Config: Config{SwitchName: "sw", NumPorts: 4, LinkRate: units.Rate1G}, Shards: 2}
	s1 := NewSharded(cfg)
	s1.Subscribe(func(CongestionEvent) {})
	defer s1.Close()
	if snap := s1.CooldownSnapshot(); len(snap) != 0 {
		t.Fatalf("fresh sharded collector snapshot = %v, want empty", snap)
	}
	s1.RestoreCooldowns(map[int]units.Time{3: hbms(40)})
	snap := s1.CooldownSnapshot()
	if len(snap) != 1 || snap[3] != hbms(40) {
		t.Fatalf("after restore snapshot = %v, want {3: 40ms}", snap)
	}
	// Restoring an earlier time must not regress the cooldown.
	s1.RestoreCooldowns(map[int]units.Time{3: hbms(5)})
	if got := s1.CooldownSnapshot()[3]; got != hbms(40) {
		t.Fatalf("earlier restore regressed cooldown to %v", got)
	}
}
