package core

import (
	"sync/atomic"
	"testing"
	"time"

	"planck/internal/packet"
	"planck/internal/units"
)

// TestShardedDropOnFullOverloadRecovery drives the lossy sharded
// pipeline into sustained overload (a deliberately slow event
// subscriber stalls the merger until the dispatcher must shed), then
// releases the pressure and checks the shedding contract:
//
//   - drop counters advance while overloaded, and the dispatcher never
//     deadlocks (lossless sweeps block only until the merger drains);
//   - accepted-sample accounting stays exact: shard Samples equal
//     ingested minus Dropped;
//   - after the overload clears, per-flow rates and link utilizations
//     re-converge exactly to a serial collector that saw the *full*
//     stream — sequence-based estimation recovers lost ground because
//     TCP sequence numbers are cumulative, and once both pipelines
//     share two post-overload samples their estimation windows
//     re-anchor identically.
func TestShardedDropOnFullOverloadRecovery(t *testing.T) {
	const (
		nFlows   = 8
		payload  = 1460
		step     = 40 * units.Microsecond // global inter-sample gap
		overload = 4000                   // samples pushed while the merger is slow
		recovery = 10                     // per-flow samples after the stall clears
	)

	cfg := Config{
		SwitchName:    "sw0",
		NumPorts:      4,
		LinkRate:      units.Rate10G,
		MinGap:        units.Nanosecond, // every sample closes a window…
		MaxBurst:      units.Nanosecond,
		EventCooldown: units.Nanosecond, // …and every update may fire an event
		UtilThreshold: 1e-6,
	}

	var macs [nFlows]packet.MAC
	mapper := staticMapper{}
	for i := range macs {
		macs[i] = packet.MAC{0x02, 0, 0, 0, 1, byte(i)}
		mapper[macs[i].U64()] = i % 4
	}
	frame := func(flow int, seq uint32) []byte {
		return packet.BuildTCP(nil, packet.TCPSpec{
			SrcMAC: macA, DstMAC: macs[flow],
			SrcIP: ipA, DstIP: ipB,
			SrcPort: uint16(1000 + flow), DstPort: 2000,
			Seq: seq, Flags: packet.TCPAck, PayloadLen: payload,
		})
	}
	keys := func(flow int) packet.FlowKey {
		return packet.FlowKey{SrcIP: ipA, DstIP: ipB, SrcPort: uint16(1000 + flow), DstPort: 2000, Proto: packet.IPProtocolTCP}
	}

	sh := NewSharded(ShardedConfig{Config: cfg, Shards: 2, Batch: 64, Queue: 1, DropOnFull: true})
	defer sh.Close()
	var slow atomic.Bool
	sh.Subscribe(func(CongestionEvent) {
		if slow.Load() {
			time.Sleep(2 * time.Microsecond)
		}
	})
	sh.SetPortMapper(mapper)

	serial := New(cfg)
	serial.Subscribe(func(CongestionEvent) {})
	serial.SetPortMapper(mapper)

	var now units.Time
	var seqs [nFlows]uint32
	ingested := 0
	feed := func(flow int, flushEach bool) {
		fr := frame(flow, seqs[flow])
		seqs[flow] += payload
		if err := sh.Ingest(now, fr); err != nil {
			t.Fatalf("sharded ingest: %v", err)
		}
		if err := serial.Ingest(now, fr); err != nil {
			t.Fatalf("serial ingest: %v", err)
		}
		ingested++
		now = now.Add(step)
		if flushEach {
			sh.Flush()
		}
	}

	// Phase 1: overload. The merger sleeps per event, its backlog fills
	// the bounded hand-off queues, and the dispatcher must shed. The
	// feed is deliberately skewed toward flow 0: a perfectly balanced
	// round-robin feed can phase-lock batch fills to the lossless sweep
	// (each shard's pending batch reaches Batch exactly when the
	// Batch×Shards sweep fires and ships it, blocking instead of
	// dropping), which would leave the drop path untested for any hash
	// that happens to split the flows evenly. Concentrating ≥75% of
	// samples on one flow guarantees its shard fills ahead of the sweep
	// no matter how flows partition.
	slow.Store(true)
	for i := 0; i < overload; i++ {
		flow := 0
		if i%4 == 3 {
			flow = i % nFlows
		}
		feed(flow, false)
	}
	slow.Store(false)
	sh.Flush()
	dropped := sh.Dropped()
	if dropped == 0 {
		t.Fatal("sustained overload shed nothing; DropOnFull path never engaged")
	}
	t.Logf("overload: %d of %d samples shed", dropped, overload)

	// Phase 2: recovery. Flushing after every sample keeps the queues
	// empty, so nothing below can be shed and both pipelines see an
	// identical post-overload suffix.
	for i := 0; i < recovery*nFlows; i++ {
		feed(i%nFlows, true)
	}
	if extra := sh.Dropped() - dropped; extra != 0 {
		t.Fatalf("recovery phase shed %d samples despite per-sample flushes", extra)
	}

	// Accounting stays exact: every ingested sample was either shed at
	// the dispatcher or processed by exactly one shard.
	st := sh.Stats()
	if st.Samples != int64(ingested)-sh.Dropped() {
		t.Fatalf("accepted accounting: shards saw %d, want ingested %d − dropped %d = %d",
			st.Samples, ingested, sh.Dropped(), int64(ingested)-sh.Dropped())
	}

	// Convergence: post-overload estimates match the full-stream serial
	// oracle bit-for-bit.
	for f := 0; f < nFlows; f++ {
		want, okW := serial.FlowRate(keys(f))
		got, okG := sh.FlowRate(keys(f))
		if okW != okG || got != want {
			t.Errorf("flow %d rate diverged after recovery: sharded %v (%v), serial %v (%v)", f, got, okG, want, okW)
		}
	}
	for p := 0; p < cfg.NumPorts; p++ {
		if got, want := sh.LinkUtilization(p), serial.LinkUtilization(p); got != want {
			t.Errorf("port %d utilization diverged after recovery: sharded %v, serial %v", p, got, want)
		}
	}
}

// TestShardedOverloadEventSpacing re-runs a shorter overload and checks
// that shedding never corrupts the merger's order-sensitive outputs:
// events still come out in non-decreasing time order with the per-port
// cooldown respected — drops happen before sequence assignment, so the
// merger's stream stays dense and ordered no matter how much is shed.
func TestShardedOverloadEventSpacing(t *testing.T) {
	cfg := Config{
		SwitchName:    "sw0",
		NumPorts:      2,
		LinkRate:      units.Rate10G,
		MinGap:        units.Nanosecond,
		MaxBurst:      units.Nanosecond,
		EventCooldown: 100 * units.Microsecond,
		UtilThreshold: 1e-6,
	}
	sh := NewSharded(ShardedConfig{Config: cfg, Shards: 2, Batch: 16, Queue: 1, DropOnFull: true})
	defer sh.Close()
	var slow atomic.Bool
	var mu_ struct {
		last map[int]units.Time
		bad  int
	}
	mu_.last = map[int]units.Time{}
	var prev units.Time
	sh.Subscribe(func(ev CongestionEvent) {
		if slow.Load() {
			time.Sleep(2 * time.Microsecond)
		}
		// Fires on the merger goroutine only; plain fields are safe.
		if ev.Time < prev {
			mu_.bad++
		}
		prev = ev.Time
		if last, ok := mu_.last[ev.Port]; ok && ev.Time.Sub(last) < cfg.EventCooldown {
			mu_.bad++
		}
		mu_.last[ev.Port] = ev.Time
	})
	sh.SetPortMapper(staticMapper{macB.U64(): 1})

	var now units.Time
	var seq uint32
	slow.Store(true)
	for i := 0; i < 2000; i++ {
		fr := packet.BuildTCP(nil, packet.TCPSpec{
			SrcMAC: macA, DstMAC: macB,
			SrcIP: ipA, DstIP: ipB,
			SrcPort: 1000, DstPort: 2000,
			Seq: seq, Flags: packet.TCPAck, PayloadLen: 1000,
		})
		seq += 1000
		if err := sh.Ingest(now, fr); err != nil {
			t.Fatalf("ingest: %v", err)
		}
		now = now.Add(40 * units.Microsecond)
	}
	slow.Store(false)
	sh.Flush()
	if mu_.bad != 0 {
		t.Fatalf("%d events violated ordering or cooldown under shedding", mu_.bad)
	}
	if sh.Dropped() == 0 {
		t.Log("note: this run shed nothing; spacing checks still exercised the lossy path")
	}
}
