package core

// This file implements the sharded concurrent collector pipeline. The
// paper's collectors must keep up with the monitor port's line rate
// (§3.2: netmap delivers "all of the mirrored traffic" to one core);
// past one core's worth of traffic the only way forward is parallel
// ingest that computes exactly what the serial pipeline computes.
//
// The design splits the serial Collector's work into three roles:
//
//	dispatcher (caller's goroutine)
//	    timestamp monotonicity check, vantage-ring push, 5-tuple hash
//	    partition, and batched hand-off: samples are copied into
//	    per-shard batches (~64 samples) and published over bounded
//	    SPSC-style channels, amortizing channel synchronization over
//	    the whole batch.
//	shard workers (one goroutine per shard)
//	    each owns a private serial Collector — flow table, rate
//	    estimators, port mapping — processing only the flows that hash
//	    to it. A flow's entire sample subsequence lands on one shard in
//	    arrival order, so every per-flow quantity (rate, OOO count,
//	    stream bytes, boundary flags) is bit-identical to serial.
//	merger (one goroutine)
//	    per-sample records from the shards are re-sequenced by the
//	    dispatcher-assigned global sequence number and folded, in exact
//	    arrival order, into a lightweight cross-shard view: flow →
//	    (egress port, rate, last-seen). Link utilization, congestion
//	    thresholds, per-port event cooldown, and event emission run
//	    here — single-threaded, in serial order — so the event stream
//	    is semantically identical to the serial Collector's.
//
// The split keeps the expensive per-sample work (wire-format decode,
// flow-table access, estimator arithmetic) parallel while the cheap
// order-sensitive reduction (a slice update per sample, a per-port sum
// per rate update) stays sequential. Equivalence is enforced by the
// serial-equivalence oracle test (internal/lab), which replays identical
// deterministic streams through a 1-shard and an N-shard pipeline under
// the race detector and requires identical flow rates, utilizations,
// congestion events, and counters.

import (
	"fmt"
	"io"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"planck/internal/obs"
	"planck/internal/packet"
	"planck/internal/units"
)

// Hand-off defaults. 64-sample batches amortize the two channel
// operations per hand-off to a fraction of a nanosecond per sample; 8
// batches of queue give ~0.5K samples of slack per shard before the
// dispatcher blocks (or drops, in lossy mode).
const (
	DefaultShardBatch = 64
	DefaultShardQueue = 8
)

// maxShards bounds the shard count (shard indices are carried in
// per-record bytes and metric labels; 256 is far beyond any host).
const maxShards = 256

// ShardedConfig tunes a ShardedCollector. The embedded Config applies to
// every shard (Metrics and RingPackets are owned by the sharded pipeline
// itself: instruments register once, and the vantage ring is kept in
// global arrival order by the dispatcher).
type ShardedConfig struct {
	Config

	// Shards is the number of parallel shard workers (default
	// GOMAXPROCS).
	Shards int
	// Batch is the number of samples per hand-off batch (default 64).
	Batch int
	// Queue is the number of batches buffered per shard (default 8).
	Queue int
	// DropOnFull makes Ingest drop (and count) samples when a shard's
	// queue is full instead of blocking — the same load-shedding
	// semantics as the oversubscribed monitor port itself. Lossy mode
	// trades serial equivalence for bounded ingest latency; the default
	// is lossless back-pressure.
	DropOnFull bool
}

func (c *ShardedConfig) fillDefaults() {
	c.Config.fillDefaults()
	// The per-sample aggregation sink is a serial-collector seam: shard
	// workers would invoke it concurrently and out of stream order, so
	// the sharded pipeline never carries one. Fleet deployments shard
	// *across* collectors instead (one serial vantage per mirror port).
	c.Sink = nil
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.Shards > maxShards {
		c.Shards = maxShards
	}
	if c.Batch <= 0 {
		c.Batch = DefaultShardBatch
	}
	if c.Queue <= 0 {
		c.Queue = DefaultShardQueue
	}
}

// sampleBatch is one dispatcher→shard hand-off unit: up to Batch frames
// packed back-to-back in one reusable arena.
type sampleBatch struct {
	n    int
	time []units.Time
	seq  []uint64 // global arrival sequence numbers
	hash []uint64 // dispatch flow hashes, shared with the shard's table probe (0 = none)
	off  []int32  // frame offsets into buf
	ln   []int32
	buf  []byte

	// barrier, when non-nil, marks a flush token instead of samples.
	barrier *flushToken
}

func newSampleBatch(batch int) *sampleBatch {
	return &sampleBatch{
		time: make([]units.Time, batch),
		seq:  make([]uint64, batch),
		hash: make([]uint64, batch),
		off:  make([]int32, batch),
		ln:   make([]int32, batch),
	}
}

func (b *sampleBatch) reset() {
	b.n = 0
	b.buf = b.buf[:0]
	b.barrier = nil
}

// Record kinds forwarded from shards to the merger.
const (
	recSkip = uint8(iota) // no flow touched (ARP, decode error, plain UDP)
	recFlow               // flow-table update
)

// outRec is one sample's result, forwarded shard→merger. It carries
// everything the merger needs to replay the serial collector's
// order-sensitive effects: flow identity and routing label, the rate
// estimate after this sample, and whether the estimator closed a window
// (the serial trigger for a congestion check).
type outRec struct {
	seq      uint64
	t        units.Time
	key      packet.FlowKey
	dstMAC   packet.MAC
	rate     units.Rate
	epoch    uint64 // routing epoch the sample resolved through
	id       int32
	port     int32
	kind     uint8
	boundary uint8 // 0 none, 1 FlowStart+1, 2 FlowEnd+1
	rateOk   bool
	updated  bool
}

// recBatch is one shard→merger hand-off unit.
type recBatch struct {
	shard   int
	recs    []outRec
	barrier *flushToken
}

// flushToken synchronizes Flush: the dispatcher hands one to every
// shard; each shard forwards it to the merger behind its last record;
// the merger closes done once all shards' tokens arrived and every
// record up to seqEnd has been applied.
type flushToken struct {
	seqEnd    uint64
	remaining int
	done      chan struct{}
}

// ShardedCollector is a concurrent collector pipeline that computes
// exactly what a serial Collector computes (see the file comment for the
// architecture and the equivalence argument).
//
// Threading contract: Ingest, Flush, Close, ExpireFlows, and
// SetPortMapper belong to one control goroutine (the sample source).
// Subscribe and SubscribeFlowBoundaries must be called before the first
// Ingest; callbacks fire on the merger goroutine, in serial stream
// order, and must not call back into the ShardedCollector. The
// monitoring read path (Stats counters, LinkUtilization, FlowsOnPort,
// FlowRate) is safe from any goroutine at any time and never takes a
// lock shared with the shard workers; Flow/Flows, which expose shard
// internals, require quiescence (call Flush first).
type ShardedCollector struct {
	cfg     ShardedConfig
	workers []*shardWorker

	in     []chan *sampleBatch
	freeIn []chan *sampleBatch
	out    chan *recBatch
	freeRe []chan *recBatch

	pending  []*sampleBatch // dispatcher's partially filled batches
	now      units.Time
	seq      uint64
	sweepSeq uint64 // seq at the last partial-batch sweep
	snap     int    // arena copy limit: headers + everything ingest reads
	ring     *Ring
	closed   bool

	// batchPool and recPool backstop the bounded free channels. The
	// channels satisfy the steady state; the pools absorb scheduling
	// bursts — when fewer cores than goroutines run, a producer can
	// drain its free channel dry (and a consumer can find its free
	// channel full) many times per timeslice, and without the backstop
	// every such moment allocated a fresh batch (the stray bytes/op the
	// sharded benchmarks used to leak).
	batchPool sync.Pool
	recPool   sync.Pool

	// resolver is the dispatcher's own pin on the versioned routing
	// plane, set when SetPortMapper is handed a RouteResolver; each
	// shard worker holds an independent Fork. routeEpoch is the epoch
	// the pipeline was last synced to at a batch boundary. epochRef,
	// when the resolver is an EpochSource, lets the per-Ingest epoch
	// check run as one inlined atomic load (see Collector.syncRoutes).
	resolver   RouteResolver
	epochRef   *atomic.Uint64
	routeEpoch uint64

	idAlloc atomic.Int32

	mg merger

	wgShards sync.WaitGroup
	mergerWG sync.WaitGroup

	// Per-shard hand-off instruments.
	dropped   []obs.Counter
	batches   []obs.Counter
	batchSize []*obs.Histogram
}

// shardWorker is one shard goroutine's state: a private serial Collector
// plus the record currently being filled (so the flow-boundary hook can
// annotate it from inside Ingest).
type shardWorker struct {
	sc  *ShardedCollector
	id  int
	col *Collector
	cur *outRec
	rb  *recBatch
}

// NewSharded builds and starts a sharded collector pipeline. The shard
// goroutines and the merger run until Close.
func NewSharded(cfg ShardedConfig) *ShardedCollector {
	cfg.fillDefaults()
	s := &ShardedCollector{cfg: cfg}
	n := cfg.Shards

	shardCfg := cfg.Config
	shardCfg.Metrics = nil   // instruments register once, below
	shardCfg.RingPackets = 0 // the dispatcher owns the ring

	s.workers = make([]*shardWorker, n)
	s.in = make([]chan *sampleBatch, n)
	s.freeIn = make([]chan *sampleBatch, n)
	s.freeRe = make([]chan *recBatch, n)
	s.out = make(chan *recBatch, cfg.Queue*n)
	s.pending = make([]*sampleBatch, n)
	s.dropped = make([]obs.Counter, n)
	s.batches = make([]obs.Counter, n)
	s.batchSize = make([]*obs.Histogram, n)

	for i := 0; i < n; i++ {
		w := &shardWorker{sc: s, id: i, col: New(shardCfg)}
		// The boundary hook annotates the in-flight record; the merger
		// re-fires boundaries in serial order.
		w.col.SubscribeFlowBoundaries(func(_ units.Time, _ packet.FlowKey, kind BoundaryKind) {
			if w.cur != nil {
				w.cur.boundary = uint8(kind) + 1
			}
		})
		s.workers[i] = w
		s.in[i] = make(chan *sampleBatch, cfg.Queue)
		s.freeIn[i] = make(chan *sampleBatch, cfg.Queue+2)
		s.freeRe[i] = make(chan *recBatch, cfg.Queue+2)
	}
	// Arena snap length: the shard's decode and estimator paths read
	// headers only (maximal IPv4 + TCP options), every payload-derived
	// quantity (PayloadLen, WireLen) coming from the IP TotalLen field —
	// so the dispatcher copies at most this many bytes per IPv4 frame
	// into the hand-off arena instead of a full MTU. With the UDP
	// sequence probe enabled the shard also reads 4 payload bytes at the
	// configured offset; extend the snap to cover them.
	s.snap = packet.EthernetHeaderLen + 60 + 60
	if cfg.UDPSeqEnabled {
		if u := packet.EthernetHeaderLen + 60 + packet.UDPHeaderLen + cfg.UDPSeqOffset + 4; u > s.snap {
			s.snap = u
		}
	}
	if cfg.RingPackets > 0 {
		s.ring = NewRing(cfg.RingPackets)
	}
	s.mg.init(s)
	if cfg.Metrics != nil {
		s.register(cfg.Metrics)
	}

	for i := 0; i < n; i++ {
		s.wgShards.Add(1)
		go s.shardLoop(i)
	}
	go func() {
		s.wgShards.Wait()
		close(s.out)
	}()
	s.mergerWG.Add(1)
	go func() {
		defer s.mergerWG.Done()
		s.mg.run()
	}()
	return s
}

// register exposes the pipeline's instruments: per-shard hand-off health
// (queue depth, drops, batches, batch sizes) plus aggregates under the
// serial collector's metric names, so dashboards work unchanged.
func (s *ShardedCollector) register(r *obs.Registry) {
	var swl []string
	if s.cfg.SwitchName != "" {
		swl = []string{obs.Label("switch", s.cfg.SwitchName)}
	}
	for i := range s.workers {
		labels := append(append([]string{}, swl...), obs.Label("shard", strconv.Itoa(i)))
		in := s.in[i]
		r.GaugeFunc("planck_shard_queue_depth", func() float64 { return float64(len(in)) }, labels...)
		r.MustRegister("planck_shard_dropped_total", &s.dropped[i], labels...)
		r.MustRegister("planck_shard_batches_total", &s.batches[i], labels...)
		s.batchSize[i] = r.Histogram("planck_shard_batch_samples", 1, labels...)
	}
	r.MustRegister("planck_collector_congestion_events_total", &s.mg.events, swl...)
	r.GaugeFunc("planck_collector_samples_total", func() float64 {
		var v int64
		for _, w := range s.workers {
			v += w.col.met.samples.Value()
		}
		return float64(v)
	}, swl...)
	r.GaugeFunc("planck_collector_flow_table_size", func() float64 {
		var v int64
		for _, w := range s.workers {
			v += w.col.met.flowTableSize.Value()
		}
		return float64(v)
	}, swl...)
}

// NumShards returns the shard count.
func (s *ShardedCollector) NumShards() int { return len(s.workers) }

// SetPortMapper installs (or, at a quiescent point, replaces) the
// routing state on every shard, re-resolving live flows exactly like the
// serial collector, and re-syncs the merger's port view.
func (s *ShardedCollector) SetPortMapper(m PortMapper) {
	s.Flush()
	rr, _ := m.(RouteResolver)
	s.resolver = rr
	s.epochRef = nil
	if rr != nil {
		s.routeEpoch = rr.Refresh()
		if es, ok := m.(EpochSource); ok {
			s.epochRef = es.EpochRef()
		}
	}
	for _, w := range s.workers {
		wm := m
		if rr != nil {
			// Views pin state per Refresh and are single-goroutine;
			// every shard worker resolves through its own fork.
			wm = rr.Fork()
		}
		w.col.SetPortMapper(wm)
	}
	s.resyncMergerPorts()
}

// resyncMergerPorts re-aligns the merger's lock-free read view with the
// shards' freshly re-resolved per-flow egress ports.
func (s *ShardedCollector) resyncMergerPorts() {
	v := &s.mg.view
	v.mu.Lock()
	for _, w := range s.workers {
		w.col.flows.Iterate(func(f *FlowState) {
			if f.id > 0 && int(f.id) < len(v.flows) && v.flows[f.id].live {
				s.mg.moveFlow(f.id, int32(f.outPort))
			}
		})
	}
	v.mu.Unlock()
}

// syncRoutes observes a routing-epoch change at a batch boundary: it
// drains the pipeline to a quiescent point, has every shard re-resolve
// its live flows at their last-sample times (identical to the serial
// collector's resync), and re-aligns the merger view. Between epoch
// changes it costs one atomic load and a compare. Per-sample
// attribution inside the shards still resolves by timestamp, so a
// commit landing mid-batch charges straddling samples to the epoch
// live at their timestamps in serial and sharded runs alike.
func (s *ShardedCollector) syncRoutes() {
	rr := s.resolver
	if rr == nil {
		return
	}
	// No-reroute fast path: one inlined atomic load of the publisher's
	// epoch counter (see Collector.syncRoutes for the ordering argument).
	if p := s.epochRef; p != nil && p.Load() == s.routeEpoch {
		return
	}
	e := rr.Refresh()
	if e == s.routeEpoch {
		return
	}
	s.routeEpoch = e
	s.Flush()
	for _, w := range s.workers {
		w.col.syncRoutes()
	}
	s.resyncMergerPorts()
}

// Subscribe registers fn for congestion events. Call before the first
// Ingest; fn runs on the merger goroutine in serial stream order.
func (s *ShardedCollector) Subscribe(fn func(ev CongestionEvent)) {
	s.mg.subs = append(s.mg.subs, fn)
}

// SubscribeFlowBoundaries registers fn for flow start/end observations.
// Call before the first Ingest; fn runs on the merger goroutine.
func (s *ShardedCollector) SubscribeFlowBoundaries(fn func(t units.Time, key packet.FlowKey, kind BoundaryKind)) {
	s.mg.boundary = append(s.mg.boundary, fn)
}

// flowShard hash-partitions a frame by its transport 5-tuple, peeking
// at the raw bytes (the full decode happens on the shard). The hash is
// the table hash — mixFlowHash over the packed tuple words, whose
// multiply-fold avalanches every input bit so flow populations with
// correlated low bytes (sequential ports, sequential addresses) spread
// across shards under the modulo — and it rides the batch to the
// shard, whose flow table probes with it instead of rehashing. Frames without a recognizable transport flow
// carry no flow-table state, so any stable assignment works; they go
// to shard 0 with hash 0 ("not precomputed").
func (s *ShardedCollector) flowShard(frame []byte) (int, uint64) {
	h, ok := flowHash(frame)
	if !ok {
		return 0, 0
	}
	return int(h % uint64(len(s.workers))), h
}

// Ingest accepts one sampled frame captured at time t, hash-partitions
// it, and hands it to its shard. Timestamps must be non-decreasing. The
// frame buffer is only borrowed for the call (it is copied into the
// batch arena). Decode failures are counted in Stats, not returned;
// only a timestamp regression is an error, mirroring the serial
// collector's contract at the pipeline boundary.
func (s *ShardedCollector) Ingest(t units.Time, frame []byte) error {
	if t < s.now {
		return fmt.Errorf("core: timestamp went backwards: %v after %v", t, s.now)
	}
	s.syncRoutes()
	s.ingestOne(t, frame)
	return nil
}

// IngestBatch accepts a batch of sampled frames, ts[i] stamping
// frames[i], dispatching each to its shard — the end-to-end batched
// sample path. It computes exactly what the equivalent Ingest loop
// computes; when the batch's timestamps are non-decreasing (the normal
// case) the per-frame regression check collapses to one scan. Frames
// are copied into batch arenas; the buffers are only borrowed.
func (s *ShardedCollector) IngestBatch(ts []units.Time, frames [][]byte) error {
	n := len(ts)
	if len(frames) < n {
		n = len(frames)
	}
	if n == 0 {
		return nil
	}
	s.syncRoutes()
	mono := ts[0] >= s.now
	for i := 1; mono && i < n; i++ {
		mono = ts[i] >= ts[i-1]
	}
	if mono {
		for i := 0; i < n; i++ {
			s.ingestOne(ts[i], frames[i])
		}
		return nil
	}
	var be *BatchError
	for i := 0; i < n; i++ {
		if err := s.Ingest(ts[i], frames[i]); err != nil {
			if be == nil {
				be = &BatchError{Index: i, Err: err}
			}
			be.Failed++
		}
	}
	if be != nil {
		return be
	}
	return nil
}

// ingestOne dispatches one timestamp-validated sample.
func (s *ShardedCollector) ingestOne(t units.Time, frame []byte) {
	s.now = t
	if s.ring != nil {
		s.ring.Push(t, frame)
	}
	// Sweep stale partial batches periodically. Without this, a shard
	// whose flows go quiet can hold an unsent partial batch forever; the
	// merger cannot advance past those sequence numbers, so its reorder
	// ring would grow without bound while the busy shards stream. The
	// sweep bounds any sample's time in a partial batch to one sweep
	// period (Shards×Batch samples), which also bounds event latency
	// under skewed traffic; its O(Shards) scan amortizes to O(1/Batch)
	// per sample.
	if s.seq-s.sweepSeq >= uint64(s.cfg.Batch*len(s.workers)) {
		s.sweep()
	}
	sh, h := s.flowShard(frame)
	// Snap the arena copy to the header-covering prefix (see s.snap).
	// Only IPv4 frames are safe to cut: for other ethertypes WireLen is
	// the capture length, which truncation would change. The ring above
	// always keeps the full frame.
	if len(frame) > s.snap && frame[12] == 0x08 && frame[13] == 0x00 {
		frame = frame[:s.snap]
	}
	b := s.pending[sh]
	if b == nil {
		b = s.getBatch(sh)
		s.pending[sh] = b
	}
	if b.n == s.cfg.Batch {
		n := b.n
		if s.cfg.DropOnFull {
			select {
			case s.in[sh] <- b:
				s.finishSend(sh, n)
				b = s.getBatch(sh)
				s.pending[sh] = b
			default:
				s.dropped[sh].Inc()
				return
			}
		} else {
			s.in[sh] <- b
			s.finishSend(sh, n)
			b = s.getBatch(sh)
			s.pending[sh] = b
		}
	}
	i := b.n
	b.time[i] = t
	b.seq[i] = s.seq
	b.hash[i] = h
	b.off[i] = int32(len(b.buf))
	b.ln[i] = int32(len(frame))
	b.buf = append(b.buf, frame...)
	b.n++
	s.seq++
}

// finishSend records hand-off telemetry for a batch of n samples. It
// takes the count, not the batch: once the batch is on the channel the
// shard owns it, and reading b.n here would race with the worker.
func (s *ShardedCollector) finishSend(sh, n int) {
	s.batches[sh].Inc()
	if h := s.batchSize[sh]; h != nil {
		h.Observe(int64(n))
	}
}

// sweep hands every non-empty partial batch to its shard. The sends
// block when a queue is full, even in lossy mode: these samples already
// carry sequence numbers, so dropping them would leave gaps the merger
// can never fill. The shard workers always drain, so the block is
// bounded by one queue's worth of processing.
func (s *ShardedCollector) sweep() {
	s.sweepSeq = s.seq
	for sh, b := range s.pending {
		if b != nil && b.n > 0 {
			n := b.n
			s.in[sh] <- b
			s.finishSend(sh, n)
			s.pending[sh] = nil
		}
	}
}

func (s *ShardedCollector) getBatch(sh int) *sampleBatch {
	select {
	case b := <-s.freeIn[sh]:
		b.reset()
		return b
	default:
	}
	if b, _ := s.batchPool.Get().(*sampleBatch); b != nil {
		b.reset()
		return b
	}
	return newSampleBatch(s.cfg.Batch)
}

// Flush drains the pipeline: every sample accepted before the call is
// fully processed — shard flow tables updated, merger view current, all
// events delivered — before Flush returns. Call it before reading
// quiescent-only state or at a batch boundary of the sample source.
func (s *ShardedCollector) Flush() {
	if s.closed {
		return
	}
	tok := &flushToken{seqEnd: s.seq, remaining: len(s.workers), done: make(chan struct{})}
	for sh, b := range s.pending {
		if b != nil && b.n > 0 {
			n := b.n
			s.in[sh] <- b
			s.finishSend(sh, n)
			s.pending[sh] = nil
		}
	}
	for sh := range s.workers {
		s.in[sh] <- &sampleBatch{barrier: tok}
	}
	<-tok.done
}

// Close flushes the pipeline and stops its goroutines. The collector
// must not be used after Close.
func (s *ShardedCollector) Close() {
	if s.closed {
		return
	}
	s.Flush()
	s.closed = true
	for sh := range s.in {
		close(s.in[sh])
	}
	s.mergerWG.Wait()
}

// shardLoop is one shard worker: it drains its input queue, runs every
// sample through its private serial Collector, and forwards per-sample
// records to the merger.
func (s *ShardedCollector) shardLoop(id int) {
	defer s.wgShards.Done()
	w := s.workers[id]
	for b := range s.in[id] {
		if b.barrier != nil {
			w.flushRecs()
			s.out <- &recBatch{shard: id, barrier: b.barrier}
			continue
		}
		for i := 0; i < b.n; i++ {
			rec := w.nextRec()
			w.process(b.time[i], b.buf[b.off[i]:b.off[i]+b.ln[i]], b.seq[i], b.hash[i], rec)
		}
		select {
		case s.freeIn[id] <- b:
		default:
			s.batchPool.Put(b)
		}
	}
	w.flushRecs()
}

func (w *shardWorker) nextRec() *outRec {
	if w.rb == nil {
		select {
		case rb := <-w.sc.freeRe[w.id]:
			rb.recs = rb.recs[:0]
			rb.barrier = nil
			w.rb = rb
		default:
			if rb, _ := w.sc.recPool.Get().(*recBatch); rb != nil {
				rb.shard = w.id // pooled batches cross shards
				rb.recs = rb.recs[:0]
				rb.barrier = nil
				w.rb = rb
			} else {
				w.rb = &recBatch{shard: w.id, recs: make([]outRec, 0, w.sc.cfg.Batch)}
			}
		}
	}
	w.rb.recs = append(w.rb.recs, outRec{})
	return &w.rb.recs[len(w.rb.recs)-1]
}

func (w *shardWorker) flushRecs() {
	if w.rb != nil && len(w.rb.recs) > 0 {
		w.sc.out <- w.rb
		w.rb = nil
	}
}

// process runs one sample through the shard's serial Collector and
// captures its observable effects in rec. h is the dispatcher's flow
// hash, reused by the collector's table probe (0 = none).
func (w *shardWorker) process(t units.Time, frame []byte, seq, h uint64, rec *outRec) {
	rec.seq = seq
	rec.t = t
	rec.kind = recSkip
	rec.boundary = 0
	w.cur = rec
	c := w.col
	ruBefore := c.met.rateUpdates.Value()
	err := c.ingestHashed(t, frame, h)
	w.cur = nil
	if err != nil {
		return // decode failure: counted by the shard collector
	}
	d := &c.dec
	if !d.Has(packet.LayerTCP) && !(c.cfg.UDPSeqEnabled && d.Has(packet.LayerUDP)) {
		return
	}
	key, ok := d.Flow()
	if !ok {
		return
	}
	if h == 0 {
		h = HashFlowKey(key)
	}
	f := c.flows.Lookup(h, key)
	if f == nil {
		return // e.g. UDP datagram too short to carry the counter
	}
	if f.id == 0 {
		f.id = w.sc.idAlloc.Add(1)
	}
	rec.kind = recFlow
	rec.id = f.id
	rec.key = key
	rec.dstMAC = f.DstMAC
	rec.port = int32(f.outPort)
	rec.epoch = f.routeEpoch
	rec.rate, rec.rateOk = f.Rate()
	rec.updated = c.met.rateUpdates.Value() > ruBefore
	if len(w.rb.recs) == cap(w.rb.recs) {
		w.flushRecs()
	}
}

// Stats returns the merged counters across shards plus the merger's
// event count. Counter fields are safe to read live (they are atomic
// sums); Flows and OutOfOrder walk shard flow tables and are only
// well-defined at quiescence (after Flush).
func (s *ShardedCollector) Stats() Stats {
	var st Stats
	for _, w := range s.workers {
		ws := w.col.Stats()
		st.Samples += ws.Samples
		st.DecodeErrors += ws.DecodeErrors
		st.NonTCP += ws.NonTCP
		st.Flows += ws.Flows
		st.RateUpdates += ws.RateUpdates
		st.OutOfOrder += ws.OutOfOrder
		st.UnmappedOutput += ws.UnmappedOutput
	}
	st.EventsEmitted = s.mg.events.Value()
	return st
}

// Shard returns shard i's underlying serial Collector for inspection.
// Only meaningful at quiescence (after Flush).
func (s *ShardedCollector) Shard(i int) *Collector { return s.workers[i].col }

// Dropped returns the total samples shed across shards (always 0 unless
// DropOnFull is set).
func (s *ShardedCollector) Dropped() int64 {
	var n int64
	for i := range s.dropped {
		n += s.dropped[i].Value()
	}
	return n
}

// FlowRate answers the per-flow query API from the merger's view; safe
// from any goroutine (values are as of the last merged sample).
func (s *ShardedCollector) FlowRate(k packet.FlowKey) (units.Rate, bool) {
	v := &s.mg.view
	v.mu.RLock()
	defer v.mu.RUnlock()
	id, ok := v.byKey[k]
	if !ok {
		return 0, false
	}
	f := &v.flows[id]
	if !f.rateOk {
		return 0, false
	}
	return f.rate, true
}

// Flow returns the full flow record for k, or nil. Quiescent-only; the
// record is recycled when the flow expires, so do not retain the
// pointer across ExpireFlows.
func (s *ShardedCollector) Flow(k packet.FlowKey) *FlowState {
	h := HashFlowKey(k)
	for _, w := range s.workers {
		if f := w.col.flows.Lookup(h, k); f != nil {
			return f
		}
	}
	return nil
}

// Flows iterates over all flow records across shards. Quiescent-only.
func (s *ShardedCollector) Flows(fn func(f *FlowState)) {
	for _, w := range s.workers {
		w.col.Flows(fn)
	}
}

// LinkUtilization sums the fresh flow-rate estimates mapped to egress
// port p across every shard, from the merger's view; safe from any
// goroutine.
func (s *ShardedCollector) LinkUtilization(p int) units.Rate {
	v := &s.mg.view
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.linkUtilization(p, s.cfg.FlowFreshness)
}

// FlowsOnPort snapshots the fresh flows mapped to egress port p; safe
// from any goroutine.
func (s *ShardedCollector) FlowsOnPort(p int) []FlowInfo {
	v := &s.mg.view
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.flowsOnPort(p, s.cfg.FlowFreshness)
}

// CooldownSnapshot returns the merger's last congestion-event time per
// port, omitting ports that never fired; safe from any goroutine. The
// merger writes these under the view lock, so a snapshot taken after a
// Flush reflects every accepted sample.
func (s *ShardedCollector) CooldownSnapshot() map[int]units.Time {
	return s.CooldownSnapshotInto(nil)
}

// CooldownSnapshotInto is CooldownSnapshot writing into dst (cleared
// first), so periodic snapshotters stop allocating a map per call. A
// nil dst allocates one. Returns dst.
func (s *ShardedCollector) CooldownSnapshotInto(dst map[int]units.Time) map[int]units.Time {
	v := &s.mg.view
	v.mu.RLock()
	defer v.mu.RUnlock()
	if dst == nil {
		dst = make(map[int]units.Time, len(s.mg.lastEvent))
	} else {
		clear(dst)
	}
	for p, t := range s.mg.lastEvent {
		if t > -1<<62 {
			dst[p] = t
		}
	}
	return dst
}

// RestoreCooldowns seeds the merger's per-port event cooldowns from a
// snapshot of a previous incarnation, taking the later time per port
// (see Collector.RestoreCooldowns). Call it from the control goroutine
// before the first Ingest, or after a Flush.
func (s *ShardedCollector) RestoreCooldowns(snap map[int]units.Time) {
	v := &s.mg.view
	v.mu.Lock()
	defer v.mu.Unlock()
	for p, t := range snap {
		if p >= 0 && p < len(s.mg.lastEvent) && t > s.mg.lastEvent[p] {
			s.mg.lastEvent[p] = t
		}
	}
}

// ExpireFlows drops flow records idle longer than idle from every shard
// and the merger view, returning how many were removed. It implies a
// Flush; call from the control goroutine.
func (s *ShardedCollector) ExpireFlows(now units.Time, idle units.Duration) int {
	s.Flush()
	v := &s.mg.view
	v.mu.Lock()
	defer v.mu.Unlock()
	n := 0
	for _, w := range s.workers {
		c := w.col
		removed := 0
		c.flows.Iterate(func(f *FlowState) {
			if now.Sub(f.LastSeen) > idle {
				if f.outPort >= 0 && f.outPort < len(c.portFlows) {
					c.portFlows[f.outPort] = removeFlow(c.portFlows[f.outPort], f)
				}
				id := f.id // Remove recycles the record
				c.flows.Remove(f)
				if id > 0 {
					s.mg.dropFlow(id)
				}
				removed++
			}
		})
		if removed > 0 {
			c.met.flowTableSize.Set(int64(c.flows.Len()))
		}
		n += removed
	}
	return n
}

// DumpPcap writes the vantage-point ring to w as a pcap file (§6.1).
// The ring is owned by the dispatcher, in global arrival order; call
// from the control goroutine.
func (s *ShardedCollector) DumpPcap(w io.Writer) error {
	if s.ring == nil {
		return fmt.Errorf("core: sharded collector %q has no sample ring", s.cfg.SwitchName)
	}
	return s.ring.WritePcap(w)
}

// RingBuffer exposes the vantage-point buffer (nil when disabled).
func (s *ShardedCollector) RingBuffer() *Ring { return s.ring }
