// Package core implements the Planck collector — the paper's primary
// contribution. A collector consumes the raw frame stream arriving on a
// switch's oversubscribed monitor port and turns it into:
//
//   - per-flow throughput estimates computed from TCP sequence numbers,
//     which are robust to the unknown, load-dependent sampling rate that
//     oversubscribed mirroring produces (§3.2.2);
//   - per-egress-link utilization, by mapping each flow to its output
//     port using controller-shared routing state (§3.2.1);
//   - threshold-crossing congestion events annotated with the flows on
//     the link and their rates (§3.3);
//   - a vantage-point ring of raw samples dumpable as pcap (§6.1).
//
// The package is deliberately free of simulator dependencies: Ingest
// takes (timestamp, frame bytes), so the same collector runs against the
// simulator, a pcap file, or a live encapsulated sample stream.
package core

import (
	"planck/internal/packet"
	"planck/internal/units"
)

// RateEstimator tracks one flow's throughput from sampled sequence
// numbers using the paper's burst-clustering scheme: estimation windows
// end either when a gap of at least MinGap separates two samples (a burst
// boundary — common during slow start) or when a window exceeds MaxBurst
// (steady state, where gaps vanish). Each window's rate is the sequence
// delta across the whole window, so idle gaps between bursts are included
// and the estimate converges to the flow's average rate rather than its
// in-burst line rate — this is what turns Fig. 10(a)'s jitter into
// Fig. 10(b)'s smooth ramp.
type RateEstimator struct {
	MinGap   units.Duration
	MaxBurst units.Duration

	started  bool
	baseSeq  uint32
	lastSeq  int64 // relative 64-bit stream offset of the latest sample
	lastT    units.Time
	winSeq   int64
	winT     units.Time
	rate     units.Rate
	rateAt   units.Time
	haveRate bool

	// OOO counts samples ignored because their sequence number regressed
	// (reordering or retransmission, indistinguishable at the collector;
	// the paper ignores both for estimation).
	OOO int64
	// Samples counts sequence-carrying samples folded in.
	Samples int64
}

// Estimator defaults from §3.2.2 and footnote 2.
const (
	DefaultMinGap   = 200 * units.Microsecond
	DefaultMaxBurst = 700 * units.Microsecond
)

// NewRateEstimator returns an estimator with the paper's constants.
func NewRateEstimator() *RateEstimator {
	return &RateEstimator{MinGap: DefaultMinGap, MaxBurst: DefaultMaxBurst}
}

// Observe folds in one sample with sequence number seq taken at time t.
// It returns true when the sample closed an estimation window and updated
// the rate.
func (e *RateEstimator) Observe(t units.Time, seq uint32) bool {
	e.Samples++
	if !e.started {
		e.started = true
		e.baseSeq = seq
		e.lastSeq = 0
		e.lastT = t
		e.winSeq = 0
		e.winT = t
		return false
	}
	// Relative offset via wrap-safe 32-bit delta against the latest
	// in-order sample.
	delta := int64(int32(seq - uint32(uint64(e.lastSeq)+uint64(e.baseSeq))))
	if delta < 0 {
		e.OOO++
		return false
	}
	off := e.lastSeq + delta

	updated := false
	gap := t.Sub(e.lastT)
	if gap >= e.MinGap || t.Sub(e.winT) >= e.MaxBurst {
		dur := t.Sub(e.winT)
		if dur > 0 {
			e.rate = units.RateOf(off-e.winSeq, dur)
			e.rateAt = t
			e.haveRate = true
			updated = true
		}
		e.winSeq = off
		e.winT = t
	}
	e.lastSeq = off
	e.lastT = t
	return updated
}

// Rate returns the latest estimate and when it was made.
func (e *RateEstimator) Rate() (units.Rate, units.Time, bool) {
	return e.rate, e.rateAt, e.haveRate
}

// StreamBytes returns the relative stream offset of the newest sample —
// the total bytes the flow has pushed past this switch since first seen,
// regardless of how few samples survived mirroring.
func (e *RateEstimator) StreamBytes() int64 { return e.lastSeq }

// FlowState is the collector's NetFlow-like record for one flow.
type FlowState struct {
	Key    packet.FlowKey
	DstMAC packet.MAC // latest routing label seen (changes on reroute)

	FirstSeen units.Time
	LastSeen  units.Time

	SampledPackets int64
	SampledBytes   int64

	Est RateEstimator

	// Rtx, when retransmission tracking is enabled, infers the flow's
	// retransmission rate from duplicate sequence numbers (§3.2.2
	// extension).
	Rtx *RetransmitEstimator

	// Pkt estimates throughput for flows whose sequence numbers count
	// packets (UDP with an application counter); nil for TCP flows.
	Pkt *PacketSeqEstimator

	outPort int // cached output-port mapping, -1 unknown

	// routeEpoch is the routing epoch outPort was resolved under, as
	// stamped by remapFlowAt from the resolver's answer. A mismatch
	// with the collector's synced epoch re-resolves on the next
	// sample; 0 throughout when no RouteResolver is installed.
	routeEpoch uint64

	// id is a process-wide dense identifier assigned by the sharded
	// pipeline on first sight (0 = unassigned); the merger's flow view
	// is indexed by it. Unused in serial operation.
	id int32

	// hash caches the record's flow hash so FlowTable.Remove and port
	// remaps relocate it without rehashing; live marks a slab record as
	// present in the table (false = free-listed). Both are maintained
	// by FlowTable.
	hash uint64
	live bool
}

// Rate returns the flow's latest throughput estimate.
func (f *FlowState) Rate() (units.Rate, bool) {
	if f.Pkt != nil {
		r, _, ok := f.Pkt.Rate()
		return r, ok
	}
	r, _, ok := f.Est.Rate()
	return r, ok
}

// RetransmitRate returns the inferred retransmission rate, when tracking
// is enabled and enough samples exist.
func (f *FlowState) RetransmitRate() (units.Rate, bool) {
	if f.Rtx == nil {
		return 0, false
	}
	return f.Rtx.Rate()
}

// OutPort returns the flow's egress port at this switch (-1 unknown).
func (f *FlowState) OutPort() int { return f.outPort }

// RouteEpoch returns the routing epoch the flow's egress port was
// resolved under (0 when no RouteResolver is installed). An aggregation
// plane merging reports from several vantage collectors uses it to
// order duplicate reports of the same flow across epoch skew.
func (f *FlowState) RouteEpoch() uint64 { return f.routeEpoch }
