package core

// This file implements the collector's flow table: an open-addressing
// hash table with linear probing, backward-shift deletion, and
// FlowState records allocated inline from never-moving slabs. The
// built-in map[FlowKey]*FlowState it replaces costs a generic hash, a
// bucket walk, and a heap-pointer dereference per sample; here a lookup
// is one multiply-mix hash plus a short probe over 16-byte slots that
// usually resolves in a single cache line, and the hash itself is
// computed once per sample and shared with the sharded dispatcher's
// partition decision (see flowHash). This is the same design pressure
// NetFlow-style collectors face: per-packet flow-record cost dominates,
// so the table is the hot path.
//
// Invariants:
//   - slot occupancy is f != nil; slot.hash caches the record's hash so
//     probes compare 8 bytes before the 13-byte key;
//   - records never move: slabs are fixed-size arrays kept alive for
//     the table's lifetime, so *FlowState pointers handed out (port
//     lists, Flow()) stay valid until the record is Removed;
//   - Remove recycles the record through a free list and zeroes it, so
//     pointers obtained before a Remove must not be retained across it;
//   - deletion backward-shifts the probe chain (no tombstones), so
//     probe lengths never degrade as flows churn.

import (
	"encoding/binary"

	"planck/internal/obs"
	"planck/internal/packet"
)

const (
	// flowSlabSize is how many FlowState records one slab holds. Slabs
	// never move and are never freed; expiry recycles records through
	// the free list.
	flowSlabSize = 256
	// flowTableMinSlots is the initial probe-array size (power of two).
	flowTableMinSlots = 64
)

// Odd 64-bit mixing constants (golden ratio and Murmur3/xxhash
// derivatives) for the two-word flow hash.
const (
	hashC1 = 0x9e3779b97f4a7c15
	hashC2 = 0xc2b2ae3d27d4eb4f
)

// fmix64 is Murmur3's 64-bit finalizer: full avalanche, so both the
// table's mask-indexing and the dispatcher's modulo see well-mixed bits
// even for flow populations with correlated low bytes (sequential
// ports, sequential addresses).
func fmix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// mixFlowHash combines the two packed words of a 5-tuple. The result is
// never zero: zero is reserved as the "hash not precomputed" sentinel
// carried through the batch pipeline.
func mixFlowHash(a, b uint64) uint64 {
	h := fmix64(a*hashC1 ^ b*hashC2)
	if h == 0 {
		h = hashC1
	}
	return h
}

// HashFlowKey hashes a decoded 5-tuple for FlowTable addressing. It is
// bit-identical to flowHash over the raw frame bytes of the same tuple,
// so a hash computed once at the dispatcher serves both the shard
// partition and the shard's table probe, and key-based query paths
// (FlowRate, Flow) find records inserted from frame bytes.
// Written as one expression to stay under the inlining budget; callers
// in query loops (and the table microbenchmark) get it for free.
func HashFlowKey(k packet.FlowKey) uint64 {
	return mixFlowHash(
		uint64(binary.BigEndian.Uint32(k.SrcIP[:]))<<32|uint64(binary.BigEndian.Uint32(k.DstIP[:])),
		uint64(k.SrcPort)<<24|uint64(k.DstPort)<<8|uint64(k.Proto))
}

// flowHash computes the same hash as HashFlowKey straight from raw
// frame bytes, without a full decode — the dispatcher's per-sample
// peek. ok is false when the frame carries no recognizable IPv4 TCP/UDP
// transport flow (such frames hold no flow-table state; any stable
// shard assignment works for them).
func flowHash(frame []byte) (uint64, bool) {
	if len(frame) < packet.EthernetHeaderLen+packet.IPv4MinHeaderLen {
		return 0, false
	}
	if frame[12] != 0x08 || frame[13] != 0x00 {
		return 0, false
	}
	ip := frame[packet.EthernetHeaderLen:]
	if ip[0]>>4 != 4 {
		return 0, false
	}
	ihl := int(ip[0]&0x0f) * 4
	if ihl < packet.IPv4MinHeaderLen || len(ip) < ihl+4 {
		return 0, false
	}
	proto := ip[9]
	if proto != uint8(packet.IPProtocolTCP) && proto != uint8(packet.IPProtocolUDP) {
		return 0, false
	}
	a := binary.BigEndian.Uint64(ip[12:20]) // src ‖ dst IPv4
	sp := uint64(ip[ihl])<<8 | uint64(ip[ihl+1])
	dp := uint64(ip[ihl+2])<<8 | uint64(ip[ihl+3])
	return mixFlowHash(a, sp<<24|dp<<8|uint64(proto)), true
}

// flowSlot is one probe-array entry: the record's cached hash plus the
// pointer into its slab. Empty slots have f == nil.
type flowSlot struct {
	hash uint64
	f    *FlowState
}

// FlowTable is the open-addressed flow-record store. The zero value is
// ready to use; it is not safe for concurrent mutation (each collector
// goroutine owns one).
type FlowTable struct {
	slots  []flowSlot
	mask   uint64
	growAt int // count at which the probe array doubles (~75% load)
	count  int

	slabs [][]FlowState
	free  []*FlowState

	// probe, when set, observes the probe length of each insert — a
	// cheap standing proxy for table health that stays off the
	// per-lookup path.
	probe *obs.Histogram
}

// Len returns the number of live records.
func (t *FlowTable) Len() int { return t.count }

// Lookup returns the record for (h, k), or nil. h must be HashFlowKey(k).
func (t *FlowTable) Lookup(h uint64, k packet.FlowKey) *FlowState {
	if t.count == 0 {
		return nil
	}
	mask := t.mask
	for i := h & mask; ; i = (i + 1) & mask {
		s := t.slots[i]
		if s.f == nil {
			return nil
		}
		if s.hash == h && s.f.Key == k {
			return s.f
		}
	}
}

// GetOrInsert returns the record for (h, k), creating it when absent.
// A created record is zeroed except for Key (and the table's internal
// bookkeeping); the caller initializes the rest. h must be
// HashFlowKey(k).
func (t *FlowTable) GetOrInsert(h uint64, k packet.FlowKey) (f *FlowState, inserted bool) {
	if t.count >= t.growAt {
		t.rehash()
	}
	mask := t.mask
	i := h & mask
	for dist := int64(0); ; dist++ {
		s := &t.slots[i]
		if s.f == nil {
			f = t.alloc()
			f.Key = k
			f.hash = h
			f.live = true
			s.hash = h
			s.f = f
			t.count++
			if t.probe != nil {
				t.probe.Observe(dist)
			}
			return f, true
		}
		if s.hash == h && s.f.Key == k {
			return s.f, false
		}
		i = (i + 1) & mask
	}
}

// Remove deletes f from the table, backward-shifting the probe chain so
// no tombstone is left, and recycles the record. f must be a live
// record of this table; it is zeroed and must not be used afterwards.
func (t *FlowTable) Remove(f *FlowState) {
	mask := t.mask
	i := f.hash & mask
	for t.slots[i].f != f {
		i = (i + 1) & mask
	}
	// Backward shift: any later chain member whose probe distance
	// reaches back to slot i (or earlier) can legally occupy i; pull the
	// first such member up and continue from its slot until a hole.
	for {
		j := (i + 1) & mask
		for {
			s := t.slots[j]
			if s.f == nil {
				t.slots[i] = flowSlot{}
				t.count--
				*f = FlowState{}
				t.free = append(t.free, f)
				return
			}
			if (j-s.hash)&mask >= (j-i)&mask {
				t.slots[i] = s
				i = j
				break
			}
			j = (j + 1) & mask
		}
	}
}

// Iterate calls fn for every live record, in slab (insertion-slot)
// order. Removing records during iteration — including the current one
// — is safe: iteration walks the never-moving slabs, not the probe
// array. Inserting during iteration is not.
func (t *FlowTable) Iterate(fn func(*FlowState)) {
	for _, slab := range t.slabs {
		for i := range slab {
			if slab[i].live {
				fn(&slab[i])
			}
		}
	}
}

// alloc hands out a zeroed record from the free list, cutting a new
// slab when empty. Records never move once allocated.
func (t *FlowTable) alloc() *FlowState {
	if n := len(t.free); n > 0 {
		f := t.free[n-1]
		t.free = t.free[:n-1]
		return f
	}
	slab := make([]FlowState, flowSlabSize)
	t.slabs = append(t.slabs, slab)
	for i := flowSlabSize - 1; i > 0; i-- {
		t.free = append(t.free, &slab[i])
	}
	return &slab[0]
}

// rehash doubles the probe array (or cuts the initial one) and
// reinserts every live slot. Records themselves do not move.
func (t *FlowTable) rehash() {
	n := uint64(len(t.slots)) * 2
	if n == 0 {
		n = flowTableMinSlots
	}
	slots := make([]flowSlot, n)
	mask := n - 1
	for _, s := range t.slots {
		if s.f == nil {
			continue
		}
		i := s.hash & mask
		for slots[i].f != nil {
			i = (i + 1) & mask
		}
		slots[i] = s
	}
	t.slots = slots
	t.mask = mask
	t.growAt = int(n - n/4)
}

// ProbeStats scans the probe array and returns the mean and maximum
// probe length a Lookup of each live record would take right now — an
// on-demand health check that costs nothing on the ingest path.
func (t *FlowTable) ProbeStats() (mean float64, max int) {
	if t.count == 0 {
		return 0, 0
	}
	var total uint64
	for j := range t.slots {
		s := t.slots[j]
		if s.f == nil {
			continue
		}
		d := int((uint64(j) - s.hash) & t.mask)
		total += uint64(d)
		if d > max {
			max = d
		}
	}
	return float64(total) / float64(t.count), max
}
