package core

// This file implements the collector's flow table: an open-addressing
// hash table with linear probing accelerated by Swiss-table-style group
// probing, backward-shift deletion, and FlowState records allocated
// inline from never-moving slabs. The built-in map[FlowKey]*FlowState
// it replaced costs a generic hash, a bucket walk, and a heap-pointer
// dereference per sample; here a lookup is one folded-multiply hash
// plus a single 8-slot group probe that resolves in one word-wide
// compare for resident flows, and the hash itself is computed once per
// sample and shared with the sharded dispatcher's partition decision
// (see flowHash). This is the same design pressure NetFlow-style
// collectors face: per-packet flow-record cost dominates, so the table
// is the hot path.
//
// Layout: beside the 16-byte probe slots lives a dense control array of
// one byte per slot — 0x00 for empty, 0x80|tag for occupied, where tag
// is the top 7 bits of the slot's hash. A probe loads the 8 control
// bytes starting at the home slot as one little-endian word (the array
// carries a 7-byte mirror tail so the load never branches on wrap) and
// matches the tag against all 8 at once with SWAR bit tricks — no slot
// or slab memory is touched until a tag matches — so the common case
// resolves the entire probe chain, match or miss, from a single
// unaligned word. Because occupied control bytes always have the high
// bit set, the classic zero-byte detector is exact for empties (its
// false positives require a 0x01 byte, which the encoding never
// produces); tag matches may rarely be false positives and are rejected
// by the 8-byte hash compare that follows.
//
// Invariants:
//   - slot occupancy is f != nil ⇔ ctrl byte has the high bit set;
//     slot.hash caches the record's hash so probes compare 8 bytes
//     before the 13-byte key;
//   - probe order is plain linear probing over slots; the control
//     windows slide along that order, so group probing changes the scan
//     width, never the placement;
//   - ctrl[len(slots)+j] mirrors ctrl[j] for j < groupWidth-1; every
//     control write goes through setCtrl to keep the mirror current;
//   - records never move: slabs are fixed-size arrays kept alive for
//     the table's lifetime, so *FlowState pointers handed out (port
//     lists, Flow()) stay valid until the record is Removed;
//   - Remove recycles the record through a free list and zeroes it, so
//     pointers obtained before a Remove must not be retained across it;
//   - deletion backward-shifts the probe chain (no tombstones), so
//     probe lengths never degrade as flows churn.

import (
	"encoding/binary"
	"math/bits"
	"unsafe"

	"planck/internal/obs"
	"planck/internal/packet"
)

const (
	// flowSlabSize is how many FlowState records one slab holds. Slabs
	// never move and are never freed; expiry recycles records through
	// the free list.
	flowSlabSize = 256
	// flowTableMinSlots is the initial probe-array size (power of two).
	flowTableMinSlots = 64

	// groupWidth is the number of control bytes (slots) matched per
	// word-wide probe step.
	groupWidth = 8
	// ctrlEmpty marks an unoccupied slot; occupied slots carry
	// 0x80 | (hash >> 57).
	ctrlEmpty = 0x00

	// SWAR constants: ctrlLoBits broadcasts a byte across a word,
	// ctrlHiBits isolates each byte's high bit.
	ctrlLoBits = 0x0101010101010101
	ctrlHiBits = 0x8080808080808080
)

// Odd 64-bit mixing constants (golden ratio and a Murmur3/xxhash
// derivative) seeding the two-word folded-multiply flow hash.
const (
	hashC1 = 0x9e3779b97f4a7c15
	hashC2 = 0xc2b2ae3d27d4eb4f
)

// ctrlTag returns the control byte for an occupied slot holding hash h:
// occupancy bit plus the top 7 hash bits. The mask-indexing consumes
// the low bits, so tag and home slot stay independent.
func ctrlTag(h uint64) uint8 { return 0x80 | uint8(h>>57) }

// matchZeroBytes returns a word with 0x80 set in every byte of w that
// is zero. Exact when w's nonzero bytes all have their high bit set
// (the control-array empty scan); when w is a XOR against a broadcast
// tag, bytes above a zero byte can false-positive — callers reject
// those with the slot's full hash compare.
func matchZeroBytes(w uint64) uint64 {
	return (w - ctrlLoBits) &^ w & ctrlHiBits
}

// mixFlowHash combines the two packed words of a 5-tuple with one
// folded 64×64→128 multiply (the wyhash/xxh3 mixing core): both seeded
// operands feed a widening multiply whose halves are XORed, giving full
// avalanche — the table's mask-indexing, the control tag's top bits,
// and the dispatcher's modulo all see well-mixed bits even for flow
// populations with correlated low bytes (sequential ports, sequential
// addresses). The result is never zero: zero is reserved as the "hash
// not precomputed" sentinel carried through the batch pipeline.
func mixFlowHash(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a^hashC1, b^hashC2)
	h := hi ^ lo
	if h == 0 {
		h = hashC1
	}
	return h
}

// HashFlowKey hashes a decoded 5-tuple for FlowTable addressing. It is
// bit-identical to flowHash over the raw frame bytes of the same tuple,
// so a hash computed once at the dispatcher serves both the shard
// partition and the shard's table probe, and key-based query paths
// (FlowRate, Flow) find records inserted from frame bytes.
//
// The address word is read with one unsafe 8-byte load of the key's
// first two fields (SrcIP and DstIP are adjacent wire-order byte
// arrays at offset 0, fixed by layout) rather than per-field byte
// assembly: the load exactly matches the first word store of the
// caller's key copy, so it store-forwards instead of stalling, and the
// frame-side twin reads the same bytes with NativeEndian so both sides
// agree on every platform. The ports/proto word comes from plain field
// reads, all contained in the copy's second word store.
func HashFlowKey(k packet.FlowKey) uint64 {
	return mixFlowHash(
		*(*uint64)(unsafe.Pointer(&k)),
		uint64(k.SrcPort)<<24|uint64(k.DstPort)<<8|uint64(k.Proto))
}

// flowHash computes the same hash as HashFlowKey straight from raw
// frame bytes, without a full decode — the dispatcher's per-sample
// peek. ok is false when the frame carries no recognizable IPv4 TCP/UDP
// transport flow (such frames hold no flow-table state; any stable
// shard assignment works for them).
func flowHash(frame []byte) (uint64, bool) {
	if len(frame) < packet.EthernetHeaderLen+packet.IPv4MinHeaderLen {
		return 0, false
	}
	if frame[12] != 0x08 || frame[13] != 0x00 {
		return 0, false
	}
	ip := frame[packet.EthernetHeaderLen:]
	if ip[0]>>4 != 4 {
		return 0, false
	}
	ihl := int(ip[0]&0x0f) * 4
	if ihl < packet.IPv4MinHeaderLen || len(ip) < ihl+4 {
		return 0, false
	}
	proto := ip[9]
	if proto != uint8(packet.IPProtocolTCP) && proto != uint8(packet.IPProtocolUDP) {
		return 0, false
	}
	// Native-order read of src ‖ dst — the same bytes HashFlowKey loads
	// from the key struct, interpreted identically.
	a := binary.NativeEndian.Uint64(ip[12:20])
	sp := uint64(ip[ihl])<<8 | uint64(ip[ihl+1])
	dp := uint64(ip[ihl+2])<<8 | uint64(ip[ihl+3])
	return mixFlowHash(a, sp<<24|dp<<8|uint64(proto)), true
}

// flowSlot is one probe-array entry: the record's cached hash plus the
// pointer into its slab. Empty slots have f == nil.
type flowSlot struct {
	hash uint64
	f    *FlowState
}

// FlowTable is the open-addressed flow-record store. The zero value is
// ready to use; it is not safe for concurrent mutation (each collector
// goroutine owns one).
type FlowTable struct {
	// ctrl is the control array: one tag byte per slot, probed
	// word-at-a-time before any slot is touched. A probe loads the
	// 8-byte window starting at the home slot itself (unaligned), so
	// len(ctrl) == len(slots) + groupWidth - 1: the tail mirrors the
	// first groupWidth-1 bytes so a window starting near the end of the
	// ring reads the wrapped slots without branching. The zero byte
	// means empty, so a fresh array needs no initialization.
	ctrl   []uint8
	slots  []flowSlot
	mask   uint64
	growAt int // count at which the probe array doubles (~75% load)
	count  int

	slabs [][]FlowState
	free  []*FlowState

	// probe, when set, observes the probe length of each insert — a
	// cheap standing proxy for table health that stays off the
	// per-lookup path.
	probe *obs.Histogram
}

// Len returns the number of live records.
func (t *FlowTable) Len() int { return t.count }

// keyFirstWord reads the first 8 bytes of a resident FlowKey (SrcIP ‖
// DstIP) as one native-order machine word. Callers compare it against a
// word built by the same native-order read of the corresponding frame
// or key bytes, so the interpretation cancels out on any endianness.
func keyFirstWord(k *packet.FlowKey) uint64 {
	return *(*uint64)(unsafe.Pointer(k))
}

// setCtrl writes one control byte and keeps the wrap mirror current.
func (t *FlowTable) setCtrl(i uint64, v uint8) {
	t.ctrl[i] = v
	if i < groupWidth-1 {
		t.ctrl[i+t.mask+1] = v
	}
}

// Lookup returns the record for (h, k), or nil. h must be HashFlowKey(k).
func (t *FlowTable) Lookup(h uint64, k packet.FlowKey) *FlowState {
	return t.LookupScalar(h, keyFirstWord(&k), k.SrcPort, k.DstPort, k.Proto)
}

// LookupScalar is Lookup with the key pre-split into probe scalars: the
// SrcIP‖DstIP word (as read by keyFirstWord, or the identical
// native-order load of the frame's address bytes) plus the transport
// fields. The ingest hot path uses it to probe without ever
// materialising a FlowKey — a freshly assembled 16-byte key is read
// back as two words by the compare and stalls on store-to-load
// forwarding, while these five scalars stay in registers.
//
// The window load starts at the home slot itself, so the word holds the
// first 8 slots of the probe chain in probe order: every candidate is
// checked (false tags are rejected by the hash/key compare — a matched
// slot past the chain's first empty can never hold the key, by the
// insert invariant, so order does not matter), and an empty byte
// anywhere in the window proves the chain ends inside it. Only a chain
// of 8+ consecutive occupied slots — vanishingly rare below the ~75%
// load ceiling — falls to lookupCold.
func (t *FlowTable) LookupScalar(h, a uint64, sp, dp uint16, proto packet.IPProtocol) *FlowState {
	if t.count == 0 {
		return nil
	}
	i := h & t.mask
	w := binary.LittleEndian.Uint64(t.ctrl[i:])
	m := matchZeroBytes(w ^ (ctrlLoBits * uint64(ctrlTag(h))))
	for m != 0 {
		s := &t.slots[(i+uint64(bits.TrailingZeros64(m))>>3)&t.mask]
		f := s.f
		if s.hash == h && keyFirstWord(&f.Key) == a &&
			f.Key.SrcPort == sp && f.Key.DstPort == dp && f.Key.Proto == proto {
			return f
		}
		m &= m - 1
	}
	if matchZeroBytes(w) != 0 {
		return nil // empty slot in the window: the chain ends here
	}
	return t.lookupCold(h, a, sp, dp, proto)
}

// lookupCold continues LookupScalar past its home window: the chain's
// first 8 slots held no match and no empty, so walk the following
// windows until one resolves. Starting one window past home re-checks
// nothing the fast path already rejected.
func (t *FlowTable) lookupCold(h, a uint64, sp, dp uint16, proto packet.IPProtocol) *FlowState {
	mask := t.mask
	tagw := ctrlLoBits * uint64(ctrlTag(h))
	i := (h + groupWidth) & mask
	for range (mask + 1) / groupWidth {
		w := binary.LittleEndian.Uint64(t.ctrl[i:])
		m := matchZeroBytes(w ^ tagw)
		for m != 0 {
			s := &t.slots[(i+uint64(bits.TrailingZeros64(m))>>3)&mask]
			f := s.f
			if s.hash == h && keyFirstWord(&f.Key) == a &&
				f.Key.SrcPort == sp && f.Key.DstPort == dp && f.Key.Proto == proto {
				return f
			}
			m &= m - 1
		}
		if matchZeroBytes(w) != 0 {
			return nil // empty slot on the chain: the key is absent
		}
		i = (i + groupWidth) & mask
	}
	return nil
}

// probeFirst warms the probe path for h and returns the home group's
// first tag candidate (with its cached slot hash), or nil. One call
// touches exactly the memory a subsequent Lookup of the same hash needs
// — the control word, the candidate slot, and the candidate record's
// key line — so a batch of 8 probeFirst calls pipelines up to 24 cache
// misses that a serial Lookup loop would take back to back. The caller
// must still verify the candidate (slot hash == h and key match): the
// tag is 7 bits and only the first candidate is returned.
func (t *FlowTable) probeFirst(h uint64) (f *FlowState, slotHash uint64, key packet.FlowKey) {
	if t.count == 0 {
		return nil, 0, key
	}
	i := h & t.mask
	diff := binary.LittleEndian.Uint64(t.ctrl[i:]) ^ (ctrlLoBits * uint64(ctrlTag(h)))
	if m := matchZeroBytes(diff); m != 0 {
		s := &t.slots[(i+uint64(bits.TrailingZeros64(m))>>3)&t.mask]
		// Reading the key here pulls the slab record's first cache line
		// — the line Lookup's key compare and ingest's field updates hit.
		return s.f, s.hash, s.f.Key
	}
	return nil, 0, key
}

// LookupBatch resolves keys[i] (hashed as hs[i]) into out[i] for
// i < min(len(hs), len(keys), len(out)), equivalent to calling Lookup
// element-wise, and returns how many elements it resolved. It processes
// groupWidth keys at a time in two passes — probe all control groups
// and candidate records first, then verify — so the cache misses of a
// decoded batch overlap instead of serializing. Mutating the table
// between the call and use of the results follows the same rules as
// Lookup.
func (t *FlowTable) LookupBatch(hs []uint64, keys []packet.FlowKey, out []*FlowState) int {
	n := min(len(hs), len(keys), len(out))
	var (
		cand  [groupWidth]*FlowState
		cHash [groupWidth]uint64
		cKey  [groupWidth]packet.FlowKey
	)
	for base := 0; base < n; base += groupWidth {
		m := min(groupWidth, n-base)
		for j := range m {
			cand[j], cHash[j], cKey[j] = t.probeFirst(hs[base+j])
		}
		for j := range m {
			h, k := hs[base+j], keys[base+j]
			if f := cand[j]; f != nil && cHash[j] == h && cKey[j] == k {
				out[base+j] = f
			} else {
				// The warmed first candidate missed. Re-run the full probe
				// from the home window: the key may still live behind a
				// colliding tag in the same window, so skipping straight to
				// the cold continuation would lose it.
				out[base+j] = t.LookupScalar(h, keyFirstWord(&k), k.SrcPort, k.DstPort, k.Proto)
			}
		}
	}
	return n
}

// GetOrInsert returns the record for (h, k), creating it when absent.
// A created record is zeroed except for Key (and the table's internal
// bookkeeping); the caller initializes the rest. h must be
// HashFlowKey(k). Insertion takes the first empty slot in linear-probe
// order from the home slot — found a group at a time via the empty
// mask — so placement is identical to a plain linear-probe table and
// backward-shift deletion's distance arithmetic stays valid.
func (t *FlowTable) GetOrInsert(h uint64, k packet.FlowKey) (f *FlowState, inserted bool) {
	if t.count >= t.growAt {
		t.rehash()
	}
	mask := t.mask
	i := h & mask
	tag := ctrlTag(h)
	tagw := ctrlLoBits * uint64(tag)
	g := i
	for {
		w := binary.LittleEndian.Uint64(t.ctrl[g:])
		m := matchZeroBytes(w ^ tagw)
		for m != 0 {
			s := &t.slots[(g+uint64(bits.TrailingZeros64(m))>>3)&mask]
			if s.hash == h && s.f.Key == k {
				return s.f, false
			}
			m &= m - 1
		}
		if e := matchZeroBytes(w); e != 0 {
			idx := (g + uint64(bits.TrailingZeros64(e))>>3) & mask
			f = t.alloc()
			f.Key = k
			f.hash = h
			f.live = true
			t.slots[idx] = flowSlot{hash: h, f: f}
			t.setCtrl(idx, tag)
			t.count++
			if t.probe != nil {
				t.probe.Observe(int64((idx - i) & mask))
			}
			return f, true
		}
		g = (g + groupWidth) & mask
	}
}

// Remove deletes f from the table, backward-shifting the probe chain so
// no tombstone is left, and recycles the record. f must be a live
// record of this table; it is zeroed and must not be used afterwards.
func (t *FlowTable) Remove(f *FlowState) {
	mask := t.mask
	i := f.hash & mask
	for t.slots[i].f != f {
		i = (i + 1) & mask
	}
	// Backward shift: any later chain member whose probe distance
	// reaches back to slot i (or earlier) can legally occupy i; pull the
	// first such member up and continue from its slot until a hole. The
	// control byte travels with its slot.
	for {
		j := (i + 1) & mask
		for {
			s := t.slots[j]
			if s.f == nil {
				t.slots[i] = flowSlot{}
				t.setCtrl(i, ctrlEmpty)
				t.count--
				*f = FlowState{}
				t.free = append(t.free, f)
				return
			}
			if (j-s.hash)&mask >= (j-i)&mask {
				t.slots[i] = s
				t.setCtrl(i, t.ctrl[j])
				i = j
				break
			}
			j = (j + 1) & mask
		}
	}
}

// Iterate calls fn for every live record, in slab (insertion-slot)
// order. Removing records during iteration — including the current one
// — is safe: iteration walks the never-moving slabs, not the probe
// array. Inserting during iteration is not.
func (t *FlowTable) Iterate(fn func(*FlowState)) {
	for _, slab := range t.slabs {
		for i := range slab {
			if slab[i].live {
				fn(&slab[i])
			}
		}
	}
}

// alloc hands out a zeroed record from the free list, cutting a new
// slab when empty. Records never move once allocated.
func (t *FlowTable) alloc() *FlowState {
	if n := len(t.free); n > 0 {
		f := t.free[n-1]
		t.free = t.free[:n-1]
		return f
	}
	slab := make([]FlowState, flowSlabSize)
	t.slabs = append(t.slabs, slab)
	for i := flowSlabSize - 1; i > 0; i-- {
		t.free = append(t.free, &slab[i])
	}
	return &slab[0]
}

// rehash doubles the probe array (or cuts the initial one) and
// reinserts every live slot, rebuilding the control array beside it.
// Records themselves do not move.
func (t *FlowTable) rehash() {
	n := uint64(len(t.slots)) * 2
	if n == 0 {
		n = flowTableMinSlots
	}
	slots := make([]flowSlot, n)
	// groupWidth-1 extra bytes mirror the array's head so unaligned
	// window loads starting near the end read the wrapped slots.
	ctrl := make([]uint8, n+groupWidth-1) // zero value == all empty
	mask := n - 1
	for _, s := range t.slots {
		if s.f == nil {
			continue
		}
		i := s.hash & mask
		for slots[i].f != nil {
			i = (i + 1) & mask
		}
		slots[i] = s
		ctrl[i] = ctrlTag(s.hash)
	}
	copy(ctrl[n:], ctrl[:groupWidth-1])
	t.slots = slots
	t.ctrl = ctrl
	t.mask = mask
	t.growAt = int(n - n/4)
}

// ProbeStats scans the probe array and returns the mean and maximum
// probe length a Lookup of each live record would take right now — an
// on-demand health check that costs nothing on the ingest path.
func (t *FlowTable) ProbeStats() (mean float64, max int) {
	if t.count == 0 {
		return 0, 0
	}
	var total uint64
	for j := range t.slots {
		s := t.slots[j]
		if s.f == nil {
			continue
		}
		d := int((uint64(j) - s.hash) & t.mask)
		total += uint64(d)
		if d > max {
			max = d
		}
	}
	return float64(total) / float64(t.count), max
}
