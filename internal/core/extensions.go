package core

import (
	"planck/internal/units"
)

// This file implements two estimator extensions the paper sketches as
// future work in §3.2.2:
//
//   - retransmission-rate inference "based on the number of duplicate
//     TCP sequence numbers" the collector sees, compensating for the
//     unknown sampling rate with the sequence stream itself;
//   - throughput estimation for non-TCP traffic whose sequence numbers
//     count packets rather than bytes ("they need to be multiplied by
//     the average packet size seen in samples").

// RetransmitEstimator infers a flow's retransmission rate from sampled
// sequence regressions. The unknown, load-dependent sampling probability
// is recovered from the stream itself: over a window, the collector saw
// sampledNewBytes of fresh payload while the sequence numbers advanced by
// streamBytes, so p ≈ sampledNewBytes/streamBytes, and the true
// retransmitted volume is regressedSampledBytes / p.
//
// An inherent limitation of duplicate-counting (the paper's sketch shares
// it): a retransmission is only recognizable when its sequence number
// falls below the last *sampled* in-order offset. At sampling probability
// p that offset lags the stream head by ~1/p packets, so retransmissions
// of very recent segments go undetected and the estimate is a lower
// bound — exact at 100% sampling, roughly halved when the sampling gap
// matches the retransmission distance.
type RetransmitEstimator struct {
	startT  units.Time
	lastT   units.Time
	started bool

	sampledNew int64 // fresh payload bytes in samples
	regressed  int64 // payload bytes of regressed (dup/reordered) samples
	streamAdv  int64 // sequence advance across the observation period
	lastStream int64
}

// Observe folds in one sample: its payload length, whether its sequence
// regressed, and the estimator's current stream offset.
func (r *RetransmitEstimator) Observe(t units.Time, payload int, regressed bool, streamBytes int64) {
	if !r.started {
		r.started = true
		r.startT = t
		r.lastStream = streamBytes
	}
	r.lastT = t
	if regressed {
		r.regressed += int64(payload)
	} else {
		r.sampledNew += int64(payload)
	}
	if streamBytes > r.lastStream {
		r.streamAdv += streamBytes - r.lastStream
		r.lastStream = streamBytes
	}
}

// SamplingProbability estimates the effective mirror sampling rate.
func (r *RetransmitEstimator) SamplingProbability() (float64, bool) {
	if r.streamAdv <= 0 || r.sampledNew <= 0 {
		return 0, false
	}
	p := float64(r.sampledNew) / float64(r.streamAdv)
	if p > 1 {
		p = 1
	}
	return p, true
}

// Rate estimates the flow's retransmission rate in bits per second over
// the whole observation period.
func (r *RetransmitEstimator) Rate() (units.Rate, bool) {
	p, ok := r.SamplingProbability()
	if !ok || p == 0 {
		return 0, false
	}
	dur := r.lastT.Sub(r.startT)
	if dur <= 0 {
		return 0, false
	}
	trueRegressed := float64(r.regressed) / p
	return units.Rate(trueRegressed * 8 / dur.Seconds()), true
}

// RegressedSampledBytes exposes the raw duplicate volume seen.
func (r *RetransmitEstimator) RegressedSampledBytes() int64 { return r.regressed }

// PacketSeqEstimator estimates throughput for flows whose sequence
// numbers count packets (§3.2.2's generalization): the sequence delta
// across a burst window is multiplied by the running average sampled
// packet size.
type PacketSeqEstimator struct {
	Est RateEstimator

	sampledBytes int64
	sampledPkts  int64
}

// NewPacketSeqEstimator returns an estimator with the paper's window
// constants.
func NewPacketSeqEstimator() *PacketSeqEstimator {
	return &PacketSeqEstimator{Est: RateEstimator{MinGap: DefaultMinGap, MaxBurst: DefaultMaxBurst}}
}

// Observe folds in a sample carrying packet-sequence seq and wireLen
// bytes on the wire.
func (p *PacketSeqEstimator) Observe(t units.Time, seq uint32, wireLen int) bool {
	p.sampledBytes += int64(wireLen)
	p.sampledPkts++
	return p.Est.Observe(t, seq)
}

// MeanPacketSize returns the running average sampled size.
func (p *PacketSeqEstimator) MeanPacketSize() float64 {
	if p.sampledPkts == 0 {
		return 0
	}
	return float64(p.sampledBytes) / float64(p.sampledPkts)
}

// Rate returns the estimated throughput: packet-rate x mean size.
func (p *PacketSeqEstimator) Rate() (units.Rate, units.Time, bool) {
	r, at, ok := p.Est.Rate()
	if !ok {
		return 0, 0, false
	}
	// The inner estimator computed (packets * 8) / duration; scale the
	// "byte" units it assumed (1 per packet) by the mean packet size.
	return units.Rate(float64(r) * p.MeanPacketSize()), at, ok
}
