package core

import (
	"testing"

	"planck/internal/packet"
	"planck/internal/units"
)

// Table-driven coverage for remapFlowAt/removeFlow when the controller's
// PortMapper changes routes mid-flow — the PlanckTE reroute case (§4):
// the controller installs new routing state and shares it with the
// collector, which must immediately move each live flow's utilization
// contribution to its new egress link, without waiting for the flow's
// next sample.
func TestPortMapperSwapRemapsMidFlow(t *testing.T) {
	macC := packet.MAC{0x02, 0, 0, 0, 0, 3}
	cases := []struct {
		name     string
		before   staticMapper
		after    staticMapper
		wantPre  int // port after streaming under `before`
		wantPost int // port right after SetPortMapper(after), no new samples
	}{
		{
			name:     "mapped to different port",
			before:   staticMapper{macB.U64(): 2},
			after:    staticMapper{macB.U64(): 3},
			wantPre:  2,
			wantPost: 3,
		},
		{
			name:     "mapped to same port is stable",
			before:   staticMapper{macB.U64(): 2},
			after:    staticMapper{macB.U64(): 2, macC.U64(): 1},
			wantPre:  2,
			wantPost: 2,
		},
		{
			name:     "route withdrawn: flow becomes unmapped",
			before:   staticMapper{macB.U64(): 2},
			after:    staticMapper{macC.U64(): 1},
			wantPre:  2,
			wantPost: -1,
		},
		{
			name:     "route appears for a previously unmapped flow",
			before:   staticMapper{macC.U64(): 1},
			after:    staticMapper{macB.U64(): 3},
			wantPre:  -1,
			wantPost: 3,
		},
	}
	key := packet.FlowKey{SrcIP: ipA, DstIP: ipB, SrcPort: 1000, DstPort: 2000, Proto: packet.IPProtocolTCP}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := New(Config{SwitchName: "sw0", NumPorts: 4, LinkRate: units.Rate10G})
			c.SetPortMapper(tc.before)
			var t0 units.Time
			var seq uint32
			for i := 0; i < 1500; i++ {
				if err := c.Ingest(t0, tcpFrame(seq, 1460)); err != nil {
					t.Fatal(err)
				}
				seq += 1460
				t0 = t0.Add(units.Duration(1230))
			}
			f := c.Flow(key)
			if f == nil || f.OutPort() != tc.wantPre {
				t.Fatalf("pre-swap port %d, want %d", f.OutPort(), tc.wantPre)
			}
			rate, ok := f.Rate()
			if !ok {
				t.Fatal("no rate estimate before swap")
			}

			c.SetPortMapper(tc.after)

			if got := f.OutPort(); got != tc.wantPost {
				t.Fatalf("post-swap port %d, want %d", got, tc.wantPost)
			}
			// The utilization contribution must follow the flow, with no
			// new sample in between.
			for p := 0; p < 4; p++ {
				want := units.Rate(0)
				if p == tc.wantPost {
					want = rate
				}
				if got := c.LinkUtilization(p); got != want {
					t.Fatalf("port %d utilization %v, want %v", p, got, want)
				}
			}
			if tc.wantPost >= 0 {
				fl := c.FlowsOnPort(tc.wantPost)
				if len(fl) != 1 || fl[0].Key != key || fl[0].OutPort != tc.wantPost {
					t.Fatalf("flows on port %d: %+v", tc.wantPost, fl)
				}
			}
			// The rate estimate itself must survive the remap untouched.
			if r, ok := f.Rate(); !ok || r != rate {
				t.Fatalf("rate changed across remap: %v -> %v", rate, r)
			}
		})
	}
}

// Multiple flows sharing and leaving a port exercise removeFlow's
// swap-remove: remapping one flow must not disturb its neighbours.
func TestRemapLeavesNeighboursIntact(t *testing.T) {
	shadow := packet.MAC{0x02, 1, 0, 0, 0, 2}
	c := New(Config{SwitchName: "sw0", NumPorts: 4, LinkRate: units.Rate10G})
	c.SetPortMapper(staticMapper{macB.U64(): 2, shadow.U64(): 3})
	var t0 units.Time
	seqs := make([]uint32, 5)
	frame := func(i int, mac packet.MAC) []byte {
		b := packet.BuildTCP(nil, packet.TCPSpec{
			SrcMAC: macA, DstMAC: mac, SrcIP: ipA, DstIP: ipB,
			SrcPort: uint16(1000 + i), DstPort: 2000, Seq: seqs[i],
			Flags: packet.TCPAck, PayloadLen: 1460,
		})
		seqs[i] += 1460
		return b
	}
	// Five flows interleaved on port 2.
	for step := 0; step < 1500; step++ {
		for i := 0; i < 5; i++ {
			if err := c.Ingest(t0, frame(i, macB)); err != nil {
				t.Fatal(err)
			}
			t0 = t0.Add(units.Duration(1230))
		}
	}
	if got := len(c.FlowsOnPort(2)); got != 5 {
		t.Fatalf("flows on port 2: %d", got)
	}
	// Reroute flows 1 and 3 (middle of the port list) via a label change.
	for step := 0; step < 200; step++ {
		for _, i := range []int{1, 3} {
			if err := c.Ingest(t0, frame(i, shadow)); err != nil {
				t.Fatal(err)
			}
			t0 = t0.Add(units.Duration(1230))
		}
	}
	if got := len(c.FlowsOnPort(2)); got != 3 {
		t.Fatalf("port 2 after reroute: %d flows", got)
	}
	if got := len(c.FlowsOnPort(3)); got != 2 {
		t.Fatalf("port 3 after reroute: %d flows", got)
	}
	// The three remaining port-2 flows are exactly 0, 2, 4 and their
	// utilization sum matches a from-scratch recomputation.
	var want units.Rate
	seen := map[uint16]bool{}
	for _, fi := range c.FlowsOnPort(2) {
		seen[fi.Key.SrcPort] = true
		want += fi.Rate
	}
	for _, p := range []uint16{1000, 1002, 1004} {
		if !seen[p] {
			t.Fatalf("flow src %d missing from port 2 after neighbour remap", p)
		}
	}
	if got := c.LinkUtilization(2); got != want {
		t.Fatalf("utilization %v != sum of snapshots %v", got, want)
	}
}
