package core

// The merger is the sharded pipeline's sequential tail. Per-flow work
// parallelizes cleanly (a flow's samples all land on one shard, in
// order), but the collector's cross-flow outputs — link utilization,
// threshold crossings, per-port event cooldown — are order-sensitive
// reductions over the *interleaved* sample stream: whether sample k
// fires an event depends on the rates of every flow on the link as of
// sample k-1, whichever shards those flows live on. The merger
// re-establishes that global order: shards emit one record per sample
// carrying the dispatcher-assigned sequence number and the flow's
// post-sample state, a reorder ring puts the records back into arrival
// order, and the serial collector's exact congestion/boundary logic
// replays against a compact cross-shard flow view. Because the replay
// is single-threaded and in serial order over identical per-flow
// values, the emitted event stream is the serial collector's event
// stream — the property the serial-equivalence oracle checks.
//
// The reorder ring is bounded by construction: a record is in flight
// only while its batch sits in a shard input queue, the shard's current
// output batch, or the shared output channel, so at most
// shards×(Queue+2)×Batch records can be ahead of the merger's cursor.
// The ring grows to that high-water mark and stays there; no timer or
// watermark protocol is needed because the dispatcher's sequence
// numbers are dense (drops in lossy mode happen before assignment).

import (
	"sync"

	"planck/internal/obs"
	"planck/internal/packet"
	"planck/internal/units"
)

// mergedFlow is the merger's replica of one flow's order-sensitive
// state: exactly the fields the serial collector's congestion and query
// paths read from FlowState, nothing else.
type mergedFlow struct {
	key      packet.FlowKey
	dstMAC   packet.MAC
	lastSeen units.Time
	rate     units.Rate
	rateOk   bool
	port     int32 // current egress port, -1 unknown
	portIdx  int32 // position in portFlows[port], -1 when unlisted
	live     bool
}

// mergerView is the cross-shard flow view. The merger mutates it under
// mu; the query path (LinkUtilization, FlowsOnPort, FlowRate) reads it
// under RLock from any goroutine.
type mergerView struct {
	mu        sync.RWMutex
	flows     []mergedFlow // indexed by FlowState.id; slot 0 unused
	byKey     map[packet.FlowKey]int32
	portFlows [][]int32 // flow ids per egress port
	now       units.Time
}

// linkUtilization mirrors Collector.LinkUtilization over the view.
// Callers hold v.mu.
func (v *mergerView) linkUtilization(p int, fresh units.Duration) units.Rate {
	if p < 0 || p >= len(v.portFlows) {
		return 0
	}
	var util units.Rate
	for _, id := range v.portFlows[p] {
		f := &v.flows[id]
		if v.now.Sub(f.lastSeen) > fresh {
			continue
		}
		if f.rateOk {
			util += f.rate
		}
	}
	return util
}

// flowsOnPort mirrors Collector.FlowsOnPort over the view. Callers hold
// v.mu.
func (v *mergerView) flowsOnPort(p int, fresh units.Duration) []FlowInfo {
	if p < 0 || p >= len(v.portFlows) {
		return nil
	}
	out := make([]FlowInfo, 0, len(v.portFlows[p]))
	for _, id := range v.portFlows[p] {
		f := &v.flows[id]
		if v.now.Sub(f.lastSeen) > fresh {
			continue
		}
		out = append(out, FlowInfo{Key: f.key, DstMAC: f.dstMAC, Rate: f.rate, OutPort: p})
	}
	return out
}

// notice is a callback queued during a locked apply pass and fired
// after unlock, so subscribers never run under the view lock (they may
// re-enter the query API).
type notice struct {
	ev   *CongestionEvent // non-nil for congestion events
	t    units.Time
	key  packet.FlowKey
	kind BoundaryKind
}

// merger owns the sequential tail: the reorder ring, the flow view, the
// per-port cooldown clocks, and the subscriber lists.
type merger struct {
	sc        *ShardedCollector
	view      mergerView
	ord       reorder
	lastEvent []units.Time
	subs      []func(ev CongestionEvent)
	boundary  []func(t units.Time, key packet.FlowKey, kind BoundaryKind)
	events    obs.Counter
	notices   []notice
	tok       *flushToken
}

func (m *merger) init(s *ShardedCollector) {
	m.sc = s
	m.view.byKey = make(map[packet.FlowKey]int32)
	m.view.flows = make([]mergedFlow, 1) // id 0 is never allocated
	if s.cfg.NumPorts > 0 {
		m.view.portFlows = make([][]int32, s.cfg.NumPorts)
		m.lastEvent = make([]units.Time, s.cfg.NumPorts)
		for i := range m.lastEvent {
			m.lastEvent[i] = -1 << 62
		}
	}
}

// run is the merger goroutine: drain the shared output channel, insert
// records into the reorder ring, apply the in-order prefix, fire queued
// callbacks, acknowledge flush tokens.
func (m *merger) run() {
	for rb := range m.sc.out {
		if rb.barrier != nil {
			rb.barrier.remaining--
			if rb.barrier.remaining == 0 {
				m.tok = rb.barrier
			}
			m.maybeAck()
			continue
		}
		m.view.mu.Lock()
		for i := range rb.recs {
			m.ord.insert(&rb.recs[i])
		}
		var r outRec
		for m.ord.pop(&r) {
			m.apply(&r)
		}
		m.view.mu.Unlock()
		m.fire()
		select {
		case m.sc.freeRe[rb.shard] <- rb:
		default:
			m.sc.recPool.Put(rb)
		}
		m.maybeAck()
	}
}

// maybeAck completes a Flush once every shard's barrier arrived and
// every record the token covers has been applied.
func (m *merger) maybeAck() {
	if m.tok != nil && m.ord.next >= m.tok.seqEnd {
		close(m.tok.done)
		m.tok = nil
	}
}

// fire delivers queued notices in stream order.
func (m *merger) fire() {
	for i := range m.notices {
		n := &m.notices[i]
		if n.ev != nil {
			for _, fn := range m.subs {
				fn(*n.ev)
			}
		} else {
			for _, fn := range m.boundary {
				fn(n.t, n.key, n.kind)
			}
		}
	}
	m.notices = m.notices[:0]
}

// apply folds one record into the view, replaying the serial
// collector's order-sensitive effects for that sample: advance the
// clock, update the flow's replicated state, track port membership,
// queue boundary callbacks, and — when the sample closed an estimation
// window — run the serial congestion check verbatim.
func (m *merger) apply(r *outRec) {
	v := &m.view
	v.now = r.t
	if r.kind != recFlow {
		return
	}
	for int(r.id) >= len(v.flows) {
		v.flows = append(v.flows, mergedFlow{port: -1, portIdx: -1})
	}
	f := &v.flows[r.id]
	if !f.live {
		f.live = true
		f.key = r.key
		f.port = -1
		f.portIdx = -1
		f.rate = 0
		f.rateOk = false
		v.byKey[r.key] = r.id
	}
	f.lastSeen = r.t
	f.dstMAC = r.dstMAC
	f.rate = r.rate
	f.rateOk = r.rateOk
	if f.port != r.port {
		m.moveFlow(r.id, r.port)
	}
	if r.boundary != 0 && len(m.boundary) > 0 {
		m.notices = append(m.notices, notice{t: r.t, key: r.key, kind: BoundaryKind(r.boundary - 1)})
	}
	if r.updated {
		m.checkCongestion(r.t, int(r.port), r.epoch)
	}
}

// checkCongestion is Collector.checkCongestion transplanted onto the
// view: same early-outs, same threshold comparison, same cooldown
// arithmetic, same event payload. epoch is the triggering sample's
// resolving routing epoch, carried across the shard boundary on its
// record. Trace IDs are assigned here — on the merger's in-order
// replay — so the sharded pipeline hands out the same monotone ID
// stream the serial collector would.
func (m *merger) checkCongestion(t units.Time, p int, epoch uint64) {
	if p < 0 || p >= len(m.view.portFlows) || len(m.subs) == 0 {
		return
	}
	util := m.view.linkUtilization(p, m.sc.cfg.FlowFreshness)
	if float64(util) < m.sc.cfg.UtilThreshold*float64(m.sc.cfg.LinkRate) {
		return
	}
	if t.Sub(m.lastEvent[p]) < m.sc.cfg.EventCooldown {
		return
	}
	m.lastEvent[p] = t
	ev := &CongestionEvent{
		Time:       t,
		SwitchName: m.sc.cfg.SwitchName,
		Port:       p,
		Util:       util,
		Capacity:   m.sc.cfg.LinkRate,
		Flows:      m.view.flowsOnPort(p, m.sc.cfg.FlowFreshness),
		Epoch:      epoch,
		Vantage:    m.sc.cfg.Vantage,
	}
	if tr := m.sc.cfg.Tracer; tr != nil {
		// Begin takes only the tracer's own mutex; it never calls back
		// into the collector, so holding the view lock here is safe.
		ev.ID = tr.NextID()
		tr.Begin(ev.ID, t, m.sc.cfg.SwitchName, p, epoch, util, m.sc.cfg.LinkRate)
	}
	m.events.Inc()
	m.notices = append(m.notices, notice{ev: ev})
}

// moveFlow changes a flow's port-list membership (swap-remove from the
// old list, append to the new), matching remapFlowAt's bookkeeping.
// Callers hold the view lock.
func (m *merger) moveFlow(id, newPort int32) {
	v := &m.view
	f := &v.flows[id]
	if f.port >= 0 && int(f.port) < len(v.portFlows) {
		l := v.portFlows[f.port]
		i := f.portIdx
		last := int32(len(l) - 1)
		l[i] = l[last]
		v.flows[l[i]].portIdx = i
		v.portFlows[f.port] = l[:last]
	}
	f.port = newPort
	f.portIdx = -1
	if newPort >= 0 && int(newPort) < len(v.portFlows) {
		v.portFlows[newPort] = append(v.portFlows[newPort], id)
		f.portIdx = int32(len(v.portFlows[newPort]) - 1)
	}
}

// dropFlow removes an expired flow from the view. Callers hold the view
// lock and own the control goroutine (quiescent pipeline).
func (m *merger) dropFlow(id int32) {
	if int(id) >= len(m.view.flows) {
		return
	}
	f := &m.view.flows[id]
	if !f.live {
		return
	}
	m.moveFlow(id, -1)
	delete(m.view.byKey, f.key)
	*f = mergedFlow{port: -1, portIdx: -1}
}

// reorder is a growable ring buffer that returns records to global
// arrival order. Sequence numbers are dense, so slot addressing is
// plain offset arithmetic from the cursor.
type reorder struct {
	buf  []outRec
	full []bool
	base int    // slot holding sequence number next
	next uint64 // cursor: lowest unapplied sequence number
}

func (o *reorder) insert(r *outRec) {
	pos := int(r.seq - o.next)
	if pos >= len(o.buf) {
		o.grow(pos + 1)
	}
	idx := o.base + pos
	if idx >= len(o.buf) {
		idx -= len(o.buf)
	}
	o.buf[idx] = *r
	o.full[idx] = true
}

// pop moves the record at the cursor into r, returning false when the
// cursor's record has not arrived yet.
func (o *reorder) pop(r *outRec) bool {
	if len(o.buf) == 0 || !o.full[o.base] {
		return false
	}
	*r = o.buf[o.base]
	o.full[o.base] = false
	o.base++
	if o.base == len(o.buf) {
		o.base = 0
	}
	o.next++
	return true
}

func (o *reorder) grow(min int) {
	n := len(o.buf) * 2
	if n < 1024 {
		n = 1024
	}
	for n < min {
		n *= 2
	}
	buf := make([]outRec, n)
	full := make([]bool, n)
	for i := range o.buf {
		idx := o.base + i
		if idx >= len(o.buf) {
			idx -= len(o.buf)
		}
		if o.full[idx] {
			buf[i] = o.buf[idx]
			full[i] = true
		}
	}
	o.buf, o.full, o.base = buf, full, 0
}
