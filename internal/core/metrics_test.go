package core

import (
	"strings"
	"testing"

	"planck/internal/obs"
	"planck/internal/units"
)

// drive pushes a steady TCP stream plus a few malformed frames through
// the collector.
func driveCollector(t *testing.T, c *Collector, frames int) {
	t.Helper()
	var t0 units.Time
	var seq uint32
	for i := 0; i < frames; i++ {
		if err := c.Ingest(t0, tcpFrame(seq, 1460)); err != nil {
			t.Fatal(err)
		}
		seq += 1460
		t0 = t0.Add(units.Duration(1230))
	}
	_ = c.Ingest(t0, []byte{0xde, 0xad}) // undecodable
}

// TestCollectorRegistersMetrics checks that attaching a registry
// exposes the full pipeline instrument set, labelled by switch.
func TestCollectorRegistersMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	c := New(Config{
		SwitchName: "sw0",
		NumPorts:   4,
		LinkRate:   units.Rate10G,
		Metrics:    reg,
	})
	c.SetPortMapper(staticMapper{macB.U64(): 2})
	driveCollector(t, c, 2000)

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	text := sb.String()
	for _, name := range []string{
		`planck_collector_samples_total{switch="sw0"} 2001`,
		`planck_collector_decode_errors_total{switch="sw0"} 1`,
		`planck_collector_flow_table_size{switch="sw0"} 1`,
		`planck_collector_rate_updates_total{switch="sw0"}`,
		`planck_collector_ingest_ns_count{switch="sw0"} 2001`,
		`planck_collector_stage_decode_ns_count{switch="sw0"}`,
		`planck_collector_stage_flow_table_ns_count{switch="sw0"}`,
		`planck_collector_stage_estimate_ns_count{switch="sw0"}`,
		`planck_collector_stage_utilization_ns`,
		`planck_collector_stage_dispatch_ns`,
	} {
		if !strings.Contains(text, name) {
			t.Fatalf("exposition missing %q:\n%s", name, text)
		}
	}
}

// TestCollectorStageTimingWithoutRegistry: StageTiming alone populates
// the histograms for embedders that bypass a registry.
func TestCollectorStageTimingWithoutRegistry(t *testing.T) {
	c := New(Config{
		SwitchName:  "sw0",
		NumPorts:    4,
		LinkRate:    units.Rate10G,
		StageTiming: true,
	})
	c.SetPortMapper(staticMapper{macB.U64(): 2})
	driveCollector(t, c, 500)

	decode, flowTable, estimate, _, _ := c.StageTimings()
	if decode.N() == 0 || flowTable.N() == 0 || estimate.N() == 0 {
		t.Fatalf("stage counts decode=%d flowTable=%d estimate=%d, want all > 0",
			decode.N(), flowTable.N(), estimate.N())
	}
	tm := c.IngestTimings()
	if tm == nil || tm.N() != 501 {
		t.Fatalf("ingest timings N = %v, want 501", tm.N())
	}
	if tm.Min() < 0 || tm.Median() <= 0 {
		t.Fatalf("implausible ingest timing: min=%v median=%v", tm.Min(), tm.Median())
	}
}

// TestCollectorStatsMatchesMetrics: the legacy Stats() snapshot is
// rebuilt from the metric counters and must agree with the exposition.
func TestCollectorStatsMatchesMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	c := New(Config{
		SwitchName: "sw0",
		NumPorts:   4,
		LinkRate:   units.Rate10G,
		Metrics:    reg,
	})
	c.SetPortMapper(staticMapper{macB.U64(): 2})
	driveCollector(t, c, 1000)

	st := c.Stats()
	if st.Samples != 1001 || st.DecodeErrors != 1 || st.Flows != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.RateUpdates == 0 {
		t.Fatal("no rate updates after 1000 in-order samples")
	}
	// Timing disabled is the no-registry default; with a registry it is on.
	if c.IngestTimings() == nil {
		t.Fatal("registry attach should enable stage timing")
	}
	bare := New(Config{SwitchName: "sw0", NumPorts: 4, LinkRate: units.Rate10G})
	if bare.IngestTimings() != nil {
		t.Fatal("bare collector should not allocate timing histograms")
	}
}
