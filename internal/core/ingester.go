package core

import (
	"sync/atomic"

	"planck/internal/packet"
	"planck/internal/units"
)

// Ingester is the sample-ingest seam shared by the serial Collector,
// the ShardedCollector, the fault injector, and the UDP/pcap transports
// in the facade. Anything that can absorb timestamped sFlow frames —
// one at a time or as a poll batch — satisfies it.
type Ingester interface {
	// Ingest absorbs one captured frame observed at time t.
	Ingest(t units.Time, frame []byte) error
	// IngestBatch absorbs one poll's worth of frames. ts and frames
	// are parallel slices; implementations may exploit monotone
	// timestamps for a fast path. Per-frame failures are aggregated
	// (see BatchError) rather than aborting the batch.
	IngestBatch(ts []units.Time, frames [][]byte) error
}

// RouteResolver is the epoch-aware extension of PortMapper that the
// versioned routing plane provides (routing.View implements it). A
// collector that is handed a RouteResolver attributes each sample to
// the routing epoch that was live at the sample's timestamp instead of
// whatever state is current at processing time, so batching and
// sharding cannot change per-link attribution.
type RouteResolver interface {
	PortMapper

	// Refresh re-pins the resolver to the current published routing
	// state and returns its epoch. One atomic load; called once per
	// ingest batch, never per sample.
	Refresh() uint64

	// ResolveOutput resolves the egress port for a sample of flow key
	// labelled dst, as of the routing epoch live at time t within the
	// pinned history. It returns the epoch used so the caller can
	// stamp the flow and skip re-resolution until the epoch moves.
	// Lock-free and allocation-free: safe on the ingest hot path.
	ResolveOutput(t units.Time, key packet.FlowKey, dst packet.MAC) (port int, epoch uint64, ok bool)

	// Fork returns an independent resolver over the same underlying
	// store for use by another goroutine (each shard worker pins its
	// own view; pinning mutates the view, so views are not shared).
	Fork() RouteResolver
}

// EpochSource is an optional RouteResolver extension exposing the
// published routing epoch as a shared atomic counter. A collector that
// finds it caches the pointer at SetPortMapper time and turns the
// per-Ingest epoch check into one inlined atomic load — skipping the
// virtual Refresh call entirely on the no-change path, which is every
// call between reroutes. The publisher must store the new epoch only
// after the state it names is visible, so a changed counter read here
// guarantees a subsequent Refresh observes that state.
type EpochSource interface {
	// EpochRef returns the counter holding the current published epoch.
	// The pointer is stable for the resolver's lifetime.
	EpochRef() *atomic.Uint64
}

var (
	_ Ingester = (*Collector)(nil)
	_ Ingester = (*ShardedCollector)(nil)
)
