package core

import "planck/internal/units"

// HeartbeatConfig tunes staleness detection for one collector feed.
type HeartbeatConfig struct {
	// Interval is the supervisor's tick period. It is recorded here so
	// StaleAfter can default relative to it.
	Interval units.Duration
	// StaleAfter is how old the feed's last delivery may be before a
	// tick counts as a miss. Defaults to 2×Interval: one interval for
	// the batch in flight plus one of slack, so an idle-but-healthy
	// poll cycle never counts as a miss.
	StaleAfter units.Duration
	// MissThreshold is how many consecutive misses flip the feed to
	// dark. Defaults to 2, trading one extra interval of detection
	// latency for immunity to a single late batch.
	MissThreshold int
}

func (c *HeartbeatConfig) fillDefaults() {
	if c.Interval == 0 {
		c.Interval = 2 * units.Millisecond
	}
	if c.StaleAfter == 0 {
		c.StaleAfter = 2 * c.Interval
	}
	if c.MissThreshold == 0 {
		c.MissThreshold = 2
	}
}

// HeartbeatTransition is the outcome of one heartbeat check.
type HeartbeatTransition uint8

const (
	// HeartbeatNone: no state change this tick.
	HeartbeatNone HeartbeatTransition = iota
	// HeartbeatWentDark: the feed just crossed the miss threshold.
	HeartbeatWentDark
	// HeartbeatRecovered: a dark feed just delivered again.
	HeartbeatRecovered
)

// String implements fmt.Stringer.
func (t HeartbeatTransition) String() string {
	switch t {
	case HeartbeatWentDark:
		return "went-dark"
	case HeartbeatRecovered:
		return "recovered"
	}
	return "none"
}

// HeartbeatMonitor turns "when did this feed last deliver a sample?"
// into dark/live transitions with hysteresis. It is deliberately
// clock-agnostic — Beat takes explicit timestamps — so the same logic
// runs against the lab's virtual clock and a live deployment's wall
// clock, and unit tests need no timers.
//
// The monitor is not safe for concurrent use; in the lab it is owned by
// the supervisor and only touched on the engine goroutine.
type HeartbeatMonitor struct {
	cfg    HeartbeatConfig
	streak int
	dark   bool
}

// NewHeartbeatMonitor builds a monitor; zero config fields take
// defaults.
func NewHeartbeatMonitor(cfg HeartbeatConfig) *HeartbeatMonitor {
	cfg.fillDefaults()
	return &HeartbeatMonitor{cfg: cfg}
}

// Config returns the monitor's effective (default-filled) config.
func (m *HeartbeatMonitor) Config() HeartbeatConfig { return m.cfg }

// Beat records one heartbeat check at now for a feed whose most recent
// delivery was at lastDelivery (negative means "never delivered"; the
// feed is stale until its first delivery). It returns the transition,
// if any, that this tick caused.
func (m *HeartbeatMonitor) Beat(now, lastDelivery units.Time) HeartbeatTransition {
	stale := lastDelivery < 0 || now.Sub(lastDelivery) > m.cfg.StaleAfter
	if stale {
		m.streak++
		if !m.dark && m.streak >= m.cfg.MissThreshold {
			m.dark = true
			return HeartbeatWentDark
		}
		return HeartbeatNone
	}
	m.streak = 0
	if m.dark {
		m.dark = false
		return HeartbeatRecovered
	}
	return HeartbeatNone
}

// Dark reports whether the feed is currently considered dark.
func (m *HeartbeatMonitor) Dark() bool { return m.dark }

// MissStreak returns the current run of consecutive missed heartbeats.
func (m *HeartbeatMonitor) MissStreak() int { return m.streak }
