package core

import (
	"planck/internal/obs"
)

// collectorMetrics is the collector's instrument panel. The counters
// and the flow-table gauge are always live (a handful of uncontended
// atomic adds per sample, no allocation); the per-stage histograms are
// created only when timing is enabled, so an uninstrumented collector
// pays nothing for the wall-clock reads.
//
// Stage boundaries follow the paper's §3.2 pipeline: decode the raw
// frame (§3.2.1 parsing), resolve it in the flow table and infer ports
// (§3.2.1), advance the sequence-number rate estimator (§3.2.2),
// recompute link utilization (§3.2.2's per-link sum), and dispatch
// congestion events to subscribers (§3.3).
type collectorMetrics struct {
	samples       obs.Counter
	decodeErrors  obs.Counter
	nonTCP        obs.Counter
	rateUpdates   obs.Counter
	events        obs.Counter
	unmapped      obs.Counter
	outOfOrder    obs.Counter // monotonic, matching Stats.OutOfOrder
	flowTableSize obs.Gauge

	timed bool
	// Wall-clock nanoseconds per pipeline stage, plus the whole Ingest.
	stageDecode    *obs.Histogram
	stageFlowTable *obs.Histogram
	stageEstimate  *obs.Histogram
	stageUtil      *obs.Histogram
	stageDispatch  *obs.Histogram
	ingest         *obs.Histogram
	// batchSamples records samples per IngestBatch call; probeLen
	// records the flow table's probe length at each insert (a standing
	// proxy for table health that stays off the per-lookup path).
	batchSamples *obs.Histogram
	probeLen     *obs.Histogram
}

func (m *collectorMetrics) init(timed bool) {
	m.timed = timed
	if timed {
		m.stageDecode = obs.NewHistogram()
		m.stageFlowTable = obs.NewHistogram()
		m.stageEstimate = obs.NewHistogram()
		m.stageUtil = obs.NewHistogram()
		m.stageDispatch = obs.NewHistogram()
		m.ingest = obs.NewHistogram()
		m.batchSamples = obs.NewHistogram()
		m.probeLen = obs.NewHistogram()
	}
}

// register exposes the collector's instruments in r. The switch name
// becomes a label so that many collectors (one per monitor port, as
// deployed) share one registry without name collisions.
func (c *Collector) register(r *obs.Registry) {
	var labels []string
	if c.cfg.SwitchName != "" {
		labels = []string{obs.Label("switch", c.cfg.SwitchName)}
	}
	m := &c.met
	r.MustRegister("planck_collector_samples_total", &m.samples, labels...)
	r.MustRegister("planck_collector_decode_errors_total", &m.decodeErrors, labels...)
	r.MustRegister("planck_collector_non_tcp_total", &m.nonTCP, labels...)
	r.MustRegister("planck_collector_rate_updates_total", &m.rateUpdates, labels...)
	r.MustRegister("planck_collector_congestion_events_total", &m.events, labels...)
	r.MustRegister("planck_collector_unmapped_output_total", &m.unmapped, labels...)
	r.MustRegister("planck_collector_out_of_order_total", &m.outOfOrder, labels...)
	r.MustRegister("planck_collector_flow_table_size", &m.flowTableSize, labels...)
	if m.timed {
		r.MustRegister("planck_collector_ingest_ns", m.ingest, labels...)
		r.MustRegister("planck_collector_stage_decode_ns", m.stageDecode, labels...)
		r.MustRegister("planck_collector_stage_flow_table_ns", m.stageFlowTable, labels...)
		r.MustRegister("planck_collector_stage_estimate_ns", m.stageEstimate, labels...)
		r.MustRegister("planck_collector_stage_utilization_ns", m.stageUtil, labels...)
		r.MustRegister("planck_collector_stage_dispatch_ns", m.stageDispatch, labels...)
		r.MustRegister("planck_collector_batch_samples", m.batchSamples, labels...)
		r.MustRegister("planck_collector_table_probe_len", m.probeLen, labels...)
	}
}

// StageTimings returns the per-stage wall-clock histograms (decode,
// flow-table, estimate, utilization, dispatch) or nils when timing is
// disabled. Exposed for tests and embedders that bypass a Registry.
func (c *Collector) StageTimings() (decode, flowTable, estimate, util, dispatch *obs.Histogram) {
	m := &c.met
	return m.stageDecode, m.stageFlowTable, m.stageEstimate, m.stageUtil, m.stageDispatch
}

// IngestTimings returns the whole-Ingest wall-clock histogram
// (nanoseconds per sample), or nil when timing is disabled.
func (c *Collector) IngestTimings() *obs.Histogram { return c.met.ingest }
