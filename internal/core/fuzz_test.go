package core

import (
	"testing"

	"planck/internal/packet"
	"planck/internal/units"
)

// FuzzIngest feeds arbitrary frames through the full collector pipeline.
// The collector sits on an oversubscribed mirror port: its input is, by
// design, whatever bytes the switch felt like sampling, so no input may
// panic it — including truncated UDP payloads around UDPSeqOffset and
// pathological (negative / huge) offsets themselves.
func FuzzIngest(f *testing.F) {
	// Seed corpus: every frame family the pipeline special-cases.
	f.Add(tcpFrame(0, 1460), 0, true)
	f.Add(tcpFrame(0, 0), 4, true) // pure ACK
	f.Add(packet.BuildTCP(nil, packet.TCPSpec{
		SrcMAC: macA, DstMAC: macB, SrcIP: ipA, DstIP: ipB,
		SrcPort: 1, DstPort: 2, Flags: packet.TCPSyn,
	}), 0, false)
	f.Add(packet.BuildUDP(nil, packet.UDPSpec{
		SrcMAC: macA, DstMAC: macB, SrcIP: ipA, DstIP: ipB,
		SrcPort: 1, DstPort: 2, PayloadLen: 8, Seq: 7, HasSeq: true,
	}), 0, true)
	// Truncations straddling the UDP counter window.
	udp := packet.BuildUDP(nil, packet.UDPSpec{
		SrcMAC: macA, DstMAC: macB, SrcIP: ipA, DstIP: ipB,
		SrcPort: 1, DstPort: 2, PayloadLen: 16, Seq: 7, HasSeq: true,
	})
	for cut := len(udp) - 20; cut <= len(udp); cut += 2 {
		f.Add(append([]byte(nil), udp[:cut]...), 3, true)
	}
	f.Add(packet.BuildARP(nil, packet.ARPSpec{
		SrcMAC: macA, DstMAC: macB, Op: packet.ARPRequest,
		SenderMAC: macA, SenderIP: ipA, TargetIP: ipB,
	}), -4, true)
	f.Add([]byte{}, -128, true)
	f.Add([]byte{0x08, 0x00}, 127, false)

	f.Fuzz(func(t *testing.T, frame []byte, udpOff int, udpEnabled bool) {
		c := New(Config{
			SwitchName:    "fuzz",
			NumPorts:      4,
			LinkRate:      units.Rate10G,
			UDPSeqEnabled: udpEnabled,
			UDPSeqOffset:  udpOff,
			RingPackets:   8,
		})
		c.SetPortMapper(staticMapper{macB.U64(): 2})
		c.Subscribe(func(CongestionEvent) {})
		c.SubscribeFlowBoundaries(func(units.Time, packet.FlowKey, BoundaryKind) {})
		// Twice: once creating flow state, once against existing state.
		_ = c.Ingest(0, frame)
		_ = c.Ingest(1, frame)
		// Mutate the tail to hit the existing-flow/changed-label paths.
		if len(frame) > 0 {
			mod := append([]byte(nil), frame...)
			mod[len(mod)-1] ^= 0xff
			_ = c.Ingest(2, mod)
		}
		st := c.Stats()
		if st.Samples < 2 {
			t.Fatalf("samples not counted: %+v", st)
		}
		c.ExpireFlows(units.Time(1)*units.Time(units.Second), units.Millisecond)
	})
}
