package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"planck/internal/units"
)

func TestSampleMoments(t *testing.T) {
	s := NewSample(4)
	s.AddAll([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if got := s.Mean(); got != 5 {
		t.Fatalf("Mean = %v", got)
	}
	if got := s.Stddev(); got != 2 {
		t.Fatalf("Stddev = %v", got)
	}
	if s.N() != 8 || s.Sum() != 40 {
		t.Fatalf("N=%d Sum=%v", s.N(), s.Sum())
	}
}

func TestQuantiles(t *testing.T) {
	s := &Sample{}
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Median(); math.Abs(got-50.5) > 1e-9 {
		t.Fatalf("Median = %v", got)
	}
	if got := s.Quantile(0); got != 1 {
		t.Fatalf("Q0 = %v", got)
	}
	if got := s.Quantile(1); got != 100 {
		t.Fatalf("Q1 = %v", got)
	}
	if got := s.Quantile(0.99); math.Abs(got-99.01) > 1e-9 {
		t.Fatalf("Q99 = %v", got)
	}
	if s.Min() != 1 || s.Max() != 100 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
}

func TestEmptySampleIsSafe(t *testing.T) {
	s := &Sample{}
	if s.Mean() != 0 || s.Median() != 0 || s.Min() != 0 || s.Max() != 0 || s.Stddev() != 0 {
		t.Fatal("empty sample should answer zeros")
	}
	if got := s.FractionAtOrBelow(10); got != 0 {
		t.Fatalf("FractionAtOrBelow on empty = %v", got)
	}
	if cdf := s.CDF(); len(cdf) != 0 {
		t.Fatalf("CDF on empty has %d points", len(cdf))
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(vals []float64, q1, q2 float64) bool {
		if len(vals) == 0 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		q1 = math.Abs(math.Mod(q1, 1))
		q2 = math.Abs(math.Mod(q2, 1))
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		s := &Sample{}
		s.AddAll(vals)
		a, b := s.Quantile(q1), s.Quantile(q2)
		return a <= b && a >= s.Min() && b <= s.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the empirical CDF is non-decreasing in both coordinates and
// ends at fraction 1.
func TestCDFProperty(t *testing.T) {
	f := func(vals []float64) bool {
		clean := vals[:0]
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := &Sample{}
		s.AddAll(clean)
		cdf := s.CDF()
		for i := 1; i < len(cdf); i++ {
			if cdf[i].Value < cdf[i-1].Value || cdf[i].Fraction <= cdf[i-1].Fraction {
				return false
			}
		}
		return cdf[len(cdf)-1].Fraction == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFractionAtOrBelow(t *testing.T) {
	s := &Sample{}
	s.AddAll([]float64{1, 2, 2, 3})
	cases := []struct {
		x    float64
		want float64
	}{{0.5, 0}, {1, 0.25}, {2, 0.75}, {3, 1}, {99, 1}}
	for _, c := range cases {
		if got := s.FractionAtOrBelow(c.x); got != c.want {
			t.Errorf("FractionAtOrBelow(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestMeanRelativeError(t *testing.T) {
	got, err := MeanRelativeError([]float64{11, 9, 5}, []float64{10, 10, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("MRE = %v", got)
	}
	if _, err := MeanRelativeError([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch not detected")
	}
}

func TestEWMA(t *testing.T) {
	e := EWMA{Alpha: 0.5}
	if got := e.Update(10); got != 10 {
		t.Fatalf("first update = %v", got)
	}
	if got := e.Update(0); got != 5 {
		t.Fatalf("second update = %v", got)
	}
	if e.Value() != 5 {
		t.Fatalf("Value = %v", e.Value())
	}
}

func TestRollingWindowRate(t *testing.T) {
	w := NewRollingWindow(200 * units.Microsecond)
	// 10 packets of 1250 bytes over 100µs = 1 Gbps over the 200µs window
	// once they are all inside... rate = 12500B*8 / 200µs = 500 Mbps.
	for i := 0; i < 10; i++ {
		w.Add(units.Time(i*10)*units.Time(units.Microsecond), 1250)
	}
	at := units.Time(90 * units.Microsecond)
	if got := w.Rate(at); got != 500*units.Mbps {
		t.Fatalf("Rate = %v", got)
	}
	// 300µs later everything expired.
	if got := w.Sum(at.Add(300 * units.Microsecond)); got != 0 {
		t.Fatalf("Sum after expiry = %v", got)
	}
	if got := w.Count(at.Add(300 * units.Microsecond)); got != 0 {
		t.Fatalf("Count after expiry = %v", got)
	}
}

func TestRollingWindowExpiry(t *testing.T) {
	w := NewRollingWindow(units.Duration(100))
	rng := rand.New(rand.NewSource(1))
	var tm units.Time
	naive := []timedPoint{}
	for i := 0; i < 10000; i++ {
		tm = tm.Add(units.Duration(rng.Int63n(30)))
		v := float64(rng.Intn(100))
		w.Add(tm, v)
		naive = append(naive, timedPoint{at: tm, val: v})
		// Naive reference sum.
		var want float64
		cut := tm.Add(-100)
		for _, p := range naive {
			if !p.at.Before(cut) {
				want += p.val
			}
		}
		if got := w.Sum(tm); math.Abs(got-want) > 1e-6 {
			t.Fatalf("step %d: Sum=%v want %v", i, got, want)
		}
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Add(100)
	c.Add(200)
	var d Counter
	d.Add(50)
	c.AddCounter(d)
	if c.Packets != 3 || c.Bytes != 350 {
		t.Fatalf("counter = %+v", c)
	}
}

func TestValuesSorted(t *testing.T) {
	s := &Sample{}
	s.AddAll([]float64{3, 1, 2})
	vals := s.Values()
	if !sort.Float64sAreSorted(vals) {
		t.Fatal("Values not sorted")
	}
}
