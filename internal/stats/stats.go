// Package stats provides the small statistical toolkit the experiment
// harnesses need: percentiles, empirical CDFs, rolling time windows,
// exponentially weighted averages, and error metrics. Everything is
// deterministic and allocation-conscious; no third-party dependencies.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates float64 observations and answers order-statistic and
// moment queries. The zero value is ready to use.
type Sample struct {
	vals   []float64
	sorted bool
	sum    float64
}

// NewSample returns a Sample with capacity preallocated for n observations.
func NewSample(n int) *Sample { return &Sample{vals: make([]float64, 0, n)} }

// Add records one observation.
func (s *Sample) Add(v float64) {
	s.vals = append(s.vals, v)
	s.sum += v
	s.sorted = false
}

// AddAll records a slice of observations.
func (s *Sample) AddAll(vs []float64) {
	for _, v := range vs {
		s.Add(v)
	}
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.vals) }

// Sum returns the sum of all observations.
func (s *Sample) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	return s.sum / float64(len(s.vals))
}

// Variance returns the population variance, or 0 for fewer than 2 points.
func (s *Sample) Variance() float64 {
	n := len(s.vals)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	var acc float64
	for _, v := range s.vals {
		d := v - m
		acc += d * d
	}
	return acc / float64(n)
}

// Stddev returns the population standard deviation.
func (s *Sample) Stddev() float64 { return math.Sqrt(s.Variance()) }

func (s *Sample) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.vals)
		s.sorted = true
	}
}

// Quantile returns the q-th quantile (0 <= q <= 1) using linear
// interpolation between order statistics. Empty samples return 0.
func (s *Sample) Quantile(q float64) float64 {
	n := len(s.vals)
	if n == 0 {
		return 0
	}
	s.ensureSorted()
	if q <= 0 {
		return s.vals[0]
	}
	if q >= 1 {
		return s.vals[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.vals[lo]
	}
	frac := pos - float64(lo)
	return s.vals[lo]*(1-frac) + s.vals[hi]*frac
}

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Quantile(0.5) }

// Min returns the smallest observation, or 0 for an empty sample.
func (s *Sample) Min() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.vals[0]
}

// Max returns the largest observation, or 0 for an empty sample.
func (s *Sample) Max() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.vals[len(s.vals)-1]
}

// Values returns the observations in sorted order. The returned slice is
// owned by the Sample; callers must not modify it.
func (s *Sample) Values() []float64 {
	s.ensureSorted()
	return s.vals
}

// CDFPoint is one (value, cumulative-fraction) pair of an empirical CDF.
type CDFPoint struct {
	Value    float64
	Fraction float64
}

// CDF returns the empirical CDF of the sample, one point per observation.
func (s *Sample) CDF() []CDFPoint {
	s.ensureSorted()
	n := len(s.vals)
	out := make([]CDFPoint, n)
	for i, v := range s.vals {
		out[i] = CDFPoint{Value: v, Fraction: float64(i+1) / float64(n)}
	}
	return out
}

// FractionAtOrBelow returns the fraction of observations <= x.
func (s *Sample) FractionAtOrBelow(x float64) float64 {
	if len(s.vals) == 0 {
		return 0
	}
	s.ensureSorted()
	i := sort.SearchFloat64s(s.vals, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(s.vals))
}

// MeanRelativeError returns mean(|est-true|/true) over paired slices,
// skipping pairs whose true value is zero. Mismatched lengths are an error.
func MeanRelativeError(est, truth []float64) (float64, error) {
	if len(est) != len(truth) {
		return 0, fmt.Errorf("stats: mismatched lengths %d vs %d", len(est), len(truth))
	}
	var acc float64
	var n int
	for i := range est {
		if truth[i] == 0 {
			continue
		}
		acc += math.Abs(est[i]-truth[i]) / math.Abs(truth[i])
		n++
	}
	if n == 0 {
		return 0, nil
	}
	return acc / float64(n), nil
}

// EWMA is an exponentially weighted moving average. The zero value with a
// positive Alpha is ready to use.
type EWMA struct {
	Alpha float64 // weight of the newest observation, in (0,1]
	val   float64
	init  bool
}

// Update folds in one observation and returns the new average.
func (e *EWMA) Update(v float64) float64 {
	if !e.init {
		e.val = v
		e.init = true
		return v
	}
	e.val = e.Alpha*v + (1-e.Alpha)*e.val
	return e.val
}

// Value returns the current average (0 before any update).
func (e *EWMA) Value() float64 { return e.val }

// Counter is a monotonically increasing event counter with byte accounting.
type Counter struct {
	Packets int64
	Bytes   int64
}

// Add records one event of n bytes.
func (c *Counter) Add(n int) {
	c.Packets++
	c.Bytes += int64(n)
}

// AddCounter accumulates another counter into c.
func (c *Counter) AddCounter(o Counter) {
	c.Packets += o.Packets
	c.Bytes += o.Bytes
}
