package stats

import "planck/internal/units"

// timedPoint is one (timestamp, value) observation in a rolling window.
type timedPoint struct {
	at  units.Time
	val float64
}

// RollingWindow maintains a sliding time window of (timestamp, value)
// observations and answers sum/rate queries over the window. It is the
// primitive behind the "200 µs rolling average" estimator the paper uses
// as a strawman in Figure 10(a).
type RollingWindow struct {
	span units.Duration
	pts  []timedPoint // FIFO; pts[0] is oldest
	head int          // index of oldest live point
	sum  float64
}

// NewRollingWindow returns a window covering the trailing span.
func NewRollingWindow(span units.Duration) *RollingWindow {
	return &RollingWindow{span: span}
}

// Add records an observation at time t. Timestamps must be non-decreasing.
func (w *RollingWindow) Add(t units.Time, v float64) {
	w.expire(t)
	w.pts = append(w.pts, timedPoint{at: t, val: v})
	w.sum += v
}

// expire drops points older than t-span and compacts storage lazily.
func (w *RollingWindow) expire(t units.Time) {
	cutoff := t.Add(-w.span)
	for w.head < len(w.pts) && w.pts[w.head].at.Before(cutoff) {
		w.sum -= w.pts[w.head].val
		w.head++
	}
	if w.head > 0 && w.head*2 >= len(w.pts) {
		n := copy(w.pts, w.pts[w.head:])
		w.pts = w.pts[:n]
		w.head = 0
	}
}

// Sum returns the sum of values within [t-span, t].
func (w *RollingWindow) Sum(t units.Time) float64 {
	w.expire(t)
	return w.sum
}

// Count returns the number of live points within [t-span, t].
func (w *RollingWindow) Count(t units.Time) int {
	w.expire(t)
	return len(w.pts) - w.head
}

// Rate treats the values as byte counts and returns the average data rate
// over the window ending at t.
func (w *RollingWindow) Rate(t units.Time) units.Rate {
	w.expire(t)
	if w.span <= 0 {
		return 0
	}
	return units.Rate(w.sum * 8 / w.span.Seconds())
}

// Span returns the window length.
func (w *RollingWindow) Span() units.Duration { return w.span }
