package vantagelink

import (
	"planck/internal/core"
	"planck/internal/obs"
	"planck/internal/units"
)

// SenderConfig tunes one vantage's sending half of the link. Zero
// values take the defaults below.
type SenderConfig struct {
	// Vantage is the wire identity stamped on every frame — the plane
	// vantage id the receiver delivers to.
	Vantage uint16
	// SwitchName labels the sender's metrics.
	SwitchName string

	// MaxRecords is the Data-frame batch size. Default 24 keeps the
	// frame (28 + 24·48 = 1180 bytes) under a 1500-byte MTU.
	MaxRecords int
	// Heartbeat is the idle-liveness and clock-sync cadence. Default 1 ms.
	Heartbeat units.Duration
	// RingFrames sizes the retransmit ring (power of two rounded up).
	// Default 512 frames ≈ 12k records of NACK-recoverable history.
	RingFrames int
	// QueueFrames bounds the pending-send queue. When a burst exceeds
	// it, the oldest queued frame is shed (counted, still
	// NACK-recoverable from the ring) — ingest is never blocked.
	// Default 256.
	QueueFrames int
	// ResendBackoff is the minimum spacing between retransmits of the
	// same frame; it doubles per retransmit (capped at 64×).
	// Default 200 µs.
	ResendBackoff units.Duration
	// SyncTimeout bounds how long early records wait for the first
	// clock-sync exchange before going out uncorrected. Default 5 ms.
	SyncTimeout units.Duration
	// NoSyncGate disables holding early records for the first sync —
	// for unit tests without a reverse channel.
	NoSyncGate bool

	// ClockSkew, when non-nil, models the sender host's clock error:
	// every stamped timestamp becomes t + ClockSkew(t). The clock-sync
	// exchange then estimates and cancels exactly this offset. Wire it
	// to a faults.Schedule's Skew for chaos runs.
	ClockSkew func(now units.Time) units.Duration

	// Metrics, when non-nil, receives the sender's planck_link_tx_*
	// instruments, labelled with SwitchName.
	Metrics *obs.Registry
}

func (c SenderConfig) withDefaults() SenderConfig {
	if c.MaxRecords == 0 {
		c.MaxRecords = 24
	}
	if c.Heartbeat == 0 {
		c.Heartbeat = units.Millisecond
	}
	if c.RingFrames == 0 {
		c.RingFrames = 512
	}
	if c.QueueFrames == 0 {
		c.QueueFrames = 256
	}
	if c.ResendBackoff == 0 {
		c.ResendBackoff = 200 * units.Microsecond
	}
	if c.SyncTimeout == 0 {
		c.SyncTimeout = 5 * units.Millisecond
	}
	return c
}

type ringSlot struct {
	seq        uint64
	buf        []byte
	lastSend   units.Time
	retransmit int
}

type senderMetrics struct {
	frames     obs.Counter // sequenced frames produced
	records    obs.Counter // sample records encoded
	resends    obs.Counter // frames re-queued by a NACK
	sheds      obs.Counter // queued frames shed oldest-first
	pendShed   obs.Counter // pre-sync pending records shed
	nackMisses obs.Counter // NACKed seqs already evicted from the ring
	sendErrs   obs.Counter // channel Send errors
	heartbeats obs.Counter
	syncs      obs.Counter
	unsynced   obs.Counter    // records stamped without a clock offset
	hbRTT      *obs.Histogram // heartbeat→sync round trip, ns
}

// Sender is the collector-side half of the link: a core.AggregationSink
// that batches FlowReports into sequenced wire frames, keeps a
// retransmit ring for NACK recovery, sheds oldest-first under
// overload, heartbeats for liveness, and corrects its clock from the
// receiver's sync replies. Drive it from one goroutine: Report and
// BatchEnd ride the collector's ingest path; Tick and HandleControl
// come from the same engine (simulation) or a lock-holding wrapper
// (UDPSender).
//
// The ingest-facing calls (Report, BatchEnd) never touch the channel's
// I/O path directly beyond an in-memory enqueue — sends happen on
// BatchEnd/Tick/HandleControl pumps, so a slow or blocked channel can
// shed but never stall ingest.
type Sender struct {
	cfg SenderConfig
	ch  Channel

	seq uint64 // last assigned sequence number

	// cur is the Data frame under construction (header + records);
	// its seq and time fields are patched at flush.
	cur        []byte
	curRecords int
	curLast    units.Time

	ring []ringSlot

	// queue is a circular buffer of seqs awaiting (re)transmission.
	queue []uint64
	qHead int
	qLen  int

	// Clock correction state. offset is added to every stamped time
	// once the first sync exchange lands; lastStamp keeps stamped
	// times monotone across offset changes.
	offset     units.Duration
	haveOffset bool
	syncGiveUp bool
	lastStamp  units.Time

	// pending holds records produced before the first sync when the
	// sync gate is on, so their stamps can be corrected retroactively.
	pending []core.FlowReport

	now       units.Time // newest local time observed
	firstTick units.Time
	ticked    bool
	lastHB    units.Time
	// awaitSync is the stamp of the heartbeat whose sync reply we will
	// accept — exactly once, newest heartbeat only, so duplicated or
	// stale Sync frames cannot re-apply a partial offset and drift the
	// correction. awaitSeq is that heartbeat's sequence number: if a
	// NACK retransmits it, the exchange is cancelled — a recovered
	// heartbeat's forward delay includes the whole NACK round trip,
	// which breaks the symmetric-delay assumption and would fold half
	// the recovery latency into the offset as phantom skew.
	awaitSync units.Time
	awaitSeq  uint64

	scratch []byte // heartbeat/rejoin build buffer

	met senderMetrics
}

// NewSender builds a sender that transmits on ch.
func NewSender(ch Channel, cfg SenderConfig) *Sender {
	cfg = cfg.withDefaults()
	s := &Sender{
		cfg:       cfg,
		ch:        ch,
		ring:      make([]ringSlot, cfg.RingFrames),
		queue:     make([]uint64, cfg.QueueFrames),
		lastHB:    -1 << 62,
		lastStamp: -1 << 62,
		awaitSync: -1 << 62,
	}
	s.met.hbRTT = obs.NewHistogram()
	if m := cfg.Metrics; m != nil {
		label := obs.Label("switch", cfg.SwitchName)
		m.MustRegister("planck_link_tx_frames_total", &s.met.frames, label)
		m.MustRegister("planck_link_tx_records_total", &s.met.records, label)
		m.MustRegister("planck_link_tx_resends_total", &s.met.resends, label)
		m.MustRegister("planck_link_tx_sheds_total", &s.met.sheds, label)
		m.MustRegister("planck_link_tx_pending_shed_total", &s.met.pendShed, label)
		m.MustRegister("planck_link_tx_nack_misses_total", &s.met.nackMisses, label)
		m.MustRegister("planck_link_tx_send_errors_total", &s.met.sendErrs, label)
		m.MustRegister("planck_link_tx_heartbeats_total", &s.met.heartbeats, label)
		m.MustRegister("planck_link_tx_syncs_total", &s.met.syncs, label)
		m.MustRegister("planck_link_tx_unsynced_records_total", &s.met.unsynced, label)
		m.MustRegister("planck_link_hb_rtt_ns", s.met.hbRTT, label)
	}
	return s
}

// Vantage returns the sender's wire identity.
func (s *Sender) Vantage() uint16 { return s.cfg.Vantage }

// Seq returns the last assigned sequence number.
func (s *Sender) Seq() uint64 { return s.seq }

// Offset returns the current clock correction (receiver − sender) and
// whether a sync exchange has established it.
func (s *Sender) Offset() (units.Duration, bool) { return s.offset, s.haveOffset }

// Resends returns how many frames NACKs have re-queued.
func (s *Sender) Resends() int64 { return s.met.resends.Value() }

// Sheds returns how many queued frames overload has shed.
func (s *Sender) Sheds() int64 { return s.met.sheds.Value() }

// FramesSent returns how many sequenced frames the sender produced.
func (s *Sender) FramesSent() int64 { return s.met.frames.Value() }

// RecordsSent returns how many sample records the sender encoded.
func (s *Sender) RecordsSent() int64 { return s.met.records.Value() }

// HeartbeatRTT exposes the heartbeat→sync round-trip histogram (ns).
func (s *Sender) HeartbeatRTT() *obs.Histogram { return s.met.hbRTT }

// gated reports whether records are being held for the first sync.
func (s *Sender) gated() bool {
	return !s.cfg.NoSyncGate && !s.haveOffset && !s.syncGiveUp
}

// senderClock returns the host's (possibly skewed) reading of t.
func (s *Sender) senderClock(t units.Time) units.Time {
	if s.cfg.ClockSkew != nil {
		return t.Add(s.cfg.ClockSkew(t))
	}
	return t
}

// stampFinal reports whether stamps are on the sender's final clock:
// corrected by a sync exchange, knowingly uncorrected after a sync
// timeout, or never to be corrected at all. Only final stamps anchor
// the monotone clamp — a pre-sync heartbeat's raw stamp must not
// drag later corrected stamps upward.
func (s *Sender) stampFinal() bool {
	return s.haveOffset || s.syncGiveUp || s.cfg.NoSyncGate
}

// stamp converts a local event time into the wire timestamp: the
// skewed host clock plus the sync correction, clamped monotone so an
// offset update can never make the stream step backwards.
func (s *Sender) stamp(t units.Time) units.Time {
	st := s.senderClock(t)
	if s.haveOffset {
		st = st.Add(s.offset)
	} else {
		s.met.unsynced.IncRelaxed()
	}
	if s.stampFinal() {
		if st < s.lastStamp {
			st = s.lastStamp
		}
		s.lastStamp = st
	}
	return st
}

func (s *Sender) noteNow(now units.Time) {
	if now > s.now {
		s.now = now
	}
}

// Report implements core.AggregationSink: encode one sample into the
// Data frame under construction, flushing at MaxRecords. Pre-sync (if
// gated) the record is held raw so the first offset can correct its
// stamp retroactively.
func (s *Sender) Report(rep *core.FlowReport) {
	s.noteNow(rep.Time)
	if s.gated() {
		if max := s.cfg.QueueFrames * s.cfg.MaxRecords; len(s.pending) >= max {
			// Shed oldest-first, same policy as the frame queue.
			copy(s.pending, s.pending[1:])
			s.pending = s.pending[:len(s.pending)-1]
			s.met.pendShed.IncRelaxed()
		}
		s.pending = append(s.pending, *rep)
		return
	}
	s.encodeRecord(rep)
}

// BatchEnd implements core.BatchEndSink: the collector finished an
// ingest batch — flush the partial frame and pump the queue.
func (s *Sender) BatchEnd(now units.Time) {
	s.noteNow(now)
	s.flushData()
	s.pump()
}

// Flush flushes the partial Data frame and pumps the queue — the
// explicit form of BatchEnd for drivers that are not collector sinks.
func (s *Sender) Flush(now units.Time) { s.BatchEnd(now) }

// Rejoin announces a supervised collector restart in-stream: the
// receiver delivers it to the plane vantage in sequence, so cooldown
// bookkeeping survives exactly as with in-process federation.
func (s *Sender) Rejoin(now units.Time, gen uint32) {
	s.noteNow(now)
	s.flushData()
	s.seq++
	s.scratch = AppendHeader(s.scratch[:0], Header{
		Type: FrameRejoin, Vantage: s.cfg.Vantage, Seq: s.seq, Time: s.stamp(now),
	})
	s.scratch = AppendRejoin(s.scratch, gen)
	FinishFrame(s.scratch)
	s.commit(s.scratch)
	s.pump()
}

// Tick drives time-based work: heartbeats (liveness + clock sync),
// the linger flush of a partial batch, the sync-gate timeout, and a
// queue pump. Call it on a short period (the lab defaults to 250 µs).
func (s *Sender) Tick(now units.Time) {
	s.noteNow(now)
	if !s.ticked {
		s.ticked = true
		s.firstTick = now
	}
	if s.gated() && now.Sub(s.firstTick) > s.cfg.SyncTimeout {
		// No sync reply in time (dead reverse path?): stop holding
		// records, send them uncorrected.
		s.syncGiveUp = true
		s.drainPending()
	}
	if now.Sub(s.lastHB) >= s.cfg.Heartbeat {
		s.lastHB = now
		s.heartbeat(now)
	}
	s.flushData()
	s.pump()
}

// heartbeat emits a sequenced Heartbeat frame. Its timestamp is the
// t1 of the NTP-style sync exchange and, at the receiver, an idle
// vantage's watermark advance.
func (s *Sender) heartbeat(now units.Time) {
	s.flushData()
	s.seq++
	s.met.heartbeats.IncRelaxed()
	st := s.stamp(now)
	s.awaitSync = st
	s.awaitSeq = s.seq
	s.scratch = AppendHeader(s.scratch[:0], Header{
		Type: FrameHeartbeat, Vantage: s.cfg.Vantage, Seq: s.seq, Time: st,
	})
	trail := uint64(1)
	if n := uint64(len(s.ring)); s.seq >= n {
		trail = s.seq - n + 1
	}
	s.scratch = AppendHeartbeat(s.scratch, s.stampFinal(), trail)
	FinishFrame(s.scratch)
	s.commit(s.scratch)
}

// encodeRecord appends one stamped record to the frame under
// construction, flushing when it reaches MaxRecords.
func (s *Sender) encodeRecord(rep *core.FlowReport) {
	if s.curRecords == 0 {
		s.cur = AppendHeader(s.cur[:0], Header{Type: FrameData, Vantage: s.cfg.Vantage})
	}
	st := s.stamp(rep.Time)
	r := *rep
	r.Time = st
	s.cur = AppendRecord(s.cur, &r)
	s.curRecords++
	s.curLast = st
	s.met.records.IncRelaxed()
	if s.curRecords >= s.cfg.MaxRecords {
		s.flushData()
	}
}

// drainPending encodes the records held back by the sync gate, now
// that stamps are final (offset learned, or timed out).
func (s *Sender) drainPending() {
	for i := range s.pending {
		s.encodeRecord(&s.pending[i])
	}
	s.pending = nil
	s.flushData()
}

// flushData seals the Data frame under construction — assign its
// sequence number, stamp the header with the newest record time,
// checksum — and commits it to the ring and send queue.
func (s *Sender) flushData() {
	if s.curRecords == 0 {
		return
	}
	s.seq++
	patchHeader(s.cur, s.seq, s.curLast)
	FinishFrame(s.cur)
	s.commit(s.cur)
	s.curRecords = 0
}

// patchHeader rewrites the seq and time fields of an encoded header.
func patchHeader(frame []byte, seq uint64, t units.Time) {
	frame[8] = byte(seq >> 56)
	frame[9] = byte(seq >> 48)
	frame[10] = byte(seq >> 40)
	frame[11] = byte(seq >> 32)
	frame[12] = byte(seq >> 24)
	frame[13] = byte(seq >> 16)
	frame[14] = byte(seq >> 8)
	frame[15] = byte(seq)
	u := uint64(t)
	frame[16] = byte(u >> 56)
	frame[17] = byte(u >> 48)
	frame[18] = byte(u >> 40)
	frame[19] = byte(u >> 32)
	frame[20] = byte(u >> 24)
	frame[21] = byte(u >> 16)
	frame[22] = byte(u >> 8)
	frame[23] = byte(u)
}

// commit stores the sealed frame (whose seq is s.seq) in the
// retransmit ring and enqueues it for transmission, shedding the
// oldest queued frame when the queue is full. Shed frames stay in the
// ring: the receiver NACKs the gap and recovers them later — the
// "complete but delayed" degradation mode.
func (s *Sender) commit(frame []byte) {
	s.met.frames.IncRelaxed()
	slot := &s.ring[s.seq%uint64(len(s.ring))]
	slot.seq = s.seq
	slot.buf = append(slot.buf[:0], frame...)
	slot.lastSend = -1 << 62
	slot.retransmit = 0
	s.enqueue(s.seq)
}

func (s *Sender) enqueue(seq uint64) {
	if s.qLen == len(s.queue) {
		// Shed oldest-first; the ring still holds it for NACK recovery.
		s.qHead = (s.qHead + 1) % len(s.queue)
		s.qLen--
		s.met.sheds.IncRelaxed()
	}
	s.queue[(s.qHead+s.qLen)%len(s.queue)] = seq
	s.qLen++
}

// pump drains the send queue onto the channel.
func (s *Sender) pump() {
	for s.qLen > 0 {
		seq := s.queue[s.qHead]
		s.qHead = (s.qHead + 1) % len(s.queue)
		s.qLen--
		slot := &s.ring[seq%uint64(len(s.ring))]
		if slot.seq != seq {
			// Evicted from the ring between queue and pump — only
			// possible after deep shedding; the gap will be abandoned.
			s.met.nackMisses.IncRelaxed()
			continue
		}
		slot.lastSend = s.now
		if err := s.ch.Send(s.now, slot.buf); err != nil {
			s.met.sendErrs.IncRelaxed()
		}
	}
}

// HandleControl processes one reverse-channel datagram (Nack or Sync).
// Malformed or unexpected frames are dropped.
func (s *Sender) HandleControl(now units.Time, dgram []byte) {
	s.noteNow(now)
	h, payload, err := ParseFrame(dgram)
	if err != nil || h.Vantage != s.cfg.Vantage {
		return
	}
	switch h.Type {
	case FrameNack:
		s.handleNack(now, payload)
	case FrameSync:
		s.handleSync(now, payload)
	}
	s.pump()
}

// handleNack re-queues the requested frames from the retransmit ring,
// honouring per-frame exponential backoff so a NACK storm cannot
// amplify into a send storm.
func (s *Sender) handleNack(now units.Time, payload []byte) {
	const maxSeqs = 4096 // bound hostile/huge range work per frame
	n := len(payload) / NackRangeLen
	budget := maxSeqs
	for i := 0; i < n && budget > 0; i++ {
		from, to := DecodeNackRange(payload, i)
		if from == 0 || to <= from {
			continue
		}
		for seq := from; seq < to && budget > 0; seq++ {
			if s.qLen == len(s.queue) {
				// Queue full: stop here rather than enqueue-and-shed.
				// NACK ranges arrive oldest-first and the oldest frames
				// are the ones unblocking the receiver's head of line —
				// shedding them for newer resends would starve recovery.
				// The receiver re-NACKs what we skipped.
				return
			}
			budget--
			slot := &s.ring[seq%uint64(len(s.ring))]
			if slot.seq != seq {
				s.met.nackMisses.IncRelaxed()
				continue
			}
			backoff := s.cfg.ResendBackoff << uint(min(slot.retransmit, 6))
			if now.Sub(slot.lastSend) < backoff {
				continue
			}
			slot.retransmit++
			slot.lastSend = now // refreshed again at pump; anchors backoff now
			s.met.resends.IncRelaxed()
			if seq == s.awaitSeq {
				// The heartbeat we are awaiting a sync reply for was lost
				// and is being recovered: its reply would carry an
				// asymmetric (recovery-inflated) forward delay. Drop the
				// exchange; the next heartbeat syncs cleanly.
				s.awaitSync = -1 << 62
			}
			s.enqueue(seq)
		}
	}
}

// handleSync folds one NTP-style exchange into the clock correction:
// t1 is our heartbeat stamp (already offset-corrected), t2/t3 the
// receiver's arrival/reply stamps, t4 the corrected local reception
// time. Under symmetric delay the residual θ = ((t2−t1)+(t3−t4))/2
// is exactly the remaining clock error, so offset += θ converges in
// one exchange under constant skew.
func (s *Sender) handleSync(now units.Time, payload []byte) {
	t1, t2, t3 := DecodeSync(payload)
	if t1 != s.awaitSync {
		return // stale or duplicated reply; only the newest heartbeat's counts
	}
	s.awaitSync = -1 << 62
	t4 := s.senderClock(now).Add(s.offset)
	theta := (t2.Sub(t1) + t3.Sub(t4)) / 2
	rtt := t4.Sub(t1) - t3.Sub(t2)
	if rtt < 0 {
		return // reordered/stale sync; a negative RTT can only be junk
	}
	s.met.hbRTT.Observe(int64(rtt))
	s.met.syncs.IncRelaxed()
	s.offset += theta
	first := !s.haveOffset
	s.haveOffset = true
	if first && len(s.pending) > 0 {
		s.drainPending()
	}
}
