package vantagelink

import (
	"testing"

	"planck/internal/core"
	"planck/internal/packet"
	"planck/internal/units"
)

func testReport(i int) core.FlowReport {
	return core.FlowReport{
		Time: units.Time(1_000_000 + i*137),
		Key: packet.FlowKey{
			SrcIP: packet.IPv4{10, 0, byte(i), 1}, DstIP: packet.IPv4{10, 0, 8, byte(i)},
			SrcPort: uint16(1000 + i), DstPort: 5001,
			Proto: packet.IPProtocolTCP,
		},
		DstMAC:      packet.MAC{2, 0, 0, 0, 0, byte(i)},
		OutPort:     i % 5,
		Epoch:       uint64(7 + i),
		Rate:        units.Rate(1_500_000 * (i + 1)),
		RateOK:      i%2 == 0,
		RateUpdated: i%3 == 0,
	}
}

func TestDataFrameRoundTrip(t *testing.T) {
	h := Header{Type: FrameData, Vantage: 42, Seq: 987654, Time: units.Time(5 * units.Millisecond)}
	frame := AppendHeader(nil, h)
	want := make([]core.FlowReport, 5)
	for i := range want {
		want[i] = testReport(i)
		frame = AppendRecord(frame, &want[i])
	}
	FinishFrame(frame)

	got, payload, err := ParseFrame(frame)
	if err != nil {
		t.Fatalf("ParseFrame: %v", err)
	}
	if got != h {
		t.Fatalf("header round trip: got %+v want %+v", got, h)
	}
	if len(payload) != len(want)*RecordLen {
		t.Fatalf("payload length %d, want %d", len(payload), len(want)*RecordLen)
	}
	var rep core.FlowReport
	for i := range want {
		DecodeRecord(payload[i*RecordLen:], &rep)
		if rep != want[i] {
			t.Fatalf("record %d round trip: got %+v want %+v", i, rep, want[i])
		}
	}
}

func TestRecordRoundTripEdgeCases(t *testing.T) {
	cases := []core.FlowReport{
		{},                          // zero value
		{OutPort: -1},               // unknown egress
		{Time: -1, Rate: -1},        // negative stamps survive
		{Epoch: 1<<64 - 1, RateOK: true, RateUpdated: true},
	}
	for i, want := range cases {
		b := AppendRecord(nil, &want)
		if len(b) != RecordLen {
			t.Fatalf("case %d: encoded %d bytes, want %d", i, len(b), RecordLen)
		}
		got := testReport(9) // pre-dirtied: Decode must overwrite every field
		DecodeRecord(b, &got)
		if got != want {
			t.Fatalf("case %d: got %+v want %+v", i, got, want)
		}
	}
}

func TestControlFrameRoundTrips(t *testing.T) {
	// Nack with two ranges.
	frame := AppendHeader(nil, Header{Type: FrameNack, Vantage: 3, Seq: 0, Time: 77})
	frame = AppendNackRange(frame, 10, 15)
	frame = AppendNackRange(frame, 40, 41)
	FinishFrame(frame)
	h, payload, err := ParseFrame(frame)
	if err != nil || h.Type != FrameNack {
		t.Fatalf("nack parse: %v %+v", err, h)
	}
	if from, to := DecodeNackRange(payload, 0); from != 10 || to != 15 {
		t.Fatalf("nack range 0: [%d,%d)", from, to)
	}
	if from, to := DecodeNackRange(payload, 1); from != 40 || to != 41 {
		t.Fatalf("nack range 1: [%d,%d)", from, to)
	}

	// Sync.
	frame = AppendHeader(frame[:0], Header{Type: FrameSync, Vantage: 3, Time: 5})
	frame = AppendSync(frame, 100, 200, 201)
	FinishFrame(frame)
	if _, payload, err = ParseFrame(frame); err != nil {
		t.Fatalf("sync parse: %v", err)
	}
	if t1, t2, t3 := DecodeSync(payload); t1 != 100 || t2 != 200 || t3 != 201 {
		t.Fatalf("sync round trip: %d %d %d", t1, t2, t3)
	}

	// Heartbeat, both flag values plus the ring-trail edge values.
	for _, synced := range []bool{false, true} {
		for _, trail := range []uint64{1, 512, 1<<64 - 1} {
			frame = AppendHeader(frame[:0], Header{Type: FrameHeartbeat, Vantage: 1, Seq: 9, Time: 1})
			frame = AppendHeartbeat(frame, synced, trail)
			FinishFrame(frame)
			if _, payload, err = ParseFrame(frame); err != nil {
				t.Fatalf("heartbeat parse: %v", err)
			}
			gotSynced, gotTrail := DecodeHeartbeat(payload)
			if gotSynced != synced || gotTrail != trail {
				t.Fatalf("heartbeat round trip: got %v/%d want %v/%d", gotSynced, gotTrail, synced, trail)
			}
		}
	}

	// Rejoin.
	frame = AppendHeader(frame[:0], Header{Type: FrameRejoin, Vantage: 1, Seq: 10, Time: 2})
	frame = AppendRejoin(frame, 12345)
	FinishFrame(frame)
	if _, payload, err = ParseFrame(frame); err != nil {
		t.Fatalf("rejoin parse: %v", err)
	}
	if gen := DecodeRejoin(payload); gen != 12345 {
		t.Fatalf("rejoin gen: %d", gen)
	}
}

// TestChecksumCatchesEveryByteFlip flips every bit position of a valid
// frame one byte at a time and asserts ParseFrame rejects all of them:
// corruption anywhere degrades to loss, never to a bad record.
func TestChecksumCatchesEveryByteFlip(t *testing.T) {
	frame := AppendHeader(nil, Header{Type: FrameData, Vantage: 7, Seq: 55, Time: 1234})
	rep := testReport(0)
	frame = AppendRecord(frame, &rep)
	FinishFrame(frame)
	if _, _, err := ParseFrame(frame); err != nil {
		t.Fatalf("pristine frame must parse: %v", err)
	}
	for i := range frame {
		for bit := 0; bit < 8; bit++ {
			frame[i] ^= 1 << uint(bit)
			if _, _, err := ParseFrame(frame); err == nil {
				t.Fatalf("flip byte %d bit %d went undetected", i, bit)
			}
			frame[i] ^= 1 << uint(bit)
		}
	}
}

func TestParseFrameRejectsMalformed(t *testing.T) {
	valid := AppendHeader(nil, Header{Type: FrameHeartbeat, Vantage: 1, Seq: 1, Time: 1})
	valid = AppendHeartbeat(valid, true, 1)
	FinishFrame(valid)

	bad := func(name string, frame []byte) {
		if _, _, err := ParseFrame(frame); err == nil {
			t.Fatalf("%s: expected parse error", name)
		}
	}
	bad("short", valid[:HeaderLen-1])
	bad("empty", nil)

	// Unknown type with a recomputed (valid) checksum.
	f := append([]byte(nil), valid...)
	f[5] = 99
	FinishFrame(f)
	bad("unknown type", f)

	// Data payload not a multiple of RecordLen.
	f = AppendHeader(f[:0], Header{Type: FrameData, Vantage: 1, Seq: 2, Time: 1})
	f = append(f, make([]byte, RecordLen-1)...)
	FinishFrame(f)
	bad("ragged data payload", f)

	// Nack with an empty payload.
	f = AppendHeader(f[:0], Header{Type: FrameNack, Vantage: 1, Time: 1})
	FinishFrame(f)
	bad("empty nack", f)
}

func TestAppendRecordDoesNotAllocate(t *testing.T) {
	rep := testReport(1)
	buf := make([]byte, 0, 4096)
	allocs := testing.AllocsPerRun(200, func() {
		buf = AppendRecord(buf[:0], &rep)
	})
	if allocs != 0 {
		t.Fatalf("AppendRecord allocates %.1f/op; the per-sample encode path must be allocation-free", allocs)
	}
	var out core.FlowReport
	allocs = testing.AllocsPerRun(200, func() {
		DecodeRecord(buf, &out)
	})
	if allocs != 0 {
		t.Fatalf("DecodeRecord allocates %.1f/op", allocs)
	}
}

// FuzzDecodeFrame throws arbitrary bytes at the full decode surface:
// ParseFrame, every payload decoder, the receiver's datagram entry
// point, and the sender's control entry point. Nothing may panic, and
// anything ParseFrame accepts must decode cleanly.
func FuzzDecodeFrame(f *testing.F) {
	seed := AppendHeader(nil, Header{Type: FrameData, Vantage: 1, Seq: 1, Time: 99})
	rep := testReport(0)
	seed = AppendRecord(seed, &rep)
	FinishFrame(seed)
	f.Add(append([]byte(nil), seed...))
	hb := AppendHeader(nil, Header{Type: FrameHeartbeat, Vantage: 1, Seq: 2, Time: 100})
	hb = AppendHeartbeat(hb, true, 1)
	FinishFrame(hb)
	f.Add(append([]byte(nil), hb...))
	nack := AppendHeader(nil, Header{Type: FrameNack, Vantage: 1, Time: 5})
	nack = AppendNackRange(nack, 3, 9)
	FinishFrame(nack)
	f.Add(append([]byte(nil), nack...))
	f.Add(seed[:HeaderLen])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		h, payload, err := ParseFrame(data)
		if err == nil {
			var rep core.FlowReport
			switch h.Type {
			case FrameData:
				for i := 0; i+RecordLen <= len(payload); i += RecordLen {
					DecodeRecord(payload[i:], &rep)
				}
			case FrameNack:
				for i := 0; i < len(payload)/NackRangeLen; i++ {
					DecodeNackRange(payload, i)
				}
			case FrameSync:
				DecodeSync(payload)
			case FrameHeartbeat:
				DecodeHeartbeat(payload)
			case FrameRejoin:
				DecodeRejoin(payload)
			}
		}
		// The endpoint entry points must shrug off anything.
		r := NewReceiver(ReceiverConfig{})
		r.Join(1, nullSink{}, ChannelFunc(func(units.Time, []byte) error { return nil }))
		r.HandleDatagram(units.Time(units.Millisecond), data)
		r.Tick(units.Time(2 * units.Millisecond))
		s := NewSender(ChannelFunc(func(units.Time, []byte) error { return nil }),
			SenderConfig{Vantage: 1, NoSyncGate: true})
		s.HandleControl(units.Time(units.Millisecond), data)
	})
}

type nullSink struct{}

func (nullSink) Report(*core.FlowReport) {}
func (nullSink) Live(units.Time)         {}
func (nullSink) Rejoin(uint32)           {}
