package vantagelink

import (
	"math/rand"

	"planck/internal/faults"
	"planck/internal/obs"
	"planck/internal/units"
)

// Channel is one direction of a datagram path: fire-and-forget, may
// lose, duplicate, reorder, or corrupt. The transport above it assumes
// nothing else. Implementations: a synchronous in-memory hop for
// tests, an engine-scheduled simulated link (internal/lab), a
// connected *net.UDPConn (this package's udp.go), or a FaultGate
// wrapping any of them.
type Channel interface {
	// Send transmits one datagram. now is the sender's current time
	// (virtual in simulation, wall-derived over UDP); the buffer is
	// only borrowed for the call. A non-nil error means the local send
	// failed outright — in-flight loss is silent, as on a real wire.
	Send(now units.Time, dgram []byte) error
}

// ChannelFunc adapts a function to Channel.
type ChannelFunc func(now units.Time, dgram []byte) error

// Send implements Channel.
func (f ChannelFunc) Send(now units.Time, dgram []byte) error { return f(now, dgram) }

// GateMetrics counts what a FaultGate did to the datagrams through it.
type GateMetrics struct {
	Sent        obs.Counter // datagrams offered to the gate
	Lost        obs.Counter // dropped by a loss rule
	Corrupted   obs.Counter // bit-flipped by a corrupt rule
	Duplicated  obs.Counter // delivered twice by a dup rule
	Reordered   obs.Counter // held and released behind a successor
	Partitioned obs.Counter // dropped by an active partition window
	Delayed     obs.Counter // deferred by a chandelay rule
}

// FaultGate interposes a faults.Schedule on a Channel: the report path
// equivalent of the mirror feed's FaultyIngester. Loss, corrupt, dup,
// and reorder draw from a seeded local RNG; partition drops every
// datagram in its window; chandelay defers delivery through the Defer
// hook (the lab wires it to the engine). Skew is deliberately not
// applied here — a skewed clock belongs to the sender (Sender
// Config.ClockSkew), not to the wire.
//
// A FaultGate is driven from one goroutine at a time, matching the
// Sender it fronts.
type FaultGate struct {
	next  Channel
	sched *faults.Schedule
	rng   *rand.Rand

	// Defer, when non-nil, implements chandelay: deliver must run once
	// at now+d. Without it, chandelay rules deliver immediately.
	Defer func(d units.Duration, deliver func())

	// held is the datagram a reorder rule is holding back; it is
	// released right after the next datagram goes out.
	held     []byte
	heldTime units.Time
	holding  bool

	Met GateMetrics
}

// NewFaultGate wraps next with a fault schedule and a seeded RNG.
// A nil or empty schedule passes everything through.
func NewFaultGate(next Channel, sched *faults.Schedule, seed int64) *FaultGate {
	return &FaultGate{next: next, sched: sched, rng: rand.New(rand.NewSource(seed))}
}

// SetSchedule replaces the gate's schedule and reseeds the RNG —
// tests use it to flip a healthy gate into a faulty one mid-run.
func (g *FaultGate) SetSchedule(sched *faults.Schedule, seed int64) {
	g.sched = sched
	g.rng = rand.New(rand.NewSource(seed))
}

// Send implements Channel.
func (g *FaultGate) Send(now units.Time, dgram []byte) error {
	g.Met.Sent.IncRelaxed()
	s := g.sched
	if s.Empty() {
		return g.next.Send(now, dgram)
	}
	if s.PartitionActive(now) {
		g.Met.Partitioned.IncRelaxed()
		return nil
	}
	if p := s.Prob(faults.KindLoss, now); p > 0 && g.rng.Float64() < p {
		g.Met.Lost.IncRelaxed()
		return nil
	}
	corrupt := false
	if p := s.Prob(faults.KindCorrupt, now); p > 0 && g.rng.Float64() < p {
		corrupt = true
	}
	dup := false
	if p := s.Prob(faults.KindDup, now); p > 0 && g.rng.Float64() < p {
		dup = true
	}
	if p := s.Prob(faults.KindReorder, now); p > 0 && !g.holding && g.rng.Float64() < p {
		// Hold this datagram; it departs right after its successor.
		g.held = append(g.held[:0], dgram...)
		g.heldTime = now
		g.holding = true
		g.Met.Reordered.IncRelaxed()
		return nil
	}
	err := g.deliver(now, dgram, corrupt)
	if dup {
		g.Met.Duplicated.IncRelaxed()
		if err2 := g.deliver(now, dgram, false); err == nil {
			err = err2
		}
	}
	if g.holding {
		g.holding = false
		held := g.held
		if err2 := g.deliver(now, held, false); err == nil {
			err = err2
		}
	}
	return err
}

// deliver passes one datagram down, applying corruption and chandelay.
// Corruption and deferral both copy: the caller only lends the buffer.
func (g *FaultGate) deliver(now units.Time, dgram []byte, corrupt bool) error {
	if corrupt {
		g.Met.Corrupted.IncRelaxed()
		cp := make([]byte, len(dgram))
		copy(cp, dgram)
		if len(cp) > 0 {
			cp[g.rng.Intn(len(cp))] ^= 1 << uint(g.rng.Intn(8))
		}
		dgram = cp
	}
	if d := g.sched.ChannelDelay(now); d > 0 && g.Defer != nil {
		g.Met.Delayed.IncRelaxed()
		cp := make([]byte, len(dgram))
		copy(cp, dgram)
		at := now.Add(d)
		g.Defer(d, func() { _ = g.next.Send(at, cp) })
		return nil
	}
	return g.next.Send(now, dgram)
}
