package vantagelink

import (
	"encoding/binary"
	"net"
	"sync"
	"time"

	"planck/internal/core"
	"planck/internal/units"
)

// WallClock maps wall time onto the repo's virtual units.Time axis:
// nanoseconds since the clock's creation, plus an optional constant
// skew for experiments. Each process (collector, plane) owns its own
// WallClock, so their bases differ — that inter-process offset is
// exactly what the link's heartbeat/Sync exchange measures away.
type WallClock struct {
	base time.Time
	skew units.Duration
}

// NewWallClock starts a clock at zero now.
func NewWallClock() *WallClock { return &WallClock{base: time.Now()} }

// NewSkewedWallClock starts a clock at zero now that reads skew fast.
func NewSkewedWallClock(skew units.Duration) *WallClock {
	return &WallClock{base: time.Now(), skew: skew}
}

// NewEpochWallClock reads Unix-epoch nanoseconds — for senders whose
// record timestamps are already epoch-stamped (a live sample stream),
// so heartbeats and records share one time axis and the sync exchange
// measures a meaningful offset.
func NewEpochWallClock() *WallClock { return &WallClock{base: time.Unix(0, 0)} }

// Now returns the current virtual time.
func (c *WallClock) Now() units.Time {
	return units.Time(time.Since(c.base).Nanoseconds()).Add(c.skew)
}

// UDPSender runs a Sender over a connected UDP socket: datagrams go
// to the receiver's address, a reader goroutine feeds NACK/Sync
// replies back into the sender, and a ticker drives heartbeats and
// retransmits. All entry points serialize on one mutex, satisfying
// the Sender's single-goroutine contract.
type UDPSender struct {
	mu     sync.Mutex
	conn   *net.UDPConn
	s      *Sender
	clock  *WallClock
	tick   units.Duration
	done   chan struct{}
	closed sync.Once
	wg     sync.WaitGroup
}

// DialUDPSender connects to the receiver at raddr and starts the
// reader and ticker goroutines. tick is the Tick cadence (heartbeat
// cadence still comes from cfg.Heartbeat); 0 means 250 µs. wrap, when
// non-nil, interposes on the outbound channel — e.g. a FaultGate that
// injects loss for resilience smokes over a real socket.
func DialUDPSender(raddr string, cfg SenderConfig, clock *WallClock, tick units.Duration, wrap func(Channel) Channel) (*UDPSender, error) {
	addr, err := net.ResolveUDPAddr("udp", raddr)
	if err != nil {
		return nil, err
	}
	conn, err := net.DialUDP("udp", nil, addr)
	if err != nil {
		return nil, err
	}
	if tick == 0 {
		tick = 250 * units.Microsecond
	}
	if clock == nil {
		clock = NewWallClock()
	}
	u := &UDPSender{conn: conn, clock: clock, tick: tick, done: make(chan struct{})}
	var ch Channel = ChannelFunc(func(_ units.Time, dgram []byte) error {
		_, err := conn.Write(dgram)
		return err
	})
	if wrap != nil {
		ch = wrap(ch)
	}
	u.s = NewSender(ch, cfg)
	u.wg.Add(2)
	go u.readLoop()
	go u.tickLoop()
	return u, nil
}

// Sender exposes the wrapped Sender for metrics reads; take no
// mutating calls on it directly — use the UDPSender methods.
func (u *UDPSender) Sender() *Sender { return u.s }

// Report queues one flow report (non-blocking; sheds under overload).
func (u *UDPSender) Report(rep *core.FlowReport) {
	u.mu.Lock()
	u.s.Report(rep)
	u.mu.Unlock()
}

// BatchEnd implements core.BatchEndSink: an ingest batch finished at
// stream time now — seal and transmit the frame under construction.
func (u *UDPSender) BatchEnd(now units.Time) {
	u.mu.Lock()
	u.s.BatchEnd(now)
	u.mu.Unlock()
}

// Flush closes and transmits the current batch.
func (u *UDPSender) Flush() {
	u.mu.Lock()
	u.s.Flush(u.clock.Now())
	u.mu.Unlock()
}

// Rejoin announces a collector restart generation in stream order.
func (u *UDPSender) Rejoin(gen uint32) {
	u.mu.Lock()
	u.s.Rejoin(u.clock.Now(), gen)
	u.mu.Unlock()
}

// Synced reports whether the clock-sync exchange has completed.
func (u *UDPSender) Synced() bool {
	u.mu.Lock()
	_, ok := u.s.Offset()
	u.mu.Unlock()
	return ok
}

func (u *UDPSender) readLoop() {
	defer u.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		n, err := u.conn.Read(buf)
		if err != nil {
			return // closed
		}
		u.mu.Lock()
		u.s.HandleControl(u.clock.Now(), buf[:n])
		u.mu.Unlock()
	}
}

func (u *UDPSender) tickLoop() {
	defer u.wg.Done()
	t := time.NewTicker(time.Duration(u.tick))
	defer t.Stop()
	for {
		select {
		case <-u.done:
			return
		case <-t.C:
			u.mu.Lock()
			u.s.Tick(u.clock.Now())
			u.mu.Unlock()
		}
	}
}

// Close flushes once more, stops the goroutines, and closes the socket.
func (u *UDPSender) Close() error {
	var err error
	u.closed.Do(func() {
		u.Flush()
		close(u.done)
		err = u.conn.Close()
		u.wg.Wait()
	})
	return err
}

// UDPReceiver runs a Receiver on a listening UDP socket. The reader
// goroutine learns each vantage's remote address from its first frame
// (a light header peek, before full validation) so the per-vantage
// control channel can route NACK and Sync replies back; a ticker
// drives gap NACKs and the watermark. One mutex serializes the
// Receiver and the sinks behind it.
type UDPReceiver struct {
	mu     sync.Mutex
	conn   *net.UDPConn
	r      *Receiver
	clock  *WallClock
	tick   units.Duration
	addrs  map[uint16]*net.UDPAddr
	done   chan struct{}
	closed sync.Once
	wg     sync.WaitGroup
}

// ListenUDPReceiver binds laddr (e.g. "127.0.0.1:0") and starts the
// reader and ticker goroutines. Join vantages before senders dial in.
func ListenUDPReceiver(laddr string, cfg ReceiverConfig, clock *WallClock, tick units.Duration) (*UDPReceiver, error) {
	addr, err := net.ResolveUDPAddr("udp", laddr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, err
	}
	if tick == 0 {
		tick = 250 * units.Microsecond
	}
	if clock == nil {
		clock = NewWallClock()
	}
	u := &UDPReceiver{
		conn: conn, r: NewReceiver(cfg), clock: clock, tick: tick,
		addrs: make(map[uint16]*net.UDPAddr), done: make(chan struct{}),
	}
	u.wg.Add(2)
	go u.readLoop()
	go u.tickLoop()
	return u, nil
}

// Addr returns the bound listen address for senders to dial.
func (u *UDPReceiver) Addr() string { return u.conn.LocalAddr().String() }

// Receiver exposes the wrapped Receiver for metrics reads; hold no
// reference across goroutines without the UDPReceiver's lock.
func (u *UDPReceiver) Receiver() *Receiver { return u.r }

// Join registers a vantage; its control replies go to whatever remote
// address that vantage's frames last arrived from.
func (u *UDPReceiver) Join(vantage uint16, sink ReportSink) {
	u.mu.Lock()
	u.r.Join(vantage, sink, ChannelFunc(func(_ units.Time, dgram []byte) error {
		raddr := u.addrs[vantage] // mutex already held: ctrl sends happen inside Receiver calls
		if raddr == nil {
			return nil
		}
		_, err := u.conn.WriteToUDP(dgram, raddr)
		return err
	}))
	u.mu.Unlock()
}

// Locked runs fn with the receiver lock held — for reading merged
// state (the aggregation plane) consistently from another goroutine.
func (u *UDPReceiver) Locked(fn func()) {
	u.mu.Lock()
	fn()
	u.mu.Unlock()
}

func (u *UDPReceiver) readLoop() {
	defer u.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		n, raddr, err := u.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		dgram := buf[:n]
		u.mu.Lock()
		// Learn/refresh the vantage's return address from the header
		// peek; full validation (magic, crc) happens in HandleDatagram.
		if n >= HeaderLen && binary.BigEndian.Uint32(dgram) == Magic {
			vantage := binary.BigEndian.Uint16(dgram[6:8])
			u.addrs[vantage] = raddr
		}
		u.r.HandleDatagram(u.clock.Now(), dgram)
		u.mu.Unlock()
	}
}

func (u *UDPReceiver) tickLoop() {
	defer u.wg.Done()
	t := time.NewTicker(time.Duration(u.tick))
	defer t.Stop()
	for {
		select {
		case <-u.done:
			return
		case <-t.C:
			u.mu.Lock()
			u.r.Tick(u.clock.Now())
			u.mu.Unlock()
		}
	}
}

// Close stops the goroutines, drains outstanding state into the
// sinks, and closes the socket.
func (u *UDPReceiver) Close() error {
	var err error
	u.closed.Do(func() {
		close(u.done)
		err = u.conn.Close()
		u.wg.Wait()
		u.mu.Lock()
		u.r.Drain()
		u.mu.Unlock()
	})
	return err
}
