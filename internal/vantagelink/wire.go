// Package vantagelink is the wire between a fleet of vantage
// collectors and the aggregation plane: a compact binary frame format
// plus a resilient datagram transport (sequencing, NACK/retransmit,
// bounded shedding, heartbeat liveness, clock-offset estimation) that
// survives the loss, reordering, duplication, and skew a real
// collector-to-aggregator network exhibits.
//
// PR 7's fleet federated through in-process core.Config.Sink calls;
// this package carries the same FlowReport stream over a lossy channel
// — an in-memory simulated link under internal/faults, or a real
// net.UDPConn — and re-establishes, at the receiver, exactly the
// ordered, deduplicated delivery the plane's oracle tests demand.
//
// Frame layout (big-endian, 28-byte header):
//
//	 0:4   magic "PLNK"
//	 4     version (1)
//	 5     type (Data, Heartbeat, Rejoin, Nack, Sync)
//	 6:8   vantage id
//	 8:16  sequence number (per-vantage, monotone from 1;
//	       0 on the unsequenced control frames Nack and Sync)
//	16:24  timestamp (sender clock for Data/Heartbeat/Rejoin)
//	24:28  CRC32 (IEEE) over the whole frame with this field zeroed
//
// A Data payload is a batch of fixed 48-byte sample records; Nack
// carries [from, to) retransmit ranges; Sync answers a Heartbeat with
// the two receiver timestamps of an NTP-style offset exchange. Frames
// that fail the checksum are dropped whole — corruption degrades to
// loss, and the NACK path recovers it.
package vantagelink

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"planck/internal/core"
	"planck/internal/packet"
	"planck/internal/units"
)

// Wire constants.
const (
	Magic   uint32 = 0x504C4E4B // "PLNK"
	Version uint8  = 1

	// HeaderLen is the fixed frame header size.
	HeaderLen = 28
	// RecordLen is the fixed size of one encoded FlowReport.
	RecordLen = 48
	// NackRangeLen is the size of one [from, to) range in a Nack payload.
	NackRangeLen = 16
	// SyncLen is the Sync payload size (t1 echo, t2 arrival, t3 send).
	SyncLen = 24
	// RejoinLen is the Rejoin payload size (restart generation).
	RejoinLen = 4
	// HeartbeatLen is the Heartbeat payload size (flags + ring trail).
	HeartbeatLen = 9

	crcOff = 24
)

// FrameType discriminates wire frames.
type FrameType uint8

// Frame types. Data, Heartbeat, and Rejoin flow collector→plane and
// carry sequence numbers; Nack and Sync flow plane→collector and are
// unsequenced (best-effort, idempotent).
const (
	FrameData      FrameType = 1
	FrameHeartbeat FrameType = 2
	FrameRejoin    FrameType = 3
	FrameNack      FrameType = 4
	FrameSync      FrameType = 5
)

// String implements fmt.Stringer.
func (t FrameType) String() string {
	switch t {
	case FrameData:
		return "data"
	case FrameHeartbeat:
		return "heartbeat"
	case FrameRejoin:
		return "rejoin"
	case FrameNack:
		return "nack"
	case FrameSync:
		return "sync"
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Record flag bits (record byte 21).
const (
	recFlagRateOK      = 1 << 0
	recFlagRateUpdated = 1 << 1
)

// Decode errors. Hostile input yields one of these; it never panics
// (FuzzDecodeFrame holds the package to that).
var (
	ErrFrameTooShort = errors.New("vantagelink: frame shorter than header")
	ErrBadMagic      = errors.New("vantagelink: bad magic")
	ErrBadVersion    = errors.New("vantagelink: unsupported version")
	ErrBadChecksum   = errors.New("vantagelink: checksum mismatch")
	ErrBadPayload    = errors.New("vantagelink: payload length invalid for frame type")
	ErrBadType       = errors.New("vantagelink: unknown frame type")
)

// Header is the decoded fixed frame header.
type Header struct {
	Type    FrameType
	Vantage uint16
	Seq     uint64
	// Time is the sender-clock frame timestamp. For Data frames the
	// sender stamps it with the newest record's time, so in-sequence
	// header times bound everything delivered so far — the receiver's
	// watermark reads exactly this.
	Time units.Time
}

// AppendHeader appends the 28-byte encoding of h to dst with a zero
// checksum field; FinishFrame fills the checksum once the payload is
// complete. Append-style so a sender building frames in a reused
// buffer allocates nothing.
func AppendHeader(dst []byte, h Header) []byte {
	var b [HeaderLen]byte
	binary.BigEndian.PutUint32(b[0:4], Magic)
	b[4] = Version
	b[5] = uint8(h.Type)
	binary.BigEndian.PutUint16(b[6:8], h.Vantage)
	binary.BigEndian.PutUint64(b[8:16], h.Seq)
	binary.BigEndian.PutUint64(b[16:24], uint64(h.Time))
	// b[24:28] stays zero until FinishFrame.
	return append(dst, b[:]...)
}

// FinishFrame computes the frame checksum (over the whole frame with
// the checksum field zeroed) and writes it in place. The frame must
// start with an AppendHeader-built header.
func FinishFrame(frame []byte) {
	binary.BigEndian.PutUint32(frame[crcOff:crcOff+4], 0)
	binary.BigEndian.PutUint32(frame[crcOff:crcOff+4], frameChecksum(frame))
}

var zero4 [4]byte

// frameChecksum hashes the frame as if its checksum field were zero,
// without mutating the input.
func frameChecksum(frame []byte) uint32 {
	c := crc32.Update(0, crc32.IEEETable, frame[:crcOff])
	c = crc32.Update(c, crc32.IEEETable, zero4[:])
	return crc32.Update(c, crc32.IEEETable, frame[crcOff+4:])
}

// ParseFrame validates and decodes a datagram: header shape, magic,
// version, checksum, and the per-type payload length contract. It
// returns the header and the payload sub-slice (aliasing frame).
func ParseFrame(frame []byte) (Header, []byte, error) {
	if len(frame) < HeaderLen {
		return Header{}, nil, ErrFrameTooShort
	}
	if binary.BigEndian.Uint32(frame[0:4]) != Magic {
		return Header{}, nil, ErrBadMagic
	}
	if frame[4] != Version {
		return Header{}, nil, ErrBadVersion
	}
	if binary.BigEndian.Uint32(frame[crcOff:crcOff+4]) != frameChecksum(frame) {
		return Header{}, nil, ErrBadChecksum
	}
	h := Header{
		Type:    FrameType(frame[5]),
		Vantage: binary.BigEndian.Uint16(frame[6:8]),
		Seq:     binary.BigEndian.Uint64(frame[8:16]),
		Time:    units.Time(binary.BigEndian.Uint64(frame[16:24])),
	}
	payload := frame[HeaderLen:]
	switch h.Type {
	case FrameData:
		if len(payload)%RecordLen != 0 {
			return Header{}, nil, ErrBadPayload
		}
	case FrameHeartbeat:
		if len(payload) != HeartbeatLen {
			return Header{}, nil, ErrBadPayload
		}
	case FrameRejoin:
		if len(payload) != RejoinLen {
			return Header{}, nil, ErrBadPayload
		}
	case FrameNack:
		if len(payload) == 0 || len(payload)%NackRangeLen != 0 {
			return Header{}, nil, ErrBadPayload
		}
	case FrameSync:
		if len(payload) != SyncLen {
			return Header{}, nil, ErrBadPayload
		}
	default:
		return Header{}, nil, ErrBadType
	}
	return h, payload, nil
}

// AppendRecord appends the 48-byte encoding of rep to dst —
// allocation-free when dst has capacity (the bench gate holds the
// per-sample encode row to 0 allocs/op).
func AppendRecord(dst []byte, rep *core.FlowReport) []byte {
	var b [RecordLen]byte
	binary.BigEndian.PutUint64(b[0:8], uint64(rep.Time))
	copy(b[8:12], rep.Key.SrcIP[:])
	copy(b[12:16], rep.Key.DstIP[:])
	binary.BigEndian.PutUint16(b[16:18], rep.Key.SrcPort)
	binary.BigEndian.PutUint16(b[18:20], rep.Key.DstPort)
	b[20] = uint8(rep.Key.Proto)
	var flags uint8
	if rep.RateOK {
		flags |= recFlagRateOK
	}
	if rep.RateUpdated {
		flags |= recFlagRateUpdated
	}
	b[21] = flags
	copy(b[22:28], rep.DstMAC[:])
	binary.BigEndian.PutUint64(b[28:36], rep.Epoch)
	binary.BigEndian.PutUint64(b[36:44], uint64(rep.Rate))
	binary.BigEndian.PutUint32(b[44:48], uint32(int32(rep.OutPort)))
	return append(dst, b[:]...)
}

// DecodeRecord decodes the first RecordLen bytes of b into rep,
// overwriting every field. The caller guarantees len(b) ≥ RecordLen
// (ParseFrame's Data length contract).
func DecodeRecord(b []byte, rep *core.FlowReport) {
	_ = b[RecordLen-1]
	rep.Time = units.Time(binary.BigEndian.Uint64(b[0:8]))
	copy(rep.Key.SrcIP[:], b[8:12])
	copy(rep.Key.DstIP[:], b[12:16])
	rep.Key.SrcPort = binary.BigEndian.Uint16(b[16:18])
	rep.Key.DstPort = binary.BigEndian.Uint16(b[18:20])
	rep.Key.Proto = packet.IPProtocol(b[20])
	flags := b[21]
	rep.RateOK = flags&recFlagRateOK != 0
	rep.RateUpdated = flags&recFlagRateUpdated != 0
	copy(rep.DstMAC[:], b[22:28])
	rep.Epoch = binary.BigEndian.Uint64(b[28:36])
	rep.Rate = units.Rate(binary.BigEndian.Uint64(b[36:44]))
	rep.OutPort = int(int32(binary.BigEndian.Uint32(b[44:48])))
}

// AppendNackRange appends one [from, to) retransmit range to a Nack
// payload under construction.
func AppendNackRange(dst []byte, from, to uint64) []byte {
	var b [NackRangeLen]byte
	binary.BigEndian.PutUint64(b[0:8], from)
	binary.BigEndian.PutUint64(b[8:16], to)
	return append(dst, b[:]...)
}

// DecodeNackRange decodes range i of a Nack payload.
func DecodeNackRange(payload []byte, i int) (from, to uint64) {
	b := payload[i*NackRangeLen:]
	return binary.BigEndian.Uint64(b[0:8]), binary.BigEndian.Uint64(b[8:16])
}

// AppendSync appends a Sync payload: t1 is the echoed Heartbeat
// timestamp (sender clock), t2 its receiver arrival time, t3 the
// reply's send time (receiver clock).
func AppendSync(dst []byte, t1, t2, t3 units.Time) []byte {
	var b [SyncLen]byte
	binary.BigEndian.PutUint64(b[0:8], uint64(t1))
	binary.BigEndian.PutUint64(b[8:16], uint64(t2))
	binary.BigEndian.PutUint64(b[16:24], uint64(t3))
	return append(dst, b[:]...)
}

// DecodeSync decodes a Sync payload.
func DecodeSync(payload []byte) (t1, t2, t3 units.Time) {
	return units.Time(binary.BigEndian.Uint64(payload[0:8])),
		units.Time(binary.BigEndian.Uint64(payload[8:16])),
		units.Time(binary.BigEndian.Uint64(payload[16:24]))
}

// Heartbeat flag bits.
const hbFlagSynced = 1 << 0

// AppendHeartbeat appends a Heartbeat payload. synced reports whether
// the frame's timestamp is on the sender's final (sync-corrected or
// knowingly uncorrected) clock: the receiver only advances a vantage's
// delivery watermark on synced stamps, because a pre-sync stamp is on
// a clock about to be corrected out from under it. trail is the oldest
// sequence still held in the sender's retransmit ring — the trailing
// edge of the transmit window. Anything below it is gone for good, so
// the receiver abandons those gaps instead of NACKing into the void
// (the escape hatch for partitions that outlast the ring).
func AppendHeartbeat(dst []byte, synced bool, trail uint64) []byte {
	var f uint8
	if synced {
		f = hbFlagSynced
	}
	var b [HeartbeatLen]byte
	b[0] = f
	binary.BigEndian.PutUint64(b[1:], trail)
	return append(dst, b[:]...)
}

// DecodeHeartbeat decodes a Heartbeat payload.
func DecodeHeartbeat(payload []byte) (synced bool, trail uint64) {
	return payload[0]&hbFlagSynced != 0, binary.BigEndian.Uint64(payload[1:HeartbeatLen])
}

// AppendRejoin appends a Rejoin payload (restart generation).
func AppendRejoin(dst []byte, gen uint32) []byte {
	var b [RejoinLen]byte
	binary.BigEndian.PutUint32(b[:], gen)
	return append(dst, b[:]...)
}

// DecodeRejoin decodes a Rejoin payload.
func DecodeRejoin(payload []byte) uint32 {
	return binary.BigEndian.Uint32(payload[:RejoinLen])
}
