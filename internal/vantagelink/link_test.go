package vantagelink

import (
	"sort"
	"testing"
	"time"

	"planck/internal/core"
	"planck/internal/faults"
	"planck/internal/units"
)

// linkNet is a tiny virtual-time harness: channels schedule delivery
// events at now+delay, and run() advances time in fixed steps, firing
// due events at their exact timestamps and ticking both endpoints.
type linkNet struct {
	now    units.Time
	events []linkEvent
}

type linkEvent struct {
	at units.Time
	fn func(at units.Time)
}

// channel returns a Channel delivering into handle after delay.
func (n *linkNet) channel(handle func(units.Time, []byte), delay units.Duration) Channel {
	return ChannelFunc(func(now units.Time, dgram []byte) error {
		cp := append([]byte(nil), dgram...)
		n.events = append(n.events, linkEvent{at: now.Add(delay), fn: func(at units.Time) { handle(at, cp) }})
		return nil
	})
}

// run advances virtual time to until, delivering due events in time
// order (stable for ties) and calling tick after each step.
func (n *linkNet) run(until units.Time, step units.Duration, tick func(now units.Time)) {
	for n.now < until {
		n.now = n.now.Add(step)
		for {
			best := -1
			for i, ev := range n.events {
				if ev.at > n.now {
					continue
				}
				if best == -1 || ev.at < n.events[best].at {
					best = i
				}
			}
			if best == -1 {
				break
			}
			ev := n.events[best]
			n.events = append(n.events[:best], n.events[best+1:]...)
			ev.fn(ev.at)
		}
		if tick != nil {
			tick(n.now)
		}
	}
}

// recordingSink collects everything a vantage delivers.
type recordingSink struct {
	recs    []core.FlowReport
	live    units.Time
	rejoins []uint32
}

func (s *recordingSink) Report(rep *core.FlowReport) { s.recs = append(s.recs, *rep) }
func (s *recordingSink) Live(now units.Time) {
	if now > s.live {
		s.live = now
	}
}
func (s *recordingSink) Rejoin(gen uint32) { s.rejoins = append(s.rejoins, gen) }

// linkPair wires one sender to a receiver through fault gates on the
// data path, with a clean reverse channel for NACK/Sync.
type linkPair struct {
	net  *linkNet
	s    *Sender
	r    *Receiver
	sink *recordingSink
	gate *FaultGate
}

func newLinkPair(t *testing.T, scfg SenderConfig, rcfg ReceiverConfig, sched *faults.Schedule, seed int64) *linkPair {
	t.Helper()
	n := &linkNet{}
	r := NewReceiver(rcfg)
	p := &linkPair{net: n, r: r, sink: &recordingSink{}}
	const delay = 20 * units.Microsecond
	fwd := n.channel(r.HandleDatagram, delay)
	p.gate = NewFaultGate(fwd, sched, seed)
	scfg.Vantage = 1
	p.s = NewSender(p.gate, scfg)
	rev := n.channel(p.s.HandleControl, delay)
	r.Join(1, p.sink, rev)
	return p
}

// sendReports feeds count reports through the sender, one per spacing
// step, with virtual time advancing alongside.
func (p *linkPair) sendReports(count int, spacing units.Duration) []units.Time {
	times := make([]units.Time, count)
	sent := 0
	for sent < count {
		p.net.run(p.net.now.Add(spacing), spacing, func(now units.Time) {
			rep := testReport(sent)
			rep.Time = now
			times[sent] = now
			p.s.Report(&rep)
			sent++
			p.s.BatchEnd(now)
			p.s.Tick(now)
			p.r.Tick(now)
		})
	}
	return times
}

// settle runs the net with only ticks until `until`.
func (p *linkPair) settle(d units.Duration) {
	const step = 50 * units.Microsecond
	p.net.run(p.net.now.Add(d), step, func(now units.Time) {
		p.s.Tick(now)
		p.r.Tick(now)
	})
}

func assertRecordsOrdered(t *testing.T, recs []core.FlowReport) {
	t.Helper()
	for i := 1; i < len(recs); i++ {
		if recs[i].Time < recs[i-1].Time {
			t.Fatalf("record %d out of order: %v after %v", i, recs[i].Time, recs[i-1].Time)
		}
	}
}

// TestLinkLossRecovery drives 300 reports through a 25% lossy channel
// and asserts the NACK/retransmit loop delivers every record exactly
// once, in order, with no Drain needed.
func TestLinkLossRecovery(t *testing.T) {
	sched := faults.NewSchedule(faults.Rule{
		Kind: faults.KindLoss, From: 0, To: faults.Forever, Prob: 0.25,
	})
	p := newLinkPair(t, SenderConfig{MaxRecords: 4, Heartbeat: 500 * units.Microsecond},
		ReceiverConfig{}, sched, 42)
	const n = 300
	p.sendReports(n, 50*units.Microsecond)
	p.settle(30 * units.Millisecond)

	if !p.r.Complete() {
		t.Fatalf("receiver not complete: %d gaps, %d buffered-pending records",
			p.r.OutstandingGaps(), p.r.PendingRecords())
	}
	// The final records can still sit behind the watermark; Drain
	// releases them for the count check (order already proven).
	p.r.Drain()
	if len(p.sink.recs) != n {
		t.Fatalf("delivered %d records, want %d", len(p.sink.recs), n)
	}
	assertRecordsOrdered(t, p.sink.recs)
	seen := map[uint16]bool{}
	for _, r := range p.sink.recs {
		if seen[r.Key.SrcPort] {
			t.Fatalf("record for src port %d delivered twice", r.Key.SrcPort)
		}
		seen[r.Key.SrcPort] = true
	}
	if p.s.Resends() == 0 {
		t.Fatal("no resends under 25% loss; the test exercised nothing")
	}
	if p.r.GapsDetected() == 0 {
		t.Fatal("no gaps detected under 25% loss; the test exercised nothing")
	}
	if p.r.Abandoned() != 0 {
		t.Fatalf("%d gaps abandoned; NACK recovery should have caught everything", p.r.Abandoned())
	}
}

// TestLinkDupReorderCorrupt layers duplication, reordering, and
// corruption on the channel: corruption degrades to loss via the CRC,
// duplicates dedup by sequence number, reordering resequences — the
// sink still sees every record exactly once in order.
func TestLinkDupReorderCorrupt(t *testing.T) {
	sched := faults.NewSchedule(
		faults.Rule{Kind: faults.KindDup, From: 0, To: faults.Forever, Prob: 0.2},
		faults.Rule{Kind: faults.KindReorder, From: 0, To: faults.Forever, Prob: 0.2},
		faults.Rule{Kind: faults.KindCorrupt, From: 0, To: faults.Forever, Prob: 0.1},
	)
	p := newLinkPair(t, SenderConfig{MaxRecords: 3, Heartbeat: 500 * units.Microsecond},
		ReceiverConfig{}, sched, 7)
	const n = 200
	p.sendReports(n, 50*units.Microsecond)
	p.settle(30 * units.Millisecond)
	if !p.r.Complete() {
		t.Fatalf("receiver not complete: %d gaps", p.r.OutstandingGaps())
	}
	p.r.Drain()
	if len(p.sink.recs) != n {
		t.Fatalf("delivered %d records, want %d", len(p.sink.recs), n)
	}
	assertRecordsOrdered(t, p.sink.recs)
	if p.r.DupFrames() == 0 {
		t.Fatal("no duplicate frames seen; dup rule exercised nothing")
	}
	if p.r.BadFrames() == 0 {
		t.Fatal("no corrupt frames dropped; corrupt rule exercised nothing")
	}
}

// TestLinkClockSyncCancelsSkew gives the sender a +1.5 ms constant
// clock error. Under symmetric constant delay the one-shot NTP-style
// exchange computes the offset exactly, and the sync gate corrects
// even the records produced before the first sync — every delivered
// stamp equals the true report time.
func TestLinkClockSyncCancelsSkew(t *testing.T) {
	const skew = 1500 * units.Microsecond
	p := newLinkPair(t, SenderConfig{
		MaxRecords: 4, Heartbeat: 500 * units.Microsecond,
		ClockSkew: func(units.Time) units.Duration { return skew },
	}, ReceiverConfig{}, nil, 1)
	const n = 100
	times := p.sendReports(n, 50*units.Microsecond)
	p.settle(10 * units.Millisecond)
	p.r.Drain()

	off, ok := p.s.Offset()
	if !ok {
		t.Fatal("sync never completed")
	}
	if off != -skew {
		t.Fatalf("offset %v, want exactly %v (symmetric constant delay)", off, -skew)
	}
	if len(p.sink.recs) != n {
		t.Fatalf("delivered %d records, want %d", len(p.sink.recs), n)
	}
	for i, rec := range p.sink.recs {
		if rec.Time != times[i] {
			t.Fatalf("record %d stamped %v, want true time %v (skew must cancel)", i, rec.Time, times[i])
		}
	}
	if p.r.LateRecords() != 0 {
		t.Fatalf("%d late records on a clean skew-corrected link", p.r.LateRecords())
	}
}

// TestLinkSyncTimeoutSendsUncorrected kills the reverse channel: the
// sender can never sync, so after SyncTimeout it gives up the gate and
// ships records on its raw (skewed) clock rather than holding forever.
func TestLinkSyncTimeoutSendsUncorrected(t *testing.T) {
	n := &linkNet{}
	r := NewReceiver(ReceiverConfig{})
	sink := &recordingSink{}
	fwd := n.channel(r.HandleDatagram, 20*units.Microsecond)
	s := NewSender(fwd, SenderConfig{
		Vantage: 1, MaxRecords: 4,
		Heartbeat: 500 * units.Microsecond, SyncTimeout: 2 * units.Millisecond,
		ClockSkew: func(units.Time) units.Duration { return 300 * units.Microsecond },
	})
	// Reverse channel: a black hole.
	r.Join(1, sink, ChannelFunc(func(units.Time, []byte) error { return nil }))

	const count = 20
	sent := 0
	n.run(units.Time(10*units.Millisecond), 50*units.Microsecond, func(now units.Time) {
		if sent < count {
			rep := testReport(sent)
			rep.Time = now
			s.Report(&rep)
			sent++
			s.BatchEnd(now)
		}
		s.Tick(now)
		r.Tick(now)
	})
	r.Drain()
	if _, ok := s.Offset(); ok {
		t.Fatal("offset established with a dead reverse channel")
	}
	if len(sink.recs) != count {
		t.Fatalf("delivered %d records, want %d (sync timeout must release the gate)", len(sink.recs), count)
	}
	// Stamps carry the raw skew — uncorrected but monotone and complete.
	assertRecordsOrdered(t, sink.recs)
}

// TestLinkShedOldestUnderOverload bursts far more frames than the send
// queue holds between pumps: the queue sheds oldest-first without ever
// blocking ingest, and the shed frames remain NACK-recoverable from
// the retransmit ring — complete but delayed.
func TestLinkShedOldestUnderOverload(t *testing.T) {
	p := newLinkPair(t, SenderConfig{
		MaxRecords: 2, QueueFrames: 4, RingFrames: 256,
		Heartbeat: 500 * units.Microsecond, NoSyncGate: true,
	}, ReceiverConfig{}, nil, 3)
	// One giant batch: 100 records = 50 frames committed before the
	// BatchEnd pump runs, against a 4-frame queue.
	const n = 100
	now := units.Time(units.Millisecond)
	p.net.now = now
	for i := 0; i < n; i++ {
		rep := testReport(i)
		rep.Time = now
		p.s.Report(&rep)
	}
	p.s.BatchEnd(now)
	if p.s.Sheds() == 0 {
		t.Fatal("no frames shed; the overload path was not exercised")
	}
	p.settle(40 * units.Millisecond)
	if !p.r.Complete() {
		t.Fatalf("receiver not complete: %d gaps outstanding", p.r.OutstandingGaps())
	}
	p.r.Drain()
	if len(p.sink.recs) != n {
		t.Fatalf("delivered %d records, want %d (shed frames must be NACK-recoverable)", len(p.sink.recs), n)
	}
	if p.r.Abandoned() != 0 {
		t.Fatalf("%d gaps abandoned; ring should have held all shed frames", p.r.Abandoned())
	}
}

// TestLinkAbandonAfterNackBudget black-holes one specific sequence
// number forever: the receiver NACKs it NackAttempts times, then
// abandons the head-of-line gap and the stream flows on without it.
func TestLinkAbandonAfterNackBudget(t *testing.T) {
	n := &linkNet{}
	r := NewReceiver(ReceiverConfig{NackAttempts: 3, NackBackoff: 100 * units.Microsecond})
	sink := &recordingSink{}
	const doomedSeq = 5
	fwd := n.channel(r.HandleDatagram, 20*units.Microsecond)
	drop := ChannelFunc(func(now units.Time, dgram []byte) error {
		if h, _, err := ParseFrame(dgram); err == nil && h.Seq == doomedSeq && h.Type == FrameData {
			return nil // black hole, retransmits included
		}
		return fwd.Send(now, dgram)
	})
	s := NewSender(drop, SenderConfig{
		Vantage: 1, MaxRecords: 1, Heartbeat: 400 * units.Microsecond, NoSyncGate: true,
	})
	var rev Channel = n.channel(s.HandleControl, 20*units.Microsecond)
	r.Join(1, sink, rev)

	const count = 30
	sent := 0
	n.run(units.Time(30*units.Millisecond), 50*units.Microsecond, func(now units.Time) {
		if sent < count {
			rep := testReport(sent)
			rep.Time = now
			s.Report(&rep)
			sent++
			s.BatchEnd(now)
		}
		s.Tick(now)
		r.Tick(now)
	})
	if r.Abandoned() == 0 {
		t.Fatal("doomed frame never abandoned")
	}
	if !r.Complete() {
		t.Fatalf("receiver stuck: %d gaps after abandonment", r.OutstandingGaps())
	}
	r.Drain()
	// Exactly the doomed frame's records are missing. With MaxRecords=1
	// and a heartbeat interleaved, find which report died by set diff.
	if len(sink.recs) >= count {
		t.Fatalf("delivered %d records; expected the doomed frame's record lost", len(sink.recs))
	}
	if count-len(sink.recs) != 1 {
		t.Fatalf("lost %d records, want exactly 1 (one doomed Data frame of one record)", count-len(sink.recs))
	}
	assertRecordsOrdered(t, sink.recs)
}

// TestLinkPartitionExcludesAndHeals partitions vantage 2's channel for
// 5 ms in a two-vantage fleet: the silent vantage is excluded so the
// healthy one keeps advancing the watermark, and after the heal every
// partition-era record recovers via NACK and delivers exactly once.
// TestLinkQuiesceDrainsTail pins the clean-departure contract: when
// every sender goes silent past HoldTimeout with contiguous streams,
// the receiver drains the merge heap on its own ticks — the stream
// tail must reach the sink without anyone calling Drain. This is the
// planck-collector -report shape: the collector finishes its capture,
// closes the reporter, and exits; the plane-side consumer still has to
// see the final sub-window of records.
func TestLinkQuiesceDrainsTail(t *testing.T) {
	p := newLinkPair(t, SenderConfig{MaxRecords: 4, Heartbeat: 500 * units.Microsecond},
		ReceiverConfig{HoldTimeout: units.Millisecond}, nil, 1)
	const n = 50
	p.sendReports(n, 50*units.Microsecond)
	// Flush the sender's partial frame, then silence: receiver-only
	// ticks, as if the sending process exited.
	p.s.Flush(p.net.now)
	p.net.run(p.net.now.Add(10*units.Millisecond), 50*units.Microsecond, func(now units.Time) {
		p.r.Tick(now)
	})
	if !p.r.Excluded(1) {
		t.Fatal("silent vantage not excluded after HoldTimeout")
	}
	if got := len(p.sink.recs); got != n {
		t.Fatalf("delivered %d records after quiesce, want %d without Drain (heap=%d)",
			got, n, p.r.PendingRecords())
	}
	if !p.r.Complete() {
		t.Fatalf("receiver not complete after quiesce: %d gaps, %d pending",
			p.r.OutstandingGaps(), p.r.PendingRecords())
	}
	assertRecordsOrdered(t, p.sink.recs)
}

func TestLinkPartitionExcludesAndHeals(t *testing.T) {
	n := &linkNet{}
	r := NewReceiver(ReceiverConfig{HoldTimeout: units.Millisecond})
	sinks := [2]*recordingSink{{}, {}}
	senders := [2]*Sender{}
	const delay = 20 * units.Microsecond
	partStart, partEnd := units.Time(3*units.Millisecond), units.Time(8*units.Millisecond)
	for v := 0; v < 2; v++ {
		v := v
		var sched *faults.Schedule
		if v == 1 {
			sched = faults.NewSchedule(faults.Rule{
				Kind: faults.KindPartition, From: partStart, To: partEnd, Prob: 1,
			})
		}
		gate := NewFaultGate(n.channel(r.HandleDatagram, delay), sched, int64(v+1))
		senders[v] = NewSender(gate, SenderConfig{
			Vantage: uint16(v + 1), MaxRecords: 2, Heartbeat: 500 * units.Microsecond,
		})
		r.Join(uint16(v+1), sinks[v], n.channel(senders[v].HandleControl, delay))
	}

	sent := [2]int{}
	var excludedDuring, includedAfter bool
	var wmDuring units.Time
	n.run(units.Time(25*units.Millisecond), 50*units.Microsecond, func(now units.Time) {
		for v := 0; v < 2; v++ {
			rep := testReport(sent[v])
			rep.Time = now
			senders[v].Report(&rep)
			sent[v]++
			senders[v].BatchEnd(now)
			senders[v].Tick(now)
		}
		r.Tick(now)
		if now > partStart.Add(2*units.Millisecond) && now < partEnd {
			if r.Excluded(2) {
				excludedDuring = true
				wmDuring = r.Watermark()
			}
		}
		if now > partEnd.Add(5*units.Millisecond) && !r.Excluded(2) {
			includedAfter = true
		}
	})
	if !excludedDuring {
		t.Fatal("partitioned vantage never excluded from the watermark")
	}
	if !includedAfter {
		t.Fatal("healed vantage never re-included")
	}
	if wmDuring <= partStart {
		t.Fatalf("watermark %v stalled at partition start %v; the healthy vantage must keep it moving", wmDuring, partStart)
	}
	p := 40 * units.Millisecond
	n.run(n.now.Add(p), 50*units.Microsecond, func(now units.Time) {
		for v := 0; v < 2; v++ {
			senders[v].Tick(now)
		}
		r.Tick(now)
	})
	if !r.Complete() {
		t.Fatalf("receiver not complete after heal: %d gaps", r.OutstandingGaps())
	}
	r.Drain()
	for v := 0; v < 2; v++ {
		if len(sinks[v].recs) != sent[v] {
			t.Fatalf("vantage %d delivered %d of %d records after heal", v+1, len(sinks[v].recs), sent[v])
		}
		times := make([]int64, len(sinks[v].recs))
		for i, rec := range sinks[v].recs {
			times[i] = int64(rec.Time)
		}
		if !sort.SliceIsSorted(times, func(i, j int) bool { return times[i] < times[j] }) {
			t.Fatalf("vantage %d records out of order after heal", v+1)
		}
	}
}

// TestLinkRejoinDeliversInSequence interleaves a Rejoin announcement
// into a lossy stream and asserts it arrives exactly once, in stream
// position, with the right generation.
func TestLinkRejoinDeliversInSequence(t *testing.T) {
	sched := faults.NewSchedule(faults.Rule{
		Kind: faults.KindLoss, From: 0, To: faults.Forever, Prob: 0.2,
	})
	p := newLinkPair(t, SenderConfig{MaxRecords: 2, Heartbeat: 500 * units.Microsecond},
		ReceiverConfig{}, sched, 11)
	const n = 40
	sent := 0
	p.net.run(units.Time(10*units.Millisecond), 50*units.Microsecond, func(now units.Time) {
		if sent < n {
			rep := testReport(sent)
			rep.Time = now
			p.s.Report(&rep)
			sent++
			p.s.BatchEnd(now)
			if sent == n/2 {
				p.s.Rejoin(now, 77)
			}
		}
		p.s.Tick(now)
		p.r.Tick(now)
	})
	p.settle(30 * units.Millisecond)
	if !p.r.Complete() {
		t.Fatalf("receiver not complete: %d gaps", p.r.OutstandingGaps())
	}
	p.r.Drain()
	if len(p.sink.rejoins) != 1 || p.sink.rejoins[0] != 77 {
		t.Fatalf("rejoins %v, want exactly [77]", p.sink.rejoins)
	}
	if len(p.sink.recs) != n {
		t.Fatalf("delivered %d records, want %d", len(p.sink.recs), n)
	}
}

// TestLinkUDPLoopback runs the real-socket wrappers end to end on the
// loopback interface: two UDP senders stream into one UDP receiver,
// clocks sync over the wire, and every record delivers exactly once.
func TestLinkUDPLoopback(t *testing.T) {
	rx, err := ListenUDPReceiver("127.0.0.1:0", ReceiverConfig{
		HoldTimeout: 200 * units.Millisecond, // wall clocks jitter; don't exclude
	}, nil, units.Millisecond)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	sinks := [2]*recordingSink{{}, {}}
	for v := 0; v < 2; v++ {
		rx.Join(uint16(v+1), sinks[v])
	}
	const perVantage = 200
	txs := [2]*UDPSender{}
	for v := 0; v < 2; v++ {
		u, err := DialUDPSender(rx.Addr(), SenderConfig{
			Vantage: uint16(v + 1), MaxRecords: 8, Heartbeat: 2 * units.Millisecond,
		}, nil, units.Millisecond, nil)
		if err != nil {
			t.Fatalf("dial %d: %v", v, err)
		}
		txs[v] = u
	}
	clock := NewWallClock()
	for i := 0; i < perVantage; i++ {
		for v := 0; v < 2; v++ {
			rep := testReport(i)
			rep.Time = clock.Now()
			txs[v].Report(&rep)
		}
		if i%16 == 0 {
			for v := 0; v < 2; v++ {
				txs[v].Flush()
			}
		}
	}
	for v := 0; v < 2; v++ {
		txs[v].Flush()
	}
	// Wait until every record has been decoded in sequence (loopback
	// rarely loses, but the tick-driven NACK loop covers it if it does).
	for deadline := 1000; deadline > 0; deadline-- {
		done := false
		rx.Locked(func() {
			done = rx.Receiver().RecordsReceived() >= 2*perVantage && rx.Receiver().Complete()
		})
		if done {
			break
		}
		sleepMs(2)
	}
	for v := 0; v < 2; v++ {
		if err := txs[v].Close(); err != nil {
			t.Fatalf("close sender %d: %v", v, err)
		}
	}
	if err := rx.Close(); err != nil {
		t.Fatalf("close receiver: %v", err)
	}
	for v := 0; v < 2; v++ {
		if len(sinks[v].recs) != perVantage {
			t.Fatalf("vantage %d delivered %d records, want %d", v+1, len(sinks[v].recs), perVantage)
		}
		seen := map[uint16]int{}
		for _, rec := range sinks[v].recs {
			seen[rec.Key.SrcPort]++
		}
		for port, c := range seen {
			if c > 1 {
				t.Fatalf("vantage %d delivered record for src port %d %d times", v+1, port, c)
			}
		}
	}
}

func sleepMs(ms int) { time.Sleep(time.Duration(ms) * time.Millisecond) }
