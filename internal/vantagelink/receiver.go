package vantagelink

import (
	"sort"

	"planck/internal/core"
	"planck/internal/obs"
	"planck/internal/units"
)

// ReportSink is where the receiver delivers one vantage's stream: the
// adapter onto an agg.Plane vantage. Report receives resequenced,
// cross-vantage time-ordered records; Live is called for every frame
// that arrives from the vantage (liveness on the receiver's clock);
// Rejoin relays a supervised-restart announcement in stream position.
type ReportSink interface {
	Report(rep *core.FlowReport)
	Live(now units.Time)
	Rejoin(gen uint32)
}

// ReceiverConfig tunes the plane-side half of the link. Zero values
// take the defaults below.
type ReceiverConfig struct {
	// NackAfter is how long a detected gap may age before the first
	// NACK goes out. Default 100 µs — one channel round trip of margin
	// for plain reordering to fill the gap for free.
	NackAfter units.Duration
	// NackBackoff is the spacing between repeated NACKs of the same
	// gap. The head-of-line gap doubles it per attempt (capped at
	// 64×); deeper gaps re-NACK at this flat pacing, since a
	// backlogged sender services them oldest-first a queueful at a
	// time. Default 300 µs.
	NackBackoff units.Duration
	// NackAttempts bounds how many NACKs the head-of-line gap gets
	// before the receiver abandons it (frame declared lost, sequence
	// skipped). Default 10.
	NackAttempts int
	// HoldTimeout is how long a silent vantage may hold back the merge
	// watermark before it is excluded (partitioned or dead — the rest
	// of the fleet must keep flowing). An excluded vantage rejoins the
	// watermark on its next frame. Default 2 ms.
	HoldTimeout units.Duration
	// MaxBuffered bounds the per-vantage out-of-order frame buffer;
	// overflowing frames are dropped and recovered later via NACK.
	// Default 1024.
	MaxBuffered int

	// Metrics, when non-nil, receives the receiver's planck_link_rx_*
	// instruments.
	Metrics *obs.Registry
}

func (c ReceiverConfig) withDefaults() ReceiverConfig {
	if c.NackAfter == 0 {
		c.NackAfter = 100 * units.Microsecond
	}
	if c.NackBackoff == 0 {
		c.NackBackoff = 300 * units.Microsecond
	}
	if c.NackAttempts == 0 {
		c.NackAttempts = 10
	}
	if c.HoldTimeout == 0 {
		c.HoldTimeout = 2 * units.Millisecond
	}
	if c.MaxBuffered == 0 {
		c.MaxBuffered = 1024
	}
	return c
}

// gapState tracks one missing sequence number.
type gapState struct {
	missedAt units.Time
	nextNack units.Time
	attempts int
}

// rxVantage is the receiver's per-vantage resequencing state.
type rxVantage struct {
	id   uint16
	sink ReportSink
	ctrl Channel // reverse channel for NACK and Sync

	nextSeq  uint64            // next in-sequence frame expected
	buffered map[uint64][]byte // out-of-order frames held for resequencing
	gaps     map[uint64]*gapState

	// through is the newest in-sequence synced frame timestamp: every
	// record this vantage will ever deliver in sequence from here on
	// is stamped ≥ through, which is what makes min(through) a safe
	// release watermark.
	through    units.Time
	hasThrough bool

	lastRecv units.Time // receiver-clock arrival of the newest frame
	everRecv bool
	excluded bool // silent past HoldTimeout: not holding the watermark
}

// mergeRec is one record waiting in the cross-vantage merge heap,
// ordered by (time, vantage, seq, idx) — a global report-time order
// with a deterministic tie-break.
type mergeRec struct {
	time    units.Time
	vantage uint16
	seq     uint64
	idx     int32
	rep     core.FlowReport
}

func mergeLess(a, b *mergeRec) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	if a.vantage != b.vantage {
		return a.vantage < b.vantage
	}
	if a.seq != b.seq {
		return a.seq < b.seq
	}
	return a.idx < b.idx
}

type receiverMetrics struct {
	frames     obs.Counter // valid frames accepted
	records    obs.Counter // records decoded into the merge heap
	released   obs.Counter // records released to sinks in merge order
	badFrames  obs.Counter // short/corrupt/malformed datagrams dropped
	dupFrames  obs.Counter // duplicate (or post-abandon) frames dropped
	unknownVnt obs.Counter // frames for vantages never joined
	gaps       obs.Counter // sequence gaps detected
	nacks      obs.Counter // NACK frames sent
	abandoned  obs.Counter // gaps given up after NackAttempts
	late       obs.Counter // records arriving behind the watermark
	overflow   obs.Counter // out-of-order frames dropped by MaxBuffered
	exclusions obs.Counter // vantages excluded from the watermark
	syncs      obs.Counter // sync replies sent
}

// Receiver is the plane-side half of the link: it resequences each
// vantage's frame stream (gap detection feeding a NACK/retransmit
// loop with bounded exponential backoff), merges all vantages'
// records into global report-time order behind a watermark, answers
// heartbeats with clock-sync replies, and drives vantage liveness
// from frame arrivals. Drive it from one goroutine (the engine in
// simulation, a lock-holding wrapper over UDP).
type Receiver struct {
	cfg ReceiverConfig

	vantages map[uint16]*rxVantage
	order    []*rxVantage // deterministic iteration, join order

	heap      []mergeRec
	watermark units.Time
	hasWM     bool

	// OnAdvance, when non-nil, observes every watermark advance after
	// the records behind it have been released — wire it to
	// agg.Plane.AdvanceMerge so the plane's event merger follows the
	// delivery clock, never the wall clock.
	OnAdvance func(wm units.Time)

	scratch   []byte   // NACK/Sync reply build buffer
	dueSeqs   []uint64 // per-Tick sorted gap scratch
	nackRange int

	met receiverMetrics
}

// NewReceiver builds an empty receiver; Join adds vantages.
func NewReceiver(cfg ReceiverConfig) *Receiver {
	cfg = cfg.withDefaults()
	r := &Receiver{cfg: cfg, vantages: make(map[uint16]*rxVantage)}
	if m := cfg.Metrics; m != nil {
		m.MustRegister("planck_link_rx_frames_total", &r.met.frames)
		m.MustRegister("planck_link_rx_records_total", &r.met.records)
		m.MustRegister("planck_link_rx_released_total", &r.met.released)
		m.MustRegister("planck_link_rx_bad_frames_total", &r.met.badFrames)
		m.MustRegister("planck_link_rx_dup_frames_total", &r.met.dupFrames)
		m.MustRegister("planck_link_rx_unknown_vantage_total", &r.met.unknownVnt)
		m.MustRegister("planck_link_rx_gaps_total", &r.met.gaps)
		m.MustRegister("planck_link_rx_nacks_total", &r.met.nacks)
		m.MustRegister("planck_link_rx_gaps_abandoned_total", &r.met.abandoned)
		m.MustRegister("planck_link_rx_late_records_total", &r.met.late)
		m.MustRegister("planck_link_rx_overflow_drops_total", &r.met.overflow)
		m.MustRegister("planck_link_rx_exclusions_total", &r.met.exclusions)
		m.MustRegister("planck_link_rx_syncs_total", &r.met.syncs)
		m.MustRegister("planck_link_rx_merge_pending", obs.GaugeFunc(func() float64 { return float64(len(r.heap)) }))
	}
	return r
}

// Join registers a vantage: frames stamped with this id deliver to
// sink, and NACK/Sync replies go out on ctrl. Sequence numbers start
// at 1 (a fresh sender); join before the first frame arrives.
func (r *Receiver) Join(vantage uint16, sink ReportSink, ctrl Channel) {
	v := &rxVantage{
		id: vantage, sink: sink, ctrl: ctrl,
		nextSeq:  1,
		buffered: make(map[uint64][]byte),
		gaps:     make(map[uint64]*gapState),
	}
	r.vantages[vantage] = v
	r.order = append(r.order, v)
}

// HandleDatagram processes one arriving datagram at receiver time now.
// Invalid frames are counted and dropped — corruption degrades to
// loss, which the NACK loop recovers.
func (r *Receiver) HandleDatagram(now units.Time, dgram []byte) {
	h, payload, err := ParseFrame(dgram)
	if err != nil {
		r.met.badFrames.IncRelaxed()
		return
	}
	if h.Type != FrameData && h.Type != FrameHeartbeat && h.Type != FrameRejoin {
		r.met.badFrames.IncRelaxed()
		return
	}
	v := r.vantages[h.Vantage]
	if v == nil {
		r.met.unknownVnt.IncRelaxed()
		return
	}
	r.met.frames.IncRelaxed()
	v.everRecv = true
	if now > v.lastRecv {
		v.lastRecv = now
	}
	wasExcluded := v.excluded
	v.excluded = false
	v.sink.Live(now)

	// Heartbeats answer with a sync reply immediately — even out of
	// order, so the sender's clock correction never waits on a gap.
	// The advertised ring trail applies at arrival too: when a gap is
	// large enough to block sequencing, the trail is the only way out.
	if h.Type == FrameHeartbeat {
		r.met.syncs.IncRelaxed()
		r.scratch = AppendHeader(r.scratch[:0], Header{
			Type: FrameSync, Vantage: h.Vantage, Time: now,
		})
		r.scratch = AppendSync(r.scratch, h.Time, now, now)
		FinishFrame(r.scratch)
		_ = v.ctrl.Send(now, r.scratch)
		if _, trail := DecodeHeartbeat(payload); trail > v.nextSeq {
			r.advanceTrail(v, trail)
		}
	}

	switch {
	case h.Seq < v.nextSeq:
		// Already delivered or abandoned: duplicate.
		r.met.dupFrames.IncRelaxed()
	case h.Seq == v.nextSeq:
		delete(v.gaps, h.Seq)
		r.deliverFrame(v, h, payload)
		v.nextSeq++
		r.drainBuffered(v)
	default:
		if _, dup := v.buffered[h.Seq]; dup {
			r.met.dupFrames.IncRelaxed()
			break
		}
		if _, isGap := v.gaps[h.Seq]; !isGap && len(v.buffered) >= r.cfg.MaxBuffered {
			// Drop far-ahead frames; the gap machinery re-fetches them
			// once there is room. A frame filling a registered gap is
			// exempt from the cap: it is a resend we NACKed for, and
			// dropping it would re-NACK forever while the buffer stays
			// pinned — the cap's memory bound still holds because gaps
			// are bounded by the sender's advertised ring window.
			r.met.overflow.IncRelaxed()
			break
		}
		cp := make([]byte, len(dgram))
		copy(cp, dgram)
		v.buffered[h.Seq] = cp
		for seq := v.nextSeq; seq < h.Seq; seq++ {
			if _, ok := v.buffered[seq]; ok {
				continue
			}
			if _, ok := v.gaps[seq]; ok {
				continue
			}
			v.gaps[seq] = &gapState{missedAt: now, nextNack: now.Add(r.cfg.NackAfter)}
			r.met.gaps.IncRelaxed()
		}
	}
	_ = wasExcluded
	r.advanceMerge()
}

// deliverFrame folds one in-sequence frame into the merge heap and
// the vantage's watermark state.
func (r *Receiver) deliverFrame(v *rxVantage, h Header, payload []byte) {
	switch h.Type {
	case FrameData:
		n := len(payload) / RecordLen
		for i := 0; i < n; i++ {
			rec := mergeRec{vantage: v.id, seq: h.Seq, idx: int32(i)}
			DecodeRecord(payload[i*RecordLen:], &rec.rep)
			rec.time = rec.rep.Time
			if r.hasWM && rec.time < r.watermark {
				r.met.late.IncRelaxed()
			}
			r.heapPush(rec)
			r.met.records.IncRelaxed()
		}
		if h.Time > v.through || !v.hasThrough {
			v.through = h.Time
			v.hasThrough = true
		}
	case FrameHeartbeat:
		if synced, _ := DecodeHeartbeat(payload); synced && (h.Time > v.through || !v.hasThrough) {
			v.through = h.Time
			v.hasThrough = true
		}
	case FrameRejoin:
		v.sink.Rejoin(DecodeRejoin(payload))
		if h.Time > v.through || !v.hasThrough {
			v.through = h.Time
			v.hasThrough = true
		}
	}
}

// drainBuffered replays buffered frames that are now in sequence.
func (r *Receiver) drainBuffered(v *rxVantage) {
	for {
		frame, ok := v.buffered[v.nextSeq]
		if !ok {
			return
		}
		delete(v.buffered, v.nextSeq)
		delete(v.gaps, v.nextSeq)
		h, payload, err := ParseFrame(frame)
		if err == nil {
			r.deliverFrame(v, h, payload)
		}
		v.nextSeq++
	}
}

// advanceMerge recomputes the release watermark — the minimum
// delivered-through time over vantages still counted (received at
// least one synced frame, not excluded for silence) — and releases
// every heap record strictly older than it. Strict: a record at
// exactly the watermark could still gain an equal-time peer from
// another vantage, so it waits for the next advance.
func (r *Receiver) advanceMerge() {
	wm := units.Time(1<<63 - 1)
	counted := 0
	for _, v := range r.order {
		if v.excluded {
			continue
		}
		if !v.hasThrough {
			return // a live vantage has not established a clock yet
		}
		counted++
		if v.through < wm {
			wm = v.through
		}
	}
	if counted == 0 {
		// The whole fleet is silent past HoldTimeout, so nothing holds
		// the watermark — and nothing advances it either, which would
		// park the final sub-window of records in the heap until Close.
		// If every stream is contiguous (no gaps to fill, no frames
		// waiting behind one), drain: a cleanly departed sender has no
		// older records left to send, and a crashed one announces a
		// fresh generation on rejoin.
		if len(r.heap) == 0 {
			return
		}
		for _, v := range r.order {
			if len(v.gaps) > 0 || len(v.buffered) > 0 {
				return
			}
		}
		wm = r.watermark
		for i := range r.heap {
			if t := r.heap[i].time + 1; t > wm {
				wm = t
			}
		}
	}
	if r.hasWM && wm <= r.watermark {
		return
	}
	r.watermark = wm
	r.hasWM = true
	r.releaseTo(wm)
	if r.OnAdvance != nil {
		r.OnAdvance(wm)
	}
}

// releaseTo pops and delivers records strictly older than wm.
func (r *Receiver) releaseTo(wm units.Time) {
	for len(r.heap) > 0 && r.heap[0].time < wm {
		rec := r.heapPop()
		r.met.released.IncRelaxed()
		r.vantages[rec.vantage].sink.Report(&rec.rep)
	}
}

// Tick drives the receiver's clocks at time now: silence exclusion,
// gap NACKs with exponential backoff, head-of-line abandonment, and a
// watermark advance reflecting any of those. Call it on a short
// period (the lab defaults to 250 µs).
func (r *Receiver) Tick(now units.Time) {
	for _, v := range r.order {
		if !v.excluded && (!v.everRecv || now.Sub(v.lastRecv) > r.cfg.HoldTimeout) {
			v.excluded = true
			r.met.exclusions.IncRelaxed()
		}
		r.nackDue(v, now)
		r.abandonHead(v)
	}
	r.advanceMerge()
}

// nackDue sends one NACK frame covering every gap of v whose clock
// has expired, coalescing consecutive sequence numbers into ranges.
func (r *Receiver) nackDue(v *rxVantage, now units.Time) {
	if len(v.gaps) == 0 {
		return
	}
	due := r.dueSeqs[:0]
	for seq, g := range v.gaps {
		if !now.Before(g.nextNack) {
			due = append(due, seq)
		}
	}
	r.dueSeqs = due
	if len(due) == 0 {
		return
	}
	sort.Slice(due, func(i, j int) bool { return due[i] < due[j] })
	r.scratch = AppendHeader(r.scratch[:0], Header{
		Type: FrameNack, Vantage: v.id, Time: now,
	})
	ranges := 0
	for i := 0; i < len(due); {
		j := i + 1
		for j < len(due) && due[j] == due[j-1]+1 {
			j++
		}
		r.scratch = AppendNackRange(r.scratch, due[i], due[j-1]+1)
		ranges++
		i = j
	}
	FinishFrame(r.scratch)
	r.met.nacks.IncRelaxed()
	_ = v.ctrl.Send(now, r.scratch)
	for _, seq := range due {
		g := v.gaps[seq]
		if seq == v.nextSeq {
			// Only the head-of-line gap — the one actually blocking
			// delivery, and the only one eligible for abandonment —
			// pays exponential backoff and attempt accounting.
			g.attempts++
			g.nextNack = now.Add(r.cfg.NackBackoff << uint(min(g.attempts-1, 6)))
		} else {
			// Deeper gaps re-NACK at flat pacing: a backlogged sender
			// services resends oldest-first a queueful at a time, and
			// punishing the queue wait with backoff would starve it.
			g.nextNack = now.Add(r.cfg.NackBackoff)
		}
	}
}

// abandonHead gives up on head-of-line gaps that have exhausted their
// NACK budget: the frame is declared lost, the sequence skips it, and
// anything buffered behind it delivers. Only the head can be skipped
// — deeper gaps keep their (still counting) NACK clocks until they
// reach the head.
func (r *Receiver) abandonHead(v *rxVantage) {
	for {
		g, ok := v.gaps[v.nextSeq]
		if !ok || g.attempts <= r.cfg.NackAttempts {
			return
		}
		delete(v.gaps, v.nextSeq)
		r.met.abandoned.IncRelaxed()
		v.nextSeq++
		r.drainBuffered(v)
	}
}

// advanceTrail applies a heartbeat's advertised transmit-window
// trailing edge: every sequence below trail has been evicted from the
// sender's retransmit ring, so NACKing it is futile. Anything already
// buffered below the trail delivers; the rest is abandoned on the
// spot. This is how a vantage recovers from a partition that outlasted
// its ring — without it, hundreds of dead gaps would each have to burn
// a full NACK budget at the head of the line.
func (r *Receiver) advanceTrail(v *rxVantage, trail uint64) {
	for v.nextSeq < trail {
		if frame, ok := v.buffered[v.nextSeq]; ok {
			delete(v.buffered, v.nextSeq)
			delete(v.gaps, v.nextSeq)
			if h, payload, err := ParseFrame(frame); err == nil {
				r.deliverFrame(v, h, payload)
			}
		} else if _, ok := v.gaps[v.nextSeq]; ok {
			delete(v.gaps, v.nextSeq)
			r.met.abandoned.IncRelaxed()
		}
		v.nextSeq++
	}
	r.drainBuffered(v)
}

// Drain force-completes delivery for shutdown and tests: every
// outstanding gap is abandoned, buffered frames deliver in sequence,
// and the merge heap empties in final order. After Drain the receiver
// has delivered everything it will ever deliver.
func (r *Receiver) Drain() {
	for _, v := range r.order {
		for len(v.buffered) > 0 {
			if _, ok := v.buffered[v.nextSeq]; !ok {
				if _, gap := v.gaps[v.nextSeq]; gap {
					delete(v.gaps, v.nextSeq)
					r.met.abandoned.IncRelaxed()
				}
				v.nextSeq++
				continue
			}
			r.drainBuffered(v)
		}
		for seq := range v.gaps {
			delete(v.gaps, seq)
			r.met.abandoned.IncRelaxed()
		}
	}
	for len(r.heap) > 0 {
		rec := r.heapPop()
		r.met.released.IncRelaxed()
		r.vantages[rec.vantage].sink.Report(&rec.rep)
	}
}

// Complete reports whether nothing is pending: no gaps, no buffered
// frames, an empty merge heap.
func (r *Receiver) Complete() bool {
	if len(r.heap) > 0 {
		return false
	}
	for _, v := range r.order {
		if len(v.gaps) > 0 || len(v.buffered) > 0 {
			return false
		}
	}
	return true
}

// Watermark returns the current release watermark.
func (r *Receiver) Watermark() units.Time { return r.watermark }

// PendingRecords returns the merge-heap depth.
func (r *Receiver) PendingRecords() int { return len(r.heap) }

// OutstandingGaps returns the total unresolved gap count.
func (r *Receiver) OutstandingGaps() int {
	n := 0
	for _, v := range r.order {
		n += len(v.gaps)
	}
	return n
}

// Abandoned returns how many gaps were given up (frames lost for good).
func (r *Receiver) Abandoned() int64 { return r.met.abandoned.Value() }

// LateRecords returns how many records arrived behind the watermark.
func (r *Receiver) LateRecords() int64 { return r.met.late.Value() }

// FramesReceived returns how many valid frames arrived.
func (r *Receiver) FramesReceived() int64 { return r.met.frames.Value() }

// RecordsReleased returns how many records reached the sinks.
func (r *Receiver) RecordsReleased() int64 { return r.met.released.Value() }

// RecordsReceived returns how many records were decoded in sequence.
func (r *Receiver) RecordsReceived() int64 { return r.met.records.Value() }

// GapsDetected returns how many sequence gaps were ever detected.
func (r *Receiver) GapsDetected() int64 { return r.met.gaps.Value() }

// DupFrames returns how many duplicate frames were dropped.
func (r *Receiver) DupFrames() int64 { return r.met.dupFrames.Value() }

// BadFrames returns how many undecodable datagrams were dropped.
func (r *Receiver) BadFrames() int64 { return r.met.badFrames.Value() }

// Exclusions returns how many times silence has excluded a vantage
// from the watermark.
func (r *Receiver) Exclusions() int64 { return r.met.exclusions.Value() }

// Excluded reports whether the vantage is currently excluded from the
// watermark for silence.
func (r *Receiver) Excluded(vantage uint16) bool {
	v := r.vantages[vantage]
	return v != nil && v.excluded
}

// heapPush / heapPop implement a plain binary min-heap over mergeRec
// without interface boxing (container/heap would allocate per op).
func (r *Receiver) heapPush(rec mergeRec) {
	r.heap = append(r.heap, rec)
	i := len(r.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !mergeLess(&r.heap[i], &r.heap[parent]) {
			break
		}
		r.heap[i], r.heap[parent] = r.heap[parent], r.heap[i]
		i = parent
	}
}

func (r *Receiver) heapPop() mergeRec {
	top := r.heap[0]
	last := len(r.heap) - 1
	r.heap[0] = r.heap[last]
	r.heap = r.heap[:last]
	i := 0
	for {
		l, rt := 2*i+1, 2*i+2
		smallest := i
		if l <= last-1 && mergeLess(&r.heap[l], &r.heap[smallest]) {
			smallest = l
		}
		if rt <= last-1 && mergeLess(&r.heap[rt], &r.heap[smallest]) {
			smallest = rt
		}
		if smallest == i {
			break
		}
		r.heap[i], r.heap[smallest] = r.heap[smallest], r.heap[i]
		i = smallest
	}
	return top
}
