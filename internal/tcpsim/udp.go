package tcpsim

import (
	"fmt"

	"planck/internal/sim"
	"planck/internal/units"
)

// udpSink is installed by SetUDPSink; see Host.process.
type udpSinkFn func(now units.Time, pkt *sim.Packet)

// SetUDPSink installs a receiver callback for UDP datagrams addressed to
// this host. The packet is only valid for the duration of the call.
func (h *Host) SetUDPSink(fn func(now units.Time, pkt *sim.Packet)) { h.udpSink = fn }

// CBRSource emits constant-bit-rate UDP traffic, giving experiments a
// precisely controlled offered load (the oversubscription sweeps of
// Figs. 9 and 11 vary load in exact multiples of the monitor port rate).
type CBRSource struct {
	host    *Host
	dstIP   [4]byte
	srcPort uint16
	dstPort uint16
	payload int
	period  units.Duration
	flowID  int32

	seq     uint32
	running bool
	Sent    int64
}

// StartCBR begins emitting payload-byte datagrams to dstIP:dstPort at
// rate (measured in application payload bits/s). Stop with Stop.
func (h *Host) StartCBR(now units.Time, dstIP [4]byte, dstPort uint16, payload int, rate units.Rate, flowID int32) (*CBRSource, error) {
	if _, ok := h.LookupNeighbor(dstIP); !ok {
		return nil, fmt.Errorf("tcpsim: %s has no ARP entry for %v", h.name, dstIP)
	}
	if payload <= 0 || rate <= 0 {
		return nil, fmt.Errorf("tcpsim: CBR needs positive payload and rate")
	}
	s := &CBRSource{
		host:    h,
		dstIP:   dstIP,
		srcPort: h.allocPort(),
		dstPort: dstPort,
		payload: payload,
		period:  rate.Serialize(payload),
		flowID:  flowID,
		running: true,
	}
	h.eng.Schedule(now, s, nil)
	return s, nil
}

// Handle implements sim.Handler: emit one datagram and reschedule.
func (s *CBRSource) Handle(now units.Time, _ *sim.Packet) {
	if !s.running {
		return
	}
	h := s.host
	pkt := h.eng.NewPacket()
	pkt.Kind = sim.KindUDP
	pkt.SrcMAC = h.mac
	if mac, ok := h.LookupNeighbor(s.dstIP); ok {
		pkt.DstMAC = mac
	}
	pkt.SrcIP = h.ip
	pkt.DstIP = s.dstIP
	pkt.SrcPort = s.srcPort
	pkt.DstPort = s.dstPort
	pkt.Seq = s.seq // carried for instrumentation; not on the wire for UDP
	s.seq++
	pkt.PayloadLen = s.payload
	pkt.WireLen = s.payload + sim.UDPHeaderBytes
	pkt.FlowID = s.flowID
	h.sendPacket(now, pkt)
	s.Sent++
	h.eng.After(s.period, s, nil)
}

// Stop halts the source.
func (s *CBRSource) Stop() { s.running = false }
