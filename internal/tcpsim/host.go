// Package tcpsim models end hosts running a Reno-family TCP stack over a
// single NIC. The model is segment-level and captures the behaviours the
// paper's measurements hinge on:
//
//   - slow-start bursts separated by idle gaps (what makes naive
//     microsecond rate estimates jitter, Fig. 10a, and what the burst
//     clustering in the collector smooths, Fig. 10b);
//   - ACK clocking and sender burstiness at 10 Gbps (Figs. 5–7);
//   - loss response: dup-ACK fast retransmit/fast recovery and RTO, which
//     produce the 99.9th-percentile latency inflation of Fig. 3;
//   - kernel send/receive path latency, which is both the dominant term
//     of the testbed's 180–250 µs RTT and the offset between a tcpdump
//     timestamp and the wire (the paper's sample-latency measurements are
//     explicitly "strict overestimates" for this reason, §5.2).
//
// Hosts also own an ARP cache with the two Linux behaviours §6.2 relies
// on: MAC learning from unicast ARP requests, and a configurable
// cache-entry lock time (the sysctl the authors had to relax).
package tcpsim

import (
	"fmt"
	"math/rand"

	"planck/internal/packet"
	"planck/internal/sim"
	"planck/internal/units"
)

// Config tunes the host model. Zero values are replaced by defaults
// matching the paper's Linux 3.5 testbed.
type Config struct {
	// TxDelayMin/Max bound the uniformly distributed kernel send-path
	// latency applied between the stack emitting a segment (the tcpdump
	// stamp) and the NIC queue receiving it.
	TxDelayMin, TxDelayMax units.Duration
	// RxDelayMin/Max bound the receive-path latency between the NIC and
	// the stack processing a packet.
	RxDelayMin, RxDelayMax units.Duration
	// MSS is the TCP maximum segment size in bytes.
	MSS int
	// InitialCwndSegments is the initial congestion window (IW10 on the
	// testbed's Linux 3.5).
	InitialCwndSegments int
	// MinRTO and InitialRTO follow RFC 6298 with the Linux 200 ms floor.
	MinRTO, InitialRTO units.Duration
	// DelAckSegments is the number of full segments that trigger an
	// immediate ACK; DelAckTimeout bounds how long an ACK may be held.
	DelAckSegments int
	DelAckTimeout  units.Duration
	// ARPLockTime is how long an ARP cache entry resists updates after a
	// change (Linux locks entries by default; the paper sets a sysctl to
	// zero it, which is also the default here).
	ARPLockTime units.Duration
	// NICQueuePackets caps the NIC transmit queue. TCP senders treat the
	// cap as backpressure (as Linux qdisc/BQL accounting does) and stop
	// emitting data until the queue drains; non-TCP traffic that
	// overruns the cap is tail-dropped.
	NICQueuePackets int
	// RWnd caps the amount of unacknowledged in-flight data a sender may
	// have, modelling the receiver's advertised window.
	RWnd int64
	// CongestionControl selects "cubic" (the testbed's Linux default;
	// also the package default) or "reno".
	CongestionControl string
}

// DefaultConfig returns the testbed-calibrated defaults.
func DefaultConfig() Config {
	return Config{
		TxDelayMin:          50 * units.Microsecond,
		TxDelayMax:          90 * units.Microsecond,
		RxDelayMin:          20 * units.Microsecond,
		RxDelayMax:          40 * units.Microsecond,
		MSS:                 1460,
		InitialCwndSegments: 10,
		MinRTO:              200 * units.Millisecond,
		InitialRTO:          1000 * units.Millisecond,
		DelAckSegments:      2,
		// Linux's delayed-ACK timeout adapts down to TCP_ATO_MIN scale on
		// fast LANs; 4 ms approximates the testbed's effective ATO.
		DelAckTimeout:     4 * units.Millisecond,
		ARPLockTime:       0,
		NICQueuePackets:   1000,
		RWnd:              16 << 20,
		CongestionControl: "cubic",
	}
}

func (c *Config) fillDefaults() {
	d := DefaultConfig()
	if c.MSS == 0 {
		c.MSS = d.MSS
	}
	if c.InitialCwndSegments == 0 {
		c.InitialCwndSegments = d.InitialCwndSegments
	}
	if c.MinRTO == 0 {
		c.MinRTO = d.MinRTO
	}
	if c.InitialRTO == 0 {
		c.InitialRTO = d.InitialRTO
	}
	if c.DelAckSegments == 0 {
		c.DelAckSegments = d.DelAckSegments
	}
	if c.DelAckTimeout == 0 {
		c.DelAckTimeout = d.DelAckTimeout
	}
	if c.NICQueuePackets == 0 {
		c.NICQueuePackets = d.NICQueuePackets
	}
	if c.RWnd == 0 {
		c.RWnd = d.RWnd
	}
	if c.CongestionControl == "" {
		c.CongestionControl = "cubic"
	}
	if c.TxDelayMax == 0 {
		c.TxDelayMin, c.TxDelayMax = d.TxDelayMin, d.TxDelayMax
	}
	if c.RxDelayMax == 0 {
		c.RxDelayMin, c.RxDelayMax = d.RxDelayMin, d.RxDelayMax
	}
}

type arpEntry struct {
	mac         packet.MAC
	lockedUntil units.Time
}

type connKey struct {
	remoteIP   uint32
	remotePort uint16
	localPort  uint16
}

// Host is an end host with one NIC and a TCP stack.
type Host struct {
	eng  *sim.Engine
	name string
	cfg  Config
	rng  *rand.Rand

	mac packet.MAC
	ip  packet.IPv4

	nic  *sim.Port
	nicQ nicQueue

	arp map[uint32]arpEntry

	conns    map[connKey]*Conn
	nextPort uint16

	lastNICEnq units.Time // monotonic clamp for jittered tx delays
	lastRxDone units.Time // monotonic clamp for jittered rx delays
	txBacklog  int        // packets emitted but not yet on the wire

	// OnSegmentSent observes every TCP segment the stack emits, at emit
	// time (i.e., a sender-side tcpdump). Used by experiments needing
	// ground-truth sender traces (Figs. 7, 11).
	OnSegmentSent func(now units.Time, pkt *sim.Packet)

	// OnARPUpdate observes ARP cache changes (used by reroute latency
	// instrumentation).
	OnARPUpdate func(now units.Time, ip packet.IPv4, mac packet.MAC)

	// OnDelivered observes every packet the stack processes (after the
	// receive path), i.e., a receiver-side tcpdump. The packet is only
	// valid during the call.
	OnDelivered func(now units.Time, pkt *sim.Packet)

	// Accept decides whether to accept an incoming connection; nil
	// accepts everything.
	Accept func(k packet.FlowKey) bool

	// NICDrops counts local transmit-queue overflow drops.
	NICDrops int64

	udpSink udpSinkFn

	rxq rxQueue
}

// NewHost creates a host with one NIC at the given rate. The NIC port is
// unconnected; wire it with sim.Connect.
func NewHost(eng *sim.Engine, name string, mac packet.MAC, ip packet.IPv4, nicRate units.Rate, cfg Config, rng *rand.Rand) *Host {
	cfg.fillDefaults()
	if rng == nil {
		panic("tcpsim: NewHost requires a deterministic rng")
	}
	h := &Host{
		eng:      eng,
		name:     name,
		cfg:      cfg,
		rng:      rng,
		mac:      mac,
		ip:       ip,
		arp:      make(map[uint32]arpEntry),
		conns:    make(map[connKey]*Conn),
		nextPort: 10000,
	}
	h.nic = sim.NewPort(eng, h, 0, nicRate)
	h.nicQ.h = h
	h.nic.SetSource(&h.nicQ)
	h.rxq.h = h
	return h
}

// Name implements sim.Node.
func (h *Host) Name() string { return h.name }

// NIC returns the host's port.
func (h *Host) NIC() *sim.Port { return h.nic }

// MAC returns the host's hardware address.
func (h *Host) MAC() packet.MAC { return h.mac }

// IP returns the host's address.
func (h *Host) IP() packet.IPv4 { return h.ip }

// Config returns the host configuration after defaulting.
func (h *Host) Config() Config { return h.cfg }

// SetNeighbor installs a static ARP entry (the lab pre-populates these,
// as the testbed did).
func (h *Host) SetNeighbor(ip packet.IPv4, mac packet.MAC) {
	h.arp[ip.U32()] = arpEntry{mac: mac}
}

// LookupNeighbor returns the current MAC for ip.
func (h *Host) LookupNeighbor(ip packet.IPv4) (packet.MAC, bool) {
	e, ok := h.arp[ip.U32()]
	return e.mac, ok
}

// txDelay samples the kernel send-path latency.
func (h *Host) txDelay() units.Duration {
	return jitter(h.rng, h.cfg.TxDelayMin, h.cfg.TxDelayMax)
}

func (h *Host) rxDelay() units.Duration {
	return jitter(h.rng, h.cfg.RxDelayMin, h.cfg.RxDelayMax)
}

func jitter(rng *rand.Rand, lo, hi units.Duration) units.Duration {
	if hi <= lo {
		return lo
	}
	return lo + units.Duration(rng.Int63n(int64(hi-lo)))
}

// txBacklog is the number of packets the stack has emitted that have not
// yet left the NIC (kernel pipeline + NIC queue). TCP data transmission
// pauses while it meets the queue cap.
func (h *Host) txBacklogFull() bool { return h.txBacklog >= h.cfg.NICQueuePackets }

// sendPacket stamps pkt and moves it through the modelled kernel send path
// into the NIC queue, preserving FIFO order despite jitter.
func (h *Host) sendPacket(now units.Time, pkt *sim.Packet) {
	pkt.SentAt = now
	if h.OnSegmentSent != nil && pkt.Kind == sim.KindTCP {
		h.OnSegmentSent(now, pkt)
	}
	h.txBacklog++
	at := now.Add(h.txDelay())
	if at < h.lastNICEnq {
		at = h.lastNICEnq
	}
	h.lastNICEnq = at
	h.eng.Schedule(at, &h.nicQ, pkt)
}

// nicQueue is the NIC transmit queue; it doubles as the Handler for
// send-path-delay completion events.
type nicQueue struct {
	h    *Host
	fifo sim.Fifo
}

// Handle implements sim.Handler: the segment has traversed the kernel and
// reaches the NIC queue. TCP respects backpressure upstream and never
// overruns; anything else (e.g. an unthrottled CBR source) tail-drops.
func (q *nicQueue) Handle(now units.Time, pkt *sim.Packet) {
	if pkt.Kind != sim.KindTCP && q.fifo.Len() >= q.h.cfg.NICQueuePackets {
		q.h.NICDrops++
		q.h.txBacklog--
		q.h.eng.FreePacket(pkt)
		return
	}
	q.fifo.Enqueue(pkt)
	q.h.nic.Kick(now)
}

// Dequeue implements sim.Outbound: the wire consumed a packet, so the
// backlog shrinks; senders blocked on backpressure get another turn.
// SentAt is restamped here because this is where a sender-side tcpdump
// observes the packet — Linux packet taps run after the qdisc, so queue
// wait does not count toward measured sample latency (§5.2 measures from
// this stamp and notes it still overestimates slightly).
func (q *nicQueue) Dequeue(now units.Time) *sim.Packet {
	pkt := q.fifo.Dequeue(now)
	if pkt != nil {
		pkt.SentAt = now
		q.h.txBacklog--
		if q.h.txBacklog == q.h.cfg.NICQueuePackets-1 {
			q.h.kickBlockedSenders(now)
		}
	}
	return pkt
}

// kickBlockedSenders lets connections with pending data resume after NIC
// backpressure eases.
func (h *Host) kickBlockedSenders(now units.Time) {
	for _, c := range h.conns {
		if !c.Completed && c.flowSize > 0 && c.state == stateEstablished {
			if c.inRecov {
				c.recoverySend(now, 2)
			} else {
				c.trySend(now)
			}
		}
	}
}

// Receive implements sim.Node: NIC receive, deferred by the kernel
// receive path before the stack processes it.
func (h *Host) Receive(now units.Time, _ *sim.Port, pkt *sim.Packet) {
	at := now.Add(h.rxDelay())
	if at < h.lastRxDone {
		at = h.lastRxDone
	}
	h.lastRxDone = at
	h.eng.Schedule(at, &h.rxq, pkt)
}

// rxQueue is the Handler for receive-path-delay completion.
type rxQueue struct{ h *Host }

// Handle implements sim.Handler.
func (q *rxQueue) Handle(now units.Time, pkt *sim.Packet) {
	q.h.process(now, pkt)
}

// process is the host stack demultiplexer.
func (h *Host) process(now units.Time, pkt *sim.Packet) {
	defer h.eng.FreePacket(pkt)
	if h.OnDelivered != nil {
		h.OnDelivered(now, pkt)
	}
	switch pkt.Kind {
	case sim.KindARP:
		h.processARP(now, &pkt.ARP)
	case sim.KindTCP:
		h.processTCP(now, pkt)
	case sim.KindUDP:
		// UDP sinks just count; see udp.go.
		if h.udpSink != nil {
			h.udpSink(now, pkt)
		}
	}
}

// processARP implements the Linux behaviours §6.2 depends on: a unicast
// ARP request updates (learns) the sender mapping, subject to the lock
// time.
func (h *Host) processARP(now units.Time, a *packet.ARP) {
	if a.TargetIP != h.ip {
		return
	}
	key := a.SenderIP.U32()
	e, ok := h.arp[key]
	if ok && e.mac == a.SenderMAC {
		return // no change
	}
	if ok && now.Before(e.lockedUntil) {
		return // locked: spurious update ignored
	}
	h.arp[key] = arpEntry{mac: a.SenderMAC, lockedUntil: now.Add(h.cfg.ARPLockTime)}
	if h.OnARPUpdate != nil {
		h.OnARPUpdate(now, a.SenderIP, a.SenderMAC)
	}
}

func (h *Host) processTCP(now units.Time, pkt *sim.Packet) {
	key := connKey{remoteIP: pkt.SrcIP.U32(), remotePort: pkt.SrcPort, localPort: pkt.DstPort}
	c, ok := h.conns[key]
	if !ok {
		if pkt.TCPFlags&packet.TCPSyn == 0 || pkt.TCPFlags&packet.TCPAck != 0 {
			return // no connection and not a connection attempt
		}
		if h.Accept != nil {
			fk := pkt.FlowKey()
			if !h.Accept(fk) {
				return
			}
		}
		c = h.acceptConn(now, key, pkt)
	}
	c.segmentArrived(now, pkt)
}

// allocPort hands out an ephemeral local port.
func (h *Host) allocPort() uint16 {
	for {
		p := h.nextPort
		h.nextPort++
		if h.nextPort < 10000 {
			h.nextPort = 10000
		}
		// Ports must be unique per (remote) tuple; a global uniqueness
		// scan is cheap at our connection counts.
		inUse := false
		for k := range h.conns {
			if k.localPort == p {
				inUse = true
				break
			}
		}
		if !inUse {
			return p
		}
	}
}

// Conns returns the host's connections (read-only use).
func (h *Host) Conns() map[connKey]*Conn { return h.conns }

// String implements fmt.Stringer.
func (h *Host) String() string {
	return fmt.Sprintf("host %s (%s, %s)", h.name, h.mac, h.ip)
}
