package tcpsim

import (
	"math/rand"
	"testing"

	"planck/internal/sim"
	"planck/internal/switchsim"
	"planck/internal/units"
)

// cubicConn builds a bare established conn for unit-level CC tests.
func cubicConn(t *testing.T, cc string) *Conn {
	t.Helper()
	eng := sim.New()
	rng := rand.New(rand.NewSource(1))
	h := NewHost(eng, "h", mac(1), ip(1), units.Rate10G, Config{CongestionControl: cc}, rng)
	h.SetNeighbor(ip(2), mac(2))
	c := &Conn{
		host:      h,
		remoteIP:  ip(2),
		state:     stateEstablished,
		flowSize:  1 << 40,
		cwnd:      100 * 1460,
		ssthresh:  50 * 1460, // in CA
		recover64: -1,
		rto:       h.cfg.InitialRTO,
	}
	c.srtt = float64(200 * units.Microsecond)
	return c
}

func TestCubicLossReduction(t *testing.T) {
	c := cubicConn(t, "cubic")
	c.cwnd = 1000 * 1460
	c.nxt64 = 1000 * 1460 // inflight = cwnd
	before := c.cwnd
	ss := c.lossReduction()
	// CUBIC beta = 0.7: the window drops 30%, not 50%.
	if want := before * 0.7; ss < want*0.99 || ss > want*1.01 {
		t.Fatalf("ssthresh %.0f, want ≈%.0f", ss, want)
	}
	if c.wMax < before*0.99 {
		t.Fatalf("wMax %.0f not recorded", c.wMax)
	}
	if c.epochStart != 0 {
		t.Fatal("epoch not reset")
	}
}

func TestCubicFastConvergence(t *testing.T) {
	c := cubicConn(t, "cubic")
	c.cwnd = 1000 * 1460
	c.nxt64 = 1000 * 1460
	c.lossReduction()
	firstWMax := c.wMax
	// A second loss below the previous ceiling cedes bandwidth: wMax is
	// remembered lower than the current window.
	c.cwnd = 500 * 1460
	c.nxt64 = c.una64 + 500*1460
	c.lossReduction()
	if c.wMax >= firstWMax {
		t.Fatalf("fast convergence did not lower wMax: %.0f >= %.0f", c.wMax, firstWMax)
	}
	if want := 500 * 1460 * (2 - cubicBeta) / 2; c.wMax < want*0.99 || c.wMax > want*1.01 {
		t.Fatalf("wMax %.0f want %.0f", c.wMax, want)
	}
}

func TestRenoLossReduction(t *testing.T) {
	c := cubicConn(t, "reno")
	c.cwnd = 1000 * 1460
	c.nxt64 = 1000 * 1460
	ss := c.lossReduction()
	if want := c.cwnd / 2; ss < want*0.99 || ss > want*1.01 {
		t.Fatalf("reno ssthresh %.0f, want half of cwnd", ss)
	}
}

func TestCubicGrowthConvexAfterPlateau(t *testing.T) {
	c := cubicConn(t, "cubic")
	c.cwnd = 100 * 1460
	c.wMax = 200 * 1460
	// Drive CA across virtual time and verify the window passes through
	// a plateau near wMax*beta and then accelerates.
	now := units.Time(0)
	prev := c.cwnd
	for i := 0; i < 40000; i++ {
		now = now.Add(50 * units.Microsecond)
		c.congestionAvoidance(now)
		if c.cwnd < prev {
			t.Fatalf("cwnd shrank in CA: %.0f -> %.0f", prev, c.cwnd)
		}
		prev = c.cwnd
	}
	if c.kCubic <= 0 {
		t.Fatal("K never computed")
	}
	// At the testbed's ~200 µs RTT the TCP-friendly region dominates the
	// early curve (RFC 8312 §4.2), so growth passes wMax well before K;
	// what must hold is monotone growth that eventually clears the old
	// ceiling.
	if c.cwnd <= c.wMax {
		t.Fatalf("no growth past wMax: cwnd %.0f <= wMax %.0f", c.cwnd, c.wMax)
	}
}

func TestRenoGrowthLinear(t *testing.T) {
	c := cubicConn(t, "reno")
	start := c.cwnd
	// One cwnd's worth of ACKs grows the window by ~1 MSS.
	acks := int(c.cwnd / 1460)
	for i := 0; i < acks; i++ {
		c.congestionAvoidance(0)
	}
	if grown := c.cwnd - start; grown < 1460*0.9 || grown > 1460*1.2 {
		t.Fatalf("reno grew %.0f bytes per RTT, want ≈MSS", grown)
	}
}

// TestCubicRecoversFasterThanReno is the ablation behind defaulting to
// CUBIC: after a halving at 10 Gbps scale, CUBIC regains the window far
// sooner than Reno's MSS-per-RTT crawl.
func TestCubicRecoversFasterThanReno(t *testing.T) {
	regrow := func(cc string) units.Time {
		c := cubicConn(t, cc)
		target := 2000.0 * 1460
		c.wMax = target
		c.cwnd = target * 0.7
		c.ssthresh = c.cwnd
		now := units.Time(0)
		for i := 0; i < 5_000_000; i++ {
			now = now.Add(10 * units.Microsecond) // ~20 ACKs per 200µs RTT
			c.congestionAvoidance(now)
			if c.cwnd >= target {
				return now
			}
		}
		return now
	}
	tCubic := regrow("cubic")
	tReno := regrow("reno")
	if tCubic*5 > tReno {
		t.Fatalf("cubic %v vs reno %v: insufficient speedup", tCubic, tReno)
	}
}

// TestTwoFlowsCubicConverge reruns the bottleneck-sharing scenario under
// explicit reno to confirm the knob changes behaviour end to end.
func TestRenoOptionEndToEnd(t *testing.T) {
	cfg := switchsim.ProfileG8264("sw", 0)
	eng := sim.New()
	cfg.NumPorts = 3
	sw, err := switchsim.New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	hosts := make([]*Host, 3)
	for i := 0; i < 3; i++ {
		h := NewHost(eng, "h", mac(i+1), ip(i+1), cfg.LineRate, Config{CongestionControl: "reno"}, rng)
		sim.Connect(h.NIC(), sw.Port(i), 500*units.Nanosecond)
		sw.InstallMAC(mac(i+1), i)
		hosts[i] = h
	}
	for i := range hosts {
		for j := range hosts {
			if i != j {
				hosts[i].SetNeighbor(ip(j+1), mac(j+1))
			}
		}
	}
	c, err := hosts[0].StartFlow(0, ip(3), 5001, 16<<20, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(units.Time(2 * units.Second))
	if !c.Completed {
		t.Fatal("reno flow incomplete")
	}
}
