package tcpsim

import (
	"math/rand"
	"testing"

	"planck/internal/sim"
	"planck/internal/units"
)

// TestDebugTrace is a scratch diagnostic; it prints the sender's state
// over time when run with -run TestDebugTrace -v.
func TestDebugTrace(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("diagnostic only")
	}
	eng := sim.New()
	rng := rand.New(rand.NewSource(1))
	a := NewHost(eng, "a", mac(1), ip(1), units.Rate10G, Config{}, rng)
	b := NewHost(eng, "b", mac(2), ip(2), units.Rate10G, Config{}, rng)
	sim.Connect(a.NIC(), b.NIC(), 500*units.Nanosecond)
	a.SetNeighbor(ip(2), mac(2))
	b.SetNeighbor(ip(1), mac(1))
	c, _ := a.StartFlow(0, ip(2), 5001, 10<<20, 1)
	sim.NewTicker(eng, units.Duration(5*units.Millisecond), func(now units.Time) {
		t.Logf("t=%v acked=%d nxt=%d cwnd=%.0f ssthresh=%.0f inflight=%d dupacks=%d recov=%v rtx=%d to=%d nicdrop=%d niclen=%d srtt=%v",
			now, c.una64, c.nxt64, c.cwnd, c.ssthresh, c.inflight(), c.dupacks, c.inRecov, c.Retransmits, c.Timeouts, a.NICDrops, a.nicQ.fifo.Len(), c.SRTT())
	})
	eng.RunUntil(units.Time(120 * units.Millisecond))
	t.Logf("completed=%v", c.Completed)
}
