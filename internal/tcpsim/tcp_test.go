package tcpsim

import (
	"math/rand"
	"testing"

	"planck/internal/packet"
	"planck/internal/sim"
	"planck/internal/switchsim"
	"planck/internal/units"
)

func mac(i int) packet.MAC { return packet.MAC{0x02, 0, 0, 0, 0, byte(i)} }
func ip(i int) packet.IPv4 { return packet.IPv4{10, 0, 0, byte(i)} }

// directPair wires two hosts NIC-to-NIC.
func directPair(t *testing.T, rate units.Rate) (*sim.Engine, *Host, *Host) {
	t.Helper()
	eng := sim.New()
	rng := rand.New(rand.NewSource(1))
	a := NewHost(eng, "a", mac(1), ip(1), rate, Config{}, rng)
	b := NewHost(eng, "b", mac(2), ip(2), rate, Config{}, rng)
	sim.Connect(a.NIC(), b.NIC(), 500*units.Nanosecond)
	a.SetNeighbor(ip(2), mac(2))
	b.SetNeighbor(ip(1), mac(1))
	return eng, a, b
}

func TestDirectTransferCompletes(t *testing.T) {
	eng, a, _ := directPair(t, units.Rate10G)
	const size = 10 << 20
	c, err := a.StartFlow(0, ip(2), 5001, size, 1)
	if err != nil {
		t.Fatal(err)
	}
	var done units.Time
	c.OnComplete = func(now units.Time, _ *Conn) { done = now }
	eng.RunUntil(units.Time(5 * units.Second))
	if !c.Completed {
		t.Fatalf("flow incomplete: acked %d of %d", c.BytesAcked(), size)
	}
	if done == 0 || c.Duration() <= 0 {
		t.Fatal("completion accounting broken")
	}
	// 10 MiB at ~9.5 Gbps is ~8.8 ms plus slow-start ramp; allow 8–40 ms.
	d := c.Duration()
	if d < 8*units.Millisecond || d > 40*units.Millisecond {
		t.Fatalf("duration %v out of plausible range", d)
	}
	if c.Retransmits != 0 {
		t.Fatalf("retransmits on a clean path: %d", c.Retransmits)
	}
}

func TestGoodputApproachesLineRate(t *testing.T) {
	eng, a, _ := directPair(t, units.Rate10G)
	const size = 100 << 20
	c, _ := a.StartFlow(0, ip(2), 5001, size, 1)
	eng.RunUntil(units.Time(10 * units.Second))
	if !c.Completed {
		t.Fatal("flow incomplete")
	}
	g := c.Goodput().Gigabits()
	// MSS/(MSS+78) * 10G = 9.49 Gbps is the ceiling (incl. preamble+IFG+FCS).
	if g < 8.8 || g > 9.5 {
		t.Fatalf("goodput %.2f Gbps", g)
	}
}

func TestSmallFlowCompletes(t *testing.T) {
	eng, a, _ := directPair(t, units.Rate10G)
	c, _ := a.StartFlow(0, ip(2), 5001, 1, 1)
	eng.RunUntil(units.Time(2 * units.Second))
	if !c.Completed {
		t.Fatal("1-byte flow incomplete")
	}
}

func TestZeroByteFlowCompletes(t *testing.T) {
	eng, a, _ := directPair(t, units.Rate10G)
	c, _ := a.StartFlow(0, ip(2), 5001, 0, 1)
	eng.RunUntil(units.Time(2 * units.Second))
	if !c.Completed {
		t.Fatal("0-byte flow incomplete")
	}
}

func TestRTTIsTestbedScale(t *testing.T) {
	eng, a, _ := directPair(t, units.Rate10G)
	c, _ := a.StartFlow(0, ip(2), 5001, 1<<20, 1)
	eng.RunUntil(units.Time(1 * units.Second))
	if !c.Completed {
		t.Fatal("incomplete")
	}
	rtt := c.SRTT()
	// The paper reports 180–250 µs RTTs; queueing can add some.
	if rtt < 100*units.Microsecond || rtt > 2*units.Millisecond {
		t.Fatalf("SRTT %v outside testbed scale", rtt)
	}
}

func TestMissingARPEntryErrors(t *testing.T) {
	eng, a, _ := directPair(t, units.Rate10G)
	_ = eng
	if _, err := a.StartFlow(0, ip(99), 5001, 100, 1); err == nil {
		t.Fatal("flow to unknown neighbor started")
	}
}

// switched builds n hosts on one switch with MACs installed.
func switched(t *testing.T, n int, cfg switchsim.Config) (*sim.Engine, []*Host, *switchsim.Switch) {
	t.Helper()
	eng := sim.New()
	cfg.NumPorts = n
	sw, err := switchsim.New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	hosts := make([]*Host, n)
	for i := 0; i < n; i++ {
		h := NewHost(eng, "h", mac(i+1), ip(i+1), cfg.LineRate, Config{}, rng)
		sim.Connect(h.NIC(), sw.Port(i), 500*units.Nanosecond)
		sw.InstallMAC(mac(i+1), i)
		hosts[i] = h
	}
	for i := range hosts {
		for j := range hosts {
			if i != j {
				hosts[i].SetNeighbor(ip(j+1), mac(j+1))
			}
		}
	}
	return eng, hosts, sw
}

func TestTwoFlowsShareBottleneckFairly(t *testing.T) {
	cfg := switchsim.ProfileG8264("sw", 0)
	eng, hosts, sw := switched(t, 3, cfg)
	const size = 64 << 20
	c1, _ := hosts[0].StartFlow(0, ip(3), 5001, size, 1)
	c2, _ := hosts[1].StartFlow(0, ip(3), 5002, size, 2)
	eng.RunUntil(units.Time(10 * units.Second))
	if !c1.Completed || !c2.Completed {
		t.Fatalf("incomplete: %v %v", c1.Completed, c2.Completed)
	}
	// 128 MiB through a shared 10G port takes >= 113 ms at the 9.49 Gbps
	// goodput ceiling; finishing within 1.6x of that bound means the pair
	// kept the bottleneck well utilized through loss recovery.
	last := c1.CompletedAt
	if c2.CompletedAt > last {
		last = c2.CompletedAt
	}
	agg := units.RateOf(128<<20, units.Duration(last)).Gigabits()
	if agg < 6.0 {
		t.Fatalf("effective aggregate %.2f Gbps (finished at %v)", agg, last)
	}
	// Neither flow should be starved outright.
	g1, g2 := c1.Goodput().Gigabits(), c2.Goodput().Gigabits()
	ratio := g1 / g2
	if ratio < 0.25 || ratio > 4 {
		t.Fatalf("starved split: %.2f vs %.2f Gbps", g1, g2)
	}
	if sw.DataDropped.Packets == 0 {
		t.Fatal("expected congestive drops at the shared port")
	}
	if c1.Retransmits+c2.Retransmits == 0 {
		t.Fatal("expected retransmissions after drops")
	}
}

func TestSlowStartBurstsVisible(t *testing.T) {
	eng, a, _ := directPair(t, units.Rate10G)
	var sent []units.Time
	a.OnSegmentSent = func(now units.Time, pkt *sim.Packet) {
		if pkt.PayloadLen > 0 {
			sent = append(sent, now)
		}
	}
	c, _ := a.StartFlow(0, ip(2), 5001, 4<<20, 1)
	eng.RunUntil(units.Time(1 * units.Second))
	if !c.Completed {
		t.Fatal("incomplete")
	}
	// Early in slow start there must be gaps near the RTT scale between
	// segment bursts.
	gaps := 0
	for i := 1; i < len(sent) && i < 200; i++ {
		if sent[i].Sub(sent[i-1]) > 100*units.Microsecond {
			gaps++
		}
	}
	if gaps < 3 {
		t.Fatalf("no slow-start burst gaps observed (gaps=%d)", gaps)
	}
}

func TestARPRerouteChangesDstMAC(t *testing.T) {
	eng, a, b := directPair(t, units.Rate10G)
	_ = b
	shadow := packet.MAC{0x02, 1, 0, 0, 0, 2}
	var updated units.Time
	a.OnARPUpdate = func(now units.Time, ip packet.IPv4, m packet.MAC) { updated = now }

	c, _ := a.StartFlow(0, ip(2), 5001, 1<<30, 1)
	_ = c
	var seenShadow bool
	a.OnSegmentSent = func(now units.Time, pkt *sim.Packet) {
		if pkt.DstMAC == shadow {
			seenShadow = true
		}
	}
	// Deliver a spoofed unicast ARP request at t=5ms, as the controller
	// would (§6.2).
	eng.Schedule(units.Time(5*units.Millisecond), sim.Callback(func(now units.Time) {
		arp := eng.NewPacket()
		arp.Kind = sim.KindARP
		arp.SrcMAC = packet.MAC{0x02, 0xff, 0, 0, 0, 0xfe}
		arp.DstMAC = mac(1)
		arp.WireLen = packet.EthernetHeaderLen + packet.ARPBodyLen
		arp.ARP = packet.ARP{
			Op:        packet.ARPRequest,
			SenderMAC: shadow, SenderIP: ip(2),
			TargetMAC: mac(1), TargetIP: ip(1),
		}
		a.Receive(now, a.NIC(), arp)
	}), nil)
	eng.RunUntil(units.Time(20 * units.Millisecond))
	if updated == 0 {
		t.Fatal("ARP cache never updated")
	}
	if !seenShadow {
		t.Fatal("flow never switched to the shadow MAC")
	}
	if got, _ := a.LookupNeighbor(ip(2)); got != shadow {
		t.Fatalf("neighbor is %v", got)
	}
}

func TestARPLockTimeBlocksUpdate(t *testing.T) {
	eng := sim.New()
	rng := rand.New(rand.NewSource(1))
	cfg := Config{ARPLockTime: 10 * units.Millisecond}
	a := NewHost(eng, "a", mac(1), ip(1), units.Rate10G, cfg, rng)
	a.SetNeighbor(ip(2), mac(2))

	spoof := func(m packet.MAC) *sim.Packet {
		arp := eng.NewPacket()
		arp.Kind = sim.KindARP
		arp.WireLen = packet.EthernetHeaderLen + packet.ARPBodyLen
		arp.ARP = packet.ARP{Op: packet.ARPRequest, SenderMAC: m, SenderIP: ip(2), TargetIP: ip(1)}
		return arp
	}
	shadow1 := packet.MAC{0x02, 1, 0, 0, 0, 2}
	shadow2 := packet.MAC{0x02, 2, 0, 0, 0, 2}
	eng.Schedule(0, sim.Callback(func(now units.Time) { a.Receive(now, a.NIC(), spoof(shadow1)) }), nil)
	// Second update 1 ms later is inside the lock window and must be
	// ignored; third at 50 ms succeeds.
	eng.Schedule(units.Time(units.Millisecond), sim.Callback(func(now units.Time) { a.Receive(now, a.NIC(), spoof(shadow2)) }), nil)
	eng.RunUntil(units.Time(5 * units.Millisecond))
	if got, _ := a.LookupNeighbor(ip(2)); got != shadow1 {
		t.Fatalf("after lock: %v", got)
	}
	eng.Schedule(units.Time(50*units.Millisecond), sim.Callback(func(now units.Time) { a.Receive(now, a.NIC(), spoof(shadow2)) }), nil)
	eng.RunUntil(units.Time(60 * units.Millisecond))
	if got, _ := a.LookupNeighbor(ip(2)); got != shadow2 {
		t.Fatalf("after lock expiry: %v", got)
	}
}

func TestCBRSourceRate(t *testing.T) {
	eng, a, b := directPair(t, units.Rate10G)
	var got int64
	b.SetUDPSink(func(now units.Time, pkt *sim.Packet) { got += int64(pkt.PayloadLen) })
	src, err := a.StartCBR(0, ip(2), 5001, 1000, units.Rate(1*units.Gbps), 1)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(units.Time(100 * units.Millisecond))
	src.Stop()
	// 1 Gbps of payload for 100 ms = 12.5 MB.
	want := int64(12_500_000)
	if got < want*95/100 || got > want*105/100 {
		t.Fatalf("CBR delivered %d, want ≈%d", got, want)
	}
}

func TestSeqWrapLargeOffsets(t *testing.T) {
	// Exercise the 64-bit offset mapping across a 32-bit sequence wrap by
	// constructing the sender with an ISS just below the wrap point
	// (StartFlow picks a random ISS, so build the conn by hand).
	eng, a, _ := directPair(t, units.Rate10G)
	key := connKey{remoteIP: ip(2).U32(), remotePort: 5001, localPort: a.allocPort()}
	c := &Conn{
		host:      a,
		key:       key,
		remoteIP:  ip(2),
		state:     stateSynSent,
		FlowID:    1,
		iss:       0xffff_f000, // wraps ~4 KB into the transfer
		flowSize:  4 << 20,
		cwnd:      float64(a.cfg.InitialCwndSegments * a.cfg.MSS),
		ssthresh:  1 << 60,
		recover64: -1,
		rto:       a.cfg.InitialRTO,
	}
	c.rtoH.c = c
	c.delackH.c = c
	a.conns[key] = c
	c.emitSyn(0)
	c.armRTO(0)
	eng.RunUntil(units.Time(1 * units.Second))
	if !c.Completed {
		t.Fatalf("flow crossing seq wrap incomplete: acked %d", c.BytesAcked())
	}
}

func TestNICBackpressureThrottlesTCP(t *testing.T) {
	// A tiny NIC queue must slow TCP down through backpressure, not
	// local drops (Linux qdisc/BQL behaviour).
	eng := sim.New()
	rng := rand.New(rand.NewSource(3))
	cfg := Config{NICQueuePackets: 8}
	a := NewHost(eng, "a", mac(1), ip(1), units.Rate1G, cfg, rng)
	b := NewHost(eng, "b", mac(2), ip(2), units.Rate1G, Config{}, rng)
	sim.Connect(a.NIC(), b.NIC(), 0)
	a.SetNeighbor(ip(2), mac(2))
	b.SetNeighbor(ip(1), mac(1))
	c, _ := a.StartFlow(0, ip(2), 5001, 8<<20, 1)
	eng.RunUntil(units.Time(10 * units.Second))
	if a.NICDrops != 0 {
		t.Fatalf("TCP suffered %d local drops despite backpressure", a.NICDrops)
	}
	if !c.Completed {
		t.Fatal("flow did not complete under backpressure")
	}
}

func TestNICQueueDropsUDPOverrun(t *testing.T) {
	// An unthrottled CBR source exceeding the line rate must tail-drop
	// at the NIC queue.
	eng := sim.New()
	rng := rand.New(rand.NewSource(3))
	cfg := Config{NICQueuePackets: 16}
	a := NewHost(eng, "a", mac(1), ip(1), units.Rate1G, cfg, rng)
	b := NewHost(eng, "b", mac(2), ip(2), units.Rate1G, Config{}, rng)
	sim.Connect(a.NIC(), b.NIC(), 0)
	a.SetNeighbor(ip(2), mac(2))
	if _, err := a.StartCBR(0, ip(2), 7000, 1000, 2*units.Gbps, 1); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(units.Time(100 * units.Millisecond))
	if a.NICDrops == 0 {
		t.Fatal("2 Gbps CBR into a 1 Gbps NIC never dropped")
	}
}
