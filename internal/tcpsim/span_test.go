package tcpsim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveSpanSet is an oracle implementation over a byte bitmap.
type naiveSpanSet map[int64]bool

func (n naiveSpanSet) add(start, end int64) {
	for i := start; i < end; i++ {
		n[i] = true
	}
}

func (n naiveSpanSet) covered(off int64) bool { return n[off] }

// TestAddSpanMatchesOracle fuzzes addSpan against a bitmap oracle.
func TestAddSpanMatchesOracle(t *testing.T) {
	f := func(seed int64, steps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var spans []span
		oracle := naiveSpanSet{}
		const universe = 200
		for i := 0; i < int(steps); i++ {
			start := rng.Int63n(universe)
			end := start + 1 + rng.Int63n(20)
			spans = addSpan(spans, start, end)
			oracle.add(start, end)
			// Invariants: sorted, disjoint, non-empty.
			for j := range spans {
				if spans[j].start >= spans[j].end {
					return false
				}
				if j > 0 && spans[j-1].end > spans[j].start {
					return false
				}
			}
			// Coverage equivalence.
			for off := int64(0); off < universe+25; off++ {
				_, got := spanCovering(spans, off)
				if got != oracle.covered(off) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestAddSpanMergesAdjacent(t *testing.T) {
	var s []span
	s = addSpan(s, 0, 10)
	s = addSpan(s, 10, 20) // touching: must merge
	if len(s) != 1 || s[0] != (span{0, 20}) {
		t.Fatalf("spans %v", s)
	}
	s = addSpan(s, 30, 40)
	s = addSpan(s, 15, 35) // bridges both
	if len(s) != 1 || s[0] != (span{0, 40}) {
		t.Fatalf("spans %v", s)
	}
}

func TestAddSpanIgnoresEmpty(t *testing.T) {
	var s []span
	s = addSpan(s, 5, 5)
	s = addSpan(s, 7, 3)
	if len(s) != 0 {
		t.Fatalf("spans %v", s)
	}
}

func TestPruneSpans(t *testing.T) {
	s := []span{{0, 10}, {20, 30}, {40, 50}}
	s = pruneSpans(s, 25)
	if len(s) != 2 || s[0] != (span{25, 30}) || s[1] != (span{40, 50}) {
		t.Fatalf("spans %v", s)
	}
	s = pruneSpans(s, 100)
	if len(s) != 0 {
		t.Fatalf("spans %v", s)
	}
}

// TestOOOInsertRecencyOrder verifies insertOOO's move-to-back contract,
// which attachSACK depends on for RFC 2018 block ordering.
func TestOOOInsertRecencyOrder(t *testing.T) {
	c := &Conn{}
	c.insertOOO(100, 200)
	c.insertOOO(300, 400)
	c.insertOOO(500, 600)
	// Touch the first span: it must move to the back.
	c.insertOOO(150, 250)
	if len(c.ooo) != 3 {
		t.Fatalf("ooo %v", c.ooo)
	}
	last := c.ooo[len(c.ooo)-1]
	if last.start != 100 || last.end != 250 {
		t.Fatalf("most recent span %v", last)
	}
}

func TestDrainOOOAbsorbsChains(t *testing.T) {
	c := &Conn{}
	c.insertOOO(10, 20)
	c.insertOOO(20, 30)
	c.insertOOO(35, 40)
	c.rcv64 = 10
	c.drainOOO()
	if c.rcv64 != 30 {
		t.Fatalf("rcv64 %d", c.rcv64)
	}
	if len(c.ooo) != 1 || c.ooo[0] != (span{35, 40}) {
		t.Fatalf("ooo %v", c.ooo)
	}
}
