package tcpsim

import (
	"fmt"
	"math"

	"planck/internal/packet"
	"planck/internal/sim"
	"planck/internal/units"
)

// connState tracks the (simplified) TCP state machine: the model supports
// one-way bulk transfers with a real three-way handshake; connections stay
// open once the transfer completes (the flow-table and TE layers treat
// silence as flow death, as the paper's collector does).
type connState uint8

const (
	stateSynSent connState = iota
	stateSynRcvd
	stateEstablished
)

// Conn is one TCP connection endpoint. Senders are created by StartFlow;
// receivers are created automatically when a SYN arrives.
type Conn struct {
	host *Host
	key  connKey

	remoteIP packet.IPv4
	state    connState

	// FlowID attributes segments to workload flows for instrumentation.
	FlowID int32

	iss       uint32 // our initial sequence number
	remoteISS uint32 // theirs

	// --- sender state (payload byte offsets, 64-bit to survive seq wrap) ---
	flowSize  int64
	una64     int64 // lowest unacknowledged payload offset
	nxt64     int64 // next payload offset to send
	cwnd      float64
	ssthresh  float64
	dupacks   int
	inRecov   bool
	recover64 int64

	// SACK scoreboard: spans above una the receiver holds, sorted and
	// disjoint. rtxNext is the recovery retransmission cursor.
	// rtxBarrier marks the highest offset sent before the last timeout;
	// offsets below it must not produce RTT samples (Karn's rule under
	// go-back-N).
	sacked     []span
	rtxDone    []spanAt // spans retransmitted this recovery episode, with send times
	rtxBarrier int64
	probeEv    *sim.Event // recovery probe (TLP-style) timer
	probeH     probeHandler

	// CUBIC state (RFC 8312): wMax is the window at the last reduction,
	// epochStart anchors the cubic clock, kCubic is the time (seconds) to
	// regrow to wMax.
	wMax       float64
	epochStart units.Time
	kCubic     float64

	rto        units.Duration
	srtt       float64 // ns
	rttvar     float64 // ns
	rtoEv      *sim.Event
	rtoH       rtoHandler
	synSentAt  units.Time
	synRetried bool

	timedOff   int64
	timedAt    units.Time
	timedValid bool

	// FIN handshake state: senders emit a FIN once the transfer
	// completes (flow boundaries matter to the collector, §9.2);
	// receivers acknowledge it.
	finSent bool
	finRcvd bool

	// --- receiver state ---
	rcv64       int64
	ooo         []span
	delackCount int
	delackEv    *sim.Event
	delackH     delackHandler

	// --- accounting ---
	StartedAt   units.Time
	CompletedAt units.Time
	Completed   bool
	Retransmits int64
	Timeouts    int64

	// OnComplete fires when the final payload byte is acknowledged.
	OnComplete func(now units.Time, c *Conn)
}

type span struct{ start, end int64 }

// spanAt is a retransmitted span with its send time; coverage expires
// after a reordering window (RACK-style), so retransmissions that were
// themselves lost get resent instead of stranding the connection.
type spanAt struct {
	start, end int64
	at         units.Time
}

type rtoHandler struct{ c *Conn }
type delackHandler struct{ c *Conn }
type probeHandler struct{ c *Conn }

// StartFlow opens a connection from h to dstIP:dstPort and transfers size
// bytes. The destination MAC is resolved through the ARP cache on every
// segment, which is what lets the controller reroute the flow mid-stream
// by repointing the cache at a shadow MAC.
func (h *Host) StartFlow(now units.Time, dstIP packet.IPv4, dstPort uint16, size int64, flowID int32) (*Conn, error) {
	if _, ok := h.LookupNeighbor(dstIP); !ok {
		return nil, fmt.Errorf("tcpsim: %s has no ARP entry for %s", h.name, dstIP)
	}
	key := connKey{remoteIP: dstIP.U32(), remotePort: dstPort, localPort: h.allocPort()}
	c := &Conn{
		host:      h,
		key:       key,
		remoteIP:  dstIP,
		state:     stateSynSent,
		FlowID:    flowID,
		iss:       h.rng.Uint32(),
		flowSize:  size,
		cwnd:      float64(h.cfg.InitialCwndSegments * h.cfg.MSS),
		ssthresh:  1 << 60,
		recover64: -1, // allow the first fast-retransmit at offset 0
		rto:       h.cfg.InitialRTO,
		StartedAt: now,
		synSentAt: now,
	}
	c.rtoH.c = c
	c.delackH.c = c
	c.probeH.c = c
	h.conns[key] = c
	c.emitSyn(now)
	c.armRTO(now)
	return c, nil
}

// acceptConn creates the passive side in response to a SYN.
func (h *Host) acceptConn(now units.Time, key connKey, syn *sim.Packet) *Conn {
	c := &Conn{
		host:      h,
		key:       key,
		remoteIP:  syn.SrcIP,
		state:     stateSynRcvd,
		FlowID:    syn.FlowID,
		iss:       h.rng.Uint32(),
		remoteISS: syn.Seq,
		ssthresh:  1 << 60,
		rto:       h.cfg.InitialRTO,
		StartedAt: now,
	}
	c.rtoH.c = c
	c.delackH.c = c
	c.probeH.c = c
	// The receiver learns the sender's MAC from the SYN so ACKs can flow
	// even without a pre-installed neighbor entry.
	if _, ok := h.LookupNeighbor(syn.SrcIP); !ok {
		h.SetNeighbor(syn.SrcIP, syn.SrcMAC)
	}
	h.conns[key] = c
	return c
}

// --- accessors used by labs and experiments ---

// LocalPort returns the connection's local port.
func (c *Conn) LocalPort() uint16 { return c.key.localPort }

// RemotePort returns the connection's remote port.
func (c *Conn) RemotePort() uint16 { return c.key.remotePort }

// FlowKey returns the 5-tuple in the sender->receiver direction.
func (c *Conn) FlowKey() packet.FlowKey {
	return packet.FlowKey{
		SrcIP: c.host.ip, DstIP: c.remoteIP,
		SrcPort: c.key.localPort, DstPort: c.key.remotePort,
		Proto: packet.IPProtocolTCP,
	}
}

// BytesAcked returns the sender's cumulative acknowledged payload bytes.
func (c *Conn) BytesAcked() int64 { return c.una64 }

// BytesReceived returns the receiver's in-order payload byte count.
func (c *Conn) BytesReceived() int64 { return c.rcv64 }

// FlowSize returns the transfer size.
func (c *Conn) FlowSize() int64 { return c.flowSize }

// Cwnd returns the current congestion window in bytes.
func (c *Conn) Cwnd() float64 { return c.cwnd }

// SRTT returns the smoothed RTT estimate.
func (c *Conn) SRTT() units.Duration { return units.Duration(c.srtt) }

// Duration returns the flow completion time, valid once Completed.
func (c *Conn) Duration() units.Duration { return c.CompletedAt.Sub(c.StartedAt) }

// Goodput returns the flow's average goodput, valid once Completed.
func (c *Conn) Goodput() units.Rate { return units.RateOf(c.flowSize, c.Duration()) }

// --- segment emission ---

func (c *Conn) lookupDstMAC() (packet.MAC, bool) {
	return c.host.LookupNeighbor(c.remoteIP)
}

func (c *Conn) newSegment(flags uint8, seq, ack uint32, payload int) *sim.Packet {
	pkt := c.host.eng.NewPacket()
	pkt.Kind = sim.KindTCP
	pkt.SrcMAC = c.host.mac
	dst, ok := c.lookupDstMAC()
	if !ok {
		// Without a neighbor entry the segment is unroutable; emit to the
		// broadcast MAC so switches drop it (table miss) — mirrors a real
		// stack blocking on ARP, which cannot happen with pre-populated
		// caches.
		dst = packet.BroadcastMAC
	}
	pkt.DstMAC = dst
	pkt.SrcIP = c.host.ip
	pkt.DstIP = c.remoteIP
	pkt.SrcPort = c.key.localPort
	pkt.DstPort = c.key.remotePort
	pkt.Seq = seq
	pkt.Ack = ack
	pkt.TCPFlags = flags
	pkt.PayloadLen = payload
	pkt.WireLen = payload + sim.TCPHeaderBytes
	pkt.FlowID = c.FlowID
	return pkt
}

func (c *Conn) emitSyn(now units.Time) {
	pkt := c.newSegment(packet.TCPSyn, c.iss, 0, 0)
	c.host.sendPacket(now, pkt)
}

func (c *Conn) emitSynAck(now units.Time) {
	pkt := c.newSegment(packet.TCPSyn|packet.TCPAck, c.iss, c.remoteISS+1, 0)
	c.host.sendPacket(now, pkt)
}

// seqForOff maps a payload offset to a wire sequence number (SYN takes 1).
func (c *Conn) seqForOff(off int64) uint32 { return c.iss + 1 + uint32(uint64(off)) }

// ackSeq is the cumulative ACK we advertise to the peer; a received FIN
// occupies one sequence number.
func (c *Conn) ackSeq() uint32 {
	ack := c.remoteISS + 1 + uint32(uint64(c.rcv64))
	if c.finRcvd {
		ack++
	}
	return ack
}

func (c *Conn) emitData(now units.Time, off int64, n int) {
	pkt := c.newSegment(packet.TCPAck, c.seqForOff(off), c.ackSeq(), n)
	c.host.sendPacket(now, pkt)
}

func (c *Conn) emitAck(now units.Time) {
	pkt := c.newSegment(packet.TCPAck, c.seqForOff(c.nxt64), c.ackSeq(), 0)
	c.attachSACK(pkt)
	c.host.sendPacket(now, pkt)
	c.delackCount = 0
	c.cancelDelack()
}

// attachSACK advertises the receiver's out-of-order spans, most recently
// updated first.
func (c *Conn) attachSACK(pkt *sim.Packet) {
	if len(c.ooo) == 0 {
		return
	}
	base := c.remoteISS + 1
	pkt.SACK = make([]sim.SackBlock, 0, len(c.ooo))
	for i := len(c.ooo) - 1; i >= 0; i-- {
		s := c.ooo[i]
		pkt.SACK = append(pkt.SACK, sim.SackBlock{
			Start: base + uint32(uint64(s.start)),
			End:   base + uint32(uint64(s.end)),
		})
	}
}

// --- sender machinery ---

func (c *Conn) mss() int      { return c.host.cfg.MSS }
func (c *Conn) mssF() float64 { return float64(c.host.cfg.MSS) }

func (c *Conn) inflight() int64 { return c.nxt64 - c.una64 }

func (c *Conn) window() int64 {
	w := int64(c.cwnd)
	if w > c.host.cfg.RWnd {
		w = c.host.cfg.RWnd
	}
	return w
}

// trySend transmits as much data as the window allows. During loss
// recovery no new data is sent — recovery is driven by retransmitHoles.
// After a timeout, nxt64 has been pulled back to una64 (go-back-N) and
// this loop re-sends, skipping spans the SACK scoreboard shows the
// receiver already holds.
func (c *Conn) trySend(now units.Time) {
	if c.state != stateEstablished || c.inRecov {
		return
	}
	sent := false
	for c.nxt64 < c.flowSize && !c.host.txBacklogFull() {
		// Skip data the receiver has SACKed.
		if end, ok := c.sackCovering(c.nxt64); ok {
			c.nxt64 = end
			continue
		}
		n := c.flowSize - c.nxt64
		if n > int64(c.mss()) {
			n = int64(c.mss())
		}
		// Do not transmit past the start of a SACKed span.
		if next := c.nextSackStart(c.nxt64); next >= 0 && c.nxt64+n > next {
			n = next - c.nxt64
		}
		if c.inflight()+n > c.window() {
			break
		}
		if !c.timedValid && c.nxt64 >= c.rtxBarrier {
			c.timedOff = c.nxt64 + n
			c.timedAt = now
			c.timedValid = true
		}
		c.emitData(now, c.nxt64, int(n))
		c.nxt64 += n
		sent = true
	}
	if sent && c.rtoEv == nil {
		c.armRTO(now)
	}
}

// --- SACK scoreboard (sender side) ---

// addSpan merges [start, end) into a sorted, disjoint span list.
func addSpan(spans []span, start, end int64) []span {
	if end <= start {
		return spans
	}
	// Locate the run of spans [i, j) that overlap or touch the new span
	// and absorb them into it.
	i := 0
	for i < len(spans) && spans[i].end < start {
		i++
	}
	j := i
	for j < len(spans) && spans[j].start <= end {
		if spans[j].start < start {
			start = spans[j].start
		}
		if spans[j].end > end {
			end = spans[j].end
		}
		j++
	}
	if i == j {
		// Pure insertion at i.
		spans = append(spans, span{})
		copy(spans[i+1:], spans[i:])
		spans[i] = span{start, end}
		return spans
	}
	spans[i] = span{start, end}
	return append(spans[:i+1], spans[j:]...)
}

// pruneSpans drops spans at or below floor.
func pruneSpans(spans []span, floor int64) []span {
	out := spans[:0]
	for _, s := range spans {
		if s.end > floor {
			if s.start < floor {
				s.start = floor
			}
			out = append(out, s)
		}
	}
	return out
}

// addSack merges [start, end) into the SACK scoreboard.
func (c *Conn) addSack(start, end int64) {
	if end <= c.una64 {
		return
	}
	if start < c.una64 {
		start = c.una64
	}
	c.sacked = addSpan(c.sacked, start, end)
}

// pruneSack drops scoreboard state at or below una.
func (c *Conn) pruneSack() {
	c.sacked = pruneSpans(c.sacked, c.una64)
	out := c.rtxDone[:0]
	for _, s := range c.rtxDone {
		if s.end > c.una64 {
			out = append(out, s)
		}
	}
	c.rtxDone = out
}

// sackCovering reports whether off falls inside a SACKed span, returning
// the span's end.
func (c *Conn) sackCovering(off int64) (int64, bool) {
	return spanCovering(c.sacked, off)
}

// sackedBytes totals the scoreboard coverage above una.
func (c *Conn) sackedBytes() int64 {
	var n int64
	for _, s := range c.sacked {
		n += s.end - s.start
	}
	return n
}

// nextSackStart returns the start of the first SACKed span strictly above
// off, or -1.
func (c *Conn) nextSackStart(off int64) int64 {
	for _, s := range c.sacked {
		if s.start > off {
			return s.start
		}
	}
	return -1
}

// emitRetransmit resends one segment at off, bounded by the next SACKed
// span, and returns the bytes sent.
func (c *Conn) emitRetransmit(now units.Time, off int64) int64 {
	if off >= c.flowSize {
		return 0 // the slot past the payload is the FIN, not data
	}
	n := c.nxt64 - off
	if n > c.flowSize-off {
		n = c.flowSize - off
	}
	if n > int64(c.mss()) {
		n = int64(c.mss())
	}
	if next := c.nextSackStart(off); next >= 0 && off+n > next {
		n = next - off
	}
	if n <= 0 {
		return 0
	}
	c.Retransmits++
	c.timedValid = false // Karn
	c.emitData(now, off, int(n))
	return n
}

// reoWnd is the RACK-style reordering window: a retransmission older than
// this is presumed lost and eligible to be sent again. SRTT freezes
// during recovery (Karn's rule) while the true path RTT inflates with
// queueing, so the floor must cover several milliseconds of switch
// buffering or the sender re-sends in-flight retransmissions in waves.
func (c *Conn) reoWnd() units.Duration {
	return units.Duration(maxF(2*c.srtt, float64(6*units.Millisecond)))
}

// nextHole returns the lowest offset at or above from that is neither
// SACKed nor covered by a fresh retransmission, or -1 when the loss
// window is fully covered.
func (c *Conn) nextHole(now units.Time, from int64) int64 {
	off := from
	horizon := now.Add(-c.reoWnd())
	for off < c.recover64 && off < c.nxt64 {
		if end, ok := spanCovering(c.sacked, off); ok {
			off = end
			continue
		}
		if end, ok := c.rtxCovering(off, horizon); ok {
			off = end
			continue
		}
		return off
	}
	return -1
}

// rtxCovering reports whether off is covered by a retransmission sent
// after horizon.
func (c *Conn) rtxCovering(off int64, horizon units.Time) (int64, bool) {
	for _, s := range c.rtxDone {
		if s.start <= off && off < s.end && s.at.After(horizon) {
			return s.end, true
		}
	}
	return 0, false
}

// markRtx records a retransmission of [start, end) at time now, replacing
// any older overlapping records.
func (c *Conn) markRtx(start, end int64, now units.Time) {
	out := c.rtxDone[:0]
	for _, s := range c.rtxDone {
		if s.end <= start || s.start >= end {
			out = append(out, s)
		}
	}
	c.rtxDone = append(out, spanAt{start: start, end: end, at: now})
}

// spanCovering reports whether off falls inside one of the sorted spans,
// returning that span's end.
func spanCovering(spans []span, off int64) (int64, bool) {
	for _, s := range spans {
		if s.start > off {
			return 0, false
		}
		if off < s.end {
			return s.end, true
		}
	}
	return 0, false
}

// recoverySend drives loss recovery, a simplified RFC 6675:
// retransmissions are ACK-clocked — every arriving ACK (duplicate or
// partial) grants a budget of segments — and always target the lowest
// hole above the cumulative ACK that has not been retransmitted this
// episode (the scoreboard's "retransmitted" bit, held in rtxDone). Two
// safety valves cover what pure ACK clocking cannot: a head-rescue timer
// re-sends the leading hole when it has been outstanding longer than
// ~SRTT (its retransmission was itself dropped), and the loss window is
// re-swept once per cumulative advance.
func (c *Conn) recoverySend(now units.Time, budget int) {
	for budget > 0 && !c.host.txBacklogFull() {
		off := c.nextHole(now, c.una64)
		if off < 0 {
			break
		}
		n := c.emitRetransmit(now, off)
		if n <= 0 {
			break
		}
		c.markRtx(off, off+n, now)
		budget--
	}
	c.armProbe(now)
}

// armProbe schedules a recovery probe one reordering window out. It fires
// only if the connection is still in recovery, re-driving recoverySend
// when incoming ACKs have dried up (every outstanding retransmission was
// lost) — the intermediate backstop between ACK clocking and the RTO.
func (c *Conn) armProbe(now units.Time) {
	if !c.inRecov {
		return
	}
	c.cancelProbe()
	c.probeEv = c.host.eng.After(c.reoWnd()+units.Duration(500*units.Microsecond), &c.probeH, nil)
}

func (c *Conn) cancelProbe() {
	if c.probeEv != nil {
		c.host.eng.Cancel(c.probeEv)
		c.probeEv = nil
	}
}

// Handle implements sim.Handler: the recovery probe fired.
func (p *probeHandler) Handle(now units.Time, _ *sim.Packet) {
	c := p.c
	c.probeEv = nil
	if !c.inRecov {
		return
	}
	c.recoverySend(now, 2)
}

func (c *Conn) armRTO(now units.Time) {
	c.cancelRTO()
	c.rtoEv = c.host.eng.After(c.rto, &c.rtoH, nil)
}

func (c *Conn) cancelRTO() {
	if c.rtoEv != nil {
		c.host.eng.Cancel(c.rtoEv)
		c.rtoEv = nil
	}
}

// Handle implements sim.Handler: retransmission timeout.
func (r *rtoHandler) Handle(now units.Time, _ *sim.Packet) {
	c := r.c
	c.rtoEv = nil
	switch c.state {
	case stateSynSent:
		c.synRetried = true
		c.Timeouts++
		c.emitSyn(now)
		c.backoffRTO()
		c.armRTO(now)
	case stateEstablished:
		if c.inflight() <= 0 {
			return
		}
		if c.finSent && c.una64 >= c.flowSize {
			// Only the FIN is outstanding: resend it.
			c.Timeouts++
			pkt := c.newSegment(packet.TCPFin|packet.TCPAck, c.seqForOff(c.flowSize), c.ackSeq(), 0)
			c.host.sendPacket(now, pkt)
			c.backoffRTO()
			c.armRTO(now)
			return
		}
		c.Timeouts++
		// RFC 5681 timeout response: collapse to one segment, re-enter
		// slow start, back off the timer, and go-back-N — pull the send
		// cursor back to the left window edge so trySend re-sends
		// everything unSACKed (real stacks mark all outstanding data
		// lost on RTO).
		c.ssthresh = c.lossReduction()
		c.cwnd = c.mssF()
		c.inRecov = false
		c.cancelProbe()
		c.dupacks = 0
		if c.nxt64 > c.rtxBarrier {
			c.rtxBarrier = c.nxt64
		}
		c.nxt64 = c.una64
		c.timedValid = false
		c.backoffRTO()
		c.trySend(now)
		c.armRTO(now)
	}
}

func (c *Conn) backoffRTO() {
	c.rto *= 2
	if max := 60 * units.Second; c.rto > max {
		c.rto = max
	}
}

// sampleRTT folds a measurement into SRTT/RTTVAR per RFC 6298.
func (c *Conn) sampleRTT(r units.Duration) {
	m := float64(r)
	if c.srtt == 0 {
		c.srtt = m
		c.rttvar = m / 2
	} else {
		d := c.srtt - m
		if d < 0 {
			d = -d
		}
		c.rttvar = 0.75*c.rttvar + 0.25*d
		c.srtt = 0.875*c.srtt + 0.125*m
	}
	rto := units.Duration(c.srtt + maxF(float64(units.Millisecond), 4*c.rttvar))
	if rto < c.host.cfg.MinRTO {
		rto = c.host.cfg.MinRTO
	}
	c.rto = rto
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// --- inbound segment processing ---

func (c *Conn) segmentArrived(now units.Time, pkt *sim.Packet) {
	switch c.state {
	case stateSynSent:
		if pkt.TCPFlags&(packet.TCPSyn|packet.TCPAck) == packet.TCPSyn|packet.TCPAck &&
			pkt.Ack == c.iss+1 {
			c.remoteISS = pkt.Seq
			c.state = stateEstablished
			c.cancelRTO()
			if !c.synRetried {
				c.sampleRTT(now.Sub(c.synSentAt))
			}
			if c.flowSize > 0 {
				c.trySend(now)
			} else {
				c.emitAck(now)
			}
			if c.flowSize == 0 {
				c.complete(now)
			}
		}
		return
	case stateSynRcvd:
		if pkt.TCPFlags&packet.TCPSyn != 0 && pkt.TCPFlags&packet.TCPAck == 0 {
			// Duplicate SYN: our SYN-ACK was lost; resend.
			c.emitSynAck(now)
			return
		}
		if pkt.TCPFlags&packet.TCPAck != 0 && pkt.Ack == c.iss+1 {
			c.state = stateEstablished
			// Fall through to process any piggybacked data.
		} else {
			return
		}
	}

	if pkt.TCPFlags&packet.TCPSyn != 0 {
		if pkt.TCPFlags&packet.TCPAck == 0 && c.state == stateSynRcvd {
			c.emitSynAck(now)
		}
		return
	}

	if pkt.TCPFlags&packet.TCPAck != 0 && c.flowSize > 0 {
		c.processAck(now, pkt)
	}
	if pkt.PayloadLen > 0 {
		c.processData(now, pkt)
	}
	if pkt.TCPFlags&packet.TCPFin != 0 && !c.finRcvd {
		// Accept the FIN only once all payload before it has arrived.
		base := c.remoteISS + 1
		finOff := c.rcv64 + int64(int32(pkt.Seq-(base+uint32(uint64(c.rcv64)))))
		if finOff <= c.rcv64 {
			c.finRcvd = true
			c.emitAck(now)
		}
	}
}

// processAck drives the SACK-based sender (a simplified RFC 6675: fast
// retransmit entry on three duplicate ACKs, then ACK-clocked hole
// retransmission guided by the scoreboard).
func (c *Conn) processAck(now units.Time, pkt *sim.Packet) {
	// Fold in any SACK blocks, translating wire sequence numbers to
	// 64-bit payload offsets relative to the left window edge. Whether
	// the blocks taught us anything decides below if a duplicate ACK
	// counts toward fast retransmit (RFC 6675): re-ACKs triggered by our
	// own duplicate retransmissions carry no new SACK information and
	// must not re-arm recovery, or reroute-induced reordering degrades
	// into a self-sustaining retransmission loop.
	before := c.sackedBytes()
	for _, b := range pkt.SACK {
		start := c.una64 + int64(int32(b.Start-c.seqForOff(c.una64)))
		end := start + int64(int32(b.End-b.Start))
		c.addSack(start, end)
	}
	sackGrew := c.sackedBytes() > before

	// Translate the 32-bit cumulative ACK into a 64-bit payload offset.
	delta := int32(pkt.Ack - c.seqForOff(c.una64))
	switch {
	case delta > 0:
		acked := int64(delta)
		if c.una64+acked > c.nxt64 {
			acked = c.nxt64 - c.una64 // ACK beyond what we sent: clamp
			if acked <= 0 {
				return
			}
		}
		c.una64 += acked
		c.pruneSack()
		c.dupacks = 0
		if c.timedValid && c.una64 >= c.timedOff {
			c.sampleRTT(now.Sub(c.timedAt))
			c.timedValid = false
		}
		if c.inRecov {
			if c.una64 >= c.recover64 {
				// Full acknowledgment: leave recovery.
				c.inRecov = false
				c.cancelProbe()
				c.sacked = c.sacked[:0]
				c.rtxDone = c.rtxDone[:0]
				c.cwnd = c.ssthresh
			} else {
				// Partial ACK: grant a budget proportional to the data
				// that left the network so hole-filling ramps up.
				budget := int(acked/int64(c.mss())) + 1
				if budget > 8 {
					budget = 8
				}
				c.recoverySend(now, budget)
			}
		} else if c.cwnd < c.ssthresh {
			// Slow start with appropriate byte counting (RFC 3465, L=2).
			inc := float64(acked)
			if lim := 2 * c.mssF(); inc > lim {
				inc = lim
			}
			c.cwnd += inc
		} else {
			c.congestionAvoidance(now)
		}
		if c.inflight() > 0 {
			c.armRTO(now)
		} else {
			c.cancelRTO()
		}
		if !c.Completed && c.una64 >= c.flowSize {
			c.complete(now)
		}
		c.trySend(now)

	case delta == 0 && c.inflight() > 0:
		if !sackGrew {
			return // no new information: not a loss indication
		}
		c.dupacks++
		if c.inRecov {
			// Each duplicate ACK signals a packet left the network.
			c.recoverySend(now, 1)
		} else if c.dupacks >= 3 && c.una64 >= c.recover64 {
			// The recover64 guard (RFC 6582) stops stale duplicate ACKs
			// from the previous loss window re-triggering recovery and
			// collapsing ssthresh repeatedly. recover64 is one past the
			// highest offset sent at the last loss, so una64 equal to it
			// means the old window is fully acknowledged and new duplicate
			// ACKs must concern fresh data.
			c.ssthresh = c.lossReduction()
			c.recover64 = c.nxt64
			c.inRecov = true
			c.cwnd = c.ssthresh
			c.rtxDone = c.rtxDone[:0]
			c.recoverySend(now, 3)
			c.armRTO(now)
		}
	}
}

// processData drives the receiver: in-order delivery, out-of-order
// buffering with dup-ACKs, and delayed ACKs.
func (c *Conn) processData(now units.Time, pkt *sim.Packet) {
	base := c.remoteISS + 1
	off := c.rcv64 + int64(int32(pkt.Seq-(base+uint32(uint64(c.rcv64)))))
	end := off + int64(pkt.PayloadLen)

	switch {
	case off <= c.rcv64 && end > c.rcv64:
		// In-order (possibly partially duplicate) data.
		c.rcv64 = end
		c.drainOOO()
		c.delackCount++
		// A sub-MSS segment usually ends a send burst; acknowledging it
		// immediately avoids stranding flow tails on the delack timer.
		if c.delackCount >= c.host.cfg.DelAckSegments || len(c.ooo) > 0 ||
			pkt.PayloadLen < c.mss() {
			c.emitAck(now)
		} else {
			c.armDelack(now)
		}
	case end <= c.rcv64:
		// Entirely old (a retransmission we already have): re-ACK now.
		c.emitAck(now)
	default:
		// A hole precedes this segment: buffer and dup-ACK immediately.
		c.insertOOO(off, end)
		c.emitAck(now)
	}
}

// insertOOO records an out-of-order segment. The touched span moves to
// the back of the list so attachSACK can report the most recently updated
// blocks first, as RFC 2018 requires — without this, a sender facing more
// holes than three SACK blocks can describe never learns most of them.
func (c *Conn) insertOOO(start, end int64) {
	for i := range c.ooo {
		s := c.ooo[i]
		if start <= s.end && end >= s.start {
			if start < s.start {
				s.start = start
			}
			if end > s.end {
				s.end = end
			}
			c.ooo = append(c.ooo[:i], c.ooo[i+1:]...)
			c.ooo = append(c.ooo, s)
			return
		}
	}
	c.ooo = append(c.ooo, span{start, end})
}

func (c *Conn) drainOOO() {
	changed := true
	for changed {
		changed = false
		for i := 0; i < len(c.ooo); i++ {
			s := c.ooo[i]
			if s.start <= c.rcv64 {
				if s.end > c.rcv64 {
					c.rcv64 = s.end
				}
				c.ooo[i] = c.ooo[len(c.ooo)-1]
				c.ooo = c.ooo[:len(c.ooo)-1]
				changed = true
				i--
			}
		}
	}
}

func (c *Conn) armDelack(now units.Time) {
	if c.delackEv == nil {
		c.delackEv = c.host.eng.After(c.host.cfg.DelAckTimeout, &c.delackH, nil)
	}
}

func (c *Conn) cancelDelack() {
	if c.delackEv != nil {
		c.host.eng.Cancel(c.delackEv)
		c.delackEv = nil
	}
}

// Handle implements sim.Handler: the delayed-ACK timer fired.
func (d *delackHandler) Handle(now units.Time, _ *sim.Packet) {
	c := d.c
	c.delackEv = nil
	if c.delackCount > 0 {
		c.emitAck(now)
	}
}

// CUBIC constants (RFC 8312).
const (
	cubicC    = 0.4
	cubicBeta = 0.7
)

// lossReduction computes the new ssthresh on a loss event and records
// the CUBIC epoch state. Under Reno it is the classic halving.
func (c *Conn) lossReduction() float64 {
	inflight := maxF(float64(c.inflight()), c.mssF())
	if c.host.cfg.CongestionControl != "cubic" {
		return maxF(inflight/2, 2*c.mssF())
	}
	// Fast convergence: if this loss came below the previous wMax, the
	// flow is ceding bandwidth; remember a slightly lower ceiling.
	w := maxF(c.cwnd, inflight)
	if w < c.wMax {
		c.wMax = w * (2 - cubicBeta) / 2
	} else {
		c.wMax = w
	}
	c.epochStart = 0 // new epoch starts at the next CA ACK
	return maxF(w*cubicBeta, 2*c.mssF())
}

// congestionAvoidance grows cwnd per ACK: CUBIC window curve with the
// TCP-friendly (Reno-equivalent) floor, or plain Reno when configured.
func (c *Conn) congestionAvoidance(now units.Time) {
	mss := c.mssF()
	if c.host.cfg.CongestionControl != "cubic" {
		c.cwnd += mss * mss / c.cwnd
		return
	}
	rtt := c.srtt / float64(units.Second) // seconds
	if rtt <= 0 {
		rtt = 200e-6
	}
	if c.epochStart == 0 {
		c.epochStart = now
		if c.wMax < c.cwnd {
			c.wMax = c.cwnd
		}
		// K = cbrt(Wmax*(1-beta)/C), with windows in segments.
		c.kCubic = math.Cbrt(c.wMax / mss * (1 - cubicBeta) / cubicC)
	}
	t := now.Sub(c.epochStart).Seconds() + rtt // project one RTT ahead
	dt := t - c.kCubic
	targetSeg := cubicC*dt*dt*dt + c.wMax/mss
	target := targetSeg * mss
	// RFC 8312 caps the per-RTT ramp at 1.5x the current window.
	if target > 1.5*c.cwnd {
		target = 1.5 * c.cwnd
	}
	// TCP-friendly region: never slower than an AIMD flow with the same
	// loss history (RFC 8312 §4.2).
	tcpFriendly := c.wMax*cubicBeta + 3*(1-cubicBeta)/(1+cubicBeta)*(t/rtt)*mss
	if target < tcpFriendly {
		target = tcpFriendly
	}
	if target > c.cwnd {
		c.cwnd += (target - c.cwnd) / (c.cwnd / mss)
	} else {
		// Below the curve: creep forward slowly (RFC: 1% of cwnd per RTT
		// scale); approximate with a tiny per-ACK increment.
		c.cwnd += mss * mss / (100 * c.cwnd)
	}
}

func (c *Conn) complete(now units.Time) {
	c.Completed = true
	c.CompletedAt = now
	c.cancelRTO()
	if c.OnComplete != nil {
		c.OnComplete(now, c)
	}
	c.sendFin(now)
}

// sendFin closes the transfer direction: the FIN consumes one sequence
// number past the payload, so nxt64 advances and the normal ACK/RTO
// machinery covers its delivery.
func (c *Conn) sendFin(now units.Time) {
	if c.finSent || c.flowSize == 0 {
		return
	}
	c.finSent = true
	pkt := c.newSegment(packet.TCPFin|packet.TCPAck, c.seqForOff(c.flowSize), c.ackSeq(), 0)
	c.host.sendPacket(now, pkt)
	c.nxt64 = c.flowSize + 1
	c.armRTO(now)
}
