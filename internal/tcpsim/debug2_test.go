package tcpsim

import (
	"testing"

	"planck/internal/sim"
	"planck/internal/switchsim"
	"planck/internal/units"
)

func TestDebugTwoFlows(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("diagnostic only")
	}
	cfg := switchsim.ProfileG8264("sw", 0)
	eng, hosts, sw := switched(t, 3, cfg)
	c1, _ := hosts[0].StartFlow(0, ip(3), 5001, 64<<20, 1)
	c2, _ := hosts[1].StartFlow(0, ip(3), 5002, 64<<20, 2)
	var last1, last2 int64
	sim.NewTicker(eng, units.Duration(10*units.Millisecond), func(now units.Time) {
		d1, d2 := c1.una64-last1, c2.una64-last2
		last1, last2 = c1.una64, c2.una64
		t.Logf("t=%v r1=%.2fG r2=%.2fG rec1=%v rtx=%d/%d una1=%d rtxNext=%d recover=%d nsack=%d sack0=%v inflight=%d backlog=%d q=%.2fM drops=%d",
			now, float64(d1)*8/1e7, float64(d2)*8/1e7,
			c1.inRecov, c1.Retransmits, c2.Retransmits,
			c1.una64, int64(len(c1.rtxDone)), c1.recover64, len(c1.sacked), first(c1.sacked),
			c1.inflight(), hosts[0].txBacklog,
			float64(sw.QueueBytes(2))/1e6, sw.DataDropped.Packets)
	})
	eng.RunUntil(units.Time(250 * units.Millisecond))
	t.Logf("done1=%v done2=%v", c1.Completed, c2.Completed)
}

func first(s []span) span {
	if len(s) == 0 {
		return span{}
	}
	return s[0]
}
