package lab

import (
	"fmt"
	"reflect"
	"testing"

	"planck/internal/core"
	"planck/internal/sim"
	"planck/internal/topo"
	"planck/internal/units"
)

// Fleet chaos: crash a vantage collector mid-run under supervision and
// require graceful degradation instead of corruption. Two hot spots
// (one per side of the fat tree) keep two edge links congested for the
// whole run; the victim's collector is crashed while both are firing.
//
// Degradation contract:
//   - the plane flags the dead vantage stale while it is dark, and
//     unflags it after the supervised restart;
//   - the merger's plane-owned cooldown anchors survive the restart, so
//     no link's event stream ever violates cooldown spacing — a
//     restarted collector replaying hot links cannot duplicate events;
//   - vantages on other switches are unaffected: their merged event
//     streams are identical to the fault-free run's;
//   - the victim resumes reporting after restart (fresh events appear).
func TestFleetChaosCrashRestart(t *testing.T) {
	const (
		crashAt = 21 * units.Millisecond
		probeAt = 24 * units.Millisecond // after StaleAfter, before the 25ms restart tick
		runFor  = 80 * units.Millisecond
	)

	type result struct {
		events      []core.CongestionEvent
		victim      int
		victimName  string
		staleAtPro  int  // stale vantages at the mid-crash probe
		victimStale bool // victim flagged stale at the probe
		restarts    int64
		staleEnd    int  // stale vantages at end of run (idle switches count)
		victimEnd   bool // victim still stale at end of run
	}

	run := func(crash bool) result {
		net := topo.FatTree16(units.Rate10G)
		l, err := New(Options{
			Net:       net,
			Mirror:    true,
			Aggregate: true,
			Supervise: true,
			// Slow the supervision tick so the crash leaves a well-defined
			// dark window (crash at 21ms, restart at the 25ms tick) that
			// the staleness probe can land inside deterministically.
			SupervisorConfig: SupervisorConfig{
				Heartbeat: core.HeartbeatConfig{Interval: 5 * units.Millisecond},
			},
			Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		res := result{victim: net.Hosts[4].Switch}
		res.victimName = net.SwitchNames[res.victim]
		l.Ctrl.Subscribe(func(ev core.CongestionEvent) {
			res.events = append(res.events, ev)
		})

		// Hot spot A: pod-0 hosts converge on host 4 (pod 1) — the victim
		// switch's egress link. Hot spot B: pod-2 hosts converge on host
		// 12 (pod 3), untouched by the crash. 40 MiB flows outlast the run.
		for i := 0; i < 4; i++ {
			if _, err := l.Hosts[i].StartFlow(0, topo.HostIP(4), uint16(5001+i), 40<<20, int32(1+i)); err != nil {
				t.Fatal(err)
			}
			if _, err := l.Hosts[8+i].StartFlow(0, topo.HostIP(12), uint16(6001+i), 40<<20, int32(9+i)); err != nil {
				t.Fatal(err)
			}
		}

		if crash {
			node := l.Collectors[res.victim]
			l.Eng.Schedule(units.Time(crashAt), sim.Callback(node.Crash), nil)
			l.Eng.Schedule(units.Time(probeAt), sim.Callback(func(units.Time) {
				res.staleAtPro = len(l.Agg.StaleVantages())
				res.victimStale = l.Vantage(res.victim).Stale()
			}), nil)
		}
		l.Run(runFor)
		res.restarts = l.Vantage(res.victim).Restarts()
		res.staleEnd = len(l.Agg.StaleVantages())
		res.victimEnd = l.Vantage(res.victim).Stale()
		return res
	}

	clean := run(false)
	if len(clean.events) == 0 {
		t.Fatal("fault-free fleet run produced no congestion events; chaos run would be vacuous")
	}
	victimEvents := 0
	for _, ev := range clean.events {
		if ev.SwitchName == clean.victimName {
			victimEvents++
		}
	}
	if victimEvents == 0 {
		t.Fatalf("fault-free run has no events on victim %s", clean.victimName)
	}

	chaos := run(true)

	// Stale-vantage flagging: dark during the window, recovered by the end.
	if !chaos.victimStale {
		t.Error("victim vantage not flagged stale during the crash window")
	}
	if chaos.staleAtPro == 0 {
		t.Error("plane reported no stale vantages mid-crash")
	}
	if chaos.restarts < 1 {
		t.Errorf("victim vantage recorded %d restarts, want >= 1", chaos.restarts)
	}
	// Idle switches (no traffic crosses them) are legitimately stale in
	// both runs; the crash must not add to that set once restarted.
	if chaos.victimEnd {
		t.Error("victim vantage still stale at end of run; restart did not recover the feed")
	}
	if chaos.staleEnd != clean.staleEnd {
		t.Errorf("stale vantages at end: %d under crash vs %d fault-free", chaos.staleEnd, clean.staleEnd)
	}

	// Cooldown coherence across the restart: no link's merged event
	// stream may ever fire twice inside the cooldown.
	cooldown := core.Config{}.WithDefaults().EventCooldown
	lastByLink := map[string]units.Time{}
	for _, ev := range chaos.events {
		link := fmt.Sprintf("%s/%d", ev.SwitchName, ev.Port)
		if last, ok := lastByLink[link]; ok {
			if gap := ev.Time.Sub(last); gap < cooldown {
				t.Fatalf("duplicate event on %s: spacing %v < cooldown %v (restart replay leaked through)", link, gap, cooldown)
			}
		}
		lastByLink[link] = ev.Time
	}

	// Collateral-damage check: switches other than the victim emit the
	// exact same merged stream whether or not the victim's collector
	// crashed (the crash is control-plane only; the data plane and every
	// other vantage are untouched).
	others := func(evs []core.CongestionEvent, victimName string) []string {
		var out []string
		for _, ev := range evs {
			if ev.SwitchName != victimName {
				out = append(out, fmt.Sprintf("t=%d %s port=%d util=%d", ev.Time, ev.SwitchName, ev.Port, ev.Util))
			}
		}
		return out
	}
	cleanOthers := others(clean.events, clean.victimName)
	chaosOthers := others(chaos.events, chaos.victimName)
	if len(cleanOthers) == 0 {
		t.Fatal("no events from non-victim switches; collateral check vacuous")
	}
	if !reflect.DeepEqual(chaosOthers, cleanOthers) {
		t.Errorf("non-victim event streams diverge under crash: %d vs %d events",
			len(chaosOthers), len(cleanOthers))
	}

	// The victim's feed resumes after the supervised restart.
	resumed := 0
	for _, ev := range chaos.events {
		if ev.SwitchName == chaos.victimName && ev.Time > units.Time(crashAt)+units.Time(10*units.Millisecond) {
			resumed++
		}
	}
	if resumed == 0 {
		t.Error("victim emitted no events after restart; feed never recovered")
	}
}
