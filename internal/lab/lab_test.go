package lab

import (
	"testing"

	"planck/internal/core"
	"planck/internal/packet"
	"planck/internal/topo"
	"planck/internal/units"
)

func TestSingleSwitchTestbed(t *testing.T) {
	net := topo.SingleSwitch("sw0", 4, units.Rate10G, true)
	l, err := New(Options{Net: net, Mirror: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	c, err := l.Hosts[0].StartFlow(0, topo.HostIP(1), 5001, 20<<20, 1)
	if err != nil {
		t.Fatal(err)
	}
	l.Run(500 * units.Millisecond)
	if !c.Completed {
		t.Fatalf("flow incomplete: %d acked", c.BytesAcked())
	}
	col := l.Collector(0)
	if col == nil {
		t.Fatal("no collector")
	}
	st := col.Stats()
	if st.Samples == 0 {
		t.Fatal("collector saw no samples")
	}
	// Undersubscribed mirror: every data packet (both directions) is
	// sampled.
	r, ok := col.FlowRate(c.FlowKey())
	if !ok {
		t.Fatal("flow not in collector table")
	}
	if g := r.Gigabits(); g < 0 {
		t.Fatalf("rate %v", g)
	}
	if l.Collectors[0].IngestErrors != 0 {
		t.Fatalf("ingest errors %d", l.Collectors[0].IngestErrors)
	}
}

// TestUndersubscribedSampleLatency reproduces §5.2: with light traffic
// (the mirror far below line rate), sample latency is 75–150 µs at
// 10 Gbps — dominated by the sender's kernel path and collector polling.
func TestUndersubscribedSampleLatency(t *testing.T) {
	net := topo.SingleSwitch("sw0", 4, units.Rate10G, true)
	l, err := New(Options{Net: net, Mirror: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Hosts[0].StartCBR(0, topo.HostIP(1), 7000, 1000, units.Rate(1*units.Gbps), 1); err != nil {
		t.Fatal(err)
	}
	l.Run(100 * units.Millisecond)
	node := l.Collectors[0]
	if node.SampleLatency.N() == 0 {
		t.Fatal("no latency samples")
	}
	med := node.SampleLatency.Median()
	if med < 60 || med > 200 {
		t.Fatalf("median sample latency %.1f µs, want ≈75–150", med)
	}
	if lo, hi := node.SampleLatency.Quantile(0.01), node.SampleLatency.Quantile(0.99); lo < 50 || hi > 250 {
		t.Fatalf("sample latency spread [%.0f, %.0f] µs", lo, hi)
	}
}

func TestFatTreeTestbedAllPairs(t *testing.T) {
	net := topo.FatTree16(units.Rate10G)
	l, err := New(Options{Net: net, Mirror: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// A handful of flows spanning intra-edge, intra-pod, and inter-pod
	// paths.
	pairs := [][2]int{{0, 8}, {3, 12}, {5, 14}, {9, 2}, {15, 0}, {0, 1}, {2, 3}}
	for i, p := range pairs {
		if _, err := l.Hosts[p[0]].StartFlow(0, topo.HostIP(p[1]), uint16(5001+i), 4<<20, int32(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Run(2 * units.Second)
	// All flows complete and every traversed switch's collector saw
	// samples.
	for h, host := range l.Hosts {
		for _, conn := range host.Conns() {
			if conn.FlowSize() > 0 && !conn.Completed {
				t.Fatalf("host %d flow incomplete (%d/%d)", h, conn.BytesAcked(), conn.FlowSize())
			}
		}
	}
	saw := 0
	for s := range l.Switches {
		if col := l.Collector(s); col != nil && col.Stats().Samples > 0 {
			saw++
		}
	}
	if saw < 5 {
		t.Fatalf("only %d collectors saw traffic", saw)
	}
}

func TestCongestionEventOnFatTree(t *testing.T) {
	net := topo.FatTree16(units.Rate10G)
	// Force both flows onto the same initial tree so they collide.
	trees := make([]int, 16)
	l, err := New(Options{Net: net, Mirror: true, Seed: 3, InitialTrees: trees})
	if err != nil {
		t.Fatal(err)
	}
	var events []core.CongestionEvent
	l.Ctrl.Subscribe(func(ev core.CongestionEvent) { events = append(events, ev) })
	// Hosts 0 and 4 both send to pod 2 via tree 0: they share the
	// agg->core->agg path segments.
	l.Hosts[0].StartFlow(0, topo.HostIP(8), 5001, 50<<20, 1)
	l.Hosts[4].StartFlow(0, topo.HostIP(9), 5002, 50<<20, 2)
	l.Run(200 * units.Millisecond)
	if len(events) == 0 {
		t.Fatal("no congestion events despite a shared core link")
	}
	ev := events[0]
	if len(ev.Flows) == 0 {
		t.Fatal("event carries no flow annotations")
	}
	// Detection should be fast: both flows start at ~0 and the first
	// event must arrive within a few ms (paper: first estimates within
	// one slow-start RTT once the link saturates).
	if ev.Time > units.Time(100*units.Millisecond) {
		t.Fatalf("first event at %v", ev.Time)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int64, int64, float64) {
		net := topo.FatTree16(units.Rate10G)
		l, err := New(Options{Net: net, Mirror: true, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		c1, _ := l.Hosts[0].StartFlow(0, topo.HostIP(8), 5001, 8<<20, 1)
		c2, _ := l.Hosts[1].StartFlow(0, topo.HostIP(9), 5002, 8<<20, 2)
		l.Run(300 * units.Millisecond)
		var samples int64
		for s := range l.Switches {
			if col := l.Collector(s); col != nil {
				samples += col.Stats().Samples
			}
		}
		return int64(c1.CompletedAt), samples, float64(c2.BytesAcked())
	}
	a1, a2, a3 := run()
	b1, b2, b3 := run()
	if a1 != b1 || a2 != b2 || a3 != b3 {
		t.Fatalf("nondeterministic: (%d,%d,%f) vs (%d,%d,%f)", a1, a2, a3, b1, b2, b3)
	}
}

// TestInSwitchCollectors exercises §9.2's in-switch collector proposal:
// identical flow visibility, but samples skip the monitor port entirely,
// so even a 3x-oversubscribed configuration shows only the processing
// overhead.
func TestInSwitchCollectors(t *testing.T) {
	net := topo.SingleSwitch("sw0", 6, units.Rate10G, true)
	l, err := New(Options{Net: net, Mirror: true, InSwitchCollectors: true, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Hosts[i].StartFlow(0, topo.HostIP(i+3), 5001, 1<<30, int32(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Run(100 * units.Millisecond)
	col := l.Collector(0)
	st := col.Stats()
	if st.Flows < 3 {
		t.Fatalf("flows %d", st.Flows)
	}
	// Every data packet is sampled (no mirror drops) and latency is just
	// the processing overhead (~85 µs) even at 3x offered load.
	node := l.Collectors[0]
	if med := node.SampleLatency.Median(); med > 150 {
		t.Fatalf("in-switch sample latency %.0f µs", med)
	}
	if l.Switches[0].MirrorDropped.Packets != 0 {
		t.Fatalf("in-switch mode dropped %d samples", l.Switches[0].MirrorDropped.Packets)
	}
}

// TestFlowBoundariesEndToEnd: a complete flow's SYN and FIN both reach
// the collector, giving the §9.2 flow-lifecycle visibility.
func TestFlowBoundariesEndToEnd(t *testing.T) {
	net := topo.SingleSwitch("sw0", 4, units.Rate10G, true)
	l, err := New(Options{Net: net, Mirror: true, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	var starts, ends int
	l.Collector(0).SubscribeFlowBoundaries(func(_ units.Time, _ packet.FlowKey, kind core.BoundaryKind) {
		if kind == core.FlowStart {
			starts++
		} else {
			ends++
		}
	})
	c, err := l.Hosts[0].StartFlow(0, topo.HostIP(1), 5001, 4<<20, 1)
	if err != nil {
		t.Fatal(err)
	}
	l.Run(200 * units.Millisecond)
	if !c.Completed {
		t.Fatal("flow incomplete")
	}
	if starts < 1 {
		t.Fatalf("starts %d", starts)
	}
	if ends < 1 {
		t.Fatalf("ends %d", ends)
	}
}
