// Package lab assembles complete simulated testbeds: a topology is
// instantiated into switches, hosts, monitor links, collector processes,
// and a controller, mirroring the paper's physical setup (§7.1) — IBM
// G8264-class switches, Linux hosts, one collector instance per monitor
// port, and a Floodlight-derived controller.
package lab

import (
	"fmt"
	"io"
	"math/rand"

	"planck/internal/agg"
	"planck/internal/controller"
	"planck/internal/core"
	"planck/internal/faults"
	"planck/internal/governor"
	"planck/internal/obs"
	"planck/internal/obs/trace"
	"planck/internal/sim"
	"planck/internal/switchsim"
	"planck/internal/tcpsim"
	"planck/internal/topo"
	"planck/internal/units"
	"planck/internal/vantagelink"
)

// Options configures a testbed build.
type Options struct {
	// Net is the topology (required).
	Net *topo.Network
	// SwitchConfig builds a switch profile given a name and port count.
	// Defaults to ProfileG8264 for 10G topologies and ProfilePronto3290
	// for 1G ones.
	SwitchConfig func(name string, ports int) switchsim.Config
	// HostConfig applies to all hosts (zero values take defaults).
	HostConfig tcpsim.Config
	// ControllerConfig tunes control-channel latencies.
	ControllerConfig controller.Config
	// CollectorConfig seeds collector thresholds; switch name, port
	// count, and link rate are filled per switch.
	CollectorConfig core.Config
	// Mirror enables oversubscribed mirroring and collectors.
	Mirror bool
	// CollectorShards, when > 0, runs each collector as a concurrent
	// sharded pipeline (core.NewSharded) with that many shards instead
	// of a serial core.Collector. Lab.Collector(s) returns nil for such
	// switches — use Lab.Collectors[s].Sharded(). The controller is not
	// attached (PlanckTE reroutes need the serial event path), so
	// subscribe on the sharded collector directly before Run.
	CollectorShards int
	// InSwitchCollectors realizes §9.2's in-switch collector proposal:
	// collectors consume samples at switching time through a data-plane
	// sink instead of a monitor port, so samples see no mirror buffering
	// and no front-panel port is spent. Requires Mirror.
	InSwitchCollectors bool
	// Aggregate runs the testbed as a collector fleet: every monitored
	// switch's collector becomes a vantage reporting into one federated
	// aggregation plane (internal/agg), and congestion events reach the
	// controller as the plane's merged, deduplicated, cooldown-coherent
	// network-wide stream instead of per-collector subscriptions.
	// Requires Mirror; incompatible with CollectorShards (the sample
	// sink is serial-only — the fleet shards across collectors instead).
	Aggregate bool
	// AggregateConfig tunes the plane; zero thresholds inherit
	// CollectorConfig's (defaulted) values so fleet and collectors agree
	// on what "congested" means, and Metrics/Tracer default to the
	// lab's.
	AggregateConfig agg.Config
	// Transport selects how vantage reports reach the aggregation
	// plane in fleet mode: synchronous in-process sink handoff
	// (TransportInProcess, the default) or the internal/vantagelink
	// wire protocol over simulated lossy channels (TransportLink).
	// Requires Aggregate when set to TransportLink.
	Transport TransportMode
	// LinkFaultSpec, when non-empty, is parsed with faults.ParseSpec
	// and applied to every vantage's report channel — loss, corrupt,
	// dup, reorder, partition, and chandelay on the report path,
	// recovered by the transport's NACK/retransmit loop. Requires
	// TransportLink.
	LinkFaultSpec string
	// LinkFaultSeed seeds the report-channel fault gates (0 uses Seed).
	LinkFaultSeed int64
	// LinkSkew, when non-nil, gives switch s's collector host a
	// constant clock error applied to every wire timestamp it stamps;
	// the transport's sync exchange estimates and cancels it. Only
	// consulted under TransportLink.
	LinkSkew func(s int) units.Duration
	// ReportDelay is the one-way report/control channel latency under
	// TransportLink (default 25 µs).
	ReportDelay units.Duration
	// LinkTick is the transport endpoints' tick cadence under
	// TransportLink: heartbeats, NACK pacing, silence exclusion
	// (default 250 µs).
	LinkTick units.Duration
	// MonitorSwitches, when non-nil, restricts mirroring and collectors
	// to the listed switch indices — a partial fleet deployment. Nil
	// monitors every switch with a monitor port.
	MonitorSwitches []int
	// Supervise runs a Supervisor per monitored switch: heartbeat
	// staleness detection, crash restart with state re-sync, retried
	// event delivery, and sFlow fallback while the mirror feed is dark.
	// Supervised collectors route events to the controller through the
	// supervisor's Deliverer instead of a direct attachment.
	Supervise bool
	// SupervisorConfig tunes supervision; zero fields take defaults.
	SupervisorConfig SupervisorConfig
	// Govern runs a sampling-rate Governor per monitored switch: a
	// closed-loop control application that estimates the effective
	// mirror sampling rate online and sheds low-value mirror ports or
	// tunes per-port sample budgets through the epoch-versioned
	// snapshot plane when the monitor port saturates. Requires Mirror.
	// Combined with Supervise, the governor and the supervisor share
	// one RateEstimator per switch, and the governor never actuates
	// while the feed is dark.
	Govern bool
	// GovernorConfig tunes the governors; zero fields take defaults. A
	// zero Estimator inherits SupervisorConfig.Fallback, so both
	// estimator consumers are configured in one place.
	GovernorConfig governor.Config
	// FaultSpec, when non-empty, is parsed with faults.ParseSpec and
	// applied to every monitored collector feed at build time (the
	// programmatic equivalent is Lab.ApplyFaults).
	FaultSpec string
	// FaultSeed seeds the fault injectors (0 uses Seed).
	FaultSeed int64
	// InitialTrees assigns each destination's PAST tree. Nil picks a
	// uniform random tree per address (PAST-R), matching the testbed.
	InitialTrees []int
	// LinkDelay is the per-hop propagation delay (default 500 ns).
	LinkDelay units.Duration
	// PollInterval batches collector ingest, modelling the capture
	// stack's delivery granularity; PollOverhead is a fixed processing
	// cost added to each sample's timestamp. Defaults depend on the link
	// rate (netmap on 10 Gbps: ~40 µs polls + 20 µs; the 1 Gbps path in
	// the paper shows wider jitter: ~300 µs polls).
	PollInterval units.Duration
	PollOverhead units.Duration
	// Tracer, when non-nil, records control-loop spans end to end:
	// every collector assigns event IDs through it, the controller
	// marks decisions and actuations, supervisors mark queueing and
	// drops, and its /debug/traces endpoints are mounted on Metrics.
	Tracer *trace.Tracer
	// TraceDump, when set alongside Tracer, receives an automatic
	// flight-recorder dump whenever a supervised feed goes dark or a
	// collector crash is restarted.
	TraceDump io.Writer
	// Seed drives all randomness in the testbed.
	Seed int64
}

// Lab is an assembled testbed.
type Lab struct {
	Eng        *sim.Engine
	Net        *topo.Network
	Rng        *rand.Rand
	Switches   []*switchsim.Switch
	Hosts      []*tcpsim.Host
	Collectors []*CollectorNode // indexed by switch; nil when unmonitored
	Ctrl       *controller.Controller

	// Supervisors holds each monitored switch's supervision loop when
	// Options.Supervise is set (indexed by switch; nil otherwise).
	Supervisors []*Supervisor

	// Governors holds each monitored switch's sampling-rate governor
	// when Options.Govern is set (indexed by switch; nil otherwise).
	Governors []*governor.Governor

	// Agg is the federated aggregation plane when Options.Aggregate is
	// set; it implements te.NetworkSource for fleet-fed traffic
	// engineering.
	Agg *agg.Plane

	// Faults is the active fault schedule (nil until ApplyFaults); the
	// supervisors consult it for partition and channel-delay windows.
	Faults *faults.Schedule

	// Metrics aggregates every component's instruments: the engine's
	// vitals, the controller's actuation delays, each collector's
	// per-stage timings, and each collector node's latency histograms.
	// Serve it (obs.Serve) to watch a running testbed live.
	Metrics *obs.Registry

	opts Options

	// collectorCfgs keeps each monitored switch's filled collector
	// config so supervisors can rebuild crashed collectors identically
	// (in fleet mode the config carries the switch's vantage sink, so
	// replacements rejoin the plane automatically).
	collectorCfgs []core.Config
	// vantages holds each monitored switch's plane vantage in fleet
	// mode (indexed by switch; nil entries otherwise).
	vantages []*agg.Vantage
	// linkSenders/linkGates/linkRecv are the wire-transport endpoints
	// under Options.Transport == TransportLink (indexed by switch).
	linkSenders []*vantagelink.Sender
	linkGates   []*vantagelink.FaultGate
	linkRecv    *vantagelink.Receiver
	// linkSched is the parsed LinkFaultSpec schedule shared by every
	// report-channel gate.
	linkSched *faults.Schedule
	// faultMetrics aggregates injected-fault counters across all feeds.
	faultMetrics *faults.Metrics
}

// New builds a testbed.
func New(opts Options) (*Lab, error) {
	if opts.Net == nil {
		return nil, fmt.Errorf("lab: Options.Net is required")
	}
	if opts.Aggregate && !opts.Mirror {
		return nil, fmt.Errorf("lab: Options.Aggregate requires Mirror")
	}
	if opts.Aggregate && opts.CollectorShards > 0 {
		return nil, fmt.Errorf("lab: Options.Aggregate is incompatible with CollectorShards (the per-sample sink is serial-only; the fleet shards across collectors)")
	}
	if opts.Transport == TransportLink && !opts.Aggregate {
		return nil, fmt.Errorf("lab: Options.Transport == TransportLink requires Aggregate (the transport carries vantage reports)")
	}
	if opts.Govern && !opts.Mirror {
		return nil, fmt.Errorf("lab: Options.Govern requires Mirror (the governor actuates mirror configuration)")
	}
	if opts.LinkFaultSpec != "" && opts.Transport != TransportLink {
		return nil, fmt.Errorf("lab: Options.LinkFaultSpec requires Transport == TransportLink")
	}
	net := opts.Net
	if opts.SwitchConfig == nil {
		if net.LineRate >= units.Rate10G {
			opts.SwitchConfig = switchsim.ProfileG8264
		} else {
			opts.SwitchConfig = switchsim.ProfilePronto3290
		}
	}
	if opts.LinkDelay == 0 {
		opts.LinkDelay = 500 * units.Nanosecond
	}
	if opts.PollInterval == 0 {
		if net.LineRate >= units.Rate10G {
			opts.PollInterval = 45 * units.Microsecond
		} else {
			opts.PollInterval = 350 * units.Microsecond
		}
	}
	if opts.PollOverhead == 0 {
		// NIC DMA + netmap wakeup + userspace batch handling; calibrated
		// so the undersubscribed sample latency lands in the paper's
		// 75–150 µs (10G) / 80–450 µs (1G) bands.
		if net.LineRate >= units.Rate10G {
			opts.PollOverhead = 85 * units.Microsecond
		} else {
			opts.PollOverhead = 80 * units.Microsecond
		}
	}

	eng := sim.New()
	rng := rand.New(rand.NewSource(opts.Seed))
	l := &Lab{
		Eng:           eng,
		Net:           net,
		Rng:           rng,
		Switches:      make([]*switchsim.Switch, net.NumSwitches()),
		Hosts:         make([]*tcpsim.Host, net.NumHosts()),
		Collectors:    make([]*CollectorNode, net.NumSwitches()),
		Supervisors:   make([]*Supervisor, net.NumSwitches()),
		Governors:     make([]*governor.Governor, net.NumSwitches()),
		Metrics:       obs.NewRegistry(),
		opts:          opts,
		collectorCfgs: make([]core.Config, net.NumSwitches()),
	}
	eng.RegisterMetrics(l.Metrics)

	for s := 0; s < net.NumSwitches(); s++ {
		cfg := opts.SwitchConfig(net.SwitchNames[s], len(net.Ports[s]))
		cfg.Name = net.SwitchNames[s]
		cfg.NumPorts = len(net.Ports[s])
		sw, err := switchsim.New(eng, cfg)
		if err != nil {
			return nil, err
		}
		l.Switches[s] = sw
	}
	for h := 0; h < net.NumHosts(); h++ {
		host := tcpsim.NewHost(eng, fmt.Sprintf("h%d", h),
			topo.ShadowMAC(h, 0), topo.HostIP(h), net.LineRate, opts.HostConfig, rng)
		l.Hosts[h] = host
	}

	// Wire switch-to-switch and host links.
	for s := 0; s < net.NumSwitches(); s++ {
		for p, ep := range net.Ports[s] {
			switch ep.Kind {
			case topo.ToSwitch:
				if ep.Switch > s || (ep.Switch == s && ep.Port > p) {
					sim.Connect(l.Switches[s].Port(p), l.Switches[ep.Switch].Port(ep.Port), opts.LinkDelay)
				}
			case topo.ToHost:
				sim.Connect(l.Hosts[ep.Host].NIC(), l.Switches[s].Port(p), opts.LinkDelay)
			}
		}
	}

	// Controller, routes, mirroring, collectors.
	ccfg := opts.ControllerConfig
	if ccfg == (controller.Config{}) {
		ccfg = controller.DefaultConfig()
	}
	l.Ctrl = controller.New(eng, net, l.Switches, l.Hosts, ccfg, rng)
	l.Ctrl.RegisterMetrics(l.Metrics)
	if opts.Tracer != nil {
		l.Ctrl.SetTracer(opts.Tracer)
		opts.Tracer.RegisterMetrics(l.Metrics)
	}
	trees := opts.InitialTrees
	if trees == nil {
		trees = make([]int, net.NumHosts())
		for i := range trees {
			trees[i] = rng.Intn(net.NumTrees)
		}
	}
	l.Ctrl.InstallRoutes(trees, opts.Mirror)

	if opts.LinkFaultSpec != "" {
		sched, err := faults.ParseSpec(opts.LinkFaultSpec)
		if err != nil {
			return nil, fmt.Errorf("lab: LinkFaultSpec: %w", err)
		}
		l.linkSched = sched
	}
	if opts.Aggregate {
		l.buildAggPlane()
		if opts.Transport == TransportLink {
			l.linkSenders = make([]*vantagelink.Sender, net.NumSwitches())
			l.linkGates = make([]*vantagelink.FaultGate, net.NumSwitches())
			l.buildLinkReceiver()
		}
	}
	var monitored map[int]bool
	if opts.MonitorSwitches != nil {
		monitored = make(map[int]bool, len(opts.MonitorSwitches))
		for _, s := range opts.MonitorSwitches {
			if s < 0 || s >= net.NumSwitches() {
				return nil, fmt.Errorf("lab: MonitorSwitches entry %d out of range", s)
			}
			monitored[s] = true
		}
	}

	if opts.Mirror {
		for s := 0; s < net.NumSwitches(); s++ {
			mp := net.MonitorPort[s]
			if mp < 0 || (monitored != nil && !monitored[s]) {
				continue
			}
			ccfg := opts.CollectorConfig
			ccfg.SwitchName = net.SwitchNames[s]
			ccfg.NumPorts = len(net.Ports[s])
			ccfg.LinkRate = net.LineRate
			ccfg.Metrics = l.Metrics
			// The tracer rides in the stored config, so supervisor
			// restarts rebuild replacement collectors with the same ID
			// source and the ID stream stays monotone across crashes.
			ccfg.Tracer = opts.Tracer
			if l.Agg != nil {
				// Fleet mode: this collector is a vantage. It reports every
				// flow sample to the plane, carries no event subscribers of
				// its own (detection is the plane's job — a local
				// subscriber would duplicate every event), and the sink
				// rides in the stored config so supervised restarts rejoin
				// the same vantage.
				v := l.Agg.Join(s, ccfg.SwitchName, ccfg.NumPorts, ccfg.LinkRate)
				l.vantages[s] = v
				ccfg.Vantage = int(v.ID())
				if opts.Transport == TransportLink {
					// Wire transport: the collector's sink is a vantagelink
					// sender whose frames reach the plane's shared receiver
					// over a (possibly faulty) simulated channel.
					ccfg.Sink = l.buildLink(s, v, ccfg.SwitchName)
				} else {
					ccfg.Sink = v
				}
			}
			l.collectorCfgs[s] = ccfg
			var node *CollectorNode
			if opts.CollectorShards > 0 {
				sc := core.NewSharded(core.ShardedConfig{Config: ccfg, Shards: opts.CollectorShards})
				node = NewShardedCollectorNode(eng, sc, net.LineRate, opts.PollInterval, opts.PollOverhead)
				// The sharded pipeline reads the same epoch-versioned
				// routing store as every other consumer (each shard
				// forks its own view), but the controller's event
				// plumbing stays serial-only.
				sc.SetPortMapper(l.Ctrl.Mapper(s))
			} else {
				node = NewCollectorNode(eng, core.New(ccfg), net.LineRate, opts.PollInterval, opts.PollOverhead)
			}
			node.Tracer = opts.Tracer
			node.RegisterMetrics(l.Metrics, ccfg.SwitchName)
			if opts.InSwitchCollectors {
				node.AttachInSwitch(l.Switches[s])
			} else {
				sim.Connect(node.Port(), l.Switches[s].Port(mp), opts.LinkDelay)
			}
			l.Collectors[s] = node
			// One shared estimator per governed switch: the supervisor's
			// dark-feed fallback reads the sFlow side, the governor
			// cross-references it against the mirror counters.
			var est *governor.RateEstimator
			if opts.Govern {
				ecfg := opts.GovernorConfig.Estimator
				if ecfg == (governor.EstimatorConfig{}) {
					ecfg = opts.SupervisorConfig.Fallback
				}
				if ecfg.Seed == 0 {
					ecfg.Seed = opts.Seed + int64(s)*7919 + 1
				}
				est = governor.NewRateEstimator(ecfg, len(net.Ports[s]))
			}
			if opts.Supervise {
				// Supervised feeds still get the routing oracle, but
				// their events reach the controller through the
				// supervisor's retrying Deliverer, not a direct
				// subscription.
				if node.Collector() != nil {
					node.Collector().SetPortMapper(l.Ctrl.Mapper(s))
				}
				l.Supervisors[s] = newSupervisor(l, s, node, opts.SupervisorConfig, est)
				if l.vantages != nil && l.vantages[s] != nil {
					// The plane serves this vantage's links from the
					// supervisor's sFlow estimator when the vantage goes
					// stale — the transport-era analogue of the
					// supervisor's own dark-feed fallback.
					l.vantages[s].SetFallback(l.Supervisors[s].FallbackUtilization)
				}
			} else if node.Collector() != nil {
				if l.Agg != nil {
					// Vantages get the routing oracle but are never
					// attached: AttachCollector would subscribe the
					// controller to local detection, double-reporting
					// everything the plane merges.
					node.Collector().SetPortMapper(l.Ctrl.Mapper(s))
				} else {
					l.Ctrl.AttachCollector(s, node.Collector())
				}
			}
			if opts.Govern {
				gov := governor.New(opts.GovernorConfig, net.SwitchNames[s], s,
					l.Switches[s], l.Ctrl, est, net.LineRate)
				if sup := l.Supervisors[s]; sup != nil {
					// The chaos contract: the governor must not actuate
					// from a dark vantage's stale estimate.
					gov.SetDarkGuard(sup.Dark)
				} else {
					// No supervisor installed the delivery hook; feed the
					// estimator's sFlow side here so the shed-port
					// cross-reference still works.
					sw := l.Switches[s]
					prevHook := sw.OnDeliver
					obsEst := est
					sw.OnDeliver = func(now units.Time, outPort int, pkt *sim.Packet) {
						if prevHook != nil {
							prevHook(now, outPort, pkt)
						}
						obsEst.Observe(now, outPort, pkt.FlowKey(), pkt.WireLen)
					}
				}
				if opts.Tracer != nil {
					gov.SetTracer(opts.Tracer, l.Ctrl.RoutingStore().Epoch)
				}
				gov.RegisterMetrics(l.Metrics)
				l.Governors[s] = gov
				sim.NewTicker(eng, gov.Config().Tick, gov.Tick)
			}
		}
	}
	if opts.FaultSpec != "" {
		sched, err := faults.ParseSpec(opts.FaultSpec)
		if err != nil {
			return nil, err
		}
		seed := opts.FaultSeed
		if seed == 0 {
			seed = opts.Seed
		}
		l.ApplyFaults(sched, seed)
	}
	return l, nil
}

// ApplyFaults activates sched on every monitored collector feed: each
// node gets its own deterministic injector (seeded from seed mixed with
// the switch index, counters shared across feeds), crash rules are
// scheduled as engine events, and the schedule is published on
// l.Faults for the supervisors' partition/delay checks. Call before
// Run; calling with an empty schedule is a no-op beyond recording it.
func (l *Lab) ApplyFaults(sched *faults.Schedule, seed int64) {
	l.Faults = sched
	if sched.Empty() {
		return
	}
	if l.faultMetrics == nil {
		l.faultMetrics = &faults.Metrics{}
		l.faultMetrics.Register(l.Metrics)
	}
	for s, node := range l.Collectors {
		if node == nil {
			continue
		}
		node.SetFaultInjector(faults.NewInjector(sched, seed+int64(s)*7919, l.faultMetrics))
		for _, ct := range sched.CrashTimes() {
			l.Eng.Schedule(ct, sim.Callback(node.Crash), nil)
		}
	}
}

// buildAggPlane assembles the federated aggregation plane for fleet
// mode: threshold coherence with the collectors, merged-event delivery
// into the controller, and a periodic tick for vantage liveness.
func (l *Lab) buildAggPlane() {
	opts := l.opts
	acfg := opts.AggregateConfig
	cc := opts.CollectorConfig.WithDefaults()
	if acfg.UtilThreshold == 0 {
		acfg.UtilThreshold = cc.UtilThreshold
	}
	if acfg.EventCooldown == 0 {
		acfg.EventCooldown = cc.EventCooldown
	}
	if acfg.FlowFreshness == 0 {
		acfg.FlowFreshness = cc.FlowFreshness
	}
	if acfg.Metrics == nil {
		acfg.Metrics = l.Metrics
	}
	if acfg.Tracer == nil {
		acfg.Tracer = opts.Tracer
	}
	if opts.Transport == TransportLink {
		// Over a real transport, reports arrive out of global order
		// across vantages: hold events in a reorder window and let the
		// transport receiver's delivery watermark — not wall time —
		// advance the merge clock.
		acfg.ExternalMergeAdvance = true
		if acfg.ReorderWindow == 0 {
			acfg.ReorderWindow = units.Millisecond
		}
	}
	l.Agg = agg.New(acfg)
	l.vantages = make([]*agg.Vantage, l.Net.NumSwitches())

	// Merged events reach the controller through the same machinery a
	// single collector's events would: under supervision, a retrying
	// deliverer gated by the fault schedule's partition and delay
	// windows; otherwise a direct synchronous handoff.
	if opts.Supervise {
		send := func(now units.Time, ev core.CongestionEvent) error {
			sched := l.Faults
			if sched.PartitionActive(now) {
				return errPartitioned
			}
			if d := sched.ChannelDelay(now); d > 0 {
				l.Eng.After(d, sim.Callback(func(units.Time) { l.Ctrl.DeliverEvent(ev) }), nil)
				return nil
			}
			l.Ctrl.DeliverEvent(ev)
			return nil
		}
		del := controller.NewSimDeliverer(l.Eng, opts.SupervisorConfig.Backoff, opts.Seed+0x5eed, send, nil)
		del.Tracer = opts.Tracer
		l.Agg.Subscribe(func(ev core.CongestionEvent) {
			now := l.Eng.Now()
			if tr := opts.Tracer; tr != nil {
				tr.MarkQueued(ev.ID, now)
			}
			del.Deliver(now, ev)
		})
	} else {
		l.Agg.Subscribe(l.Ctrl.DeliverEvent)
	}
	sim.NewTicker(l.Eng, opts.PollInterval, l.Agg.Tick)
}

// Run drives the simulation until deadline.
func (l *Lab) Run(until units.Duration) { l.Eng.RunUntil(units.Time(until)) }

// Collector returns the collector attached to switch s, or nil.
func (l *Lab) Collector(s int) *core.Collector {
	if n := l.Collectors[s]; n != nil {
		return n.Collector()
	}
	return nil
}

// Vantage returns switch s's aggregation-plane vantage, or nil when
// the lab was built without Options.Aggregate (or s is unmonitored).
func (l *Lab) Vantage(s int) *agg.Vantage {
	if l.vantages == nil {
		return nil
	}
	return l.vantages[s]
}

// Supervisor returns switch s's supervision loop, or nil when the lab
// was built without Options.Supervise.
func (l *Lab) Supervisor(s int) *Supervisor { return l.Supervisors[s] }

// Governor returns switch s's sampling-rate governor, or nil when the
// lab was built without Options.Govern.
func (l *Lab) Governor(s int) *governor.Governor { return l.Governors[s] }

// FaultMetrics returns the shared injected-fault counters, or nil when
// no faults are active.
func (l *Lab) FaultMetrics() *faults.Metrics { return l.faultMetrics }
