package lab

import (
	"errors"
	"fmt"
	"sync"

	"planck/internal/controller"
	"planck/internal/core"
	"planck/internal/governor"
	"planck/internal/obs"
	"planck/internal/obs/trace"
	"planck/internal/sim"
	"planck/internal/units"
)

// SupervisorConfig tunes one switch's supervision loop. Zero fields
// take defaults sized for the millisecond control loop.
type SupervisorConfig struct {
	// Heartbeat drives staleness detection on the mirror feed.
	Heartbeat core.HeartbeatConfig
	// Backoff tunes retried collector→controller event delivery.
	Backoff controller.BackoffPolicy
	// Fallback configures the shared per-port rate estimator
	// (governor.RateEstimator) whose sFlow side the supervisor degrades
	// to when the mirror feed goes dark. Defaults: the paper's G8264
	// numbers — 1-in-1024 sampling capped at 300 samples/s — over an
	// 8ms window; ms-scale tests raise ControlPlaneCap so a few-ms dark
	// window still collects samples. When the lab also runs a governor
	// on this switch, both consumers share one estimator and therefore
	// one config — this one.
	Fallback governor.EstimatorConfig
	// Seed feeds the supervisor's private PRNGs (delivery jitter, sFlow
	// sampling) so supervision never perturbs data-plane determinism.
	// Defaults to the lab seed mixed with the switch index.
	Seed int64
}

// HeartbeatFlip records one dark/live transition of a supervised feed.
type HeartbeatFlip struct {
	At   units.Time
	Dark bool // true = went dark, false = recovered
}

// supEvent is one queued congestion event tagged with the collector
// generation that produced it.
type supEvent struct {
	gen int
	ev  core.CongestionEvent
}

// errPartitioned is what the supervisor's transport reports while a
// controller partition window is active; the Deliverer retries it.
var errPartitioned = errors.New("lab: controller channel partitioned")

// Supervisor is the per-switch supervision loop of the robustness
// layer: it watches the collector feed with a heartbeat, restarts
// crashed collectors (re-syncing routing state and event cooldowns so
// replay is idempotent), routes congestion events to the controller
// through bounded retry with exponential backoff, and degrades to
// sFlow-style sampling for utilization estimates while the mirror feed
// is dark — Planck's answer to "what happens when the monitoring plane
// itself fails".
//
// All methods run on the engine goroutine except the event
// subscription, which may fire on a sharded merger goroutine and only
// appends to a mutex-guarded queue; the queue drains on the engine
// goroutine at batch ends and heartbeat ticks.
type Supervisor struct {
	lab  *Lab
	s    int // switch index
	node *CollectorNode
	cfg  SupervisorConfig

	hb  *core.HeartbeatMonitor
	del *controller.Deliverer
	fb  *governor.RateEstimator

	// gen tags the live collector generation; events queued by a dead
	// generation (e.g. the drain of a crashed sharded pipeline) are
	// discarded instead of reaching the controller.
	gen int

	evMu sync.Mutex
	evQ  []supEvent

	// cooldowns mirrors the per-port event cooldown state from the
	// supervisor's vantage: it survives collector crashes, dedups event
	// replay across restarts, and seeds RestoreCooldowns on the
	// replacement collector.
	cooldowns map[int]units.Time
	cooldown  units.Duration

	flips []HeartbeatFlip

	// FallbackActive is 1 while the feed is dark and utilization queries
	// are served from the sFlow fallback.
	FallbackActive obs.Gauge
	// Restarts counts supervised collector restarts.
	Restarts obs.Counter
	// Duplicates counts events suppressed by the supervisor's
	// cross-restart cooldown dedup.
	Duplicates obs.Counter
	// StaleEvents counts events discarded because a dead collector
	// generation emitted them.
	StaleEvents obs.Counter
	// MissStreak records, at each recovery, how many heartbeats the feed
	// missed while dark.
	MissStreak *obs.Histogram
}

// newSupervisor wires a supervisor over switch s's collector node and
// starts its heartbeat ticker. est, when non-nil, is a shared
// governor.RateEstimator (the lab passes the governor's when both run
// on a switch); nil builds a private one from cfg.Fallback.
func newSupervisor(l *Lab, s int, node *CollectorNode, cfg SupervisorConfig, est *governor.RateEstimator) *Supervisor {
	if cfg.Seed == 0 {
		cfg.Seed = l.opts.Seed + int64(s)*7919
	}
	sup := &Supervisor{
		lab:        l,
		s:          s,
		node:       node,
		cfg:        cfg,
		hb:         core.NewHeartbeatMonitor(cfg.Heartbeat),
		cooldowns:  make(map[int]units.Time),
		cooldown:   l.collectorCfgs[s].EventCooldown,
		MissStreak: obs.NewScaledHistogram(1),
	}
	if sup.cooldown == 0 {
		sup.cooldown = 250 * units.Microsecond
	}

	// Event transport: fail while partitioned (the Deliverer retries),
	// defer through an engine timer while a channel-delay window is
	// active, otherwise hand to the controller synchronously.
	send := func(now units.Time, ev core.CongestionEvent) error {
		sched := l.Faults
		if sched.PartitionActive(now) {
			return errPartitioned
		}
		if d := sched.ChannelDelay(now); d > 0 {
			l.Eng.After(d, sim.Callback(func(units.Time) { l.Ctrl.DeliverEvent(ev) }), nil)
			return nil
		}
		l.Ctrl.DeliverEvent(ev)
		return nil
	}
	sup.del = controller.NewSimDeliverer(l.Eng, cfg.Backoff, cfg.Seed, send, nil)
	sup.del.Tracer = l.opts.Tracer

	// Graceful-degradation estimator: the sFlow side of the shared
	// rate estimator, chained onto the switch's delivery hook with a
	// supervisor-private PRNG.
	if est == nil {
		ecfg := cfg.Fallback
		if ecfg.Seed == 0 {
			ecfg.Seed = cfg.Seed + 1
		}
		est = governor.NewRateEstimator(ecfg, len(l.Net.Ports[s]))
	}
	sup.fb = est
	sw := l.Switches[s]
	prev := sw.OnDeliver
	sw.OnDeliver = func(now units.Time, outPort int, pkt *sim.Packet) {
		if prev != nil {
			prev(now, outPort, pkt)
		}
		sup.fb.Observe(now, outPort, pkt.FlowKey(), pkt.WireLen)
	}

	if l.Agg == nil {
		sup.subscribe()
		node.OnBatchEnd = sup.drainEvents
	}
	// In fleet mode the collector has no local event path to tap: its
	// samples flow to the aggregation plane, which owns detection,
	// dedup, and delivery. The supervisor keeps its heartbeat, restart,
	// and fallback duties.
	sim.NewTicker(l.Eng, sup.hb.Config().Interval, sup.tick)

	label := obs.Label("switch", l.Net.SwitchNames[s])
	l.Metrics.MustRegister("planck_supervisor_fallback_active", &sup.FallbackActive, label)
	l.Metrics.MustRegister("planck_supervisor_restarts_total", &sup.Restarts, label)
	l.Metrics.MustRegister("planck_supervisor_duplicates_suppressed_total", &sup.Duplicates, label)
	l.Metrics.MustRegister("planck_supervisor_stale_events_total", &sup.StaleEvents, label)
	l.Metrics.MustRegister("planck_supervisor_heartbeat_miss_streak", sup.MissStreak, label)
	sup.del.Metrics.Register(l.Metrics, label)
	return sup
}

// subscribe attaches a generation-tagged event tap to the node's
// current collector. The closure captures the generation at subscribe
// time, so events a dead pipeline drains after its crash are
// identifiable and discarded.
func (sup *Supervisor) subscribe() {
	myGen := sup.gen
	tap := func(ev core.CongestionEvent) {
		sup.evMu.Lock()
		sup.evQ = append(sup.evQ, supEvent{myGen, ev})
		sup.evMu.Unlock()
	}
	if sc := sup.node.Sharded(); sc != nil {
		sc.Subscribe(tap)
	} else if col := sup.node.Collector(); col != nil {
		col.Subscribe(tap)
	}
}

// drainEvents moves queued events to the controller on the engine
// goroutine: stale generations are dropped, replayed events inside the
// cooldown are suppressed, survivors go through the retrying deliverer.
func (sup *Supervisor) drainEvents(now units.Time) {
	sup.evMu.Lock()
	q := sup.evQ
	sup.evQ = nil
	sup.evMu.Unlock()
	tr := sup.lab.opts.Tracer
	for _, e := range q {
		if e.gen != sup.gen {
			sup.StaleEvents.Inc()
			if tr != nil {
				tr.Drop(e.ev.ID, trace.OutcomeDroppedStale)
			}
			continue
		}
		if last, ok := sup.cooldowns[e.ev.Port]; ok && e.ev.Time.Sub(last) < sup.cooldown {
			sup.Duplicates.Inc()
			if tr != nil {
				tr.Drop(e.ev.ID, trace.OutcomeDroppedDuplicate)
			}
			continue
		}
		sup.cooldowns[e.ev.Port] = e.ev.Time
		if tr != nil {
			tr.MarkQueued(e.ev.ID, now)
		}
		sup.del.Deliver(now, e.ev)
	}
}

// tick is one supervision round: drain events, restart a crashed
// collector, and run the heartbeat state machine.
func (sup *Supervisor) tick(now units.Time) {
	sup.drainEvents(now)
	if sup.node.Crashed() {
		sup.restart()
	}
	streakBefore := sup.hb.MissStreak()
	switch sup.hb.Beat(now, sup.node.LastDelivery()) {
	case core.HeartbeatWentDark:
		sup.FallbackActive.Set(1)
		sup.flips = append(sup.flips, HeartbeatFlip{At: now, Dark: true})
		sup.dumpTraces(now, "feed went dark")
	case core.HeartbeatRecovered:
		sup.FallbackActive.Set(0)
		sup.MissStreak.Observe(int64(streakBefore))
		sup.flips = append(sup.flips, HeartbeatFlip{At: now, Dark: false})
	}
}

// dumpTraces writes the tracer's flight recorder to the lab's TraceDump
// sink — the automatic black-box dump on monitoring-plane failures.
func (sup *Supervisor) dumpTraces(now units.Time, what string) {
	tr, w := sup.lab.opts.Tracer, sup.lab.opts.TraceDump
	if tr == nil || w == nil {
		return
	}
	tr.Dump(w, fmt.Sprintf("%s on %s at %v",
		what, sup.lab.Net.SwitchNames[sup.s], now))
}

// restart builds a replacement collector for the crashed one and
// re-syncs it: a fresh routing view from the controller's versioned
// store — pinned to the current epoch by construction, so a collector
// that died before a reroute comes back attributing samples to the
// post-reroute state, not its private pre-crash copy (§3.2.1's route
// sync) — restored event cooldowns so replayed congestion does not
// re-fire inside the cooldown, and a new-generation event tap.
func (sup *Supervisor) restart() {
	sup.gen++
	sup.dumpTraces(sup.lab.Eng.Now(), "collector crash restart")
	ccfg := sup.lab.collectorCfgs[sup.s]
	// The first collector registered this switch's instruments; a
	// duplicate registration would panic, so replacements run bare.
	ccfg.Metrics = nil
	mapper := sup.lab.Ctrl.Mapper(sup.s)
	if shards := sup.lab.opts.CollectorShards; shards > 0 {
		sc := core.NewSharded(core.ShardedConfig{Config: ccfg, Shards: shards})
		sc.SetPortMapper(mapper)
		sc.RestoreCooldowns(sup.cooldowns)
		sup.node.RestartSharded(sc)
	} else {
		col := core.New(ccfg)
		col.SetPortMapper(mapper)
		col.RestoreCooldowns(sup.cooldowns)
		sup.node.RestartSerial(col)
	}
	if sup.lab.Agg == nil {
		sup.subscribe()
	} else if snd := sup.lab.LinkSender(sup.s); snd != nil {
		// Wire-transport fleet: the restart announcement travels
		// in-stream as a sequenced Rejoin frame, so the plane applies
		// it in exactly the position it holds among the vantage's
		// reports — even across report loss and retransmits.
		snd.Rejoin(sup.lab.Eng.Now(), uint32(sup.gen))
	} else if v := sup.lab.vantages[sup.s]; v != nil {
		// The replacement inherits the vantage sink through the stored
		// config; the plane's merger kept the link cooldown anchors
		// while the collector was down, so replayed congestion cannot
		// re-fire events the fleet already emitted.
		v.Rejoin()
	}
	sup.Restarts.Inc()
}

// Dark reports whether the feed is currently dark (fallback active).
func (sup *Supervisor) Dark() bool { return sup.hb.Dark() }

// Flips returns the dark/live transition history.
func (sup *Supervisor) Flips() []HeartbeatFlip {
	return append([]HeartbeatFlip(nil), sup.flips...)
}

// Generation returns the live collector generation (0 = original).
func (sup *Supervisor) Generation() int { return sup.gen }

// Deliverer exposes the event-delivery state machine (for its metrics).
func (sup *Supervisor) Deliverer() *controller.Deliverer { return sup.del }

// Heartbeat exposes the staleness monitor.
func (sup *Supervisor) Heartbeat() *core.HeartbeatMonitor { return sup.hb }

// Utilization answers "how loaded is port p right now" from the best
// available source: the collector's ms-scale estimate while the feed is
// live, the sFlow fallback while it is dark — graceful degradation
// rather than a blind spot.
func (sup *Supervisor) Utilization(p int) units.Rate {
	if sup.hb.Dark() {
		return sup.fb.Utilization(sup.lab.Eng.Now(), p)
	}
	if sc := sup.node.Sharded(); sc != nil {
		return sc.LinkUtilization(p)
	}
	if col := sup.node.Collector(); col != nil {
		return col.LinkUtilization(p)
	}
	return 0
}

// FallbackUtilization reads the sFlow estimator directly, regardless of
// feed state.
func (sup *Supervisor) FallbackUtilization(p int) units.Rate {
	return sup.fb.Utilization(sup.lab.Eng.Now(), p)
}

// Estimator exposes the supervisor's rate estimator — shared with the
// switch's governor when both run.
func (sup *Supervisor) Estimator() *governor.RateEstimator { return sup.fb }
