package lab

import (
	"math"
	"sort"
	"testing"

	"planck/internal/core"
	"planck/internal/governor"
	"planck/internal/sflow"
	"planck/internal/sim"
	"planck/internal/topo"
	"planck/internal/units"
)

// chaosSpec is the canonical robustness scenario: a total mirror-loss
// burst (the feed goes dark and must fall back to sampling), a
// collector crash (supervised restart with state re-sync), and a
// controller partition (event delivery must retry through it).
const chaosSpec = "loss@20ms-35ms,crash@60500us,partition@80ms-95ms"

const (
	chaosLossFrom  = units.Time(20 * units.Millisecond)
	chaosLossTo    = units.Time(35 * units.Millisecond)
	chaosCrashAt   = units.Time(60500 * units.Microsecond)
	chaosPartFrom  = units.Time(80 * units.Millisecond)
	chaosPartTo    = units.Time(95 * units.Millisecond)
	chaosRunFor    = 120 * units.Millisecond
	chaosHeartbeat = units.Millisecond
)

func chaosOptions(shards int, faultSpec string) Options {
	return Options{
		Net:             topo.SingleSwitch("sw0", 6, units.Rate10G, true),
		Mirror:          true,
		Seed:            11,
		CollectorShards: shards,
		// Low threshold: steady near-line-rate flows fire congestion
		// events every cooldown, giving the delivery path real load.
		CollectorConfig: core.Config{UtilThreshold: 0.05},
		Supervise:       true,
		SupervisorConfig: SupervisorConfig{
			Heartbeat: core.HeartbeatConfig{Interval: chaosHeartbeat},
			// The paper's 300 samples/s CPU cap yields ~2 samples per
			// fallback window — useless at ms scale. A software sampler
			// (or raised hardware budget) makes the degraded estimate
			// meaningful inside one dark burst.
			Fallback: governor.EstimatorConfig{SFlow: sflow.Config{SampleRate: 64, ControlPlaneCap: 200000}},
		},
		FaultSpec: faultSpec,
	}
}

func startChaosTraffic(t *testing.T, l *Lab) {
	t.Helper()
	// Hosts 0 and 1 stream to hosts 2 and 3: two saturated egress ports
	// (2 and 3) observed through a 2x-oversubscribed mirror. Flow sizes
	// outlast the run.
	if _, err := l.Hosts[0].StartFlow(0, topo.HostIP(2), 5001, 1<<30, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Hosts[1].StartFlow(0, topo.HostIP(3), 5002, 1<<30, 2); err != nil {
		t.Fatal(err)
	}
}

// TestChaosSupervisedControlLoop drives the full fault scenario against
// a supervised testbed (serial and sharded collectors) and checks the
// robustness contract end to end:
//
//   - the mirror-loss burst flips the feed to dark within the heartbeat
//     window, utilization queries degrade to the sFlow fallback, and the
//     feed flips back once the mirror recovers;
//   - the crashed collector is restarted within one heartbeat interval
//     and no congestion event is duplicated across the restart (per-port
//     event spacing never violates the cooldown);
//   - events raised during the controller partition are retried with
//     backoff and none reaches the controller while the partition is up;
//   - after the last fault clears, utilization estimates re-converge to
//     a fault-free oracle run of the identical workload.
func TestChaosSupervisedControlLoop(t *testing.T) {
	t.Run("serial", func(t *testing.T) { runChaos(t, 0) })
	t.Run("sharded", func(t *testing.T) { runChaos(t, 2) })
}

func runChaos(t *testing.T, shards int) {
	l, err := New(chaosOptions(shards, chaosSpec))
	if err != nil {
		t.Fatal(err)
	}
	sup := l.Supervisor(0)
	if sup == nil {
		t.Fatal("no supervisor on the monitored switch")
	}

	type arrival struct {
		at units.Time
		ev core.CongestionEvent
	}
	var arrivals []arrival
	l.Ctrl.Subscribe(func(ev core.CongestionEvent) {
		arrivals = append(arrivals, arrival{l.Eng.Now(), ev})
	})

	// Probe the degraded path mid-burst, from inside the run.
	var midDark bool
	var midUtil units.Rate
	l.Eng.Schedule(units.Time(30*units.Millisecond), sim.Callback(func(units.Time) {
		midDark = sup.Dark()
		midUtil = sup.Utilization(2)
	}), nil)

	startChaosTraffic(t, l)
	l.Run(chaosRunFor)

	// The injector actually bit: the loss burst dropped mirror frames.
	if lost := l.FaultMetrics().Lost.Value(); lost == 0 {
		t.Error("loss burst dropped nothing")
	}

	// (b) Fallback flips. Dark must be declared within the heartbeat
	// budget of the burst start — StaleAfter plus MissThreshold+1 ticks
	// of quantization — and cleared shortly after the mirror recovers.
	hbCfg := sup.Heartbeat().Config()
	flips := sup.Flips()
	if len(flips) != 2 {
		t.Fatalf("flips = %+v, want exactly [dark, recover] around the loss burst", flips)
	}
	darkBudget := chaosLossFrom.Add(hbCfg.StaleAfter +
		units.Duration(hbCfg.MissThreshold+1)*hbCfg.Interval)
	if !flips[0].Dark || flips[0].At.Before(chaosLossFrom) || darkBudget.Before(flips[0].At) {
		t.Errorf("dark flip at %v, want in (%v, %v]", flips[0].At, chaosLossFrom, darkBudget)
	}
	recoverBudget := chaosLossTo.Add(hbCfg.StaleAfter + 2*hbCfg.Interval)
	if flips[1].Dark || flips[1].At.Before(chaosLossTo) || recoverBudget.Before(flips[1].At) {
		t.Errorf("recovery flip at %v, want in (%v, %v]", flips[1].At, chaosLossTo, recoverBudget)
	}
	if sup.Dark() || sup.FallbackActive.Value() != 0 {
		t.Error("feed still dark at end of run")
	}
	if !midDark {
		t.Error("feed not dark mid-burst")
	}
	if midUtil == 0 {
		t.Error("degraded utilization estimate is zero mid-burst; fallback not serving")
	}
	if sup.MissStreak.N() == 0 {
		t.Error("heartbeat-miss histogram recorded nothing")
	}

	// Supervised restart: exactly one crash, restarted within a tick.
	if got := sup.Restarts.Value(); got != 1 {
		t.Errorf("restarts = %d, want 1", got)
	}
	if sup.Generation() != 1 {
		t.Errorf("generation = %d, want 1", sup.Generation())
	}
	node := l.Collectors[0]
	if node.Crashed() {
		t.Error("collector still crashed at end of run")
	}
	if node.LastDelivery() <= chaosCrashAt {
		t.Error("restarted collector never delivered again")
	}

	// (a) No duplicate congestion events, crash and replay included:
	// per port, delivered events keep cooldown spacing in detection
	// time, and no (port, time) pair repeats.
	if len(arrivals) == 0 {
		t.Fatal("no congestion events delivered")
	}
	cooldown := 250 * units.Microsecond // core default; chaosOptions leaves it zero
	byPort := map[int][]units.Time{}
	for _, a := range arrivals {
		byPort[a.ev.Port] = append(byPort[a.ev.Port], a.ev.Time)
	}
	for p, ts := range byPort {
		sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
		for i := 1; i < len(ts); i++ {
			if ts[i].Sub(ts[i-1]) < cooldown {
				t.Fatalf("port %d events at %v and %v violate the %v cooldown (duplicate across restart?)",
					p, ts[i-1], ts[i], cooldown)
			}
		}
	}

	// (partition) Delivery held back and retried: nothing lands while
	// the channel is severed, and the backoff counters advance.
	for _, a := range arrivals {
		if !a.at.Before(chaosPartFrom) && a.at.Before(chaosPartTo) {
			t.Fatalf("event delivered at %v, inside the partition window", a.at)
		}
	}
	dm := &sup.Deliverer().Metrics
	if dm.Retries.Value() == 0 {
		t.Error("no delivery retries despite a 15ms partition")
	}
	if dm.Delivered.Value() == 0 {
		t.Error("deliverer delivered nothing")
	}
	t.Logf("events=%d retries=%d abandoned=%d duplicates=%d stale=%d lost=%d",
		len(arrivals), dm.Retries.Value(), dm.Abandoned.Value(),
		sup.Duplicates.Value(), sup.StaleEvents.Value(), l.FaultMetrics().Lost.Value())

	// (c) Re-convergence: the data plane is untouched by monitoring
	// faults, so an oracle run of the identical workload with no faults
	// must agree with the post-recovery estimates on the loaded ports.
	oracle, err := New(chaosOptions(shards, ""))
	if err != nil {
		t.Fatal(err)
	}
	startChaosTraffic(t, oracle)
	oracle.Run(chaosRunFor)
	for _, p := range []int{2, 3} {
		want := oracle.Supervisor(0).Utilization(p)
		got := sup.Utilization(p)
		if want == 0 {
			t.Fatalf("oracle sees no load on port %d", p)
		}
		if diff := math.Abs(float64(got)-float64(want)) / float64(want); diff > 0.25 {
			t.Errorf("port %d utilization did not re-converge: %v vs oracle %v (%.0f%% off)",
				p, got, want, diff*100)
		}
	}
}
