package lab

import (
	"testing"

	"planck/internal/core"
	"planck/internal/governor"
	"planck/internal/obs/trace"
	"planck/internal/sflow"
	"planck/internal/sim"
	"planck/internal/topo"
	"planck/internal/units"
)

// governorOptions is the shared testbed: one monitored switch whose
// mirror is 2:1 oversubscribed by two saturated flows, with the
// governor closing the sampling-rate loop.
func governorOptions() Options {
	return Options{
		Net:             topo.SingleSwitch("sw0", 6, units.Rate10G, true),
		Mirror:          true,
		Seed:            17,
		CollectorConfig: core.Config{UtilThreshold: 0.95},
		Govern:          true,
		GovernorConfig: governor.Config{
			// 2:1 oversubscription estimates effective ≈ 0.5 — right at
			// the default threshold. Raise it so the episode triggers
			// decisively, and widen the shed fraction so the ACK-only
			// return ports count as low-value.
			SaturationThreshold: 0.6,
			ShedFraction:        0.1,
			Estimator: governor.EstimatorConfig{
				SFlow: sflow.Config{SampleRate: 64, ControlPlaneCap: 200000},
			},
		},
	}
}

func startGovernorTraffic(t *testing.T, l *Lab, at units.Time) {
	t.Helper()
	// Hosts 0 and 1 stream to hosts 2 and 3: egress ports 2 and 3 carry
	// ~line-rate data (the high-value mirror sources), ports 0 and 1
	// carry only the returning ACKs (the low-value ones).
	if _, err := l.Hosts[0].StartFlow(at, topo.HostIP(2), 5001, 1<<30, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Hosts[1].StartFlow(at, topo.HostIP(3), 5002, 1<<30, 2); err != nil {
		t.Fatal(err)
	}
}

// TestGovernorShedsTunesAndConverges drives a 2:1 oversubscribed mirror
// and checks the whole closed loop: saturation is detected from the
// estimator, one shed/tune episode commits through the snapshot plane,
// the per-port rates land on the switch, the effective sampling rate
// recovers (intentional thinning does not count as sampling loss), the
// episode's trace span closes as converged, and sustained health
// restores the shed ports.
func TestGovernorShedsTunesAndConverges(t *testing.T) {
	opts := governorOptions()
	opts.Tracer = trace.New(256)
	l, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	gov := l.Governor(0)
	if gov == nil {
		t.Fatal("no governor on the monitored switch")
	}
	sw := l.Switches[0]
	mon := sw.MonitorPort()
	if mon < 0 {
		t.Fatal("no monitor port")
	}

	startGovernorTraffic(t, l, 0)
	l.Run(80 * units.Millisecond)

	if gov.Ticks.Value() == 0 {
		t.Fatal("governor never ticked")
	}
	eps := gov.Episodes()
	if len(eps) == 0 || gov.Commits.Value() == 0 {
		t.Fatal("governor never actuated despite 2:1 mirror oversubscription")
	}
	first := eps[0]
	if first.Kind != governor.EpisodeShedTune {
		t.Fatalf("first episode kind %v, want shed-tune", first.Kind)
	}
	if first.Effective >= 0.6 || first.Confidence < 0.5 {
		t.Fatalf("first episode triggered on estimate %.2f @ conf %.2f", first.Effective, first.Confidence)
	}
	if gov.Tunes.Value() < 2 {
		t.Fatalf("tunes = %d, want both data ports tuned", gov.Tunes.Value())
	}
	if gov.Sheds.Value() < 1 {
		t.Fatalf("sheds = %d, want the ACK-only ports shed", gov.Sheds.Value())
	}

	// The plan landed on the data plane through the snapshot diff: the
	// data ports carry per-port budgets that sum within the monitor
	// line rate, and the budgets keep the monitor queue from
	// oversubscribing again.
	var budget units.Rate
	for _, p := range []int{2, 3} {
		if !sw.PortMirrored(p) {
			t.Fatalf("data port %d was shed", p)
		}
		r := sw.PortMirrorRate(p)
		if r <= 0 {
			t.Fatalf("data port %d has no tuned rate", p)
		}
		budget += r
	}
	if budget > l.Net.LineRate {
		t.Fatalf("tuned budgets %v exceed the monitor line rate %v", budget, l.Net.LineRate)
	}
	if sw.MirrorThinned.Packets == 0 {
		t.Fatal("tuned buckets never thinned anything")
	}

	// The routing store carries the overrides — actuation went through
	// the epoch-versioned plane, not directly at the switch.
	snap := l.Ctrl.RoutingStore().Load()
	if snap.MirrorOverrides() == 0 {
		t.Fatal("no mirror overrides in the routing snapshot")
	}
	if got := snap.MirrorPort(0, 2); !got.Mirrored || got.TargetRate != sw.PortMirrorRate(2) {
		t.Fatalf("snapshot override %+v disagrees with switch state %v", got, sw.PortMirrorRate(2))
	}

	// The loop closed: estimator-confirmed convergence, in order. (An
	// episode superseded by a re-plan before its actuation lands never
	// closes — the newest pending episode owns the loop — so check the
	// one that did converge.)
	if gov.ConvergedEpisodes() == 0 {
		t.Fatal("no episode converged")
	}
	var conv governor.Episode
	for _, ep := range gov.Episodes() {
		if ep.ConvergedAt != 0 {
			conv = ep
			break
		}
	}
	if conv.ActuatedAt == 0 || conv.ConvergedAt < conv.ActuatedAt || conv.ActuatedAt < conv.At {
		t.Fatalf("episode stages out of order: %+v", conv)
	}
	if eff, _ := gov.LastEstimate(); eff < 0.8 {
		t.Fatalf("effective rate %.2f at end of run; tuning did not relieve the monitor port", eff)
	}

	// Sustained health restored the shed ACK ports (with probe budgets).
	if gov.Restores.Value() == 0 {
		t.Fatal("no restore despite sustained post-tune health")
	}
	restored := 0
	for _, p := range []int{0, 1} {
		if sw.PortMirrored(p) {
			restored++
		}
	}
	if restored == 0 {
		t.Fatal("no shed port re-admitted")
	}

	// The trace plane saw the episode end to end: a span on the monitor
	// port completed as converged.
	found := false
	for _, sp := range opts.Tracer.ConvergedSpans() {
		if sp.Port == mon && sp.ID == conv.TraceID {
			found = true
			if sp.ConvergedAt != conv.ConvergedAt {
				t.Fatalf("span converged at %v, episode at %v", sp.ConvergedAt, conv.ConvergedAt)
			}
		}
	}
	if !found {
		t.Fatalf("no converged trace span for episode %d on the monitor port", conv.TraceID)
	}
}

// TestChaosGovernorDarkGuard composes the governor with the supervised
// chaos faults: traffic begins inside a mirror-loss burst, so the first
// saturation estimate forms while the vantage is dark. The governor
// must hold its fire for the whole dark window (SkippedDark ticks, zero
// commits) and actuate promptly once the feed recovers — never from a
// dark vantage's stale estimate.
func TestChaosGovernorDarkGuard(t *testing.T) {
	opts := governorOptions()
	opts.Supervise = true
	opts.SupervisorConfig = SupervisorConfig{
		Heartbeat: core.HeartbeatConfig{Interval: chaosHeartbeat},
		Fallback:  governor.EstimatorConfig{SFlow: sflow.Config{SampleRate: 64, ControlPlaneCap: 200000}},
	}
	opts.FaultSpec = "loss@20ms-35ms"
	l, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	gov := l.Governor(0)
	sup := l.Supervisor(0)
	if gov == nil || sup == nil {
		t.Fatal("governor or supervisor missing")
	}
	// The governor and the supervisor share one estimator.
	if gov.Estimator() != sup.Estimator() {
		t.Fatal("governor and supervisor do not share the rate estimator")
	}

	// Start the oversubscribing traffic inside the loss burst: the
	// saturation signal becomes actionable while the feed is dark.
	l.Eng.Schedule(units.Time(22*units.Millisecond), sim.Callback(func(now units.Time) {
		startGovernorTraffic(t, l, now)
	}), nil)
	l.Run(chaosRunFor)

	flips := sup.Flips()
	if len(flips) != 2 || !flips[0].Dark || flips[1].Dark {
		t.Fatalf("flips = %+v, want exactly [dark, recover]", flips)
	}
	darkAt, recoverAt := flips[0].At, flips[1].At

	if gov.SkippedDark.Value() == 0 {
		t.Fatal("governor never skipped a dark tick inside the loss burst")
	}

	// The chaos contract: zero actuations inside the dark window.
	eps := gov.Episodes()
	for _, ep := range eps {
		if !ep.At.Before(darkAt) && ep.At.Before(recoverAt) {
			t.Fatalf("governor actuated at %v, inside the dark window (%v, %v)", ep.At, darkAt, recoverAt)
		}
	}
	// And since traffic only began mid-burst, nothing can have been
	// committed before the recovery either.
	if len(eps) == 0 {
		t.Fatal("governor never actuated after the feed recovered")
	}
	if eps[0].At.Before(recoverAt) {
		t.Fatalf("first episode at %v predates recovery at %v", eps[0].At, recoverAt)
	}
	// Recovery-time actuation is prompt: within a handful of ticks of
	// the feed coming back (the estimate stayed fresh while dark).
	budget := recoverAt.Add(5 * gov.Config().Tick)
	if budget.Before(eps[0].At) {
		t.Fatalf("first episode at %v, want within %v of recovery at %v", eps[0].At, budget, recoverAt)
	}
	if gov.Commits.Value() == 0 || gov.Tunes.Value() == 0 {
		t.Fatal("no shed/tune commit after recovery")
	}
	// The loop still closes post-chaos.
	if gov.ConvergedEpisodes() == 0 {
		t.Fatal("no episode converged after the fault cleared")
	}
}
