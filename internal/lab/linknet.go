package lab

import (
	"planck/internal/agg"
	"planck/internal/core"
	"planck/internal/sim"
	"planck/internal/units"
	"planck/internal/vantagelink"
)

// TransportMode selects how vantage reports reach the aggregation
// plane in fleet mode.
type TransportMode int

const (
	// TransportInProcess hands each collector's FlowReports to its
	// plane vantage synchronously — the original fleet wiring.
	TransportInProcess TransportMode = iota
	// TransportLink routes reports over the internal/vantagelink wire
	// protocol: sequenced binary frames on a simulated lossy channel,
	// NACK/retransmit recovery, heartbeat liveness, and clock sync,
	// with the plane's merge clock driven by the receiver's delivery
	// watermark instead of wall time.
	TransportLink
)

// vantagePlaneSink adapts one plane vantage to the transport
// receiver's delivery interface: resequenced records merge into the
// plane, frame arrivals refresh liveness on the plane's receive
// clock, and in-stream Rejoin announcements replay the supervised
// restart protocol.
type vantagePlaneSink struct {
	v *agg.Vantage
}

func (a vantagePlaneSink) Report(rep *core.FlowReport) { a.v.Report(rep) }
func (a vantagePlaneSink) Live(now units.Time)         { a.v.NoteLive(now) }
func (a vantagePlaneSink) Rejoin(uint32)               { a.v.Rejoin() }

// buildLinkReceiver assembles the plane-side transport endpoint: one
// shared receiver whose watermark advances drive the plane's event
// merger, ticked on the link cadence for NACKs and silence exclusion.
func (l *Lab) buildLinkReceiver() {
	l.linkRecv = vantagelink.NewReceiver(vantagelink.ReceiverConfig{
		Metrics: l.Metrics,
	})
	l.linkRecv.OnAdvance = l.Agg.AdvanceMerge
	sim.NewTicker(l.Eng, l.linkTick(), l.linkRecv.Tick)
}

func (l *Lab) linkTick() units.Duration {
	if l.opts.LinkTick > 0 {
		return l.opts.LinkTick
	}
	return 250 * units.Microsecond
}

func (l *Lab) reportDelay() units.Duration {
	if l.opts.ReportDelay > 0 {
		return l.opts.ReportDelay
	}
	return 25 * units.Microsecond
}

// buildLink wires switch s's collector to the plane over the wire
// transport: a per-vantage sender (the collector's sink) feeding a
// fault gate on the report path, engine-scheduled channel latency both
// ways, and a receiver-side join binding the vantage's liveness to
// frame arrivals. Returns the sender to install as the collector sink.
func (l *Lab) buildLink(s int, v *agg.Vantage, switchName string) *vantagelink.Sender {
	delay := l.reportDelay()
	fwd := vantagelink.ChannelFunc(func(_ units.Time, dgram []byte) error {
		cp := append([]byte(nil), dgram...)
		l.Eng.After(delay, sim.Callback(func(at units.Time) {
			l.linkRecv.HandleDatagram(at, cp)
		}), nil)
		return nil
	})
	seed := l.opts.LinkFaultSeed
	if seed == 0 {
		seed = l.opts.Seed
	}
	gate := vantagelink.NewFaultGate(fwd, l.linkSched, seed+int64(s)*6151)
	gate.Defer = func(d units.Duration, deliver func()) {
		l.Eng.After(d, sim.Callback(func(units.Time) { deliver() }), nil)
	}

	scfg := vantagelink.SenderConfig{
		Vantage:    uint16(v.ID()),
		SwitchName: switchName,
		Metrics:    l.Metrics,
	}
	if l.opts.LinkSkew != nil {
		skew := l.opts.LinkSkew(s)
		if skew != 0 {
			scfg.ClockSkew = func(units.Time) units.Duration { return skew }
		}
	}
	snd := vantagelink.NewSender(gate, scfg)

	rev := vantagelink.ChannelFunc(func(_ units.Time, dgram []byte) error {
		cp := append([]byte(nil), dgram...)
		l.Eng.After(delay, sim.Callback(func(at units.Time) {
			snd.HandleControl(at, cp)
		}), nil)
		return nil
	})
	l.linkRecv.Join(uint16(v.ID()), vantagePlaneSink{v: v}, rev)
	// Liveness now rides the transport: the plane judges this vantage
	// by heartbeat/report arrivals, not by sink calls.
	v.BindTransport()

	// The sender's clock lives in the collector process: when that
	// process is crashed, heartbeats and retransmits stop with it, so
	// the receiver sees real silence until the supervisor restarts it.
	sim.NewTicker(l.Eng, l.linkTick(), func(now units.Time) {
		if node := l.Collectors[s]; node != nil && node.Crashed() {
			return
		}
		snd.Tick(now)
	})
	l.linkSenders[s] = snd
	l.linkGates[s] = gate
	return snd
}

// LinkSender returns switch s's transport sender, or nil outside
// TransportLink mode (or for unmonitored switches).
func (l *Lab) LinkSender(s int) *vantagelink.Sender {
	if l.linkSenders == nil {
		return nil
	}
	return l.linkSenders[s]
}

// LinkGate returns the fault gate on switch s's report channel, or
// nil outside TransportLink mode. Tests flip schedules on it mid-run
// (vantagelink.FaultGate.SetSchedule) to partition a single vantage's
// report path while its collector stays alive.
func (l *Lab) LinkGate(s int) *vantagelink.FaultGate {
	if l.linkGates == nil {
		return nil
	}
	return l.linkGates[s]
}

// LinkReceiver returns the plane-side transport receiver, or nil
// outside TransportLink mode.
func (l *Lab) LinkReceiver() *vantagelink.Receiver { return l.linkRecv }
