package lab

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"planck/internal/core"
	"planck/internal/packet"
	"planck/internal/routing"
	"planck/internal/topo"
	"planck/internal/units"
)

// The serial-equivalence oracle. A real testbed run — TCP slow start,
// congestion on a shared egress link, flow FINs, a UDP CBR stream, and
// oversubscribed mirror drops — is captured at the collector's NIC via
// the OnFrame tap, giving a deterministic sample stream with exactly the
// timestamps the live collector saw. That one stream is then replayed
// through a fresh serial Collector and through ShardedCollectors of
// 1, 2, 4, and 8 shards, with a deterministic mid-replay ExpireFlows;
// every observable output must match the serial run exactly. Run under
// -race this is the pipeline's strongest correctness check: any
// unsynchronized cross-shard state shows up either as a report diff or
// as a race.

// capturedStream is a replayable record of every sample delivered to a
// collector node, stored in one flat buffer to keep capture cheap.
type capturedStream struct {
	times []units.Time
	offs  []int // len(times)+1 offsets into buf
	buf   []byte
}

func (cs *capturedStream) add(at units.Time, frame []byte) {
	if len(cs.offs) == 0 {
		cs.offs = append(cs.offs, 0)
	}
	cs.times = append(cs.times, at)
	cs.buf = append(cs.buf, frame...)
	cs.offs = append(cs.offs, len(cs.buf))
}

func (cs *capturedStream) frame(i int) []byte { return cs.buf[cs.offs[i]:cs.offs[i+1]] }
func (cs *capturedStream) n() int             { return len(cs.times) }

// captureTestbedStream drives the shared-bottleneck scenario and records
// switch 0's sample stream.
func captureTestbedStream(t *testing.T) (*capturedStream, core.Config, core.PortMapper) {
	t.Helper()
	net := topo.SingleSwitch("sw0", 4, units.Rate10G, true)
	l, err := New(Options{Net: net, Mirror: true, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	cs := &capturedStream{}
	l.Collectors[0].OnFrame = cs.add

	// Three TCP flows converge on host 3 (their shared egress runs at
	// ~100% > the 0.9 threshold), one short flow FINs early, and a UDP
	// CBR stream adds non-TCP samples.
	for i := 0; i < 3; i++ {
		if _, err := l.Hosts[i].StartFlow(0, topo.HostIP(3), uint16(5001+i), 4<<20, int32(1+i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.Hosts[1].StartFlow(0, topo.HostIP(2), 6001, 256<<10, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Hosts[2].StartCBR(0, topo.HostIP(0), 7001, 1000, units.Rate(500*units.Mbps), 11); err != nil {
		t.Fatal(err)
	}
	l.Run(120 * units.Millisecond)

	if cs.n() < 5000 {
		t.Fatalf("capture too small to exercise the pipeline: %d samples", cs.n())
	}
	ccfg := core.Config{SwitchName: "sw0", NumPorts: len(net.Ports[0]), LinkRate: net.LineRate}
	return cs, ccfg, routing.StaticView(net, 0)
}

// oracleReport is everything observable about one replay.
type oracleReport struct {
	stats      core.Stats
	expired    int
	utils      []units.Rate
	rates      map[string]units.Rate
	events     []string
	boundaries []string
}

func renderEvent(ev core.CongestionEvent) string {
	flows := append([]core.FlowInfo(nil), ev.Flows...)
	// Event flow annotations are the only order-normalized comparison:
	// the sharded view's swap-remove bookkeeping may permute them.
	sort.Slice(flows, func(i, j int) bool {
		return fmt.Sprintf("%+v", flows[i].Key) < fmt.Sprintf("%+v", flows[j].Key)
	})
	return fmt.Sprintf("t=%d %s port=%d util=%d cap=%d flows=%+v",
		ev.Time, ev.SwitchName, ev.Port, ev.Util, ev.Capacity, flows)
}

// replayCollector is the surface the oracle needs from either pipeline.
type replayCollector interface {
	Ingest(t units.Time, frame []byte) error
	SetPortMapper(m core.PortMapper)
	Subscribe(fn func(ev core.CongestionEvent))
	SubscribeFlowBoundaries(fn func(t units.Time, key packet.FlowKey, kind core.BoundaryKind))
	ExpireFlows(now units.Time, idle units.Duration) int
	Flows(fn func(f *core.FlowState))
	LinkUtilization(p int) units.Rate
	Stats() core.Stats
}

// replayStream pushes the captured stream through col with a
// deterministic ExpireFlows at the midpoint, then snapshots every
// observable output. flush is called before quiescent reads (no-op for
// the serial collector).
func replayStream(t *testing.T, cs *capturedStream, ccfg core.Config, mapper core.PortMapper, col replayCollector, flush func()) oracleReport {
	t.Helper()
	rep := oracleReport{rates: map[string]units.Rate{}, utils: make([]units.Rate, ccfg.NumPorts)}
	col.SetPortMapper(mapper)
	col.Subscribe(func(ev core.CongestionEvent) {
		rep.events = append(rep.events, renderEvent(ev))
	})
	col.SubscribeFlowBoundaries(func(at units.Time, key packet.FlowKey, kind core.BoundaryKind) {
		rep.boundaries = append(rep.boundaries, fmt.Sprintf("t=%d %s kind=%d", at, key, kind))
	})
	mid := cs.n() / 2
	for i := 0; i < cs.n(); i++ {
		if err := col.Ingest(cs.times[i], cs.frame(i)); err != nil {
			t.Fatalf("sample %d: %v", i, err)
		}
		if i == mid {
			rep.expired = col.ExpireFlows(cs.times[i], 2*units.Millisecond)
		}
	}
	flush()
	rep.stats = col.Stats()
	for p := 0; p < ccfg.NumPorts; p++ {
		rep.utils[p] = col.LinkUtilization(p)
	}
	col.Flows(func(f *core.FlowState) {
		r, _ := f.Rate()
		rep.rates[f.Key.String()] = r
	})
	return rep
}

func TestLabSerialEquivalenceOracle(t *testing.T) {
	cs, ccfg, mapper := captureTestbedStream(t)

	serial := replayStream(t, cs, ccfg, mapper, core.New(ccfg), func() {})
	if serial.stats.Samples != int64(cs.n()) {
		t.Fatalf("serial replay ingested %d of %d", serial.stats.Samples, cs.n())
	}
	if len(serial.events) == 0 {
		t.Fatal("scenario produced no congestion events; oracle would be vacuous")
	}
	if len(serial.boundaries) < 4 {
		t.Fatalf("scenario produced %d flow boundaries", len(serial.boundaries))
	}
	if serial.expired == 0 {
		t.Fatal("mid-replay expiry removed nothing; oracle would be vacuous")
	}

	for _, shards := range []int{1, 2, 4, 8} {
		sc := core.NewSharded(core.ShardedConfig{Config: ccfg, Shards: shards})
		got := replayStream(t, cs, ccfg, mapper, sc, sc.Flush)
		sc.Close()
		if got.stats != serial.stats {
			t.Errorf("shards=%d stats %+v != serial %+v", shards, got.stats, serial.stats)
		}
		if got.expired != serial.expired {
			t.Errorf("shards=%d expired %d != serial %d", shards, got.expired, serial.expired)
		}
		if !reflect.DeepEqual(got.utils, serial.utils) {
			t.Errorf("shards=%d utils %v != serial %v", shards, got.utils, serial.utils)
		}
		if !reflect.DeepEqual(got.rates, serial.rates) {
			t.Errorf("shards=%d flow rates diverge:\n got %v\nwant %v", shards, got.rates, serial.rates)
		}
		if !reflect.DeepEqual(got.events, serial.events) {
			t.Errorf("shards=%d events diverge (%d vs %d):\n got %v\nwant %v",
				shards, len(got.events), len(serial.events), got.events, serial.events)
		}
		if !reflect.DeepEqual(got.boundaries, serial.boundaries) {
			t.Errorf("shards=%d boundaries diverge (%d vs %d)", shards, len(got.boundaries), len(serial.boundaries))
		}
	}
}

// TestShardedTestbedEndToEnd runs the testbed itself in sharded mode —
// the CollectorShards wiring, per-poll flushes, and merger-goroutine
// callbacks — and checks it against an identical serial-mode run.
func TestShardedTestbedEndToEnd(t *testing.T) {
	type outcome struct {
		stats      core.Stats
		boundaries int
		events     int
		rates      map[string]units.Rate
	}
	run := func(shards int) outcome {
		net := topo.SingleSwitch("sw0", 4, units.Rate10G, true)
		l, err := New(Options{Net: net, Mirror: true, Seed: 5, CollectorShards: shards})
		if err != nil {
			t.Fatal(err)
		}
		var o outcome
		count := func(units.Time, packet.FlowKey, core.BoundaryKind) { o.boundaries++ }
		// Subscribe a congestion handler on both variants: in serial mode
		// the controller is attached and already enables event checking,
		// so the sharded run needs its own subscriber to match.
		onEvent := func(core.CongestionEvent) { o.events++ }
		if shards > 0 {
			if l.Collector(0) != nil {
				t.Fatal("sharded node must not expose a serial collector")
			}
			l.Collectors[0].Sharded().SubscribeFlowBoundaries(count)
			l.Collectors[0].Sharded().Subscribe(onEvent)
		} else {
			l.Collector(0).SubscribeFlowBoundaries(count)
			l.Collector(0).Subscribe(onEvent)
		}
		for i := 0; i < 2; i++ {
			if _, err := l.Hosts[i].StartFlow(0, topo.HostIP(3), uint16(5001+i), 2<<20, int32(1+i)); err != nil {
				t.Fatal(err)
			}
		}
		l.Run(100 * units.Millisecond)
		o.rates = map[string]units.Rate{}
		if shards > 0 {
			sc := l.Collectors[0].Sharded()
			sc.Flush()
			o.stats = sc.Stats()
			sc.Flows(func(f *core.FlowState) { r, _ := f.Rate(); o.rates[f.Key.String()] = r })
			sc.Close()
		} else {
			c := l.Collector(0)
			o.stats = c.Stats()
			c.Flows(func(f *core.FlowState) { r, _ := f.Rate(); o.rates[f.Key.String()] = r })
		}
		return o
	}

	serial := run(0)
	if serial.stats.Samples == 0 || serial.boundaries == 0 {
		t.Fatalf("serial run saw nothing: %+v", serial)
	}
	sharded := run(4)
	if sharded.stats != serial.stats {
		t.Errorf("sharded testbed stats %+v != serial %+v", sharded.stats, serial.stats)
	}
	if sharded.boundaries != serial.boundaries {
		t.Errorf("sharded testbed boundaries %d != serial %d", sharded.boundaries, serial.boundaries)
	}
	if sharded.events != serial.events {
		t.Errorf("sharded testbed events %d != serial %d", sharded.events, serial.events)
	}
	if !reflect.DeepEqual(sharded.rates, serial.rates) {
		t.Errorf("sharded testbed rates diverge:\n got %v\nwant %v", sharded.rates, serial.rates)
	}
}
