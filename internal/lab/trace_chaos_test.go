package lab

import (
	"bytes"
	"testing"

	"planck/internal/core"
	"planck/internal/governor"
	"planck/internal/obs/trace"
	"planck/internal/sflow"
	"planck/internal/te"
	"planck/internal/topo"
	"planck/internal/units"
)

// checkSpanWellFormed asserts the trace invariants every emitted span
// must satisfy regardless of faults: the stage timestamps that were
// reached are monotone in control-loop order, and a decided span records
// a routing epoch that actually advanced.
func checkSpanWellFormed(t *testing.T, s trace.Span) {
	t.Helper()
	stages := []struct {
		name string
		at   units.Time
	}{
		{"sample", s.SampleAt}, {"detect", s.DetectAt}, {"queued", s.QueuedAt},
		{"delivered", s.DeliveredAt}, {"decided", s.DecidedAt},
		{"actuated", s.ActuatedAt}, {"converged", s.ConvergedAt},
	}
	var last units.Time
	var lastName string
	for _, st := range stages {
		if st.at == 0 {
			continue
		}
		if st.at < last {
			t.Fatalf("span %d (%v): %s at %v precedes %s at %v",
				s.ID, s.Outcome, st.name, st.at, lastName, last)
		}
		last, lastName = st.at, st.name
	}
	if s.DecidedAt != 0 && s.EpochNew <= s.EpochOld {
		t.Fatalf("span %d decided but epoch did not advance: %d → %d",
			s.ID, s.EpochOld, s.EpochNew)
	}
	if s.Outcome == trace.OutcomeConverged && !s.Complete() {
		t.Fatalf("span %d converged with missing stages: %+v", s.ID, s)
	}
}

func checkAllSpansWellFormed(t *testing.T, tr *trace.Tracer) (total int) {
	t.Helper()
	for _, spans := range [][]trace.Span{tr.Recorder().Snapshot(), tr.ConvergedSpans()} {
		seen := map[uint64]bool{}
		for _, s := range spans {
			if seen[s.ID] {
				t.Fatalf("span ID %d recorded twice in one ring", s.ID)
			}
			seen[s.ID] = true
			checkSpanWellFormed(t, s)
			total++
		}
	}
	return total
}

// TestChaosTracesWellFormed re-runs the canonical fault scenario — dark
// mirror burst, collector crash with supervised restart, controller
// partition — with the control-loop tracer attached, and demands every
// span the flight recorder holds is well-formed: no fault, restart, or
// retry may produce a span whose stage timestamps run backwards. It also
// checks the supervisor dumped the flight recorder on the dark-feed and
// crash transitions.
func TestChaosTracesWellFormed(t *testing.T) {
	t.Run("serial", func(t *testing.T) { runChaosTraced(t, 0) })
	t.Run("sharded", func(t *testing.T) { runChaosTraced(t, 2) })
}

func runChaosTraced(t *testing.T, shards int) {
	tracer := trace.New(512)
	var dumps bytes.Buffer
	opts := chaosOptions(shards, chaosSpec)
	opts.Tracer = tracer
	opts.TraceDump = &dumps

	l, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	startChaosTraffic(t, l)
	l.Run(chaosRunFor)
	tracer.FlushOpen()

	if n := checkAllSpansWellFormed(t, tracer); n == 0 {
		t.Fatal("flight recorder holds no spans after a congested chaos run")
	}
	if tracer.Completed.Value() == 0 {
		t.Fatal("no spans completed")
	}
	// The single-switch topology has no alternate path, so no span can
	// converge — but the loop must still classify every event.
	counts := tracer.OutcomeCounts()
	if counts[trace.OutcomeNoReroute] == 0 && counts[trace.OutcomeDroppedStale] == 0 &&
		counts[trace.OutcomeDroppedDuplicate] == 0 {
		t.Errorf("no terminal outcomes recorded: %v", counts)
	}
	if dumps.Len() == 0 {
		t.Error("supervisor never dumped the flight recorder despite dark-feed and crash transitions")
	}
	t.Logf("%d spans, outcomes %v, %d dump bytes", tracer.Completed.Value(), counts, dumps.Len())
}

// TestTraceConvergesAcrossRestart runs the full control loop — fat tree,
// PlanckTE rerouting over shadow-MAC paths, supervised collectors — with
// every collector crashing mid-run, and demands the tracer still
// produces complete converged spans: detection through re-convergence
// survives a supervised restart, and every recorded span stays
// well-formed.
func TestTraceConvergesAcrossRestart(t *testing.T) {
	tracer := trace.New(512)
	l, err := New(Options{
		Net:             topo.FatTree16(units.Rate10G),
		Mirror:          true,
		Seed:            7,
		CollectorConfig: core.Config{UtilThreshold: 0.05},
		Supervise:       true,
		SupervisorConfig: SupervisorConfig{
			Heartbeat: core.HeartbeatConfig{Interval: units.Millisecond},
			Fallback:  governor.EstimatorConfig{SFlow: sflow.Config{SampleRate: 64, ControlPlaneCap: 200000}},
		},
		FaultSpec: "crash@30ms",
		Tracer:    tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	te.NewPlanckTE(l.Ctrl, te.DefaultPlanckTEConfig())

	// The stride workload: pod-crossing flows that collide on core links
	// under random initial trees, giving the TE real reroutes.
	for i := 0; i < 8; i++ {
		if _, err := l.Hosts[i].StartFlow(0, topo.HostIP(i+8), uint16(5001+i), 100<<20, int32(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	l.Run(100 * units.Millisecond)
	tracer.FlushOpen()

	checkAllSpansWellFormed(t, tracer)
	if got := tracer.Converged.Value(); got == 0 {
		t.Fatalf("no converged spans; the TE must reroute and the moved flows re-resolve (outcomes %v)",
			tracer.OutcomeCounts())
	}
	restarts := 0
	for _, sup := range l.Supervisors {
		if sup != nil {
			restarts += int(sup.Restarts.Value())
		}
	}
	if restarts == 0 {
		t.Fatal("no supervised restarts; the crash fault did not bite")
	}
	t.Logf("converged=%d completed=%d restarts=%d",
		tracer.Converged.Value(), tracer.Completed.Value(), restarts)
}
