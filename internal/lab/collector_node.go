package lab

import (
	"planck/internal/core"
	"planck/internal/sim"
	"planck/internal/stats"
	"planck/internal/switchsim"
	"planck/internal/units"
)

// CollectorNode is the server process terminating one monitor link. It
// models the capture stack the paper built on netmap: frames arriving on
// the NIC are delivered to the collector in batches at each poll tick,
// and every sample's timestamp is the delivery time — which is what the
// rate estimator and all latency measurements see. The node serializes
// each simulated packet into genuine wire bytes before handing it to the
// collector, so the exact parse path a hardware deployment would run is
// exercised for every sample.
type CollectorNode struct {
	eng      *sim.Engine
	col      *core.Collector
	port     *sim.Port
	poll     units.Duration
	overhead units.Duration

	pending []*sim.Packet
	ticker  *sim.Ticker

	scratch []byte

	// SampleLatency records, for every delivered sample, the time from
	// the sender's stamp (tcpdump-equivalent) to collector delivery —
	// the measurement latency of §5.2/Fig. 8.
	SampleLatency *stats.Sample
	// MirrorQueueLatency records time from switch entry to collector
	// delivery (the buffering component, Fig. 12).
	MirrorQueueLatency *stats.Sample

	// OnSample, when set, observes each delivered sample after ingest.
	OnSample func(now units.Time, pkt *sim.Packet)

	// IngestErrors counts frames the collector rejected.
	IngestErrors int64
}

// NewCollectorNode builds a collector process with its NIC port running
// at rate (which must match the monitor port it connects to).
func NewCollectorNode(eng *sim.Engine, col *core.Collector, rate units.Rate, poll, overhead units.Duration) *CollectorNode {
	n := &CollectorNode{
		eng:                eng,
		col:                col,
		poll:               poll,
		overhead:           overhead,
		scratch:            make([]byte, 2048),
		SampleLatency:      &stats.Sample{},
		MirrorQueueLatency: &stats.Sample{},
	}
	n.port = sim.NewPort(eng, n, 0, rate)
	return n
}

// Port returns the node's NIC. It must be connected to a monitor port.
func (n *CollectorNode) Port() *sim.Port { return n.port }

// AttachInSwitch binds the collector to a switch's data-plane sample
// sink (§9.2's in-switch collector): samples arrive at switching time
// with no monitor port, no mirror queue, and no polling batch — only the
// fixed processing overhead applies.
func (n *CollectorNode) AttachInSwitch(sw *switchsim.Switch) {
	sw.SampleSink = func(now units.Time, pkt *sim.Packet) {
		at := now.Add(n.overhead)
		frame := pkt.WireBytes(n.scratch)
		n.scratch = frame[:cap(frame)]
		if err := n.col.Ingest(at, frame); err != nil {
			n.IngestErrors++
		}
		if pkt.SentAt > 0 {
			n.SampleLatency.Add(at.Sub(pkt.SentAt).Microseconds())
		}
		if pkt.EnteredSwitch > 0 {
			n.MirrorQueueLatency.Add(at.Sub(pkt.EnteredSwitch).Microseconds())
		}
		if n.OnSample != nil {
			n.OnSample(at, pkt)
		}
	}
}

// Collector returns the wrapped collector.
func (n *CollectorNode) Collector() *core.Collector { return n.col }

// Name implements sim.Node.
func (n *CollectorNode) Name() string { return "collector" }

// Receive implements sim.Node: buffer the frame until the next poll.
func (n *CollectorNode) Receive(now units.Time, _ *sim.Port, pkt *sim.Packet) {
	n.pending = append(n.pending, pkt)
	if n.ticker == nil {
		n.ticker = sim.NewTicker(n.eng, n.poll, n.deliver)
	}
}

// deliver flushes the pending batch into the collector.
func (n *CollectorNode) deliver(now units.Time) {
	if len(n.pending) == 0 {
		return
	}
	at := now.Add(n.overhead)
	for _, pkt := range n.pending {
		frame := pkt.WireBytes(n.scratch)
		n.scratch = frame[:cap(frame)]
		if err := n.col.Ingest(at, frame); err != nil {
			n.IngestErrors++
		}
		if pkt.SentAt > 0 {
			n.SampleLatency.Add(at.Sub(pkt.SentAt).Microseconds())
		}
		if pkt.EnteredSwitch > 0 {
			n.MirrorQueueLatency.Add(at.Sub(pkt.EnteredSwitch).Microseconds())
		}
		if n.OnSample != nil {
			n.OnSample(at, pkt)
		}
		n.eng.FreePacket(pkt)
	}
	n.pending = n.pending[:0]
}
