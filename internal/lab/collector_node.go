package lab

import (
	"errors"

	"planck/internal/core"
	"planck/internal/faults"
	"planck/internal/obs"
	"planck/internal/obs/trace"
	"planck/internal/sim"
	"planck/internal/switchsim"
	"planck/internal/units"
)

// CollectorNode is the server process terminating one monitor link. It
// models the capture stack the paper built on netmap: frames arriving on
// the NIC are delivered to the collector in batches at each poll tick,
// and every sample's timestamp is the delivery time — which is what the
// rate estimator and all latency measurements see. The node serializes
// each simulated packet into genuine wire bytes before handing it to the
// collector, so the exact parse path a hardware deployment would run is
// exercised for every sample.
type CollectorNode struct {
	eng *sim.Engine
	// ing is the part of a collector the capture stack feeds: the
	// shared core.Ingester seam both the serial core.Collector and
	// the concurrent core.ShardedCollector satisfy.
	ing      core.Ingester
	col      *core.Collector        // serial mode, nil when sharded
	sharded  *core.ShardedCollector // sharded mode, nil when serial
	port     *sim.Port
	poll     units.Duration
	overhead units.Duration

	pending []*sim.Packet
	ticker  *sim.Ticker

	scratch []byte

	// Batch staging for the fault-free delivery path: wire bytes are
	// copied out of scratch into a reusable arena (WireBytes reuses
	// scratch across packets) and handed to the collector in one
	// IngestBatch call per poll tick.
	bts     []units.Time
	barena  []byte
	boffs   []int // frame i is barena[boffs[i]:boffs[i+1]]
	bframes [][]byte

	// flt, when set, runs every mirror-path frame through a fault
	// schedule (loss/corruption/duplication/reordering/skew) before the
	// collector sees it; sched additionally gates collector stalls.
	flt   *faults.Injector
	sched *faults.Schedule

	// crashed models process death: frames arriving while crashed are
	// freed unprocessed (the NIC ring has no reader), until a supervisor
	// installs a replacement collector via Restart*.
	crashed bool

	// lastDelivery is the poll tick that last delivered at least one
	// post-fault frame to the collector — the heartbeat signal. It is
	// intentionally the tick's engine time, not a (possibly skewed)
	// sample timestamp. Boot counts as a delivery so a freshly built
	// testbed gets a staleness grace period before traffic starts.
	lastDelivery units.Time
	delivered    int64

	// SampleLatency records, for every delivered sample, the time from
	// the sender's stamp (tcpdump-equivalent) to collector delivery —
	// the measurement latency of §5.2/Fig. 8. Recorded in nanoseconds,
	// reported in microseconds.
	SampleLatency *obs.Histogram
	// MirrorQueueLatency records time from switch entry to collector
	// delivery (the buffering component, Fig. 12), microseconds.
	MirrorQueueLatency *obs.Histogram

	// OnSample, when set, observes each delivered sample after ingest.
	OnSample func(now units.Time, pkt *sim.Packet)

	// OnFrame, when set, observes the exact wire bytes and delivery
	// timestamp of every sample just before ingest — the hook the
	// serial-equivalence oracle uses to capture a replayable stream.
	// The buffer is reused across samples; copy to retain.
	OnFrame func(at units.Time, frame []byte)

	// OnBatchEnd, when set, fires on the engine goroutine after each
	// poll batch has been fully processed (sharded pipelines flushed,
	// all event callbacks delivered). Supervisors drain their
	// merger-queued events here, so event handling happens-after the
	// batch without racing the engine.
	OnBatchEnd func(now units.Time)

	// Tracer, when set, receives the capture timestamp of each
	// delivered batch (the earliest sample's sender stamp), back-dating
	// the SampleAt of any control-loop spans the batch's ingest opened.
	Tracer *trace.Tracer

	// IngestErrors counts frames the collector rejected.
	IngestErrors int64
}

// NewCollectorNode builds a collector process with its NIC port running
// at rate (which must match the monitor port it connects to).
func NewCollectorNode(eng *sim.Engine, col *core.Collector, rate units.Rate, poll, overhead units.Duration) *CollectorNode {
	n := newNode(eng, rate, poll, overhead)
	n.col = col
	n.ing = col
	return n
}

// NewShardedCollectorNode is NewCollectorNode for the concurrent
// pipeline: deliveries fan out across sc's shards, and the node flushes
// the pipeline at the end of every poll batch so event dispatch and the
// query surface stay within one poll interval of the serial collector.
func NewShardedCollectorNode(eng *sim.Engine, sc *core.ShardedCollector, rate units.Rate, poll, overhead units.Duration) *CollectorNode {
	n := newNode(eng, rate, poll, overhead)
	n.sharded = sc
	n.ing = sc
	return n
}

func newNode(eng *sim.Engine, rate units.Rate, poll, overhead units.Duration) *CollectorNode {
	n := &CollectorNode{
		eng:      eng,
		poll:     poll,
		overhead: overhead,
		scratch:  make([]byte, 2048),
		// Latencies are recorded as exact nanosecond durations and
		// reported in microseconds (scale 1e-3), preserving the units
		// the experiment harnesses and the paper's figures use.
		SampleLatency:      obs.NewScaledHistogram(1e-3),
		MirrorQueueLatency: obs.NewScaledHistogram(1e-3),
	}
	n.port = sim.NewPort(eng, n, 0, rate)
	return n
}

// RegisterMetrics exposes the node's instruments in r, labelled with
// the monitored switch's name.
func (n *CollectorNode) RegisterMetrics(r *obs.Registry, switchName string) {
	label := obs.Label("switch", switchName)
	r.MustRegister("planck_lab_sample_latency_us", n.SampleLatency, label)
	r.MustRegister("planck_lab_mirror_queue_latency_us", n.MirrorQueueLatency, label)
	r.GaugeFunc("planck_lab_ingest_errors_total", func() float64 { return float64(n.IngestErrors) }, label)
}

// Port returns the node's NIC. It must be connected to a monitor port.
func (n *CollectorNode) Port() *sim.Port { return n.port }

// SetFaultInjector interposes inj on the mirror path; its schedule
// additionally drives collector stall windows. Call before Run.
func (n *CollectorNode) SetFaultInjector(inj *faults.Injector) {
	n.flt = inj
	if inj != nil {
		n.sched = inj.Schedule()
	} else {
		n.sched = nil
	}
}

// Crash kills the collector process at now: pending frames are freed,
// the concurrent pipeline (if any) is shut down, and all subsequent
// arrivals are discarded until Restart. Flow tables, estimators, and
// cooldown state die with the process — exactly what a supervisor must
// compensate for.
func (n *CollectorNode) Crash(now units.Time) {
	if n.crashed {
		return
	}
	n.crashed = true
	for _, pkt := range n.pending {
		n.eng.FreePacket(pkt)
	}
	n.pending = n.pending[:0]
	if n.sharded != nil {
		// Stop the dead pipeline's goroutines. Close drains its queues
		// first; late events from that drain carry the old generation
		// and are discarded by the supervisor's subscription guard.
		n.sharded.Close()
	}
}

// Crashed reports whether the node is dead and awaiting a restart.
func (n *CollectorNode) Crashed() bool { return n.crashed }

// RestartSerial installs a replacement serial collector and resumes
// capture. The supervisor owns rebuilding state (port mapper, event
// subscription, cooldown restore) before calling this.
func (n *CollectorNode) RestartSerial(col *core.Collector) {
	n.col = col
	n.sharded = nil
	n.ing = col
	n.crashed = false
}

// RestartSharded is RestartSerial for a replacement concurrent
// pipeline.
func (n *CollectorNode) RestartSharded(sc *core.ShardedCollector) {
	n.col = nil
	n.sharded = sc
	n.ing = sc
	n.crashed = false
}

// LastDelivery returns the engine time of the last poll tick that
// delivered at least one frame to the collector (0 = not yet, counts
// from boot).
func (n *CollectorNode) LastDelivery() units.Time { return n.lastDelivery }

// Delivered returns how many post-fault frames reached the collector.
func (n *CollectorNode) Delivered() int64 { return n.delivered }

// ingestOne runs one delivered sample through the fault layer (if any),
// the collector, and the latency accounting shared by both capture
// paths.
func (n *CollectorNode) ingestOne(at units.Time, pkt *sim.Packet) {
	frame := pkt.WireBytes(n.scratch)
	n.scratch = frame[:cap(frame)]
	if n.flt != nil {
		n.flt.Apply(at, frame, func(t units.Time, fr []byte, current bool) {
			n.deliverOne(t, fr)
			if current {
				n.accountLatency(t, pkt)
			}
		})
		return
	}
	n.deliverOne(at, frame)
	n.accountLatency(at, pkt)
}

// deliverOne hands one surviving frame to the collector.
func (n *CollectorNode) deliverOne(at units.Time, frame []byte) {
	if n.OnFrame != nil {
		n.OnFrame(at, frame)
	}
	if err := n.ing.Ingest(at, frame); err != nil {
		// Includes timestamp regressions from reordered or negatively
		// skewed frames — the real collector rejects those too.
		n.IngestErrors++
	}
	n.delivered++
}

// deliverBatch hands a poll tick's surviving frames to the collector in
// one IngestBatch call — the fault-free capture path, mirroring how the
// paper's netmap stack hands the collector a frame batch per poll. All
// frames of a tick share one delivery timestamp, so the batch is
// trivially monotone and takes the collector's fast path. Packets are
// freed by the caller after this returns.
func (n *CollectorNode) deliverBatch(at units.Time, pkts []*sim.Packet) {
	n.bts = n.bts[:0]
	n.barena = n.barena[:0]
	n.boffs = append(n.boffs[:0], 0)
	for _, pkt := range pkts {
		frame := pkt.WireBytes(n.scratch)
		n.scratch = frame[:cap(frame)]
		n.barena = append(n.barena, frame...)
		n.boffs = append(n.boffs, len(n.barena))
		n.bts = append(n.bts, at)
	}
	n.bframes = n.bframes[:0]
	for i := 0; i+1 < len(n.boffs); i++ {
		n.bframes = append(n.bframes, n.barena[n.boffs[i]:n.boffs[i+1]])
	}
	if n.OnFrame != nil {
		for _, fr := range n.bframes {
			n.OnFrame(at, fr)
		}
	}
	if err := n.ing.IngestBatch(n.bts, n.bframes); err != nil {
		var be *core.BatchError
		if errors.As(err, &be) {
			n.IngestErrors += int64(be.Failed)
		} else {
			n.IngestErrors += int64(len(n.bframes))
		}
	}
	n.delivered += int64(len(n.bframes))
	for _, pkt := range pkts {
		n.accountLatency(at, pkt)
	}
}

// accountLatency records the measurement-latency histograms for the
// node's own (non-duplicate, non-replayed) sample.
func (n *CollectorNode) accountLatency(at units.Time, pkt *sim.Packet) {
	if pkt.SentAt > 0 {
		n.SampleLatency.Observe(int64(at.Sub(pkt.SentAt)))
	}
	if pkt.EnteredSwitch > 0 {
		n.MirrorQueueLatency.Observe(int64(at.Sub(pkt.EnteredSwitch)))
	}
	if n.OnSample != nil {
		n.OnSample(at, pkt)
	}
}

// AttachInSwitch binds the collector to a switch's data-plane sample
// sink (§9.2's in-switch collector): samples arrive at switching time
// with no monitor port, no mirror queue, and no polling batch — only the
// fixed processing overhead applies.
func (n *CollectorNode) AttachInSwitch(sw *switchsim.Switch) {
	sw.SampleSink = func(now units.Time, pkt *sim.Packet) {
		if n.crashed {
			return
		}
		before := n.delivered
		n.ingestOne(now.Add(n.overhead), pkt)
		// With no poll batch there is no natural flush point; drain the
		// concurrent pipeline per sample so callbacks keep switching-time
		// latency. (Sharded + in-switch trades hand-off batching away.)
		if n.sharded != nil {
			n.sharded.Flush()
		}
		if n.Tracer != nil {
			capAt := pkt.SentAt
			if capAt == 0 {
				capAt = now
			}
			n.Tracer.StampCapture(capAt)
		}
		if n.delivered > before {
			n.lastDelivery = now
		}
		if n.OnBatchEnd != nil {
			n.OnBatchEnd(now)
		}
	}
}

// Collector returns the wrapped serial collector, or nil when the node
// runs the sharded pipeline.
func (n *CollectorNode) Collector() *core.Collector { return n.col }

// Sharded returns the wrapped concurrent pipeline, or nil when the node
// runs the serial collector.
func (n *CollectorNode) Sharded() *core.ShardedCollector { return n.sharded }

// Name implements sim.Node.
func (n *CollectorNode) Name() string { return "collector" }

// Receive implements sim.Node: buffer the frame until the next poll.
// While crashed, frames fall on the floor — nothing reads the ring.
func (n *CollectorNode) Receive(now units.Time, _ *sim.Port, pkt *sim.Packet) {
	if n.crashed {
		n.eng.FreePacket(pkt)
		return
	}
	n.pending = append(n.pending, pkt)
	if n.ticker == nil {
		n.ticker = sim.NewTicker(n.eng, n.poll, n.deliver)
	}
}

// deliver flushes the pending batch into the collector.
func (n *CollectorNode) deliver(now units.Time) {
	if n.crashed || len(n.pending) == 0 {
		return
	}
	// A stalled collector stops consuming: frames stay queued (kernel
	// buffers grow) and are delivered — with correspondingly later
	// timestamps — once the stall window passes.
	if n.sched.StallActive(now) {
		return
	}
	before := n.delivered
	at := now.Add(n.overhead)
	var capAt units.Time
	if n.Tracer != nil {
		// The earliest sender stamp in the batch approximates the
		// capture time of whichever sample triggers an event during this
		// ingest (overestimating detection by at most one poll).
		for _, pkt := range n.pending {
			if pkt.SentAt > 0 && (capAt == 0 || pkt.SentAt < capAt) {
				capAt = pkt.SentAt
			}
		}
	}
	if n.flt == nil {
		// Fault-free path: one IngestBatch per poll tick.
		n.deliverBatch(at, n.pending)
		for _, pkt := range n.pending {
			n.eng.FreePacket(pkt)
		}
	} else {
		// The fault layer rewrites each frame's delivery (skew, drops,
		// duplicates, holds), so faulted streams stay per-frame.
		for _, pkt := range n.pending {
			n.ingestOne(at, pkt)
			n.eng.FreePacket(pkt)
		}
	}
	n.pending = n.pending[:0]
	// Drain the concurrent pipeline at every poll boundary: the simulator
	// blocks here until all callbacks for this batch have fired, which
	// both bounds event latency to one poll interval and keeps the run
	// deterministic (callbacks execute while the engine is parked).
	if n.sharded != nil {
		n.sharded.Flush()
	}
	if n.Tracer != nil {
		// After the flush: sharded births complete before Flush returns,
		// serial births are synchronous inside IngestBatch.
		if capAt == 0 {
			capAt = at
		}
		n.Tracer.StampCapture(capAt)
	}
	if n.delivered > before {
		n.lastDelivery = now
	}
	if n.OnBatchEnd != nil {
		n.OnBatchEnd(now)
	}
}
