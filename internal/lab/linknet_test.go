package lab

import (
	"fmt"
	"testing"

	"planck/internal/core"
	"planck/internal/faults"
	"planck/internal/sim"
	"planck/internal/topo"
	"planck/internal/units"
)

// hotFleet builds a fleet testbed with two persistent hot spots (one
// per side of the fat tree) and returns the lab plus the switch index
// carrying hot spot A's egress (host 4's edge switch).
func hotFleet(t *testing.T, opts Options) (*Lab, int) {
	t.Helper()
	net := topo.FatTree16(units.Rate10G)
	opts.Net = net
	opts.Mirror = true
	opts.Aggregate = true
	l, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := l.Hosts[i].StartFlow(0, topo.HostIP(4), uint16(5001+i), 40<<20, int32(1+i)); err != nil {
			t.Fatal(err)
		}
		if _, err := l.Hosts[8+i].StartFlow(0, topo.HostIP(12), uint16(6001+i), 40<<20, int32(9+i)); err != nil {
			t.Fatal(err)
		}
	}
	return l, net.Hosts[4].Switch
}

func assertCooldownSpacing(t *testing.T, events []core.CongestionEvent) {
	t.Helper()
	cooldown := core.Config{}.WithDefaults().EventCooldown
	lastByLink := map[string]units.Time{}
	for _, ev := range events {
		link := fmt.Sprintf("%s/%d", ev.SwitchName, ev.Port)
		if last, ok := lastByLink[link]; ok {
			if gap := ev.Time.Sub(last); gap < cooldown {
				t.Fatalf("duplicate event on %s: spacing %v < cooldown %v", link, gap, cooldown)
			}
		}
		lastByLink[link] = ev.Time
	}
}

// TestFleetTransportSmoke runs the fleet over the wire transport with
// 5% report loss: congestion events still reach the controller, no
// link ever violates cooldown spacing (exactly-once detection), the
// NACK loop demonstrably recovered losses, and every monitored
// vantage delivered reports to the plane.
func TestFleetTransportSmoke(t *testing.T) {
	l, _ := hotFleet(t, Options{
		Transport:     TransportLink,
		LinkFaultSpec: "loss:0.05",
		Seed:          7,
	})
	var events []core.CongestionEvent
	l.Agg.Subscribe(func(ev core.CongestionEvent) { events = append(events, ev) })
	l.Run(60 * units.Millisecond)

	if len(events) == 0 {
		t.Fatal("no congestion events over the transport; the fleet is blind")
	}
	assertCooldownSpacing(t, events)

	rx := l.LinkReceiver()
	if rx == nil {
		t.Fatal("no link receiver in transport mode")
	}
	if rx.RecordsReleased() == 0 {
		t.Fatal("no records released to the plane")
	}
	if rx.GapsDetected() == 0 {
		t.Fatal("5% loss produced no sequence gaps; the fault gate is not on the path")
	}
	resends := int64(0)
	lost := int64(0)
	active := 0
	for s := 0; s < l.Net.NumSwitches(); s++ {
		snd := l.LinkSender(s)
		if snd == nil {
			continue
		}
		resends += snd.Resends()
		if g := l.LinkGate(s); g != nil {
			lost += g.Met.Lost.Value()
		}
		if snd.RecordsSent() > 0 {
			active++
			if _, synced := snd.Offset(); !synced {
				t.Errorf("switch %d sender never completed clock sync", s)
			}
		}
	}
	if lost == 0 {
		t.Fatal("fault gates dropped nothing at 5% loss")
	}
	if resends == 0 {
		t.Fatal("no retransmits despite injected loss")
	}
	if active == 0 {
		t.Fatal("no vantage sent any records")
	}
	// Loss is recovered, not silently dropped: every frame the gates
	// lost was NACKed back into the stream (abandonment means the
	// 10-attempt budget ran out — it must not trigger at 5% loss).
	if rx.Abandoned() != 0 {
		t.Fatalf("%d gaps abandoned at 5%% loss; NACK recovery should cover this", rx.Abandoned())
	}
}

// TestFleetTransportMatchesInProcessEvents runs the same workload with
// the in-process sink and with a fault-free wire transport. The
// transport adds channel latency and a reorder window, so event
// *times* shift — but the set of congested links detected must match:
// federation semantics do not change with the delivery mechanism.
func TestFleetTransportMatchesInProcessEvents(t *testing.T) {
	type outcome struct {
		links map[string]bool
		n     int
	}
	run := func(mode TransportMode) outcome {
		l, _ := hotFleet(t, Options{Transport: mode, Seed: 7})
		o := outcome{links: map[string]bool{}}
		l.Agg.Subscribe(func(ev core.CongestionEvent) {
			o.links[fmt.Sprintf("%s/%d", ev.SwitchName, ev.Port)] = true
			o.n++
		})
		l.Run(60 * units.Millisecond)
		return o
	}
	inproc := run(TransportInProcess)
	link := run(TransportLink)
	if inproc.n == 0 {
		t.Fatal("in-process run emitted no events; comparison vacuous")
	}
	if link.n == 0 {
		t.Fatal("transport run emitted no events")
	}
	for lk := range inproc.links {
		if !link.links[lk] {
			t.Errorf("link %s congested in-process but never detected over the transport", lk)
		}
	}
	for lk := range link.links {
		if !inproc.links[lk] {
			t.Errorf("link %s detected over the transport but not in-process", lk)
		}
	}
}

// TestFleetChaosPartitionedLink is the crash test's dual: the victim's
// collector stays alive but its report channel is partitioned — the
// vantage process is healthy (supervisor heartbeat never goes dark)
// while the plane stops hearing from it.
//
// Degradation contract:
//   - the plane flags the victim vantage stale during the partition
//     while the supervisor does NOT flip to dark (it watches the local
//     mirror feed, which is fine);
//   - plane-side utilization queries for the victim's links are served
//     from the supervisor's sFlow fallback estimator during the
//     partition rather than going blind;
//   - after the heal, the partition-era backlog recovers via NACK and
//     the victim un-stales;
//   - no link's merged event stream ever violates cooldown spacing —
//     the backlog replay cannot double-fire events (exactly-once).
func TestFleetChaosPartitionedLink(t *testing.T) {
	const (
		partStart = 20 * units.Millisecond
		partEnd   = 32 * units.Millisecond
		probeAt   = 28 * units.Millisecond
		runFor    = 80 * units.Millisecond
	)
	l, victim := hotFleet(t, Options{
		Transport: TransportLink,
		Supervise: true,
		SupervisorConfig: SupervisorConfig{
			Heartbeat: core.HeartbeatConfig{Interval: 5 * units.Millisecond},
		},
		Seed: 7,
	})
	var events []core.CongestionEvent
	l.Agg.Subscribe(func(ev core.CongestionEvent) { events = append(events, ev) })

	gate := l.LinkGate(victim)
	if gate == nil {
		t.Fatal("victim has no link gate")
	}
	gate.SetSchedule(faults.NewSchedule(faults.Rule{
		Kind: faults.KindPartition, From: units.Time(partStart), To: units.Time(partEnd), Prob: 1,
	}), 99)

	var victimStale, supDark, excluded bool
	var fallbackBefore, fallbackProbe int64
	var utilDuring units.Rate
	victimPort := -1
	l.Eng.Schedule(units.Time(partStart), sim.Callback(func(units.Time) {
		fallbackBefore = l.Agg.FallbackServes()
	}), nil)
	l.Eng.Schedule(units.Time(probeAt), sim.Callback(func(units.Time) {
		victimStale = l.Vantage(victim).Stale()
		supDark = l.Supervisor(victim).Dark()
		excluded = l.LinkReceiver().Excluded(uint16(l.Vantage(victim).ID()))
		// Host 4 hangs off the victim edge switch; find its port and ask
		// the plane for utilization — it must come from the fallback.
		for p, ep := range l.Net.Ports[victim] {
			if ep.Kind == topo.ToHost && ep.Host == 4 {
				victimPort = p
			}
		}
		utilDuring = l.Agg.LinkUtilization(victim, victimPort)
		fallbackProbe = l.Agg.FallbackServes()
	}), nil)
	l.Run(runFor)

	if !victimStale {
		t.Error("victim vantage not flagged stale during the partition")
	}
	if supDark {
		t.Error("supervisor went dark during a report-channel partition; the local mirror feed was healthy")
	}
	if !excluded {
		t.Error("receiver never excluded the silent vantage from the merge watermark")
	}
	if fallbackProbe <= fallbackBefore {
		t.Error("plane utilization query during the partition was not served by the sFlow fallback")
	}
	if utilDuring == 0 {
		t.Errorf("fallback utilization for victim port %d is zero; the sFlow estimator saw the hot link", victimPort)
	}
	if l.Vantage(victim).Stale() {
		t.Error("victim vantage still stale at end of run; the healed channel never recovered")
	}
	if l.LinkReceiver().Excluded(uint16(l.Vantage(victim).ID())) {
		t.Error("victim still excluded from the watermark at end of run")
	}

	// Exactly-once after the heal: the NACK-recovered backlog must not
	// double-fire any link's events.
	assertCooldownSpacing(t, events)
	victimName := l.Net.SwitchNames[victim]
	resumed := 0
	for _, ev := range events {
		if ev.SwitchName == victimName && ev.Time > units.Time(partEnd)+units.Time(5*units.Millisecond) {
			resumed++
		}
	}
	if resumed == 0 {
		t.Error("victim emitted no events after the heal; the report path never recovered")
	}
}
