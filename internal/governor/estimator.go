// Package governor closes Planck's last open loop: the sampling rate
// itself. Oversubscribed mirroring makes the effective per-port
// sampling rate an emergent, load-dependent quantity (§3.1, Fig. 9) —
// the repo measures through it everywhere, and this package is where it
// is finally estimated online and managed. A RateEstimator
// cross-references the switch's per-port mirror counters (admitted vs
// tail-dropped copies — the drops ARE the sampling mechanism) against
// an sFlow-style sampled byte stream, yielding an effective-rate
// estimate with an attached confidence; a Governor consumes those
// estimates and actuates mirror configuration — shedding low-value
// ports or tuning per-port sample-rate budgets — through the same
// epoch-versioned snapshot/diff plane reroutes ride.
//
// The estimator is also the supervisor's dark-feed fallback: the
// sFlow half is exactly the degraded §2.1 estimator the supervisor
// previously carried privately, so both consumers now share one window
// implementation and one sflow.Config.
package governor

import (
	"math"
	"math/rand"

	"planck/internal/packet"
	"planck/internal/sflow"
	"planck/internal/stats"
	"planck/internal/units"
)

// estBuckets is the ring size of the estimation window: the window is
// split into 8 buckets so estimates age out smoothly (the supervisor's
// fallback estimator used the same shape).
const estBuckets = 8

// EstimatorConfig configures a RateEstimator. It is the single shared
// estimator configuration: the supervisor's fallback and the governor
// both consume it, replacing the parallel Fallback/FallbackWindow
// copies that used to live in lab.SupervisorConfig.
type EstimatorConfig struct {
	// SFlow models the one-in-N sampled byte stream the estimator
	// cross-references mirror counters against (default: the paper's
	// G8264 numbers — 1-in-1024 capped at 300 samples/s).
	SFlow sflow.Config
	// Window is the sliding estimation window (default 8ms).
	Window units.Duration
	// Seed feeds the sampler's private PRNG so estimation never
	// perturbs data-plane determinism.
	Seed int64
}

// withDefaults fills zero fields.
func (c EstimatorConfig) withDefaults() EstimatorConfig {
	def := sflow.DefaultG8264()
	if c.SFlow.SampleRate <= 0 {
		c.SFlow.SampleRate = def.SampleRate
	}
	if c.SFlow.ControlPlaneCap <= 0 {
		c.SFlow.ControlPlaneCap = def.ControlPlaneCap
	}
	if c.Window <= 0 {
		c.Window = 8 * units.Millisecond
	}
	return c
}

// estBucket is one time slice of a port's estimation window. Stale
// entries are lazily reset when their slot is reused.
type estBucket struct {
	id int64 // absolute bucket number

	sampledBytes int64 // sFlow-selected bytes
	sampledPkts  int64

	queuedBytes int64 // mirror copies admitted to the monitor queue
	queuedPkts  int64
	dropBytes   int64 // mirror copies tail-dropped (sampling drops)
	dropPkts    int64
}

// portState is one egress port's ring plus the counter baselines the
// delta extraction works from.
type portState struct {
	ring [estBuckets]estBucket

	// lastQueued/lastDropped are the absolute counter values seen by
	// the previous RecordMirrorCounters call; seen gates the first call
	// so pre-attach traffic never lands in the window.
	lastQueued, lastDropped stats.Counter
	seen                    bool
}

// Estimate is one port's (or one switch's aggregate) effective
// sampling-rate estimate over the window.
type Estimate struct {
	// Offered is the rate of traffic offered to the mirror tap: the sum
	// of admitted and dropped copy rates while the counters move, the
	// sFlow count-multiplied estimate when they are frozen (a shed or
	// dead tap still carries traffic the sFlow side sees).
	Offered units.Rate
	// Admitted is the rate of mirror copies that made the monitor
	// queue; Dropped is the rate tail-dropped at the mirror allocation.
	Admitted, Dropped units.Rate
	// Effective is the effective sampling rate in [0,1]: the fraction
	// of offered mirror traffic that survived to the monitor queue.
	// 1 when nothing was offered (nothing to sample), 0 when the sFlow
	// side sees traffic but the mirror counters are frozen.
	Effective float64
	// Samples is the packet count backing the estimate.
	Samples int64
	// Confidence in [0,1] discounts the estimate by its statistical
	// weight via the §2.1 error model (≈196·sqrt(1/s)% at 95%):
	// 1 − min(1, 1.96/sqrt(Samples)). Zero when nothing was observed.
	Confidence float64
}

// RateEstimator estimates per-port effective sampling rates online. It
// is fed from two sides: Observe offers every switched packet to the
// sFlow-style sampler (the supervisor's dark-feed path), and
// RecordMirrorCounters folds in the switch's per-port mirror counters
// (the governor's polling path). All state is fixed-size per port, so
// both update paths are allocation-free — planck-bench self-gates this.
type RateEstimator struct {
	cfg       EstimatorConfig
	bucketDur units.Duration
	sampler   *sflow.Sampler
	ports     []portState

	// curPort routes each sFlow sample to its port: the sampler's
	// callback has no port argument, so Observe stashes it here.
	// Engine-goroutine only.
	curPort int
}

// NewRateEstimator builds an estimator over a switch with the given
// port count.
func NewRateEstimator(cfg EstimatorConfig, numPorts int) *RateEstimator {
	cfg = cfg.withDefaults()
	e := &RateEstimator{
		cfg:       cfg,
		bucketDur: cfg.Window / estBuckets,
		ports:     make([]portState, numPorts),
	}
	e.sampler = sflow.NewSampler(cfg.SFlow, rand.New(rand.NewSource(cfg.Seed)), e.record)
	return e
}

// Config returns the (defaulted) estimator configuration.
func (e *RateEstimator) Config() EstimatorConfig { return e.cfg }

// Window returns the sliding estimation window.
func (e *RateEstimator) Window() units.Duration { return e.cfg.Window }

// NumPorts returns the port count the estimator was sized for.
func (e *RateEstimator) NumPorts() int { return len(e.ports) }

// Observe offers one switched packet (egress port, flow key, wire
// length) to the sFlow-style sampler side of the estimator.
func (e *RateEstimator) Observe(now units.Time, outPort int, key packet.FlowKey, wireLen int) {
	if outPort < 0 || outPort >= len(e.ports) {
		return
	}
	e.curPort = outPort
	e.sampler.Observe(now, key, wireLen)
}

// record lands one selected sample in its time bucket.
func (e *RateEstimator) record(t units.Time, _ packet.FlowKey, wireLen int) {
	b := e.bucket(&e.ports[e.curPort], t)
	b.sampledBytes += int64(wireLen)
	b.sampledPkts++
}

// RecordMirrorCounters folds port p's cumulative mirror counters
// (absolute values, as switchsim.Switch.MirrorPortCounters reports
// them) into the window as deltas since the previous call. The first
// call per port only establishes the baseline.
func (e *RateEstimator) RecordMirrorCounters(now units.Time, p int, queued, dropped stats.Counter) {
	if p < 0 || p >= len(e.ports) {
		return
	}
	ps := &e.ports[p]
	if ps.seen {
		dq, dd := queued, dropped
		dq.Packets -= ps.lastQueued.Packets
		dq.Bytes -= ps.lastQueued.Bytes
		dd.Packets -= ps.lastDropped.Packets
		dd.Bytes -= ps.lastDropped.Bytes
		if dq.Packets > 0 || dd.Packets > 0 {
			b := e.bucket(ps, now)
			b.queuedBytes += dq.Bytes
			b.queuedPkts += dq.Packets
			b.dropBytes += dd.Bytes
			b.dropPkts += dd.Packets
		}
	}
	ps.lastQueued, ps.lastDropped = queued, dropped
	ps.seen = true
}

// bucket resolves (and lazily resets) the window slot for time t.
func (e *RateEstimator) bucket(ps *portState, t units.Time) *estBucket {
	id := int64(t) / int64(e.bucketDur)
	b := &ps.ring[id%estBuckets]
	if b.id != id {
		*b = estBucket{id: id}
	}
	return b
}

// window sums the live buckets of port p at time now.
func (e *RateEstimator) window(now units.Time, p int) (sum estBucket) {
	cur := int64(now) / int64(e.bucketDur)
	for i := range e.ports[p].ring {
		b := &e.ports[p].ring[i]
		if b.id > cur-estBuckets && b.id <= cur {
			sum.sampledBytes += b.sampledBytes
			sum.sampledPkts += b.sampledPkts
			sum.queuedBytes += b.queuedBytes
			sum.queuedPkts += b.queuedPkts
			sum.dropBytes += b.dropBytes
			sum.dropPkts += b.dropPkts
		}
	}
	return sum
}

// Utilization estimates port p's traffic rate at now from the sFlow
// side alone: sampled bytes in the window × N / window. This is the
// supervisor's dark-feed fallback quantity, unchanged from the private
// estimator it replaces.
func (e *RateEstimator) Utilization(now units.Time, p int) units.Rate {
	if p < 0 || p >= len(e.ports) {
		return 0
	}
	w := e.window(now, p)
	return units.RateOf(w.sampledBytes*int64(e.cfg.SFlow.SampleRate), e.cfg.Window)
}

// confidence maps a backing sample count onto [0,1] via the §2.1 error
// model: 1 − min(1, 1.96/sqrt(n)).
func confidence(n int64) float64 {
	if n <= 0 {
		return 0
	}
	c := 1 - 1.96/math.Sqrt(float64(n))
	if c < 0 {
		return 0
	}
	return c
}

// estimateFrom converts a summed window into an Estimate.
func (e *RateEstimator) estimateFrom(w estBucket) Estimate {
	est := Estimate{
		Admitted: units.RateOf(w.queuedBytes, e.cfg.Window),
		Dropped:  units.RateOf(w.dropBytes, e.cfg.Window),
		Samples:  w.queuedPkts + w.dropPkts,
	}
	offered := w.queuedBytes + w.dropBytes
	if offered > 0 {
		est.Offered = units.RateOf(offered, e.cfg.Window)
		est.Effective = float64(w.queuedBytes) / float64(offered)
		est.Confidence = confidence(est.Samples)
		return est
	}
	// Mirror counters frozen: cross-reference the sFlow side. Traffic
	// without mirror copies means the tap is shed (or dead) — effective
	// rate zero; no traffic anywhere means there is nothing to sample.
	sflowBytes := w.sampledBytes * int64(e.cfg.SFlow.SampleRate)
	est.Offered = units.RateOf(sflowBytes, e.cfg.Window)
	if sflowBytes > 0 {
		est.Effective = 0
		est.Confidence = confidence(w.sampledPkts)
	} else {
		est.Effective = 1
		est.Confidence = 0
	}
	return est
}

// Estimate returns port p's effective sampling-rate estimate at now.
func (e *RateEstimator) Estimate(now units.Time, p int) Estimate {
	if p < 0 || p >= len(e.ports) {
		return Estimate{Effective: 1}
	}
	return e.estimateFrom(e.window(now, p))
}

// Aggregate returns the switch-wide estimate at now: the union of
// every port's window, i.e. the monitor port's view of its whole feed.
func (e *RateEstimator) Aggregate(now units.Time) Estimate {
	var sum estBucket
	for p := range e.ports {
		w := e.window(now, p)
		sum.sampledBytes += w.sampledBytes
		sum.sampledPkts += w.sampledPkts
		sum.queuedBytes += w.queuedBytes
		sum.queuedPkts += w.queuedPkts
		sum.dropBytes += w.dropBytes
		sum.dropPkts += w.dropPkts
	}
	return e.estimateFrom(sum)
}
