package governor

import (
	"planck/internal/obs"
	"planck/internal/obs/trace"
	"planck/internal/routing"
	"planck/internal/stats"
	"planck/internal/units"
)

// Config tunes one switch's governor loop. Zero fields take defaults
// sized for the millisecond control loop.
type Config struct {
	// Tick is the governor's control period (default 1ms).
	Tick units.Duration
	// Cooldown rate-limits actuations: after a commit, the governor
	// holds off further shed/tune/restore decisions for this long
	// (default 5ms) — the same discipline the event path applies per
	// link.
	Cooldown units.Duration
	// SaturationThreshold is the aggregate effective sampling rate
	// below which the monitor port counts as saturated and a shed/tune
	// episode begins (default 0.5).
	SaturationThreshold float64
	// RecoverThreshold is the effective rate at or above which a
	// pending episode counts as converged and restores become eligible
	// (default 0.9).
	RecoverThreshold float64
	// MinConfidence gates actuation on estimate confidence: the
	// governor never acts on an estimate backed by too few packets
	// (default 0.5).
	MinConfidence float64
	// ShedFraction: a mirrored port whose share of the offered mirror
	// load is below this fraction is shed instead of tuned — it costs
	// monitor-queue space but yields few samples (default 0.05).
	ShedFraction float64
	// Headroom scales the monitor-link budget the tuner divides among
	// the surviving ports (default 0.9).
	Headroom float64
	// HealthyTicks is how many consecutive healthy ticks (effective ≥
	// RecoverThreshold) must pass before a shed port is restored
	// (default 8) — hysteresis against shed/restore oscillation.
	HealthyTicks int
	// Estimator configures the shared per-port rate estimator.
	Estimator EstimatorConfig
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Tick <= 0 {
		c.Tick = 1 * units.Millisecond
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * units.Millisecond
	}
	if c.SaturationThreshold <= 0 {
		c.SaturationThreshold = 0.5
	}
	if c.RecoverThreshold <= 0 {
		c.RecoverThreshold = 0.9
	}
	if c.MinConfidence <= 0 {
		c.MinConfidence = 0.5
	}
	if c.ShedFraction <= 0 {
		c.ShedFraction = 0.05
	}
	if c.Headroom <= 0 {
		c.Headroom = 0.9
	}
	if c.HealthyTicks <= 0 {
		c.HealthyTicks = 8
	}
	return c
}

// Vantage is the data-plane view the governor polls: per-port mirror
// counters and the live mirror session state. *switchsim.Switch
// satisfies it; a deployment would back it with hardware counters.
type Vantage interface {
	NumPorts() int
	MonitorPort() int
	PortMirrored(p int) bool
	MirrorPortCounters(p int) (queued, dropped stats.Counter)
}

// Actuator is the control-plane seam the governor actuates through:
// one mirror-configuration transaction per decision, committed into
// the epoch-versioned snapshot plane. *controller.Controller satisfies
// it with CommitMirror.
type Actuator interface {
	CommitMirror(now units.Time, traceID uint64, mutate func(*routing.Tx), onActuated func(fire units.Time)) int
}

// EpisodeKind labels a governor actuation episode.
type EpisodeKind uint8

// Episode kinds.
const (
	// EpisodeShedTune is a saturation response: shed low-value ports,
	// tune the survivors' per-port sample-rate budgets.
	EpisodeShedTune EpisodeKind = iota
	// EpisodeRestore re-admits a previously shed port after sustained
	// health.
	EpisodeRestore
)

// String implements fmt.Stringer.
func (k EpisodeKind) String() string {
	if k == EpisodeRestore {
		return "restore"
	}
	return "shed-tune"
}

// Episode records one governor actuation for experiments and the
// smoke gate: what was decided, against which estimate, and when the
// loop closed.
type Episode struct {
	At   units.Time
	Kind EpisodeKind
	// Sheds/Tunes/Restores count the port-level changes in the commit.
	Sheds, Tunes, Restores int
	// Effective and Confidence snapshot the triggering estimate.
	Effective, Confidence float64
	// TraceID is the control-loop span following this episode (0 when
	// untraced).
	TraceID uint64
	// ActuatedAt is when the last diff entry landed on the data plane;
	// ConvergedAt is when the estimator confirmed recovery (zero while
	// pending).
	ActuatedAt, ConvergedAt units.Time
}

// Governor is one switch's closed-loop sampling-rate controller: each
// tick it polls the vantage's mirror counters into the shared
// estimator, and when the monitor port saturates (effective sampling
// rate below threshold, at sufficient confidence, outside the
// cooldown, and — critically — only while its vantage is live) it
// commits a mirror-configuration transaction shedding low-value ports
// and tuning the survivors' per-port sample budgets. Convergence is
// confirmed by the estimator itself: the span closes when the
// effective rate recovers past RecoverThreshold.
type Governor struct {
	cfg  Config
	sw   Vantage
	act  Actuator
	est  *RateEstimator
	name string // switch name, for trace spans
	s    int    // switch index

	// monitorRate is the monitor link's line rate — the budget the
	// tuner divides.
	monitorRate units.Rate

	// dark, when set, reports whether the vantage's mirror feed is
	// dark (supervisor heartbeat): a governor must never actuate from
	// a dark vantage's stale estimate.
	dark func() bool

	trc *trace.Tracer
	// epoch, when set, reads the routing store's current epoch for
	// trace spans.
	epoch func() uint64

	cooldownUntil units.Time
	healthyTicks  int
	// pending is the episode awaiting convergence (index into episodes,
	// -1 when none).
	pending  int
	episodes []Episode

	// desired mirrors the governor's committed per-port state so tunes
	// are only counted (and committed) when they change something.
	desired []routing.MirrorPortConfig
	haveCfg []bool

	// Metrics (planck_governor_*).
	Ticks            obs.Counter
	Commits          obs.Counter
	Sheds            obs.Counter
	Tunes            obs.Counter
	Restores         obs.Counter
	SkippedDark      obs.Counter
	SkippedCooldown  obs.Counter
	SkippedLowConf   obs.Counter
	ConvergedLoops   obs.Counter
	lastEffective    float64
	lastConfidence   float64
	lastOfferedGauge obs.Gauge
}

// New builds a governor for one switch. est may be shared with the
// switch's supervisor (the dark-feed fallback reads the sFlow side of
// the same windows); monitorRate is the monitor link's line rate.
func New(cfg Config, name string, s int, sw Vantage, act Actuator, est *RateEstimator, monitorRate units.Rate) *Governor {
	cfg = cfg.withDefaults()
	return &Governor{
		cfg:         cfg,
		sw:          sw,
		act:         act,
		est:         est,
		name:        name,
		s:           s,
		monitorRate: monitorRate,
		pending:     -1,
		desired:     make([]routing.MirrorPortConfig, sw.NumPorts()),
		haveCfg:     make([]bool, sw.NumPorts()),
	}
}

// Config returns the (defaulted) governor configuration.
func (g *Governor) Config() Config { return g.cfg }

// Estimator returns the shared rate estimator.
func (g *Governor) Estimator() *RateEstimator { return g.est }

// SetDarkGuard installs the vantage-liveness check (supervisor.Dark).
func (g *Governor) SetDarkGuard(fn func() bool) { g.dark = fn }

// SetTracer attaches a control-loop tracer and an epoch reader; each
// episode then opens a span from saturation detection through
// decision, actuation, and estimator-confirmed convergence.
func (g *Governor) SetTracer(tr *trace.Tracer, epoch func() uint64) {
	g.trc = tr
	g.epoch = epoch
}

// Episodes returns the recorded actuation episodes.
func (g *Governor) Episodes() []Episode { return append([]Episode(nil), g.episodes...) }

// LastEstimate returns the aggregate estimate from the latest tick.
func (g *Governor) LastEstimate() (effective, confidence float64) {
	return g.lastEffective, g.lastConfidence
}

// ConvergedEpisodes counts episodes whose loop closed.
func (g *Governor) ConvergedEpisodes() int {
	n := 0
	for i := range g.episodes {
		if g.episodes[i].ConvergedAt != 0 {
			n++
		}
	}
	return n
}

// RegisterMetrics exposes the governor's planck_governor_* series,
// labelled by switch.
func (g *Governor) RegisterMetrics(r *obs.Registry) {
	label := obs.Label("switch", g.name)
	r.MustRegister("planck_governor_ticks_total", &g.Ticks, label)
	r.MustRegister("planck_governor_commits_total", &g.Commits, label)
	r.MustRegister("planck_governor_sheds_total", &g.Sheds, label)
	r.MustRegister("planck_governor_tunes_total", &g.Tunes, label)
	r.MustRegister("planck_governor_restores_total", &g.Restores, label)
	r.MustRegister("planck_governor_skipped_dark_total", &g.SkippedDark, label)
	r.MustRegister("planck_governor_skipped_cooldown_total", &g.SkippedCooldown, label)
	r.MustRegister("planck_governor_skipped_lowconf_total", &g.SkippedLowConf, label)
	r.MustRegister("planck_governor_converged_loops_total", &g.ConvergedLoops, label)
	r.MustRegister("planck_governor_offered_bps", &g.lastOfferedGauge, label)
	r.GaugeFunc("planck_governor_effective", func() float64 { return g.lastEffective }, label)
}

// Tick is one governor round, driven from a sim ticker at cfg.Tick.
func (g *Governor) Tick(now units.Time) {
	g.Ticks.Inc()

	// Poll the vantage's per-port mirror counters into the estimator.
	// This runs even while dark — the estimate must stay fresh so the
	// governor can act the moment the feed recovers — but no actuation
	// decision is taken from it below.
	mon := g.sw.MonitorPort()
	for p := 0; p < g.sw.NumPorts(); p++ {
		if p == mon {
			continue
		}
		q, d := g.sw.MirrorPortCounters(p)
		g.est.RecordMirrorCounters(now, p, q, d)
	}

	agg := g.est.Aggregate(now)
	g.lastEffective, g.lastConfidence = agg.Effective, agg.Confidence
	g.lastOfferedGauge.Set(int64(agg.Offered))

	// Close a pending episode once the estimator confirms recovery.
	if g.pending >= 0 && agg.Effective >= g.cfg.RecoverThreshold &&
		agg.Confidence >= g.cfg.MinConfidence {
		ep := &g.episodes[g.pending]
		if ep.ActuatedAt != 0 { // actuation landed; loop is closed
			ep.ConvergedAt = now
			if g.trc != nil && ep.TraceID != 0 {
				g.trc.MarkConverged(ep.TraceID, now)
			}
			g.ConvergedLoops.Inc()
			g.pending = -1
		}
	}

	// The chaos contract: a dark vantage's estimate is stale by
	// definition — never actuate from it.
	if g.dark != nil && g.dark() {
		g.SkippedDark.Inc()
		g.healthyTicks = 0
		return
	}

	healthy := agg.Effective >= g.cfg.RecoverThreshold
	if healthy {
		g.healthyTicks++
	} else {
		g.healthyTicks = 0
	}

	if now < g.cooldownUntil {
		g.SkippedCooldown.Inc()
		return
	}

	if agg.Effective < g.cfg.SaturationThreshold {
		if agg.Confidence < g.cfg.MinConfidence {
			g.SkippedLowConf.Inc()
			return
		}
		g.shedTune(now, agg)
		return
	}

	// Sustained health with shed ports outstanding: restore one per
	// episode, probing back toward full coverage.
	if healthy && g.healthyTicks >= g.cfg.HealthyTicks && g.pending < 0 {
		g.restoreOne(now, agg)
	}
}

// shedTune plans and commits one saturation response: rank mirrored
// ports by their share of the offered mirror load, shed those below
// ShedFraction, and divide the monitor budget among the survivors as
// per-port target rates.
func (g *Governor) shedTune(now units.Time, agg Estimate) {
	mon := g.sw.MonitorPort()
	budget := units.Rate(g.cfg.Headroom * float64(g.monitorRate))

	// Per-port offered rates over the live mirrored set.
	var total units.Rate
	offered := make([]units.Rate, g.sw.NumPorts())
	for p := range offered {
		if p == mon || !g.sw.PortMirrored(p) {
			continue
		}
		est := g.est.Estimate(now, p)
		offered[p] = est.Offered
		total += est.Offered
	}
	if total <= 0 {
		return
	}

	// Plan: shed below-fraction ports, then split the budget over the
	// survivors proportional to their offered load.
	var keptTotal units.Rate
	shed := make([]bool, len(offered))
	for p, off := range offered {
		if p == mon || !g.sw.PortMirrored(p) {
			continue
		}
		if float64(off) < g.cfg.ShedFraction*float64(total) {
			shed[p] = true
			continue
		}
		keptTotal += off
	}
	if keptTotal <= 0 {
		return
	}

	var sheds, tunes int
	plan := make([]routing.MirrorPortConfig, len(offered))
	touch := make([]bool, len(offered))
	for p, off := range offered {
		if p == mon || !g.sw.PortMirrored(p) {
			continue
		}
		var want routing.MirrorPortConfig
		if shed[p] {
			want = routing.MirrorPortConfig{Mirrored: false}
		} else {
			rate := units.Rate(float64(budget) * float64(off) / float64(keptTotal))
			want = routing.MirrorPortConfig{Mirrored: true, TargetRate: rate}
		}
		if g.haveCfg[p] && g.desired[p] == want {
			continue // already committed; nothing to change
		}
		plan[p], touch[p] = want, true
		if shed[p] {
			sheds++
		} else {
			tunes++
		}
	}
	if sheds+tunes == 0 {
		return
	}

	g.commit(now, EpisodeShedTune, agg, plan, touch, sheds, tunes, 0)
}

// restoreOne re-admits the lowest-numbered shed port with a probe-rate
// budget, keeping restores gradual.
func (g *Governor) restoreOne(now units.Time, agg Estimate) {
	mon := g.sw.MonitorPort()
	for p := 0; p < g.sw.NumPorts(); p++ {
		if p == mon || g.sw.PortMirrored(p) {
			continue
		}
		if !g.haveCfg[p] || g.desired[p].Mirrored {
			continue // not shed by us
		}
		probe := units.Rate(g.cfg.Headroom * g.cfg.ShedFraction * float64(g.monitorRate))
		plan := make([]routing.MirrorPortConfig, g.sw.NumPorts())
		touch := make([]bool, g.sw.NumPorts())
		plan[p] = routing.MirrorPortConfig{Mirrored: true, TargetRate: probe}
		touch[p] = true
		g.commit(now, EpisodeRestore, agg, plan, touch, 0, 0, 1)
		return
	}
}

// commit opens the trace span, commits the transaction, and records
// the episode.
func (g *Governor) commit(now units.Time, kind EpisodeKind, agg Estimate,
	plan []routing.MirrorPortConfig, touch []bool, sheds, tunes, restores int) {

	var traceID uint64
	if g.trc != nil {
		traceID = g.trc.NextID()
		var epochOld uint64
		if g.epoch != nil {
			epochOld = g.epoch()
		}
		// The span's "congested link" is the monitor port itself: the
		// offered mirror load against the monitor line rate.
		g.trc.Begin(traceID, now, g.name, g.sw.MonitorPort(), epochOld, agg.Offered, g.monitorRate)
		// The governor detects, decides, and commits in one place: the
		// queue and delivery stages collapse to zero.
		g.trc.MarkQueued(traceID, now)
		g.trc.MarkDelivered(traceID, now)
	}

	idx := len(g.episodes)
	g.episodes = append(g.episodes, Episode{
		At: now, Kind: kind,
		Sheds: sheds, Tunes: tunes, Restores: restores,
		Effective: agg.Effective, Confidence: agg.Confidence,
		TraceID: traceID,
	})

	n := g.act.CommitMirror(now, traceID, func(tx *routing.Tx) {
		for p, t := range touch {
			if t {
				tx.SetMirrorPort(g.s, p, plan[p])
			}
		}
	}, func(fire units.Time) {
		g.episodes[idx].ActuatedAt = fire
	})
	if n == 0 {
		// The committed state already matched (e.g. re-planned the same
		// config): drop the episode, nothing actuated.
		g.episodes = g.episodes[:idx]
		return
	}

	for p, t := range touch {
		if t {
			g.desired[p], g.haveCfg[p] = plan[p], true
		}
	}
	g.Commits.Inc()
	g.Sheds.Add(int64(sheds))
	g.Tunes.Add(int64(tunes))
	g.Restores.Add(int64(restores))
	g.pending = idx
	g.cooldownUntil = now.Add(g.cfg.Cooldown)
	g.healthyTicks = 0
}
