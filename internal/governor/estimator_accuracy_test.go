// Estimator accuracy against analytic ground truth: drive a real
// switchsim mirror tap at known offered loads across saturation regimes
// and check RateEstimator's effective-rate estimates against both the
// analytic expectation (monitor capacity / offered rate) and the exact
// truth derived from the switch's own counters.
package governor_test

import (
	"math"
	"testing"

	"planck/internal/governor"
	"planck/internal/packet"
	"planck/internal/sflow"
	"planck/internal/sim"
	"planck/internal/switchsim"
	"planck/internal/units"
)

// sinkNode terminates links, counting arrivals.
type sinkNode struct {
	eng *sim.Engine
	n   int
}

func (s *sinkNode) Name() string { return "sink" }
func (s *sinkNode) Receive(_ units.Time, _ *sim.Port, pkt *sim.Packet) {
	s.n++
	s.eng.FreePacket(pkt)
}

func accMAC(i int) packet.MAC { return packet.MAC{0x02, 0, 0, 0, 0, byte(i)} }
func accIP(i int) packet.IPv4 { return packet.IPv4{10, 0, 0, byte(i)} }

// estRig is a switch with k saturated input streams, each to its own
// mirrored output, all replicating to one monitor port, plus a
// RateEstimator polled from a ticker like the governor polls it.
type estRig struct {
	eng     *sim.Engine
	sw      *switchsim.Switch
	est     *governor.RateEstimator
	queues  []*sim.Fifo
	monitor int
	outs    []int
}

const (
	accPorts   = 10
	accMonitor = 9
	accPayload = 1460
)

// buildEstRig wires the topology for k input→output pairs.
func buildEstRig(t *testing.T, k int, mirrorBuf int64) *estRig {
	t.Helper()
	eng := sim.New()
	sw, err := switchsim.New(eng, switchsim.Config{
		Name:                "est",
		NumPorts:            accPorts,
		LineRate:            units.Rate10G,
		SharedBufferBytes:   9 << 20,
		PerPortReserveBytes: 20 << 10,
		DTAlpha:             0.8,
		MirrorBufferBytes:   mirrorBuf,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := &estRig{eng: eng, sw: sw, monitor: accMonitor}
	r.queues = make([]*sim.Fifo, accPorts)
	for i := 0; i < accPorts; i++ {
		sink := &sinkNode{eng: eng}
		p := sim.NewPort(eng, sink, 0, units.Rate10G)
		r.queues[i] = &sim.Fifo{}
		p.SetSource(r.queues[i])
		sim.Connect(p, sw.Port(i), 100*units.Nanosecond)
	}
	outs := []int{}
	for i := 0; i < k; i++ {
		out := 4 + i
		sw.InstallMAC(accMAC(out), out)
		outs = append(outs, out)
	}
	r.outs = outs
	sw.EnableMirror(accMonitor, outs)
	r.est = governor.NewRateEstimator(governor.EstimatorConfig{
		SFlow: sflow.Config{SampleRate: 16, ControlPlaneCap: 1 << 20},
		Seed:  42,
	}, accPorts)
	return r
}

// offer loads n packets per input stream and runs the sim with the
// estimator polled every pollEvery, returning the end-of-run time.
func (r *estRig) offer(n int, pollEvery units.Duration) units.Time {
	for i, out := range r.outs {
		for j := 0; j < n; j++ {
			pkt := r.eng.NewPacket()
			pkt.Kind = sim.KindTCP
			pkt.SrcMAC, pkt.DstMAC = accMAC(i), accMAC(out)
			pkt.SrcIP, pkt.DstIP = accIP(i), accIP(out)
			pkt.SrcPort, pkt.DstPort = 1000, 2000
			// Jitter the size so the streams cannot phase-lock on the
			// monitor queue's admission test, which would otherwise give
			// one stream all the admissions and another all the drops.
			pkt.PayloadLen = accPayload - (i*127+j*251)%512
			pkt.WireLen = pkt.PayloadLen + sim.TCPHeaderBytes
			r.queues[i].Enqueue(pkt)
		}
	}
	// Baseline the counters before any traffic lands.
	for p := 0; p < accPorts; p++ {
		q, d := r.sw.MirrorPortCounters(p)
		r.est.RecordMirrorCounters(0, p, q, d)
	}
	tick := sim.NewTicker(r.eng, pollEvery, func(now units.Time) {
		for p := 0; p < accPorts; p++ {
			q, d := r.sw.MirrorPortCounters(p)
			r.est.RecordMirrorCounters(now, p, q, d)
		}
	})
	for i := range r.outs {
		r.sw.Port(i).Peer().Kick(0)
	}
	// Serializing n full frames at 10G takes ~1.23 µs each; run with the
	// poller live well past that, then drain without it.
	deadline := units.Time(units.Duration(n) * 2 * units.Microsecond)
	r.eng.RunUntil(deadline)
	tick.Stop()
	r.eng.Run()
	return r.eng.Now()
}

// TestEstimatorAccuracyRegimes sweeps three saturation regimes — 1:1
// (undersubscribed), 2:1, and 4:1 oversubscribed — and checks the
// estimator converges on the analytic effective rate C/(k·C) = 1/k and
// on the exact counter-derived truth.
func TestEstimatorAccuracyRegimes(t *testing.T) {
	for _, tc := range []struct {
		k        int
		expected float64
		tol      float64
	}{
		{k: 1, expected: 1.0, tol: 0.02},
		{k: 2, expected: 0.5, tol: 0.12},
		{k: 4, expected: 0.25, tol: 0.12},
	} {
		r := buildEstRig(t, tc.k, 64<<10)
		end := r.offer(2000, 250*units.Microsecond)

		agg := r.est.Aggregate(end)
		if agg.Samples == 0 {
			t.Fatalf("k=%d: no samples backed the estimate", tc.k)
		}
		// Exact truth from the switch's own aggregate counters.
		queued, dropped := r.sw.MirrorQueued.Bytes, r.sw.MirrorDropped.Bytes
		truth := float64(queued) / float64(queued+dropped)
		if math.Abs(agg.Effective-truth) > 0.02 {
			t.Fatalf("k=%d: estimate %.3f diverged from counter truth %.3f",
				tc.k, agg.Effective, truth)
		}
		// Analytic expectation: k saturated streams share one monitor
		// link, so the effective sampling rate is ~1/k.
		if math.Abs(agg.Effective-tc.expected) > tc.tol {
			t.Fatalf("k=%d: estimate %.3f, analytic %.2f ± %.2f",
				tc.k, agg.Effective, tc.expected, tc.tol)
		}
		if agg.Confidence < 0.9 {
			t.Fatalf("k=%d: confidence %.3f with %d samples", tc.k, agg.Confidence, agg.Samples)
		}
		if agg.Offered <= 0 || agg.Admitted <= 0 {
			t.Fatalf("k=%d: degenerate rates %v/%v", tc.k, agg.Offered, agg.Admitted)
		}
		// Per-port estimates agree with the aggregate in symmetric load.
		for _, out := range r.outs {
			pe := r.est.Estimate(end, out)
			if math.Abs(pe.Effective-tc.expected) > tc.tol+0.08 {
				t.Fatalf("k=%d port %d: estimate %.3f, analytic %.2f",
					tc.k, out, pe.Effective, tc.expected)
			}
		}
		// Ports that carried nothing estimate vacuously: effective 1 at
		// zero confidence.
		idle := r.est.Estimate(end, 8)
		if idle.Effective != 1 || idle.Confidence != 0 || idle.Samples != 0 {
			t.Fatalf("k=%d idle port: %+v", tc.k, idle)
		}
		// The window ages out: far past the run nothing remains.
		stale := r.est.Aggregate(end.Add(10 * r.est.Window()))
		if stale.Samples != 0 || stale.Confidence != 0 {
			t.Fatalf("k=%d: window failed to age out: %+v", tc.k, stale)
		}
	}
}

// TestEstimatorCrossReferencesShedTap: when a port's mirror counters are
// frozen (tap shed) but the sFlow side still sees its traffic, the
// estimator must report effective rate zero with real confidence — the
// signal the governor uses to distinguish "shed" from "no traffic".
func TestEstimatorCrossReferencesShedTap(t *testing.T) {
	r := buildEstRig(t, 1, 64<<10)
	// Shed the tap before any traffic: counters will never move.
	r.sw.SetPortMirrored(4, false)
	// Feed the sFlow side from the switch's delivery hook, as the
	// supervisor/lab wiring does.
	r.sw.OnDeliver = func(now units.Time, outPort int, pkt *sim.Packet) {
		r.est.Observe(now, outPort, pkt.FlowKey(), pkt.WireLen)
	}
	end := r.offer(2000, 250*units.Microsecond)

	est := r.est.Estimate(end, 4)
	if est.Effective != 0 {
		t.Fatalf("shed tap estimated effective %.3f, want 0", est.Effective)
	}
	if est.Confidence <= 0 {
		t.Fatal("shed-tap estimate carries no confidence")
	}
	if est.Offered <= 0 {
		t.Fatal("sFlow cross-reference saw no offered traffic")
	}
	// The sFlow-side utilization (the supervisor's dark-feed quantity)
	// must be in the right ballpark of the true line-rate stream.
	util := r.est.Utilization(end, 4)
	if util < units.Rate10G/4 || util > 2*units.Rate10G {
		t.Fatalf("fallback utilization %v, want ~%v", util, units.Rate10G)
	}
}
