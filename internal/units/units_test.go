package units

import (
	"testing"
	"testing/quick"
)

func TestSerialize(t *testing.T) {
	tests := []struct {
		rate Rate
		n    int
		want Duration
	}{
		{Rate10G, 1250, Microsecond},       // 10,000 bits at 10G
		{Rate1G, 1250, 10 * Microsecond},   // same at 1G
		{Rate10G, 1538, 1231 * Nanosecond}, // full frame + overheads: 12304 bits, ceil
		{Rate10G, 0, 0},
		{0, 1500, 0},
	}
	for _, tc := range tests {
		if got := tc.rate.Serialize(tc.n); got != tc.want {
			t.Errorf("(%v).Serialize(%d) = %v, want %v", tc.rate, tc.n, got, tc.want)
		}
	}
}

func TestSerializeCeils(t *testing.T) {
	// 1 byte at 3 bps = 8/3 s, must round up.
	got := Rate(3).Serialize(1)
	want := Duration(2666666667)
	if got != want {
		t.Fatalf("Serialize(1)@3bps = %d, want %d", got, want)
	}
}

func TestRateOfInvertsSerialize(t *testing.T) {
	// For sizeable transfers the average rate over the serialization time
	// recovers the line rate to within rounding.
	f := func(kb uint16) bool {
		n := int64(kb)*1000 + 1000
		d := Rate10G.Serialize(int(n))
		r := RateOf(n, d)
		diff := float64(r-Rate10G) / float64(Rate10G)
		return diff < 0.001 && diff > -0.001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(5 * Second)
	t1 := t0.Add(250 * Microsecond)
	if got := t1.Sub(t0); got != 250*Microsecond {
		t.Fatalf("Sub = %v", got)
	}
	if !t0.Before(t1) || !t1.After(t0) {
		t.Fatal("ordering broken")
	}
	if s := t1.Seconds(); s < 5.0002 || s > 5.0003 {
		t.Fatalf("Seconds = %v", s)
	}
}

func TestBytesIn(t *testing.T) {
	if got := Rate10G.BytesIn(Millisecond); got != 1250000 {
		t.Fatalf("BytesIn(1ms)@10G = %d", got)
	}
	if got := Rate10G.BytesIn(-Millisecond); got != 0 {
		t.Fatalf("negative duration: %d", got)
	}
}

func TestStrings(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{Duration(500).String(), "500ns"},
		{(250 * Microsecond).String(), "250µs"},
		{(4200 * Microsecond).String(), "4.2ms"},
		{(2 * Second).String(), "2s"},
		{Rate10G.String(), "10Gbps"},
		{(250 * Mbps).String(), "250Mbps"},
		{BytesString(50 * MiB), "50MiB"},
		{BytesString(1536), "1.5KiB"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("got %q want %q", c.got, c.want)
		}
	}
}

func TestRateOfZeroDuration(t *testing.T) {
	if RateOf(1000, 0) != 0 {
		t.Fatal("RateOf with zero duration should be 0")
	}
}
