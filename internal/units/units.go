// Package units defines the simulation's base quantities: virtual time,
// data rates, and byte sizes, together with the arithmetic the rest of the
// system needs (serialization delays, rate estimation, unit parsing).
//
// Virtual time is an int64 count of nanoseconds since the start of a
// simulation run. Using a plain integer (rather than time.Time) keeps the
// discrete-event scheduler free of wall-clock coupling and makes runs
// reproducible bit-for-bit.
package units

import (
	"fmt"
	"math"
)

// Time is a virtual timestamp: nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds. It is kept distinct
// from Time so that timestamps and spans cannot be confused in APIs.
type Duration int64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns the timestamp d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from earlier to t.
func (t Time) Sub(earlier Time) Duration { return Duration(t - earlier) }

// Before reports whether t precedes u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t follows u.
func (t Time) After(u Time) bool { return t > u }

// Seconds returns the timestamp as a float64 number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String renders the timestamp with adaptive units for logs.
func (t Time) String() string { return Duration(t).String() }

// Seconds returns the duration as a float64 number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Microseconds returns the duration as a float64 number of microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// Milliseconds returns the duration as a float64 number of milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// String renders the duration with adaptive units.
func (d Duration) String() string {
	switch {
	case d < 0:
		return "-" + (-d).String()
	case d < Microsecond:
		return fmt.Sprintf("%dns", int64(d))
	case d < Millisecond:
		return fmt.Sprintf("%.3gµs", d.Microseconds())
	case d < Second:
		return fmt.Sprintf("%.4gms", d.Milliseconds())
	default:
		return fmt.Sprintf("%.4gs", d.Seconds())
	}
}

// Rate is a data rate in bits per second.
type Rate int64

// Common rates.
const (
	BitPerSecond Rate = 1
	Kbps              = 1000 * BitPerSecond
	Mbps              = 1000 * Kbps
	Gbps              = 1000 * Mbps
	Rate1G            = 1 * Gbps
	Rate10G           = 10 * Gbps
	Rate40G           = 40 * Gbps
	Rate100G          = 100 * Gbps
)

// Gigabits returns the rate in Gbit/s as a float64.
func (r Rate) Gigabits() float64 { return float64(r) / float64(Gbps) }

// String renders the rate with adaptive units.
func (r Rate) String() string {
	switch {
	case r < 0:
		return "-" + (-r).String()
	case r < Kbps:
		return fmt.Sprintf("%dbps", int64(r))
	case r < Mbps:
		return fmt.Sprintf("%.4gKbps", float64(r)/float64(Kbps))
	case r < Gbps:
		return fmt.Sprintf("%.4gMbps", float64(r)/float64(Mbps))
	default:
		return fmt.Sprintf("%.4gGbps", r.Gigabits())
	}
}

// Serialize returns the time taken to place n bytes on a wire running at
// rate r. It rounds up so that back-to-back transmissions never overlap.
func (r Rate) Serialize(n int) Duration {
	if r <= 0 {
		return 0
	}
	bits := int64(n) * 8
	// ceil(bits * 1e9 / r) without overflow for realistic sizes:
	// bits <= ~1e10, 1e9 multiplier would overflow int64 at ~9.2e18, so
	// bits*1e9 <= 1e19 can overflow. Use math.Ceil on float64 — exact for
	// all packet-scale values (< 2^53).
	return Duration(math.Ceil(float64(bits) * float64(Second) / float64(r)))
}

// BytesIn returns how many bytes rate r delivers in duration d (floor).
func (r Rate) BytesIn(d Duration) int64 {
	if d <= 0 || r <= 0 {
		return 0
	}
	return int64(float64(r) / 8 * d.Seconds())
}

// RateOf returns the average rate achieved by transferring n bytes in d.
func RateOf(n int64, d Duration) Rate {
	if d <= 0 {
		return 0
	}
	return Rate(float64(n) * 8 / d.Seconds())
}

// Byte sizes.
const (
	KiB int64 = 1 << 10
	MiB int64 = 1 << 20
	GiB int64 = 1 << 30
)

// BytesString renders a byte count with adaptive binary units.
func BytesString(n int64) string {
	switch {
	case n < 0:
		return "-" + BytesString(-n)
	case n < KiB:
		return fmt.Sprintf("%dB", n)
	case n < MiB:
		return fmt.Sprintf("%.4gKiB", float64(n)/float64(KiB))
	case n < GiB:
		return fmt.Sprintf("%.4gMiB", float64(n)/float64(MiB))
	default:
		return fmt.Sprintf("%.4gGiB", float64(n)/float64(GiB))
	}
}
