package workload

import (
	"math/rand"
	"testing"

	"planck/internal/lab"
	"planck/internal/topo"
	"planck/internal/units"
)

func TestStridePattern(t *testing.T) {
	flows := Stride(16, 8, 100)
	if len(flows) != 16 {
		t.Fatalf("%d flows", len(flows))
	}
	for i, f := range flows {
		if f.Src != i || f.Dst != (i+8)%16 || f.Size != 100 {
			t.Fatalf("flow %d: %+v", i, f)
		}
	}
}

func TestRandomBijectionProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		flows := RandomBijection(16, 1, rng)
		seenDst := map[int]bool{}
		for _, f := range flows {
			if f.Src == f.Dst {
				t.Fatal("self-loop")
			}
			if seenDst[f.Dst] {
				t.Fatal("dst repeated: not a bijection")
			}
			seenDst[f.Dst] = true
		}
	}
}

func TestRandomUniformNoSelfLoops(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 50; trial++ {
		for _, f := range RandomUniform(16, 1, rng) {
			if f.Src == f.Dst {
				t.Fatal("self-loop")
			}
			if f.Dst < 0 || f.Dst > 15 {
				t.Fatalf("dst %d", f.Dst)
			}
		}
	}
}

func TestStaggeredProbDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var edge, pod, other int
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		for _, f := range StaggeredProb(16, 1, 0.5, 0.3, rng) {
			if f.Src == f.Dst {
				t.Fatal("self-loop")
			}
			switch {
			case f.Src/2 == f.Dst/2:
				edge++
			case f.Src/4 == f.Dst/4:
				pod++
			default:
				other++
			}
		}
	}
	total := float64(edge + pod + other)
	if e := float64(edge) / total; e < 0.45 || e > 0.55 {
		t.Fatalf("edge fraction %.2f", e)
	}
	if p := float64(pod) / total; p < 0.25 || p > 0.35 {
		t.Fatalf("pod fraction %.2f", p)
	}
}

func TestRunSingleSwitchBijection(t *testing.T) {
	net := topo.SingleSwitch("opt", 8, units.Rate10G, false)
	l, err := lab.New(lab.Options{Net: net, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	flows := RandomBijection(8, 8<<20, rng)
	res, err := Run(l, flows, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 8 || res.Total != 8 {
		t.Fatalf("completed %d/%d", res.Completed, res.Total)
	}
	// Non-blocking switch, one flow per host pair: each flow should be
	// near line rate.
	if g := res.AvgGoodput().Gigabits(); g < 5.5 {
		t.Fatalf("avg goodput %.2f Gbps", g)
	}
	if res.Goodputs.N() != 8 || res.Durations.N() != 8 {
		t.Fatal("sample counts")
	}
	if res.FinishedAt == 0 {
		t.Fatal("no finish time")
	}
}

func TestRunRejectsSelfLoop(t *testing.T) {
	net := topo.SingleSwitch("opt", 4, units.Rate10G, false)
	l, _ := lab.New(lab.Options{Net: net, Seed: 1})
	if _, err := Run(l, []Flow{{Src: 1, Dst: 1, Size: 10}}, RunConfig{}); err == nil {
		t.Fatal("self-loop accepted")
	}
}

func TestRunTimeout(t *testing.T) {
	net := topo.SingleSwitch("opt", 4, units.Rate10G, false)
	l, _ := lab.New(lab.Options{Net: net, Seed: 1})
	// A flow too large to finish within the timeout.
	res, err := Run(l, []Flow{{Src: 0, Dst: 1, Size: 1 << 40}}, RunConfig{Timeout: 50 * units.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 0 {
		t.Fatal("impossible completion")
	}
	if l.Eng.Now() > units.Time(60*units.Millisecond) {
		t.Fatalf("ran past timeout: %v", l.Eng.Now())
	}
}

func TestShuffleSmall(t *testing.T) {
	// 4-host shuffle on a non-blocking switch: 12 transfers, 2 at a time
	// per host.
	net := topo.SingleSwitch("opt", 4, units.Rate10G, false)
	l, err := lab.New(lab.Options{Net: net, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	res, err := RunShuffle(l, 4<<20, 2, RunConfig{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 12 {
		t.Fatalf("completed %d/12", res.Completed)
	}
	if res.HostCompletion.N() != 4 {
		t.Fatalf("host completions %d", res.HostCompletion.N())
	}
	// Every host's completion time must be at least 3 sequential-ish
	// transfers' worth and positive.
	if res.HostCompletion.Min() <= 0 {
		t.Fatal("nonpositive completion time")
	}
}
