// Package workload generates and runs the traffic patterns of §7.1 —
// Stride(k), Shuffle, Random Bijection, Random, and Staggered Prob — and
// collects the metrics the paper reports: per-flow average throughput
// (Figs. 14, 17, 18b) and per-host shuffle completion times (Fig. 18a).
package workload

import (
	"fmt"
	"math/rand"

	"planck/internal/lab"
	"planck/internal/sim"
	"planck/internal/stats"
	"planck/internal/tcpsim"
	"planck/internal/topo"
	"planck/internal/units"
)

// Flow is one transfer request.
type Flow struct {
	Src, Dst int
	Size     int64
	Start    units.Duration
}

// Stride returns the stride(k) pattern: host x sends to (x+k) mod n.
func Stride(n, k int, size int64) []Flow {
	flows := make([]Flow, n)
	for i := 0; i < n; i++ {
		flows[i] = Flow{Src: i, Dst: (i + k) % n, Size: size}
	}
	return flows
}

// RandomBijection returns a random permutation with no fixed points.
func RandomBijection(n int, size int64, rng *rand.Rand) []Flow {
	perm := rng.Perm(n)
	for hasFixedPoint(perm) {
		perm = rng.Perm(n)
	}
	flows := make([]Flow, n)
	for i, d := range perm {
		flows[i] = Flow{Src: i, Dst: d, Size: size}
	}
	return flows
}

func hasFixedPoint(perm []int) bool {
	for i, v := range perm {
		if i == v {
			return true
		}
	}
	return false
}

// RandomUniform returns the "random" pattern: every host picks a uniform
// destination other than itself (hotspots allowed).
func RandomUniform(n int, size int64, rng *rand.Rand) []Flow {
	flows := make([]Flow, n)
	for i := 0; i < n; i++ {
		d := rng.Intn(n - 1)
		if d >= i {
			d++
		}
		flows[i] = Flow{Src: i, Dst: d, Size: size}
	}
	return flows
}

// StaggeredProb returns the staggered-prob(edgeP, podP) pattern for the
// 16-host fat-tree: each host's destination is within its edge switch
// with probability edgeP, within its pod with probability podP, and
// anywhere otherwise (as in Hedera).
func StaggeredProb(n int, size int64, edgeP, podP float64, rng *rand.Rand) []Flow {
	const hostsPerEdge, hostsPerPod = 2, 4
	flows := make([]Flow, n)
	for i := 0; i < n; i++ {
		r := rng.Float64()
		var d int
		switch {
		case r < edgeP:
			d = i ^ 1 // the edge neighbor
		case r < edgeP+podP:
			// Same pod, different edge switch (the cases are disjoint).
			pod := i / hostsPerPod
			for {
				d = pod*hostsPerPod + rng.Intn(hostsPerPod)
				if d/hostsPerEdge != i/hostsPerEdge {
					break
				}
			}
		default:
			for {
				d = rng.Intn(n)
				if d/hostsPerPod != i/hostsPerPod {
					break
				}
			}
		}
		_ = hostsPerEdge
		flows[i] = Flow{Src: i, Dst: d, Size: size}
	}
	return flows
}

// Result aggregates a run's outcome.
type Result struct {
	// Goodputs holds each completed flow's size/duration in bits/s.
	Goodputs *stats.Sample
	// Durations holds completed flow durations in seconds.
	Durations *stats.Sample
	// HostCompletion holds, for shuffles, each host's completion time in
	// seconds.
	HostCompletion *stats.Sample
	// Completed and Total count flows.
	Completed, Total int
	// FinishedAt is when the last flow completed.
	FinishedAt units.Time
}

// AvgGoodput returns the mean per-flow throughput (the paper's headline
// metric).
func (r *Result) AvgGoodput() units.Rate { return units.Rate(r.Goodputs.Mean()) }

// RunConfig tunes a run.
type RunConfig struct {
	// StartJitter uniformly staggers flow starts, as launch scripts on a
	// real testbed do (defaults to 2 ms; use a negative value for 0).
	StartJitter units.Duration
	// Timeout aborts the run (default 120 s of virtual time).
	Timeout units.Duration
	// BasePort numbers flows' destination ports from here.
	BasePort uint16
}

func (c *RunConfig) fill() {
	if c.StartJitter == 0 {
		c.StartJitter = 2 * units.Millisecond
	}
	if c.StartJitter < 0 {
		c.StartJitter = 0
	}
	if c.Timeout == 0 {
		c.Timeout = 120 * units.Duration(units.Second)
	}
	if c.BasePort == 0 {
		c.BasePort = 5001
	}
}

// Run starts the flows on the lab and drives the simulation until all
// complete or the timeout passes.
func Run(l *lab.Lab, flows []Flow, cfg RunConfig) (*Result, error) {
	cfg.fill()
	res := &Result{
		Goodputs:       stats.NewSample(len(flows)),
		Durations:      stats.NewSample(len(flows)),
		HostCompletion: &stats.Sample{},
		Total:          len(flows),
	}
	remaining := len(flows)
	for i, f := range flows {
		f := f
		if f.Src == f.Dst {
			return nil, fmt.Errorf("workload: flow %d is a self-loop", i)
		}
		start := units.Time(f.Start).Add(jitter(l.Rng, cfg.StartJitter))
		port := cfg.BasePort + uint16(i%60000)
		l.Eng.Schedule(start, simCallback(func(now units.Time) error {
			c, err := l.Hosts[f.Src].StartFlow(now, topo.HostIP(f.Dst), port, f.Size, int32(i))
			if err != nil {
				return err
			}
			c.OnComplete = func(done units.Time, conn *tcpsim.Conn) {
				res.Goodputs.Add(float64(conn.Goodput()))
				res.Durations.Add(conn.Duration().Seconds())
				res.Completed++
				remaining--
				if done > res.FinishedAt {
					res.FinishedAt = done
				}
			}
			return nil
		}), nil)
	}
	deadline := units.Time(cfg.Timeout)
	step := units.Duration(10 * units.Millisecond)
	for l.Eng.Now() < deadline && remaining > 0 {
		l.Eng.RunUntil(l.Eng.Now().Add(step))
	}
	return res, nil
}

// RunShuffle performs the §7.1 shuffle: every host sends size bytes to
// every other host in random order, fanout transfers at a time. The
// result's HostCompletion sample holds per-host finish times.
func RunShuffle(l *lab.Lab, size int64, fanout int, cfg RunConfig, rng *rand.Rand) (*Result, error) {
	cfg.fill()
	n := len(l.Hosts)
	res := &Result{
		Goodputs:       stats.NewSample(n * (n - 1)),
		Durations:      stats.NewSample(n * (n - 1)),
		HostCompletion: stats.NewSample(n),
		Total:          n * (n - 1),
	}
	remaining := n * (n - 1)

	type hostState struct {
		queue   []int // destinations not yet started
		pending int   // in-flight transfers
		port    uint16
	}
	states := make([]*hostState, n)
	for i := 0; i < n; i++ {
		peers := make([]int, 0, n-1)
		for d := 0; d < n; d++ {
			if d != i {
				peers = append(peers, d)
			}
		}
		rng.Shuffle(len(peers), func(a, b int) { peers[a], peers[b] = peers[b], peers[a] })
		states[i] = &hostState{queue: peers, port: cfg.BasePort}
	}

	var startNext func(src int, now units.Time) error
	startNext = func(src int, now units.Time) error {
		st := states[src]
		if len(st.queue) == 0 {
			if st.pending == 0 {
				res.HostCompletion.Add(now.Seconds())
			}
			return nil
		}
		dst := st.queue[0]
		st.queue = st.queue[1:]
		st.pending++
		port := st.port
		st.port++
		c, err := l.Hosts[src].StartFlow(now, topo.HostIP(dst), port, size, int32(src))
		if err != nil {
			return err
		}
		c.OnComplete = func(done units.Time, conn *tcpsim.Conn) {
			res.Goodputs.Add(float64(conn.Goodput()))
			res.Durations.Add(conn.Duration().Seconds())
			res.Completed++
			remaining--
			st.pending--
			if done > res.FinishedAt {
				res.FinishedAt = done
			}
			if err := startNext(src, done); err != nil {
				panic(err)
			}
		}
		return nil
	}

	for i := 0; i < n; i++ {
		i := i
		start := jitter(l.Rng, cfg.StartJitter)
		l.Eng.Schedule(units.Time(start), simCallback(func(now units.Time) error {
			for k := 0; k < fanout; k++ {
				if err := startNext(i, now); err != nil {
					return err
				}
			}
			return nil
		}), nil)
	}
	deadline := units.Time(cfg.Timeout)
	step := units.Duration(10 * units.Millisecond)
	for l.Eng.Now() < deadline && remaining > 0 {
		l.Eng.RunUntil(l.Eng.Now().Add(step))
	}
	return res, nil
}

func jitter(rng *rand.Rand, max units.Duration) units.Duration {
	if max <= 0 {
		return 0
	}
	return units.Duration(rng.Int63n(int64(max)))
}

// simCallback adapts an error-returning launch function to a sim handler;
// launch errors (missing ARP entries, bad hosts) are configuration bugs,
// so they panic rather than pass silently.
func simCallback(fn func(now units.Time) error) sim.Callback {
	return sim.Callback(func(now units.Time) {
		if err := fn(now); err != nil {
			panic(err)
		}
	})
}
