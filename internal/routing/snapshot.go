// Package routing is the versioned control-plane state shared by the
// controller, the collectors, and traffic engineering.
//
// A Snapshot is an immutable, epoch-numbered view of everything a
// consumer needs to interpret or steer traffic: the topology, the base
// routing-tree assignment per destination host, the pair- and per-flow
// tree overrides installed by reroutes, the mirror setting, and the
// static shadow-MAC forwarding tables. Snapshots are published through a
// Store (atomic pointer, lock-free readers, single-writer Commit) and
// resolved on the collector hot path through a per-switch View.
//
// The epoch discipline is what keeps utilization attribution honest
// across reroutes: a sample is attributed to the snapshot that was live
// at the sample's timestamp, not to whatever state happens to be
// current when the batch is processed, so batching and sharding cannot
// change which link a byte is charged to (the serial-equivalence and
// reroute-oracle tests pin this down).
package routing

import (
	"sort"

	"planck/internal/packet"
	"planck/internal/topo"
	"planck/internal/units"
)

// pairKey identifies a src→dst host pair for ARP-level overrides.
type pairKey struct {
	src, dst int32
}

// mirrorKey identifies one (switch, output port) in the mirror-config
// override table.
type mirrorKey struct {
	sw, port int32
}

// MirrorPortConfig is one output port's mirror configuration within a
// snapshot — the actuation plane's second primitive besides reroutes.
// The construction-time switchsim defaults (mirror every data port,
// oversubscribed) are the snapshot default; overrides shed ports from
// the mirrored set or tune their admitted sample rate.
type MirrorPortConfig struct {
	// Mirrored reports whether packets switched to this port are
	// replicated to the monitor port.
	Mirrored bool
	// TargetRate, when positive, pre-thins this port's mirror copies
	// through a per-port token bucket (§9.2 "rate of samples") instead
	// of letting the shared monitor queue overflow. Zero inherits the
	// switch's construction-time behavior (oversubscribed, or the
	// switch-wide MirrorTargetRate if one is configured).
	TargetRate units.Rate
}

// flowOverride records a per-flow tree override and the host pair it
// was installed for (the ingress switch is derived from src).
type flowOverride struct {
	src, dst, tree int32
}

// Snapshot is one immutable version of the routing state. All fields
// are read-only after Commit publishes the snapshot; copy-on-write in
// Tx guarantees older epochs never observe later mutations.
type Snapshot struct {
	epoch uint64
	// since is the activation time: the snapshot governs samples with
	// t >= since, until a newer snapshot's activation.
	since units.Time
	net   *topo.Network

	// outPorts is the static shadow-MAC forwarding table per switch
	// (label → egress port). All trees are pre-installed on every
	// switch (§4.2: reroutes relabel packets, they do not reprogram
	// MAC tables), so the table is shared by every epoch of a Store.
	outPorts []map[packet.MAC]int32

	// trees is the base routing tree per destination host.
	trees []int
	// pairTrees overrides the tree for all traffic of a src→dst host
	// pair (installed by ARP reroutes).
	pairTrees map[pairKey]flowOverride
	// flowTrees overrides the tree for a single flow (installed by
	// OpenFlow dst-MAC rewrite rules at the flow's ingress switch).
	flowTrees map[packet.FlowKey]flowOverride

	mirror bool
	// mirrorCfg holds per-(switch, port) mirror-config overrides on top
	// of the global mirror setting. Empty on every snapshot that never
	// saw a mirror commit, so reroute-only stores diff identically to
	// the pre-mirror-plane behavior.
	mirrorCfg map[mirrorKey]MirrorPortConfig
}

// Epoch is the snapshot's monotone version number. Epoch 0 is the
// empty pre-install state every Store starts from.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Since is the activation time of this snapshot.
func (s *Snapshot) Since() units.Time { return s.since }

// Net exposes the static topology the snapshot routes over.
func (s *Snapshot) Net() *topo.Network { return s.net }

// NumTrees reports how many precomputed routing trees exist.
func (s *Snapshot) NumTrees() int { return s.net.NumTrees }

// LineRate is the uniform link capacity of the topology.
func (s *Snapshot) LineRate() units.Rate { return s.net.LineRate }

// Mirror reports whether egress mirroring to the monitor port is on.
func (s *Snapshot) Mirror() bool { return s.mirror }

// MirrorPort resolves the mirror configuration of output port p on
// switch sw in this snapshot: the override if one is installed, else
// the default — every port mirrored (at the construction-time rate)
// while the global mirror setting is on. Callers are expected to treat
// the monitor port itself as never mirrored.
func (s *Snapshot) MirrorPort(sw, port int) MirrorPortConfig {
	if cfg, ok := s.mirrorCfg[mirrorKey{int32(sw), int32(port)}]; ok {
		return cfg
	}
	return MirrorPortConfig{Mirrored: s.mirror}
}

// MirrorOverridden reports whether (sw, port) carries an explicit
// mirror-config override in this snapshot.
func (s *Snapshot) MirrorOverridden(sw, port int) bool {
	_, ok := s.mirrorCfg[mirrorKey{int32(sw), int32(port)}]
	return ok
}

// MirrorOverrides counts installed mirror-config overrides.
func (s *Snapshot) MirrorOverrides() int { return len(s.mirrorCfg) }

// EachMirrorOverride visits every explicit mirror-config override in
// deterministic (switch, port) order — the installer's iteration.
func (s *Snapshot) EachMirrorOverride(fn func(sw, port int, cfg MirrorPortConfig)) {
	keys := make([]mirrorKey, 0, len(s.mirrorCfg))
	for k := range s.mirrorCfg {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].sw != keys[j].sw {
			return keys[i].sw < keys[j].sw
		}
		return keys[i].port < keys[j].port
	})
	for _, k := range keys {
		fn(int(k.sw), int(k.port), s.mirrorCfg[k])
	}
}

// BaseTree returns the base routing tree for a destination host.
func (s *Snapshot) BaseTree(dst int) int {
	if dst < 0 || dst >= len(s.trees) {
		return 0
	}
	return s.trees[dst]
}

// PairTree returns the tree carrying src→dst traffic that has no
// per-flow override: the pair override if one is installed, else the
// destination's base tree.
func (s *Snapshot) PairTree(src, dst int) int {
	if o, ok := s.pairTrees[pairKey{int32(src), int32(dst)}]; ok {
		return int(o.tree)
	}
	return s.BaseTree(dst)
}

// TreeFor resolves the tree a flow rides in this snapshot: per-flow
// override first, then the pair override, then the base tree.
func (s *Snapshot) TreeFor(key packet.FlowKey, src, dst int) int {
	if o, ok := s.flowTrees[key]; ok {
		return int(o.tree)
	}
	return s.PairTree(src, dst)
}

// FlowOverride reports the per-flow override for key, if any.
func (s *Snapshot) FlowOverride(key packet.FlowKey) (src, dst, tree int, ok bool) {
	o, ok := s.flowTrees[key]
	return int(o.src), int(o.dst), int(o.tree), ok
}

// OutputPort resolves a shadow-MAC label to its egress port on switch
// sw, exactly as the switch's static MAC table would.
func (s *Snapshot) OutputPort(sw int, dst packet.MAC) (int, bool) {
	p, ok := s.outPorts[sw][dst]
	return int(p), ok
}

// PathFor returns the directed links of src→dst traffic on tree.
func (s *Snapshot) PathFor(src, dst, tree int) []topo.LinkID {
	return s.net.PathFor(src, dst, tree)
}

// PortLink maps a switch port to the directed link it transmits on,
// with ok=false for out-of-range ports.
func (s *Snapshot) PortLink(sw, port int) (topo.LinkID, bool) {
	if sw < 0 || sw >= s.net.NumSwitches() || port < 0 || port >= len(s.net.Ports[sw]) {
		return topo.LinkID{}, false
	}
	return topo.LinkID{Switch: sw, Port: port}, true
}

// MACEntries returns the static label→port table to program on switch
// s (delegates to the topology; identical across epochs).
func (s *Snapshot) MACEntries(sw int) map[packet.MAC]int { return s.net.MACEntries(sw) }

// EgressRewrites returns the shadow→base MAC restore table for the
// egress edge of switch sw.
func (s *Snapshot) EgressRewrites(sw int) map[packet.MAC]packet.MAC {
	return s.net.EgressRewrites(sw)
}

// ChangeKind discriminates the two actuation primitives a snapshot
// diff can demand.
type ChangeKind uint8

const (
	// ChangePairTree repoints all src→dst traffic onto Tree; the
	// data-plane actuation is a spoofed unicast ARP reply to Src.
	ChangePairTree ChangeKind = iota
	// ChangeFlowTree repoints a single flow onto Tree; the actuation
	// is a dst-MAC rewrite flow rule at Src's ingress switch.
	ChangeFlowTree
	// ChangeMirrorPort reconfigures one port's mirror session on one
	// switch (shed from / restore to the mirrored set, or tune its
	// admitted sample rate); the actuation is a management-plane mirror
	// reconfiguration at the switch.
	ChangeMirrorPort
)

// Change is one actuation step derived from a snapshot diff.
type Change struct {
	Kind ChangeKind
	// Flow is set for ChangeFlowTree only.
	Flow           packet.FlowKey
	Src, Dst, Tree int
	// Switch, Port, and Mirror are set for ChangeMirrorPort only: the
	// new mirror configuration of output port Port on switch Switch.
	Switch, Port int
	Mirror       MirrorPortConfig
}

// DiffFrom lists the overrides present in s that prev does not carry
// (or carries with a different tree), in a deterministic order. The
// result is exactly the actuation needed to take the data plane from
// prev to s; a commit that changed nothing yields an empty diff and
// therefore no actuation.
func (s *Snapshot) DiffFrom(prev *Snapshot) []Change {
	var out []Change
	for pk, o := range s.pairTrees {
		if po, ok := prev.pairTrees[pk]; !ok || po.tree != o.tree {
			out = append(out, Change{Kind: ChangePairTree, Src: int(pk.src), Dst: int(pk.dst), Tree: int(o.tree)})
		}
	}
	for fk, o := range s.flowTrees {
		if po, ok := prev.flowTrees[fk]; !ok || po.tree != o.tree {
			out = append(out, Change{Kind: ChangeFlowTree, Flow: fk, Src: int(o.src), Dst: int(o.dst), Tree: int(o.tree)})
		}
	}
	for mk, cfg := range s.mirrorCfg {
		if pc, ok := prev.mirrorCfg[mk]; !ok || pc != cfg {
			out = append(out, Change{Kind: ChangeMirrorPort, Switch: int(mk.sw), Port: int(mk.port), Mirror: cfg})
		}
	}
	// An override cleared by this commit restores the port to the
	// snapshot default — that restoration is itself actuation.
	for mk := range prev.mirrorCfg {
		if _, ok := s.mirrorCfg[mk]; !ok {
			out = append(out, Change{Kind: ChangeMirrorPort, Switch: int(mk.sw), Port: int(mk.port),
				Mirror: MirrorPortConfig{Mirrored: s.mirror}})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Kind == ChangeMirrorPort {
			if a.Switch != b.Switch {
				return a.Switch < b.Switch
			}
			return a.Port < b.Port
		}
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Dst != b.Dst {
			return a.Dst < b.Dst
		}
		return flowLess(a.Flow, b.Flow)
	})
	return out
}

func flowLess(a, b packet.FlowKey) bool {
	if a.SrcIP != b.SrcIP {
		return a.SrcIP.U32() < b.SrcIP.U32()
	}
	if a.DstIP != b.DstIP {
		return a.DstIP.U32() < b.DstIP.U32()
	}
	if a.SrcPort != b.SrcPort {
		return a.SrcPort < b.SrcPort
	}
	if a.DstPort != b.DstPort {
		return a.DstPort < b.DstPort
	}
	return a.Proto < b.Proto
}

// Tx mutates a pending snapshot inside Store.Commit. Maps are cloned
// lazily on first write so read-mostly commits stay cheap and earlier
// epochs stay frozen.
type Tx struct {
	snap                          *Snapshot
	ownPairs, ownFlows, ownMirror bool
}

// SetBaseTrees replaces the base tree assignment (one entry per host).
// The slice is copied.
func (tx *Tx) SetBaseTrees(trees []int) {
	cp := make([]int, len(trees))
	copy(cp, trees)
	tx.snap.trees = cp
}

// SetMirror flips egress mirroring to the monitor port.
func (tx *Tx) SetMirror(on bool) { tx.snap.mirror = on }

// SetPairTree overrides the tree for all src→dst traffic.
func (tx *Tx) SetPairTree(src, dst, tree int) {
	if !tx.ownPairs {
		cp := make(map[pairKey]flowOverride, len(tx.snap.pairTrees)+1)
		for k, v := range tx.snap.pairTrees {
			cp[k] = v
		}
		tx.snap.pairTrees = cp
		tx.ownPairs = true
	}
	tx.snap.pairTrees[pairKey{int32(src), int32(dst)}] = flowOverride{int32(src), int32(dst), int32(tree)}
}

// SetFlowTree overrides the tree for a single flow of the src→dst pair.
func (tx *Tx) SetFlowTree(flow packet.FlowKey, src, dst, tree int) {
	if !tx.ownFlows {
		cp := make(map[packet.FlowKey]flowOverride, len(tx.snap.flowTrees)+1)
		for k, v := range tx.snap.flowTrees {
			cp[k] = v
		}
		tx.snap.flowTrees = cp
		tx.ownFlows = true
	}
	tx.snap.flowTrees[flow] = flowOverride{int32(src), int32(dst), int32(tree)}
}

// SetMirrorPort installs (or replaces) the mirror-config override for
// output port p on switch sw — the governor's shed/tune primitive.
func (tx *Tx) SetMirrorPort(sw, port int, cfg MirrorPortConfig) {
	if !tx.ownMirror {
		cp := make(map[mirrorKey]MirrorPortConfig, len(tx.snap.mirrorCfg)+1)
		for k, v := range tx.snap.mirrorCfg {
			cp[k] = v
		}
		tx.snap.mirrorCfg = cp
		tx.ownMirror = true
	}
	tx.snap.mirrorCfg[mirrorKey{int32(sw), int32(port)}] = cfg
}

// ClearMirrorPort removes the mirror-config override for (sw, port),
// restoring the port to the snapshot default.
func (tx *Tx) ClearMirrorPort(sw, port int) {
	k := mirrorKey{int32(sw), int32(port)}
	if _, ok := tx.snap.mirrorCfg[k]; !ok {
		return
	}
	if !tx.ownMirror {
		cp := make(map[mirrorKey]MirrorPortConfig, len(tx.snap.mirrorCfg))
		for kk, v := range tx.snap.mirrorCfg {
			cp[kk] = v
		}
		tx.snap.mirrorCfg = cp
		tx.ownMirror = true
	}
	delete(tx.snap.mirrorCfg, k)
}

// ClearFlowTree removes a per-flow override, letting the flow fall
// back to its pair or base tree.
func (tx *Tx) ClearFlowTree(flow packet.FlowKey) {
	if _, ok := tx.snap.flowTrees[flow]; !ok {
		return
	}
	if !tx.ownFlows {
		cp := make(map[packet.FlowKey]flowOverride, len(tx.snap.flowTrees))
		for k, v := range tx.snap.flowTrees {
			cp[k] = v
		}
		tx.snap.flowTrees = cp
		tx.ownFlows = true
	}
	delete(tx.snap.flowTrees, flow)
}
