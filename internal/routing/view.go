package routing

import (
	"sync/atomic"

	"planck/internal/core"
	"planck/internal/packet"
	"planck/internal/topo"
	"planck/internal/units"
)

// View is a per-switch window onto a Store: the routing oracle a
// collector uses to infer ports from sampled packets (§3.2.1). A View
// pins one published history per Refresh — one atomic load — and then
// resolves every sample of the batch against that pin, lock-free and
// allocation-free. Views are single-goroutine; each shard worker gets
// its own via Fork.
type View struct {
	store *Store
	sw    int
	h     *history
}

var _ core.RouteResolver = (*View)(nil)

// NewView opens a view of st scoped to switch sw, pinned to the
// current epoch.
func NewView(st *Store, sw int) *View {
	return &View{store: st, sw: sw, h: st.cur.Load()}
}

// StaticView is a convenience for tests and standalone collectors: a
// view over a fresh private store of net (epoch 0, base trees, no
// overrides), equivalent to the old one-shot SwitchMapper.
func StaticView(net *topo.Network, sw int) *View {
	return NewView(NewStore(net), sw)
}

// Store returns the store this view reads.
func (v *View) Store() *Store { return v.store }

// Switch returns the switch this view is scoped to.
func (v *View) Switch() int { return v.sw }

// Epoch returns the pinned (current-as-of-last-Refresh) epoch.
func (v *View) Epoch() uint64 { return v.h.snaps[0].epoch }

// At returns the pinned snapshot that was live at time t.
func (v *View) At(t units.Time) *Snapshot { return v.h.at(t) }

// Refresh implements core.RouteResolver: re-pin to the currently
// published history and report its epoch.
func (v *View) Refresh() uint64 {
	v.h = v.store.cur.Load()
	return v.h.snaps[0].epoch
}

// Fork implements core.RouteResolver.
func (v *View) Fork() core.RouteResolver { return NewView(v.store, v.sw) }

// EpochRef implements core.EpochSource: the store's published-epoch
// counter, letting collectors detect "no reroute since last sample"
// with one inlined atomic load instead of a Refresh call.
func (v *View) EpochRef() *atomic.Uint64 { return &v.store.epoch }

// OutputPort implements core.PortMapper: static shadow-MAC table
// lookup on the pinned current epoch. The table is epoch-invariant
// (reroutes relabel packets, they don't reprogram MAC tables), so this
// matches the switch for any sample carrying dst as its label.
func (v *View) OutputPort(dst packet.MAC) (int, bool) {
	p, ok := v.store.outPorts[v.sw][dst]
	return int(p), ok
}

// ResolveOutput implements core.RouteResolver. The label on a mirrored
// sample is what the switch actually forwarded on (the mirror tap sits
// after the flow-rule rewrite), so the static table is authoritative —
// except at this flow's ingress switch during a per-flow override,
// where samples timestamped before the rule landed still carry the old
// label while the snapshot live at t already routes the flow onto its
// override tree. Resolving through the epoch live at t charges each
// sample to the path its bytes actually took.
func (v *View) ResolveOutput(t units.Time, key packet.FlowKey, dst packet.MAC) (int, uint64, bool) {
	snap := v.h.at(t)
	if o, ok := snap.flowTrees[key]; ok && snap.net.Hosts[o.src].Switch == v.sw {
		if p := snap.net.RoutePort(int(o.tree), int(o.dst), v.sw); p >= 0 {
			return p, snap.epoch, true
		}
	}
	p, ok := v.store.outPorts[v.sw][dst]
	return int(p), snap.epoch, ok
}

// InputPort implements core.PortMapper: walk the source pair's tree
// path (as of the pinned current epoch) and report the port the packet
// entered this switch on.
func (v *View) InputPort(src, dst packet.MAC) (int, bool) {
	snap := v.h.snaps[0]
	net := snap.net
	srcHost, _, ok := topo.TreeOfMAC(src)
	if !ok || srcHost >= net.NumHosts() {
		return 0, false
	}
	dstHost, tree, ok := topo.TreeOfMAC(dst)
	if !ok || tree >= net.NumTrees || dstHost >= net.NumHosts() || srcHost == dstHost {
		return 0, false
	}
	attach := net.Hosts[srcHost]
	if attach.Switch == v.sw {
		return attach.Port, true
	}
	for _, l := range net.PathFor(srcHost, dstHost, tree) {
		ep := net.Ports[l.Switch][l.Port]
		if ep.Kind == topo.ToSwitch && ep.Switch == v.sw {
			return ep.Port, true
		}
	}
	return 0, false
}
