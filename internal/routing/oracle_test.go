// Epoch-attribution oracle (external test package so it can drive the
// real collectors): a reroute committed mid-stream must charge every
// sample to the routing epoch live at the sample's timestamp, so a run
// where the reroute lands in the middle of one large IngestBatch
// reports exactly the same per-link utilization attribution as a run
// where the reroute falls on a batch boundary — for the serial
// collector and for sharded pipelines at every shard width. Run under
// -race by `make race-fast`.
package routing_test

import (
	"fmt"
	"sort"
	"testing"

	"planck/internal/core"
	"planck/internal/packet"
	"planck/internal/routing"
	"planck/internal/topo"
	"planck/internal/units"
)

// rerouteStream is a deterministic captured trace: two TCP flows off
// the same ingress edge switch, one of which is rerouted onto tree 2
// by a per-flow override activating at rerouteAt. Labels flip to the
// new tree for samples after activation, except one straggler frame
// that was already in flight with the old label.
type rerouteStream struct {
	ts     []units.Time
	frames [][]byte
	// splitAt is the index of the first sample at/after activation.
	splitAt int
	key     packet.FlowKey // the rerouted flow
	sw      int            // ingress edge switch under test
}

const rerouteAt = units.Time(2 * units.Millisecond)

func buildRerouteStream(t *testing.T, net *topo.Network) *rerouteStream {
	t.Helper()
	s := &rerouteStream{sw: net.Hosts[0].Switch}
	if net.Hosts[1].Switch != s.sw {
		t.Fatalf("fixture wants hosts 0 and 1 on one edge switch")
	}
	s.key = packet.FlowKey{
		SrcIP: topo.HostIP(0), DstIP: topo.HostIP(8),
		SrcPort: 1000, DstPort: 5001, Proto: packet.IPProtocolTCP,
	}
	var seqA, seqB uint32
	straggled := false
	for i := 0; i < 390; i++ {
		at := units.Time(100 * units.Microsecond).Add(units.Duration(i) * 10 * units.Microsecond)
		if at >= rerouteAt && s.splitAt == 0 {
			s.splitAt = len(s.ts)
		}
		if i%2 == 0 {
			// Flow A: rerouted at rerouteAt. The mirror tap sees the
			// post-rewrite label, so frames after activation carry
			// tree 2 — except one straggler already in flight.
			tree := 0
			if at >= rerouteAt {
				if straggled {
					tree = 2
				} else {
					straggled = true
				}
			}
			s.ts = append(s.ts, at)
			s.frames = append(s.frames, packet.BuildTCP(nil, packet.TCPSpec{
				SrcMAC: topo.ShadowMAC(0, 0), DstMAC: topo.ShadowMAC(8, tree),
				SrcIP: s.key.SrcIP, DstIP: s.key.DstIP,
				SrcPort: s.key.SrcPort, DstPort: s.key.DstPort,
				Seq: seqA, Flags: packet.TCPAck, PayloadLen: 1460,
			}))
			seqA += 1460
		} else {
			// Flow B: control traffic host1→host9, never rerouted.
			s.ts = append(s.ts, at)
			s.frames = append(s.frames, packet.BuildTCP(nil, packet.TCPSpec{
				SrcMAC: topo.ShadowMAC(1, 0), DstMAC: topo.ShadowMAC(9, 0),
				SrcIP: topo.HostIP(1), DstIP: topo.HostIP(9),
				SrcPort: 1001, DstPort: 5002,
				Seq: seqB, Flags: packet.TCPAck, PayloadLen: 1460,
			}))
			seqB += 1460
		}
	}
	if s.splitAt == 0 {
		t.Fatal("stream never crossed the reroute activation")
	}
	return s
}

// oracleCollector is the query surface shared by core.Collector and
// core.ShardedCollector that the oracle compares.
type oracleCollector interface {
	core.Ingester
	SetPortMapper(m core.PortMapper)
	LinkUtilization(p int) units.Rate
	FlowsOnPort(p int) []core.FlowInfo
	FlowRate(k packet.FlowKey) (units.Rate, bool)
	Stats() core.Stats
}

// attribution is everything observable about one replay's routing
// attribution.
type attribution struct {
	utils    []units.Rate
	onPort   []string
	rateA    units.Rate
	rateB    units.Rate
	samples  int64
	unmapped int64
}

func (a attribution) String() string {
	return fmt.Sprintf("utils=%v onPort=%v rateA=%v rateB=%v samples=%d unmapped=%d",
		a.utils, a.onPort, a.rateA, a.rateB, a.samples, a.unmapped)
}

func collect(t *testing.T, col oracleCollector, net *topo.Network, st *rerouteStream) attribution {
	t.Helper()
	var a attribution
	nPorts := len(net.Ports[st.sw])
	for p := 0; p < nPorts; p++ {
		a.utils = append(a.utils, col.LinkUtilization(p))
		flows := col.FlowsOnPort(p)
		keys := make([]string, 0, len(flows))
		for _, fi := range flows {
			keys = append(keys, fi.Key.String())
		}
		sort.Strings(keys)
		a.onPort = append(a.onPort, fmt.Sprintf("p%d:%v", p, keys))
	}
	a.rateA, _ = col.FlowRate(st.key)
	a.rateB, _ = col.FlowRate(packet.FlowKey{
		SrcIP: topo.HostIP(1), DstIP: topo.HostIP(9),
		SrcPort: 1001, DstPort: 5002, Proto: packet.IPProtocolTCP,
	})
	stats := col.Stats()
	a.samples = stats.Samples
	a.unmapped = stats.UnmappedOutput
	return a
}

// runScenario replays the stream into col against a private store.
// boundary=true splits the batch exactly at the reroute activation and
// commits between the halves; boundary=false commits first and then
// delivers one batch spanning the activation.
func runScenario(t *testing.T, net *topo.Network, st *rerouteStream, col oracleCollector, flush func(), boundary bool) attribution {
	t.Helper()
	store := routing.NewStore(net)
	store.Commit(0, nil) // epoch 1: base trees, install time
	col.SetPortMapper(routing.NewView(store, st.sw))

	override := func() {
		store.Commit(rerouteAt, func(tx *routing.Tx) {
			tx.SetFlowTree(st.key, 0, 8, 2)
		})
	}
	if boundary {
		if err := col.IngestBatch(st.ts[:st.splitAt], st.frames[:st.splitAt]); err != nil {
			t.Fatal(err)
		}
		override()
		if err := col.IngestBatch(st.ts[st.splitAt:], st.frames[st.splitAt:]); err != nil {
			t.Fatal(err)
		}
	} else {
		override()
		if err := col.IngestBatch(st.ts, st.frames); err != nil {
			t.Fatal(err)
		}
	}
	if flush != nil {
		flush()
	}
	return collect(t, col, net, st)
}

func TestRerouteMidStreamMatchesBatchBoundary(t *testing.T) {
	net := topo.FatTree16(units.Rate10G)
	stream := buildRerouteStream(t, net)
	ccfg := core.Config{SwitchName: "edge0", NumPorts: len(net.Ports[stream.sw]), LinkRate: net.LineRate}

	serialBoundary := runScenario(t, net, stream, core.New(ccfg), nil, true)
	serialMid := runScenario(t, net, stream, core.New(ccfg), nil, false)
	if serialBoundary.String() != serialMid.String() {
		t.Fatalf("serial attribution diverged:\n boundary: %v\n midstream: %v", serialBoundary, serialMid)
	}

	// Sanity: the rerouted flow must actually have moved port, and its
	// old port must no longer carry it.
	oldPort, _ := routing.StaticView(net, stream.sw).OutputPort(topo.ShadowMAC(8, 0))
	newPort := net.RoutePort(2, 8, stream.sw)
	if oldPort == newPort {
		t.Fatalf("degenerate fixture: tree 0 and tree 2 share port %d", oldPort)
	}
	if serialBoundary.utils[newPort] == 0 {
		t.Fatalf("no utilization attributed to the post-reroute port %d: %v", newPort, serialBoundary)
	}

	for _, shards := range []int{1, 2, 4, 8} {
		for _, boundary := range []bool{true, false} {
			name := map[bool]string{true: "boundary", false: "midstream"}[boundary]
			sc := core.NewSharded(core.ShardedConfig{Config: ccfg, Shards: shards})
			got := runScenario(t, net, stream, sc, sc.Flush, boundary)
			sc.Close()
			if got.String() != serialBoundary.String() {
				t.Fatalf("shards=%d %s diverged from serial:\n sharded: %v\n serial:  %v",
					shards, name, got, serialBoundary)
			}
		}
	}
}
