// Mirror-actuation oracle: a mirror-config commit (shed + tune) landing
// mid-stream of one large IngestBatch must leave the system in exactly
// the state of a run where it lands on a batch boundary — identical
// routing attribution (mirror-plane commits ride the same snapshot
// machinery but must be invisible to reroute attribution), identical
// final mirror-override state, and identical deterministic diffs — for
// the serial collector and for sharded pipelines at every shard width.
// Run under -race by `make race-fast`.
package routing_test

import (
	"fmt"
	"strings"
	"testing"

	"planck/internal/core"
	"planck/internal/routing"
	"planck/internal/topo"
	"planck/internal/units"
)

// mirrorState flattens a snapshot's mirror-plane state for comparison.
func mirrorState(s *routing.Snapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "mirror=%v overrides=%d;", s.Mirror(), s.MirrorOverrides())
	s.EachMirrorOverride(func(sw, port int, cfg routing.MirrorPortConfig) {
		fmt.Fprintf(&b, " %d/%d={%v,%v}", sw, port, cfg.Mirrored, cfg.TargetRate)
	})
	return b.String()
}

// diffString flattens an actuation diff for comparison.
func diffString(diff []routing.Change) string {
	var b strings.Builder
	for _, ch := range diff {
		switch ch.Kind {
		case routing.ChangeMirrorPort:
			fmt.Fprintf(&b, "[mirror %d/%d %v %v]", ch.Switch, ch.Port, ch.Mirror.Mirrored, ch.Mirror.TargetRate)
		case routing.ChangeFlowTree:
			fmt.Fprintf(&b, "[flow %s tree%d]", ch.Flow.String(), ch.Tree)
		case routing.ChangePairTree:
			fmt.Fprintf(&b, "[pair %d->%d tree%d]", ch.Src, ch.Dst, ch.Tree)
		}
	}
	return b.String()
}

// mirrorOutcome is everything observable about one replay with mirror
// commits interleaved: the routing attribution plus the mirror plane's
// final state and the diffs each commit demanded.
type mirrorOutcome struct {
	attr    attribution
	state   string
	commits string
}

func (o mirrorOutcome) String() string {
	return fmt.Sprintf("%v | %s | %s", o.attr, o.state, o.commits)
}

// runMirrorScenario replays the reroute stream with a combined
// reroute + shed/tune commit at rerouteAt and a restore commit after
// the stream. boundary=true splits the batch at the activation;
// boundary=false delivers one batch spanning it.
func runMirrorScenario(t *testing.T, net *topo.Network, st *rerouteStream, col oracleCollector, flush func(), boundary bool) mirrorOutcome {
	t.Helper()
	store := routing.NewStore(net)
	store.Commit(0, func(tx *routing.Tx) { tx.SetMirror(true) })
	col.SetPortMapper(routing.NewView(store, st.sw))

	var commits strings.Builder
	commit := func(at units.Time, mutate func(*routing.Tx)) {
		prev := store.Load()
		snap := store.Commit(at, mutate)
		commits.WriteString(diffString(snap.DiffFrom(prev)))
	}
	const shedPort, tunePort = 1, 2
	tuned := routing.MirrorPortConfig{Mirrored: true, TargetRate: units.Rate10G / 4}
	override := func() {
		// One commit carries the reroute and the governor's shed/tune,
		// exercising the mixed-diff path.
		commit(rerouteAt, func(tx *routing.Tx) {
			tx.SetFlowTree(st.key, 0, 8, 2)
			tx.SetMirrorPort(st.sw, shedPort, routing.MirrorPortConfig{Mirrored: false})
			tx.SetMirrorPort(st.sw, tunePort, tuned)
		})
	}
	if boundary {
		if err := col.IngestBatch(st.ts[:st.splitAt], st.frames[:st.splitAt]); err != nil {
			t.Fatal(err)
		}
		override()
		if err := col.IngestBatch(st.ts[st.splitAt:], st.frames[st.splitAt:]); err != nil {
			t.Fatal(err)
		}
	} else {
		override()
		if err := col.IngestBatch(st.ts, st.frames); err != nil {
			t.Fatal(err)
		}
	}
	// Governor recovery: the shed port is restored after the stream.
	commit(st.ts[len(st.ts)-1].Add(units.Millisecond), func(tx *routing.Tx) {
		tx.ClearMirrorPort(st.sw, shedPort)
	})
	if flush != nil {
		flush()
	}
	return mirrorOutcome{
		attr:    collect(t, col, net, st),
		state:   mirrorState(store.Load()),
		commits: commits.String(),
	}
}

func TestMirrorCommitMidStreamMatchesBatchBoundary(t *testing.T) {
	net := topo.FatTree16(units.Rate10G)
	stream := buildRerouteStream(t, net)
	ccfg := core.Config{SwitchName: "edge0", NumPorts: len(net.Ports[stream.sw]), LinkRate: net.LineRate}

	// The pure-reroute serial run is the attribution reference: mirror
	// commits must not perturb it at all.
	pureReroute := runScenario(t, net, stream, core.New(ccfg), nil, true)

	serialBoundary := runMirrorScenario(t, net, stream, core.New(ccfg), nil, true)
	serialMid := runMirrorScenario(t, net, stream, core.New(ccfg), nil, false)
	if serialBoundary.String() != serialMid.String() {
		t.Fatalf("serial outcome diverged:\n boundary: %v\n midstream: %v", serialBoundary, serialMid)
	}
	if serialBoundary.attr.String() != pureReroute.String() {
		t.Fatalf("mirror commits perturbed reroute attribution:\n with:    %v\n without: %v",
			serialBoundary.attr, pureReroute)
	}

	// The mixed commit's diff must order reroute actuation ahead of
	// mirror actuation, deterministically, and the restore must emit the
	// snapshot-default config for the cleared port.
	wantCommits := fmt.Sprintf("[flow %s tree2][mirror %d/1 false 0bps][mirror %d/2 true %v]"+
		"[mirror %d/1 true 0bps]",
		stream.key.String(), stream.sw, stream.sw, units.Rate10G/4, stream.sw)
	if serialBoundary.commits != wantCommits {
		t.Fatalf("commit diffs:\n got:  %s\n want: %s", serialBoundary.commits, wantCommits)
	}
	// Final state: only the tune override survives the restore.
	wantState := fmt.Sprintf("mirror=true overrides=1; %d/2={true,%v}", stream.sw, units.Rate10G/4)
	if serialBoundary.state != wantState {
		t.Fatalf("final mirror state:\n got:  %s\n want: %s", serialBoundary.state, wantState)
	}

	for _, shards := range []int{1, 2, 4, 8} {
		for _, boundary := range []bool{true, false} {
			name := map[bool]string{true: "boundary", false: "midstream"}[boundary]
			sc := core.NewSharded(core.ShardedConfig{Config: ccfg, Shards: shards})
			got := runMirrorScenario(t, net, stream, sc, sc.Flush, boundary)
			sc.Close()
			if got.String() != serialBoundary.String() {
				t.Fatalf("shards=%d %s diverged from serial:\n sharded: %v\n serial:  %v",
					shards, name, got, serialBoundary)
			}
		}
	}
}

// TestRerouteDiffsCarryNoMirrorChanges pins the bit-identical guarantee
// for the pre-existing reroute path: commits that never touch mirror
// config produce diffs with no ChangeMirrorPort entries, even on a
// store whose earlier epochs carried mirror overrides.
func TestRerouteDiffsCarryNoMirrorChanges(t *testing.T) {
	net := topo.FatTree16(units.Rate10G)
	store := routing.NewStore(net)
	store.Commit(0, func(tx *routing.Tx) { tx.SetMirror(true) })

	prev := store.Load()
	snap := store.Commit(units.Time(units.Millisecond), func(tx *routing.Tx) {
		tx.SetPairTree(0, 8, 1)
	})
	for _, ch := range snap.DiffFrom(prev) {
		if ch.Kind == routing.ChangeMirrorPort {
			t.Fatalf("reroute-only commit produced mirror actuation: %+v", ch)
		}
	}

	// Install an override, then reroute again: the unchanged override
	// must not re-actuate.
	store.Commit(units.Time(2*units.Millisecond), func(tx *routing.Tx) {
		tx.SetMirrorPort(3, 1, routing.MirrorPortConfig{Mirrored: false})
	})
	prev = store.Load()
	snap = store.Commit(units.Time(3*units.Millisecond), func(tx *routing.Tx) {
		tx.SetPairTree(1, 9, 2)
	})
	diff := snap.DiffFrom(prev)
	if len(diff) != 1 || diff[0].Kind != routing.ChangePairTree {
		t.Fatalf("stable mirror override re-actuated: %v", diffString(diff))
	}
	// And the override is still resolvable through the new epoch.
	if snap.MirrorPort(3, 1).Mirrored {
		t.Fatal("override lost across reroute commit")
	}
	if !snap.MirrorPort(3, 2).Mirrored {
		t.Fatal("default port lost global mirror setting")
	}
}
