package routing

import (
	"sync"
	"sync/atomic"

	"planck/internal/packet"
	"planck/internal/topo"
	"planck/internal/units"
)

// HistoryDepth bounds how many past epochs a Store retains for
// timestamp-based resolution. Reroutes settle within ~10 ms and
// collector batches span tens of microseconds, so a sample almost
// always lands in the newest or second-newest epoch; eight covers a
// burst of back-to-back reroutes with margin.
const HistoryDepth = 8

// beginningOfTime predates every simulated timestamp so the seed
// snapshot governs all samples until the first real commit activates.
const beginningOfTime = units.Time(-1 << 62)

// history is the immutable published state: snapshots newest-first.
// Readers grab the whole ring with one atomic load, so a single pin
// yields a consistent epoch sequence for an entire batch.
type history struct {
	snaps []*Snapshot
}

// at returns the snapshot that was live at time t: the newest snapshot
// whose activation is not after t, or the oldest retained epoch if t
// predates the ring. The common case (t in the current epoch) is one
// comparison.
func (h *history) at(t units.Time) *Snapshot {
	for _, s := range h.snaps {
		if t >= s.since {
			return s
		}
	}
	return h.snaps[len(h.snaps)-1]
}

// Store publishes epoch-versioned routing snapshots. Reads (Load, At,
// View resolution) are lock-free: one atomic pointer load. Writes go
// through Commit, which serializes under a mutex, builds the next
// snapshot copy-on-write, and publishes it with a monotone epoch.
type Store struct {
	net *topo.Network

	// outPorts is the static per-switch label→port table, precomputed
	// once and shared by every snapshot (MAC tables never change —
	// reroutes relabel traffic instead).
	outPorts []map[packet.MAC]int32

	mu  sync.Mutex // serializes Commit
	cur atomic.Pointer[history]

	// epoch mirrors cur's head epoch as a bare counter, stored strictly
	// after cur on Commit. Collectors poll it through View.EpochRef on
	// every Ingest — one inlined atomic load — and only pay for a full
	// Refresh when it moves.
	epoch atomic.Uint64
}

// NewStore builds a store over net, seeded with epoch 0: base tree 0
// for every host, no overrides, mirroring off, active since the
// beginning of time.
func NewStore(net *topo.Network) *Store {
	outPorts := make([]map[packet.MAC]int32, net.NumSwitches())
	for sw := range outPorts {
		entries := net.MACEntries(sw)
		m := make(map[packet.MAC]int32, len(entries))
		for mac, port := range entries {
			m[mac] = int32(port)
		}
		outPorts[sw] = m
	}
	st := &Store{net: net, outPorts: outPorts}
	seed := &Snapshot{
		epoch:    0,
		since:    beginningOfTime,
		net:      net,
		outPorts: outPorts,
		trees:    make([]int, net.NumHosts()),
	}
	st.cur.Store(&history{snaps: []*Snapshot{seed}})
	return st
}

// Net exposes the static topology the store routes over.
func (s *Store) Net() *topo.Network { return s.net }

// Load returns the current snapshot (lock-free).
func (s *Store) Load() *Snapshot { return s.cur.Load().snaps[0] }

// Epoch returns the current epoch number (lock-free).
func (s *Store) Epoch() uint64 { return s.Load().epoch }

// At returns the snapshot that was live at time t, within the retained
// history window (lock-free).
func (s *Store) At(t units.Time) *Snapshot { return s.cur.Load().at(t) }

// Commit builds the next snapshot by applying mutate to a copy-on-write
// clone of the current one, stamps it with the next epoch, and
// publishes it as active from time at. Activation times are clamped
// monotone: a commit can never activate before its predecessor, so the
// history ring stays ordered and timestamp resolution stays total.
// Commit is the single-writer path; concurrent commits serialize.
func (s *Store) Commit(at units.Time, mutate func(*Tx)) *Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()

	h := s.cur.Load()
	prev := h.snaps[0]
	next := *prev // shallow clone: maps are shared until a Tx setter copies them
	tx := &Tx{snap: &next}
	if mutate != nil {
		mutate(tx)
	}
	next.epoch = prev.epoch + 1
	next.since = at
	if next.since < prev.since {
		next.since = prev.since
	}

	snaps := make([]*Snapshot, 0, HistoryDepth)
	snaps = append(snaps, &next)
	snaps = append(snaps, h.snaps...)
	if len(snaps) > HistoryDepth {
		snaps = snaps[:HistoryDepth]
	}
	s.cur.Store(&history{snaps: snaps})
	// Publish the epoch only after the history it names is visible: an
	// EpochRef poller that sees next.epoch is guaranteed a subsequent
	// cur.Load observes this (or a later) commit.
	s.epoch.Store(next.epoch)
	return &next
}

// Actuator is the data-plane half of the control loop: it pushes a
// freshly committed snapshot (or a diff of one) into whatever realizes
// the routes — the simulated switches and hosts here, a real OpenFlow
// driver in a deployment. Keeping the Controller behind this interface
// decouples it from concrete sim types.
type Actuator interface {
	// InstallSnapshot programs the full routing state of snap: MAC
	// tables, egress rewrites, mirror sessions, and host ARP caches.
	InstallSnapshot(snap *Snapshot)
	// Apply actuates one diff entry at time fire: a spoofed ARP for
	// ChangePairTree, a dst-MAC rewrite flow rule for ChangeFlowTree.
	Apply(fire units.Time, ch Change)
}
