package routing

import (
	"testing"

	"planck/internal/packet"
	"planck/internal/topo"
	"planck/internal/units"
)

func testKey(srcHost, dstHost int, dstPort uint16) packet.FlowKey {
	return packet.FlowKey{
		SrcIP:   topo.HostIP(srcHost),
		DstIP:   topo.HostIP(dstHost),
		SrcPort: 1000,
		DstPort: dstPort,
		Proto:   packet.IPProtocolTCP,
	}
}

func TestCommitEpochsAreMonotoneAndCOW(t *testing.T) {
	net := topo.FatTree16(units.Rate10G)
	st := NewStore(net)
	if st.Epoch() != 0 {
		t.Fatalf("seed epoch %d, want 0", st.Epoch())
	}

	e0 := st.Load()
	trees := make([]int, net.NumHosts())
	for i := range trees {
		trees[i] = i % net.NumTrees
	}
	e1 := st.Commit(units.Time(units.Millisecond), func(tx *Tx) {
		tx.SetBaseTrees(trees)
		tx.SetMirror(true)
	})
	if e1.Epoch() != 1 || st.Epoch() != 1 {
		t.Fatalf("epoch after commit: snap=%d store=%d", e1.Epoch(), st.Epoch())
	}
	if e1.BaseTree(5) != 5%net.NumTrees || !e1.Mirror() {
		t.Fatalf("commit did not apply: tree(5)=%d mirror=%v", e1.BaseTree(5), e1.Mirror())
	}
	// Copy-on-write: the older epoch is frozen.
	if e0.BaseTree(5) != 0 || e0.Mirror() {
		t.Fatalf("epoch 0 mutated: tree(5)=%d mirror=%v", e0.BaseTree(5), e0.Mirror())
	}

	key := testKey(0, 8, 5001)
	e2 := st.Commit(units.Time(2*units.Millisecond), func(tx *Tx) {
		tx.SetFlowTree(key, 0, 8, 2)
	})
	if got := e2.TreeFor(key, 0, 8); got != 2 {
		t.Fatalf("flow override tree %d, want 2", got)
	}
	if got := e1.TreeFor(key, 0, 8); got != e1.BaseTree(8) {
		t.Fatalf("epoch 1 leaked the flow override: tree %d", got)
	}
	// Pair overrides layer under flow overrides.
	e3 := st.Commit(units.Time(3*units.Millisecond), func(tx *Tx) {
		tx.SetPairTree(0, 8, 3)
	})
	if got := e3.TreeFor(key, 0, 8); got != 2 {
		t.Fatalf("flow override must shadow pair override: tree %d", got)
	}
	if got := e3.TreeFor(testKey(0, 8, 9999), 0, 8); got != 3 {
		t.Fatalf("pair override tree %d, want 3", got)
	}
}

func TestHistoryResolvesByTimestamp(t *testing.T) {
	net := topo.FatTree16(units.Rate10G)
	st := NewStore(net)
	st.Commit(units.Time(units.Millisecond), nil)   // epoch 1 active from 1ms
	st.Commit(units.Time(5*units.Millisecond), nil) // epoch 2 active from 5ms

	cases := []struct {
		t    units.Time
		want uint64
	}{
		{0, 0},
		{units.Time(units.Millisecond), 1},
		{units.Time(3 * units.Millisecond), 1},
		{units.Time(5 * units.Millisecond), 2},
		{units.Time(units.Second), 2},
	}
	for _, c := range cases {
		if got := st.At(c.t).Epoch(); got != c.want {
			t.Fatalf("At(%v) epoch %d, want %d", c.t, got, c.want)
		}
	}

	// Activation clamping: a commit scheduled before its predecessor's
	// activation cannot reorder the history.
	s := st.Commit(units.Time(2*units.Millisecond), nil)
	if s.Since() != units.Time(5*units.Millisecond) {
		t.Fatalf("clamped since %v, want 5ms", s.Since())
	}

	// The ring stays bounded and old epochs fall off the back.
	for i := 0; i < 2*HistoryDepth; i++ {
		st.Commit(units.Time(units.Second), nil)
	}
	if got := st.At(0).Epoch(); got == 0 {
		t.Fatal("epoch 0 should have been evicted from the history ring")
	}
}

func TestDiffFromYieldsExactlyTheChanges(t *testing.T) {
	net := topo.FatTree16(units.Rate10G)
	st := NewStore(net)
	prev := st.Commit(0, nil)

	key := testKey(1, 9, 5001)
	next := st.Commit(units.Time(units.Millisecond), func(tx *Tx) {
		tx.SetPairTree(3, 9, 2)
		tx.SetFlowTree(key, 1, 9, 1)
	})
	diff := next.DiffFrom(prev)
	if len(diff) != 2 {
		t.Fatalf("diff len %d, want 2: %+v", len(diff), diff)
	}
	if diff[0].Kind != ChangePairTree || diff[0].Src != 3 || diff[0].Dst != 9 || diff[0].Tree != 2 {
		t.Fatalf("pair change %+v", diff[0])
	}
	if diff[1].Kind != ChangeFlowTree || diff[1].Flow != key || diff[1].Tree != 1 {
		t.Fatalf("flow change %+v", diff[1])
	}

	// Re-committing the same overrides is a no-op diff.
	again := st.Commit(units.Time(2*units.Millisecond), func(tx *Tx) {
		tx.SetPairTree(3, 9, 2)
		tx.SetFlowTree(key, 1, 9, 1)
	})
	if d := again.DiffFrom(next); len(d) != 0 {
		t.Fatalf("no-op diff %+v", d)
	}
}

// TestViewPortInference ports the SwitchMapper expectations onto the
// epoch-aware View: the static-label half must match the switch MAC
// tables exactly.
func TestViewPortInference(t *testing.T) {
	net := topo.FatTree16(units.Rate10G)
	// Output port at the ingress edge of host 0 for dst 8 tree 2 must be
	// the uplink toward agg 1 (trees 2,3 ride agg index 1).
	s := net.Hosts[0].Switch
	v := StaticView(net, s)
	port, ok := v.OutputPort(topo.ShadowMAC(8, 2))
	if !ok || port != 3 { // edge ports: 0,1 hosts; 2 -> agg0; 3 -> agg1
		t.Fatalf("output port %d ok=%v", port, ok)
	}
	// Input port for a flow from host 0 at its own edge is the host port.
	in, ok := v.InputPort(topo.ShadowMAC(0, 0), topo.ShadowMAC(8, 2))
	if !ok || in != net.Hosts[0].Port {
		t.Fatalf("input port %d ok=%v", in, ok)
	}
	// At the core switch of tree 2, the input port is the agg uplink of
	// pod 0.
	coreSw := 16 + 2
	vc := NewView(v.Store(), coreSw)
	in, ok = vc.InputPort(topo.ShadowMAC(0, 0), topo.ShadowMAC(8, 2))
	if !ok || in != 0 { // core port p connects pod p
		t.Fatalf("core input port %d ok=%v", in, ok)
	}
	// Foreign MACs are rejected.
	if _, ok := v.OutputPort(packet.MAC{0xde, 0xad, 0, 0, 0, 1}); ok {
		t.Fatal("foreign MAC mapped")
	}
	if _, ok := v.InputPort(packet.MAC{0xde, 0xad, 0, 0, 0, 1}, topo.ShadowMAC(8, 2)); ok {
		t.Fatal("foreign src mapped")
	}
}

// TestResolveOutputFollowsEpochAtTimestamp pins the attribution rule:
// ResolveOutput answers from the snapshot live at the sample's
// timestamp, applying a per-flow override only at the flow's ingress
// switch, and reports the epoch it used.
func TestResolveOutputFollowsEpochAtTimestamp(t *testing.T) {
	net := topo.FatTree16(units.Rate10G)
	st := NewStore(net)
	st.Commit(0, nil) // epoch 1: base trees, active from 0

	key := testKey(0, 8, 5001)
	activate := units.Time(2 * units.Millisecond)
	st.Commit(activate, func(tx *Tx) {
		tx.SetFlowTree(key, 0, 8, 2)
	})

	ingress := net.Hosts[0].Switch
	v := NewView(st, ingress)
	if e := v.Refresh(); e != 2 {
		t.Fatalf("refreshed epoch %d, want 2", e)
	}

	oldLabel := topo.ShadowMAC(8, 0)
	wantOld, _ := v.OutputPort(oldLabel)
	wantNew := net.RoutePort(2, 8, ingress)
	if wantOld == wantNew {
		t.Fatalf("degenerate topology: tree 0 and tree 2 share port %d", wantOld)
	}

	// Before activation: the old epoch answers, by the label.
	p, e, ok := v.ResolveOutput(activate-1, key, oldLabel)
	if !ok || p != wantOld || e != 1 {
		t.Fatalf("pre-activation resolve port=%d epoch=%d ok=%v, want port=%d epoch=1", p, e, ok, wantOld)
	}
	// At/after activation: the override routes the flow onto tree 2 at
	// its ingress switch even if a straggler sample still carries the
	// old label.
	p, e, ok = v.ResolveOutput(activate, key, oldLabel)
	if !ok || p != wantNew || e != 2 {
		t.Fatalf("post-activation resolve port=%d epoch=%d ok=%v, want port=%d epoch=2", p, e, ok, wantNew)
	}
	// A different flow between the same hosts is untouched.
	p, e, ok = v.ResolveOutput(activate, testKey(0, 8, 9999), oldLabel)
	if !ok || p != wantOld || e != 2 {
		t.Fatalf("other-flow resolve port=%d epoch=%d ok=%v, want port=%d epoch=2", p, e, ok, wantOld)
	}
	// Off the ingress switch the override does not apply: the label is
	// what the switch forwarded on.
	off := NewView(st, 16) // a core switch that is not host 0's edge
	off.Refresh()
	if p, _, ok := off.ResolveOutput(activate, key, topo.ShadowMAC(8, 2)); !ok || p != net.RoutePort(2, 8, 16) {
		// Only check when the core switch participates in tree 2 for dst 8.
		if net.RoutePort(2, 8, 16) >= 0 {
			t.Fatalf("off-ingress resolve port=%d ok=%v", p, ok)
		}
	}

	// Fork yields an independent view over the same store.
	f := v.Fork()
	if e := f.Refresh(); e != 2 {
		t.Fatalf("forked view epoch %d, want 2", e)
	}
}
