package scale

import (
	"math"
	"testing"
)

// TestPaperFatTreeNumbers checks the §9.1 headline figures: 64-port
// switches with one monitor port give a k=63... the paper says k=62 —
// its fat-tree construction appears to reserve two ports; we assert our
// k=63 arithmetic and separately check the paper's quoted k=62 numbers
// via the FatTree type directly.
func TestPaperFatTreeNumbers(t *testing.T) {
	// Paper: "a full-bisection-bandwidth k=62 three-level fat-tree can be
	// built to support 59,582 hosts from 4,805 switches, which would
	// require 344 collectors, resulting in about 0.58% additional
	// machines."
	f := FatTree{SwitchPorts: 63, MonitorPorts: 1} // k = 62
	if got := f.Hosts(); got != 59582 {
		t.Fatalf("hosts %d, want 59582", got)
	}
	if got := f.Switches(); got != 4805 {
		t.Fatalf("switches %d, want 4805", got)
	}
	servers := (f.Switches() + CollectorsPerServer - 1) / CollectorsPerServer
	if servers != 344 {
		t.Fatalf("servers %d, want 344", servers)
	}
	frac := float64(servers) / float64(f.Hosts())
	if math.Abs(frac-0.0058) > 0.0002 {
		t.Fatalf("fraction %.4f, want ≈0.0058", frac)
	}
}

func TestPlanFatTree(t *testing.T) {
	d := PlanFatTree(63, 1)
	if d.Hosts != 59582 || d.Switches != 4805 || d.CollectorServers != 344 {
		t.Fatalf("%+v", d)
	}
	if math.Abs(d.ServerFraction-0.0058) > 0.0002 {
		t.Fatalf("fraction %.4f", d.ServerFraction)
	}
}

// TestPaperJellyfishNumbers: "a full-bisection-bandwidth Jellyfish with
// the same number of hosts requires only 3,505 switches and thus only
// 251 collectors, representing 0.42% additional machines."
func TestPaperJellyfishNumbers(t *testing.T) {
	d := PlanJellyfish(52, 1, 59582)
	// 51 usable ports -> 17 hosts/switch -> ceil(59582/17) = 3505.
	if d.Switches != 3505 {
		t.Fatalf("switches %d, want 3505", d.Switches)
	}
	if d.CollectorServers != 251 {
		t.Fatalf("servers %d, want 251", d.CollectorServers)
	}
	if math.Abs(d.ServerFraction-0.0042) > 0.0002 {
		t.Fatalf("fraction %.4f, want ≈0.0042", d.ServerFraction)
	}
}

// TestHostCountCost: "a fat-tree with monitor ports only supports 1.4%
// fewer hosts than without monitor ports".
func TestHostCountCost(t *testing.T) {
	with := PlanFatTree(63, 1)
	without := PlanFatTree(63, 0)
	// k=62 vs k=63: 1 - (62/63)^3 = 4.7%... the paper compares at equal
	// switch counts instead. Verify the ratio form the paper quotes:
	// (62^3/4)/(63^3/4) hosts.
	cost := HostCountCost(with, without)
	want := 1 - math.Pow(62.0/63.0, 3)
	// Integer truncation of k^3/4 perturbs the ratio slightly.
	if math.Abs(cost-want) > 1e-4 {
		t.Fatalf("cost %.4f want %.4f", cost, want)
	}
}

func TestZeroMonitorPortsNeedNoServers(t *testing.T) {
	d := PlanFatTree(64, 0)
	if d.CollectorServers != 0 || d.ServerFraction != 0 {
		t.Fatalf("%+v", d)
	}
}

func TestCeilDiv(t *testing.T) {
	cases := [][3]int{{10, 3, 4}, {9, 3, 3}, {1, 14, 1}, {0, 14, 0}, {5, 0, 0}}
	for _, c := range cases {
		if got := ceilDiv(c[0], c[1]); got != c[2] {
			t.Errorf("ceilDiv(%d,%d)=%d want %d", c[0], c[1], got, c[2])
		}
	}
}
