// Package scale reproduces the paper's §9.1 scalability estimates: how
// many collector servers a Planck deployment needs for full-bisection
// fat-tree and Jellyfish networks, and what dedicating one monitor port
// per switch costs in host count.
package scale

import "fmt"

// CollectorsPerServer is the paper's estimate: fourteen 10 GbE ports fit
// in a 2U server, so one server hosts up to 14 collector instances.
const CollectorsPerServer = 14

// FatTree describes a three-level fat-tree built from p-port switches
// that dedicate m ports to monitoring.
//
// With k usable ports per switch (k = p - m), a three-level fat-tree has
// k^3/4 hosts, k^2/4 core switches, and k^2 pod switches (k pods of k
// switches), i.e. 5k^2/4 switches total.
type FatTree struct {
	SwitchPorts  int // physical ports per switch
	MonitorPorts int // ports given up for monitoring per switch
}

// UsablePorts returns k.
func (f FatTree) UsablePorts() int { return f.SwitchPorts - f.MonitorPorts }

// Hosts returns the host count k^3/4.
func (f FatTree) Hosts() int {
	k := f.UsablePorts()
	return k * k * k / 4
}

// Switches returns the switch count 5k^2/4.
func (f FatTree) Switches() int {
	k := f.UsablePorts()
	return 5 * k * k / 4
}

// Jellyfish describes an r-regular random graph topology with p-port
// switches, m monitor ports, and h host ports per switch. Following the
// Jellyfish paper's full-bisection guideline, each switch devotes enough
// ports to the network to support its hosts at full bisection
// (network ports >= 2*hosts-per-switch gives ~full bisection for random
// regular graphs).
type Jellyfish struct {
	SwitchPorts  int
	MonitorPorts int
	HostsPerPort int // unused; kept 0
	Hosts        int // target host count
}

// SwitchesFor returns how many switches a full-bisection Jellyfish needs
// for the target host count: each switch supports floor(k/3) hosts (a
// third of usable ports to hosts, two-thirds to the fabric, the standard
// full-bisection operating point used in the Jellyfish paper's
// comparisons).
func (j Jellyfish) SwitchesFor() int {
	k := j.SwitchPorts - j.MonitorPorts
	hostsPerSwitch := k / 3
	if hostsPerSwitch <= 0 {
		return 0
	}
	return ceilDiv(j.Hosts, hostsPerSwitch)
}

// Deployment summarizes a monitored network's overhead.
type Deployment struct {
	Hosts            int
	Switches         int
	CollectorServers int
	// ServerFraction is CollectorServers as a fraction of hosts.
	ServerFraction float64
}

// PlanFatTree sizes a monitored fat-tree deployment.
func PlanFatTree(switchPorts, monitorPorts int) Deployment {
	f := FatTree{SwitchPorts: switchPorts, MonitorPorts: monitorPorts}
	sw := f.Switches()
	servers := ceilDiv(sw*monitorPorts, CollectorsPerServer)
	if monitorPorts == 0 {
		servers = 0
	}
	d := Deployment{
		Hosts:            f.Hosts(),
		Switches:         sw,
		CollectorServers: servers,
	}
	if d.Hosts > 0 {
		d.ServerFraction = float64(servers) / float64(d.Hosts)
	}
	return d
}

// PlanJellyfish sizes a monitored Jellyfish deployment for a target host
// count.
func PlanJellyfish(switchPorts, monitorPorts, hosts int) Deployment {
	j := Jellyfish{SwitchPorts: switchPorts, MonitorPorts: monitorPorts, Hosts: hosts}
	sw := j.SwitchesFor()
	servers := ceilDiv(sw*monitorPorts, CollectorsPerServer)
	if monitorPorts == 0 {
		servers = 0
	}
	d := Deployment{
		Hosts:            hosts,
		Switches:         sw,
		CollectorServers: servers,
	}
	if hosts > 0 {
		d.ServerFraction = float64(servers) / float64(hosts)
	}
	return d
}

// HostCountCost returns the fractional host-count reduction caused by
// dedicating monitor ports, comparing like-for-like topologies.
func HostCountCost(with, without Deployment) float64 {
	if without.Hosts == 0 {
		return 0
	}
	return 1 - float64(with.Hosts)/float64(without.Hosts)
}

// String renders the deployment for reports.
func (d Deployment) String() string {
	return fmt.Sprintf("%d hosts, %d switches, %d collector servers (%.2f%% of hosts)",
		d.Hosts, d.Switches, d.CollectorServers, d.ServerFraction*100)
}

func ceilDiv(a, b int) int {
	if b == 0 {
		return 0
	}
	return (a + b - 1) / b
}
