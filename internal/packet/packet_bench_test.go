package packet

import "testing"

// BenchmarkDecodeTCP measures the collector's per-sample parse cost; the
// paper's collectors process 10 Gbps line rate (~812 kpps of MTU frames)
// on one core, so Decode must stay deep in the tens-of-nanoseconds range.
func BenchmarkDecodeTCP(b *testing.B) {
	frame := BuildTCP(nil, TCPSpec{
		SrcMAC: macA, DstMAC: macB, SrcIP: ipA, DstIP: ipB,
		SrcPort: 1000, DstPort: 2000, Seq: 12345, Flags: TCPAck, PayloadLen: 1460,
	})
	var d Decoded
	b.ReportAllocs()
	b.SetBytes(int64(len(frame)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Decode(frame); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeARP(b *testing.B) {
	frame := BuildARP(nil, ARPSpec{
		SrcMAC: macA, DstMAC: macB, Op: ARPRequest,
		SenderMAC: macA, SenderIP: ipA, TargetIP: ipB,
	})
	var d Decoded
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.Decode(frame)
	}
}

func BenchmarkBuildTCP(b *testing.B) {
	buf := make([]byte, 2048)
	spec := TCPSpec{
		SrcMAC: macA, DstMAC: macB, SrcIP: ipA, DstIP: ipB,
		SrcPort: 1000, DstPort: 2000, Flags: TCPAck, PayloadLen: 1460,
	}
	b.ReportAllocs()
	b.SetBytes(1514)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec.Seq = uint32(i)
		frame := BuildTCP(buf, spec)
		buf = frame[:cap(frame)]
	}
}

func BenchmarkChecksum(b *testing.B) {
	data := make([]byte, 1460)
	for i := range data {
		data[i] = byte(i)
	}
	b.SetBytes(1460)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Checksum(data)
	}
}
