package packet

import "testing"

// FuzzDecode: decoding arbitrary bytes must never panic, and any frame
// that decodes must be internally consistent (the native-fuzzing
// successor to the old rng-loop TestDecodeFuzz).
func FuzzDecode(f *testing.F) {
	// Seed corpus: one well-formed frame of each kind plus the truncation
	// boundaries TestDecodeTruncated checks.
	tcp := BuildTCP(nil, TCPSpec{
		SrcMAC: macA, DstMAC: macB, SrcIP: ipA, DstIP: ipB,
		SrcPort: 1000, DstPort: 2000, Seq: 1, Flags: TCPAck, PayloadLen: 64,
	})
	f.Add(append([]byte(nil), tcp...))
	f.Add(BuildUDP(nil, UDPSpec{
		SrcMAC: macA, DstMAC: macB, SrcIP: ipA, DstIP: ipB,
		SrcPort: 1, DstPort: 2, PayloadLen: 32, Seq: 9, HasSeq: true,
	}))
	f.Add(BuildARP(nil, ARPSpec{
		SrcMAC: macA, DstMAC: macB, Op: ARPRequest,
		SenderMAC: macA, SenderIP: ipA, TargetIP: ipB,
	}))
	for _, n := range []int{0, 5, EthernetHeaderLen - 1, EthernetHeaderLen + 3, EthernetHeaderLen + IPv4MinHeaderLen + 5} {
		f.Add(append([]byte(nil), tcp[:n]...))
	}
	// IPv4 with options (IHL > 5) and a non-TCP/UDP protocol.
	opts := append([]byte(nil), tcp...)
	opts[EthernetHeaderLen] = 0x46 // IHL = 6
	f.Add(opts)
	raw := append([]byte(nil), tcp...)
	raw[EthernetHeaderLen+9] = 0x2f // GRE: IPv4 decodes, no transport layer
	f.Add(raw)

	f.Fuzz(func(t *testing.T, b []byte) {
		// The fast lane must be invisible: when DecodeTCPFast accepts a
		// frame, its result is bit-identical to the full decoder's, and
		// the full decoder must not error; when it declines, it must not
		// have touched the receiver (decoders are reused across frames).
		sentinel := Decoded{PayloadLen: -12345, WireLen: -54321, Layers: LayerARP}
		fast := sentinel
		if fast.DecodeTCPFast(b) {
			var full Decoded
			if err := full.Decode(b); err != nil {
				t.Fatalf("DecodeTCPFast accepted a frame Decode rejects: %v", err)
			}
			if fast != full {
				t.Fatalf("fast/full decode mismatch:\nfast %+v\nfull %+v", fast, full)
			}
		} else if fast != sentinel {
			t.Fatalf("DecodeTCPFast declined but mutated the receiver: %+v", fast)
		}

		var d Decoded
		if err := d.Decode(b); err != nil {
			return
		}
		// Consistency of anything that claims to have decoded.
		if !d.Has(LayerEthernet) {
			t.Fatal("decoded frame without an Ethernet layer")
		}
		if d.Has(LayerTCP) || d.Has(LayerUDP) {
			if !d.Has(LayerIPv4) {
				t.Fatal("transport layer without IPv4")
			}
			key, ok := d.Flow()
			if !ok {
				t.Fatal("transport layer but no flow key")
			}
			if key.SrcIP != d.IP.Src || key.DstIP != d.IP.Dst {
				t.Fatalf("flow key IPs %v disagree with header %v>%v", key, d.IP.Src, d.IP.Dst)
			}
		}
		if d.PayloadLen < 0 || d.WireLen < 0 {
			t.Fatalf("negative lengths: payload %d wire %d", d.PayloadLen, d.WireLen)
		}
	})
}
