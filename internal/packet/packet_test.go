package packet

import (
	"bytes"
	"testing"
	"testing/quick"
)

var (
	macA = MAC{0x02, 0, 0, 0, 0, 1}
	macB = MAC{0x02, 0, 0, 0, 0, 2}
	ipA  = IPv4{10, 0, 0, 1}
	ipB  = IPv4{10, 0, 0, 2}
)

func TestMACRoundTrip(t *testing.T) {
	f := func(a, b, c, d, e, g byte) bool {
		m := MAC{a, b, c, d, e, g}
		return MACFromU64(m.U64()) == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		return IPv4FromU32(v).U32() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMACString(t *testing.T) {
	if got := macA.String(); got != "02:00:00:00:00:01" {
		t.Fatalf("MAC string %q", got)
	}
	if got := ipA.String(); got != "10.0.0.1" {
		t.Fatalf("IP string %q", got)
	}
	if !BroadcastMAC.IsBroadcast() || macA.IsBroadcast() {
		t.Fatal("broadcast detection")
	}
}

func TestBuildDecodeTCP(t *testing.T) {
	frame := BuildTCP(nil, TCPSpec{
		SrcMAC: macA, DstMAC: macB,
		SrcIP: ipA, DstIP: ipB,
		SrcPort: 10000, DstPort: 5001,
		Seq: 123456789, Ack: 987654321,
		Flags: TCPAck | TCPPsh, Window: 4096,
		PayloadLen: 1460,
	})
	if len(frame) != EthernetHeaderLen+IPv4MinHeaderLen+TCPMinHeaderLen+1460 {
		t.Fatalf("frame length %d", len(frame))
	}
	var d Decoded
	if err := d.Decode(frame); err != nil {
		t.Fatal(err)
	}
	if !d.Has(LayerEthernet | LayerIPv4 | LayerTCP) {
		t.Fatalf("layers %b", d.Layers)
	}
	if d.Eth.Src != macA || d.Eth.Dst != macB || d.Eth.Type != EtherTypeIPv4 {
		t.Fatalf("eth %+v", d.Eth)
	}
	if d.IP.Src != ipA || d.IP.Dst != ipB || d.IP.Protocol != IPProtocolTCP {
		t.Fatalf("ip %+v", d.IP)
	}
	if d.TCP.Seq != 123456789 || d.TCP.Ack != 987654321 || !d.TCP.Has(TCPAck|TCPPsh) {
		t.Fatalf("tcp %+v", d.TCP)
	}
	if d.TCP.SrcPort != 10000 || d.TCP.DstPort != 5001 || d.TCP.Window != 4096 {
		t.Fatalf("tcp ports %+v", d.TCP)
	}
	if d.PayloadLen != 1460 || d.WireLen != len(frame) {
		t.Fatalf("payload %d wire %d", d.PayloadLen, d.WireLen)
	}
	k, ok := d.Flow()
	if !ok || k.SrcIP != ipA || k.DstPort != 5001 || k.Proto != IPProtocolTCP {
		t.Fatalf("flow %+v ok=%v", k, ok)
	}
}

func TestBuildDecodeUDP(t *testing.T) {
	frame := BuildUDP(nil, UDPSpec{
		SrcMAC: macA, DstMAC: macB,
		SrcIP: ipA, DstIP: ipB,
		SrcPort: 9999, DstPort: 53,
		PayloadLen: 512,
	})
	var d Decoded
	if err := d.Decode(frame); err != nil {
		t.Fatal(err)
	}
	if !d.Has(LayerUDP) || d.UDP.Length != UDPHeaderLen+512 || d.PayloadLen != 512 {
		t.Fatalf("udp %+v payload %d", d.UDP, d.PayloadLen)
	}
}

func TestBuildDecodeARP(t *testing.T) {
	frame := BuildARP(nil, ARPSpec{
		SrcMAC: macA, DstMAC: macB,
		Op:        ARPRequest,
		SenderMAC: macA, SenderIP: ipA,
		TargetMAC: MAC{}, TargetIP: ipB,
	})
	var d Decoded
	if err := d.Decode(frame); err != nil {
		t.Fatal(err)
	}
	if !d.Has(LayerARP) || d.ARP.Op != ARPRequest || d.ARP.SenderIP != ipA || d.ARP.TargetIP != ipB {
		t.Fatalf("arp %+v", d.ARP)
	}
	if _, ok := d.Flow(); ok {
		t.Fatal("ARP should have no transport flow")
	}
}

func TestIPv4ChecksumValid(t *testing.T) {
	frame := BuildTCP(nil, TCPSpec{SrcMAC: macA, DstMAC: macB, SrcIP: ipA, DstIP: ipB, PayloadLen: 10})
	ipHdr := frame[EthernetHeaderLen : EthernetHeaderLen+IPv4MinHeaderLen]
	if Checksum(ipHdr) != 0 {
		t.Fatal("IPv4 header checksum does not verify")
	}
}

func TestTCPChecksumValid(t *testing.T) {
	frame := BuildTCP(nil, TCPSpec{SrcMAC: macA, DstMAC: macB, SrcIP: ipA, DstIP: ipB, Seq: 7, PayloadLen: 33})
	seg := frame[EthernetHeaderLen+IPv4MinHeaderLen:]
	if L4Checksum(ipA, ipB, IPProtocolTCP, seg) != 0 {
		t.Fatal("TCP checksum does not verify")
	}
}

func TestUDPChecksumValid(t *testing.T) {
	frame := BuildUDP(nil, UDPSpec{SrcMAC: macA, DstMAC: macB, SrcIP: ipA, DstIP: ipB, PayloadLen: 99})
	seg := frame[EthernetHeaderLen+IPv4MinHeaderLen:]
	// Sum over segment with transmitted checksum must verify (0 or the
	// 0xffff representation case).
	ck := L4Checksum(ipA, ipB, IPProtocolUDP, seg)
	if ck != 0 && ck != 0xffff {
		t.Fatalf("UDP checksum does not verify: %#x", ck)
	}
}

func TestDecodeTruncated(t *testing.T) {
	frame := BuildTCP(nil, TCPSpec{SrcMAC: macA, DstMAC: macB, SrcIP: ipA, DstIP: ipB, PayloadLen: 100})
	var d Decoded
	for _, n := range []int{0, 5, EthernetHeaderLen - 1, EthernetHeaderLen + 3, EthernetHeaderLen + IPv4MinHeaderLen + 5} {
		if err := d.Decode(frame[:n]); err == nil {
			t.Errorf("no error decoding %d-byte prefix", n)
		}
	}
}

// Property: build->decode round-trips TCP header fields for arbitrary
// values.
func TestTCPRoundTripProperty(t *testing.T) {
	f := func(seq, ack uint32, sp, dp uint16, payload uint16, flags uint8) bool {
		pl := int(payload) % 1461
		frame := BuildTCP(nil, TCPSpec{
			SrcMAC: macA, DstMAC: macB, SrcIP: ipA, DstIP: ipB,
			SrcPort: sp, DstPort: dp, Seq: seq, Ack: ack,
			Flags: flags & 0x3f, PayloadLen: pl,
		})
		var d Decoded
		if err := d.Decode(frame); err != nil {
			return false
		}
		return d.TCP.Seq == seq && d.TCP.Ack == ack &&
			d.TCP.SrcPort == sp && d.TCP.DstPort == dp &&
			d.TCP.Flags == flags&0x3f && d.PayloadLen == pl
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildReusesBuffer(t *testing.T) {
	buf := make([]byte, 2000)
	frame := BuildTCP(buf, TCPSpec{SrcMAC: macA, DstMAC: macB, SrcIP: ipA, DstIP: ipB, PayloadLen: 100})
	if &frame[0] != &buf[0] {
		t.Fatal("BuildTCP did not reuse the provided buffer")
	}
	small := make([]byte, 10)
	frame2 := BuildTCP(small, TCPSpec{SrcMAC: macA, DstMAC: macB, SrcIP: ipA, DstIP: ipB, PayloadLen: 100})
	if len(frame2) != len(frame) || bytes.Equal(frame2[:10], small) && cap(frame2) == cap(small) {
		t.Fatal("BuildTCP did not grow a too-small buffer")
	}
}

func TestFlowKeyReverse(t *testing.T) {
	k := FlowKey{SrcIP: ipA, DstIP: ipB, SrcPort: 1, DstPort: 2, Proto: IPProtocolTCP}
	r := k.Reverse()
	if r.SrcIP != ipB || r.DstPort != 1 || r.Reverse() != k {
		t.Fatalf("reverse %+v", r)
	}
	if k.String() != "tcp 10.0.0.1:1>10.0.0.2:2" {
		t.Fatalf("string %q", k.String())
	}
}
