// Package packet implements a from-scratch, allocation-conscious codec for
// the wire formats Planck needs to parse at line rate: Ethernet II, ARP,
// IPv4, TCP, and UDP. The design follows gopacket's layering model —
// each protocol is a Layer with Decode and Serialize — but is trimmed to
// the exact feature set the collector requires and uses no third-party
// code.
//
// The hot path is Decoded.Decode, which parses an entire frame into a
// caller-owned Decoded struct without allocating, so a collector can parse
// millions of frames per second without GC pressure.
package packet

import (
	"encoding/binary"
	"fmt"
)

// MAC is a 48-bit Ethernet hardware address.
type MAC [6]byte

// BroadcastMAC is the all-ones broadcast address.
var BroadcastMAC = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// String renders the address in colon-separated hex.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IsBroadcast reports whether m is the broadcast address.
func (m MAC) IsBroadcast() bool { return m == BroadcastMAC }

// U64 packs the address into the low 48 bits of a uint64, useful as a
// compact map key.
func (m MAC) U64() uint64 {
	return uint64(m[0])<<40 | uint64(m[1])<<32 | uint64(m[2])<<24 |
		uint64(m[3])<<16 | uint64(m[4])<<8 | uint64(m[5])
}

// MACFromU64 unpacks a uint64 produced by MAC.U64.
func MACFromU64(v uint64) MAC {
	return MAC{byte(v >> 40), byte(v >> 32), byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
}

// IPv4 is a 32-bit IPv4 address.
type IPv4 [4]byte

// String renders the address in dotted-quad form.
func (ip IPv4) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", ip[0], ip[1], ip[2], ip[3])
}

// U32 packs the address into a uint32 (network byte order semantics).
func (ip IPv4) U32() uint32 { return binary.BigEndian.Uint32(ip[:]) }

// IPv4FromU32 unpacks a uint32 produced by IPv4.U32.
func IPv4FromU32(v uint32) IPv4 {
	var ip IPv4
	binary.BigEndian.PutUint32(ip[:], v)
	return ip
}
