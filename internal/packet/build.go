package packet

// Builders assemble complete frames with valid lengths and checksums.
// They are used by the simulated hosts to emit real bytes and by tests to
// construct fixtures; the collector only ever sees wire-format frames.

// TCPSpec describes a TCP segment to build.
type TCPSpec struct {
	SrcMAC, DstMAC   MAC
	SrcIP, DstIP     IPv4
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Window           uint16
	TTL              uint8
	IPID             uint16
	PayloadLen       int // payload is zero-filled; length is what matters
}

// BuildTCP serializes a TCP/IPv4/Ethernet frame into buf, growing it if
// needed, and returns the frame. Checksums are valid.
func BuildTCP(buf []byte, s TCPSpec) []byte {
	total := EthernetHeaderLen + IPv4MinHeaderLen + TCPMinHeaderLen + s.PayloadLen
	buf = grow(buf, total)

	eth := Ethernet{Dst: s.DstMAC, Src: s.SrcMAC, Type: EtherTypeIPv4}
	off := eth.serialize(buf)

	ttl := s.TTL
	if ttl == 0 {
		ttl = 64
	}
	ip := IPv4Header{
		TotalLen: uint16(IPv4MinHeaderLen + TCPMinHeaderLen + s.PayloadLen),
		ID:       s.IPID,
		Flags:    0x2, // DF
		TTL:      ttl,
		Protocol: IPProtocolTCP,
		Src:      s.SrcIP,
		Dst:      s.DstIP,
	}
	ipOff := off
	off += ip.serialize(buf[off:])

	window := s.Window
	if window == 0 {
		window = 0xffff
	}
	tcp := TCPHeader{
		SrcPort: s.SrcPort, DstPort: s.DstPort,
		Seq: s.Seq, Ack: s.Ack,
		Flags: s.Flags, Window: window,
	}
	tcpOff := off
	off += tcp.serialize(buf[off:])
	zero(buf[off : off+s.PayloadLen])
	off += s.PayloadLen

	seg := buf[tcpOff:off]
	ck := L4Checksum(ip.Src, ip.Dst, IPProtocolTCP, seg)
	seg[16], seg[17] = byte(ck>>8), byte(ck)
	_ = ipOff
	return buf[:off]
}

// UDPSpec describes a UDP datagram to build.
type UDPSpec struct {
	SrcMAC, DstMAC   MAC
	SrcIP, DstIP     IPv4
	SrcPort, DstPort uint16
	TTL              uint8
	IPID             uint16
	PayloadLen       int
	// Seq, when HasSeq is set, is written big-endian into the first four
	// payload bytes — an application-level packet counter of the kind
	// §3.2.2 generalizes rate estimation to.
	Seq    uint32
	HasSeq bool
}

// BuildUDP serializes a UDP/IPv4/Ethernet frame into buf, growing it if
// needed, and returns the frame. Checksums are valid.
func BuildUDP(buf []byte, s UDPSpec) []byte {
	total := EthernetHeaderLen + IPv4MinHeaderLen + UDPHeaderLen + s.PayloadLen
	buf = grow(buf, total)

	eth := Ethernet{Dst: s.DstMAC, Src: s.SrcMAC, Type: EtherTypeIPv4}
	off := eth.serialize(buf)

	ttl := s.TTL
	if ttl == 0 {
		ttl = 64
	}
	ip := IPv4Header{
		TotalLen: uint16(IPv4MinHeaderLen + UDPHeaderLen + s.PayloadLen),
		ID:       s.IPID,
		TTL:      ttl,
		Protocol: IPProtocolUDP,
		Src:      s.SrcIP,
		Dst:      s.DstIP,
	}
	off += ip.serialize(buf[off:])

	udp := UDPHeader{
		SrcPort: s.SrcPort, DstPort: s.DstPort,
		Length: uint16(UDPHeaderLen + s.PayloadLen),
	}
	udpOff := off
	off += udp.serialize(buf[off:])
	zero(buf[off : off+s.PayloadLen])
	if s.HasSeq && s.PayloadLen >= 4 {
		buf[off] = byte(s.Seq >> 24)
		buf[off+1] = byte(s.Seq >> 16)
		buf[off+2] = byte(s.Seq >> 8)
		buf[off+3] = byte(s.Seq)
	}
	off += s.PayloadLen

	seg := buf[udpOff:off]
	ck := L4Checksum(ip.Src, ip.Dst, IPProtocolUDP, seg)
	if ck == 0 {
		ck = 0xffff // RFC 768: transmitted zero means "no checksum"
	}
	seg[6], seg[7] = byte(ck>>8), byte(ck)
	return buf[:off]
}

// ARPSpec describes an ARP frame to build. DstMAC is the Ethernet
// destination, which for the controller's unicast spoofed requests differs
// from the broadcast used by ordinary resolution.
type ARPSpec struct {
	SrcMAC, DstMAC MAC
	Op             ARPOp
	SenderMAC      MAC
	SenderIP       IPv4
	TargetMAC      MAC
	TargetIP       IPv4
}

// BuildARP serializes an ARP/Ethernet frame into buf, growing it if
// needed, and returns the frame.
func BuildARP(buf []byte, s ARPSpec) []byte {
	total := EthernetHeaderLen + ARPBodyLen
	buf = grow(buf, total)

	eth := Ethernet{Dst: s.DstMAC, Src: s.SrcMAC, Type: EtherTypeARP}
	off := eth.serialize(buf)

	arp := ARP{
		Op:        s.Op,
		SenderMAC: s.SenderMAC, SenderIP: s.SenderIP,
		TargetMAC: s.TargetMAC, TargetIP: s.TargetIP,
	}
	off += arp.serialize(buf[off:])
	return buf[:off]
}

func grow(buf []byte, n int) []byte {
	if cap(buf) < n {
		return make([]byte, n)
	}
	return buf[:n]
}

func zero(b []byte) {
	for i := range b {
		b[i] = 0
	}
}
