package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// EtherType identifies the payload protocol of an Ethernet frame.
type EtherType uint16

// EtherTypes Planck understands.
const (
	EtherTypeIPv4 EtherType = 0x0800
	EtherTypeARP  EtherType = 0x0806
)

// IPProtocol identifies the payload protocol of an IPv4 packet.
type IPProtocol uint8

// IP protocol numbers Planck understands.
const (
	IPProtocolTCP IPProtocol = 6
	IPProtocolUDP IPProtocol = 17
)

// Header lengths in bytes (no options / no VLAN tags, which is how the
// simulated hosts emit traffic; the decoder still honours the IPv4 IHL and
// TCP data-offset fields for externally captured traffic).
const (
	EthernetHeaderLen = 14
	ARPBodyLen        = 28
	IPv4MinHeaderLen  = 20
	TCPMinHeaderLen   = 20
	UDPHeaderLen      = 8
)

// Errors returned by the decoders.
var (
	ErrTruncated   = errors.New("packet: truncated")
	ErrBadVersion  = errors.New("packet: bad IP version")
	ErrBadHdrLen   = errors.New("packet: bad header length")
	ErrUnsupported = errors.New("packet: unsupported protocol")
)

// Ethernet is an Ethernet II header.
type Ethernet struct {
	Dst  MAC
	Src  MAC
	Type EtherType
}

func (e *Ethernet) decode(b []byte) (int, error) {
	if len(b) < EthernetHeaderLen {
		return 0, fmt.Errorf("ethernet %d bytes: %w", len(b), ErrTruncated)
	}
	copy(e.Dst[:], b[0:6])
	copy(e.Src[:], b[6:12])
	e.Type = EtherType(binary.BigEndian.Uint16(b[12:14]))
	return EthernetHeaderLen, nil
}

func (e *Ethernet) serialize(b []byte) int {
	copy(b[0:6], e.Dst[:])
	copy(b[6:12], e.Src[:])
	binary.BigEndian.PutUint16(b[12:14], uint16(e.Type))
	return EthernetHeaderLen
}

// ARPOp distinguishes ARP requests from replies.
type ARPOp uint16

// ARP operations.
const (
	ARPRequest ARPOp = 1
	ARPReply   ARPOp = 2
)

// ARP is an Ethernet/IPv4 ARP body. Planck's controller uses unicast ARP
// requests carrying shadow MAC addresses to repoint host ARP caches, so the
// codec supports both directions.
type ARP struct {
	Op        ARPOp
	SenderMAC MAC
	SenderIP  IPv4
	TargetMAC MAC
	TargetIP  IPv4
}

func (a *ARP) decode(b []byte) (int, error) {
	if len(b) < ARPBodyLen {
		return 0, fmt.Errorf("arp %d bytes: %w", len(b), ErrTruncated)
	}
	htype := binary.BigEndian.Uint16(b[0:2])
	ptype := binary.BigEndian.Uint16(b[2:4])
	if htype != 1 || EtherType(ptype) != EtherTypeIPv4 || b[4] != 6 || b[5] != 4 {
		return 0, fmt.Errorf("arp htype=%d ptype=%#x hlen=%d plen=%d: %w", htype, ptype, b[4], b[5], ErrUnsupported)
	}
	a.Op = ARPOp(binary.BigEndian.Uint16(b[6:8]))
	copy(a.SenderMAC[:], b[8:14])
	copy(a.SenderIP[:], b[14:18])
	copy(a.TargetMAC[:], b[18:24])
	copy(a.TargetIP[:], b[24:28])
	return ARPBodyLen, nil
}

func (a *ARP) serialize(b []byte) int {
	binary.BigEndian.PutUint16(b[0:2], 1) // Ethernet
	binary.BigEndian.PutUint16(b[2:4], uint16(EtherTypeIPv4))
	b[4] = 6
	b[5] = 4
	binary.BigEndian.PutUint16(b[6:8], uint16(a.Op))
	copy(b[8:14], a.SenderMAC[:])
	copy(b[14:18], a.SenderIP[:])
	copy(b[18:24], a.TargetMAC[:])
	copy(b[24:28], a.TargetIP[:])
	return ARPBodyLen
}

// IPv4Header is an IPv4 header (options preserved on decode, never emitted
// on serialize).
type IPv4Header struct {
	TOS      uint8
	TotalLen uint16
	ID       uint16
	Flags    uint8 // 3 bits: reserved, DF, MF
	FragOff  uint16
	TTL      uint8
	Protocol IPProtocol
	Checksum uint16 // as seen on the wire (decode) / computed (serialize)
	Src      IPv4
	Dst      IPv4
	hdrLen   int
}

// HeaderLen returns the decoded header length in bytes.
func (h *IPv4Header) HeaderLen() int {
	if h.hdrLen == 0 {
		return IPv4MinHeaderLen
	}
	return h.hdrLen
}

func (h *IPv4Header) decode(b []byte) (int, error) {
	if len(b) < IPv4MinHeaderLen {
		return 0, fmt.Errorf("ipv4 %d bytes: %w", len(b), ErrTruncated)
	}
	if v := b[0] >> 4; v != 4 {
		return 0, fmt.Errorf("ipv4 version %d: %w", v, ErrBadVersion)
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl < IPv4MinHeaderLen || ihl > len(b) {
		return 0, fmt.Errorf("ipv4 ihl %d of %d: %w", ihl, len(b), ErrBadHdrLen)
	}
	h.hdrLen = ihl
	h.TOS = b[1]
	h.TotalLen = binary.BigEndian.Uint16(b[2:4])
	h.ID = binary.BigEndian.Uint16(b[4:6])
	ff := binary.BigEndian.Uint16(b[6:8])
	h.Flags = uint8(ff >> 13)
	h.FragOff = ff & 0x1fff
	h.TTL = b[8]
	h.Protocol = IPProtocol(b[9])
	h.Checksum = binary.BigEndian.Uint16(b[10:12])
	copy(h.Src[:], b[12:16])
	copy(h.Dst[:], b[16:20])
	return ihl, nil
}

// serialize writes a 20-byte header with a freshly computed checksum.
// TotalLen must already be set by the caller.
func (h *IPv4Header) serialize(b []byte) int {
	b[0] = 4<<4 | 5 // version 4, IHL 5 words
	b[1] = h.TOS
	binary.BigEndian.PutUint16(b[2:4], h.TotalLen)
	binary.BigEndian.PutUint16(b[4:6], h.ID)
	binary.BigEndian.PutUint16(b[6:8], uint16(h.Flags)<<13|h.FragOff&0x1fff)
	b[8] = h.TTL
	b[9] = uint8(h.Protocol)
	b[10], b[11] = 0, 0
	copy(b[12:16], h.Src[:])
	copy(b[16:20], h.Dst[:])
	h.Checksum = Checksum(b[:IPv4MinHeaderLen])
	binary.BigEndian.PutUint16(b[10:12], h.Checksum)
	return IPv4MinHeaderLen
}

// TCP flag bits.
const (
	TCPFin uint8 = 1 << 0
	TCPSyn uint8 = 1 << 1
	TCPRst uint8 = 1 << 2
	TCPPsh uint8 = 1 << 3
	TCPAck uint8 = 1 << 4
	TCPUrg uint8 = 1 << 5
)

// TCPHeader is a TCP header (options preserved on decode as raw length,
// never emitted on serialize).
type TCPHeader struct {
	SrcPort  uint16
	DstPort  uint16
	Seq      uint32
	Ack      uint32
	Flags    uint8
	Window   uint16
	Checksum uint16
	hdrLen   int
}

// HeaderLen returns the decoded header length in bytes.
func (t *TCPHeader) HeaderLen() int {
	if t.hdrLen == 0 {
		return TCPMinHeaderLen
	}
	return t.hdrLen
}

// Has reports whether all of the given flag bits are set.
func (t *TCPHeader) Has(flags uint8) bool { return t.Flags&flags == flags }

func (t *TCPHeader) decode(b []byte) (int, error) {
	if len(b) < TCPMinHeaderLen {
		return 0, fmt.Errorf("tcp %d bytes: %w", len(b), ErrTruncated)
	}
	off := int(b[12]>>4) * 4
	if off < TCPMinHeaderLen || off > len(b) {
		return 0, fmt.Errorf("tcp data offset %d of %d: %w", off, len(b), ErrBadHdrLen)
	}
	t.hdrLen = off
	t.SrcPort = binary.BigEndian.Uint16(b[0:2])
	t.DstPort = binary.BigEndian.Uint16(b[2:4])
	t.Seq = binary.BigEndian.Uint32(b[4:8])
	t.Ack = binary.BigEndian.Uint32(b[8:12])
	t.Flags = b[13] & 0x3f
	t.Window = binary.BigEndian.Uint16(b[14:16])
	t.Checksum = binary.BigEndian.Uint16(b[16:18])
	return off, nil
}

func (t *TCPHeader) serialize(b []byte) int {
	binary.BigEndian.PutUint16(b[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], t.DstPort)
	binary.BigEndian.PutUint32(b[4:8], t.Seq)
	binary.BigEndian.PutUint32(b[8:12], t.Ack)
	b[12] = 5 << 4 // 20-byte header
	b[13] = t.Flags & 0x3f
	binary.BigEndian.PutUint16(b[14:16], t.Window)
	b[16], b[17] = 0, 0                     // checksum, filled by caller
	binary.BigEndian.PutUint16(b[18:20], 0) // urgent pointer
	return TCPMinHeaderLen
}

// UDPHeader is a UDP header.
type UDPHeader struct {
	SrcPort  uint16
	DstPort  uint16
	Length   uint16
	Checksum uint16
}

func (u *UDPHeader) decode(b []byte) (int, error) {
	if len(b) < UDPHeaderLen {
		return 0, fmt.Errorf("udp %d bytes: %w", len(b), ErrTruncated)
	}
	u.SrcPort = binary.BigEndian.Uint16(b[0:2])
	u.DstPort = binary.BigEndian.Uint16(b[2:4])
	u.Length = binary.BigEndian.Uint16(b[4:6])
	u.Checksum = binary.BigEndian.Uint16(b[6:8])
	return UDPHeaderLen, nil
}

func (u *UDPHeader) serialize(b []byte) int {
	binary.BigEndian.PutUint16(b[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], u.DstPort)
	binary.BigEndian.PutUint16(b[4:6], u.Length)
	b[6], b[7] = 0, 0 // checksum, filled by caller
	return UDPHeaderLen
}

// Checksum computes the RFC 1071 internet checksum over b.
func Checksum(b []byte) uint16 {
	var sum uint32
	for len(b) >= 2 {
		sum += uint32(b[0])<<8 | uint32(b[1])
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint32(b[0]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + sum>>16
	}
	return ^uint16(sum)
}

// pseudoHeaderSum returns the partial sum of the IPv4 pseudo-header used by
// TCP and UDP checksums.
func pseudoHeaderSum(src, dst IPv4, proto IPProtocol, l4len int) uint32 {
	var sum uint32
	sum += uint32(src[0])<<8 | uint32(src[1])
	sum += uint32(src[2])<<8 | uint32(src[3])
	sum += uint32(dst[0])<<8 | uint32(dst[1])
	sum += uint32(dst[2])<<8 | uint32(dst[3])
	sum += uint32(proto)
	sum += uint32(l4len)
	return sum
}

// L4Checksum computes a TCP or UDP checksum: pseudo-header plus segment.
func L4Checksum(src, dst IPv4, proto IPProtocol, segment []byte) uint16 {
	sum := pseudoHeaderSum(src, dst, proto, len(segment))
	b := segment
	for len(b) >= 2 {
		sum += uint32(b[0])<<8 | uint32(b[1])
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint32(b[0]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + sum>>16
	}
	return ^uint16(sum)
}
