package packet

import "fmt"

// LayerMask records which layers a Decode found.
type LayerMask uint8

// Layer bits.
const (
	LayerEthernet LayerMask = 1 << iota
	LayerARP
	LayerIPv4
	LayerTCP
	LayerUDP
)

// Decoded is the result of parsing one frame. It is designed to be reused:
// Decode overwrites every field it sets and clears the mask first, so a
// collector can keep one Decoded per goroutine and parse millions of
// frames without allocating.
type Decoded struct {
	Layers LayerMask
	Eth    Ethernet
	ARP    ARP
	IP     IPv4Header
	TCP    TCPHeader
	UDP    UDPHeader

	// PayloadLen is the length in bytes of the application payload beyond
	// the innermost decoded header. For TCP over IPv4 it honours the IP
	// TotalLen field rather than the capture length, so truncated mirror
	// captures still report the true payload size.
	PayloadLen int

	// WireLen is the frame length implied by the headers (Ethernet + IP
	// TotalLen when present, otherwise the capture length).
	WireLen int
}

// Has reports whether every layer in mask was decoded.
func (d *Decoded) Has(mask LayerMask) bool { return d.Layers&mask == mask }

// Decode parses an Ethernet frame. On error the mask reflects the layers
// decoded so far, letting callers keep partial information.
func (d *Decoded) Decode(b []byte) error {
	d.Layers = 0
	d.PayloadLen = 0
	d.WireLen = len(b)

	n, err := d.Eth.decode(b)
	if err != nil {
		return err
	}
	d.Layers |= LayerEthernet
	rest := b[n:]

	switch d.Eth.Type {
	case EtherTypeARP:
		if _, err := d.ARP.decode(rest); err != nil {
			return err
		}
		d.Layers |= LayerARP
		return nil
	case EtherTypeIPv4:
		return d.decodeIPv4(rest)
	default:
		return fmt.Errorf("ethertype %#04x: %w", uint16(d.Eth.Type), ErrUnsupported)
	}
}

func (d *Decoded) decodeIPv4(b []byte) error {
	n, err := d.IP.decode(b)
	if err != nil {
		return err
	}
	d.Layers |= LayerIPv4
	ipPayload := int(d.IP.TotalLen) - n
	if ipPayload < 0 {
		return fmt.Errorf("ipv4 total length %d < header %d: %w", d.IP.TotalLen, n, ErrBadHdrLen)
	}
	d.WireLen = EthernetHeaderLen + int(d.IP.TotalLen)
	rest := b[n:]

	switch d.IP.Protocol {
	case IPProtocolTCP:
		hn, err := d.TCP.decode(rest)
		if err != nil {
			return err
		}
		if hn > ipPayload {
			// The IP TotalLen claims less data than the transport header
			// occupies — a lying header, not a truncated capture.
			return fmt.Errorf("ipv4 total length %d < headers %d: %w", d.IP.TotalLen, n+hn, ErrBadHdrLen)
		}
		d.Layers |= LayerTCP
		d.PayloadLen = ipPayload - hn
		return nil
	case IPProtocolUDP:
		hn, err := d.UDP.decode(rest)
		if err != nil {
			return err
		}
		if hn > ipPayload {
			return fmt.Errorf("ipv4 total length %d < headers %d: %w", d.IP.TotalLen, n+hn, ErrBadHdrLen)
		}
		d.Layers |= LayerUDP
		d.PayloadLen = ipPayload - hn
		return nil
	default:
		d.PayloadLen = ipPayload
		return fmt.Errorf("ip protocol %d: %w", uint8(d.IP.Protocol), ErrUnsupported)
	}
}

// FlowKey is a compact 5-tuple key identifying a transport flow. It is
// comparable and therefore usable directly as a map key.
type FlowKey struct {
	SrcIP   IPv4
	DstIP   IPv4
	SrcPort uint16
	DstPort uint16
	Proto   IPProtocol
}

// String renders the key as "proto src:port>dst:port".
func (k FlowKey) String() string {
	proto := "ip"
	switch k.Proto {
	case IPProtocolTCP:
		proto = "tcp"
	case IPProtocolUDP:
		proto = "udp"
	}
	return fmt.Sprintf("%s %s:%d>%s:%d", proto, k.SrcIP, k.SrcPort, k.DstIP, k.DstPort)
}

// Reverse returns the key of the opposite direction of the same flow.
func (k FlowKey) Reverse() FlowKey {
	return FlowKey{SrcIP: k.DstIP, DstIP: k.SrcIP, SrcPort: k.DstPort, DstPort: k.SrcPort, Proto: k.Proto}
}

// Flow extracts the 5-tuple of a decoded TCP or UDP packet. ok is false
// when the frame has no transport layer.
func (d *Decoded) Flow() (k FlowKey, ok bool) {
	if !d.Has(LayerIPv4) {
		return k, false
	}
	k.SrcIP = d.IP.Src
	k.DstIP = d.IP.Dst
	k.Proto = d.IP.Protocol
	switch {
	case d.Has(LayerTCP):
		k.SrcPort = d.TCP.SrcPort
		k.DstPort = d.TCP.DstPort
	case d.Has(LayerUDP):
		k.SrcPort = d.UDP.SrcPort
		k.DstPort = d.UDP.DstPort
	default:
		return k, false
	}
	return k, true
}
