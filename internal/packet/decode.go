package packet

import (
	"encoding/binary"
	"fmt"
)

// LayerMask records which layers a Decode found.
type LayerMask uint8

// Layer bits.
const (
	LayerEthernet LayerMask = 1 << iota
	LayerARP
	LayerIPv4
	LayerTCP
	LayerUDP
)

// Decoded is the result of parsing one frame. It is designed to be reused:
// Decode overwrites every field it sets and clears the mask first, so a
// collector can keep one Decoded per goroutine and parse millions of
// frames without allocating.
type Decoded struct {
	Layers LayerMask
	Eth    Ethernet
	ARP    ARP
	IP     IPv4Header
	TCP    TCPHeader
	UDP    UDPHeader

	// PayloadLen is the length in bytes of the application payload beyond
	// the innermost decoded header. For TCP over IPv4 it honours the IP
	// TotalLen field rather than the capture length, so truncated mirror
	// captures still report the true payload size.
	PayloadLen int

	// WireLen is the frame length implied by the headers (Ethernet + IP
	// TotalLen when present, otherwise the capture length).
	WireLen int
}

// Has reports whether every layer in mask was decoded.
func (d *Decoded) Has(mask LayerMask) bool { return d.Layers&mask == mask }

// DecodeTCPFast decodes the dominant frame shape — untagged Ethernet II,
// IPv4 with no options, TCP with a 20-byte header — in one flat pass
// with no per-layer calls. It returns false without touching d for any
// other shape (VLAN, ARP, IP options, TCP options, UDP, truncation,
// malformed lengths); the caller then runs the full Decode, which
// reproduces the exact result or error. On true, d is bit-identical to
// what Decode would have produced — a property the decode fuzz target
// pins — so callers can treat the pair as one decoder with a fast lane.
func (d *Decoded) DecodeTCPFast(b []byte) bool {
	const fastLen = EthernetHeaderLen + IPv4MinHeaderLen + TCPMinHeaderLen
	if len(b) < fastLen ||
		b[12] != 0x08 || b[13] != 0x00 || // EtherTypeIPv4
		b[14] != 0x45 || // IPv4, IHL 5 words: options go the slow way
		b[23] != uint8(IPProtocolTCP) ||
		b[46]>>4 != 5 { // TCP options go the slow way
		return false
	}
	totalLen := binary.BigEndian.Uint16(b[16:18])
	ipPayload := int(totalLen) - IPv4MinHeaderLen
	if ipPayload < TCPMinHeaderLen {
		return false // lying TotalLen: the slow path produces the error
	}

	d.Layers = LayerEthernet | LayerIPv4 | LayerTCP
	copy(d.Eth.Dst[:], b[0:6])
	copy(d.Eth.Src[:], b[6:12])
	d.Eth.Type = EtherTypeIPv4

	d.IP.TOS = b[15]
	d.IP.TotalLen = totalLen
	d.IP.ID = binary.BigEndian.Uint16(b[18:20])
	ff := binary.BigEndian.Uint16(b[20:22])
	d.IP.Flags = uint8(ff >> 13)
	d.IP.FragOff = ff & 0x1fff
	d.IP.TTL = b[22]
	d.IP.Protocol = IPProtocolTCP
	d.IP.Checksum = binary.BigEndian.Uint16(b[24:26])
	copy(d.IP.Src[:], b[26:30])
	copy(d.IP.Dst[:], b[30:34])
	d.IP.hdrLen = IPv4MinHeaderLen

	d.TCP.SrcPort = binary.BigEndian.Uint16(b[34:36])
	d.TCP.DstPort = binary.BigEndian.Uint16(b[36:38])
	d.TCP.Seq = binary.BigEndian.Uint32(b[38:42])
	d.TCP.Ack = binary.BigEndian.Uint32(b[42:46])
	d.TCP.Flags = b[47] & 0x3f
	d.TCP.Window = binary.BigEndian.Uint16(b[48:50])
	d.TCP.Checksum = binary.BigEndian.Uint16(b[50:52])
	d.TCP.hdrLen = TCPMinHeaderLen

	d.PayloadLen = ipPayload - TCPMinHeaderLen
	d.WireLen = EthernetHeaderLen + int(totalLen)
	return true
}

// Decode parses an Ethernet frame. On error the mask reflects the layers
// decoded so far, letting callers keep partial information.
func (d *Decoded) Decode(b []byte) error {
	d.Layers = 0
	d.PayloadLen = 0
	d.WireLen = len(b)

	n, err := d.Eth.decode(b)
	if err != nil {
		return err
	}
	d.Layers |= LayerEthernet
	rest := b[n:]

	switch d.Eth.Type {
	case EtherTypeARP:
		if _, err := d.ARP.decode(rest); err != nil {
			return err
		}
		d.Layers |= LayerARP
		return nil
	case EtherTypeIPv4:
		return d.decodeIPv4(rest)
	default:
		return fmt.Errorf("ethertype %#04x: %w", uint16(d.Eth.Type), ErrUnsupported)
	}
}

func (d *Decoded) decodeIPv4(b []byte) error {
	n, err := d.IP.decode(b)
	if err != nil {
		return err
	}
	d.Layers |= LayerIPv4
	ipPayload := int(d.IP.TotalLen) - n
	if ipPayload < 0 {
		return fmt.Errorf("ipv4 total length %d < header %d: %w", d.IP.TotalLen, n, ErrBadHdrLen)
	}
	d.WireLen = EthernetHeaderLen + int(d.IP.TotalLen)
	rest := b[n:]

	switch d.IP.Protocol {
	case IPProtocolTCP:
		hn, err := d.TCP.decode(rest)
		if err != nil {
			return err
		}
		if hn > ipPayload {
			// The IP TotalLen claims less data than the transport header
			// occupies — a lying header, not a truncated capture.
			return fmt.Errorf("ipv4 total length %d < headers %d: %w", d.IP.TotalLen, n+hn, ErrBadHdrLen)
		}
		d.Layers |= LayerTCP
		d.PayloadLen = ipPayload - hn
		return nil
	case IPProtocolUDP:
		hn, err := d.UDP.decode(rest)
		if err != nil {
			return err
		}
		if hn > ipPayload {
			return fmt.Errorf("ipv4 total length %d < headers %d: %w", d.IP.TotalLen, n+hn, ErrBadHdrLen)
		}
		d.Layers |= LayerUDP
		d.PayloadLen = ipPayload - hn
		return nil
	default:
		d.PayloadLen = ipPayload
		return fmt.Errorf("ip protocol %d: %w", uint8(d.IP.Protocol), ErrUnsupported)
	}
}

// FlowKey is a compact 5-tuple key identifying a transport flow. It is
// comparable and therefore usable directly as a map key.
//
// The blank tail pads the struct from 13 to 16 bytes. Without it the
// compiler copies the 14-byte (aligned) value as a pair of overlapping
// 8-byte stores, and any word-wide read of a just-copied key — the flow
// hash, the table probe's key compare — then spans both stores and
// stalls on a store-forwarding miss (~15 cycles, measured). At 16 bytes
// every copy is two disjoint word stores and the hot-path loads forward
// cleanly. The padding is excluded from == (blank fields are not
// compared) and never read by the hash.
type FlowKey struct {
	SrcIP   IPv4
	DstIP   IPv4
	SrcPort uint16
	DstPort uint16
	Proto   IPProtocol
	_       [3]byte
}

// String renders the key as "proto src:port>dst:port".
func (k FlowKey) String() string {
	proto := "ip"
	switch k.Proto {
	case IPProtocolTCP:
		proto = "tcp"
	case IPProtocolUDP:
		proto = "udp"
	}
	return fmt.Sprintf("%s %s:%d>%s:%d", proto, k.SrcIP, k.SrcPort, k.DstIP, k.DstPort)
}

// Reverse returns the key of the opposite direction of the same flow.
func (k FlowKey) Reverse() FlowKey {
	return FlowKey{SrcIP: k.DstIP, DstIP: k.SrcIP, SrcPort: k.DstPort, DstPort: k.SrcPort, Proto: k.Proto}
}

// Flow extracts the 5-tuple of a decoded TCP or UDP packet. ok is false
// when the frame has no transport layer.
func (d *Decoded) Flow() (k FlowKey, ok bool) {
	switch {
	case d.Layers&LayerTCP != 0:
		k.SrcPort, k.DstPort = d.TCP.SrcPort, d.TCP.DstPort
	case d.Layers&LayerUDP != 0:
		k.SrcPort, k.DstPort = d.UDP.SrcPort, d.UDP.DstPort
	default:
		return k, false
	}
	k.SrcIP, k.DstIP, k.Proto = d.IP.Src, d.IP.Dst, d.IP.Protocol
	return k, true
}
