// Package sflow models the sampling pipeline Planck replaces (§2.1): a
// switch samples one-in-N packets, attaches metadata, and forwards the
// samples through its control-plane CPU, which caps the achievable rate
// (~300 samples/s on the paper's IBM G8264). A collector estimates flow
// and link rates by multiplying sampled counts by N — accurate only when
// aggregated over long windows, which is exactly the latency wall
// motivating Planck.
//
// The package also implements the standard error model the paper quotes:
// the relative error of a throughput estimate from s samples is
// ≈ 196 * sqrt(1/s) percent (at 95% confidence).
package sflow

import (
	"math"
	"math/rand"

	"planck/internal/packet"
	"planck/internal/units"
)

// EstimateErrorPct returns the §2.1 rule-of-thumb percentage error of an
// sFlow throughput estimate built from s samples.
func EstimateErrorPct(s int64) float64 {
	if s <= 0 {
		return math.Inf(1)
	}
	return 196 * math.Sqrt(1/float64(s))
}

// SamplesForErrorPct inverts EstimateErrorPct: how many samples a target
// error requires.
func SamplesForErrorPct(pct float64) int64 {
	if pct <= 0 {
		return math.MaxInt64
	}
	s := 196 / pct
	return int64(math.Ceil(s * s))
}

// TimeToError returns how long a collector must aggregate to reach the
// target error at a given sample rate — the "seconds or more" latency of
// §2.1/Table 1.
func TimeToError(pct float64, samplesPerSecond float64) units.Duration {
	if samplesPerSecond <= 0 {
		return units.Duration(math.MaxInt64)
	}
	need := float64(SamplesForErrorPct(pct))
	return units.Duration(need / samplesPerSecond * float64(units.Second))
}

// Config models a switch's sFlow pipeline.
type Config struct {
	// SampleRate is N in one-in-N sampling.
	SampleRate int
	// ControlPlaneCap bounds samples per second through the switch CPU
	// (the G8264 manages ~300/s, §2.1).
	ControlPlaneCap float64
}

// DefaultG8264 reflects the paper's measurements.
func DefaultG8264() Config {
	return Config{SampleRate: 1024, ControlPlaneCap: 300}
}

// Sampler applies one-in-N selection and the control-plane cap. It is
// driven with packet observations (timestamp + flow key + bytes) and
// feeds a Collector.
type Sampler struct {
	cfg Config
	rng *rand.Rand

	// token bucket for the CPU cap
	tokens  float64
	lastRef units.Time

	// Sampled and Suppressed count selected packets that passed or hit
	// the CPU cap.
	Sampled    int64
	Suppressed int64

	out func(t units.Time, key packet.FlowKey, wireLen int)
}

// NewSampler builds a sampler delivering samples to out.
func NewSampler(cfg Config, rng *rand.Rand, out func(t units.Time, key packet.FlowKey, wireLen int)) *Sampler {
	if cfg.SampleRate <= 0 {
		cfg.SampleRate = 1024
	}
	if cfg.ControlPlaneCap <= 0 {
		cfg.ControlPlaneCap = 300
	}
	return &Sampler{cfg: cfg, rng: rng, tokens: cfg.ControlPlaneCap, out: out}
}

// Observe offers one forwarded packet to the sampler.
func (s *Sampler) Observe(t units.Time, key packet.FlowKey, wireLen int) {
	if s.rng.Intn(s.cfg.SampleRate) != 0 {
		return
	}
	// Refill the CPU token bucket.
	if t > s.lastRef {
		s.tokens += t.Sub(s.lastRef).Seconds() * s.cfg.ControlPlaneCap
		if s.tokens > s.cfg.ControlPlaneCap {
			s.tokens = s.cfg.ControlPlaneCap
		}
		s.lastRef = t
	}
	if s.tokens < 1 {
		s.Suppressed++
		return
	}
	s.tokens--
	s.Sampled++
	s.out(t, key, wireLen)
}

// Collector aggregates sFlow samples into rate estimates by count
// multiplication over a window.
type Collector struct {
	cfg     Config
	start   units.Time
	now     units.Time
	byFlow  map[packet.FlowKey]int64 // sampled bytes
	samples int64
}

// NewCollector builds an aggregating collector.
func NewCollector(cfg Config) *Collector {
	return &Collector{cfg: cfg, byFlow: make(map[packet.FlowKey]int64)}
}

// Add folds in one sample.
func (c *Collector) Add(t units.Time, key packet.FlowKey, wireLen int) {
	if c.samples == 0 {
		c.start = t
	}
	c.now = t
	c.samples++
	c.byFlow[key] += int64(wireLen)
}

// Samples returns how many samples the window holds.
func (c *Collector) Samples() int64 { return c.samples }

// Window returns the aggregation window length.
func (c *Collector) Window() units.Duration { return c.now.Sub(c.start) }

// FlowRate estimates a flow's rate: sampled bytes x N / window.
func (c *Collector) FlowRate(key packet.FlowKey) (units.Rate, bool) {
	b, ok := c.byFlow[key]
	if !ok || c.Window() <= 0 {
		return 0, false
	}
	return units.RateOf(b*int64(c.cfg.SampleRate), c.Window()), true
}

// ErrorPct returns the current estimate's §2.1 error bound.
func (c *Collector) ErrorPct() float64 { return EstimateErrorPct(c.samples) }

// Reset clears the window.
func (c *Collector) Reset() {
	c.byFlow = make(map[packet.FlowKey]int64)
	c.samples = 0
}
