package sflow

import (
	"math"
	"math/rand"
	"testing"

	"planck/internal/packet"
	"planck/internal/units"
)

var key = packet.FlowKey{
	SrcIP: packet.IPv4{10, 0, 0, 1}, DstIP: packet.IPv4{10, 0, 0, 2},
	SrcPort: 1, DstPort: 2, Proto: packet.IPProtocolTCP,
}

func TestErrorModel(t *testing.T) {
	// §2.1: 300 samples over one second give ≈11% error.
	if got := EstimateErrorPct(300); math.Abs(got-11.3) > 0.2 {
		t.Fatalf("error at 300 samples = %.2f%%", got)
	}
	if got := SamplesForErrorPct(11.3); got < 295 || got > 305 {
		t.Fatalf("samples for 11.3%% = %d", got)
	}
	if !math.IsInf(EstimateErrorPct(0), 1) {
		t.Fatal("zero samples should be infinite error")
	}
}

func TestTimeToError(t *testing.T) {
	// To reach ~5% at 300 samples/s the collector must wait ≈5 s
	// ((196/5)^2 ≈ 1537 samples) — Planck's whole motivation.
	d := TimeToError(5, 300)
	if d < 4900*units.Millisecond || d > 5400*units.Millisecond {
		t.Fatalf("time to 5%% = %v", d)
	}
}

func TestSamplerSelectsRoughlyOneInN(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var got int64
	cfg := Config{SampleRate: 64, ControlPlaneCap: 1e12}
	s := NewSampler(cfg, rng, func(units.Time, packet.FlowKey, int) { got++ })
	const n = 200000
	for i := 0; i < n; i++ {
		s.Observe(units.Time(i*1000), key, 1500)
	}
	want := float64(n) / 64
	if f := float64(got); f < want*0.9 || f > want*1.1 {
		t.Fatalf("sampled %d, want ≈%.0f", got, want)
	}
}

func TestControlPlaneCap(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var got int64
	s := NewSampler(Config{SampleRate: 2, ControlPlaneCap: 300}, rng,
		func(units.Time, packet.FlowKey, int) { got++ })
	// One simulated second of 1M offered packets: selection picks ~500k,
	// but the CPU can push only ~300 (+ the initial bucket).
	for i := 0; i < 1_000_000; i++ {
		s.Observe(units.Time(i*1000), key, 1500)
	}
	if got > 700 {
		t.Fatalf("CPU cap leaked: %d samples", got)
	}
	if s.Suppressed == 0 {
		t.Fatal("nothing suppressed")
	}
}

func TestCollectorRateEstimate(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	col := NewCollector(Config{SampleRate: 128})
	s := NewSampler(Config{SampleRate: 128, ControlPlaneCap: 1e12}, rng, col.Add)
	// A 9.5 Gbps stream of 1514-byte frames for 100 ms.
	interval := units.Rate(9500 * units.Mbps).Serialize(1514)
	var tm units.Time
	var sentBytes int64
	for tm < units.Time(100*units.Millisecond) {
		s.Observe(tm, key, 1514)
		sentBytes += 1514
		tm = tm.Add(interval)
	}
	got, ok := col.FlowRate(key)
	if !ok {
		t.Fatal("no estimate")
	}
	truth := units.RateOf(sentBytes, units.Duration(tm))
	relErr := math.Abs(float64(got-truth)) / float64(truth)
	// With ~600 samples the model predicts ≈8% error; allow 3 sigma.
	if relErr > 0.25 {
		t.Fatalf("estimate %v vs truth %v (%.1f%% off)", got, truth, relErr*100)
	}
	if col.ErrorPct() > 15 {
		t.Fatalf("predicted error %.1f%%", col.ErrorPct())
	}
	col.Reset()
	if _, ok := col.FlowRate(key); ok {
		t.Fatal("estimate survived reset")
	}
}

// TestPlanckVsSFlowLatency quantifies Table 1's core comparison: with the
// control-plane cap, sFlow needs ~1 s to reach ~11% error, while Planck's
// sequence-number estimator is exact after one 200–700 µs window.
func TestPlanckVsSFlowLatency(t *testing.T) {
	window := TimeToError(11.3, 300)
	if window < 900*units.Millisecond || window > 1100*units.Millisecond {
		t.Fatalf("sFlow window %v, want ≈1 s", window)
	}
	planck := 700 * units.Microsecond
	if ratio := float64(window) / float64(planck); ratio < 1000 {
		t.Fatalf("speedup only %.0fx", ratio)
	}
}
