package experiments

import (
	"testing"

	"planck/internal/units"
)

func TestMirrorImpactShape(t *testing.T) {
	pts := MirrorImpact(MirrorImpactParams{
		Ports:    []int{2, 5},
		Runs:     1,
		Duration: 150 * units.Millisecond,
		Seed:     11,
	})
	if len(pts) != 4 {
		t.Fatalf("%d points", len(pts))
	}
	byKey := map[[2]interface{}]MirrorImpactPoint{}
	for _, p := range pts {
		byKey[[2]interface{}{p.Ports, p.Mirror}] = p
	}
	for _, n := range []int{2, 5} {
		m := byKey[[2]interface{}{n, true}]
		nm := byKey[[2]interface{}{n, false}]
		// Fig 2: loss is small in absolute terms (paper: < 0.16%) and
		// mirroring does not reduce it.
		if m.LossPct > 1.0 {
			t.Fatalf("ports=%d mirror loss %.3f%% too high", n, m.LossPct)
		}
		if m.LossPct+1e-9 < nm.LossPct {
			t.Fatalf("ports=%d: mirroring reduced loss (%.4f < %.4f)", n, m.LossPct, nm.LossPct)
		}
		// Fig 3: mirroring lowers median latency (less shared buffer
		// means shorter queues).
		if m.LatMedian > nm.LatMedian*1.05 {
			t.Fatalf("ports=%d: mirror median latency %.0f > no-mirror %.0f",
				n, m.LatMedian, nm.LatMedian)
		}
		// Queueing latency should be in the switch-buffer millisecond
		// range.
		if nm.LatMedian < 200 || nm.LatMedian > 5000 {
			t.Fatalf("ports=%d: no-mirror median %.0f µs out of range", n, nm.LatMedian)
		}
		// Fig 4: median flow throughput unaffected: two flows share a
		// 10G port, so ≈4.7 Gbps each.
		if m.TputMedian < 3.5 || m.TputMedian > 5.2 {
			t.Fatalf("ports=%d: mirror tput median %.2f", n, m.TputMedian)
		}
		if diff := m.TputMedian - nm.TputMedian; diff > 0.6 || diff < -0.6 {
			t.Fatalf("ports=%d: mirroring changed throughput by %.2f Gbps", n, diff)
		}
	}
	t.Logf("\n%s", MirrorImpactTable(pts).Render())
}

func TestSampleStreamShape(t *testing.T) {
	r := SampleStream(SampleStreamParams{Flows: 13, Duration: 80 * units.Millisecond, Seed: 12})
	if r.BurstMTUs.N() < 1000 {
		t.Fatalf("only %d bursts", r.BurstMTUs.N())
	}
	// Fig 5: the vast majority of bursts are <= 1 MTU (paper: >96%).
	if frac := r.BurstMTUs.FractionAtOrBelow(1.0); frac < 0.85 {
		t.Fatalf("burst <=1MTU fraction %.3f", frac)
	}
	// Fig 7: most inter-arrivals <= ~13 MTUs with a long tail
	// (paper: 85% <= 13 MTUs).
	if frac := r.InterarrivalMTUs.FractionAtOrBelow(13); frac < 0.6 {
		t.Fatalf("interarrival <=13MTU fraction %.3f", frac)
	}
	if r.InterarrivalMTUs.Quantile(0.999) < 30 {
		t.Fatal("no long tail in inter-arrivals")
	}
	t.Logf("\n%s\n%s", Fig5Table(r).Render(), Fig7Table(r).Render())
}

func TestFig6Growth(t *testing.T) {
	rs := Fig6Sweep([]int{6, 12}, 60*units.Millisecond, 13)
	m6 := rs[0].InterarrivalMTUs.Mean()
	m12 := rs[1].InterarrivalMTUs.Mean()
	// Fig 6: mean inter-arrival grows with the flow count. (In this
	// measurement the mean is mathematically (flows-1) x mean burst
	// length, so it tracks the ideal line only as bursts approach one
	// MTU; at lower flow counts our switch admits slightly longer runs.)
	if m12 <= m6 {
		t.Fatalf("inter-arrival not growing: %d flows -> %.1f, %d flows -> %.1f",
			6, m6, 12, m12)
	}
	if m6 < 4 || m6 > 15 {
		t.Fatalf("6-flow mean %.1f MTUs, ideal 5", m6)
	}
	if m12 < 8 || m12 > 33 {
		t.Fatalf("12-flow mean %.1f MTUs, ideal 11", m12)
	}
	t.Logf("\n%s", Fig6Table(rs).Render())
}
