package experiments

import (
	"fmt"

	"planck/internal/core"
	"planck/internal/packet"
	"planck/internal/sim"
	"planck/internal/stats"
	"planck/internal/topo"
	"planck/internal/units"
)

// Fig10Point is one time-series sample of the two estimators.
type Fig10Point struct {
	Time units.Time
	// Rolling is the naive 200 µs rolling-average estimate (Fig. 10a).
	Rolling units.Rate
	// Planck is the burst-clustered estimator output (Fig. 10b).
	Planck units.Rate
}

// Fig10Params configures the slow-start estimation comparison.
type Fig10Params struct {
	Duration units.Duration // observation window from flow start
	Step     units.Duration // series sampling step
	Seed     int64
}

// Fig10 reproduces Figure 10: a single TCP flow starts, and the naive
// 200 µs rolling average of sampled bytes jitters between 0 and ~12 Gbps
// while Planck's burst estimator ramps smoothly with the flow's actual
// average rate.
func Fig10(p Fig10Params) []Fig10Point {
	if p.Duration == 0 {
		// The Reno/IW10 model completes slow start in a few RTTs
		// (~1–2 ms at the testbed's ~230 µs RTT), so the interesting
		// window is shorter than the paper's 12 ms CUBIC ramp.
		p.Duration = 2 * units.Millisecond
	}
	if p.Step == 0 {
		p.Step = 50 * units.Microsecond
	}
	l := mustLab(microLabOptions(SwitchG8264, 2, false, p.Seed))

	window := stats.NewRollingWindow(200 * units.Microsecond)
	l.Collectors[0].OnSample = func(at units.Time, pkt *sim.Packet) {
		if pkt.Kind == sim.KindTCP && pkt.PayloadLen > 0 {
			window.Add(at, float64(pkt.PayloadLen))
		}
	}

	c, err := l.Hosts[0].StartFlow(0, topo.HostIP(1), 5001, 1<<40, 1)
	if err != nil {
		panic(err)
	}
	key := c.FlowKey()

	var series []Fig10Point
	sim.NewTicker(l.Eng, p.Step, func(now units.Time) {
		rate, _ := l.Collector(0).FlowRate(key)
		series = append(series, Fig10Point{
			Time:    now,
			Rolling: window.Rate(now),
			Planck:  rate,
		})
	})
	l.Run(p.Duration)
	return series
}

// Fig10Table summarizes the jitter difference.
func Fig10Table(series []Fig10Point) *Table {
	roll := &stats.Sample{}
	planck := &stats.Sample{}
	// Skip the first quarter (connection setup) when summarizing
	// stability.
	for i := len(series) / 4; i < len(series); i++ {
		roll.Add(series[i].Rolling.Gigabits())
		planck.Add(series[i].Planck.Gigabits())
	}
	t := &Table{
		Title:   "Figure 10: slow-start rate estimation (after setup)",
		Columns: []string{"estimator", "min (Gbps)", "max", "stddev"},
	}
	t.AddRow("200µs rolling average",
		fmt.Sprintf("%.2f", roll.Min()), fmt.Sprintf("%.2f", roll.Max()),
		fmt.Sprintf("%.2f", roll.Stddev()))
	t.AddRow("Planck burst estimator",
		fmt.Sprintf("%.2f", planck.Min()), fmt.Sprintf("%.2f", planck.Max()),
		fmt.Sprintf("%.2f", planck.Stddev()))
	return t
}

// Fig11Point is one oversubscription measurement.
type Fig11Point struct {
	Factor    float64
	MeanError float64 // mean relative error of Planck vs sender truth
}

// Fig11Params configures the accuracy sweep.
type Fig11Params struct {
	Factors  []int
	Duration units.Duration
	Seed     int64
}

// Fig11 reproduces Figure 11: rate-estimation error versus
// oversubscription. Ground truth comes from running the same burst
// estimator over the complete sender-side trace (as the paper does with
// tcpdump), compared against the collector's estimate from mirror
// samples at 1 ms checkpoints. The paper reports ≈3% error, flat in the
// oversubscription factor.
func Fig11(p Fig11Params) []Fig11Point {
	if len(p.Factors) == 0 {
		p.Factors = []int{1, 2, 4, 8, 12, 16}
	}
	if p.Duration == 0 {
		p.Duration = 100 * units.Millisecond
	}
	var out []Fig11Point
	for _, n := range p.Factors {
		out = append(out, Fig11Point{
			Factor:    float64(n) * 0.95,
			MeanError: fig11Run(n, p.Duration, p.Seed),
		})
	}
	return out
}

func fig11Run(n int, duration units.Duration, seed int64) float64 {
	l := mustLab(microLabOptions(SwitchG8264, 2*n, false, seed))

	truth := make([]*core.RateEstimator, n)
	var est, want []float64
	for i := 0; i < n; i++ {
		i := i
		truth[i] = core.NewRateEstimator()
		l.Hosts[i].OnSegmentSent = func(now units.Time, pkt *sim.Packet) {
			if pkt.PayloadLen > 0 && pkt.FlowID == int32(i) {
				truth[i].Observe(now, pkt.Seq)
			}
		}
	}
	realKeys := make([]packet.FlowKey, n)
	for i := 0; i < n; i++ {
		c, err := l.Hosts[i].StartFlow(0, topo.HostIP(i+n), 5001, 1<<40, int32(i))
		if err != nil {
			panic(err)
		}
		realKeys[i] = c.FlowKey()
	}

	sim.NewTicker(l.Eng, units.Millisecond, func(now units.Time) {
		// Skip the slow-start ramp: compare once flows are established.
		if now < units.Time(10*units.Millisecond) {
			return
		}
		for i := 0; i < n; i++ {
			tr, _, okT := truth[i].Rate()
			pr, okP := l.Collector(0).FlowRate(realKeys[i])
			if okT && okP && tr > 0 {
				est = append(est, float64(pr))
				want = append(want, float64(tr))
			}
		}
	})
	l.Run(duration)
	mre, err := stats.MeanRelativeError(est, want)
	if err != nil {
		panic(err)
	}
	return mre
}

// Fig11Table renders the sweep.
func Fig11Table(points []Fig11Point) *Table {
	t := &Table{
		Title:   "Figure 11: throughput estimation error vs oversubscription",
		Columns: []string{"factor", "mean relative error"},
	}
	for _, pt := range points {
		t.AddRow(fmt.Sprintf("%.1fx", pt.Factor), fmt.Sprintf("%.1f%%", pt.MeanError*100))
	}
	return t
}
