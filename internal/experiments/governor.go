package experiments

import (
	"fmt"
	"math"

	"planck/internal/governor"
	"planck/internal/sflow"
	"planck/internal/sim"
	"planck/internal/topo"
	"planck/internal/units"
)

// GovernorProfile is the sampling-rate governor configuration the
// tools and experiments share: a software-sampler estimator feed (the
// paper's 300 samples/s hardware cap is useless at millisecond scale),
// a saturation threshold above the 2:1 operating point so episodes
// trigger decisively, and a shed fraction wide enough to classify
// ACK-only return ports as low-value.
func GovernorProfile() governor.Config {
	return governor.Config{
		SaturationThreshold: 0.6,
		ShedFraction:        0.1,
		Estimator: governor.EstimatorConfig{
			SFlow: sflow.Config{SampleRate: 64, ControlPlaneCap: 200000},
		},
	}
}

// GovAccuracyPoint is one mirror-load regime of the estimation sweep.
type GovAccuracyPoint struct {
	// Factor is the mirror oversubscription (saturated streams sharing
	// one monitor port).
	Factor int
	// Offered is the aggregate mirror load the estimator inferred.
	Offered units.Rate
	// Estimated is the estimator's aggregate effective sampling rate.
	Estimated float64
	// Truth is the exact effective rate from the switch's own counters.
	Truth float64
	// Analytic is the capacity model's prediction (≈1/Factor).
	Analytic float64
	// Confidence is the estimate's statistical weight.
	Confidence float64
}

// GovAccuracyParams configures the estimation-accuracy sweep.
type GovAccuracyParams struct {
	Factors  []int
	Duration units.Duration
	Seed     int64
}

// GovernorAccuracy sweeps mirror-queue saturation regimes and measures
// the RateEstimator against ground truth: k saturated TCP streams all
// mirror onto one 10 Gbps monitor port, so the analytic effective
// sampling rate is ≈1/k, and the switch's own mirror counters give the
// exact value. The estimator only sees what the governor would see at
// runtime — periodic counter polls landing in its sliding window.
func GovernorAccuracy(p GovAccuracyParams) []GovAccuracyPoint {
	if len(p.Factors) == 0 {
		p.Factors = []int{1, 2, 4, 8}
	}
	if p.Duration == 0 {
		p.Duration = 50 * units.Millisecond
	}
	var out []GovAccuracyPoint
	for _, k := range p.Factors {
		out = append(out, govAccuracyRun(k, p.Duration, p.Seed))
	}
	return out
}

func govAccuracyRun(k int, duration units.Duration, seed int64) GovAccuracyPoint {
	l := mustLab(microLabOptions(SwitchG8264, 2*k, false, seed))
	sw := l.Switches[0]

	est := governor.NewRateEstimator(GovernorProfile().Estimator, sw.NumPorts())
	mon := sw.MonitorPort()
	sim.NewTicker(l.Eng, 500*units.Microsecond, func(now units.Time) {
		for p := 0; p < sw.NumPorts(); p++ {
			if p == mon {
				continue
			}
			q, d := sw.MirrorPortCounters(p)
			est.RecordMirrorCounters(now, p, q, d)
		}
	})

	for i := 0; i < k; i++ {
		if _, err := l.Hosts[i].StartFlow(0, topo.HostIP(i+k), 5001, 1<<40, int32(i)); err != nil {
			panic(err)
		}
	}
	l.Run(duration)

	agg := est.Aggregate(l.Eng.Now())
	queued, dropped := sw.MirrorQueued.Bytes, sw.MirrorDropped.Bytes
	truth := 1.0
	if queued+dropped > 0 {
		truth = float64(queued) / float64(queued+dropped)
	}
	return GovAccuracyPoint{
		Factor:     k,
		Offered:    agg.Offered,
		Estimated:  agg.Effective,
		Truth:      truth,
		Analytic:   1 / float64(k),
		Confidence: agg.Confidence,
	}
}

// GovernorAccuracyTable renders the sweep.
func GovernorAccuracyTable(points []GovAccuracyPoint) *Table {
	t := &Table{
		Title:   "Governor estimation accuracy vs mirror load",
		Columns: []string{"mirror load", "offered (Gbps)", "estimated", "counter truth", "analytic 1/k", "|err|", "confidence"},
	}
	for _, pt := range points {
		t.AddRow(
			fmt.Sprintf("%dx", pt.Factor),
			fmt.Sprintf("%.1f", pt.Offered.Gigabits()),
			fmt.Sprintf("%.3f", pt.Estimated),
			fmt.Sprintf("%.3f", pt.Truth),
			fmt.Sprintf("%.3f", pt.Analytic),
			fmt.Sprintf("%.3f", math.Abs(pt.Estimated-pt.Truth)),
			fmt.Sprintf("%.2f", pt.Confidence),
		)
	}
	return t
}

// GovEpisodeResult is one governed saturation run.
type GovEpisodeResult struct {
	Episodes []governor.Episode
	// Converged counts closed control loops.
	Converged int
	// FinalEffective is the aggregate effective sampling rate at the
	// end of the run (post-tuning).
	FinalEffective float64
	// Thinned counts intentionally pre-thinned copies — the §9.2 "rate
	// of samples" machinery the governor drives.
	Thinned int64
}

// GovernorEpisode drives the canonical shed/tune scenario: a 2:1
// oversubscribed mirror on one switch, governed. Two saturated flows
// tune their egress ports down to the monitor budget while the
// ACK-only return ports are shed and later restored.
func GovernorEpisode(seed int64) GovEpisodeResult {
	opts := microLabOptions(SwitchG8264, 4, false, seed)
	opts.Govern = true
	opts.GovernorConfig = GovernorProfile()
	l := mustLab(opts)

	mustFlow := func(src, dst int, id int32) {
		if _, err := l.Hosts[src].StartFlow(0, topo.HostIP(dst), 5001, 1<<30, id); err != nil {
			panic(err)
		}
	}
	mustFlow(0, 2, 1)
	mustFlow(1, 3, 2)
	l.Run(80 * units.Millisecond)

	gov := l.Governor(0)
	eff, _ := gov.LastEstimate()
	return GovEpisodeResult{
		Episodes:       gov.Episodes(),
		Converged:      gov.ConvergedEpisodes(),
		FinalEffective: eff,
		Thinned:        l.Switches[0].MirrorThinned.Packets,
	}
}

// GovernorEpisodeTable renders the episode trace.
func GovernorEpisodeTable(r GovEpisodeResult) *Table {
	t := &Table{
		Title:   "Governor shed/tune episode trace (2:1 oversubscribed mirror)",
		Columns: []string{"t", "kind", "sheds", "tunes", "restores", "effective", "conf", "actuated", "converged"},
	}
	for _, ep := range r.Episodes {
		conv := "-"
		if ep.ConvergedAt != 0 {
			conv = ep.ConvergedAt.String()
		}
		act := "-"
		if ep.ActuatedAt != 0 {
			act = ep.ActuatedAt.String()
		}
		t.AddRow(
			ep.At.String(), ep.Kind.String(),
			fmt.Sprintf("%d", ep.Sheds), fmt.Sprintf("%d", ep.Tunes), fmt.Sprintf("%d", ep.Restores),
			fmt.Sprintf("%.2f", ep.Effective), fmt.Sprintf("%.2f", ep.Confidence),
			act, conv,
		)
	}
	return t
}
