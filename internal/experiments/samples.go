package experiments

import (
	"fmt"

	"planck/internal/sim"
	"planck/internal/stats"
	"planck/internal/topo"
	"planck/internal/units"
)

// SampleStreamParams configures the §5.3 analysis: N max-rate TCP flows
// with unique source-destination pairs, all mirrored to one saturated
// monitor port.
type SampleStreamParams struct {
	Flows    int
	Duration units.Duration
	Seed     int64
}

// SampleStreamResult holds the Figure 5–7 metrics.
type SampleStreamResult struct {
	Flows int
	// BurstMTUs is the distribution of consecutive same-flow sample runs,
	// in 1500-byte MTUs (Fig. 5).
	BurstMTUs *stats.Sample
	// InterarrivalMTUs is the distribution of other-flow bytes between
	// bursts of a given flow, in MTUs (Figs. 6 and 7, red line).
	InterarrivalMTUs *stats.Sample
	// SenderGapMTUs is how many MTUs would fit in each sender-side
	// transmission gap (Fig. 7, blue line).
	SenderGapMTUs *stats.Sample
}

// SampleStream runs the analysis for one flow count.
func SampleStream(p SampleStreamParams) *SampleStreamResult {
	if p.Duration == 0 {
		p.Duration = 100 * units.Millisecond
	}
	n := p.Flows
	warmup := units.Time(20 * units.Millisecond)
	l := mustLab(microLabOptions(SwitchG8264, 2*n, false, p.Seed))

	res := &SampleStreamResult{
		Flows:            n,
		BurstMTUs:        &stats.Sample{},
		InterarrivalMTUs: &stats.Sample{},
		SenderGapMTUs:    &stats.Sample{},
	}

	// One full-size frame (MSS 1460 + 54 bytes of headers) counts as one
	// MTU, matching the paper's packet-granularity reading of Fig. 5.
	const mtu = 1514.0
	// Burst/inter-arrival scanning state over the collector sample
	// stream (data packets only).
	curFlow := int32(-1)
	var curBurstBytes float64
	// interGap[f] accumulates other-flow bytes since flow f's last burst.
	interGap := make([]float64, n)
	seen := make([]bool, n)

	l.Collectors[0].OnSample = func(at units.Time, pkt *sim.Packet) {
		if at < warmup || pkt.Kind != sim.KindTCP || pkt.PayloadLen == 0 || pkt.FlowID < 0 {
			return
		}
		f := pkt.FlowID
		if f != curFlow {
			if curFlow >= 0 {
				res.BurstMTUs.Add(curBurstBytes / mtu)
			}
			if seen[f] {
				res.InterarrivalMTUs.Add(interGap[f] / mtu)
			}
			seen[f] = true
			interGap[f] = 0
			curFlow = f
			curBurstBytes = 0
		}
		curBurstBytes += float64(pkt.WireLen)
		for o := int32(0); o < int32(n); o++ {
			if o != f && seen[o] {
				interGap[o] += float64(pkt.WireLen)
			}
		}
	}

	// Sender-side gap observation: how many MTU transmissions fit in
	// each pause between data segments.
	mtuTime := units.Rate10G.Serialize(1514 + sim.EthernetOverhead)
	lastSent := make([]units.Time, n)
	for i := 0; i < n; i++ {
		i := i
		l.Hosts[i].OnSegmentSent = func(now units.Time, pkt *sim.Packet) {
			if now < warmup || pkt.PayloadLen == 0 || pkt.FlowID != int32(i) {
				return
			}
			if lastSent[i] > 0 {
				gap := now.Sub(lastSent[i])
				res.SenderGapMTUs.Add(float64(gap) / float64(mtuTime))
			}
			lastSent[i] = now
		}
		if _, err := l.Hosts[i].StartFlow(0, topo.HostIP(i+n), 5001, 1<<40, int32(i)); err != nil {
			panic(err)
		}
	}

	l.Run(p.Duration)
	return res
}

// Fig6Sweep measures the mean inter-arrival length for a range of flow
// counts; the paper predicts growth linear in (flows - 1).
func Fig6Sweep(counts []int, duration units.Duration, seed int64) []*SampleStreamResult {
	if len(counts) == 0 {
		counts = []int{2, 4, 6, 8, 10, 12, 14}
	}
	out := make([]*SampleStreamResult, 0, len(counts))
	for _, n := range counts {
		out = append(out, SampleStream(SampleStreamParams{Flows: n, Duration: duration, Seed: seed}))
	}
	return out
}

// Fig5Table summarizes the burst-length CDF for one flow count.
func Fig5Table(r *SampleStreamResult) *Table {
	t := &Table{
		Title:   fmt.Sprintf("Figure 5: burst length CDF, %d concurrent flows", r.Flows),
		Columns: []string{"metric", "value"},
	}
	t.AddRow("bursts observed", fmt.Sprintf("%d", r.BurstMTUs.N()))
	t.AddRow("fraction <= 1 MTU", fmt.Sprintf("%.3f", r.BurstMTUs.FractionAtOrBelow(1.0)))
	t.AddRow("fraction <= 2 MTU", fmt.Sprintf("%.3f", r.BurstMTUs.FractionAtOrBelow(2.0)))
	t.AddRow("p99 (MTUs)", fmt.Sprintf("%.1f", r.BurstMTUs.Quantile(0.99)))
	return t
}

// Fig6Table renders the sweep.
func Fig6Table(results []*SampleStreamResult) *Table {
	t := &Table{
		Title:   "Figure 6: mean inter-arrival length vs flow count",
		Columns: []string{"flows", "mean inter-arrival (MTUs)", "ideal (flows-1)"},
	}
	for _, r := range results {
		t.AddRow(fmt.Sprintf("%d", r.Flows),
			fmt.Sprintf("%.1f", r.InterarrivalMTUs.Mean()),
			fmt.Sprintf("%d", r.Flows-1))
	}
	return t
}

// Fig7Table compares collector-side inter-arrivals with sender-side gaps.
func Fig7Table(r *SampleStreamResult) *Table {
	t := &Table{
		Title:   fmt.Sprintf("Figure 7: inter-arrival CDF, %d flows (collector vs sender)", r.Flows),
		Columns: []string{"metric", "collector", "sender gaps"},
	}
	fr := func(s *stats.Sample, x float64) string {
		return fmt.Sprintf("%.3f", s.FractionAtOrBelow(x))
	}
	t.AddRow("fraction <= 13 MTUs", fr(r.InterarrivalMTUs, 13), fr(r.SenderGapMTUs, 13))
	t.AddRow("fraction <= 50 MTUs", fr(r.InterarrivalMTUs, 50), fr(r.SenderGapMTUs, 50))
	t.AddRow("p99 (MTUs)",
		fmt.Sprintf("%.0f", r.InterarrivalMTUs.Quantile(0.99)),
		fmt.Sprintf("%.0f", r.SenderGapMTUs.Quantile(0.99)))
	return t
}
