package experiments

import (
	"testing"

	"planck/internal/units"
)

// TestFig17SmallFlowHeadline verifies the paper's headline: with 50 MiB
// flows, PlanckTE tracks Optimal closely while Static (and polling at
// 1 s granularity, which cannot engineer flows this short) trails far
// behind.
func TestFig17SmallFlowHeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second fat-tree workloads")
	}
	const size = 50 << 20
	cells := Fig17(Fig17Params{
		Sizes:   []int64{size},
		Schemes: []Scheme{SchemeStatic, SchemePoll1s, SchemePlanckTE, SchemeOptimal},
		Timeout: 10 * units.Duration(units.Second),
		Seed:    51,
	})
	byScheme := map[Scheme]float64{}
	for _, c := range cells {
		byScheme[c.Scheme] = c.AvgGbps
	}
	t.Logf("\n%s", Fig17Table(cells).Render())

	opt := byScheme[SchemeOptimal]
	planck := byScheme[SchemePlanckTE]
	static := byScheme[SchemeStatic]
	poll1 := byScheme[SchemePoll1s]

	if opt < 4 {
		t.Fatalf("optimal only %.2f Gbps for 50 MiB flows", opt)
	}
	// PlanckTE within striking distance of Optimal (paper: 1-4%; allow
	// simulator slack).
	if planck < 0.70*opt {
		t.Fatalf("PlanckTE %.2f vs Optimal %.2f", planck, opt)
	}
	// Static suffers badly from collisions.
	if static > 0.75*opt {
		t.Fatalf("Static %.2f suspiciously close to Optimal %.2f", static, opt)
	}
	if planck < 1.15*static {
		t.Fatalf("PlanckTE %.2f not clearly better than Static %.2f", planck, static)
	}
	// Poll-1s cannot help 50 MiB flows (they finish before the first
	// poll); it should look like Static, far from PlanckTE.
	if poll1 > 0.8*planck {
		t.Fatalf("Poll-1s %.2f should trail PlanckTE %.2f on 50 MiB flows", poll1, planck)
	}
}

// TestFig14ShuffleCell runs one shuffle cell end to end, checking host
// completion accounting works under the dynamic workload.
func TestFig14ShuffleCell(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second fat-tree workloads")
	}
	res := RunWorkload(WorkloadShuffle, SchemeOptimal, 4<<20, 53, 30*units.Duration(units.Second))
	if res.Completed != res.Total {
		t.Fatalf("completed %d/%d", res.Completed, res.Total)
	}
	if res.HostCompletion.N() != 16 {
		t.Fatalf("host completions %d", res.HostCompletion.N())
	}
}
