package experiments

import "testing"

func TestPrioritySamplingExtension(t *testing.T) {
	rs := PrioritySampling(61)
	if len(rs) != 2 {
		t.Fatalf("%d results", len(rs))
	}
	off, on := rs[0], rs[1]
	if off.Priority || !on.Priority {
		t.Fatal("result ordering")
	}
	// A 54-byte SYN squeezes into byte-granularity headroom even on a
	// saturated mirror, so delivery is high either way; the extension's
	// measurable win is that flow boundaries skip the multi-millisecond
	// mirror backlog entirely.
	if on.SYNSeen < 0.95 {
		t.Fatalf("priority class saw only %.0f%% of SYNs", on.SYNSeen*100)
	}
	if on.SYNSeen+1e-9 < off.SYNSeen {
		t.Fatalf("priority reduced SYN visibility: %.2f < %.2f", on.SYNSeen, off.SYNSeen)
	}
	if off.SYNLatencyMedian < 1500 {
		t.Fatalf("baseline SYN latency %.0fµs — mirror backlog missing", off.SYNLatencyMedian)
	}
	if on.SYNLatencyMedian > off.SYNLatencyMedian/5 {
		t.Fatalf("priority latency %.0fµs vs baseline %.0fµs", on.SYNLatencyMedian, off.SYNLatencyMedian)
	}
	t.Logf("\n%s", PrioritySamplingTable(rs).Render())
}

func TestTargetRateMirroringExtension(t *testing.T) {
	rs := TargetRateMirroring(63)
	if len(rs) != 2 {
		t.Fatalf("%d results", len(rs))
	}
	over, target := rs[0], rs[1]
	// The paper's proposal: pre-thinning kills the 3.5 ms mirror backlog.
	if over.LatencyMedian < 2000 {
		t.Fatalf("oversubscribed latency %.0fµs — expected ms-scale backlog", over.LatencyMedian)
	}
	if target.LatencyMedian > 400 {
		t.Fatalf("target-rate latency %.0fµs — backlog not eliminated", target.LatencyMedian)
	}
	// Estimation stays accurate in both modes (sequence numbers don't
	// care how the samples were thinned).
	if over.EstimateError > 0.10 || target.EstimateError > 0.10 {
		t.Fatalf("estimate errors %.1f%% / %.1f%%", over.EstimateError*100, target.EstimateError*100)
	}
	t.Logf("\n%s", TargetRateTable(rs).Render())
}
