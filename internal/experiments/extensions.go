package experiments

import (
	"fmt"

	"planck/internal/core"
	"planck/internal/lab"
	"planck/internal/packet"
	"planck/internal/sim"
	"planck/internal/stats"
	"planck/internal/switchsim"
	"planck/internal/topo"
	"planck/internal/units"
)

// This file evaluates the §9.2 future-switch proposals the repository
// implements beyond the paper's testbed:
//
//   - preferential sampling of SYN/FIN/RST (flow-boundary visibility
//     under oversubscription);
//   - target-rate mirroring ("a desired rate of samples" instead of a
//     sampling rate), which removes the mirror-queue latency entirely.

// PrioritySamplingResult compares flow-boundary visibility with and
// without the §9.2 priority class.
type PrioritySamplingResult struct {
	Priority bool
	// SYNSeen is the fraction of connection-opening SYNs that reached
	// the collector.
	SYNSeen float64
	// SYNLatencyMedian is the µs latency of those SYN samples.
	SYNLatencyMedian float64
}

// PrioritySampling runs many short connections through a mirror that is
// saturated by three bulk flows, with the priority class on and off.
func PrioritySampling(seed int64) []PrioritySamplingResult {
	var out []PrioritySamplingResult
	for _, prio := range []bool{false, true} {
		out = append(out, prioritySamplingRun(prio, seed))
	}
	return out
}

func prioritySamplingRun(prio bool, seed int64) PrioritySamplingResult {
	opts := microLabOptions(SwitchG8264, 8, false, seed)
	base := opts.SwitchConfig
	opts.SwitchConfig = func(name string, ports int) switchsim.Config {
		cfg := base(name, ports)
		cfg.MirrorPriorityFlags = prio
		return cfg
	}
	l := mustLab(opts)

	// Three saturated pairs keep the mirror ~3x oversubscribed.
	for i := 0; i < 3; i++ {
		if _, err := l.Hosts[i].StartFlow(0, topo.HostIP(i+3), 5001, 1<<40, int32(i)); err != nil {
			panic(err)
		}
	}

	// Host 6 opens a short connection to host 7 every 2 ms; each SYN is a
	// flow boundary the collector wants to see.
	var synSent int
	synLat := &stats.Sample{}
	var synSeen int
	l.Collectors[0].OnSample = func(at units.Time, pkt *sim.Packet) {
		if pkt.Kind == sim.KindTCP && pkt.TCPFlags&packet.TCPSyn != 0 &&
			pkt.TCPFlags&packet.TCPAck == 0 && pkt.SrcIP == topo.HostIP(6) {
			synSeen++
			if pkt.SentAt > 0 {
				synLat.Add(at.Sub(pkt.SentAt).Microseconds())
			}
		}
	}
	sim.NewTicker(l.Eng, 2*units.Millisecond, func(now units.Time) {
		if now > units.Time(150*units.Millisecond) {
			return
		}
		if _, err := l.Hosts[6].StartFlow(now, topo.HostIP(7), uint16(6000+synSent), 1000, 99); err == nil {
			synSent++
		}
	})

	l.Run(160 * units.Millisecond)
	res := PrioritySamplingResult{Priority: prio}
	if synSent > 0 {
		res.SYNSeen = float64(synSeen) / float64(synSent)
	}
	res.SYNLatencyMedian = synLat.Median()
	return res
}

// PrioritySamplingTable renders the comparison.
func PrioritySamplingTable(rs []PrioritySamplingResult) *Table {
	t := &Table{
		Title:   "§9.2 extension: preferential SYN sampling under 3x oversubscription",
		Columns: []string{"priority class", "SYNs sampled", "SYN sample latency p50 (µs)"},
	}
	for _, r := range rs {
		t.AddRow(fmt.Sprintf("%v", r.Priority),
			fmt.Sprintf("%.0f%%", r.SYNSeen*100),
			fmt.Sprintf("%.0f", r.SYNLatencyMedian))
	}
	return t
}

// TargetRateResult compares classic oversubscribed mirroring with the
// §9.2 target-rate proposal under the same offered load.
type TargetRateResult struct {
	Mode string
	// LatencyMedian is the µs sample latency.
	LatencyMedian float64
	// EstimateError is the mean relative rate-estimation error vs sender
	// ground truth.
	EstimateError float64
}

// TargetRateMirroring runs three saturated flows (3x oversubscription)
// under both modes.
func TargetRateMirroring(seed int64) []TargetRateResult {
	var out []TargetRateResult
	for _, target := range []units.Rate{0, 9 * units.Gbps} {
		mode := "oversubscribed"
		if target > 0 {
			mode = "target-rate 9G"
		}
		out = append(out, targetRateRun(mode, target, seed))
	}
	return out
}

func targetRateRun(mode string, target units.Rate, seed int64) TargetRateResult {
	opts := microLabOptions(SwitchG8264, 6, false, seed)
	base := opts.SwitchConfig
	opts.SwitchConfig = func(name string, ports int) switchsim.Config {
		cfg := base(name, ports)
		cfg.MirrorTargetRate = target
		return cfg
	}
	l := mustLab(opts)

	truth := make([]*truthRef, 3)
	for i := 0; i < 3; i++ {
		i := i
		truth[i] = newTruthRef()
		l.Hosts[i].OnSegmentSent = func(now units.Time, pkt *sim.Packet) {
			if pkt.PayloadLen > 0 && pkt.FlowID == int32(i) {
				truth[i].est.Observe(now, pkt.Seq)
			}
		}
		c, err := l.Hosts[i].StartFlow(0, topo.HostIP(i+3), 5001, 1<<40, int32(i))
		if err != nil {
			panic(err)
		}
		truth[i].key = c.FlowKey()
	}

	var est, want []float64
	sim.NewTicker(l.Eng, units.Millisecond, func(now units.Time) {
		if now < units.Time(20*units.Millisecond) {
			return
		}
		for i := 0; i < 3; i++ {
			tr, _, okT := truth[i].est.Rate()
			pr, okP := l.Collector(0).FlowRate(truth[i].key)
			if okT && okP && tr > 0 {
				est = append(est, float64(pr))
				want = append(want, float64(tr))
			}
		}
	})
	l.Run(120 * units.Millisecond)

	mre, err := stats.MeanRelativeError(est, want)
	if err != nil {
		panic(err)
	}
	return TargetRateResult{
		Mode:          mode,
		LatencyMedian: l.Collectors[0].SampleLatency.Median(),
		EstimateError: mre,
	}
}

// truthRef pairs a sender-trace estimator with its flow key.
type truthRef struct {
	est *core.RateEstimator
	key packet.FlowKey
}

func newTruthRef() *truthRef { return &truthRef{est: core.NewRateEstimator()} }

// TargetRateTable renders the comparison.
func TargetRateTable(rs []TargetRateResult) *Table {
	t := &Table{
		Title:   "§9.2 extension: target-rate mirroring vs oversubscription (3x load)",
		Columns: []string{"mode", "sample latency p50 (µs)", "rate-estimate error"},
	}
	for _, r := range rs {
		t.AddRow(r.Mode, fmt.Sprintf("%.0f", r.LatencyMedian), fmt.Sprintf("%.1f%%", r.EstimateError*100))
	}
	return t
}

var _ = lab.Options{} // the lab types appear only through microLabOptions
