package experiments

import (
	"testing"

	"planck/internal/stats"
	"planck/internal/units"
)

func TestFig10EstimatorContrast(t *testing.T) {
	series := Fig10(Fig10Params{Seed: 31})
	if len(series) < 30 {
		t.Fatalf("%d points", len(series))
	}
	tab := Fig10Table(series)
	// Analyze the slow-start portion (after connection setup, before the
	// ramp completes): the rolling average must be visibly jumpier than
	// the burst estimator.
	roll := &stats.Sample{}
	planck := &stats.Sample{}
	for _, pt := range series {
		if pt.Time < units.Time(200*units.Microsecond) || pt.Time > units.Time(1500*units.Microsecond) {
			continue
		}
		roll.Add(pt.Rolling.Gigabits())
		planck.Add(pt.Planck.Gigabits())
	}
	if roll.N() < 10 {
		t.Fatalf("only %d slow-start points", roll.N())
	}
	// Fig 10a: the rolling window oscillates hard (bursts vs gaps).
	if roll.Min() > 0.5*roll.Max() {
		t.Fatalf("rolling average too smooth: min %.2f max %.2f", roll.Min(), roll.Max())
	}
	// Fig 10b: Planck's estimate ramps without the wild swings.
	if planck.Stddev()*1.5 > roll.Stddev() {
		t.Fatalf("planck stddev %.2f not clearly smoother than rolling %.2f",
			planck.Stddev(), roll.Stddev())
	}
	if planck.Max() > 11 {
		t.Fatalf("planck estimate spiked to %.2f", planck.Max())
	}
	t.Logf("roll [%.2f,%.2f] sd=%.2f; planck [%.2f,%.2f] sd=%.2f",
		roll.Min(), roll.Max(), roll.Stddev(), planck.Min(), planck.Max(), planck.Stddev())
	t.Logf("\n%s", tab.Render())
}

func TestFig11ErrorSmall(t *testing.T) {
	pts := Fig11(Fig11Params{Factors: []int{2, 8}, Seed: 33})
	for _, p := range pts {
		// Paper: ≈3% flat. Accept anything below 10% with no blow-up at
		// higher oversubscription.
		if p.MeanError > 0.10 {
			t.Fatalf("factor %.1f: error %.1f%%", p.Factor, p.MeanError*100)
		}
	}
	if pts[1].MeanError > pts[0].MeanError*3+0.02 {
		t.Fatalf("error grows with oversubscription: %v", pts)
	}
	t.Logf("\n%s", Fig11Table(pts).Render())
}

func TestFig15ControlLoop(t *testing.T) {
	r := Fig15(35)
	// Paper: detection 25–240 µs after congestion onset; response ≈2.6 ms.
	if r.Detection <= 0 || r.Detection > 3*units.Millisecond {
		t.Fatalf("detection %v", r.Detection)
	}
	if r.Response < units.Millisecond || r.Response > 6*units.Millisecond {
		t.Fatalf("response %v, want ≈2.6ms", r.Response)
	}
	// Flow 1 must see no timeout (the loop beats the buffer).
	if r.Flow1Timeouts != 0 {
		t.Fatalf("flow 1 timeouts %d", r.Flow1Timeouts)
	}
	if len(r.Series) == 0 {
		t.Fatal("no throughput series")
	}
	t.Logf("\n%s", r.Table().Render())
}

func TestFig16ResponseCDFs(t *testing.T) {
	r := Fig16(Fig16Params{Episodes: 8, Seed: 41})
	if r.ARP.N() < 4 || r.OpenFlow.N() < 4 {
		t.Fatalf("episodes: ARP %d, OF %d", r.ARP.N(), r.OpenFlow.N())
	}
	// Paper: ARP 2.5–3.5 ms; OpenFlow 4–9 ms with median over 7 ms.
	if med := r.ARP.Median(); med < 2.0 || med > 4.2 {
		t.Fatalf("ARP median %.2f ms", med)
	}
	if med := r.OpenFlow.Median(); med < 4.0 || med > 9.5 {
		t.Fatalf("OpenFlow median %.2f ms", med)
	}
	if r.OpenFlow.Median() < r.ARP.Median() {
		t.Fatal("OpenFlow should be slower than ARP")
	}
	t.Logf("\n%s", r.Table().Render())
}

func TestScalabilityTable(t *testing.T) {
	tab := Scalability()
	if len(tab.Rows) != 3 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	if tab.Rows[0][1] != "59582" || tab.Rows[0][3] != "344" {
		t.Fatalf("fat-tree row %v", tab.Rows[0])
	}
	if tab.Rows[1][2] != "3505" {
		t.Fatalf("jellyfish row %v", tab.Rows[1])
	}
	t.Logf("\n%s", tab.Render())
}
