package experiments

import (
	"fmt"
	"math/rand"

	"planck/internal/lab"
	"planck/internal/stats"
	"planck/internal/units"
	"planck/internal/workload"
)

// WorkloadKind names the §7.1 traffic patterns.
type WorkloadKind int

// Workload kinds.
const (
	WorkloadStride WorkloadKind = iota
	WorkloadShuffle
	WorkloadRandomBijection
	WorkloadRandom
	WorkloadStaggeredProb
)

// String implements fmt.Stringer.
func (w WorkloadKind) String() string {
	switch w {
	case WorkloadStride:
		return "Stride(8)"
	case WorkloadShuffle:
		return "Shuffle"
	case WorkloadRandomBijection:
		return "RandomBijection"
	case WorkloadRandom:
		return "Random"
	case WorkloadStaggeredProb:
		return "StaggeredProb"
	}
	return "unknown"
}

// RunWorkload executes one (workload, size, scheme) cell and returns the
// aggregated result.
func RunWorkload(kind WorkloadKind, scheme Scheme, size int64, seed int64, timeout units.Duration) *workload.Result {
	l, cleanup, err := SchemeLab(scheme, seed)
	if err != nil {
		panic(err)
	}
	defer cleanup()
	return RunWorkloadOn(l, kind, size, seed, timeout)
}

// RunWorkloadOn runs one workload on an already-assembled testbed. It
// exists so callers that want to observe the run — serve l.Metrics,
// subscribe to events — can build the lab with SchemeLab first and keep
// hold of it.
func RunWorkloadOn(l *lab.Lab, kind WorkloadKind, size int64, seed int64, timeout units.Duration) *workload.Result {
	rng := rand.New(rand.NewSource(seed ^ 0x9e3779b9))
	cfg := workload.RunConfig{Timeout: timeout}
	n := len(l.Hosts)
	var res *workload.Result
	var err error
	switch kind {
	case WorkloadShuffle:
		res, err = workload.RunShuffle(l, size, 2, cfg, rng)
	case WorkloadStride:
		res, err = workload.Run(l, workload.Stride(n, 8, size), cfg)
	case WorkloadRandomBijection:
		res, err = workload.Run(l, workload.RandomBijection(n, size, rng), cfg)
	case WorkloadRandom:
		res, err = workload.Run(l, workload.RandomUniform(n, size, rng), cfg)
	case WorkloadStaggeredProb:
		res, err = workload.Run(l, workload.StaggeredProb(n, size, 0.5, 0.3, rng), cfg)
	}
	if err != nil {
		panic(err)
	}
	return res
}

// Fig14Params configures the workload grid of Figure 14.
type Fig14Params struct {
	Workloads []WorkloadKind
	Sizes     []int64
	Schemes   []Scheme
	Runs      int
	Timeout   units.Duration
	Seed      int64
}

func (p *Fig14Params) fill() {
	if len(p.Workloads) == 0 {
		p.Workloads = []WorkloadKind{WorkloadStride, WorkloadShuffle, WorkloadRandomBijection, WorkloadRandom}
	}
	if len(p.Sizes) == 0 {
		// The paper runs 100 MiB / 1 GiB / 10 GiB; default to a scaled
		// set that preserves the ordering of flow duration vs control
		// loops within tractable simulation time.
		p.Sizes = []int64{100 << 20, 1 << 30}
	}
	if len(p.Schemes) == 0 {
		p.Schemes = AllSchemes
	}
	if p.Runs == 0 {
		p.Runs = 1
	}
}

// Fig14Cell is one grid cell's mean of per-flow average throughput.
type Fig14Cell struct {
	Workload WorkloadKind
	Size     int64
	Scheme   Scheme
	AvgGbps  float64
	// Completed/Total flows across runs (timeouts show up here).
	Completed, Total int
}

// Fig14 runs the grid.
func Fig14(p Fig14Params) []Fig14Cell {
	p.fill()
	var out []Fig14Cell
	for _, w := range p.Workloads {
		for _, size := range p.Sizes {
			for _, s := range p.Schemes {
				agg := &stats.Sample{}
				cell := Fig14Cell{Workload: w, Size: size, Scheme: s}
				for run := 0; run < p.Runs; run++ {
					res := RunWorkload(w, s, size, p.Seed+int64(run)*101, p.Timeout)
					agg.Add(res.Goodputs.Mean())
					cell.Completed += res.Completed
					cell.Total += res.Total
				}
				cell.AvgGbps = units.Rate(agg.Mean()).Gigabits()
				out = append(out, cell)
			}
		}
	}
	return out
}

// Fig14Table renders the grid in the paper's layout.
func Fig14Table(cells []Fig14Cell) *Table {
	t := &Table{
		Title:   "Figure 14: average flow throughput by workload (Gbps)",
		Columns: []string{"workload", "size", "scheme", "avg tput (Gbps)", "flows"},
	}
	for _, c := range cells {
		t.AddRow(c.Workload.String(), units.BytesString(c.Size), c.Scheme.String(),
			fmt.Sprintf("%.2f", c.AvgGbps),
			fmt.Sprintf("%d/%d", c.Completed, c.Total))
	}
	return t
}

// Fig17Params configures the flow-size sweep of Figure 17.
type Fig17Params struct {
	Sizes   []int64
	Schemes []Scheme
	Timeout units.Duration
	Seed    int64
}

func (p *Fig17Params) fill() {
	if len(p.Sizes) == 0 {
		// Paper sweeps 50 MiB – 100 GiB on a log scale; the default here
		// covers 50 MiB – 4 GiB, which brackets both poll-interval
		// crossovers (flows shorter/longer than 100 ms and 1 s).
		p.Sizes = []int64{50 << 20, 100 << 20, 400 << 20, 1 << 30, 4 << 30}
	}
	if len(p.Schemes) == 0 {
		p.Schemes = AllSchemes
	}
}

// Fig17Cell is one (size, scheme) sweep point.
type Fig17Cell struct {
	Size    int64
	Scheme  Scheme
	AvgGbps float64
}

// Fig17 sweeps stride(8) flow sizes across schemes.
func Fig17(p Fig17Params) []Fig17Cell {
	p.fill()
	var out []Fig17Cell
	for _, size := range p.Sizes {
		for _, s := range p.Schemes {
			res := RunWorkload(WorkloadStride, s, size, p.Seed, p.Timeout)
			out = append(out, Fig17Cell{
				Size:    size,
				Scheme:  s,
				AvgGbps: res.AvgGoodput().Gigabits(),
			})
		}
	}
	return out
}

// Fig17Table renders the sweep.
func Fig17Table(cells []Fig17Cell) *Table {
	t := &Table{
		Title:   "Figure 17: average flow throughput vs flow size, stride(8)",
		Columns: []string{"flow size", "scheme", "avg tput (Gbps)"},
	}
	for _, c := range cells {
		t.AddRow(units.BytesString(c.Size), c.Scheme.String(), fmt.Sprintf("%.2f", c.AvgGbps))
	}
	return t
}

// Fig18Result holds the two 100 MiB CDFs of Figure 18.
type Fig18Result struct {
	// ShuffleCompletion maps scheme -> per-host completion times (s).
	ShuffleCompletion map[Scheme]*stats.Sample
	// StrideTput maps scheme -> per-flow throughputs (Gbps).
	StrideTput map[Scheme]*stats.Sample
}

// Fig18Params configures the CDF runs.
type Fig18Params struct {
	Size    int64
	Schemes []Scheme
	Timeout units.Duration
	Seed    int64
}

// Fig18 runs the 100 MiB shuffle and stride workloads per scheme.
func Fig18(p Fig18Params) *Fig18Result {
	if p.Size == 0 {
		p.Size = 100 << 20
	}
	if len(p.Schemes) == 0 {
		p.Schemes = AllSchemes
	}
	res := &Fig18Result{
		ShuffleCompletion: make(map[Scheme]*stats.Sample),
		StrideTput:        make(map[Scheme]*stats.Sample),
	}
	for _, s := range p.Schemes {
		sh := RunWorkload(WorkloadShuffle, s, p.Size, p.Seed, p.Timeout)
		res.ShuffleCompletion[s] = sh.HostCompletion
		st := RunWorkload(WorkloadStride, s, p.Size, p.Seed+1, p.Timeout)
		gb := &stats.Sample{}
		for _, v := range st.Goodputs.Values() {
			gb.Add(units.Rate(v).Gigabits())
		}
		res.StrideTput[s] = gb
	}
	return res
}

// Table renders both CDF summaries.
func (r *Fig18Result) Table(schemes []Scheme) *Table {
	if len(schemes) == 0 {
		schemes = AllSchemes
	}
	t := &Table{
		Title:   "Figure 18: 100 MiB workload CDF medians",
		Columns: []string{"scheme", "shuffle host completion p50 (s)", "stride flow tput p50 (Gbps)"},
	}
	for _, s := range schemes {
		sh, ok1 := r.ShuffleCompletion[s]
		st, ok2 := r.StrideTput[s]
		if !ok1 || !ok2 {
			continue
		}
		t.AddRow(s.String(), fmt.Sprintf("%.2f", sh.Median()), fmt.Sprintf("%.2f", st.Median()))
	}
	return t
}
