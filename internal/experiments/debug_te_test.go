package experiments

import (
	"testing"

	"planck/internal/sim"
	"planck/internal/topo"
	"planck/internal/units"
	"planck/internal/workload"
)

func TestDebugStrideTE(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("diagnostic only")
	}
	l, cleanup, err := SchemeLab(SchemePlanckTE, 51)
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	// SchemeLab already attached the TE app; attach a read-only second
	// view? No — instead reconstruct by hand to hold a reference.
	flows := workload.Stride(16, 8, 50<<20)
	done := 0
	var lastReroutes int64
	sim.NewTicker(l.Eng, units.Duration(10*units.Millisecond), func(now units.Time) {
		var acked int64
		for _, h := range l.Hosts {
			for _, c := range h.Conns() {
				if c.FlowSize() > 0 {
					acked += c.BytesAcked()
				}
			}
		}
		t.Logf("t=%v total-acked=%dMiB arp=%d(+%d) done=%d",
			now, acked>>20, l.Ctrl.ARPReroutes, l.Ctrl.ARPReroutes-lastReroutes, done)
		lastReroutes = l.Ctrl.ARPReroutes
	})
	// At 100ms, dump the placement: flows per link.
	l.Eng.Schedule(units.Time(100*units.Millisecond), sim.Callback(func(now units.Time) {
		linkFlows := map[topo.LinkID][]int{}
		for i, f := range flows {
			mac, _ := l.Hosts[f.Src].LookupNeighbor(topo.HostIP(f.Dst))
			_, tree, ok := topo.TreeOfMAC(mac)
			if !ok {
				continue
			}
			for _, lk := range l.Net.PathFor(f.Src, f.Dst, tree) {
				linkFlows[lk] = append(linkFlows[lk], i)
			}
		}
		for lk, fl := range linkFlows {
			if len(fl) > 1 {
				t.Logf("SHARED link %v (%s): flows %v", lk, l.Net.SwitchNames[lk.Switch], fl)
			}
		}
		// Per-flow cwnd/rate snapshot.
		for i, f := range flows {
			for _, c := range l.Hosts[f.Src].Conns() {
				if c.FlowSize() > 0 {
					t.Logf("flow %d (h%d->h%d): acked=%dMiB cwnd=%.0fKB srtt=%v rtx=%d to=%d",
						i, f.Src, f.Dst, c.BytesAcked()>>20, c.Cwnd()/1e3, c.SRTT(), c.Retransmits, c.Timeouts)
				}
			}
		}
	}), nil)
	res, err := workload.Run(l, flows, workload.RunConfig{Timeout: 3 * units.Duration(units.Second)})
	if err != nil {
		t.Fatal(err)
	}
	done = res.Completed
	t.Logf("completed=%d avg=%.2fG min=%.2fG max=%.2fG",
		res.Completed, res.AvgGoodput().Gigabits(),
		units.Rate(res.Goodputs.Min()).Gigabits(), units.Rate(res.Goodputs.Max()).Gigabits())
}
