package experiments

import (
	"fmt"

	"planck/internal/scale"
)

// Scalability reproduces the §9.1 deployment-cost estimates.
func Scalability() *Table {
	t := &Table{
		Title:   "Section 9.1: deployment scalability",
		Columns: []string{"topology", "hosts", "switches", "collector servers", "% of hosts"},
	}
	ft := scale.PlanFatTree(63, 1)
	t.AddRow("fat-tree (64-port, 1 monitor)",
		fmt.Sprintf("%d", ft.Hosts), fmt.Sprintf("%d", ft.Switches),
		fmt.Sprintf("%d", ft.CollectorServers),
		fmt.Sprintf("%.2f%%", ft.ServerFraction*100))
	jf := scale.PlanJellyfish(52, 1, ft.Hosts)
	t.AddRow("Jellyfish (same hosts)",
		fmt.Sprintf("%d", jf.Hosts), fmt.Sprintf("%d", jf.Switches),
		fmt.Sprintf("%d", jf.CollectorServers),
		fmt.Sprintf("%.2f%%", jf.ServerFraction*100))

	with := scale.PlanFatTree(63, 1)
	without := scale.PlanFatTree(63, 0)
	t.AddRow("fat-tree host cost of monitor port", "", "", "",
		fmt.Sprintf("%.1f%% fewer hosts", scale.HostCountCost(with, without)*100))
	return t
}
