package experiments

import (
	"fmt"

	"planck/internal/sim"
	"planck/internal/stats"
	"planck/internal/tcpsim"
	"planck/internal/topo"
	"planck/internal/units"
)

// MirrorImpactParams configures the §5.1 experiment behind Figures 2, 3,
// and 4: n congested output ports (two senders saturating TCP to one
// destination each) on a single 10 Gbps switch, with mirroring on or
// off, measuring how oversubscribed mirroring perturbs the non-mirrored
// traffic.
type MirrorImpactParams struct {
	Ports []int // congested output port counts to sweep (paper: 1..9)
	Runs  int   // repetitions per configuration (paper: 15)
	// Warmup excludes the synchronized slow-start transient from the
	// measurements; Duration is the measured steady-state window.
	Warmup   units.Duration
	Duration units.Duration
	Seed     int64
}

func (p *MirrorImpactParams) fill() {
	if len(p.Ports) == 0 {
		p.Ports = []int{1, 3, 5, 7, 9}
	}
	if p.Runs == 0 {
		p.Runs = 3
	}
	if p.Warmup == 0 {
		p.Warmup = 150 * units.Millisecond
	}
	if p.Duration == 0 {
		p.Duration = 300 * units.Millisecond
	}
}

// MirrorImpactPoint is one configuration's aggregate over runs.
type MirrorImpactPoint struct {
	Ports  int
	Mirror bool
	// LossPct is the percentage of non-mirrored packets dropped (Fig 2).
	LossPct float64
	// Latency quantiles of non-mirrored data packets, µs (Fig 3).
	LatMedian, Lat99, Lat999 float64
	// Per-interval flow throughput quantiles, Gbps (Fig 4).
	TputMedian, Tput01 float64
}

// MirrorImpact runs the sweep.
func MirrorImpact(p MirrorImpactParams) []MirrorImpactPoint {
	p.fill()
	var out []MirrorImpactPoint
	for _, n := range p.Ports {
		for _, mirror := range []bool{true, false} {
			var lossNum, lossDen int64
			lat := &stats.Sample{}
			tput := &stats.Sample{}
			for run := 0; run < p.Runs; run++ {
				seed := p.Seed + int64(run)*1000 + int64(n)*10 + boolInt64(mirror)
				runMirrorImpact(n, mirror, p.Warmup, p.Duration, seed, &lossNum, &lossDen, lat, tput)
			}
			pt := MirrorImpactPoint{
				Ports:      n,
				Mirror:     mirror,
				LatMedian:  lat.Median(),
				Lat99:      lat.Quantile(0.99),
				Lat999:     lat.Quantile(0.999),
				TputMedian: tput.Median(),
				Tput01:     tput.Quantile(0.001),
			}
			if lossDen > 0 {
				pt.LossPct = 100 * float64(lossNum) / float64(lossDen)
			}
			out = append(out, pt)
		}
	}
	return out
}

func boolInt64(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// runMirrorImpact executes one run of the congested-ports scenario and
// accumulates metrics.
func runMirrorImpact(nPorts int, mirror bool, warmup, duration units.Duration, seed int64,
	lossNum, lossDen *int64, lat, tput *stats.Sample) {

	hosts := 3 * nPorts
	opts := microLabOptions(SwitchG8264, hosts, false, seed)
	opts.Mirror = mirror
	l := mustLab(opts)

	measuring := false
	// Receivers are hosts 2n..3n-1; senders 0..2n-1, two per receiver.
	var conns []*tcpsim.Conn
	for r := 0; r < nPorts; r++ {
		recv := 2*nPorts + r
		// Receiver-side tcpdump for end-to-end latency of data packets.
		l.Hosts[recv].OnDelivered = func(now units.Time, pkt *sim.Packet) {
			if measuring && pkt.Kind == sim.KindTCP && pkt.PayloadLen > 0 && pkt.SentAt > 0 {
				lat.Add(now.Sub(pkt.SentAt).Microseconds())
			}
		}
		for s := 0; s < 2; s++ {
			src := 2*r + s
			c, err := l.Hosts[src].StartFlow(0, topo.HostIP(recv), uint16(5001+s), 1<<40, int32(2*r+s))
			if err != nil {
				panic(err)
			}
			conns = append(conns, c)
		}
	}

	// Per-interval flow throughput (the paper averages over 1 s; we use
	// duration/4 so short runs still produce several intervals).
	interval := duration / 4
	last := make([]int64, len(conns))
	sim.NewTicker(l.Eng, interval, func(now units.Time) {
		if !measuring {
			return
		}
		for i, c := range conns {
			d := c.BytesAcked() - last[i]
			last[i] = c.BytesAcked()
			tput.Add(units.RateOf(d, interval).Gigabits())
		}
	})

	// Exclude the synchronized slow-start transient: warm up, snapshot
	// the switch counters, then measure the steady state.
	l.Run(warmup)
	sw := l.Switches[0]
	drop0, fwd0 := sw.DataDropped.Packets, sw.DataForwarded.Packets
	for i, c := range conns {
		last[i] = c.BytesAcked()
	}
	measuring = true
	l.Run(warmup + duration)

	*lossNum += sw.DataDropped.Packets - drop0
	*lossDen += (sw.DataDropped.Packets - drop0) + (sw.DataForwarded.Packets - fwd0)
}

// MirrorImpactTable renders the sweep as Figures 2–4's data.
func MirrorImpactTable(points []MirrorImpactPoint) *Table {
	t := &Table{
		Title: "Figures 2-4: impact of oversubscribed mirroring on non-mirrored traffic",
		Columns: []string{"ports", "mirror", "loss%", "lat p50 (µs)", "lat p99", "lat p99.9",
			"tput p50 (Gbps)", "tput p0.1"},
	}
	for _, pt := range points {
		t.AddRow(
			fmt.Sprintf("%d", pt.Ports),
			fmt.Sprintf("%v", pt.Mirror),
			fmt.Sprintf("%.3f", pt.LossPct),
			fmt.Sprintf("%.0f", pt.LatMedian),
			fmt.Sprintf("%.0f", pt.Lat99),
			fmt.Sprintf("%.0f", pt.Lat999),
			fmt.Sprintf("%.2f", pt.TputMedian),
			fmt.Sprintf("%.2f", pt.Tput01),
		)
	}
	return t
}
