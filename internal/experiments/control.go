package experiments

import (
	"fmt"

	"planck/internal/core"
	"planck/internal/lab"
	"planck/internal/packet"
	"planck/internal/sim"
	"planck/internal/stats"
	"planck/internal/te"
	"planck/internal/topo"
	"planck/internal/units"
)

// Fig15Result captures the full control loop of Figure 15: flow 1 runs
// steadily, flow 2 joins on a colliding path, Planck detects the
// congestion and reroutes within milliseconds, and flow 1 never loses a
// packet because the loop closes faster than the switch buffer fills.
type Fig15Result struct {
	// Detection is from flow 2's start to the first congestion event.
	Detection units.Duration
	// Response is from the first congestion event to the first sample
	// carrying the rerouted flow's new routing label.
	Response units.Duration
	// Flow1Timeouts and Flow1Retransmits report flow 1's loss response
	// (paper: zero — the buffer absorbs the transient).
	Flow1Timeouts    int64
	Flow1Retransmits int64
	// Series is both flows' throughput over time in 500 µs buckets.
	Series []Fig15Point
}

// Fig15Point is one time bucket.
type Fig15Point struct {
	Time  units.Time
	Flow1 units.Rate
	Flow2 units.Rate
}

// Fig15 runs the scenario.
func Fig15(seed int64) *Fig15Result {
	l := collidingLab(seed)
	attachTE(l, te.ActuateARP)
	res := &Fig15Result{}

	var rerouteTree = -1
	l.Ctrl.OnReroute = func(now units.Time, _ packet.FlowKey, _, _, tree int, _ bool) {
		if rerouteTree < 0 {
			rerouteTree = tree
		}
	}

	// A single saturated flow already crosses the utilization threshold,
	// so collectors notify throughout; detection for Fig. 15 means the
	// first notification that implicates flow 2.
	var flow2Key packet.FlowKey
	var haveFlow2Key bool
	var firstEvent units.Time
	l.Ctrl.Subscribe(func(ev core.CongestionEvent) {
		if firstEvent != 0 || !haveFlow2Key {
			return
		}
		for _, fi := range ev.Flows {
			if fi.Key == flow2Key {
				firstEvent = ev.Time
				return
			}
		}
	})

	var responseAt units.Time
	for s := range l.Switches {
		if node := l.Collectors[s]; node != nil {
			node.OnSample = func(at units.Time, pkt *sim.Packet) {
				if responseAt != 0 || pkt.Kind != sim.KindTCP {
					return
				}
				if _, tree, ok := topo.TreeOfMAC(pkt.DstMAC); ok && tree != 0 && tree == rerouteTree {
					responseAt = at
				}
			}
		}
	}

	c1, err := l.Hosts[0].StartFlow(0, topo.HostIP(8), 5001, 1<<40, 1)
	if err != nil {
		panic(err)
	}
	l.Run(50 * units.Millisecond) // flow 1 reaches steady state

	flow2Start := l.Eng.Now()
	c2, err := l.Hosts[4].StartFlow(flow2Start, topo.HostIP(9), 5002, 1<<40, 2)
	if err != nil {
		panic(err)
	}
	flow2Key = c2.FlowKey()
	haveFlow2Key = true

	// 500 µs throughput series around the event.
	var last1, last2 int64 = c1.BytesAcked(), c2.BytesAcked()
	bucket := 500 * units.Microsecond
	sim.NewTicker(l.Eng, bucket, func(now units.Time) {
		d1, d2 := c1.BytesAcked()-last1, c2.BytesAcked()-last2
		last1, last2 = c1.BytesAcked(), c2.BytesAcked()
		res.Series = append(res.Series, Fig15Point{
			Time:  now,
			Flow1: units.RateOf(d1, bucket),
			Flow2: units.RateOf(d2, bucket),
		})
	})
	preTimeouts := c1.Timeouts
	preRtx := c1.Retransmits
	l.Eng.RunUntil(flow2Start.Add(units.Duration(40 * units.Millisecond)))

	if firstEvent > flow2Start {
		res.Detection = firstEvent.Sub(flow2Start)
	}
	if responseAt > firstEvent && firstEvent > 0 {
		res.Response = responseAt.Sub(firstEvent)
	}
	res.Flow1Timeouts = c1.Timeouts - preTimeouts
	res.Flow1Retransmits = c1.Retransmits - preRtx
	return res
}

// collidingLab builds the fat-tree with all destinations pinned to tree 0
// so the Fig. 15/16 flow pairs are guaranteed to collide.
func collidingLab(seed int64) *lab.Lab {
	net := topo.FatTree16(units.Rate10G)
	l, err := lab.New(lab.Options{
		Net:          net,
		Mirror:       true,
		Seed:         seed,
		InitialTrees: make([]int, 16),
	})
	if err != nil {
		panic(err)
	}
	return l
}

// Table renders the Fig. 15 summary.
func (r *Fig15Result) Table() *Table {
	t := &Table{
		Title:   "Figure 15: congestion detection and reroute timeline",
		Columns: []string{"metric", "value"},
	}
	t.AddRow("detection latency", r.Detection.String())
	t.AddRow("response latency (detect -> new path seen)", r.Response.String())
	t.AddRow("flow 1 timeouts during episode", fmt.Sprintf("%d", r.Flow1Timeouts))
	t.AddRow("flow 1 retransmits during episode", fmt.Sprintf("%d", r.Flow1Retransmits))
	return t
}

// Fig16Params configures the response-latency CDF measurement.
type Fig16Params struct {
	Episodes int // independent collision episodes per actuator
	Seed     int64
}

// Fig16Result holds response-latency samples (ms) per actuator.
type Fig16Result struct {
	ARP      *stats.Sample
	OpenFlow *stats.Sample
}

// Fig16 reproduces Figure 16: the CDF of routing response latency —
// congestion notification to the first sample carrying the new label —
// for ARP-based (paper: 2.5–3.5 ms) and OpenFlow-based (4–9 ms) control.
func Fig16(p Fig16Params) *Fig16Result {
	if p.Episodes == 0 {
		p.Episodes = 15
	}
	res := &Fig16Result{ARP: &stats.Sample{}, OpenFlow: &stats.Sample{}}
	for _, act := range []te.Actuator{te.ActuateARP, te.ActuateOpenFlow} {
		for ep := 0; ep < p.Episodes; ep++ {
			if ms, ok := fig16Episode(act, p.Seed+int64(ep)*37); ok {
				if act == te.ActuateARP {
					res.ARP.Add(ms)
				} else {
					res.OpenFlow.Add(ms)
				}
			}
		}
	}
	return res
}

// fig16Episode runs one collision and measures notification-to-new-label
// latency at the collectors.
func fig16Episode(act te.Actuator, seed int64) (float64, bool) {
	l := collidingLab(seed)
	attachTE(l, act)

	var decidedAt units.Time
	var newTree = -1
	l.Ctrl.OnReroute = func(now units.Time, _ packet.FlowKey, _, _, tree int, _ bool) {
		if decidedAt == 0 {
			decidedAt = now
			newTree = tree
		}
	}
	var seenAt units.Time
	for s := range l.Switches {
		if node := l.Collectors[s]; node != nil {
			node.OnSample = func(at units.Time, pkt *sim.Packet) {
				if seenAt != 0 || decidedAt == 0 || pkt.Kind != sim.KindTCP {
					return
				}
				if _, tree, ok := topo.TreeOfMAC(pkt.DstMAC); ok && tree == newTree && tree != 0 {
					seenAt = at
				}
			}
		}
	}

	if _, err := l.Hosts[0].StartFlow(0, topo.HostIP(8), 5001, 1<<40, 1); err != nil {
		panic(err)
	}
	l.Run(30 * units.Millisecond)
	if _, err := l.Hosts[4].StartFlow(l.Eng.Now(), topo.HostIP(9), 5002, 1<<40, 2); err != nil {
		panic(err)
	}
	l.Run(units.Duration(l.Eng.Now()) + 50*units.Millisecond)
	if decidedAt == 0 || seenAt == 0 {
		return 0, false
	}
	return seenAt.Sub(decidedAt).Milliseconds(), true
}

// Table renders the Fig. 16 CDF summary.
func (r *Fig16Result) Table() *Table {
	t := &Table{
		Title:   "Figure 16: routing response latency (ms)",
		Columns: []string{"mechanism", "episodes", "p10", "median", "p90"},
	}
	row := func(name string, s *stats.Sample) {
		t.AddRow(name, fmt.Sprintf("%d", s.N()),
			fmt.Sprintf("%.2f", s.Quantile(0.10)),
			fmt.Sprintf("%.2f", s.Median()),
			fmt.Sprintf("%.2f", s.Quantile(0.90)))
	}
	row("ARP", r.ARP)
	row("OpenFlow", r.OpenFlow)
	return t
}
