package experiments

import (
	"testing"

	"planck/internal/units"
)

func TestSampleLatency10G(t *testing.T) {
	r := SampleLatency(SampleLatencyParams{Kind: SwitchG8264, Seed: 1})
	if r.Samples.N() < 100 {
		t.Fatalf("samples %d", r.Samples.N())
	}
	med := r.Samples.Median()
	// Paper: 75–150 µs.
	if med < 60 || med > 180 {
		t.Fatalf("median %.0f µs", med)
	}
	if hi := r.Samples.Quantile(0.99); hi > 250 {
		t.Fatalf("p99 %.0f µs", hi)
	}
}

func TestSampleLatency1G(t *testing.T) {
	r := SampleLatency(SampleLatencyParams{Kind: SwitchPronto3290, Seed: 1})
	med := r.Samples.Median()
	// Paper: 80–450 µs; the median sits in the middle of that band.
	if med < 100 || med > 450 {
		t.Fatalf("median %.0f µs", med)
	}
	if lo := r.Samples.Quantile(0.02); lo < 60 {
		t.Fatalf("p2 %.0f µs", lo)
	}
	if hi := r.Samples.Quantile(0.98); hi > 550 {
		t.Fatalf("p98 %.0f µs", hi)
	}
}

func TestFig8Shape(t *testing.T) {
	r := Fig8(Fig8Params{Seed: 2})
	med10 := r.Latency[SwitchG8264].Median()
	med1 := r.Latency[SwitchPronto3290].Median()
	// Paper: ≈3.5 ms at 10 Gbps and just over 6 ms at 1 Gbps.
	if med10 < 2500 || med10 > 4500 {
		t.Fatalf("10G median %.0f µs, want ≈3500", med10)
	}
	if med1 < 4500 || med1 > 8000 {
		t.Fatalf("1G median %.0f µs, want ≈6000", med1)
	}
	if med1 < med10 {
		t.Fatal("1G should buffer longer than 10G")
	}
	t.Logf("Fig8 medians: 10G=%.0fµs 1G=%.0fµs", med10, med1)
}

func TestFig9Flat(t *testing.T) {
	pts := Fig9(Fig9Params{Factors: []int{2, 4, 8}, Seed: 3})
	if len(pts) != 3 {
		t.Fatalf("%d points", len(pts))
	}
	// The paper's observation: latency is roughly constant in the
	// oversubscription factor (fixed mirror allocation).
	lo, hi := pts[0].MeanLatency, pts[0].MeanLatency
	for _, p := range pts {
		if p.MeanLatency < lo {
			lo = p.MeanLatency
		}
		if p.MeanLatency > hi {
			hi = p.MeanLatency
		}
	}
	if float64(hi) > 1.5*float64(lo) {
		t.Fatalf("latency not flat: %v .. %v", lo, hi)
	}
	if lo < units.Duration(1500*units.Microsecond) || hi > units.Duration(4500*units.Microsecond) {
		t.Fatalf("latency out of Fig 9 band: %v .. %v", lo, hi)
	}
	t.Logf("Fig9: %v", pts)
}

func TestFig12Composition(t *testing.T) {
	r := Fig12(4)
	// Paper: 75–150 µs sample path (minbuffer), 200–700 µs estimation,
	// total 275–850 µs.
	if r.SampleMin < 50*units.Microsecond || r.SampleMax > 250*units.Microsecond {
		t.Fatalf("sample path %v–%v", r.SampleMin, r.SampleMax)
	}
	if r.EstimateMin != 200*units.Microsecond || r.EstimateMax != 700*units.Microsecond {
		t.Fatalf("estimate window %v–%v", r.EstimateMin, r.EstimateMax)
	}
	total := r.SampleMax + r.EstimateMax
	if total > 1100*units.Microsecond {
		t.Fatalf("total %v, want <= ~850µs scale", total)
	}
	t.Logf("%s", r.Table().Render())
}

func TestTable1Shape(t *testing.T) {
	r := Table1(5)
	tab := r.Table()
	if len(tab.Rows) != 9 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	var planck10Max, heliosMax units.Duration
	for _, row := range r.Rows {
		switch row.System {
		case "Planck 10Gbps":
			planck10Max = row.Max
		case "Helios":
			heliosMax = row.Max
		}
	}
	if planck10Max == 0 || heliosMax == 0 {
		t.Fatal("missing rows")
	}
	// Paper: Planck is 11–18x faster than Helios (worst-case measured).
	speedup := float64(heliosMax) / float64(planck10Max)
	if speedup < 8 || speedup > 40 {
		t.Fatalf("speedup vs Helios %.1fx, want ~18x", speedup)
	}
	// Planck worst case should be ~4-5 ms at 10G.
	if planck10Max < 2*units.Millisecond || planck10Max > 7*units.Millisecond {
		t.Fatalf("Planck 10G worst case %v", planck10Max)
	}
	t.Logf("\n%s", tab.Render())
}
