// Package experiments reproduces every table and figure in the paper's
// evaluation (§5, §7, §9.1). Each experiment is a function taking typed
// parameters and returning structured results plus a rendered table, so
// the same code backs the unit tests, the testing.B benchmarks, and the
// cmd/planck-bench tool.
//
// Absolute numbers depend on the simulated substrate; what the harness is
// built to reproduce is the paper's shape: who wins, by what factor, and
// where the crossovers fall. EXPERIMENTS.md records paper-vs-measured for
// every experiment here.
package experiments

import (
	"fmt"
	"strings"

	"planck/internal/controller"
	"planck/internal/core"
	"planck/internal/lab"
	"planck/internal/switchsim"
	"planck/internal/te"
	"planck/internal/topo"
	"planck/internal/units"
)

// Table is a rendered experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render produces an aligned plain-text table.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Scheme names the five routing schemes of §7.1.
type Scheme int

// Schemes.
const (
	SchemeStatic Scheme = iota
	SchemePoll1s
	SchemePoll01s
	SchemePlanckTE
	SchemeOptimal
)

// String implements fmt.Stringer with the paper's names.
func (s Scheme) String() string {
	switch s {
	case SchemeStatic:
		return "Static"
	case SchemePoll1s:
		return "Poll-1s"
	case SchemePoll01s:
		return "Poll-0.1s"
	case SchemePlanckTE:
		return "PlanckTE"
	case SchemeOptimal:
		return "Optimal"
	}
	return "unknown"
}

// AllSchemes lists the schemes in the paper's presentation order.
var AllSchemes = []Scheme{SchemeStatic, SchemePoll1s, SchemePoll01s, SchemePlanckTE, SchemeOptimal}

// SchemeLab builds the testbed for a scheme: the 16-host fat-tree for
// everything except Optimal, which runs all 16 hosts on one non-blocking
// switch (§7.1). The returned cleanup stops any pollers.
func SchemeLab(scheme Scheme, seed int64) (*lab.Lab, func(), error) {
	return SchemeLabWith(scheme, seed, nil)
}

// SchemeLabWith is SchemeLab with a hook that may adjust the lab
// options before construction — the seam tools use to attach a
// control-loop tracer or other observers without forking the
// experiment configuration.
func SchemeLabWith(scheme Scheme, seed int64, adjust func(*lab.Options)) (*lab.Lab, func(), error) {
	if scheme == SchemeOptimal {
		net := topo.SingleSwitch("optimal", 16, units.Rate10G, false)
		opts := lab.Options{Net: net, Seed: seed}
		if adjust != nil {
			adjust(&opts)
		}
		l, err := lab.New(opts)
		return l, func() {}, err
	}
	net := topo.FatTree16(units.Rate10G)
	opts := lab.Options{
		Net:    net,
		Mirror: scheme == SchemePlanckTE,
		Seed:   seed,
	}
	if adjust != nil {
		adjust(&opts)
	}
	l, err := lab.New(opts)
	if err != nil {
		return nil, nil, err
	}
	cleanup := func() {}
	switch scheme {
	case SchemePoll1s:
		g := te.NewGFF(l.Ctrl, te.GFFConfig{Interval: units.Duration(units.Second)})
		cleanup = g.Stop
	case SchemePoll01s:
		g := te.NewGFF(l.Ctrl, te.GFFConfig{Interval: 100 * units.Millisecond})
		cleanup = g.Stop
	case SchemePlanckTE:
		te.NewPlanckTE(l.Ctrl, te.DefaultPlanckTEConfig())
	}
	return l, cleanup, nil
}

// SwitchKind selects the hardware profile for microbenchmarks.
type SwitchKind int

// Switch kinds.
const (
	SwitchG8264      SwitchKind = iota // 10 Gbps
	SwitchPronto3290                   // 1 Gbps
)

// String implements fmt.Stringer.
func (k SwitchKind) String() string {
	if k == SwitchPronto3290 {
		return "Pronto 3290 (1Gb)"
	}
	return "IBM G8264 (10Gb)"
}

// Rate returns the line rate for the kind.
func (k SwitchKind) Rate() units.Rate {
	if k == SwitchPronto3290 {
		return units.Rate1G
	}
	return units.Rate10G
}

// microLabOptions builds single-switch testbed options for a kind,
// optionally shrinking the monitor-port buffer to the "minbuffer"
// configuration of Table 1.
func microLabOptions(kind SwitchKind, hosts int, minBuffer bool, seed int64) lab.Options {
	net := topo.SingleSwitch("sw0", hosts, kind.Rate(), true)
	cfg := func(name string, ports int) switchsim.Config {
		var c switchsim.Config
		if kind == SwitchPronto3290 {
			c = switchsim.ProfilePronto3290(name, ports)
		} else {
			c = switchsim.ProfileG8264(name, ports)
		}
		if minBuffer {
			c = switchsim.MinBuffer(c)
		}
		return c
	}
	return lab.Options{Net: net, SwitchConfig: cfg, Mirror: true, Seed: seed}
}

// mustLab builds a lab or panics; experiment configuration errors are
// programming bugs.
func mustLab(opts lab.Options) *lab.Lab {
	l, err := lab.New(opts)
	if err != nil {
		panic(err)
	}
	return l
}

// attachTE is a convenience for control-loop experiments.
func attachTE(l *lab.Lab, act te.Actuator) *te.PlanckTE {
	cfg := te.DefaultPlanckTEConfig()
	cfg.Actuate = act
	return te.NewPlanckTE(l.Ctrl, cfg)
}

// ctrlConfig exposes the default controller latency model for reports.
func ctrlConfig() controller.Config { return controller.DefaultConfig() }

// sinkEvents subscribes a no-op consumer so collectors compute events.
func sinkEvents(l *lab.Lab) *int {
	n := new(int)
	l.Ctrl.Subscribe(func(core.CongestionEvent) { *n++ })
	return n
}
