package experiments

import (
	"fmt"

	"planck/internal/core"
	"planck/internal/obs"
	"planck/internal/topo"
	"planck/internal/units"
)

// SampleLatencyParams configures the §5.2 undersubscribed measurement.
type SampleLatencyParams struct {
	Kind      SwitchKind
	MinBuffer bool
	Duration  units.Duration
	Seed      int64
}

// SampleLatencyResult reports the distribution of send-to-collector
// latency in microseconds.
type SampleLatencyResult struct {
	Kind    SwitchKind
	Samples *obs.Histogram
}

// SampleLatency reproduces §5.2: an otherwise idle network with light
// traffic, measuring the time from the sender's stamp to collector
// delivery. Paper: 75–150 µs at 10 Gbps, 80–450 µs at 1 Gbps.
func SampleLatency(p SampleLatencyParams) *SampleLatencyResult {
	if p.Duration == 0 {
		p.Duration = 100 * units.Millisecond
	}
	l := mustLab(microLabOptions(p.Kind, 4, p.MinBuffer, p.Seed))
	// A light CBR flow: far below the monitor rate, so no queueing.
	rate := p.Kind.Rate() / 10
	if _, err := l.Hosts[0].StartCBR(0, topo.HostIP(1), 7000, 1000, rate, 1); err != nil {
		panic(err)
	}
	l.Run(p.Duration)
	return &SampleLatencyResult{Kind: p.Kind, Samples: l.Collectors[0].SampleLatency}
}

// Fig8Params configures the congested-mirror latency CDF.
type Fig8Params struct {
	Duration units.Duration
	Seed     int64
}

// Fig8Result holds one latency CDF per switch kind (µs).
type Fig8Result struct {
	Latency map[SwitchKind]*obs.Histogram
}

// Fig8 reproduces Figure 8: three hosts send saturated TCP traffic to
// unique destinations, oversubscribing the monitor port ~3x; the CDF of
// sample latency shows the mirror buffering. Paper medians: ≈3.5 ms at
// 10 Gbps, just over 6 ms at 1 Gbps.
func Fig8(p Fig8Params) *Fig8Result {
	if p.Duration == 0 {
		p.Duration = 300 * units.Millisecond
	}
	res := &Fig8Result{Latency: make(map[SwitchKind]*obs.Histogram)}
	for _, kind := range []SwitchKind{SwitchG8264, SwitchPronto3290} {
		l := mustLab(microLabOptions(kind, 6, false, p.Seed))
		for i := 0; i < 3; i++ {
			// Effectively unbounded flows; the run is time-limited.
			if _, err := l.Hosts[i].StartFlow(0, topo.HostIP(i+3), 5001, 1<<40, int32(i)); err != nil {
				panic(err)
			}
		}
		l.Run(p.Duration)
		res.Latency[kind] = l.Collectors[0].SampleLatency
	}
	return res
}

// Table renders the Fig. 8 summary.
func (r *Fig8Result) Table() *Table {
	t := &Table{
		Title:   "Figure 8: sample latency under congestion (CDF summary, µs)",
		Columns: []string{"switch", "p10", "median", "p90", "p99"},
	}
	for _, kind := range []SwitchKind{SwitchG8264, SwitchPronto3290} {
		s := r.Latency[kind]
		t.AddRow(kind.String(),
			fmt.Sprintf("%.0f", s.Quantile(0.10)),
			fmt.Sprintf("%.0f", s.Median()),
			fmt.Sprintf("%.0f", s.Quantile(0.90)),
			fmt.Sprintf("%.0f", s.Quantile(0.99)))
	}
	return t
}

// Fig9Params configures the oversubscription sweep.
type Fig9Params struct {
	Factors  []int // oversubscription factors (source host counts)
	Duration units.Duration
	Seed     int64
}

// Fig9Point is one sweep measurement.
type Fig9Point struct {
	Factor      float64
	MeanLatency units.Duration
}

// Fig9 reproduces Figure 9: mean sample latency versus oversubscription
// factor on the 10 Gbps switch. The paper observes a roughly constant
// ≈3.5 ms, implying a fixed firmware allocation for the monitor port.
func Fig9(p Fig9Params) []Fig9Point {
	if len(p.Factors) == 0 {
		p.Factors = []int{1, 2, 4, 8, 12, 16}
	}
	if p.Duration == 0 {
		p.Duration = 150 * units.Millisecond
	}
	var out []Fig9Point
	for _, f := range p.Factors {
		hosts := 2 * f
		l := mustLab(microLabOptions(SwitchG8264, hosts, false, p.Seed))
		for i := 0; i < f; i++ {
			if _, err := l.Hosts[i].StartFlow(0, topo.HostIP(i+f), 5001, 1<<40, int32(i)); err != nil {
				panic(err)
			}
		}
		l.Run(p.Duration)
		s := l.Collectors[0].SampleLatency
		// Ignore the ramp-up: use the median-and-above half to represent
		// steady state... mean of all samples, as the paper plots.
		out = append(out, Fig9Point{
			Factor:      float64(f) * 0.95, // TCP goodput ≈ 9.5/10 of line rate
			MeanLatency: units.Duration(s.Mean() * float64(units.Microsecond)),
		})
	}
	return out
}

// Fig9Table renders the sweep.
func Fig9Table(points []Fig9Point) *Table {
	t := &Table{
		Title:   "Figure 9: sample latency vs oversubscription factor (10 Gbps)",
		Columns: []string{"factor", "mean latency"},
	}
	for _, pt := range points {
		t.AddRow(fmt.Sprintf("%.1fx", pt.Factor), pt.MeanLatency.String())
	}
	return t
}

// Fig12Result is the latency breakdown timeline of Figure 12.
type Fig12Result struct {
	SampleMin, SampleMax units.Duration // sender stamp -> collector (minbuffer)
	BufferedMedian       units.Duration // with default mirror buffering
	EstimateMin          units.Duration // rate-estimation window bounds
	EstimateMax          units.Duration
}

// Fig12 composes the breakdown from the §5.2 run (minbuffer sample
// path), the Fig. 8 run (buffered path), and the estimator constants.
// Paper (10 Gbps): sample 75–150 µs minbuffer / 2.5–3.5 ms buffered,
// estimate 200–700 µs, total 275–850 µs (minbuffer).
func Fig12(seed int64) *Fig12Result {
	sl := SampleLatency(SampleLatencyParams{Kind: SwitchG8264, MinBuffer: true, Seed: seed})
	f8 := Fig8(Fig8Params{Duration: 150 * units.Millisecond, Seed: seed})
	us := float64(units.Microsecond)
	return &Fig12Result{
		SampleMin:      units.Duration(sl.Samples.Quantile(0.01) * us),
		SampleMax:      units.Duration(sl.Samples.Quantile(0.99) * us),
		BufferedMedian: units.Duration(f8.Latency[SwitchG8264].Median() * us),
		EstimateMin:    core.DefaultMinGap,
		EstimateMax:    core.DefaultMaxBurst,
	}
}

// Table renders the breakdown.
func (r *Fig12Result) Table() *Table {
	t := &Table{
		Title:   "Figure 12: measurement latency breakdown (10 Gbps)",
		Columns: []string{"interval", "measured"},
	}
	t.AddRow("packet sent -> collector (minbuffer)",
		fmt.Sprintf("%v–%v", r.SampleMin, r.SampleMax))
	t.AddRow("packet sent -> collector (default buffer, median)", r.BufferedMedian.String())
	t.AddRow("collector -> stable rate estimate",
		fmt.Sprintf("%v–%v", r.EstimateMin, r.EstimateMax))
	t.AddRow("total (minbuffer)",
		fmt.Sprintf("%v–%v", r.SampleMin+r.EstimateMin, r.SampleMax+r.EstimateMax))
	return t
}

// Table1Row is one measurement-system comparison row.
type Table1Row struct {
	System   string
	Min, Max units.Duration
	Measured bool // false for literature constants
}

// Table1Result is the full comparison.
type Table1Result struct {
	Rows []Table1Row
}

// Table1 reproduces Table 1: Planck's measurement speed (sample latency
// plus rate-estimation delay) on both switches, with and without monitor
// buffering, against the reported latencies of prior systems.
func Table1(seed int64) *Table1Result {
	res := &Table1Result{}
	add := func(name string, min, max units.Duration, measured bool) {
		res.Rows = append(res.Rows, Table1Row{System: name, Min: min, Max: max, Measured: measured})
	}
	us := float64(units.Microsecond)

	for _, cfg := range []struct {
		kind SwitchKind
		name string
	}{
		{SwitchG8264, "Planck 10Gbps minbuffer"},
		{SwitchPronto3290, "Planck 1Gbps minbuffer"},
	} {
		sl := SampleLatency(SampleLatencyParams{Kind: cfg.kind, MinBuffer: true, Seed: seed})
		add(cfg.name,
			units.Duration(sl.Samples.Quantile(0.01)*us)+core.DefaultMinGap,
			units.Duration(sl.Samples.Quantile(0.99)*us)+core.DefaultMaxBurst,
			true)
	}

	f8 := Fig8(Fig8Params{Seed: seed})
	for _, cfg := range []struct {
		kind SwitchKind
		name string
	}{
		{SwitchG8264, "Planck 10Gbps"},
		{SwitchPronto3290, "Planck 1Gbps"},
	} {
		worst := units.Duration(f8.Latency[cfg.kind].Quantile(0.999)*us) + core.DefaultMaxBurst
		add(cfg.name, 0, worst, true)
	}

	// Literature constants from Table 1.
	ms := units.Millisecond
	add("Helios", 77*ms+400*units.Microsecond, 77*ms+400*units.Microsecond, false)
	add("sFlow/OpenSample", 100*ms, 100*ms, false)
	add("Mahout Polling", 190*ms, 190*ms, false)
	add("DevoFlow Polling", 500*ms, 15000*ms, false)
	add("Hedera", 5000*ms, 5000*ms, false)
	return res
}

// Table renders the comparison with slowdowns relative to the measured
// worst-case Planck 10 Gbps row, as the paper does.
func (r *Table1Result) Table() *Table {
	t := &Table{
		Title:   "Table 1: measurement speed vs prior systems",
		Columns: []string{"system", "speed", "slowdown vs 10Gbps Planck", "source"},
	}
	var baseline units.Duration
	for _, row := range r.Rows {
		if row.System == "Planck 10Gbps" {
			baseline = row.Max
		}
	}
	for _, row := range r.Rows {
		var speed string
		if row.Min == 0 || row.Min == row.Max {
			speed = fmt.Sprintf("< %v", row.Max)
		} else {
			speed = fmt.Sprintf("%v–%v", row.Min, row.Max)
		}
		slow := float64(row.Max) / float64(baseline)
		var slowStr string
		if slow >= 1 {
			slowStr = fmt.Sprintf("%.0fx", slow)
		} else {
			slowStr = fmt.Sprintf("1/%.0fx", 1/slow)
		}
		src := "reported"
		if row.Measured {
			src = "measured"
		}
		t.AddRow(row.System, speed, slowStr, src)
	}
	return t
}
