package te

import (
	"testing"

	"planck/internal/lab"
	"planck/internal/topo"
	"planck/internal/units"
)

// collide builds a fat-tree where hosts 0 and 4 send to pod 2 on the same
// initial tree, guaranteeing a shared bottleneck.
func collide(t *testing.T, seed int64) *lab.Lab {
	t.Helper()
	net := topo.FatTree16(units.Rate10G)
	trees := make([]int, 16) // all destinations on tree 0
	l, err := lab.New(lab.Options{Net: net, Mirror: true, Seed: seed, InitialTrees: trees})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestPlanckTEResolvesCollision(t *testing.T) {
	// Baseline: no TE. Both flows share tree 0's core path.
	base := collide(t, 11)
	b1, _ := base.Hosts[0].StartFlow(0, topo.HostIP(8), 5001, 64<<20, 1)
	b2, _ := base.Hosts[4].StartFlow(0, topo.HostIP(9), 5002, 64<<20, 2)
	base.Run(2 * units.Duration(units.Second))
	if !b1.Completed || !b2.Completed {
		t.Fatal("baseline incomplete")
	}
	baseAgg := b1.Goodput().Gigabits() + b2.Goodput().Gigabits()

	// With PlanckTE one flow should move to a disjoint core within
	// milliseconds, and both approach line rate.
	l := collide(t, 11)
	app := NewPlanckTE(l.Ctrl, DefaultPlanckTEConfig())
	c1, _ := l.Hosts[0].StartFlow(0, topo.HostIP(8), 5001, 64<<20, 1)
	c2, _ := l.Hosts[4].StartFlow(0, topo.HostIP(9), 5002, 64<<20, 2)
	l.Run(2 * units.Duration(units.Second))
	if !c1.Completed || !c2.Completed {
		t.Fatalf("TE run incomplete: %v %v", c1.BytesAcked(), c2.BytesAcked())
	}
	if app.Reroutes == 0 {
		t.Fatal("PlanckTE never rerouted")
	}
	if app.EventsHandled == 0 {
		t.Fatal("no congestion events reached the TE app")
	}
	teAgg := c1.Goodput().Gigabits() + c2.Goodput().Gigabits()
	if teAgg < baseAgg*1.25 {
		t.Fatalf("TE aggregate %.2f vs baseline %.2f: no improvement", teAgg, baseAgg)
	}
	// With the collision resolved, both flows should run near line rate.
	if c1.Goodput().Gigabits() < 6 || c2.Goodput().Gigabits() < 6 {
		t.Fatalf("post-TE goodputs %.2f / %.2f", c1.Goodput().Gigabits(), c2.Goodput().Gigabits())
	}
}

func TestPlanckTEOpenFlowActuation(t *testing.T) {
	l := collide(t, 13)
	cfg := DefaultPlanckTEConfig()
	cfg.Actuate = ActuateOpenFlow
	app := NewPlanckTE(l.Ctrl, cfg)
	c1, _ := l.Hosts[0].StartFlow(0, topo.HostIP(8), 5001, 32<<20, 1)
	c2, _ := l.Hosts[4].StartFlow(0, topo.HostIP(9), 5002, 32<<20, 2)
	l.Run(2 * units.Duration(units.Second))
	if !c1.Completed || !c2.Completed {
		t.Fatal("incomplete")
	}
	if app.Reroutes == 0 {
		t.Fatal("no OF reroutes")
	}
	if l.Ctrl.OFReroutes == 0 || l.Ctrl.ARPReroutes != 0 {
		t.Fatalf("actuator mix: OF=%d ARP=%d", l.Ctrl.OFReroutes, l.Ctrl.ARPReroutes)
	}
}

func TestPlanckTEFastReaction(t *testing.T) {
	// Fig. 15: flow 2 joins a steady flow 1; detection + reroute must
	// land within a few ms, and flow 1 must keep its rate (no loss).
	l := collide(t, 17)
	NewPlanckTE(l.Ctrl, DefaultPlanckTEConfig())
	c1, _ := l.Hosts[0].StartFlow(0, topo.HostIP(8), 5001, 1<<30, 1)
	// Let flow 1 reach steady state, then start flow 2.
	l.Run(100 * units.Millisecond)
	pre := c1.BytesAcked()
	_ = pre
	c2, _ := l.Hosts[4].StartFlow(l.Eng.Now(), topo.HostIP(9), 5002, 1<<30, 2)
	startedAt := l.Eng.Now()
	// Run 60 ms more; by then the reroute long since happened and both
	// flows should be pumping at near line rate simultaneously.
	win := 60 * units.Millisecond
	a1, a2 := c1.BytesAcked(), c2.BytesAcked()
	l.Eng.RunUntil(startedAt.Add(win))
	r1 := units.RateOf(c1.BytesAcked()-a1, win).Gigabits()
	r2 := units.RateOf(c2.BytesAcked()-a2, win).Gigabits()
	if r1+r2 < 14 {
		t.Fatalf("concurrent rates %.2f + %.2f Gbps: collision not resolved", r1, r2)
	}
	// Flow 1 must not have suffered a timeout (its rate never collapsed).
	if c1.Timeouts != 0 {
		t.Fatalf("flow 1 hit %d RTOs", c1.Timeouts)
	}
}

func TestGFFPollerReroutes(t *testing.T) {
	l := collide(t, 19)
	g := NewGFF(l.Ctrl, GFFConfig{Interval: 100 * units.Millisecond})
	c1, _ := l.Hosts[0].StartFlow(0, topo.HostIP(8), 5001, 256<<20, 1)
	c2, _ := l.Hosts[4].StartFlow(0, topo.HostIP(9), 5002, 256<<20, 2)
	l.Run(3 * units.Duration(units.Second))
	g.Stop()
	if !c1.Completed || !c2.Completed {
		t.Fatal("incomplete")
	}
	if g.Polls < 3 {
		t.Fatalf("polls %d", g.Polls)
	}
	if g.Reroutes == 0 {
		t.Fatal("GFF never rerouted the colliding flows")
	}
	// 256 MiB each over >= 100 ms of collision then parallel paths: both
	// should finish far faster than a serial share would allow.
	if c1.Goodput().Gigabits()+c2.Goodput().Gigabits() < 10 {
		t.Fatalf("aggregate %.2f", c1.Goodput().Gigabits()+c2.Goodput().Gigabits())
	}
}

func TestGFFIgnoresMice(t *testing.T) {
	l := collide(t, 23)
	g := NewGFF(l.Ctrl, GFFConfig{Interval: 50 * units.Millisecond})
	// A 1 MiB mouse every interval stays under 10% of line rate.
	l.Hosts[0].StartFlow(0, topo.HostIP(8), 5001, 1<<20, 1)
	l.Run(500 * units.Millisecond)
	g.Stop()
	if g.Reroutes != 0 {
		t.Fatalf("GFF rerouted a mouse flow %d times", g.Reroutes)
	}
}

func TestPlanckTEIgnoresUnknownFlows(t *testing.T) {
	// Events whose flows cannot be attributed (foreign MACs) must not
	// crash or pollute the view.
	l := collide(t, 29)
	app := NewPlanckTE(l.Ctrl, DefaultPlanckTEConfig())
	l.Hosts[0].StartFlow(0, topo.HostIP(8), 5001, 16<<20, 1)
	l.Run(500 * units.Millisecond)
	if app.ViewSize() > 4 {
		t.Fatalf("view grew to %d", app.ViewSize())
	}
}
