package te

import (
	"planck/internal/packet"
	"planck/internal/units"
)

// Demand estimation, Hedera-style: a flow's measured rate understates
// what it *wants* whenever it is sitting behind a collision — placing
// flows by measured rate makes congested links look half empty and the
// greedy router piles more flows onto them. The natural demand of a
// bulk TCP flow is its max-min fair share of its endpoints' NICs:
// LineRate divided by the larger of (flows sharing its source NIC,
// flows sharing its destination NIC). For the paper's workloads this
// equals Hedera's iterative estimator's fixed point.
type endpointCounts struct {
	src map[uint32]int
	dst map[uint32]int
}

func newEndpointCounts() *endpointCounts {
	return &endpointCounts{src: make(map[uint32]int), dst: make(map[uint32]int)}
}

func (e *endpointCounts) add(k packet.FlowKey) {
	e.src[k.SrcIP.U32()]++
	e.dst[k.DstIP.U32()]++
}

func (e *endpointCounts) demand(k packet.FlowKey, line units.Rate) units.Rate {
	n := e.src[k.SrcIP.U32()]
	if d := e.dst[k.DstIP.U32()]; d > n {
		n = d
	}
	if n <= 1 {
		return line
	}
	return line / units.Rate(n)
}
