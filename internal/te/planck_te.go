// Package te implements the paper's traffic-engineering application
// (§6.2) and the baselines it is evaluated against (§7.1):
//
//   - PlanckTE: event-driven greedy rerouting over pre-installed
//     shadow-MAC alternate paths (Algorithm 1), actuated by spoofed ARP
//     or OpenFlow rewrite, with a flow timeout to expunge stale state;
//   - Global First Fit polling at a fixed interval (Poll-1s, Poll-0.1s),
//     emulating Hedera-style schemes that read switch flow counters;
//   - Static (PAST only) needs no code: simply run no TE.
package te

import (
	"planck/internal/controller"
	"planck/internal/core"
	"planck/internal/packet"
	"planck/internal/routing"
	"planck/internal/sim"
	"planck/internal/topo"
	"planck/internal/units"
)

// Actuator selects the rerouting mechanism of §6.2.
type Actuator int

// Actuators.
const (
	ActuateARP Actuator = iota
	ActuateOpenFlow
)

// PlanckTEConfig tunes the application.
type PlanckTEConfig struct {
	// FlowTimeout expunges flows not heard of recently (§6.2 uses 3 ms,
	// approximately the latency of rerouting a flow).
	FlowTimeout units.Duration
	// MoveCooldown prevents flapping: a flow is not rerouted again until
	// this long after its last move (covers the in-flight actuation and
	// the controller's settle period, §4.1).
	MoveCooldown units.Duration
	// MinFlowRate excludes traffic below this estimated rate from the
	// network view — pure-ACK reverse streams estimate ≈0 b/s (their
	// sequence numbers never advance) but would otherwise count as flows
	// in the demand estimator and halve every real flow's demand.
	MinFlowRate units.Rate
	// ViewRefresh is the period of the collector-query loop that keeps
	// the network view complete. Congestion events only describe links
	// above the utilization threshold; flows crushed onto quiet links
	// would otherwise be invisible (their links look free) and never be
	// re-engineered. The paper's controller exposes exactly this query
	// API (§3.3).
	ViewRefresh units.Duration
	// Actuate picks ARP (default) or OpenFlow rewriting.
	Actuate Actuator
	// Source, when non-nil, feeds the view-refresh loop from a
	// network-wide flow source (the collector fleet's aggregation
	// plane) instead of querying per-switch collectors through the
	// controller. Congestion events still arrive through the
	// controller's subscription either way.
	Source NetworkSource
}

// NetworkSource is the fleet-mode flow feed: one merged, network-wide
// iteration over (switch, flow) records with rate estimates.
// *agg.Plane implements it.
type NetworkSource interface {
	EachFlow(fn func(sw int, fi core.FlowInfo, lastSeen units.Time))
}

// DefaultPlanckTEConfig matches §7.1.
func DefaultPlanckTEConfig() PlanckTEConfig {
	return PlanckTEConfig{
		FlowTimeout: 3 * units.Millisecond,
		// Long enough for the ARP to land, the abandoned path's queue to
		// drain, and the flow's reordering transient to settle before the
		// flow may move again.
		MoveCooldown: 10 * units.Millisecond,
		MinFlowRate:  10 * units.Mbps,
		ViewRefresh:  units.Millisecond,
		Actuate:      ActuateARP,
	}
}

// flowView is the controller-side record of one flow (Algorithm 1's
// network state).
type flowView struct {
	key       packet.FlowKey
	src, dst  int // host indices
	tree      int
	rate      units.Rate // latest measured rate (reporting)
	demand    units.Rate // estimated natural demand (placement)
	lastHeard units.Time
	lastMoved units.Time
}

// PlanckTE is the event-driven traffic engineer. It reads alternate
// trees and bottleneck capacities from the controller's versioned
// routing store: each event or refresh pass pins the current snapshot
// once and plans the whole pass against that epoch.
type PlanckTE struct {
	ctrl  *controller.Controller
	cfg   PlanckTEConfig
	net   *topo.Network
	store *routing.Store
	// snap is the snapshot pinned for the current planning pass.
	snap *routing.Snapshot

	view map[packet.FlowKey]*flowView

	// Reroutes counts route-change actuations issued.
	Reroutes int64
	// EventsHandled counts congestion notifications processed.
	EventsHandled int64
}

// NewPlanckTE attaches the application to a controller's event stream
// and starts its view-refresh query loop.
func NewPlanckTE(ctrl *controller.Controller, cfg PlanckTEConfig) *PlanckTE {
	if cfg.FlowTimeout == 0 {
		cfg = DefaultPlanckTEConfig()
	}
	t := &PlanckTE{
		ctrl:  ctrl,
		cfg:   cfg,
		net:   ctrl.Network(),
		store: ctrl.RoutingStore(),
		view:  make(map[packet.FlowKey]*flowView),
	}
	t.snap = t.store.Load()
	ctrl.Subscribe(t.onCongestion)
	if cfg.ViewRefresh > 0 {
		sim.NewTicker(ctrl.Engine(), cfg.ViewRefresh, t.refreshView)
	}
	return t
}

// refreshView queries every collector's flow table (§3.3's statistics
// API), folds fresh entries into the network view — preferring the most
// recently sampled routing label per flow — and re-engineers flows whose
// current path is overloaded by demand but whose links are too quiet to
// fire events.
func (t *PlanckTE) refreshView(now units.Time) {
	t.snap = t.store.Load()
	type obs struct {
		fi   core.FlowInfo
		seen units.Time
	}
	// Only a flow's ingress edge switch is on every alternate path, so
	// its collector reports the flow's routing label unambiguously and in
	// FIFO order; collectors on an abandoned path keep sampling the old
	// label while their mirror queue drains. Labels therefore come only
	// from the ingress edge.
	best := make(map[packet.FlowKey]obs)
	consider := func(s int, fi core.FlowInfo, seen units.Time) {
		if now.Sub(seen) > t.cfg.FlowTimeout {
			return
		}
		src, ok := topo.HostOfIP(fi.Key.SrcIP)
		if !ok || src < 0 || src >= t.net.NumHosts() || t.net.Hosts[src].Switch != s {
			return
		}
		if b, have := best[fi.Key]; !have || seen > b.seen {
			best[fi.Key] = obs{fi: fi, seen: seen}
		}
	}
	if t.cfg.Source != nil {
		// Fleet mode: one pass over the aggregation plane's merged,
		// already rate-filtered records. The ingress-edge filter in
		// consider applies unchanged, so the fold is exactly the
		// per-collector query's.
		t.cfg.Source.EachFlow(consider)
	} else {
		for s := 0; s < t.net.NumSwitches(); s++ {
			col := t.ctrl.Collector(s)
			if col == nil {
				continue
			}
			s := s
			col.Flows(func(fs *core.FlowState) {
				rate, ok := fs.Rate()
				if !ok {
					return
				}
				consider(s, core.FlowInfo{Key: fs.Key, DstMAC: fs.DstMAC, Rate: rate}, fs.LastSeen)
			})
		}
	}
	for _, o := range best {
		t.updateFlow(now, o.fi)
	}
	t.expire(now)
	t.refreshDemands()
	for _, fv := range t.view {
		if t.pathBottleneck(fv.src, fv.dst, fv.tree, fv) < 0 {
			t.greedyRouteFlow(now, fv)
		}
	}
}

// onCongestion implements Algorithm 1's process_cong_ntfy.
func (t *PlanckTE) onCongestion(ev core.CongestionEvent) {
	t.EventsHandled++
	t.snap = t.store.Load()
	now := ev.Time

	// Update network state from the notification's flow annotations.
	var eventFlows []*flowView
	for _, fi := range ev.Flows {
		fv := t.updateFlow(now, fi)
		if fv != nil {
			eventFlows = append(eventFlows, fv)
		}
	}
	t.expire(now)

	// Refresh demand estimates over the whole view (placement must use
	// what flows want, not what collisions currently let them send).
	t.refreshDemands()

	// Greedily reroute each flow in the notification.
	for _, fv := range eventFlows {
		t.greedyRouteFlow(now, fv)
	}
}

// refreshDemands recomputes each viewed flow's natural demand.
func (t *PlanckTE) refreshDemands() {
	counts := newEndpointCounts()
	for _, fv := range t.view {
		counts.add(fv.key)
	}
	for _, fv := range t.view {
		fv.demand = counts.demand(fv.key, t.snap.LineRate())
	}
}

// updateFlow folds a flow annotation into the view, returning nil for
// flows that cannot be attributed to hosts (non-data traffic).
func (t *PlanckTE) updateFlow(now units.Time, fi core.FlowInfo) *flowView {
	if fi.Rate < t.cfg.MinFlowRate {
		return nil // ACK streams and mice play no part in engineering
	}
	src, ok := topo.HostOfIP(fi.Key.SrcIP)
	if !ok || src < 0 || src >= t.net.NumHosts() {
		return nil
	}
	dst, labelTree, ok := topo.TreeOfMAC(fi.DstMAC)
	if !ok || labelTree >= t.net.NumTrees || dst >= t.net.NumHosts() || dst == src {
		return nil
	}
	fv := t.view[fi.Key]
	if fv == nil {
		fv = &flowView{key: fi.Key, src: src, dst: dst, lastMoved: -1 << 62}
		t.view[fi.Key] = fv
	}
	// The routing snapshot is authoritative for which tree the flow
	// rides: collectors on a flow's old path keep reporting its
	// previous routing label for a freshness window after a reroute,
	// but the store already carries the committed override. Reading
	// the tree from the pinned snapshot (instead of trusting labels
	// and suppressing them during a cooldown window, as before the
	// versioned routing plane) removes the stale-label flap hazard by
	// construction; tree from the sampled label is kept above only to
	// validate that the annotation is host traffic.
	fv.tree = t.snap.TreeFor(fi.Key, src, dst)
	fv.rate = fi.Rate
	fv.lastHeard = now
	return fv
}

// expire implements remove_old_flows.
func (t *PlanckTE) expire(now units.Time) {
	for k, fv := range t.view {
		if now.Sub(fv.lastHeard) > t.cfg.FlowTimeout {
			delete(t.view, k)
		}
	}
}

// linkLoad sums the estimated demands of flows (other than skip) whose
// current path crosses the link; it is evaluated lazily per link.
func (t *PlanckTE) linkLoad(l topo.LinkID, skip *flowView) units.Rate {
	var load units.Rate
	for _, fv := range t.view {
		if fv == skip {
			continue
		}
		for _, fl := range t.snap.PathFor(fv.src, fv.dst, fv.tree) {
			if fl == l {
				load += fv.demand
				break
			}
		}
	}
	return load
}

// pathBottleneck is DevoFlow's find_path_btlneck: the minimum residual
// capacity along the path, ignoring the flow being placed. Residuals are
// allowed to go negative so the greedy step can still prefer a
// 2-flow link over a 3-flow link when nothing is free.
func (t *PlanckTE) pathBottleneck(src, dst, tree int, skip *flowView) units.Rate {
	btl := t.snap.LineRate()
	for _, l := range t.snap.PathFor(src, dst, tree) {
		residual := t.snap.LineRate() - t.linkLoad(l, skip)
		if residual < btl {
			btl = residual
		}
	}
	return btl
}

// greedyRouteFlow implements Algorithm 1's greedy_route_flow: take the
// alternate path with the strictly largest expected bottleneck capacity.
func (t *PlanckTE) greedyRouteFlow(now units.Time, fv *flowView) {
	if now.Sub(fv.lastMoved) < t.cfg.MoveCooldown {
		return
	}
	bestTree := fv.tree
	bestBtl := t.pathBottleneck(fv.src, fv.dst, fv.tree, fv)
	for tree := 0; tree < t.snap.NumTrees(); tree++ {
		if tree == fv.tree {
			continue
		}
		if btl := t.pathBottleneck(fv.src, fv.dst, tree, fv); btl > bestBtl {
			bestTree = tree
			bestBtl = btl
		}
	}
	if bestTree == fv.tree {
		return
	}
	fv.tree = bestTree
	fv.lastMoved = now
	t.Reroutes++
	switch t.cfg.Actuate {
	case ActuateOpenFlow:
		t.ctrl.RerouteOF(now, fv.key, fv.src, fv.dst, bestTree)
	default:
		t.ctrl.RerouteARP(now, fv.src, fv.dst, bestTree)
	}
}

// ViewSize reports the number of live flows in the network view.
func (t *PlanckTE) ViewSize() int { return len(t.view) }
