package te

import (
	"testing"

	"planck/internal/sim"
	"planck/internal/topo"
	"planck/internal/units"
)

func TestDebugTE(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("diagnostic only")
	}
	l := collide(t, 11)
	app := NewPlanckTE(l.Ctrl, DefaultPlanckTEConfig())
	c1, _ := l.Hosts[0].StartFlow(0, topo.HostIP(8), 5001, 64<<20, 1)
	c2, _ := l.Hosts[4].StartFlow(0, topo.HostIP(9), 5002, 64<<20, 2)
	var l1, l2 int64
	sim.NewTicker(l.Eng, units.Duration(5*units.Millisecond), func(now units.Time) {
		d1, d2 := c1.BytesAcked()-l1, c2.BytesAcked()-l2
		l1, l2 = c1.BytesAcked(), c2.BytesAcked()
		m1, _ := l.Hosts[0].LookupNeighbor(topo.HostIP(8))
		m2, _ := l.Hosts[4].LookupNeighbor(topo.HostIP(9))
		_, t1, _ := topo.TreeOfMAC(m1)
		_, t2, _ := topo.TreeOfMAC(m2)
		t.Logf("t=%v r1=%.2fG r2=%.2fG tree1=%d tree2=%d reroutes=%d events=%d view=%d to=%d/%d",
			now, float64(d1)*8/5e6, float64(d2)*8/5e6, t1, t2,
			app.Reroutes, app.EventsHandled, app.ViewSize(), c1.Timeouts, c2.Timeouts)
	})
	l.Run(100 * units.Millisecond)
}
