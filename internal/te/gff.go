package te

import (
	"sort"

	"planck/internal/controller"
	"planck/internal/packet"
	"planck/internal/routing"
	"planck/internal/sim"
	"planck/internal/topo"
	"planck/internal/units"
)

// GFFConfig tunes the polling baseline of §7.1: a global-first-fit
// rerouter that reads per-flow switch counters every Interval and
// greedily re-places every sizable flow, emulating Hedera-class systems
// at 1 s (Poll-1s) and 100 ms (Poll-0.1s) granularity.
type GFFConfig struct {
	// Interval is the polling period.
	Interval units.Duration
	// MinFlowFraction ignores flows smaller than this fraction of the
	// line rate (Hedera considers flows above 10% of NIC bandwidth).
	MinFlowFraction float64
}

// GFF is the polling-based global-first-fit traffic engineer. Current
// flow placements come from the controller's versioned routing store —
// the same snapshot the collectors and PlanckTE read — so the poller
// never drifts from what is actually installed.
type GFF struct {
	ctrl  *controller.Controller
	cfg   GFFConfig
	net   *topo.Network
	store *routing.Store

	lastBytes map[packet.FlowKey]int64
	ticker    *sim.Ticker

	// Polls and Reroutes count scheduler activity.
	Polls    int64
	Reroutes int64
}

// NewGFF starts the poller on the controller's engine.
func NewGFF(ctrl *controller.Controller, cfg GFFConfig) *GFF {
	if cfg.Interval == 0 {
		cfg.Interval = units.Duration(units.Second)
	}
	if cfg.MinFlowFraction == 0 {
		cfg.MinFlowFraction = 0.1
	}
	g := &GFF{
		ctrl:      ctrl,
		cfg:       cfg,
		net:       ctrl.Network(),
		store:     ctrl.RoutingStore(),
		lastBytes: make(map[packet.FlowKey]int64),
	}
	g.ticker = sim.NewTicker(ctrl.Engine(), cfg.Interval, g.poll)
	return g
}

// Stop halts polling.
func (g *GFF) Stop() { g.ticker.Stop() }

// measuredFlow is one polled flow with its estimated demand.
type measuredFlow struct {
	key      packet.FlowKey
	src, dst int
	rate     units.Rate
}

// poll reads edge-switch ingress flow counters, estimates each flow's
// rate over the last interval, and globally first-fits every sizable
// flow onto the tree with room, reserving capacity as it goes.
func (g *GFF) poll(now units.Time) {
	g.Polls++
	snap := g.store.Load()
	var flows []measuredFlow
	seen := make(map[packet.FlowKey]bool)
	for s := 0; s < g.net.NumSwitches(); s++ {
		sw := g.ctrl.Switch(s)
		for key, ctr := range sw.IngressCounters() {
			if seen[key] {
				continue
			}
			src, ok1 := topo.HostOfIP(key.SrcIP)
			dst, ok2 := topo.HostOfIP(key.DstIP)
			if !ok1 || !ok2 || src == dst ||
				src < 0 || src >= g.net.NumHosts() || dst < 0 || dst >= g.net.NumHosts() {
				continue
			}
			// Only count the flow at its ingress edge switch.
			if g.net.Hosts[src].Switch != s {
				continue
			}
			seen[key] = true
			delta := ctr.Bytes - g.lastBytes[key]
			g.lastBytes[key] = ctr.Bytes
			if delta <= 0 {
				continue
			}
			rate := units.RateOf(delta, g.cfg.Interval)
			if float64(rate) < g.cfg.MinFlowFraction*float64(g.net.LineRate) {
				continue
			}
			flows = append(flows, measuredFlow{key: key, src: src, dst: dst, rate: rate})
		}
	}

	// Hedera estimates each flow's natural demand before placing: a
	// crushed flow's measured rate must not make congested links look
	// half empty.
	counts := newEndpointCounts()
	for _, f := range flows {
		counts.add(f.key)
	}
	for i := range flows {
		if d := counts.demand(flows[i].key, g.net.LineRate); d > flows[i].rate {
			flows[i].rate = d
		}
	}

	// Largest flows place first (Hedera's global first fit ordering).
	sort.Slice(flows, func(i, j int) bool {
		if flows[i].rate != flows[j].rate {
			return flows[i].rate > flows[j].rate
		}
		return flows[i].key.String() < flows[j].key.String() // deterministic tie-break
	})

	reserved := make(map[topo.LinkID]units.Rate)
	for _, f := range flows {
		// The snapshot, not a private shadow map, says where the flow
		// currently rides: per-flow override from an earlier GFF pass,
		// else the pair/base tree the controller installed.
		cur := snap.TreeFor(f.key, f.src, f.dst)
		placed := -1
		for tree := 0; tree < snap.NumTrees(); tree++ {
			if g.fits(snap, f, tree, reserved) {
				placed = tree
				break
			}
		}
		if placed < 0 {
			placed = cur // nothing fits: stay put
		}
		g.reserve(snap, f, placed, reserved)
		if placed != cur {
			g.Reroutes++
			g.ctrl.RerouteOF(now, f.key, f.src, f.dst, placed)
		}
	}
}

func (g *GFF) fits(snap *routing.Snapshot, f measuredFlow, tree int, reserved map[topo.LinkID]units.Rate) bool {
	for _, l := range snap.PathFor(f.src, f.dst, tree) {
		if reserved[l]+f.rate > snap.LineRate() {
			return false
		}
	}
	return true
}

func (g *GFF) reserve(snap *routing.Snapshot, f measuredFlow, tree int, reserved map[topo.LinkID]units.Rate) {
	for _, l := range snap.PathFor(f.src, f.dst, tree) {
		reserved[l] += f.rate
	}
}
