package obs

import "sync/atomic"

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; incrementing never allocates.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the counter to stay monotonic; this is
// not enforced, matching the hot-path budget).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// IncRelaxed adds one using an atomic load + store instead of a locked
// read-modify-write. Safe only when a single goroutine performs all
// writes to the counter (concurrent Value readers are fine); on that
// contract it shaves the LOCK prefix off the hottest per-sample
// counters. Mixing IncRelaxed with Inc/Add from other goroutines loses
// updates.
func (c *Counter) IncRelaxed() { c.v.Store(c.v.Load() + 1) }

// AddRelaxed is IncRelaxed for a batch of n. Same single-writer
// contract.
func (c *Counter) AddRelaxed(n int64) { c.v.Store(c.v.Load() + n) }

// Gauge is a settable atomic level. The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the level.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the level by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// GaugeFunc is a callback gauge: the function is invoked at snapshot
// time. It must not block; non-atomic reads it performs are best-effort
// when the owning goroutine is concurrently mutating them.
type GaugeFunc func() float64
