package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Log-linear bucket layout (the HdrHistogram idea, sized for telemetry
// rather than full fidelity): values below histSubBuckets get exact
// unit-width buckets; above that, each power-of-two octave is split
// into histSubBuckets linear sub-buckets, bounding the relative
// quantization error by 1/histSubBuckets ≈ 1.6%. The full int64 range
// fits in a fixed array, so Observe never allocates or locks.
const (
	histSubBits    = 6
	histSubBuckets = 1 << histSubBits                                 // 64
	histNumBuckets = (63-histSubBits)*histSubBuckets + histSubBuckets // 3712
)

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	u := uint64(v)
	if u < histSubBuckets {
		return int(u)
	}
	exp := bits.Len64(u) - 1 // position of the leading one, >= histSubBits
	sub := int((u >> uint(exp-histSubBits)) & (histSubBuckets - 1))
	return (exp-histSubBits)*histSubBuckets + histSubBuckets + sub
}

// bucketLow returns the smallest value mapping to bucket idx.
func bucketLow(idx int) int64 {
	if idx < histSubBuckets {
		return int64(idx)
	}
	block := idx/histSubBuckets - 1
	sub := idx % histSubBuckets
	return int64(histSubBuckets+sub) << uint(block)
}

// bucketHigh returns the largest value mapping to bucket idx.
func bucketHigh(idx int) int64 {
	if idx >= histNumBuckets-1 {
		return math.MaxInt64
	}
	return bucketLow(idx+1) - 1
}

// Histogram accumulates int64 observations into log-linear buckets and
// answers interpolated quantiles with <2% relative error. All methods
// are safe for concurrent use and Observe never allocates. Reported
// values (quantiles, mean, sum, min, max) are raw observations
// multiplied by the construction-time scale, so a caller can record
// exact nanosecond durations and expose microseconds.
type Histogram struct {
	scale  float64
	count  atomic.Int64
	sum    atomic.Int64
	min    atomic.Int64
	max    atomic.Int64
	counts [histNumBuckets]atomic.Int64
}

// NewHistogram returns a histogram reporting raw observed values.
func NewHistogram() *Histogram { return NewScaledHistogram(1) }

// NewScaledHistogram returns a histogram whose reported statistics are
// raw values multiplied by scale.
func NewScaledHistogram(scale float64) *Histogram {
	h := &Histogram{scale: scale}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// N returns the number of observations.
func (h *Histogram) N() int { return int(h.count.Load()) }

// Sum returns the scaled sum of all observations.
func (h *Histogram) Sum() float64 { return float64(h.sum.Load()) * h.scale }

// Mean returns the scaled arithmetic mean, or 0 when empty. The mean is
// exact (tracked outside the buckets).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n) * h.scale
}

// Min returns the scaled smallest observation, or 0 when empty. Min and
// max are exact.
func (h *Histogram) Min() float64 {
	if h.count.Load() == 0 {
		return 0
	}
	return float64(h.min.Load()) * h.scale
}

// Max returns the scaled largest observation, or 0 when empty.
func (h *Histogram) Max() float64 {
	if h.count.Load() == 0 {
		return 0
	}
	return float64(h.max.Load()) * h.scale
}

// Quantile returns the scaled q-th quantile (0 <= q <= 1), following
// stats.Sample's convention of interpolating at rank q*(n-1), with
// uniform interpolation inside a bucket and clamping to the observed
// min/max. Empty histograms return 0.
func (h *Histogram) Quantile(q float64) float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	pos := q * float64(n-1)
	var cum int64
	for i := range h.counts {
		cnt := h.counts[i].Load()
		if cnt == 0 {
			continue
		}
		if float64(cum+cnt) > pos {
			low := float64(bucketLow(i))
			width := float64(bucketHigh(i)) - low + 1
			r := pos - float64(cum)
			v := low + width*(r+0.5)/float64(cnt)
			if mn := float64(h.min.Load()); v < mn {
				v = mn
			}
			if mx := float64(h.max.Load()); v > mx {
				v = mx
			}
			return v * h.scale
		}
		cum += cnt
	}
	return h.Max()
}

// Median returns the scaled 50th percentile.
func (h *Histogram) Median() float64 { return h.Quantile(0.5) }

// HistSnapshot is a point-in-time summary of a histogram. All value
// fields are scaled.
type HistSnapshot struct {
	Count               int64
	Sum, Min, Max, Mean float64
	P50, P90, P99, P999 float64
}

// Snapshot computes the summary in one pass over live counters. Under
// concurrent Observe calls the fields are individually consistent.
func (h *Histogram) Snapshot() HistSnapshot {
	return HistSnapshot{
		Count: h.count.Load(),
		Sum:   h.Sum(),
		Min:   h.Min(),
		Max:   h.Max(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
	}
}
