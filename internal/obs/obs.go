// Package obs is the system's self-monitoring layer: a dependency-free,
// allocation-conscious metrics toolkit. Planck's thesis is that you
// cannot manage what you cannot measure at millisecond granularity
// (§2, §5.2); obs applies the same discipline to the reproduction's own
// pipeline, so that the cost and health of monitoring are themselves
// monitored (CeMon's overhead-accounting argument).
//
// Three instrument kinds cover the pipeline:
//
//   - Counter: a monotonic atomic int64 (samples ingested, decode
//     errors, reroutes). Increment cost is a single atomic add.
//   - Gauge / GaugeFunc: a point-in-time level (flow-table size, event
//     heap depth). GaugeFunc lets a caller expose an existing field
//     without double bookkeeping; such reads are best-effort when the
//     owner mutates them from another goroutine.
//   - Histogram: a log-linear-bucket distribution (per-stage pipeline
//     timings, sample latencies) answering p50/p99/p999 snapshots with
//     bounded (<2%) relative error and no per-observation allocation.
//
// A Registry names instruments and exposes them three ways: Prometheus
// text (WritePrometheus), an expvar-style JSON snapshot (WriteJSON),
// and a compact single stats line for headless stderr logging
// (StatsLine). Serve mounts all of them plus net/http/pprof on one
// listener.
package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// processStart anchors the monotonic clock used for stage timings.
var processStart = time.Now()

// Nanos returns monotonic wall-clock nanoseconds since process start.
// It is the timestamp source for pipeline stage timings: cheap (vDSO
// path), monotonic, and never used for control decisions — only for
// telemetry — so the simulation stays deterministic.
func Nanos() int64 { return int64(time.Since(processStart)) }

// Label renders one k="v" metric label pair.
func Label(k, v string) string { return k + `="` + v + `"` }

// entry is one registered instrument.
type entry struct {
	name   string // base metric name, e.g. planck_collector_samples_total
	labels string // pre-rendered label list, e.g. switch="sw0" (may be empty)
	metric any    // *Counter | *Gauge | GaugeFunc | *Histogram
}

// fullName is the exposition key: name{labels} or bare name.
func (e *entry) fullName() string {
	if e.labels == "" {
		return e.name
	}
	return e.name + "{" + e.labels + "}"
}

// Registry is a named set of instruments. The zero value is not usable;
// call NewRegistry. All methods are safe for concurrent use; instrument
// reads taken while writers are active are individually atomic.
type Registry struct {
	mu      sync.RWMutex
	entries []*entry
	byName  map[string]*entry

	// extras are additional HTTP handlers mounted by Handler(), keyed
	// by mux pattern — the seam packages layered on obs (e.g.
	// obs/trace's /debug/traces endpoints) use to join the registry's
	// introspection mux without an import cycle.
	extras map[string]http.Handler
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*entry)}
}

// MustRegister adds a pre-built instrument under name (with optional
// labels built by Label). It panics on a duplicate full name — metric
// names are API, and a silent collision would merge unrelated series.
func (r *Registry) MustRegister(name string, metric any, labels ...string) {
	switch metric.(type) {
	case *Counter, *Gauge, GaugeFunc, *Histogram:
	default:
		panic(fmt.Sprintf("obs: unsupported metric type %T for %q", metric, name))
	}
	e := &entry{name: name, labels: strings.Join(labels, ","), metric: metric}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[e.fullName()]; dup {
		panic(fmt.Sprintf("obs: duplicate metric %q", e.fullName()))
	}
	r.byName[e.fullName()] = e
	r.entries = append(r.entries, e)
}

// Counter creates and registers a counter.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	c := &Counter{}
	r.MustRegister(name, c, labels...)
	return c
}

// Gauge creates and registers a settable gauge.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	g := &Gauge{}
	r.MustRegister(name, g, labels...)
	return g
}

// GaugeFunc registers fn as a callback gauge. fn must be safe to call
// from the exposition goroutine; values it reads non-atomically are
// best-effort.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...string) {
	r.MustRegister(name, GaugeFunc(fn), labels...)
}

// Histogram creates and registers a histogram whose reported values are
// raw observations multiplied by scale (use NewScale helpers, e.g.
// record nanoseconds with scale 1e-3 to report microseconds).
func (r *Registry) Histogram(name string, scale float64, labels ...string) *Histogram {
	h := NewScaledHistogram(scale)
	r.MustRegister(name, h, labels...)
	return h
}

// snapshotEntries returns the entries sorted by full name.
func (r *Registry) snapshotEntries() []*entry {
	r.mu.RLock()
	out := make([]*entry, len(r.entries))
	copy(out, r.entries)
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].fullName() < out[j].fullName() })
	return out
}

// Point is one metric in a Snapshot.
type Point struct {
	Name  string        // full exposition name, labels included
	Kind  string        // "counter" | "gauge" | "histogram"
	Value float64       // counter/gauge value; histogram count
	Hist  *HistSnapshot // non-nil for histograms
}

// Snapshot returns every instrument's current reading, sorted by name.
// It is cheap: one atomic load per counter/gauge, one bucket walk per
// histogram.
func (r *Registry) Snapshot() []Point {
	entries := r.snapshotEntries()
	out := make([]Point, 0, len(entries))
	for _, e := range entries {
		p := Point{Name: e.fullName()}
		switch m := e.metric.(type) {
		case *Counter:
			p.Kind = "counter"
			p.Value = float64(m.Value())
		case *Gauge:
			p.Kind = "gauge"
			p.Value = float64(m.Value())
		case GaugeFunc:
			p.Kind = "gauge"
			p.Value = m()
		case *Histogram:
			p.Kind = "histogram"
			s := m.Snapshot()
			p.Value = float64(s.Count)
			p.Hist = &s
		}
		out = append(out, p)
	}
	return out
}

// WritePrometheus renders the registry in the Prometheus text format:
// counters and gauges as single samples, histograms as summaries with
// p50/p90/p99/p999 quantile series plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) {
	typeSeen := make(map[string]bool)
	emitType := func(name, kind string) {
		if !typeSeen[name] {
			typeSeen[name] = true
			fmt.Fprintf(w, "# TYPE %s %s\n", name, kind)
		}
	}
	for _, e := range r.snapshotEntries() {
		switch m := e.metric.(type) {
		case *Counter:
			emitType(e.name, "counter")
			fmt.Fprintf(w, "%s %d\n", e.fullName(), m.Value())
		case *Gauge:
			emitType(e.name, "gauge")
			fmt.Fprintf(w, "%s %d\n", e.fullName(), m.Value())
		case GaugeFunc:
			emitType(e.name, "gauge")
			fmt.Fprintf(w, "%s %g\n", e.fullName(), m())
		case *Histogram:
			emitType(e.name, "summary")
			s := m.Snapshot()
			for _, q := range [...]struct {
				q string
				v float64
			}{{"0.5", s.P50}, {"0.9", s.P90}, {"0.99", s.P99}, {"0.999", s.P999}} {
				fmt.Fprintf(w, "%s{%s} %g\n", e.name, joinLabels(e.labels, `quantile="`+q.q+`"`), q.v)
			}
			fmt.Fprintf(w, "%s_sum%s %g\n", e.name, braced(e.labels), s.Sum)
			fmt.Fprintf(w, "%s_count%s %d\n", e.name, braced(e.labels), s.Count)
		}
	}
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// WriteJSON renders an expvar-style snapshot: a JSON object keyed by
// full metric name, with histograms expanded to their summary fields.
// Keys are emitted in sorted order.
func (r *Registry) WriteJSON(w io.Writer) {
	pts := r.Snapshot()
	io.WriteString(w, "{")
	for i, p := range pts {
		if i > 0 {
			io.WriteString(w, ",")
		}
		fmt.Fprintf(w, "\n  %q: ", p.Name)
		if p.Hist != nil {
			s := p.Hist
			fmt.Fprintf(w,
				`{"count": %d, "sum": %g, "min": %g, "max": %g, "mean": %g, "p50": %g, "p90": %g, "p99": %g, "p999": %g}`,
				s.Count, s.Sum, s.Min, s.Max, s.Mean, s.P50, s.P90, s.P99, s.P999)
		} else {
			fmt.Fprintf(w, "%g", p.Value)
		}
	}
	io.WriteString(w, "\n}\n")
}

// StatsLine renders a compact one-line snapshot for headless stderr
// logging: counters and gauges as name=value, histograms as
// name=p50/p99(count).
func (r *Registry) StatsLine() string {
	var b strings.Builder
	b.WriteString("obs")
	for _, p := range r.Snapshot() {
		b.WriteByte(' ')
		b.WriteString(p.Name)
		b.WriteByte('=')
		if p.Hist != nil {
			fmt.Fprintf(&b, "%.4g/%.4g(%d)", p.Hist.P50, p.Hist.P99, p.Hist.Count)
		} else {
			fmt.Fprintf(&b, "%g", p.Value)
		}
	}
	return b.String()
}

// LogPeriodically writes StatsLine to w every interval until the
// returned stop function is called. Intended for headless runs where no
// scraper is attached.
func (r *Registry) LogPeriodically(w io.Writer, every time.Duration) (stop func()) {
	t := time.NewTicker(every)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			case <-t.C:
				fmt.Fprintln(w, r.StatsLine())
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			t.Stop()
			close(done)
		})
	}
}
