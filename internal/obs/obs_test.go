package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("planck_test_samples_total", Label("switch", "sw0"))
	c.Add(41)
	c.Inc()
	g := r.Gauge("planck_test_flow_table_size")
	g.Set(7)
	r.GaugeFunc("planck_test_pending", func() float64 { return 3.5 })
	h := r.Histogram("planck_test_latency_us", 1e-3, Label("switch", "sw0"))
	for i := 1; i <= 1000; i++ {
		h.Observe(int64(i) * 1000)
	}

	var prom bytes.Buffer
	r.WritePrometheus(&prom)
	text := prom.String()
	for _, want := range []string{
		`planck_test_samples_total{switch="sw0"} 42`,
		"# TYPE planck_test_samples_total counter",
		"planck_test_flow_table_size 7",
		"planck_test_pending 3.5",
		"# TYPE planck_test_latency_us summary",
		`planck_test_latency_us{switch="sw0",quantile="0.5"}`,
		`planck_test_latency_us_count{switch="sw0"} 1000`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus text missing %q:\n%s", want, text)
		}
	}

	var js bytes.Buffer
	r.WriteJSON(&js)
	var decoded map[string]any
	if err := json.Unmarshal(js.Bytes(), &decoded); err != nil {
		t.Fatalf("JSON snapshot does not parse: %v\n%s", err, js.String())
	}
	if v, ok := decoded[`planck_test_samples_total{switch="sw0"}`].(float64); !ok || v != 42 {
		t.Fatalf("JSON counter = %v", decoded[`planck_test_samples_total{switch="sw0"}`])
	}
	hist, ok := decoded[`planck_test_latency_us{switch="sw0"}`].(map[string]any)
	if !ok || hist["count"].(float64) != 1000 {
		t.Fatalf("JSON histogram = %v", hist)
	}

	line := r.StatsLine()
	if !strings.Contains(line, "planck_test_samples_total") || !strings.HasPrefix(line, "obs ") {
		t.Fatalf("stats line %q", line)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration must panic")
		}
	}()
	r.Counter("x_total")
}

func TestServeEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("planck_test_served_total").Add(5)
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, _ := io.ReadAll(resp.Body)
		return string(body)
	}
	if body := get("/metrics"); !strings.Contains(body, "planck_test_served_total 5") {
		t.Fatalf("/metrics body:\n%s", body)
	}
	if body := get("/debug/vars"); !strings.Contains(body, `"planck_test_served_total": 5`) {
		t.Fatalf("/debug/vars body:\n%s", body)
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "profile") {
		t.Fatalf("/debug/pprof/ body:\n%s", body)
	}
}

// TestConcurrentObserve exercises the atomic paths under the race
// detector: writers hammer a counter and histogram while a reader
// snapshots.
func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("planck_test_conc_total")
	h := r.Histogram("planck_test_conc_ns", 1)
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(seed*1000 + int64(i))
			}
		}(int64(w + 1))
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			r.Snapshot()
			var sink bytes.Buffer
			r.WritePrometheus(&sink)
		}
	}()
	wg.Wait()
	<-done
	if c.Value() != workers*per {
		t.Fatalf("counter %d, want %d", c.Value(), workers*per)
	}
	if h.N() != workers*per {
		t.Fatalf("histogram N %d, want %d", h.N(), workers*per)
	}
}

func TestLogPeriodically(t *testing.T) {
	r := NewRegistry()
	r.Counter("planck_test_log_total").Inc()
	var mu sync.Mutex
	var buf bytes.Buffer
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	stop := r.LogPeriodically(w, 5*time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := buf.Len()
		mu.Unlock()
		if n > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	stop()
	stop() // idempotent
	mu.Lock()
	defer mu.Unlock()
	if !strings.Contains(buf.String(), "planck_test_log_total=1") {
		t.Fatalf("log output %q", buf.String())
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
